// Dense math kernels over Matrix<T>.
//
// These are reference implementations: clarity and testability first.  The
// performance experiments never run these kernels at CogVideoX scale — the
// cycle simulator models the hardware analytically — so a straightforward
// blocked GEMM is sufficient for the quality experiments (≤ a few k tokens).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"

namespace paro {

/// C = A · B.  A is [m,k], B is [k,n].
MatF matmul(const MatF& a, const MatF& b);

/// C = A · Bᵀ.  A is [m,k], B is [n,k].  This is the QKᵀ shape.
MatF matmul_nt(const MatF& a, const MatF& b);

/// Integer GEMM with 32-bit accumulation: C = A · Bᵀ, A [m,k] int8,
/// B [n,k] int8.  Mirrors what the fixed-point PE array computes.
MatI32 matmul_nt_i8(const MatI8& a, const MatI8& b);

/// Row-wise softmax of `logits * scale`, numerically stabilised.
MatF softmax_rows(const MatF& logits, float scale = 1.0F);

/// Transpose.
MatF transpose(const MatF& a);

/// Transpose into a caller-owned matrix (resized to [a.cols, a.rows]) —
/// the allocation-free twin used by session workspaces.  Values are
/// bitwise identical to transpose()'s (pure data movement).
void transpose_into(const MatF& a, MatF& out);

/// Gather rows: out.row(i) = in.row(perm[i]).  perm must be a permutation
/// of [0, rows).
MatF permute_rows(const MatF& in, const std::vector<std::uint32_t>& perm);

/// Scatter rows: out.row(perm[i]) = in.row(i) — the inverse of
/// permute_rows with the same `perm`.
MatF unpermute_rows(const MatF& in, const std::vector<std::uint32_t>& perm);

/// Gather columns: out(r, i) = in(r, perm[i]).
MatF permute_cols(const MatF& in, const std::vector<std::uint32_t>& perm);

/// Validate that `perm` is a permutation of [0, n).  Throws otherwise.
void check_permutation(const std::vector<std::uint32_t>& perm, std::size_t n);

/// out = a + b (same shape).
MatF add(const MatF& a, const MatF& b);

/// out = a * s element-wise.
MatF scale(const MatF& a, float s);

/// Add a row vector `bias` (length cols) to each row, in place.
void add_bias_inplace(MatF& a, std::span<const float> bias);

/// tanh-approximation GELU applied element-wise, in place.
void gelu_inplace(MatF& a);

/// Per-row LayerNorm (no affine), in place; eps added to the variance.
void layernorm_rows_inplace(MatF& a, float eps = 1e-5F);

/// Maximum absolute element.
float max_abs(const MatF& a);

}  // namespace paro
