#include "tensor/random.hpp"

#include <cmath>

namespace paro {

MatF random_normal(std::size_t rows, std::size_t cols, Rng& rng, float mean,
                   float stddev) {
  MatF m(rows, cols);
  for (float& v : m.flat()) {
    v = static_cast<float>(rng.normal(mean, stddev));
  }
  return m;
}

MatF random_uniform(std::size_t rows, std::size_t cols, Rng& rng, float lo,
                    float hi) {
  MatF m(rows, cols);
  for (float& v : m.flat()) {
    v = static_cast<float>(rng.uniform(lo, hi));
  }
  return m;
}

MatF random_xavier(std::size_t fan_in, std::size_t fan_out, Rng& rng) {
  const float stddev =
      std::sqrt(2.0F / static_cast<float>(fan_in + fan_out));
  return random_normal(fan_in, fan_out, rng, 0.0F, stddev);
}

}  // namespace paro
