// Random tensor initialisers.
#pragma once

#include "common/rng.hpp"
#include "tensor/matrix.hpp"

namespace paro {

/// Matrix of i.i.d. N(mean, stddev) values.
MatF random_normal(std::size_t rows, std::size_t cols, Rng& rng,
                   float mean = 0.0F, float stddev = 1.0F);

/// Matrix of i.i.d. U[lo, hi) values.
MatF random_uniform(std::size_t rows, std::size_t cols, Rng& rng,
                    float lo = 0.0F, float hi = 1.0F);

/// Xavier/Glorot-scaled weight init: N(0, sqrt(2 / (fan_in + fan_out))).
MatF random_xavier(std::size_t fan_in, std::size_t fan_out, Rng& rng);

}  // namespace paro
