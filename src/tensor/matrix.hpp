// Row-major dense matrix, the data substrate for the whole repo.
//
// Kept deliberately simple (Core Guidelines C.10 "prefer concrete types"):
// dynamic 2-D storage, bounds-checked element access, span-based row views.
// All heavy math lives in free functions (tensor/ops.hpp).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/error.hpp"

namespace paro {

template <typename T>
class Matrix {
 public:
  Matrix() = default;

  Matrix(std::size_t rows, std::size_t cols, T fill = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Construct from existing row-major data (size must match).
  Matrix(std::size_t rows, std::size_t cols, std::vector<T> data)
      : rows_(rows), cols_(cols), data_(std::move(data)) {
    PARO_CHECK_MSG(data_.size() == rows_ * cols_,
                   "Matrix data size does not match shape");
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  T& at(std::size_t r, std::size_t c) {
    PARO_CHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const T& at(std::size_t r, std::size_t c) const {
    PARO_CHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Unchecked access for inner loops; callers own the bounds argument.
  T& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const T& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  std::span<T> row(std::size_t r) {
    PARO_CHECK(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }
  std::span<const T> row(std::size_t r) const {
    PARO_CHECK(r < rows_);
    return {data_.data() + r * cols_, cols_};
  }

  std::span<T> flat() { return {data_.data(), data_.size()}; }
  std::span<const T> flat() const { return {data_.data(), data_.size()}; }

  /// Reshape in place.  Storage is retained when the element count does
  /// not grow past the vector's capacity, which is what lets session
  /// workspaces reuse one matrix across steps without reallocating.
  /// Contents are unspecified after a resize (grown elements are
  /// value-initialized); callers overwrite before reading.
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  friend bool operator==(const Matrix& a, const Matrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ && a.data_ == b.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<T> data_;
};

using MatF = Matrix<float>;
using MatI8 = Matrix<std::int8_t>;
using MatI32 = Matrix<std::int32_t>;

}  // namespace paro
