#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>

#include "common/thread_pool.hpp"
#include "kernels/kernels.hpp"

namespace paro {

namespace {
/// Output rows per parallel chunk for the matmul variants.  Fixed, so the
/// chunk layout — and each row's unchanged left-to-right accumulation —
/// is identical at any thread count; matrices under one grain of rows run
/// serially inline.
constexpr std::size_t kRowGrain = 16;
}  // namespace

MatF matmul(const MatF& a, const MatF& b) {
  PARO_CHECK_MSG(a.cols() == b.rows(), "matmul shape mismatch");
  MatF c(a.rows(), b.cols(), 0.0F);
  if (a.cols() == 0) return c;
  // Each task owns a contiguous band of output rows.  The kernel keeps the
  // ikj loop order (B row hot in cache) and the aik == 0 row skip.
  global_pool().for_chunks(
      0, a.rows(), kRowGrain,
      [&](std::size_t i0, std::size_t i1, std::size_t /*chunk*/) {
        for (std::size_t i = i0; i < i1; ++i) {
          kernels::attnv_accum(a.row(i).data(), a.cols(), b.row(0).data(),
                               b.cols(), b.cols(), c.row(i).data());
        }
      });
  return c;
}

MatF matmul_nt(const MatF& a, const MatF& b) {
  PARO_CHECK_MSG(a.cols() == b.cols(), "matmul_nt shape mismatch");
  MatF c(a.rows(), b.rows(), 0.0F);
  if (b.rows() == 0) return c;
  // Fixed accumulation contract (4 double lanes striped by k % 4, folded as
  // (l0+l1)+(l2+l3)) — identical in the scalar reference and every SIMD
  // backend, so results are bitwise independent of the dispatched ISA.
  global_pool().parallel_for(0, a.rows(), kRowGrain, [&](std::size_t i) {
    kernels::nt_dot_f32_row(a.row(i).data(), b.row(0).data(), b.cols(),
                            b.rows(), a.cols(), c.row(i).data());
  });
  return c;
}

MatI32 matmul_nt_i8(const MatI8& a, const MatI8& b) {
  PARO_CHECK_MSG(a.cols() == b.cols(), "matmul_nt_i8 shape mismatch");
  MatI32 c(a.rows(), b.rows(), 0);
  if (b.rows() == 0) return c;
  // Cache-blocked packed-int8 kernel per row band; integer sums are exact,
  // so the result is bit-identical at any vector width or thread count.
  global_pool().for_chunks(
      0, a.rows(), kRowGrain,
      [&](std::size_t i0, std::size_t i1, std::size_t /*chunk*/) {
        kernels::matmul_nt_i8_block(a.row(i0).data(), a.cols(), i1 - i0,
                                    b.row(0).data(), b.cols(), b.rows(),
                                    a.cols(), c.row(i0).data(), c.cols());
      });
  return c;
}

MatF softmax_rows(const MatF& logits, float scale) {
  MatF out(logits.rows(), logits.cols());
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    const auto in = logits.row(i);
    auto dst = out.row(i);
    const float maxv = kernels::row_max_scaled(
        in.data(), in.size(), scale,
        -std::numeric_limits<float>::infinity());
    std::copy(in.begin(), in.end(), dst.begin());
    const double sum =
        kernels::exp_sum_segment(dst.data(), dst.size(), scale, maxv, 0.0);
    const float inv = sum > 0.0 ? static_cast<float>(1.0 / sum) : 0.0F;
    kernels::scale_inplace(dst.data(), dst.size(), inv);
  }
  return out;
}

MatF transpose(const MatF& a) {
  MatF t(a.cols(), a.rows());
  transpose_into(a, t);
  return t;
}

void transpose_into(const MatF& a, MatF& out) {
  out.resize(a.cols(), a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      out(j, i) = a(i, j);
    }
  }
}

void check_permutation(const std::vector<std::uint32_t>& perm, std::size_t n) {
  PARO_CHECK_MSG(perm.size() == n, "permutation length mismatch");
  std::vector<bool> seen(n, false);
  for (const std::uint32_t p : perm) {
    PARO_CHECK_MSG(p < n, "permutation index out of range");
    PARO_CHECK_MSG(!seen[p], "permutation has a repeated index");
    seen[p] = true;
  }
}

MatF permute_rows(const MatF& in, const std::vector<std::uint32_t>& perm) {
  check_permutation(perm, in.rows());
  MatF out(in.rows(), in.cols());
  for (std::size_t i = 0; i < in.rows(); ++i) {
    const auto src = in.row(perm[i]);
    std::copy(src.begin(), src.end(), out.row(i).begin());
  }
  return out;
}

MatF unpermute_rows(const MatF& in, const std::vector<std::uint32_t>& perm) {
  check_permutation(perm, in.rows());
  MatF out(in.rows(), in.cols());
  for (std::size_t i = 0; i < in.rows(); ++i) {
    const auto src = in.row(i);
    std::copy(src.begin(), src.end(), out.row(perm[i]).begin());
  }
  return out;
}

MatF permute_cols(const MatF& in, const std::vector<std::uint32_t>& perm) {
  check_permutation(perm, in.cols());
  MatF out(in.rows(), in.cols());
  for (std::size_t i = 0; i < in.rows(); ++i) {
    const auto src = in.row(i);
    auto dst = out.row(i);
    for (std::size_t j = 0; j < perm.size(); ++j) {
      dst[j] = src[perm[j]];
    }
  }
  return out;
}

MatF add(const MatF& a, const MatF& b) {
  PARO_CHECK_MSG(a.same_shape(b), "add shape mismatch");
  MatF c(a.rows(), a.cols());
  const auto fa = a.flat();
  const auto fb = b.flat();
  auto fc = c.flat();
  for (std::size_t i = 0; i < fa.size(); ++i) {
    fc[i] = fa[i] + fb[i];
  }
  return c;
}

MatF scale(const MatF& a, float s) {
  MatF c(a.rows(), a.cols());
  const auto fa = a.flat();
  auto fc = c.flat();
  for (std::size_t i = 0; i < fa.size(); ++i) {
    fc[i] = fa[i] * s;
  }
  return c;
}

void add_bias_inplace(MatF& a, std::span<const float> bias) {
  PARO_CHECK_MSG(bias.size() == a.cols(), "bias length mismatch");
  for (std::size_t i = 0; i < a.rows(); ++i) {
    auto row = a.row(i);
    for (std::size_t j = 0; j < row.size(); ++j) {
      row[j] += bias[j];
    }
  }
}

void gelu_inplace(MatF& a) {
  constexpr float kSqrt2OverPi = 0.7978845608028654F;
  for (float& v : a.flat()) {
    const float inner = kSqrt2OverPi * (v + 0.044715F * v * v * v);
    v = 0.5F * v * (1.0F + std::tanh(inner));
  }
}

void layernorm_rows_inplace(MatF& a, float eps) {
  for (std::size_t i = 0; i < a.rows(); ++i) {
    auto row = a.row(i);
    double mean = 0.0;
    for (const float v : row) mean += v;
    mean /= static_cast<double>(row.size());
    double var = 0.0;
    for (const float v : row) {
      const double d = v - mean;
      var += d * d;
    }
    var /= static_cast<double>(row.size());
    const double inv = 1.0 / std::sqrt(var + eps);
    for (float& v : row) {
      v = static_cast<float>((v - mean) * inv);
    }
  }
}

float max_abs(const MatF& a) {
  float m = 0.0F;
  for (const float v : a.flat()) {
    m = std::max(m, std::abs(v));
  }
  return m;
}

}  // namespace paro
