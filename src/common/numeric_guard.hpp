// Numerical guardrails: NaN/Inf policy at stage boundaries.
//
// A NaN that slips into a Q/K/V tile propagates through softmax and AttnV
// and silently corrupts every downstream quality number.  The guardrails
// scan stage-boundary buffers (attention inputs, logits, the softmaxed
// map, the output) and apply a configurable policy:
//
//   kThrow     raise NumericalError naming the stage and first bad index
//              (default — fail fast, nothing downstream sees the value);
//   kSanitize  replace non-finite values with 0 in place and report the
//              count (degraded but bounded: a zeroed logit behaves like a
//              fully-truncated tile, a zeroed map entry like a skipped
//              one);
//   kLog       count and PARO_LOG(kWarn), let the values through (observe
//              only — the pre-guardrail behavior plus telemetry).
//
// The scan is read-only on clean data, so any policy is bitwise-neutral
// for finite inputs.  Callers surface the returned count through the obs
// layer (the guard itself stays obs-free to keep common → obs acyclic).
#pragma once

#include <cstddef>
#include <span>
#include <string_view>

namespace paro {

enum class NonFinitePolicy { kThrow, kSanitize, kLog };

const char* nonfinite_policy_name(NonFinitePolicy policy);

/// Parse "throw" / "sanitize" / "log"; throws ConfigError otherwise.
NonFinitePolicy parse_nonfinite_policy(std::string_view name);

/// Number of NaN/Inf values in `data`.
std::size_t count_nonfinite(std::span<const float> data);

/// Apply `policy` to `data` at the stage boundary named `context`.
/// Returns the number of non-finite values found (0 on the clean fast
/// path; after kSanitize they are zeroed in place).
std::size_t guard_nonfinite(std::span<float> data, NonFinitePolicy policy,
                            std::string_view context);

/// Read-only variant for buffers the caller does not own (e.g. the user's
/// Q/K/V inputs).  kSanitize cannot fix the data in place here, so it
/// only counts — callers that can substitute a sanitized copy do so
/// themselves (see attention/pipeline.cpp).
std::size_t guard_nonfinite_readonly(std::span<const float> data,
                                     NonFinitePolicy policy,
                                     std::string_view context);

}  // namespace paro
