#include "common/thread_pool.hpp"

#include <atomic>
#include <condition_variable>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>

#include "common/error.hpp"
#include "common/fault.hpp"

namespace paro {

namespace {
/// Set for the lifetime of a worker's main loop so nested parallel regions
/// run inline instead of re-entering the (single-job) pool.
thread_local bool tls_in_pool_worker = false;

std::atomic<PoolTraceObserver*> g_pool_observer{nullptr};
}  // namespace

void set_pool_trace_observer(PoolTraceObserver* observer) {
  g_pool_observer.store(observer, std::memory_order_release);
}

PoolTraceObserver* pool_trace_observer() {
  return g_pool_observer.load(std::memory_order_acquire);
}

/// One parallel region in flight.  Chunks are handed out through `next`;
/// the layout (begin/grain/n_chunks) is fixed before any thread starts, so
/// the racy part is only WHICH thread runs a chunk — never what it does.
/// The Job lives on the caller's stack: workers register in `active`
/// (guarded by Impl::mu) before touching it and the caller does not return
/// until every registration is gone.
struct ThreadPool::Job {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t grain = 1;
  std::size_t n_chunks = 0;
  void* ctx = nullptr;
  void (*fn)(void*, std::size_t, std::size_t, std::size_t) = nullptr;
  std::atomic<std::size_t> next{0};
  std::size_t active = 0;  ///< registered workers; guarded by Impl::mu
  std::mutex error_mu;
  std::exception_ptr error;
  /// Flow-event hookup, fixed by the submitter before workers wake.
  /// Null observer (or flow_base 0) means this region is not traced.
  PoolTraceObserver* observer = nullptr;
  std::uint64_t flow_base = 0;
};

struct ThreadPool::Impl {
  std::mutex mu;
  std::condition_variable work_cv;   ///< wakes workers on a new job / stop
  std::condition_variable done_cv;   ///< wakes the caller when workers leave
  Job* job = nullptr;                ///< current job (one at a time)
  std::uint64_t generation = 0;      ///< bumped per job so a worker joins
                                     ///< each job at most once
  bool stop = false;
  std::mutex submit_mu;              ///< serializes top-level regions
  std::vector<std::thread> workers;
};

ThreadPool::ThreadPool(std::size_t threads) : impl_(new Impl) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
  }
  if (threads == 0) threads = 1;  // hardware_concurrency may report 0
  width_ = threads;
  impl_->workers.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    impl_->workers.emplace_back([this] { worker_main(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stop = true;
  }
  impl_->work_cv.notify_all();
  for (std::thread& t : impl_->workers) {
    t.join();
  }
  delete impl_;
}

std::size_t ThreadPool::num_chunks(std::size_t begin, std::size_t end,
                                   std::size_t grain) {
  if (end <= begin) return 0;
  if (grain == 0) grain = 1;
  return (end - begin + grain - 1) / grain;
}

bool ThreadPool::in_worker() { return tls_in_pool_worker; }

void ThreadPool::run_chunks(Job& job) {
  for (;;) {
    const std::size_t chunk = job.next.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= job.n_chunks) return;
    const std::size_t c0 = job.begin + chunk * job.grain;
    const std::size_t c1 = std::min(c0 + job.grain, job.end);
    if (job.observer != nullptr) job.observer->chunk_begin(job.flow_base, chunk);
    try {
      // Fault site: a task that dies mid-region.  The pool's contract is
      // that the first exception is rethrown on the calling thread after
      // every chunk has been handed out — injected here so tests can
      // prove the propagation path without a bespoke throwing body.
      if (PARO_FAULT_FIRE("pool.task.throw", nullptr)) {
        throw Error("injected thread-pool task failure (chunk " +
                    std::to_string(chunk) + ")");
      }
      job.fn(job.ctx, c0, c1, chunk);
    } catch (...) {
      const std::lock_guard<std::mutex> lock(job.error_mu);
      if (!job.error) job.error = std::current_exception();
    }
    if (job.observer != nullptr) job.observer->chunk_end();
  }
}

void ThreadPool::worker_main() {
  tls_in_pool_worker = true;
  std::uint64_t seen = 0;
  for (;;) {
    Job* job = nullptr;
    {
      std::unique_lock<std::mutex> lock(impl_->mu);
      impl_->work_cv.wait(lock, [&] {
        return impl_->stop ||
               (impl_->job != nullptr && impl_->generation != seen);
      });
      if (impl_->stop) return;
      seen = impl_->generation;
      job = impl_->job;
      ++job->active;
    }
    run_chunks(*job);
    {
      const std::lock_guard<std::mutex> lock(impl_->mu);
      --job->active;
    }
    impl_->done_cv.notify_all();
  }
}

void ThreadPool::for_chunks_erased(std::size_t begin, std::size_t end,
                                   std::size_t grain, void* ctx,
                                   void (*fn)(void*, std::size_t, std::size_t,
                                              std::size_t)) {
  if (grain == 0) grain = 1;
  const std::size_t n_chunks = num_chunks(begin, end, grain);
  if (n_chunks == 0) return;
  // Serial paths: a 1-wide pool, a single chunk, or a nested region issued
  // from inside a worker (run inline to avoid deadlocking the single job
  // slot).  The chunk layout is identical to the parallel path.
  if (width_ == 1 || n_chunks == 1 || tls_in_pool_worker) {
    for (std::size_t chunk = 0; chunk < n_chunks; ++chunk) {
      const std::size_t c0 = begin + chunk * grain;
      const std::size_t c1 = std::min(c0 + grain, end);
      // Same fault site as the parallel path (run_chunks) so injected
      // task failures behave identically at any pool width.
      if (PARO_FAULT_FIRE("pool.task.throw", nullptr)) {
        throw Error("injected thread-pool task failure (chunk " +
                    std::to_string(chunk) + ")");
      }
      fn(ctx, c0, c1, chunk);
    }
    return;
  }

  Job job;
  job.begin = begin;
  job.end = end;
  job.grain = grain;
  job.n_chunks = n_chunks;
  job.ctx = ctx;
  job.fn = fn;
  // Flow tracing covers only genuinely parallel regions — the serial and
  // nested-inline paths above run under the caller's open span already.
  if (PoolTraceObserver* observer = pool_trace_observer()) {
    job.flow_base = observer->region_begin(n_chunks);
    if (job.flow_base != 0) job.observer = observer;
  }

  // One region at a time; concurrent top-level callers queue up here.
  const std::lock_guard<std::mutex> submit_lock(impl_->submit_mu);
  {
    const std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->job = &job;
    ++impl_->generation;
  }
  impl_->work_cv.notify_all();

  // The caller participates, then waits until every chunk ran AND every
  // registered worker left the job (the Job is about to leave scope).
  // Flag the caller as in-pool for the duration: a nested parallel region
  // inside a chunk IT runs must take the inline path like it would on a
  // worker — re-entering for_chunks here would self-deadlock on submit_mu.
  // tls is false on entry (a true value routed us to the serial path above)
  // and run_chunks never unwinds (chunk exceptions land in job.error), so
  // plain restore is safe.
  tls_in_pool_worker = true;
  run_chunks(job);
  tls_in_pool_worker = false;
  {
    std::unique_lock<std::mutex> lock(impl_->mu);
    impl_->done_cv.wait(lock, [&] {
      return job.active == 0 &&
             job.next.load(std::memory_order_acquire) >= job.n_chunks;
    });
    // Unpublish while still holding the lock: a worker waking later sees
    // job == nullptr (or a new generation) and never touches this frame.
    impl_->job = nullptr;
  }
  if (job.observer != nullptr) job.observer->region_end(job.flow_base);
  if (job.error) std::rethrow_exception(job.error);
}

namespace {
std::mutex g_pool_mu;
std::unique_ptr<ThreadPool> g_pool;
std::size_t g_threads = 0;  // configured knob; 0 → hardware concurrency
}  // namespace

ThreadPool& global_pool() {
  const std::lock_guard<std::mutex> lock(g_pool_mu);
  if (!g_pool) {
    g_pool = std::make_unique<ThreadPool>(g_threads);
  }
  return *g_pool;
}

void set_global_threads(std::size_t threads) {
  const std::lock_guard<std::mutex> lock(g_pool_mu);
  if (g_pool) {
    std::size_t want = threads;
    if (want == 0) want = std::thread::hardware_concurrency();
    if (want == 0) want = 1;
    if (g_pool->threads() == want) {
      g_threads = threads;
      return;  // already the requested width; keep the warm pool
    }
  }
  g_pool.reset();  // joins workers
  g_threads = threads;
}

std::size_t global_threads() { return global_pool().threads(); }

}  // namespace paro
