// Deterministic, seedable fault injection.
//
// Robustness claims are only claims until a test drives the failure path.
// This framework lets tests (and the CI smoke job) inject the faults the
// calibration→inference pipeline must absorb: calibration-file corruption,
// truncated streams, NaN/Inf at attention stage boundaries, thread-pool
// task failures.  Each failure path is guarded by a *named site* compiled
// into production code:
//
//   std::uint64_t seed = 0;
//   if (PARO_FAULT_FIRE("calib.read.corrupt-bit", &seed)) {
//     ...flip the bit chosen by `seed`...
//   }
//
// The canonical site list lives in fault.cpp (so spec validation works in
// every binary regardless of linker dead-stripping); tests can add ad-hoc
// sites with PARO_FAULT_REGISTER.  registered_sites() enumerates all of
// them, so the coverage test can assert every site has a recovery test.
// With no arm configured, the whole machinery is one
// relaxed atomic load per site evaluation — the production hot paths pay
// nothing measurable, and behavior is bit-for-bit the no-faults build.
//
// Arming is driven by a spec string, either programmatically
// (Injector::global().configure(spec)) or through the PARO_FAULT
// environment variable / the CLI's fault= knob:
//
//   PARO_FAULT="site[:skip[:count[:seed]]][;site2...]"
//
//   calib.read.corrupt-bit            fire on every hit of the site
//   calib.read.corrupt-bit:2          skip 2 hits, then fire forever
//   calib.read.corrupt-bit:2:1        skip 2 hits, fire exactly once
//   calib.read.corrupt-bit:0:1:77     ...with corruption seed 77
//
// Determinism: a site's hit counter increments on every evaluation while
// the injector is enabled, and the per-hit seed is a pure function of
// (arm seed, hit index).  Runs with threads=1 are exactly reproducible;
// multi-threaded runs attribute hits racily across threads (WHICH hit a
// thread sees is scheduling-dependent) but the set of fired faults for a
// `skip=0, count=∞` arm is not.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace paro::fault {

/// One armed fault: site fires on hit indices [skip, skip + count).
struct Arm {
  std::string site;
  std::uint64_t skip = 0;
  std::uint64_t count = UINT64_MAX;
  std::uint64_t seed = 0;
};

class Injector {
 public:
  /// Process-wide injector.  On first use it arms itself from the
  /// PARO_FAULT environment variable (empty / unset → disarmed).
  static Injector& global();

  /// Replace all arms with those parsed from `spec` (grammar above).
  /// Empty spec disarms everything.  Throws ConfigError on bad syntax or
  /// an unregistered site name.
  void configure(const std::string& spec);

  /// Disarm all faults and clear hit/fire counters.
  void clear();

  /// True when at least one arm is configured — the fast-path gate every
  /// site checks before touching any shared state.
  bool enabled() const;

  /// Evaluate `site`: bump its hit counter and decide whether this hit
  /// faults.  When firing and `seed_out` is non-null it receives a
  /// deterministic per-hit value for choosing WHAT to corrupt.
  /// Call through PARO_FAULT_FIRE so the disabled fast path stays free.
  bool should_fire(std::string_view site, std::uint64_t* seed_out = nullptr);

  /// Times `site` was evaluated / actually fired since the last clear().
  /// (Counters advance only while the injector is enabled.)
  std::uint64_t hits(std::string_view site) const;
  std::uint64_t fires(std::string_view site) const;

  /// Every site name registered in this binary, sorted.
  static std::vector<std::string> registered_sites();

  /// Idempotently add `name` to the registry (use PARO_FAULT_REGISTER).
  static void register_site(const char* name);

 private:
  Injector();
  struct Impl;
  Impl* impl_;
};

/// Registers a site name during static initialization.
struct SiteRegistrar {
  explicit SiteRegistrar(const char* name) { Injector::register_site(name); }
};

}  // namespace paro::fault

/// Declare a fault site at namespace scope in the .cpp that evaluates it.
#define PARO_FAULT_REGISTER(var, name) \
  namespace {                          \
  const ::paro::fault::SiteRegistrar var{name}; \
  }

/// Evaluate a fault site: false (with zero shared-state traffic) unless
/// the injector is armed.  `seed_out` is a std::uint64_t* or nullptr.
#define PARO_FAULT_FIRE(site, seed_out)              \
  (::paro::fault::Injector::global().enabled() &&    \
   ::paro::fault::Injector::global().should_fire((site), (seed_out)))
