// IEEE 754 binary16 emulation.
//
// PARO's vector unit and quantization scales are FP16 (paper §IV-A: "the
// quantization scales ... are in FP16 format ... the vector unit converts
// these results to FP16").  The simulator mostly works in float, but the
// places where FP16 rounding is visible to the algorithm (scale storage,
// vector-unit outputs) can opt into bit-exact binary16 via this header.
//
// Conversion implements round-to-nearest-even, gradual underflow
// (subnormals), and Inf/NaN propagation — pinned down by the test suite.
#pragma once

#include <cstdint>

namespace paro {

/// Bit-exact float → binary16 bits (round-to-nearest-even).
std::uint16_t float_to_fp16_bits(float value);

/// binary16 bits → float (exact).
float fp16_bits_to_float(std::uint16_t bits);

/// Round a float to the nearest representable binary16 value.
inline float fp16_round(float value) {
  return fp16_bits_to_float(float_to_fp16_bits(value));
}

/// Largest finite binary16 value (65504).
inline constexpr float kFp16Max = 65504.0F;
/// Smallest positive normal binary16 value (2^-14).
inline constexpr float kFp16MinNormal = 6.103515625e-05F;
/// Smallest positive subnormal binary16 value (2^-24).
inline constexpr float kFp16MinSubnormal = 5.9604644775390625e-08F;

}  // namespace paro
