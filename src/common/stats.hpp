// Streaming statistics helpers (mean / variance / min / max / histogram)
// used by the quant-error analyses and the simulator's counters.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace paro {

/// Welford-style running summary of a scalar stream.
class RunningStats {
 public:
  void add(double value);
  void merge(const RunningStats& other);

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double variance() const;  ///< population variance
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Summary of a span in one pass.
RunningStats summarize(std::span<const float> values);

/// Mean squared error between two equally sized spans.
double mse(std::span<const float> a, std::span<const float> b);

/// Root mean squared error.
double rmse(std::span<const float> a, std::span<const float> b);

/// Mean absolute error.
double mae(std::span<const float> a, std::span<const float> b);

/// Cosine similarity; returns 1.0 when both are all-zero.
double cosine_similarity(std::span<const float> a, std::span<const float> b);

/// Signal-to-noise ratio in dB of `approx` against `reference`.
/// Returns +inf when the error is exactly zero.
double snr_db(std::span<const float> reference, std::span<const float> approx);

/// Fixed-width histogram over [lo, hi]; out-of-range values clamp to the
/// edge bins.  Used to characterise attention-map value distributions.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double value);
  void add_all(std::span<const float> values);

  std::size_t bin_count() const { return counts_.size(); }
  std::uint64_t bin(std::size_t index) const { return counts_.at(index); }
  std::uint64_t total() const { return total_; }
  double bin_lo(std::size_t index) const;
  double bin_hi(std::size_t index) const;

  /// Fraction of mass in bins at or above `value`.
  double tail_fraction(double value) const;

  /// Approximate q-quantile (q in [0, 1]) with linear interpolation
  /// inside the containing bin; error is bounded by one bin width.
  /// Returns lo on an empty histogram.
  double quantile(double q) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace paro
