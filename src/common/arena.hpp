// Bump/slab arenas for the zero-allocation steady state.
//
// The generation hot loop (ROADMAP item 3) re-runs the same attention
// shapes every DDIM step, so every scratch buffer it needs on step N it
// needed on step 1 too.  An Arena turns that repetition into reuse: it
// hands out aligned spans by bumping an offset through retained slabs,
// and reset() rewinds the offsets WITHOUT freeing the slabs.  After the
// first step has sized the slab set, allocate() never touches the heap
// again — a step is malloc-free and its cost is pure compute.
//
// Determinism rule: arena spans are SCRATCH.  Callers must fully
// initialize a span before reading it (alloc_span can zero-fill), and no
// result may depend on a span's address.  Under that rule, per-thread
// sub-arenas (ShardedArena) are safe in parallel regions: WHICH shard
// serves a chunk is scheduling-dependent, but WHAT the chunk computes is
// not — the same bitwise-identity argument the thread pool makes for its
// chunk cursor (common/thread_pool.hpp).
//
// Sizing: pass a hint (e.g. AttnExecStats::peak_bytes from a prior run)
// to pre-carve one slab and make even the FIRST step allocation-free;
// without a hint the arena grows on demand and is steady after one pass.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

namespace paro {

/// Typed view of arena memory: pointer + element count.  Converts to
/// std::span implicitly; kept as its own type so call sites document that
/// the storage is arena-scratch (invalid after the owning arena resets).
template <typename T>
struct ArenaSpan {
  T* ptr = nullptr;
  std::size_t count = 0;

  T* data() const { return ptr; }
  std::size_t size() const { return count; }
  bool empty() const { return count == 0; }
  T& operator[](std::size_t i) const { return ptr[i]; }
  T* begin() const { return ptr; }
  T* end() const { return ptr + count; }
};

/// Bump allocator over a list of retained slabs.  Not thread-safe: one
/// arena serves one logical execution stream (shard per thread via
/// ShardedArena for parallel regions).
class Arena {
 public:
  /// Default slab size when growing without a hint.  Big enough that the
  /// fused executor's stripe scratch (block × N floats at N ≈ 20k) fits
  /// in one or two slabs, small enough not to hurt small sessions.
  static constexpr std::size_t kDefaultSlabBytes = std::size_t{1} << 20;

  /// `hint_bytes` > 0 pre-carves one slab of that size (rounded up to the
  /// default slab granule) so the first pass is already allocation-free.
  explicit Arena(std::size_t hint_bytes = 0);

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  /// Aligned raw allocation.  Bumps within the current slab; falls back to
  /// the next retained slab, and only mallocs a new slab when no retained
  /// slab fits (counted in slab_mallocs()).
  void* allocate(std::size_t bytes, std::size_t align = alignof(std::max_align_t));

  /// Typed span of `count` elements (trivially-destructible T only — the
  /// arena never runs destructors).  `zero` fills with value-initialized
  /// bytes; otherwise contents are unspecified and the caller must write
  /// before reading.
  template <typename T>
  ArenaSpan<T> alloc_span(std::size_t count, bool zero = false) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena spans never run destructors");
    auto* p = static_cast<T*>(allocate(count * sizeof(T), alignof(T)));
    if (zero && count > 0) {
      std::memset(static_cast<void*>(p), 0, count * sizeof(T));
    }
    return {p, count};
  }

  /// Rewind every slab offset to zero.  Slabs are RETAINED — this is what
  /// makes the steady state malloc-free.  All outstanding spans become
  /// invalid.
  void reset();

  /// Free every slab (used by tests; sessions normally keep slabs for
  /// their whole life).
  void release_all();

  /// Bytes currently handed out (sum over slabs' bump offsets).
  std::size_t in_use() const { return in_use_; }
  /// High-water mark of in_use() since construction (survives reset()).
  std::size_t high_water() const { return high_water_; }
  /// Total retained slab capacity.
  std::size_t capacity() const { return capacity_; }
  /// Heap allocations this arena performed (slab creations).  Flat after
  /// warm-up == the zero-allocation steady state, observable.
  std::uint64_t slab_mallocs() const { return slab_mallocs_; }

 private:
  struct Slab {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
    std::size_t offset = 0;
  };

  std::vector<Slab> slabs_;
  std::size_t active_ = 0;  ///< slab currently being bumped
  std::size_t in_use_ = 0;
  std::size_t high_water_ = 0;
  std::size_t capacity_ = 0;
  std::uint64_t slab_mallocs_ = 0;
};

/// Process-wide slot id of the calling thread, in [0, kMaxThreadSlots).
/// Slots are leased from a free list and returned when the thread exits,
/// so the id space is bounded by the peak number of LIVE threads, not the
/// number ever created (thread-pool rebuilds recycle slots).
std::size_t thread_arena_slot();
inline constexpr std::size_t kMaxThreadSlots = 256;

/// Per-thread arena shards for parallel regions.  local() returns the
/// calling thread's shard: one fixed-size array index, no lock — a shard
/// is created (one heap hit) only on a thread's first touch.  Each array
/// slot is read and written by exactly one thread (the slot owner), so
/// the steady-state path needs no synchronization; the aggregate calls
/// run on the coordinating thread between parallel regions, where the
/// pool's region barrier already orders worker writes.
class ShardedArena {
 public:
  explicit ShardedArena(std::size_t hint_bytes_per_shard = 0)
      : hint_(hint_bytes_per_shard) {}

  /// The calling thread's shard.
  Arena& local() {
    const std::size_t slot = thread_arena_slot();
    Arena* a = shards_[slot].get();
    if (a == nullptr) {
      shards_[slot] = std::make_unique<Arena>(hint_);
      a = shards_[slot].get();
    }
    return *a;
  }

  /// Reset every shard (between steps, on the coordinating thread while
  /// no parallel work is in flight).
  void reset_all() {
    for (auto& s : shards_) {
      if (s) s->reset();
    }
  }

  /// Aggregate stats across shards (coordinating thread only).
  std::size_t high_water_total() const;
  std::uint64_t slab_mallocs_total() const;
  std::size_t capacity_total() const;

 private:
  std::array<std::unique_ptr<Arena>, kMaxThreadSlots> shards_;
  std::size_t hint_ = 0;
};

}  // namespace paro
