#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace paro {

void RunningStats::add(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  return count_ == 0 ? 0.0 : m2_ / static_cast<double>(count_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

RunningStats summarize(std::span<const float> values) {
  RunningStats stats;
  for (const float v : values) {
    stats.add(v);
  }
  return stats;
}

double mse(std::span<const float> a, std::span<const float> b) {
  PARO_CHECK(a.size() == b.size());
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    acc += d * d;
  }
  return acc / static_cast<double>(a.size());
}

double rmse(std::span<const float> a, std::span<const float> b) {
  return std::sqrt(mse(a, b));
}

double mae(std::span<const float> a, std::span<const float> b) {
  PARO_CHECK(a.size() == b.size());
  if (a.empty()) return 0.0;
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += std::abs(static_cast<double>(a[i]) - static_cast<double>(b[i]));
  }
  return acc / static_cast<double>(a.size());
}

double cosine_similarity(std::span<const float> a, std::span<const float> b) {
  PARO_CHECK(a.size() == b.size());
  double dot = 0.0, na = 0.0, nb = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    dot += static_cast<double>(a[i]) * static_cast<double>(b[i]);
    na += static_cast<double>(a[i]) * static_cast<double>(a[i]);
    nb += static_cast<double>(b[i]) * static_cast<double>(b[i]);
  }
  if (na == 0.0 && nb == 0.0) return 1.0;
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double snr_db(std::span<const float> reference, std::span<const float> approx) {
  PARO_CHECK(reference.size() == approx.size());
  double signal = 0.0, noise = 0.0;
  for (std::size_t i = 0; i < reference.size(); ++i) {
    const double r = reference[i];
    const double d = r - static_cast<double>(approx[i]);
    signal += r * r;
    noise += d * d;
  }
  if (noise == 0.0) return std::numeric_limits<double>::infinity();
  if (signal == 0.0) return -std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(signal / noise);
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  PARO_CHECK(hi > lo);
  PARO_CHECK(bins > 0);
}

void Histogram::add(double value) {
  const double t = (value - lo_) / (hi_ - lo_);
  auto index = static_cast<std::ptrdiff_t>(
      t * static_cast<double>(counts_.size()));
  index = std::clamp<std::ptrdiff_t>(index, 0,
                                     static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(index)];
  ++total_;
}

void Histogram::add_all(std::span<const float> values) {
  for (const float v : values) {
    add(v);
  }
}

double Histogram::bin_lo(std::size_t index) const {
  PARO_CHECK(index < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(index) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t index) const {
  PARO_CHECK(index < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(index + 1) /
                   static_cast<double>(counts_.size());
}

double Histogram::quantile(double q) const {
  if (total_ == 0) return lo_;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation (1-based, continuous); walk the
  // cumulative counts and interpolate linearly inside the containing bin.
  const double rank = q * static_cast<double>(total_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::uint64_t c = counts_[i];
    if (c == 0) continue;
    const double cum_before = static_cast<double>(cum);
    cum += c;
    if (static_cast<double>(cum) >= rank) {
      const double within = std::clamp(
          (rank - cum_before) / static_cast<double>(c), 0.0, 1.0);
      return bin_lo(i) + within * (bin_hi(i) - bin_lo(i));
    }
  }
  return hi_;
}

double Histogram::tail_fraction(double value) const {
  if (total_ == 0) return 0.0;
  std::uint64_t above = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (bin_lo(i) >= value) {
      above += counts_[i];
    }
  }
  return static_cast<double>(above) / static_cast<double>(total_);
}

}  // namespace paro
