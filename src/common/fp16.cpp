#include "common/fp16.hpp"

#include <bit>
#include <cstring>

namespace paro {

std::uint16_t float_to_fp16_bits(float value) {
  const std::uint32_t f = std::bit_cast<std::uint32_t>(value);
  const std::uint32_t sign = (f >> 16) & 0x8000U;
  const std::int32_t exponent =
      static_cast<std::int32_t>((f >> 23) & 0xFFU) - 127 + 15;
  std::uint32_t mantissa = f & 0x7FFFFFU;

  if (((f >> 23) & 0xFFU) == 0xFFU) {
    // Inf / NaN: preserve NaN-ness with a quiet mantissa bit.
    return static_cast<std::uint16_t>(
        sign | 0x7C00U | (mantissa != 0 ? 0x0200U : 0U));
  }
  if (exponent >= 0x1F) {
    // Overflow → infinity.
    return static_cast<std::uint16_t>(sign | 0x7C00U);
  }
  if (exponent <= 0) {
    // Subnormal (or zero) result: shift the implicit leading 1 into the
    // mantissa and round at the correct position.
    if (exponent < -10) {
      return static_cast<std::uint16_t>(sign);  // rounds to ±0
    }
    mantissa |= 0x800000U;  // implicit 1
    const int shift = 14 - exponent;  // 14..24
    const std::uint32_t kept = mantissa >> shift;
    const std::uint32_t remainder = mantissa & ((1U << shift) - 1U);
    const std::uint32_t half = 1U << (shift - 1);
    std::uint32_t rounded = kept;
    if (remainder > half || (remainder == half && (kept & 1U))) {
      ++rounded;  // ties to even
    }
    return static_cast<std::uint16_t>(sign | rounded);
  }
  // Normal result: round 23-bit mantissa to 10 bits, ties to even.
  const std::uint32_t kept = mantissa >> 13;
  const std::uint32_t remainder = mantissa & 0x1FFFU;
  std::uint32_t bits = (static_cast<std::uint32_t>(exponent) << 10) | kept;
  if (remainder > 0x1000U || (remainder == 0x1000U && (kept & 1U))) {
    ++bits;  // may carry into the exponent — that is correct rounding
  }
  return static_cast<std::uint16_t>(sign | bits);
}

float fp16_bits_to_float(std::uint16_t bits) {
  const std::uint32_t sign = (static_cast<std::uint32_t>(bits) & 0x8000U)
                             << 16;
  const std::uint32_t exponent = (bits >> 10) & 0x1FU;
  const std::uint32_t mantissa = bits & 0x3FFU;

  std::uint32_t f;
  if (exponent == 0x1F) {
    f = sign | 0x7F800000U | (mantissa << 13);  // Inf / NaN
  } else if (exponent == 0) {
    if (mantissa == 0) {
      f = sign;  // ±0
    } else {
      // Subnormal: normalise.
      int e = -1;
      std::uint32_t m = mantissa;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400U) == 0);
      const std::uint32_t exp32 =
          static_cast<std::uint32_t>(127 - 15 - e);
      f = sign | (exp32 << 23) | ((m & 0x3FFU) << 13);
    }
  } else {
    f = sign | ((exponent - 15 + 127) << 23) | (mantissa << 13);
  }
  return std::bit_cast<float>(f);
}

}  // namespace paro
