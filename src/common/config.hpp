// Tiny key=value configuration store used by benches and examples to accept
// command-line overrides (e.g. `bench_fig6a tokens=17776 blocks=42`).
#pragma once

#include <map>
#include <string>

namespace paro {

/// Parses `key=value` tokens and exposes typed getters with defaults.
/// Unknown keys are kept (so callers can validate), malformed tokens throw.
class KeyValueConfig {
 public:
  KeyValueConfig() = default;

  /// Parse argv-style arguments, each of the form key=value.
  static KeyValueConfig from_args(int argc, const char* const* argv);

  void set(const std::string& key, const std::string& value);
  bool contains(const std::string& key) const;

  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  long get_int(const std::string& key, long fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  const std::map<std::string, std::string>& entries() const { return map_; }

 private:
  std::map<std::string, std::string> map_;
};

}  // namespace paro
