// Heap-allocation counting hook for the zero-allocation steady state.
//
// The counting API below is always linked and inert: nothing in the
// library calls note_allocation() unless a test target also links the
// interposing translation unit (tests/support/alloc_interpose.cpp), which
// replaces the global operator new/delete pairs with forwarding versions
// that tick the counter.  Production binaries never pay for it, and the
// sanitizer builds keep their own allocator interposition untouched in
// every target that does not opt in.
//
// Used by the malloc-count regression test: steps >= 2 of a multi-step
// generation must perform ZERO heap allocations on the fused-attention
// path (docs/architecture.md, "Memory & steady state").
#pragma once

#include <cstdint>

namespace paro::alloc_hook {

/// Tick the allocation counter (called by the interposed operator new).
void note_allocation() noexcept;

/// Allocations observed since process start.  Monotonic; only moves when
/// the interposing TU is linked.
std::uint64_t allocation_count() noexcept;

/// True when an interposing TU registered itself (so callers can tell a
/// genuine zero from "hook not linked").
bool interposition_active() noexcept;
void set_interposition_active() noexcept;

}  // namespace paro::alloc_hook
