#include "common/crc32.hpp"

#include <array>
#include <cctype>

#include "common/error.hpp"

namespace paro {

namespace {

std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1U) : c >> 1U;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::string_view data, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = make_table();
  std::uint32_t c = seed ^ 0xFFFFFFFFU;
  for (const char ch : data) {
    c = table[(c ^ static_cast<unsigned char>(ch)) & 0xFFU] ^ (c >> 8U);
  }
  return c ^ 0xFFFFFFFFU;
}

std::string crc32_hex(std::uint32_t crc) {
  static const char* digits = "0123456789abcdef";
  std::string out(8, '0');
  for (int i = 7; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[crc & 0xFU];
    crc >>= 4U;
  }
  return out;
}

std::uint32_t parse_crc32_hex(std::string_view hex) {
  if (hex.size() != 8) {
    throw DataError("checksum must be 8 hex digits, got '" +
                    std::string(hex) + "'");
  }
  std::uint32_t value = 0;
  for (const char ch : hex) {
    value <<= 4U;
    if (ch >= '0' && ch <= '9') {
      value |= static_cast<std::uint32_t>(ch - '0');
    } else if (ch >= 'a' && ch <= 'f') {
      value |= static_cast<std::uint32_t>(ch - 'a' + 10);
    } else if (ch >= 'A' && ch <= 'F') {
      value |= static_cast<std::uint32_t>(ch - 'A' + 10);
    } else {
      throw DataError("checksum has non-hex digit '" + std::string(1, ch) +
                      "'");
    }
  }
  return value;
}

}  // namespace paro
