#include "common/alloc_hook.hpp"

#include <atomic>

namespace paro::alloc_hook {

namespace {
std::atomic<std::uint64_t> g_allocations{0};
std::atomic<bool> g_active{false};
}  // namespace

void note_allocation() noexcept {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t allocation_count() noexcept {
  return g_allocations.load(std::memory_order_relaxed);
}

bool interposition_active() noexcept {
  return g_active.load(std::memory_order_relaxed);
}

void set_interposition_active() noexcept {
  g_active.store(true, std::memory_order_relaxed);
}

}  // namespace paro::alloc_hook
