#include "common/config.hpp"

#include <cstdlib>

#include "common/error.hpp"

namespace paro {

KeyValueConfig KeyValueConfig::from_args(int argc, const char* const* argv) {
  KeyValueConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--benchmark", 0) == 0) {
      continue;  // leave google-benchmark flags alone
    }
    const auto eq = token.find('=');
    PARO_CHECK_MSG(eq != std::string::npos && eq > 0,
                   "expected key=value argument: " + token);
    config.set(token.substr(0, eq), token.substr(eq + 1));
  }
  return config;
}

void KeyValueConfig::set(const std::string& key, const std::string& value) {
  map_[key] = value;
}

bool KeyValueConfig::contains(const std::string& key) const {
  return map_.count(key) != 0;
}

std::string KeyValueConfig::get_string(const std::string& key,
                                       const std::string& fallback) const {
  const auto it = map_.find(key);
  return it == map_.end() ? fallback : it->second;
}

long KeyValueConfig::get_int(const std::string& key, long fallback) const {
  const auto it = map_.find(key);
  if (it == map_.end()) return fallback;
  char* end = nullptr;
  const long value = std::strtol(it->second.c_str(), &end, 10);
  PARO_CHECK_MSG(end != nullptr && *end == '\0',
                 "config key '" + key + "' is not an integer: " + it->second);
  return value;
}

double KeyValueConfig::get_double(const std::string& key,
                                  double fallback) const {
  const auto it = map_.find(key);
  if (it == map_.end()) return fallback;
  char* end = nullptr;
  const double value = std::strtod(it->second.c_str(), &end);
  PARO_CHECK_MSG(end != nullptr && *end == '\0',
                 "config key '" + key + "' is not a number: " + it->second);
  return value;
}

bool KeyValueConfig::get_bool(const std::string& key, bool fallback) const {
  const auto it = map_.find(key);
  if (it == map_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "1" || v == "true" || v == "yes" || v == "on") return true;
  if (v == "0" || v == "false" || v == "no" || v == "off") return false;
  throw ConfigError("config key '" + key + "' is not a boolean: " + v);
}

}  // namespace paro
