#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace paro {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = splitmix64(s);
  }
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits → double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  PARO_CHECK(n > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = ~0ULL - (~0ULL % n);
  std::uint64_t v = next_u64();
  while (v >= limit) {
    v = next_u64();
  }
  return v % n;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform();
  while (u1 <= 0.0) {
    u1 = uniform();
  }
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

Rng Rng::stream(std::uint64_t seed, std::uint64_t stream_id) {
  // Two decoupled splitmix64 chains — one keyed by the seed, one by the
  // stream id — XORed into every state word.  A ±k·golden-ratio relation
  // between two seeds therefore cannot shift one stream's state-word
  // sequence onto another's, which is the overlap hazard of collapsing
  // (seed, stream) into a single 64-bit value first.
  std::uint64_t a = seed ^ 0x6a09e667f3bcc909ULL;
  std::uint64_t b = stream_id * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL;
  Rng r(0);
  bool nonzero = false;
  for (auto& word : r.state_) {
    word = splitmix64(a) ^ rotl(splitmix64(b), 27);
    nonzero |= word != 0;
  }
  if (!nonzero) {
    // xoshiro must not start from the all-zero state (probability 2^-256,
    // but cheap to rule out entirely).
    r.state_[0] = 0x9e3779b97f4a7c15ULL;
  }
  return r;
}

Rng Rng::fork(std::uint64_t stream_id) const {
  // Mix the current state with the stream id through splitmix64 so forks
  // from the same parent but different ids are independent.
  std::uint64_t s = state_[0] ^ rotl(state_[2], 31) ^ (stream_id * 0xd1342543de82ef95ULL + 1);
  return Rng(splitmix64(s));
}

}  // namespace paro
