#include "common/arena.hpp"

#include <algorithm>
#include <mutex>

#include "common/error.hpp"

namespace paro {

Arena::Arena(std::size_t hint_bytes) {
  if (hint_bytes > 0) {
    // Round the hint up to the slab granule so repeated sessions with
    // slightly different peaks land on the same capacity class.
    const std::size_t size =
        (hint_bytes + kDefaultSlabBytes - 1) / kDefaultSlabBytes *
        kDefaultSlabBytes;
    Slab s;
    s.data = std::make_unique<std::byte[]>(size);
    s.size = size;
    capacity_ += size;
    ++slab_mallocs_;
    slabs_.push_back(std::move(s));
  }
}

void* Arena::allocate(std::size_t bytes, std::size_t align) {
  PARO_CHECK_MSG(align != 0 && (align & (align - 1)) == 0,
                 "arena alignment must be a power of two");
  while (active_ < slabs_.size()) {
    Slab& s = slabs_[active_];
    const std::size_t base =
        reinterpret_cast<std::uintptr_t>(s.data.get()) + s.offset;
    const std::size_t pad = (align - base % align) % align;
    if (s.offset + pad + bytes <= s.size) {
      void* p = s.data.get() + s.offset + pad;
      s.offset += pad + bytes;
      in_use_ += pad + bytes;
      if (in_use_ > high_water_) high_water_ = in_use_;
      return p;
    }
    ++active_;  // this slab is full for a request this size; try the next
  }
  // No retained slab fits: carve a new one (the only heap traffic an
  // arena ever produces).  operator new memory is aligned for
  // max_align_t; larger alignments are absorbed by the pad logic above
  // on the recursive retry.
  const std::size_t need = bytes + align;
  const std::size_t size = std::max(need, kDefaultSlabBytes);
  Slab s;
  s.data = std::make_unique<std::byte[]>(size);
  s.size = size;
  capacity_ += size;
  ++slab_mallocs_;
  slabs_.push_back(std::move(s));
  active_ = slabs_.size() - 1;
  return allocate(bytes, align);
}

void Arena::reset() {
  for (Slab& s : slabs_) s.offset = 0;
  active_ = 0;
  in_use_ = 0;
}

void Arena::release_all() {
  slabs_.clear();
  active_ = 0;
  in_use_ = 0;
  capacity_ = 0;
}

namespace {

/// Free-list of thread slots.  A thread leases a slot on first use and a
/// thread-local guard returns it at thread exit, so slot ids are bounded
/// by the peak live-thread count (pool rebuilds recycle ids) and a
/// ShardedArena's fixed array never overflows in practice.
struct SlotPool {
  std::mutex mu;
  std::vector<std::size_t> free;
  std::size_t next = 0;

  std::size_t acquire() {
    const std::lock_guard<std::mutex> lock(mu);
    if (!free.empty()) {
      const std::size_t slot = free.back();
      free.pop_back();
      return slot;
    }
    PARO_CHECK_MSG(next < kMaxThreadSlots,
                   "thread arena slots exhausted (kMaxThreadSlots)");
    return next++;
  }

  void release(std::size_t slot) {
    const std::lock_guard<std::mutex> lock(mu);
    free.push_back(slot);
  }
};

SlotPool& slot_pool() {
  static SlotPool pool;  // leaked-on-exit by design (threads may outlive
                         // static destruction order otherwise)
  return pool;
}

struct SlotLease {
  std::size_t slot;
  SlotLease() : slot(slot_pool().acquire()) {}
  ~SlotLease() { slot_pool().release(slot); }
};

}  // namespace

std::size_t thread_arena_slot() {
  thread_local SlotLease lease;
  return lease.slot;
}

std::size_t ShardedArena::high_water_total() const {
  std::size_t total = 0;
  for (const auto& s : shards_) {
    if (s) total += s->high_water();
  }
  return total;
}

std::uint64_t ShardedArena::slab_mallocs_total() const {
  std::uint64_t total = 0;
  for (const auto& s : shards_) {
    if (s) total += s->slab_mallocs();
  }
  return total;
}

std::size_t ShardedArena::capacity_total() const {
  std::size_t total = 0;
  for (const auto& s : shards_) {
    if (s) total += s->capacity();
  }
  return total;
}

}  // namespace paro
