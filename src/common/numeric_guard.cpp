#include "common/numeric_guard.hpp"

#include <cmath>
#include <string>

#include "common/error.hpp"
#include "common/logging.hpp"

namespace paro {

namespace {

[[noreturn]] void throw_nonfinite(std::string_view context,
                                  std::size_t first_index,
                                  std::size_t count, std::size_t total) {
  throw NumericalError(std::string(context) + ": " + std::to_string(count) +
                       " non-finite value(s) in " + std::to_string(total) +
                       " (first at flat index " +
                       std::to_string(first_index) + ")");
}

}  // namespace

const char* nonfinite_policy_name(NonFinitePolicy policy) {
  switch (policy) {
    case NonFinitePolicy::kThrow:
      return "throw";
    case NonFinitePolicy::kSanitize:
      return "sanitize";
    case NonFinitePolicy::kLog:
      return "log";
  }
  return "?";
}

NonFinitePolicy parse_nonfinite_policy(std::string_view name) {
  if (name == "throw") return NonFinitePolicy::kThrow;
  if (name == "sanitize") return NonFinitePolicy::kSanitize;
  if (name == "log") return NonFinitePolicy::kLog;
  throw ConfigError("unknown non-finite policy '" + std::string(name) +
                    "' (expected throw|sanitize|log)");
}

std::size_t count_nonfinite(std::span<const float> data) {
  std::size_t count = 0;
  for (const float v : data) {
    if (!std::isfinite(v)) ++count;
  }
  return count;
}

std::size_t guard_nonfinite(std::span<float> data, NonFinitePolicy policy,
                            std::string_view context) {
  std::size_t count = 0;
  std::size_t first = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (std::isfinite(data[i])) continue;
    if (count == 0) first = i;
    ++count;
    if (policy == NonFinitePolicy::kSanitize) data[i] = 0.0F;
  }
  if (count == 0) return 0;
  switch (policy) {
    case NonFinitePolicy::kThrow:
      throw_nonfinite(context, first, count, data.size());
    case NonFinitePolicy::kSanitize:
      PARO_LOG(kWarn) << context << ": sanitized " << count
                      << " non-finite value(s)";
      break;
    case NonFinitePolicy::kLog:
      PARO_LOG(kWarn) << context << ": " << count
                      << " non-finite value(s) passing through";
      break;
  }
  return count;
}

std::size_t guard_nonfinite_readonly(std::span<const float> data,
                                     NonFinitePolicy policy,
                                     std::string_view context) {
  std::size_t count = 0;
  std::size_t first = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (std::isfinite(data[i])) continue;
    if (count == 0) first = i;
    ++count;
  }
  if (count == 0) return 0;
  if (policy == NonFinitePolicy::kThrow) {
    throw_nonfinite(context, first, count, data.size());
  }
  PARO_LOG(kWarn) << context << ": " << count << " non-finite value(s)";
  return count;
}

}  // namespace paro
