#include "common/fault.hpp"

#include <atomic>
#include <cstdlib>
#include <map>
#include <mutex>
#include <set>
#include <sstream>

#include "common/error.hpp"

namespace paro::fault {

namespace {

/// splitmix64: one 64-bit state step — the standard cheap mixer.  Makes the
/// per-hit seed a pure function of (arm seed, hit index).
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30U)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27U)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31U);
}

/// Canonical injection sites and where they fire.  Kept here (not in the
/// modules that evaluate them) so spec validation works even in binaries
/// the linker dead-strips, and so docs/robustness.md has one source of
/// truth to mirror.
constexpr const char* kBuiltinSites[] = {
    // calibration_io: flip a seed-chosen bit in a head record's bytes
    // before it is parsed (models at-rest corruption).
    "calib.read.corrupt-bit",
    // calibration_io: cut a head record's bytes short (models a torn read
    // or a file truncated by a crashed writer).
    "calib.read.truncate",
    // calibration_io: abandon save_calibration_file mid-write, before the
    // atomic rename (models a crash during `paro_cli calibrate`).
    "calib.write.truncate",
    // attention pipeline: poison one element of the Q input at the
    // entrance of quantized_attention (both executors).
    "attn.input.nonfinite",
    // attention executors: poison one logit after QKᵀ — the full N×N
    // matrix (materialized) or a stripe buffer (streamed).
    "attn.logits.nonfinite",
    // thread pool: throw from inside a pool task (run_chunks).
    "pool.task.throw",
};

std::set<std::string>& site_registry() {
  static std::set<std::string> registry = [] {
    std::set<std::string> seeded;
    for (const char* site : kBuiltinSites) seeded.insert(site);
    return seeded;
  }();
  return registry;
}

std::mutex& registry_mutex() {
  static std::mutex mu;
  return mu;
}

}  // namespace

struct Injector::Impl {
  std::atomic<bool> enabled{false};
  mutable std::mutex mu;
  std::map<std::string, Arm, std::less<>> arms;
  struct SiteCounters {
    std::uint64_t hits = 0;
    std::uint64_t fires = 0;
  };
  std::map<std::string, SiteCounters, std::less<>> counters;
};

Injector::Injector() : impl_(new Impl) {
  // Leaked intentionally (process-lifetime singleton member).
  const char* env = std::getenv("PARO_FAULT");
  if (env != nullptr && env[0] != '\0') {
    configure(env);
  }
}

Injector& Injector::global() {
  static Injector injector;
  return injector;
}

void Injector::register_site(const char* name) {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  site_registry().insert(name);
}

std::vector<std::string> Injector::registered_sites() {
  const std::lock_guard<std::mutex> lock(registry_mutex());
  return {site_registry().begin(), site_registry().end()};
}

void Injector::configure(const std::string& spec) {
  std::map<std::string, Arm, std::less<>> arms;
  std::istringstream ss(spec);
  std::string part;
  while (std::getline(ss, part, ';')) {
    if (part.empty()) continue;
    Arm arm;
    std::istringstream ps(part);
    std::string field;
    int index = 0;
    while (std::getline(ps, field, ':')) {
      if (index == 0) {
        arm.site = field;
      } else {
        std::uint64_t value = 0;
        std::istringstream fs(field);
        if (!(fs >> value) || !fs.eof()) {
          throw ConfigError("fault spec field '" + field + "' in '" + part +
                            "' is not an unsigned integer");
        }
        if (index == 1) arm.skip = value;
        if (index == 2) arm.count = value;
        if (index == 3) arm.seed = value;
        if (index > 3) {
          throw ConfigError("fault spec '" + part +
                            "' has too many fields (site[:skip[:count[:seed]]])");
        }
      }
      ++index;
    }
    if (arm.site.empty()) {
      throw ConfigError("fault spec '" + part + "' names no site");
    }
    {
      const std::lock_guard<std::mutex> lock(registry_mutex());
      if (site_registry().count(arm.site) == 0) {
        std::string known;
        for (const std::string& s : site_registry()) {
          known += known.empty() ? s : ", " + s;
        }
        throw ConfigError("unknown fault site '" + arm.site +
                          "' (registered: " + known + ")");
      }
    }
    arms[arm.site] = arm;
  }
  const std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->arms = std::move(arms);
  impl_->counters.clear();
  impl_->enabled.store(!impl_->arms.empty(), std::memory_order_release);
}

void Injector::clear() {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->arms.clear();
  impl_->counters.clear();
  impl_->enabled.store(false, std::memory_order_release);
}

bool Injector::enabled() const {
  return impl_->enabled.load(std::memory_order_acquire);
}

bool Injector::should_fire(std::string_view site, std::uint64_t* seed_out) {
  if (!enabled()) return false;
  const std::lock_guard<std::mutex> lock(impl_->mu);
  auto counters = impl_->counters.find(site);
  if (counters == impl_->counters.end()) {
    counters = impl_->counters.emplace(std::string(site),
                                       Impl::SiteCounters{}).first;
  }
  const std::uint64_t hit = counters->second.hits++;
  const auto arm = impl_->arms.find(site);
  if (arm == impl_->arms.end()) return false;
  if (hit < arm->second.skip) return false;
  if (hit - arm->second.skip >= arm->second.count) return false;
  ++counters->second.fires;
  if (seed_out != nullptr) {
    *seed_out = mix64(arm->second.seed ^ mix64(hit + 1));
  }
  return true;
}

std::uint64_t Injector::hits(std::string_view site) const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->counters.find(site);
  return it == impl_->counters.end() ? 0 : it->second.hits;
}

std::uint64_t Injector::fires(std::string_view site) const {
  const std::lock_guard<std::mutex> lock(impl_->mu);
  const auto it = impl_->counters.find(site);
  return it == impl_->counters.end() ? 0 : it->second.fires;
}

}  // namespace paro::fault
