// Error handling primitives shared by every PARO module.
//
// The library throws `paro::Error` (an std::runtime_error subclass) for
// recoverable misuse (bad shapes, bad configs) and uses PARO_CHECK for
// internal invariants.  Following the C++ Core Guidelines (E.2, I.10) we
// never signal errors through return codes in the public API.
#pragma once

#include <stdexcept>
#include <string>

namespace paro {

/// Base exception for all errors raised by the PARO library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a tensor / matrix shape does not match an operation.
class ShapeError : public Error {
 public:
  explicit ShapeError(const std::string& what) : Error(what) {}
};

/// Raised when a configuration value is out of its documented domain.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

/// Raised when the environment fails us: a file that cannot be opened,
/// a write that fails mid-stream, a rename that does not land.
class IoError : public Error {
 public:
  explicit IoError(const std::string& what) : Error(what) {}
};

/// Raised when data READ successfully is semantically invalid: a checksum
/// mismatch, a non-bijective permutation, an out-of-domain bitwidth.  The
/// distinction from IoError matters for recovery — DataError on one head
/// record can be quarantined, IoError usually dooms the whole artifact.
class DataError : public Error {
 public:
  explicit DataError(const std::string& what) : Error(what) {}
};

/// Raised by the numerical guardrails when a NaN/Inf crosses a stage
/// boundary under NonFinitePolicy::kThrow (common/numeric_guard.hpp).
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

/// Stable name of the dynamic error type ("DataError", "IoError", ...);
/// "Error" for the base class, "std::exception" for foreign exceptions.
/// The CLI prints it so scripts can branch on the failure class.
const char* error_kind_name(const std::exception& e);

/// Run `fn`, prefixing any paro::Error it throws with `context` while
/// preserving the dynamic error type.  This is how failures deep in the
/// pipeline come out naming the (layer, head, tile) that produced them:
///
///   with_error_context("layer 3 head 1", [&] { return attention(...); });
///
/// throws e.g. NumericalError("layer 3 head 1: attn.logits: ...").
template <typename Fn>
auto with_error_context(const std::string& context, Fn&& fn)
    -> decltype(fn()) {
  try {
    return fn();
  } catch (const ShapeError& e) {
    throw ShapeError(context + ": " + e.what());
  } catch (const ConfigError& e) {
    throw ConfigError(context + ": " + e.what());
  } catch (const IoError& e) {
    throw IoError(context + ": " + e.what());
  } catch (const DataError& e) {
    throw DataError(context + ": " + e.what());
  } catch (const NumericalError& e) {
    throw NumericalError(context + ": " + e.what());
  } catch (const Error& e) {
    throw Error(context + ": " + e.what());
  }
}

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file,
                                      int line, const std::string& msg);
}  // namespace detail

}  // namespace paro

/// Invariant check that throws paro::Error with source location on failure.
/// Enabled in all build types: the simulator is a correctness tool and the
/// cost of the checks is negligible next to the modelled workloads.
#define PARO_CHECK(expr)                                                    \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::paro::detail::throw_check_failure(#expr, __FILE__, __LINE__, "");   \
    }                                                                       \
  } while (false)

/// Like PARO_CHECK but with a caller-supplied message appended.
#define PARO_CHECK_MSG(expr, msg)                                           \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::paro::detail::throw_check_failure(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                       \
  } while (false)
