// Error handling primitives shared by every PARO module.
//
// The library throws `paro::Error` (an std::runtime_error subclass) for
// recoverable misuse (bad shapes, bad configs) and uses PARO_CHECK for
// internal invariants.  Following the C++ Core Guidelines (E.2, I.10) we
// never signal errors through return codes in the public API.
#pragma once

#include <stdexcept>
#include <string>

namespace paro {

/// Base exception for all errors raised by the PARO library.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a tensor / matrix shape does not match an operation.
class ShapeError : public Error {
 public:
  explicit ShapeError(const std::string& what) : Error(what) {}
};

/// Raised when a configuration value is out of its documented domain.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file,
                                      int line, const std::string& msg);
}  // namespace detail

}  // namespace paro

/// Invariant check that throws paro::Error with source location on failure.
/// Enabled in all build types: the simulator is a correctness tool and the
/// cost of the checks is negligible next to the modelled workloads.
#define PARO_CHECK(expr)                                                    \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::paro::detail::throw_check_failure(#expr, __FILE__, __LINE__, "");   \
    }                                                                       \
  } while (false)

/// Like PARO_CHECK but with a caller-supplied message appended.
#define PARO_CHECK_MSG(expr, msg)                                           \
  do {                                                                      \
    if (!(expr)) {                                                          \
      ::paro::detail::throw_check_failure(#expr, __FILE__, __LINE__, (msg)); \
    }                                                                       \
  } while (false)
