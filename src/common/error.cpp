#include "common/error.hpp"

#include <sstream>

namespace paro::detail {

void throw_check_failure(const char* expr, const char* file, int line,
                         const std::string& msg) {
  std::ostringstream os;
  os << "PARO_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  throw Error(os.str());
}

}  // namespace paro::detail
