#include "common/error.hpp"

#include <sstream>

namespace paro {

const char* error_kind_name(const std::exception& e) {
  if (dynamic_cast<const ShapeError*>(&e) != nullptr) return "ShapeError";
  if (dynamic_cast<const ConfigError*>(&e) != nullptr) return "ConfigError";
  if (dynamic_cast<const IoError*>(&e) != nullptr) return "IoError";
  if (dynamic_cast<const DataError*>(&e) != nullptr) return "DataError";
  if (dynamic_cast<const NumericalError*>(&e) != nullptr) {
    return "NumericalError";
  }
  if (dynamic_cast<const Error*>(&e) != nullptr) return "Error";
  return "std::exception";
}

}  // namespace paro

namespace paro::detail {

void throw_check_failure(const char* expr, const char* file, int line,
                         const std::string& msg) {
  std::ostringstream os;
  os << "PARO_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) {
    os << " — " << msg;
  }
  throw Error(os.str());
}

}  // namespace paro::detail
