// Deterministic random number generation.
//
// Every stochastic component in the repo (synthetic attention heads,
// synthetic latents, noise injection in tests) draws from paro::Rng so that
// experiments are reproducible from a single seed.  The generator is
// xoshiro256++, seeded through splitmix64 per the reference implementation.
#pragma once

#include <cstdint>
#include <vector>

namespace paro {

/// xoshiro256++ PRNG with Gaussian / uniform helpers.
///
/// Not thread-safe; give each thread (or each synthetic head) its own
/// instance, e.g. via `fork(stream_id)`.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n).  Requires n > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal via Box–Muller (cached second variate).
  double normal();

  /// Normal with the given mean / standard deviation.
  double normal(double mean, double stddev);

  /// Deterministically derive an independent stream for `stream_id`.
  Rng fork(std::uint64_t stream_id) const;

  /// Counter-based stream derivation for parallel tasks: the generator for
  /// (seed, stream_id) depends only on those two values — no parent state,
  /// no draw order — so task i can seed `Rng::stream(seed, i)` from any
  /// thread, in any order, and always get the same sequence.  Distinct
  /// stream ids mix through independent splitmix64 chains into all four
  /// state words, so streams do not overlap (tests/common/test_rng.cpp
  /// covers 10k-draw disjointness).
  static Rng stream(std::uint64_t seed, std::uint64_t stream_id);

  /// Fisher–Yates shuffle of `values`.
  template <typename T>
  void shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_index(i));
      std::swap(values[i - 1], values[j]);
    }
  }

 private:
  std::uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// splitmix64 step, exposed for seeding helpers and tests.
std::uint64_t splitmix64(std::uint64_t& state);

}  // namespace paro
