// CRC-32 (IEEE 802.3, polynomial 0xEDB88320) over byte strings.
//
// Used to checksum every head record of a `paro-calib v2` artifact so a
// flipped bit between calibration and inference is detected at load time
// instead of silently skewing quality numbers (docs/robustness.md).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace paro {

/// CRC-32 of `data`.  `seed` is a previous CRC to continue from, so long
/// payloads can be folded incrementally: crc32(b, crc32(a)) == crc32(a+b).
std::uint32_t crc32(std::string_view data, std::uint32_t seed = 0);

/// `crc` as 8 lowercase hex digits (the artifact wire format).
std::string crc32_hex(std::uint32_t crc);

/// Parse an 8-hex-digit checksum; throws paro::DataError on malformed input.
std::uint32_t parse_crc32_hex(std::string_view hex);

}  // namespace paro
