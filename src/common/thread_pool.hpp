// Deterministic fixed-size thread pool.
//
// Everything embarrassingly parallel in the repo — the 6-plan calibration
// sweep, per-head quantized attention, per-tile sensitivity scoring, the
// independent head simulations — fans out through this pool.  Two design
// rules make multi-threaded runs bitwise-identical to single-threaded ones:
//
//   1. Work is split into chunks by `grain` ALONE.  The chunk layout of
//      parallel_for(begin, end, grain, fn) depends only on (begin, end,
//      grain), never on the thread count, so every index is processed with
//      exactly the same neighbouring arithmetic at any pool size.
//   2. Reductions go through ordered_reduce: each chunk produces a partial
//      on its own, and the partials are folded LEFT-TO-RIGHT in chunk-index
//      order on the calling thread.  Floating-point accumulation therefore
//      has one fixed association for every thread count (including 1).
//
// The pool is work-stealing-free on purpose: a shared atomic chunk cursor
// hands chunks to whichever thread is free.  WHICH thread runs a chunk is
// racy; WHAT the chunk computes is not, and nothing downstream may depend
// on the assignment.
//
// Nesting: a parallel_for issued from inside a pool task runs inline on
// the issuing worker (no deadlock, no oversubscription).  The outermost
// loop level owns the parallelism — calibrate_model fans out per head and
// the per-head matmuls run serially inside the task.
#pragma once

#include <cstddef>
#include <cstdint>
#include <type_traits>
#include <vector>

namespace paro {

/// Observer of parallel-region lifecycle.  The obs layer installs one to
/// link pool chunks back to the span that spawned them (Chrome-trace flow
/// events); the pool itself stays obs-free.  region_begin runs on the
/// submitting thread before workers wake and returns a nonzero flow base
/// to receive per-chunk callbacks (0 opts the region out entirely, e.g.
/// while the profiler is disabled).  chunk_begin/chunk_end bracket every
/// chunk body on whichever thread executes it; region_end runs on the
/// submitting thread after the barrier.  Callbacks must not issue parallel
/// work.
class PoolTraceObserver {
 public:
  virtual ~PoolTraceObserver() = default;
  virtual std::uint64_t region_begin(std::size_t n_chunks) = 0;
  virtual void chunk_begin(std::uint64_t flow_base, std::size_t chunk) = 0;
  virtual void chunk_end() = 0;
  virtual void region_end(std::uint64_t flow_base) = 0;
};

/// Install the process-wide pool observer (nullptr removes it).  Not
/// synchronized against in-flight regions — install at startup, before
/// parallel work begins, and keep the observer alive for process life.
void set_pool_trace_observer(PoolTraceObserver* observer);
PoolTraceObserver* pool_trace_observer();

class ThreadPool {
 public:
  /// `threads` == 0 → std::thread::hardware_concurrency().  The calling
  /// thread participates in every parallel region, so a pool of size N
  /// spawns N−1 workers and ThreadPool(1) is fully serial.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total execution width (workers + the calling thread), >= 1.
  std::size_t threads() const { return width_; }

  /// Invoke `body(chunk_begin, chunk_end, chunk_index)` for every chunk of
  /// [begin, end) of size `grain` (last chunk may be short).  Chunk layout
  /// depends only on (begin, end, grain).  Blocks until every chunk ran;
  /// the first exception thrown by any chunk is rethrown here.
  ///
  /// The body is passed by ADDRESS through a monomorphic trampoline, not
  /// converted to std::function — a large-capture lambda would blow
  /// std::function's small-buffer limit and heap-allocate on every call,
  /// which the zero-allocation steady state of the attention hot paths
  /// cannot afford (docs/architecture.md, "Memory & steady state").
  template <typename Body>
  void for_chunks(std::size_t begin, std::size_t end, std::size_t grain,
                  Body&& body) {
    for_chunks_erased(
        begin, end, grain, const_cast<void*>(static_cast<const void*>(&body)),
        [](void* ctx, std::size_t c0, std::size_t c1, std::size_t chunk) {
          (*static_cast<std::remove_reference_t<Body>*>(ctx))(c0, c1, chunk);
        });
  }

  /// Type-erased core of for_chunks: `fn(ctx, c0, c1, chunk)` for every
  /// chunk.  The ctx/fn pair lives in the Job by value — no std::function,
  /// no allocation on any path.
  void for_chunks_erased(std::size_t begin, std::size_t end, std::size_t grain,
                         void* ctx,
                         void (*fn)(void*, std::size_t, std::size_t,
                                    std::size_t));

  /// Per-index parallel loop: fn(i) for i in [begin, end).
  template <typename Fn>
  void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                    Fn&& fn) {
    for_chunks(begin, end, grain,
               [&fn](std::size_t c0, std::size_t c1, std::size_t /*chunk*/) {
                 for (std::size_t i = c0; i < c1; ++i) fn(i);
               });
  }

  /// Deterministic parallel reduction.  `chunk_fn(c0, c1)` maps one chunk
  /// to a partial value of type T; the partials are combined left-to-right
  /// in chunk order: combine(combine(init, p0), p1)...  Same `grain` →
  /// same association → bitwise-identical result at any thread count.
  template <typename T, typename ChunkFn, typename CombineFn>
  T ordered_reduce(std::size_t begin, std::size_t end, std::size_t grain,
                   T init, ChunkFn&& chunk_fn, CombineFn&& combine) {
    const std::size_t n_chunks = num_chunks(begin, end, grain);
    std::vector<T> partials(n_chunks, init);
    for_chunks(begin, end, grain,
               [&](std::size_t c0, std::size_t c1, std::size_t chunk) {
                 partials[chunk] = chunk_fn(c0, c1);
               });
    T acc = init;
    for (std::size_t c = 0; c < n_chunks; ++c) {
      acc = combine(acc, partials[c]);
    }
    return acc;
  }

  /// Number of chunks for_chunks will produce (grain of 0 is treated as 1).
  static std::size_t num_chunks(std::size_t begin, std::size_t end,
                                std::size_t grain);

  /// True while the calling thread is executing a pool task (used to run
  /// nested parallel regions inline).
  static bool in_worker();

 private:
  struct Job;
  void worker_main();
  static void run_chunks(Job& job);

  struct Impl;
  Impl* impl_;  // threads/mutex/condvars behind an incomplete type (keeps
                // <thread> and <condition_variable> out of this header)
  std::size_t width_ = 1;  ///< workers + caller
};

/// Process-wide pool used by the library's parallel hot paths.  Created on
/// first use with the configured thread count.
ThreadPool& global_pool();

/// Sets the thread count for global_pool(): 0 → hardware concurrency,
/// 1 → serial, N → N-wide.  Tears down and rebuilds the pool, so call it
/// from a single thread while no parallel work is in flight (CLI / bench
/// startup, test setup).  Results never depend on this knob.
void set_global_threads(std::size_t threads);

/// Execution width global_pool() currently provides (resolves 0).
std::size_t global_threads();

}  // namespace paro
