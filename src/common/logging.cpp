#include "common/logging.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>
#include <iostream>
#include <mutex>

namespace paro {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};
std::atomic<bool> g_timestamps{false};
std::atomic<std::ostream*> g_sink{nullptr};  ///< nullptr → std::cerr
std::mutex g_emit_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo:  return "INFO";
    case LogLevel::kWarn:  return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff:   return "OFF";
  }
  return "?";
}

std::string utc_timestamp() {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  gmtime_r(&secs, &tm);
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                tm.tm_year + 1900, tm.tm_mon + 1, tm.tm_mday, tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));
  return buf;
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(); }

void set_log_sink(std::ostream* sink) { g_sink.store(sink); }

void set_log_timestamps(bool enabled) { g_timestamps.store(enabled); }
bool log_timestamps() { return g_timestamps.load(); }

namespace detail {
void log_emit(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) {
    return;
  }
  // Build the full line first so the guarded section is one write.
  std::string line;
  if (g_timestamps.load()) {
    line += utc_timestamp();
    line += ' ';
  }
  line += "[paro:";
  line += level_name(level);
  line += "] ";
  line += message;
  line += '\n';

  const std::lock_guard<std::mutex> lock(g_emit_mutex);
  std::ostream* sink = g_sink.load();
  (sink != nullptr ? *sink : std::cerr) << line << std::flush;
}
}  // namespace detail

}  // namespace paro
