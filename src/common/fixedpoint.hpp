// Fixed-point helpers shared by the quantizers and the PE / LDZ models.
//
// The PARO leading-zero (LDZ) unit (paper §IV-B, Fig. 4a) compresses an
// 8-bit operand of QK^T down to the bitwidth of the *output* attention-map
// block: it finds the most significant valid bit (MSVB — the first 1 of a
// positive value, the first 0 of a negative value in two's complement),
// keeps the MSVB plus the following (b-1) magnitude bits, and records the
// bit index so the product can be restored by a left shift.  This header
// implements that transform in sign-magnitude form, which is arithmetically
// identical and easier to verify:  v  ≈  sign(v) · (|v| >> shift) << shift.
#pragma once

#include <cstdint>

namespace paro {

/// Number of significant bits in `magnitude` (0 for 0).
int bit_length(std::uint32_t magnitude);

/// Clamp a wide integer into the signed b-bit range [-(2^(b-1)), 2^(b-1)-1].
std::int32_t clamp_to_signed_bits(std::int64_t value, int bits);

/// Clamp into the unsigned b-bit range [0, 2^b - 1].
std::int32_t clamp_to_unsigned_bits(std::int64_t value, int bits);

/// Result of LDZ truncation of an 8-bit operand to `bits` magnitude bits.
///
/// `mantissa` is a signed value whose magnitude fits in `bits` bits
/// (|mantissa| <= 2^bits - 1); `shift` is the left-shift that restores the
/// original scale.  Invariant: |mantissa << shift| <= |value| and the
/// truncation error is < 2^shift.
struct LdzCode {
  std::int32_t mantissa = 0;
  int shift = 0;
};

/// Truncate an 8-bit signed operand to `bits` significant magnitude bits.
/// `bits` must be in {1, ..., 8}.  bits >= 8 (or small magnitudes) are
/// returned exactly with shift 0.
///
/// Example from the paper: value 0b00011010 (26) at bits=2 →
/// mantissa 0b11 (3), shift 3; restored product error 26-24 = 2 < 2^3.
LdzCode ldz_truncate(std::int32_t value, int bits);

/// Restore a product computed with a truncated operand: prod << shift.
inline std::int64_t ldz_restore(std::int64_t product, int shift) {
  return product << shift;
}

/// Convenience: the dequantized approximation ldz gives for `value`.
inline std::int32_t ldz_approximate(std::int32_t value, int bits) {
  const LdzCode code = ldz_truncate(value, bits);
  return static_cast<std::int32_t>(ldz_restore(code.mantissa, code.shift));
}

}  // namespace paro
