// Minimal leveled logger.
//
// Benches and examples print their results through std::cout directly;
// the logger is for diagnostics from inside the library (simulator phase
// transitions, calibration progress) that a user may want to silence.
#pragma once

#include <iosfwd>
#include <sstream>
#include <string>

namespace paro {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold.  Messages below the threshold are discarded.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Redirect log output.  Passing nullptr restores the default (stderr —
/// deliberately not stdout, so machine-readable output like the CLI's
/// JSON reports is never corrupted by diagnostics).  The sink must
/// outlive all logging; emission is serialized by an internal mutex.
void set_log_sink(std::ostream* sink);

/// Prefix every line with a UTC timestamp (`2026-08-06T12:34:56.789Z`).
/// Off by default; the level prefix is always present.
void set_log_timestamps(bool enabled);
bool log_timestamps();

namespace detail {
/// Formats the prefix and writes the whole line under a single
/// mutex-guarded sink write, so concurrent log statements never
/// interleave mid-line.
void log_emit(LogLevel level, const std::string& message);
}

/// Stream-style log statement:  PARO_LOG(kInfo) << "calibrated " << n;
/// The temporary collects the message and emits it on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { detail::log_emit(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace paro

#define PARO_LOG(level) ::paro::LogLine(::paro::LogLevel::level)
