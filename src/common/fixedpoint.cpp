#include "common/fixedpoint.hpp"

#include <cstdlib>

#include "common/error.hpp"

namespace paro {

int bit_length(std::uint32_t magnitude) {
  int n = 0;
  while (magnitude != 0) {
    ++n;
    magnitude >>= 1;
  }
  return n;
}

std::int32_t clamp_to_signed_bits(std::int64_t value, int bits) {
  PARO_CHECK(bits >= 1 && bits <= 31);
  const std::int64_t lo = -(std::int64_t{1} << (bits - 1));
  const std::int64_t hi = (std::int64_t{1} << (bits - 1)) - 1;
  if (value < lo) return static_cast<std::int32_t>(lo);
  if (value > hi) return static_cast<std::int32_t>(hi);
  return static_cast<std::int32_t>(value);
}

std::int32_t clamp_to_unsigned_bits(std::int64_t value, int bits) {
  PARO_CHECK(bits >= 1 && bits <= 31);
  const std::int64_t hi = (std::int64_t{1} << bits) - 1;
  if (value < 0) return 0;
  if (value > hi) return static_cast<std::int32_t>(hi);
  return static_cast<std::int32_t>(value);
}

LdzCode ldz_truncate(std::int32_t value, int bits) {
  PARO_CHECK_MSG(bits >= 1 && bits <= 8, "LDZ bits must be in [1,8]");
  PARO_CHECK_MSG(value >= -255 && value <= 255,
                 "LDZ operates on (at most) 8-bit magnitudes");
  const bool negative = value < 0;
  const std::uint32_t magnitude =
      static_cast<std::uint32_t>(negative ? -value : value);
  const int length = bit_length(magnitude);
  LdzCode code;
  code.shift = length > bits ? length - bits : 0;
  std::int32_t mant = static_cast<std::int32_t>(magnitude >> code.shift);
  code.mantissa = negative ? -mant : mant;
  return code;
}

}  // namespace paro
