#include "kernels/pack.hpp"

#include "common/error.hpp"
#include "kernels/kernels.hpp"

namespace paro::kernels {

void PackedLdzK::begin_build(std::size_t rows, std::size_t d,
                             const std::vector<int>& bitwidths) {
  // Distinct sub-8 bitwidths, ascending.  Bits live in [1,7], so a fixed
  // flag array keeps the selection itself off the heap.
  bool want[8] = {};
  for (const int b : bitwidths) {
    if (b >= 1 && b <= 7) want[b] = true;
  }
  std::size_t n_wanted = 0;
  for (int b = 1; b <= 7; ++b) {
    if (want[b]) ++n_wanted;
  }
  // When the geometry (rows, d, plane set) matches what we already hold,
  // refill the retained plane storage in place: K changes every diffusion
  // step but its packed footprint does not, and assign() at an unchanged
  // size is a fill rather than a reallocation, so the steady-state repack
  // is allocation-free.
  bool reuse = rows_ == rows && d_ == d && planes_.size() == n_wanted;
  if (reuse) {
    std::size_t i = 0;
    for (int b = 1; b <= 7 && reuse; ++b) {
      if (want[b]) reuse = planes_[i++].bits == b;
    }
  }
  rows_ = rows;
  d_ = d;
  if (!reuse) {
    planes_.clear();
    for (int b = 1; b <= 7; ++b) {
      if (!want[b]) continue;
      Plane p;
      p.bits = b;
      p.mag_stride = ldz_mag_bytes(d, b);
      p.ss_stride = ldz_signshift_bytes(d);
      planes_.push_back(std::move(p));
    }
  }
  for (Plane& p : planes_) {
    // Reused planes must still describe the agreed geometry: a stale stride
    // would silently misalign every packed row the kernels read.
    PARO_CHECK_MSG(p.mag_stride == ldz_mag_bytes(d, p.bits) &&
                       p.ss_stride == ldz_signshift_bytes(d),
                   "PackedLdzK plane geometry mismatch on build() reuse");
    p.mag.assign(rows * p.mag_stride, 0);  // ldz_pack ORs into zeroed bytes
    p.ss.assign(rows * p.ss_stride, 0);
  }
}

void PackedLdzK::pack_rows(const std::int8_t* codes, std::size_t r0,
                           std::size_t r1) {
  PARO_CHECK_MSG(r0 <= r1 && r1 <= rows_,
                 "PackedLdzK pack_rows range out of bounds");
  for (Plane& p : planes_) {
    for (std::size_t r = r0; r < r1; ++r) {
      ldz_pack(codes + (r - r0) * d_, d_, p.bits,
               p.mag.data() + r * p.mag_stride, p.ss.data() + r * p.ss_stride);
    }
  }
}

void PackedLdzK::build(const std::int8_t* codes, std::size_t rows,
                       std::size_t d, const std::vector<int>& bitwidths) {
  begin_build(rows, d, bitwidths);
  pack_rows(codes, 0, rows);
}

const PackedLdzK::Plane* PackedLdzK::find(int bits) const {
  for (const Plane& p : planes_) {
    if (p.bits == bits) return &p;
  }
  return nullptr;
}

bool PackedLdzK::has_plane(int bits) const { return find(bits) != nullptr; }

PackedLdzK::PlaneView PackedLdzK::plane(int bits) const {
  const Plane* p = find(bits);
  PARO_CHECK_MSG(p != nullptr, "PackedLdzK has no plane for requested bits");
  return PlaneView{p->mag.data(), p->mag_stride, p->ss.data(), p->ss_stride};
}

std::size_t PackedLdzK::packed_row_bytes(int bits) const {
  const Plane* p = find(bits);
  PARO_CHECK_MSG(p != nullptr, "PackedLdzK has no plane for requested bits");
  return p->mag_stride + p->ss_stride;
}

void PackedLdzK::decode_rows(int bits, std::size_t r0, std::size_t r1,
                             std::int8_t* dst) const {
  const Plane* p = find(bits);
  PARO_CHECK_MSG(p != nullptr, "PackedLdzK has no plane for requested bits");
  PARO_CHECK_MSG(r0 <= r1 && r1 <= rows_, "PackedLdzK row range out of bounds");
  for (std::size_t r = r0; r < r1; ++r) {
    ldz_unpack(p->mag.data() + r * p->mag_stride,
               p->ss.data() + r * p->ss_stride, d_, bits,
               dst + (r - r0) * d_);
  }
}

std::size_t PackedLdzK::packed_bytes() const {
  std::size_t total = 0;
  for (const Plane& p : planes_) {
    total += p.mag.size() + p.ss.size();
  }
  return total;
}

}  // namespace paro::kernels
