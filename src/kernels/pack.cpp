#include "kernels/pack.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "kernels/kernels.hpp"

namespace paro::kernels {

void PackedLdzK::build(const std::int8_t* codes, std::size_t rows,
                       std::size_t d, const std::vector<int>& bitwidths) {
  rows_ = rows;
  d_ = d;
  planes_.clear();
  std::vector<int> wanted;
  for (const int b : bitwidths) {
    if (b >= 1 && b <= 7 &&
        std::find(wanted.begin(), wanted.end(), b) == wanted.end()) {
      wanted.push_back(b);
    }
  }
  std::sort(wanted.begin(), wanted.end());
  for (const int bits : wanted) {
    Plane p;
    p.bits = bits;
    p.mag_stride = ldz_mag_bytes(d, bits);
    p.ss_stride = ldz_signshift_bytes(d);
    p.mag.assign(rows * p.mag_stride, 0);  // ldz_pack ORs into zeroed bytes
    p.ss.assign(rows * p.ss_stride, 0);
    for (std::size_t r = 0; r < rows; ++r) {
      ldz_pack(codes + r * d, d, bits, p.mag.data() + r * p.mag_stride,
               p.ss.data() + r * p.ss_stride);
    }
    planes_.push_back(std::move(p));
  }
}

const PackedLdzK::Plane* PackedLdzK::find(int bits) const {
  for (const Plane& p : planes_) {
    if (p.bits == bits) return &p;
  }
  return nullptr;
}

bool PackedLdzK::has_plane(int bits) const { return find(bits) != nullptr; }

void PackedLdzK::decode_rows(int bits, std::size_t r0, std::size_t r1,
                             std::int8_t* dst) const {
  const Plane* p = find(bits);
  PARO_CHECK_MSG(p != nullptr, "PackedLdzK has no plane for requested bits");
  PARO_CHECK_MSG(r0 <= r1 && r1 <= rows_, "PackedLdzK row range out of bounds");
  for (std::size_t r = r0; r < r1; ++r) {
    ldz_unpack(p->mag.data() + r * p->mag_stride,
               p->ss.data() + r * p->ss_stride, d_, bits,
               dst + (r - r0) * d_);
  }
}

std::size_t PackedLdzK::packed_bytes() const {
  std::size_t total = 0;
  for (const Plane& p : planes_) {
    total += p.mag.size() + p.ss.size();
  }
  return total;
}

}  // namespace paro::kernels
