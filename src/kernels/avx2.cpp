// AVX2 backend.  This translation unit builds with -mavx2 and must only be
// reached through the dispatcher after __builtin_cpu_supports("avx2").
//
// Bitwise-exactness notes:
//  * Integer kernels: int32 addition is associative, so any
//    vector-width/summation-tree change is exact vs scalar.
//  * Float kernels use ONLY mul/add/max/min/div/round intrinsics in the same
//    per-element op sequence as the scalar backend (no FMA — see the root
//    CMakeLists -ffp-contract=off note), and dot products reproduce the
//    scalar 4-double-lane k%4 striping exactly.
#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "kernels/backend.hpp"

namespace paro::kernels::detail {
namespace {

// ---------------------------------------------------------------- int8 dots

inline __m256i madd16(__m256i acc, __m128i a, __m128i b) {
  // int8 -> int16 widen, then 16x int16 pairwise multiply-add into int32.
  // |a*b| <= 16384, a pair sums to <= 32768 in int32 lanes: exact.
  return _mm256_add_epi32(
      acc, _mm256_madd_epi16(_mm256_cvtepi8_epi16(a), _mm256_cvtepi8_epi16(b)));
}

inline std::int32_t hsum_epi32(__m256i v) {
  __m128i s = _mm_add_epi32(_mm256_castsi256_si128(v),
                            _mm256_extracti128_si256(v, 1));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(s);
}

// Reduces four int32 accumulators to {sum0, sum1, sum2, sum3} in one vector
// — a transpose-reduce via hadd, ~2x cheaper than four independent hsums.
inline __m128i hsum4_epi32(__m256i a0, __m256i a1, __m256i a2, __m256i a3) {
  const __m128i s0 = _mm_add_epi32(_mm256_castsi256_si128(a0),
                                   _mm256_extracti128_si256(a0, 1));
  const __m128i s1 = _mm_add_epi32(_mm256_castsi256_si128(a1),
                                   _mm256_extracti128_si256(a1, 1));
  const __m128i s2 = _mm_add_epi32(_mm256_castsi256_si128(a2),
                                   _mm256_extracti128_si256(a2, 1));
  const __m128i s3 = _mm_add_epi32(_mm256_castsi256_si128(a3),
                                   _mm256_extracti128_si256(a3, 1));
  return _mm_hadd_epi32(_mm_hadd_epi32(s0, s1), _mm_hadd_epi32(s2, s3));
}

// Four dot products sharing one A row (B-panel reuse amortizes the A loads);
// returns {dot0, dot1, dot2, dot3}.  32-byte main steps halve loop overhead
// on the d = 64 attention head dims.
inline __m128i dot_i8_x4(const std::int8_t* a, const std::int8_t* b0,
                         const std::int8_t* b1, const std::int8_t* b2,
                         const std::int8_t* b3, std::size_t k) {
  __m256i acc0 = _mm256_setzero_si256();
  __m256i acc1 = _mm256_setzero_si256();
  __m256i acc2 = _mm256_setzero_si256();
  __m256i acc3 = _mm256_setzero_si256();
  const auto load = [](const std::int8_t* p) {
    return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
  };
  std::size_t c = 0;
  for (; c + 32 <= k; c += 32) {
    const __m128i a_lo = load(a + c);
    const __m128i a_hi = load(a + c + 16);
    acc0 = madd16(madd16(acc0, a_lo, load(b0 + c)), a_hi, load(b0 + c + 16));
    acc1 = madd16(madd16(acc1, a_lo, load(b1 + c)), a_hi, load(b1 + c + 16));
    acc2 = madd16(madd16(acc2, a_lo, load(b2 + c)), a_hi, load(b2 + c + 16));
    acc3 = madd16(madd16(acc3, a_lo, load(b3 + c)), a_hi, load(b3 + c + 16));
  }
  for (; c + 16 <= k; c += 16) {
    const __m128i av = load(a + c);
    acc0 = madd16(acc0, av, load(b0 + c));
    acc1 = madd16(acc1, av, load(b1 + c));
    acc2 = madd16(acc2, av, load(b2 + c));
    acc3 = madd16(acc3, av, load(b3 + c));
  }
  __m128i sums = hsum4_epi32(acc0, acc1, acc2, acc3);
  if (c < k) {  // alignment-safe tail, still exact int32
    alignas(16) std::int32_t t[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(t), sums);
    for (; c < k; ++c) {
      const std::int32_t av = a[c];
      t[0] += av * b0[c];
      t[1] += av * b1[c];
      t[2] += av * b2[c];
      t[3] += av * b3[c];
    }
    sums = _mm_load_si128(reinterpret_cast<const __m128i*>(t));
  }
  return sums;
}

inline std::int32_t dot_i8_x1(const std::int8_t* a, const std::int8_t* b,
                              std::size_t k) {
  __m256i acc = _mm256_setzero_si256();
  std::size_t c = 0;
  for (; c + 16 <= k; c += 16) {
    acc = madd16(acc, _mm_loadu_si128(reinterpret_cast<const __m128i*>(a + c)),
                 _mm_loadu_si128(reinterpret_cast<const __m128i*>(b + c)));
  }
  std::int32_t s = hsum_epi32(acc);
  for (; c < k; ++c) s += static_cast<std::int32_t>(a[c]) * b[c];
  return s;
}

void qk_tile_i8_scaled_avx2(const std::int8_t* q, std::size_t q_stride,
                            std::size_t q_rows, const std::int8_t* k,
                            std::size_t k_stride, std::size_t k_rows,
                            std::size_t d, const float* q_scales,
                            const float* k_scales, float* out,
                            std::size_t out_stride) {
  for (std::size_t i = 0; i < q_rows; ++i) {
    const std::int8_t* qi = q + i * q_stride;
    const float sq = q_scales[i];
    float* orow = out + i * out_stride;
    const __m128 sqv = _mm_set1_ps(sq);
    std::size_t j = 0;
    for (; j + 4 <= k_rows; j += 4) {
      const std::int8_t* kj = k + j * k_stride;
      const __m128i acc = dot_i8_x4(qi, kj, kj + k_stride, kj + 2 * k_stride,
                                    kj + 3 * k_stride, d);
      // Per lane: (float(acc) * sq) * k_scale — the exact scalar epilogue
      // (cvtepi32_ps rounds identically to static_cast<float>).
      _mm_storeu_ps(orow + j,
                    _mm_mul_ps(_mm_mul_ps(_mm_cvtepi32_ps(acc), sqv),
                               _mm_loadu_ps(k_scales + j)));
    }
    for (; j < k_rows; ++j) {
      const std::int32_t acc = dot_i8_x1(qi, k + j * k_stride, d);
      orow[j] = (static_cast<float>(acc) * sq) * k_scales[j];
    }
  }
}

void matmul_nt_i8_block_avx2(const std::int8_t* a, std::size_t a_stride,
                             std::size_t m, const std::int8_t* b,
                             std::size_t b_stride, std::size_t n,
                             std::size_t k, std::int32_t* c,
                             std::size_t c_stride) {
  // Block over B rows so the active panel (kJBlock * k bytes) stays in L1/L2
  // while every A row streams over it once.
  constexpr std::size_t kJBlock = 256;
  for (std::size_t jb = 0; jb < n; jb += kJBlock) {
    const std::size_t jend = std::min(jb + kJBlock, n);
    for (std::size_t i = 0; i < m; ++i) {
      const std::int8_t* ai = a + i * a_stride;
      std::int32_t* ci = c + i * c_stride;
      std::size_t j = jb;
      for (; j + 4 <= jend; j += 4) {
        const std::int8_t* bj = b + j * b_stride;
        _mm_storeu_si128(
            reinterpret_cast<__m128i*>(ci + j),
            dot_i8_x4(ai, bj, bj + b_stride, bj + 2 * b_stride,
                      bj + 3 * b_stride, k));
      }
      for (; j < jend; ++j) {
        ci[j] = dot_i8_x1(ai, b + j * b_stride, k);
      }
    }
  }
}

// ------------------------------------------------------------- float kernels

void nt_dot_f32_row_avx2(const float* a, const float* b, std::size_t b_stride,
                         std::size_t n_rows, std::size_t d, float* out) {
  for (std::size_t j = 0; j < n_rows; ++j) {
    const float* bj = b + j * b_stride;
    // Lane l accumulates elements with k % 4 == l — identical striping to
    // the scalar reference (cvtps_pd preserves element order).
    __m256d acc = _mm256_setzero_pd();
    std::size_t c = 0;
    for (; c + 4 <= d; c += 4) {
      const __m256d av = _mm256_cvtps_pd(_mm_loadu_ps(a + c));
      const __m256d bv = _mm256_cvtps_pd(_mm_loadu_ps(bj + c));
      acc = _mm256_add_pd(acc, _mm256_mul_pd(av, bv));
    }
    double lane[4];
    _mm256_storeu_pd(lane, acc);
    for (; c < d; ++c) {
      lane[c % 4] += static_cast<double>(a[c]) * static_cast<double>(bj[c]);
    }
    out[j] = static_cast<float>((lane[0] + lane[1]) + (lane[2] + lane[3]));
  }
}

void attnv_accum_avx2(const float* w, std::size_t rows, const float* v,
                      std::size_t v_stride, std::size_t dv, float* out) {
  for (std::size_t r = 0; r < rows; ++r) {
    const float wr = w[r];
    if (wr == 0.0F) continue;
    const float* vrow = v + r * v_stride;
    const __m256 vw = _mm256_set1_ps(wr);
    std::size_t c = 0;
    for (; c + 8 <= dv; c += 8) {
      const __m256 prod = _mm256_mul_ps(vw, _mm256_loadu_ps(vrow + c));
      _mm256_storeu_ps(out + c, _mm256_add_ps(_mm256_loadu_ps(out + c), prod));
    }
    for (; c < dv; ++c) out[c] += wr * vrow[c];
  }
}

inline float hmax_ps(__m256 v) {
  __m128 s = _mm_max_ps(_mm256_castps256_ps128(v),
                        _mm256_extractf128_ps(v, 1));
  s = _mm_max_ps(s, _mm_shuffle_ps(s, s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_max_ps(s, _mm_shuffle_ps(s, s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtss_f32(s);
}

inline float hmin_ps(__m256 v) {
  __m128 s = _mm_min_ps(_mm256_castps256_ps128(v),
                        _mm256_extractf128_ps(v, 1));
  s = _mm_min_ps(s, _mm_shuffle_ps(s, s, _MM_SHUFFLE(1, 0, 3, 2)));
  s = _mm_min_ps(s, _mm_shuffle_ps(s, s, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtss_f32(s);
}

float row_max_scaled_avx2(const float* x, std::size_t n, float scale,
                          float init) {
  float m = init;
  const __m256 vs = _mm256_set1_ps(scale);
  __m256 vm = _mm256_set1_ps(init);
  std::size_t c = 0;
  for (; c + 8 <= n; c += 8) {
    vm = _mm256_max_ps(vm, _mm256_mul_ps(_mm256_loadu_ps(x + c), vs));
  }
  if (c != 0) m = std::max(m, hmax_ps(vm));
  for (; c < n; ++c) m = std::max(m, x[c] * scale);
  return m;
}

float row_max_scaled_skipinf_avx2(const float* x, std::size_t n, float scale,
                                  float init) {
  constexpr float kNegInf = -std::numeric_limits<float>::infinity();
  float m = init;
  const __m256 vs = _mm256_set1_ps(scale);
  const __m256 vneginf = _mm256_set1_ps(kNegInf);
  __m256 vm = _mm256_set1_ps(init);
  std::size_t c = 0;
  for (; c + 8 <= n; c += 8) {
    const __m256 xv = _mm256_loadu_ps(x + c);
    // Entries equal to -inf contribute -inf to the max (a no-op) instead of
    // their scaled value; NEQ_UQ keeps NaNs on the scaled path like scalar.
    const __m256 keep = _mm256_cmp_ps(xv, vneginf, _CMP_NEQ_UQ);
    const __m256 cand =
        _mm256_blendv_ps(vneginf, _mm256_mul_ps(xv, vs), keep);
    vm = _mm256_max_ps(vm, cand);
  }
  if (c != 0) m = std::max(m, hmax_ps(vm));
  for (; c < n; ++c) {
    if (x[c] != kNegInf) m = std::max(m, x[c] * scale);
  }
  return m;
}

void scale_inplace_avx2(float* x, std::size_t n, float s) {
  const __m256 vs = _mm256_set1_ps(s);
  std::size_t c = 0;
  for (; c + 8 <= n; c += 8) {
    _mm256_storeu_ps(x + c, _mm256_mul_ps(_mm256_loadu_ps(x + c), vs));
  }
  for (; c < n; ++c) x[c] *= s;
}

void minmax_f32_avx2(const float* x, std::size_t n, float* lo, float* hi) {
  float l = x[0];
  float h = x[0];
  __m256 vlo = _mm256_set1_ps(x[0]);
  __m256 vhi = vlo;
  std::size_t c = 0;
  for (; c + 8 <= n; c += 8) {
    const __m256 xv = _mm256_loadu_ps(x + c);
    vlo = _mm256_min_ps(vlo, xv);
    vhi = _mm256_max_ps(vhi, xv);
  }
  if (c != 0) {
    l = std::min(l, hmin_ps(vlo));
    h = std::max(h, hmax_ps(vhi));
  }
  for (; c < n; ++c) {
    l = std::min(l, x[c]);
    h = std::max(h, x[c]);
  }
  *lo = l;
  *hi = h;
}

float absmax_f32_avx2(const float* x, std::size_t n) {
  const __m256 absmask =
      _mm256_castsi256_ps(_mm256_set1_epi32(0x7FFFFFFF));
  __m256 vm = _mm256_setzero_ps();
  std::size_t c = 0;
  for (; c + 8 <= n; c += 8) {
    vm = _mm256_max_ps(vm, _mm256_and_ps(_mm256_loadu_ps(x + c), absmask));
  }
  float m = c != 0 ? std::max(0.0F, hmax_ps(vm)) : 0.0F;
  for (; c < n; ++c) m = std::max(m, std::fabs(x[c]));
  return m;
}

// Exact std::lround emulation on 4 doubles: round-to-nearest-even, then where
// the fraction is exactly .5 redo as q + copysign(0.5, q) (exact addition on
// a representable half-integer -> rounds half AWAY from zero like lround).
inline __m256d lround_pd(__m256d q) {
  const __m256d signbit = _mm256_set1_pd(-0.0);
  const __m256d half = _mm256_set1_pd(0.5);
  const __m256d r0 =
      _mm256_round_pd(q, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  const __m256d frac =
      _mm256_andnot_pd(signbit, _mm256_sub_pd(q, r0));  // |q - r0|
  const __m256d tie = _mm256_cmp_pd(frac, half, _CMP_EQ_OQ);
  const __m256d away =
      _mm256_add_pd(q, _mm256_or_pd(_mm256_and_pd(signbit, q), half));
  return _mm256_blendv_pd(r0, away, tie);
}

void fake_quant_f32_avx2(const float* in, float* out, std::size_t n,
                         const QuantTransform& t) {
  const __m256d vscale = _mm256_set1_pd(static_cast<double>(t.scale));
  const __m256d vzp = _mm256_set1_pd(static_cast<double>(t.zero_point));
  const __m256d vqlo = _mm256_set1_pd(static_cast<double>(t.qlo));
  const __m256d vqhi = _mm256_set1_pd(static_cast<double>(t.qhi));
  const __m128 vfscale = _mm_set1_ps(t.scale);
  std::size_t c = 0;
  for (; c + 4 <= n; c += 4) {
    const __m256d x = _mm256_cvtps_pd(_mm_loadu_ps(in + c));
    const __m256d r = lround_pd(_mm256_div_pd(x, vscale));
    __m256d qi = _mm256_add_pd(r, vzp);
    qi = _mm256_min_pd(_mm256_max_pd(qi, vqlo), vqhi);
    // (qi - zp) is an exactly-representable small integer in double; the
    // pd->ps convert rounds it to float exactly like the scalar int->float
    // cast does.
    const __m128 dq = _mm256_cvtpd_ps(_mm256_sub_pd(qi, vzp));
    _mm_storeu_ps(out + c, _mm_mul_ps(vfscale, dq));
  }
  for (; c < n; ++c) out[c] = fake_quant_value(in[c], t);
}

void quantize_i8_avx2(const float* in, std::int8_t* out, std::size_t n,
                      const QuantTransform& t) {
  const __m256d vscale = _mm256_set1_pd(static_cast<double>(t.scale));
  const __m256d vzp = _mm256_set1_pd(static_cast<double>(t.zero_point));
  const __m256d vqlo = _mm256_set1_pd(static_cast<double>(t.qlo));
  const __m256d vqhi = _mm256_set1_pd(static_cast<double>(t.qhi));
  std::size_t c = 0;
  for (; c + 4 <= n; c += 4) {
    const __m256d x = _mm256_cvtps_pd(_mm_loadu_ps(in + c));
    const __m256d r = lround_pd(_mm256_div_pd(x, vscale));
    __m256d qi = _mm256_add_pd(r, vzp);
    qi = _mm256_min_pd(_mm256_max_pd(qi, vqlo), vqhi);
    const __m128i q32 = _mm256_cvtpd_epi32(qi);  // integral values: exact
    alignas(16) std::int32_t lane[4];
    _mm_store_si128(reinterpret_cast<__m128i*>(lane), q32);
    out[c] = static_cast<std::int8_t>(lane[0]);
    out[c + 1] = static_cast<std::int8_t>(lane[1]);
    out[c + 2] = static_cast<std::int8_t>(lane[2]);
    out[c + 3] = static_cast<std::int8_t>(lane[3]);
  }
  for (; c < n; ++c) out[c] = quantize_i8_value(in[c], t);
}

void dequant_i8_avx2(const std::int8_t* in, float* out, std::size_t n,
                     float scale) {
  const __m256 vs = _mm256_set1_ps(scale);
  std::size_t c = 0;
  for (; c + 8 <= n; c += 8) {
    const __m128i b =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(in + c));
    const __m128i lo4 = _mm_cvtepi8_epi32(b);
    const __m128i hi4 = _mm_cvtepi8_epi32(_mm_srli_si128(b, 4));
    const __m256 vf =
        _mm256_cvtepi32_ps(_mm256_set_m128i(hi4, lo4));
    _mm256_storeu_ps(out + c, _mm256_mul_ps(vs, vf));
  }
  for (; c < n; ++c) out[c] = scale * static_cast<float>(in[c]);
}

void dequant_i32_scaled_avx2(const std::int32_t* acc, std::size_t n,
                             float row_scale, const float* col_scales,
                             float* out) {
  const __m256 vr = _mm256_set1_ps(row_scale);
  std::size_t c = 0;
  for (; c + 8 <= n; c += 8) {
    const __m256 vf = _mm256_cvtepi32_ps(
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + c)));
    const __m256 scaled = _mm256_mul_ps(vf, vr);
    _mm256_storeu_ps(out + c,
                     _mm256_mul_ps(scaled, _mm256_loadu_ps(col_scales + c)));
  }
  for (; c < n; ++c) {
    out[c] = (static_cast<float>(acc[c]) * row_scale) * col_scales[c];
  }
}

// ------------------------------------------------------------- LDZ kernels

void ldz_truncate_i8_avx2(const std::int8_t* src, std::int8_t* dst,
                          std::size_t n, int bits) {
  if (bits >= 8) {
    std::memcpy(dst, src, n);
    return;
  }
  // Per-byte bit-length via nibble LUT (index 8 covers |v| = 128 = 0x80),
  // then mask off the (len - bits) low magnitude bits and restore the sign.
  const __m256i bitlen4 = _mm256_broadcastsi128_si256(
      _mm_setr_epi8(0, 1, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4, 4, 4, 4, 4));
  const __m256i keepmask = _mm256_broadcastsi128_si256(_mm_setr_epi8(
      static_cast<char>(0xFF), static_cast<char>(0xFE),
      static_cast<char>(0xFC), static_cast<char>(0xF8),
      static_cast<char>(0xF0), static_cast<char>(0xE0),
      static_cast<char>(0xC0), static_cast<char>(0x80), 0, 0, 0, 0, 0, 0, 0,
      0));
  const __m256i nib = _mm256_set1_epi8(0x0F);
  const __m256i vbits = _mm256_set1_epi8(static_cast<char>(bits));
  const __m256i zero = _mm256_setzero_si256();
  std::size_t c = 0;
  for (; c + 32 <= n; c += 32) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + c));
    const __m256i mag = _mm256_abs_epi8(v);  // |-128| wraps to 0x80: wanted
    const __m256i lo = _mm256_and_si256(mag, nib);
    const __m256i hi = _mm256_and_si256(_mm256_srli_epi16(mag, 4), nib);
    const __m256i lenlo = _mm256_shuffle_epi8(bitlen4, lo);
    const __m256i lenhi = _mm256_shuffle_epi8(bitlen4, hi);
    const __m256i has_hi = _mm256_cmpgt_epi8(hi, zero);
    const __m256i len = _mm256_blendv_epi8(
        lenlo, _mm256_add_epi8(lenhi, _mm256_set1_epi8(4)), has_hi);
    const __m256i shift = _mm256_subs_epu8(len, vbits);  // 0..7
    const __m256i mask = _mm256_shuffle_epi8(keepmask, shift);
    const __m256i kept = _mm256_and_si256(mag, mask);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + c),
                        _mm256_sign_epi8(kept, v));
  }
  for (; c < n; ++c) dst[c] = ldz_truncate_value(src[c], bits);
}

void ldz_unpack_avx2(const std::uint8_t* mag, const std::uint8_t* signshift,
                     std::size_t n, int bits, std::int8_t* dst) {
  if (bits != 2 && bits != 4) {
    scalar_backend()->ldz_unpack(mag, signshift, n, bits, dst);
    return;
  }
  const __m128i nib = _mm_set1_epi8(0x0F);
  const __m128i pow2 = _mm_setr_epi8(1, 2, 4, 8, 16, 32, 64,
                                     static_cast<char>(0x80), 0, 0, 0, 0, 0, 0,
                                     0, 0);
  const __m128i vseven = _mm_set1_epi8(7);
  const __m128i veight = _mm_set1_epi8(8);
  const __m128i zero = _mm_setzero_si128();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    // 16 sign/shift nibbles from 8 bytes, restored to code order.
    const __m128i ssb = _mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(signshift + i / 2));
    const __m128i ss = _mm_unpacklo_epi8(
        _mm_and_si128(ssb, nib), _mm_and_si128(_mm_srli_epi16(ssb, 4), nib));
    const __m128i shift = _mm_and_si128(ss, vseven);
    const __m128i pw = _mm_shuffle_epi8(pow2, shift);

    __m128i m;
    if (bits == 4) {
      const __m128i mb =
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(mag + i / 2));
      m = _mm_unpacklo_epi8(_mm_and_si128(mb, nib),
                            _mm_and_si128(_mm_srli_epi16(mb, 4), nib));
    } else {  // bits == 2: 16 codes from 4 bytes, lsb-first crumbs
      std::uint32_t word;
      std::memcpy(&word, mag + i / 4, sizeof(word));
      const __m128i mb = _mm_cvtsi32_si128(static_cast<int>(word));
      const __m128i two = _mm_set1_epi8(3);
      const __m128i v0 = _mm_and_si128(mb, two);
      const __m128i v1 = _mm_and_si128(_mm_srli_epi16(mb, 2), two);
      const __m128i v2 = _mm_and_si128(_mm_srli_epi16(mb, 4), two);
      const __m128i v3 = _mm_and_si128(_mm_srli_epi16(mb, 6), two);
      m = _mm_unpacklo_epi16(_mm_unpacklo_epi8(v0, v1),
                             _mm_unpacklo_epi8(v2, v3));
    }
    // value = mantissa << shift  (<= 128, so u16 mullo then pack is exact;
    // 128 packs to 0x80 which negation maps to the desired -128).
    const __m128i lo =
        _mm_mullo_epi16(_mm_unpacklo_epi8(m, zero), _mm_unpacklo_epi8(pw, zero));
    const __m128i hi =
        _mm_mullo_epi16(_mm_unpackhi_epi8(m, zero), _mm_unpackhi_epi8(pw, zero));
    const __m128i val = _mm_packus_epi16(lo, hi);
    const __m128i negm =
        _mm_cmpeq_epi8(_mm_and_si128(ss, veight), veight);
    const __m128i signed_val =
        _mm_sub_epi8(_mm_xor_si128(val, negm), negm);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + i), signed_val);
  }
  if (i < n) {
    // Scalar tail, re-reading the packed streams at code granularity.
    const int per = ldz_codes_per_byte(bits);
    const unsigned mask = (1U << static_cast<unsigned>(bits)) - 1U;
    for (; i < n; ++i) {
      const unsigned m =
          (mag[i / static_cast<std::size_t>(per)] >>
           ((i % static_cast<std::size_t>(per)) *
            static_cast<std::size_t>(bits))) &
          mask;
      const unsigned ss = (signshift[i / 2] >> ((i % 2) * 4)) & 0x0FU;
      const unsigned shift = ss & 7U;
      const int value = static_cast<int>(m << shift);
      dst[i] = static_cast<std::int8_t>((ss & 8U) != 0U ? -value : value);
    }
  }
}

// Packed sub-byte QK^T: decode a 4-row K panel ONCE into an L1-resident
// stack buffer with ldz_unpack_avx2 (in-register nibble/crumb expansion),
// then reuse it across every Q row via dot_i8_x4.  Decoding per panel
// instead of per (q,k) row pair keeps the unpack cost O(k_rows * d) while
// the dot cost is O(q_rows * k_rows * d) — the unpack amortizes to noise —
// and never touches a heap scratch, unlike the old decode_rows path.
// Bit-exact: ldz_unpack_avx2 reproduces the scalar decode per element and
// dot_i8_x4 is an int32 sum (associative), so results match the scalar
// packed reference and the truncate+int8 oracle bitwise.
template <int kBits>
void qk_tile_packed_scaled_avx2(const std::int8_t* q, std::size_t q_stride,
                                std::size_t q_rows, const std::uint8_t* k_mag,
                                std::size_t k_mag_stride,
                                const std::uint8_t* k_ss,
                                std::size_t k_ss_stride, std::size_t k_rows,
                                std::size_t d, const float* q_scales,
                                const float* k_scales, float* out,
                                std::size_t out_stride) {
  constexpr std::size_t kMaxD = 1024;  // 4 KiB panel, comfortably L1
  if (d > kMaxD) {
    const auto* sb = scalar_backend();
    (kBits == 4 ? sb->qk_tile_i4p_scaled : sb->qk_tile_i2q_scaled)(
        q, q_stride, q_rows, k_mag, k_mag_stride, k_ss, k_ss_stride, k_rows,
        d, q_scales, k_scales, out, out_stride);
    return;
  }
  alignas(32) std::int8_t panel[4 * kMaxD];
  std::size_t j = 0;
  for (; j + 4 <= k_rows; j += 4) {
    for (std::size_t r = 0; r < 4; ++r) {
      ldz_unpack_avx2(k_mag + (j + r) * k_mag_stride,
                      k_ss + (j + r) * k_ss_stride, d, kBits,
                      panel + r * kMaxD);
    }
    const __m128 ksv = _mm_loadu_ps(k_scales + j);
    for (std::size_t i = 0; i < q_rows; ++i) {
      const __m128i acc =
          dot_i8_x4(q + i * q_stride, panel, panel + kMaxD, panel + 2 * kMaxD,
                    panel + 3 * kMaxD, d);
      // Same epilogue as qk_tile_i8_scaled_avx2: (float(acc) * sq) * sk.
      _mm_storeu_ps(out + i * out_stride + j,
                    _mm_mul_ps(_mm_mul_ps(_mm_cvtepi32_ps(acc),
                                          _mm_set1_ps(q_scales[i])),
                               ksv));
    }
  }
  for (; j < k_rows; ++j) {  // ragged panel tail: one decoded row at a time
    ldz_unpack_avx2(k_mag + j * k_mag_stride, k_ss + j * k_ss_stride, d, kBits,
                    panel);
    for (std::size_t i = 0; i < q_rows; ++i) {
      const std::int32_t acc = dot_i8_x1(q + i * q_stride, panel, d);
      out[i * out_stride + j] =
          (static_cast<float>(acc) * q_scales[i]) * k_scales[j];
    }
  }
}

}  // namespace

const Backend* avx2_backend() {
  static const Backend backend = [] {
    Backend b = *scalar_backend();  // inherit (ldz_pack stays scalar)
    b.isa = Isa::kAvx2;
    b.name = "avx2";
    b.qk_tile_i8_scaled = &qk_tile_i8_scaled_avx2;
    b.qk_tile_i4p_scaled = &qk_tile_packed_scaled_avx2<4>;
    b.qk_tile_i2q_scaled = &qk_tile_packed_scaled_avx2<2>;
    b.matmul_nt_i8_block = &matmul_nt_i8_block_avx2;
    b.nt_dot_f32_row = &nt_dot_f32_row_avx2;
    b.attnv_accum = &attnv_accum_avx2;
    b.row_max_scaled = &row_max_scaled_avx2;
    b.row_max_scaled_skipinf = &row_max_scaled_skipinf_avx2;
    b.scale_inplace = &scale_inplace_avx2;
    b.minmax_f32 = &minmax_f32_avx2;
    b.absmax_f32 = &absmax_f32_avx2;
    b.fake_quant_f32 = &fake_quant_f32_avx2;
    b.quantize_i8 = &quantize_i8_avx2;
    b.dequant_i8 = &dequant_i8_avx2;
    b.dequant_i32_scaled = &dequant_i32_scaled_avx2;
    b.ldz_truncate_i8 = &ldz_truncate_i8_avx2;
    b.ldz_unpack = &ldz_unpack_avx2;
    return b;
  }();
  return &backend;
}

}  // namespace paro::kernels::detail
