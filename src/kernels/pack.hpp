#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

// Tile-major packed K operands for the output-bitwidth-aware (OBA) QK^T
// path.  The LDZ identity  (mantissa * q) << shift == (mantissa << shift) * q
// holds exactly in integer arithmetic, so instead of truncating every K
// operand per product (the naive hot loop), each head packs its K codes ONCE
// per used sub-8 bitwidth into PE-mode operand streams:
//
//   bits plane b:  mag  — b-bit mantissa magnitudes, packed lsb-first
//                         (2b-quads: 4 codes/byte, 4b-pairs: 2 codes/byte)
//                  ss   — one nibble per code: shift | (negative << 3)
//
// Stripes then decode the rows of one tile into an int8 scratch (value
// domain, mantissa << shift) and run the ordinary int8 dot kernel — bit
// exact vs the per-product LDZ formulation, at int8-dot speed.  K rows are
// row-major within a plane and tiles are contiguous row ranges, so a tile's
// operands are one contiguous packed span reused across every Q stripe.
namespace paro::kernels {

class PackedLdzK {
 public:
  PackedLdzK() = default;

  /// Packs `rows` x `d` row-major int8 codes (stride == d) into one plane
  /// per distinct bitwidth in `bitwidths` (each in [1,7]; 0 and 8 entries
  /// are ignored — 0-bit tiles are skipped upstream, 8-bit tiles read the
  /// raw codes directly).
  void build(const std::int8_t* codes, std::size_t rows, std::size_t d,
             const std::vector<int>& bitwidths);

  bool empty() const { return planes_.empty(); }
  bool has_plane(int bits) const;

  /// Drop every plane (frees plane storage).  Workspaces that flip away
  /// from the OBA path call this so `empty()` keeps gating the decode
  /// scratch exactly as a freshly-built object would.
  void clear() {
    rows_ = 0;
    d_ = 0;
    planes_.clear();
  }

  /// Decodes rows [r0, r1) of the `bits` plane into dst[(r1-r0) x d]
  /// (row-major, stride d).  Values equal ldz_approximate(code, bits).
  void decode_rows(int bits, std::size_t r0, std::size_t r1,
                   std::int8_t* dst) const;

  std::size_t rows() const { return rows_; }
  std::size_t dim() const { return d_; }
  /// Total packed footprint in bytes (for working-set accounting).
  std::size_t packed_bytes() const;

 private:
  struct Plane {
    int bits = 0;
    std::size_t mag_stride = 0;  ///< bytes per row in `mag`
    std::size_t ss_stride = 0;   ///< bytes per row in `ss`
    std::vector<std::uint8_t> mag;
    std::vector<std::uint8_t> ss;
  };

  const Plane* find(int bits) const;

  std::size_t rows_ = 0;
  std::size_t d_ = 0;
  std::vector<Plane> planes_;
};

}  // namespace paro::kernels
