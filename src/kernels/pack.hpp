#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

// Tile-major packed K operands for the output-bitwidth-aware (OBA) QK^T
// path.  The LDZ identity  (mantissa * q) << shift == (mantissa << shift) * q
// holds exactly in integer arithmetic, so instead of truncating every K
// operand per product (the naive hot loop), each head packs its K codes ONCE
// per used sub-8 bitwidth into PE-mode operand streams:
//
//   bits plane b:  mag  — b-bit mantissa magnitudes, packed lsb-first
//                         (2b-quads: 4 codes/byte, 4b-pairs: 2 codes/byte)
//                  ss   — one nibble per code: shift | (negative << 3)
//
// Stripes feed a tile's plane rows straight to the packed QK^T kernels
// (qk_tile_i4p_scaled / qk_tile_i2q_scaled), which unpack in-register — bit
// exact vs the per-product LDZ formulation with no decode scratch.  Other
// bitwidths fall back to decode_rows + the int8 dot kernel.  K rows are
// row-major within a plane and tiles are contiguous row ranges, so a tile's
// operands are one contiguous packed span reused across every Q stripe.
namespace paro::kernels {

class PackedLdzK {
 public:
  PackedLdzK() = default;

  /// Row-major view of one plane's operand streams; row r of K starts at
  /// mag + r * mag_stride and ss + r * ss_stride.  Exactly the operand
  /// shape the packed QK^T kernels take.
  struct PlaneView {
    const std::uint8_t* mag = nullptr;
    std::size_t mag_stride = 0;
    const std::uint8_t* ss = nullptr;
    std::size_t ss_stride = 0;
  };

  /// Packs `rows` x `d` row-major int8 codes (stride == d) into one plane
  /// per distinct bitwidth in `bitwidths` (each in [1,7]; 0 and 8 entries
  /// are ignored — 0-bit tiles are skipped upstream, 8-bit tiles read the
  /// raw codes directly).
  void build(const std::int8_t* codes, std::size_t rows, std::size_t d,
             const std::vector<int>& bitwidths);

  /// Incremental build: begin_build() fixes the geometry and zeroes plane
  /// storage (allocation-free when geometry is unchanged, like build()),
  /// then pack_rows() fills row ranges.  `codes` points at row r0 (stride
  /// d).  build(c, n, d, bw) == begin_build(n, d, bw); pack_rows(c, 0, n).
  /// This is what lets the session quantize-and-pack K in chunks without a
  /// full widened int8 K matrix ever existing.
  void begin_build(std::size_t rows, std::size_t d,
                   const std::vector<int>& bitwidths);
  void pack_rows(const std::int8_t* codes, std::size_t r0, std::size_t r1);

  bool empty() const { return planes_.empty(); }
  bool has_plane(int bits) const;

  /// The `bits` plane's operand streams (PARO_CHECK fails if absent).
  PlaneView plane(int bits) const;

  /// Packed bytes per K row in the `bits` plane (mag + signshift strides;
  /// PARO_CHECK fails if absent).  Callers size stripe scratch and account
  /// bandwidth from this instead of magic constants.
  std::size_t packed_row_bytes(int bits) const;

  /// Drop every plane (frees plane storage).  Workspaces that flip away
  /// from the OBA path call this so `empty()` keeps gating the decode
  /// scratch exactly as a freshly-built object would.
  void clear() {
    rows_ = 0;
    d_ = 0;
    planes_.clear();
  }

  /// Decodes rows [r0, r1) of the `bits` plane into dst[(r1-r0) x d]
  /// (row-major, stride d).  Values equal ldz_approximate(code, bits).
  void decode_rows(int bits, std::size_t r0, std::size_t r1,
                   std::int8_t* dst) const;

  std::size_t rows() const { return rows_; }
  std::size_t dim() const { return d_; }
  /// Total packed footprint in bytes (for working-set accounting).
  std::size_t packed_bytes() const;

 private:
  struct Plane {
    int bits = 0;
    std::size_t mag_stride = 0;  ///< bytes per row in `mag`
    std::size_t ss_stride = 0;   ///< bytes per row in `ss`
    std::vector<std::uint8_t> mag;
    std::vector<std::uint8_t> ss;
  };

  const Plane* find(int bits) const;

  std::size_t rows_ = 0;
  std::size_t d_ = 0;
  std::vector<Plane> planes_;
};

}  // namespace paro::kernels
