// Portable scalar reference backend.  Every other backend is defined as
// "bit-exact equal to this one"; keep it simple and obviously correct.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/error.hpp"
#include "kernels/backend.hpp"

namespace paro::kernels::detail {
namespace {

std::int32_t dot_i8(const std::int8_t* a, const std::int8_t* b,
                    std::size_t k) {
  std::int32_t acc = 0;
  for (std::size_t c = 0; c < k; ++c) {
    acc += static_cast<std::int32_t>(a[c]) * static_cast<std::int32_t>(b[c]);
  }
  return acc;
}

void qk_tile_i8_scaled_scalar(const std::int8_t* q, std::size_t q_stride,
                              std::size_t q_rows, const std::int8_t* k,
                              std::size_t k_stride, std::size_t k_rows,
                              std::size_t d, const float* q_scales,
                              const float* k_scales, float* out,
                              std::size_t out_stride) {
  for (std::size_t i = 0; i < q_rows; ++i) {
    const std::int8_t* qi = q + i * q_stride;
    float* orow = out + i * out_stride;
    for (std::size_t j = 0; j < k_rows; ++j) {
      const std::int32_t acc = dot_i8(qi, k + j * k_stride, d);
      orow[j] = (static_cast<float>(acc) * q_scales[i]) * k_scales[j];
    }
  }
}

// Packed sub-byte QK^T reference: decode each K code inline (same element
// recipe as ldz_unpack_scalar) and accumulate in int32.  Decoded values are
// plain int8 magnitudes<<shift in [-128,127], so this is literally
// "ldz_unpack then dot_i8" with the scratch buffer removed.
template <int kBits>
void qk_tile_packed_scaled_scalar(const std::int8_t* q, std::size_t q_stride,
                                  std::size_t q_rows, const std::uint8_t* k_mag,
                                  std::size_t k_mag_stride,
                                  const std::uint8_t* k_ss,
                                  std::size_t k_ss_stride, std::size_t k_rows,
                                  std::size_t d, const float* q_scales,
                                  const float* k_scales, float* out,
                                  std::size_t out_stride) {
  constexpr unsigned kMask = (1U << static_cast<unsigned>(kBits)) - 1U;
  constexpr std::size_t kPer = 8 / static_cast<std::size_t>(kBits);
  for (std::size_t i = 0; i < q_rows; ++i) {
    const std::int8_t* qi = q + i * q_stride;
    float* orow = out + i * out_stride;
    for (std::size_t j = 0; j < k_rows; ++j) {
      const std::uint8_t* mag = k_mag + j * k_mag_stride;
      const std::uint8_t* ss = k_ss + j * k_ss_stride;
      std::int32_t acc = 0;
      for (std::size_t c = 0; c < d; ++c) {
        const unsigned m =
            (mag[c / kPer] >> ((c % kPer) * static_cast<std::size_t>(kBits))) &
            kMask;
        const unsigned s4 = (ss[c / 2] >> ((c % 2) * 4)) & 0x0FU;
        const int mv = static_cast<int>(m << (s4 & 7U));
        const int kv = (s4 & 8U) != 0U ? -mv : mv;
        acc += static_cast<std::int32_t>(qi[c]) * kv;
      }
      orow[j] = (static_cast<float>(acc) * q_scales[i]) * k_scales[j];
    }
  }
}

void matmul_nt_i8_block_scalar(const std::int8_t* a, std::size_t a_stride,
                               std::size_t m, const std::int8_t* b,
                               std::size_t b_stride, std::size_t n,
                               std::size_t k, std::int32_t* c,
                               std::size_t c_stride) {
  for (std::size_t i = 0; i < m; ++i) {
    const std::int8_t* ai = a + i * a_stride;
    std::int32_t* ci = c + i * c_stride;
    for (std::size_t j = 0; j < n; ++j) {
      ci[j] = dot_i8(ai, b + j * b_stride, k);
    }
  }
}

// The fixed 4-lane contract: element k lands in lane k%4, lanes fold as
// (l0+l1)+(l2+l3).  Vector backends reproduce exactly this order.
float nt_dot_f32_lanes(const float* a, const float* b, std::size_t d) {
  double lane[4] = {0.0, 0.0, 0.0, 0.0};
  std::size_t c = 0;
  for (; c + 4 <= d; c += 4) {
    lane[0] += static_cast<double>(a[c]) * static_cast<double>(b[c]);
    lane[1] += static_cast<double>(a[c + 1]) * static_cast<double>(b[c + 1]);
    lane[2] += static_cast<double>(a[c + 2]) * static_cast<double>(b[c + 2]);
    lane[3] += static_cast<double>(a[c + 3]) * static_cast<double>(b[c + 3]);
  }
  for (; c < d; ++c) {
    lane[c % 4] += static_cast<double>(a[c]) * static_cast<double>(b[c]);
  }
  return static_cast<float>((lane[0] + lane[1]) + (lane[2] + lane[3]));
}

void nt_dot_f32_row_scalar(const float* a, const float* b,
                           std::size_t b_stride, std::size_t n_rows,
                           std::size_t d, float* out) {
  for (std::size_t j = 0; j < n_rows; ++j) {
    out[j] = nt_dot_f32_lanes(a, b + j * b_stride, d);
  }
}

void attnv_accum_scalar(const float* w, std::size_t rows, const float* v,
                        std::size_t v_stride, std::size_t dv, float* out) {
  for (std::size_t r = 0; r < rows; ++r) {
    const float wr = w[r];
    if (wr == 0.0F) continue;
    const float* vrow = v + r * v_stride;
    for (std::size_t c = 0; c < dv; ++c) {
      out[c] += wr * vrow[c];
    }
  }
}

float row_max_scaled_scalar(const float* x, std::size_t n, float scale,
                            float init) {
  float m = init;
  for (std::size_t c = 0; c < n; ++c) {
    m = std::max(m, x[c] * scale);
  }
  return m;
}

float row_max_scaled_skipinf_scalar(const float* x, std::size_t n, float scale,
                                    float init) {
  constexpr float kNegInf = -std::numeric_limits<float>::infinity();
  float m = init;
  for (std::size_t c = 0; c < n; ++c) {
    if (x[c] != kNegInf) m = std::max(m, x[c] * scale);
  }
  return m;
}

void scale_inplace_scalar(float* x, std::size_t n, float s) {
  for (std::size_t c = 0; c < n; ++c) x[c] *= s;
}

void minmax_f32_scalar(const float* x, std::size_t n, float* lo, float* hi) {
  float l = x[0];
  float h = x[0];
  for (std::size_t c = 0; c < n; ++c) {
    l = std::min(l, x[c]);
    h = std::max(h, x[c]);
  }
  *lo = l;
  *hi = h;
}

float absmax_f32_scalar(const float* x, std::size_t n) {
  float m = 0.0F;
  for (std::size_t c = 0; c < n; ++c) {
    m = std::max(m, std::fabs(x[c]));
  }
  return m;
}

void fake_quant_f32_scalar(const float* in, float* out, std::size_t n,
                           const QuantTransform& t) {
  for (std::size_t c = 0; c < n; ++c) {
    out[c] = fake_quant_value(in[c], t);
  }
}

void quantize_i8_scalar(const float* in, std::int8_t* out, std::size_t n,
                        const QuantTransform& t) {
  for (std::size_t c = 0; c < n; ++c) {
    out[c] = quantize_i8_value(in[c], t);
  }
}

void dequant_i8_scalar(const std::int8_t* in, float* out, std::size_t n,
                       float scale) {
  for (std::size_t c = 0; c < n; ++c) {
    out[c] = scale * static_cast<float>(in[c]);
  }
}

void dequant_i32_scaled_scalar(const std::int32_t* acc, std::size_t n,
                               float row_scale, const float* col_scales,
                               float* out) {
  for (std::size_t c = 0; c < n; ++c) {
    out[c] = (static_cast<float>(acc[c]) * row_scale) * col_scales[c];
  }
}

void ldz_truncate_i8_scalar(const std::int8_t* src, std::int8_t* dst,
                            std::size_t n, int bits) {
  if (bits >= 8) {
    std::memcpy(dst, src, n);
    return;
  }
  for (std::size_t c = 0; c < n; ++c) {
    dst[c] = ldz_truncate_value(src[c], bits);
  }
}

void ldz_pack_scalar(const std::int8_t* src, std::size_t n, int bits,
                     std::uint8_t* mag, std::uint8_t* signshift) {
  const int per = ldz_codes_per_byte(bits);
  for (std::size_t i = 0; i < n; ++i) {
    const std::int8_t v = src[i];
    const bool neg = v < 0;
    const unsigned m = neg ? static_cast<unsigned>(-static_cast<int>(v))
                           : static_cast<unsigned>(v);
    const int len = ldz_bit_length_u8(m);
    const int shift = len > bits ? len - bits : 0;
    const unsigned mantissa = m >> shift;
    mag[i / static_cast<std::size_t>(per)] |= static_cast<std::uint8_t>(
        mantissa << ((i % static_cast<std::size_t>(per)) *
                     static_cast<std::size_t>(bits)));
    const unsigned ss =
        static_cast<unsigned>(shift) | (neg ? 8U : 0U);  // shift <= 7 fits
    signshift[i / 2] |= static_cast<std::uint8_t>(ss << ((i % 2) * 4));
  }
}

void ldz_unpack_scalar(const std::uint8_t* mag, const std::uint8_t* signshift,
                       std::size_t n, int bits, std::int8_t* dst) {
  const int per = ldz_codes_per_byte(bits);
  const unsigned mask = (1U << static_cast<unsigned>(bits)) - 1U;
  for (std::size_t i = 0; i < n; ++i) {
    const unsigned m =
        (mag[i / static_cast<std::size_t>(per)] >>
         ((i % static_cast<std::size_t>(per)) * static_cast<std::size_t>(bits))) &
        mask;
    const unsigned ss = (signshift[i / 2] >> ((i % 2) * 4)) & 0x0FU;
    const unsigned shift = ss & 7U;
    const int value = static_cast<int>(m << shift);
    dst[i] = static_cast<std::int8_t>((ss & 8U) != 0U ? -value : value);
  }
}

}  // namespace

const Backend* scalar_backend() {
  static const Backend backend = [] {
    Backend b;
    b.isa = Isa::kScalar;
    b.name = "scalar";
    b.qk_tile_i8_scaled = &qk_tile_i8_scaled_scalar;
    b.qk_tile_i4p_scaled = &qk_tile_packed_scaled_scalar<4>;
    b.qk_tile_i2q_scaled = &qk_tile_packed_scaled_scalar<2>;
    b.matmul_nt_i8_block = &matmul_nt_i8_block_scalar;
    b.nt_dot_f32_row = &nt_dot_f32_row_scalar;
    b.attnv_accum = &attnv_accum_scalar;
    b.row_max_scaled = &row_max_scaled_scalar;
    b.row_max_scaled_skipinf = &row_max_scaled_skipinf_scalar;
    b.scale_inplace = &scale_inplace_scalar;
    b.minmax_f32 = &minmax_f32_scalar;
    b.absmax_f32 = &absmax_f32_scalar;
    b.fake_quant_f32 = &fake_quant_f32_scalar;
    b.quantize_i8 = &quantize_i8_scalar;
    b.dequant_i8 = &dequant_i8_scalar;
    b.dequant_i32_scaled = &dequant_i32_scaled_scalar;
    b.ldz_truncate_i8 = &ldz_truncate_i8_scalar;
    b.ldz_pack = &ldz_pack_scalar;
    b.ldz_unpack = &ldz_unpack_scalar;
    return b;
  }();
  return &backend;
}

}  // namespace paro::kernels::detail
