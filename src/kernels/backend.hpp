#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "kernels/isa.hpp"
#include "kernels/kernels.hpp"

// Internal dispatch table.  Each backend fills the entries it implements and
// inherits the scalar pointer for the rest, so a partially-vectorized backend
// (e.g. NEON) is still complete and still bit-exact.
namespace paro::kernels::detail {

struct Backend {
  Isa isa = Isa::kScalar;
  const char* name = "scalar";

  void (*qk_tile_i8_scaled)(const std::int8_t*, std::size_t, std::size_t,
                            const std::int8_t*, std::size_t, std::size_t,
                            std::size_t, const float*, const float*, float*,
                            std::size_t) = nullptr;
  void (*qk_tile_i4p_scaled)(const std::int8_t*, std::size_t, std::size_t,
                             const std::uint8_t*, std::size_t,
                             const std::uint8_t*, std::size_t, std::size_t,
                             std::size_t, const float*, const float*, float*,
                             std::size_t) = nullptr;
  void (*qk_tile_i2q_scaled)(const std::int8_t*, std::size_t, std::size_t,
                             const std::uint8_t*, std::size_t,
                             const std::uint8_t*, std::size_t, std::size_t,
                             std::size_t, const float*, const float*, float*,
                             std::size_t) = nullptr;
  void (*matmul_nt_i8_block)(const std::int8_t*, std::size_t, std::size_t,
                             const std::int8_t*, std::size_t, std::size_t,
                             std::size_t, std::int32_t*, std::size_t) = nullptr;
  void (*nt_dot_f32_row)(const float*, const float*, std::size_t, std::size_t,
                         std::size_t, float*) = nullptr;
  void (*attnv_accum)(const float*, std::size_t, const float*, std::size_t,
                      std::size_t, float*) = nullptr;
  float (*row_max_scaled)(const float*, std::size_t, float, float) = nullptr;
  float (*row_max_scaled_skipinf)(const float*, std::size_t, float,
                                  float) = nullptr;
  void (*scale_inplace)(float*, std::size_t, float) = nullptr;
  void (*minmax_f32)(const float*, std::size_t, float*, float*) = nullptr;
  float (*absmax_f32)(const float*, std::size_t) = nullptr;
  void (*fake_quant_f32)(const float*, float*, std::size_t,
                         const QuantTransform&) = nullptr;
  void (*quantize_i8)(const float*, std::int8_t*, std::size_t,
                      const QuantTransform&) = nullptr;
  void (*dequant_i8)(const std::int8_t*, float*, std::size_t,
                     float) = nullptr;
  void (*dequant_i32_scaled)(const std::int32_t*, std::size_t, float,
                             const float*, float*) = nullptr;
  void (*ldz_truncate_i8)(const std::int8_t*, std::int8_t*, std::size_t,
                          int) = nullptr;
  void (*ldz_pack)(const std::int8_t*, std::size_t, int, std::uint8_t*,
                   std::uint8_t*) = nullptr;
  void (*ldz_unpack)(const std::uint8_t*, const std::uint8_t*, std::size_t,
                     int, std::int8_t*) = nullptr;
};

// Backend factories.  Only the scalar one is unconditionally compiled; the
// others exist when the matching source file is part of the build (CMake
// gates on the target architecture) and must only be CALLED after an
// isa_available() check — their translation units carry -m<isa> flags.
const Backend* scalar_backend();
#if defined(__x86_64__) || defined(_M_X64)
const Backend* avx2_backend();
const Backend* avx512_backend();
#endif
#if defined(__aarch64__)
const Backend* neon_backend();
#endif

// The currently selected backend (runs env/auto selection on first use).
const Backend& active_backend();

// --- shared scalar element formulas ----------------------------------------
// Vector backends call these for loop tails; keeping one definition is what
// makes "same scalar op sequence per element" trivially true.

inline float fake_quant_value(float x, const QuantTransform& t) {
  const auto q = static_cast<std::int64_t>(
      std::lround(static_cast<double>(x) / t.scale));
  auto qc = q + t.zero_point;
  if (qc < t.qlo) qc = t.qlo;
  if (qc > t.qhi) qc = t.qhi;
  return t.scale * static_cast<float>(qc - t.zero_point);
}

inline std::int8_t quantize_i8_value(float x, const QuantTransform& t) {
  const auto q = static_cast<std::int64_t>(
      std::lround(static_cast<double>(x) / t.scale));
  auto qc = q + t.zero_point;
  if (qc < t.qlo) qc = t.qlo;
  if (qc > t.qhi) qc = t.qhi;
  return static_cast<std::int8_t>(qc);
}

inline int ldz_bit_length_u8(unsigned v) {
  int len = 0;
  while (v != 0U) {
    ++len;
    v >>= 1U;
  }
  return len;
}

inline std::int8_t ldz_truncate_value(std::int8_t v, int bits) {
  const bool neg = v < 0;
  const unsigned mag = neg ? static_cast<unsigned>(-static_cast<int>(v))
                           : static_cast<unsigned>(v);
  const int len = ldz_bit_length_u8(mag);
  const int shift = len > bits ? len - bits : 0;
  const unsigned kept = (mag >> shift) << shift;
  const int out = neg ? -static_cast<int>(kept) : static_cast<int>(kept);
  return static_cast<std::int8_t>(out);
}

}  // namespace paro::kernels::detail
