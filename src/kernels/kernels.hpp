#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "kernels/isa.hpp"

// Runtime-dispatched micro-kernels for the quantized attention hot paths.
//
// Contracts (enforced by tests/kernels/):
//  * Integer kernels are bit-exact against the scalar backend on every shape
//    and bitwidth: integer addition is associative, so vector-width changes
//    cannot alter results.
//  * Float kernels are bitwise identical across backends because every
//    backend follows the same fixed operation order: dot products accumulate
//    into 4 double lanes striped by k%4 and fold as (l0+l1)+(l2+l3);
//    elementwise ops perform the same scalar op sequence per element; `exp`
//    stays sequential scalar in every backend (exp_sum_segment).
//  * No FMA contraction anywhere (vector code uses separate mul/add
//    intrinsics; scalar TUs build with -ffp-contract=off).
//
// The layer depends only on paro_common/paro_obs and takes raw pointers, so
// tensor/quant/attention can all sit on top of it.
namespace paro::kernels {

// Affine quantization transform in kernel-native form.  Callers derive it
// from quant::QuantParams; keeping a local mirror avoids a dependency cycle
// (paro_quant links against paro_kernels).
struct QuantTransform {
  float scale = 1.0F;
  std::int32_t zero_point = 0;
  std::int64_t qlo = 0;
  std::int64_t qhi = 0;
};

// --- packed / integer tile kernels -----------------------------------------

// out[i*out_stride + j] = (float(dot_i32(q_i, k_j)) * q_scales[i]) * k_scales[j]
// for i in [0,q_rows), j in [0,k_rows); rows are length-d int8 vectors.
void qk_tile_i8_scaled(const std::int8_t* q, std::size_t q_stride,
                       std::size_t q_rows, const std::int8_t* k,
                       std::size_t k_stride, std::size_t k_rows, std::size_t d,
                       const float* q_scales, const float* k_scales, float* out,
                       std::size_t out_stride);

// Packed sub-byte QK^T tiles: the K operand comes straight from a PackedLdzK
// plane (mag/signshift streams, see ldz_pack) instead of widened int8 codes.
// Semantics are EXACTLY "ldz_unpack row j, then qk_tile_i8_scaled": the LDZ
// identity (mantissa << shift) * q == (mantissa * q) << shift plus int32
// associativity make the packed dot provably bit-identical to the
// truncate-then-int8-dot oracle on every backend.
//
// qk_tile_i4p_scaled reads 4-bit mantissa pairs (2 codes/byte);
// qk_tile_i2q_scaled reads 2-bit mantissa quads (4 codes/byte).  Both read
// one sign/shift nibble per code (2 codes/byte).  Row r of K starts at
// k_mag + r * k_mag_stride / k_ss + r * k_ss_stride.
void qk_tile_i4p_scaled(const std::int8_t* q, std::size_t q_stride,
                        std::size_t q_rows, const std::uint8_t* k_mag,
                        std::size_t k_mag_stride, const std::uint8_t* k_ss,
                        std::size_t k_ss_stride, std::size_t k_rows,
                        std::size_t d, const float* q_scales,
                        const float* k_scales, float* out,
                        std::size_t out_stride);
void qk_tile_i2q_scaled(const std::int8_t* q, std::size_t q_stride,
                        std::size_t q_rows, const std::uint8_t* k_mag,
                        std::size_t k_mag_stride, const std::uint8_t* k_ss,
                        std::size_t k_ss_stride, std::size_t k_rows,
                        std::size_t d, const float* q_scales,
                        const float* k_scales, float* out,
                        std::size_t out_stride);

// c[m x n] = a[m x k] * b[n x k]^T in int32 (cache-blocked, alignment-safe
// tails for any k % simd_width).
void matmul_nt_i8_block(const std::int8_t* a, std::size_t a_stride,
                        std::size_t m, const std::int8_t* b,
                        std::size_t b_stride, std::size_t n, std::size_t k,
                        std::int32_t* c, std::size_t c_stride);

// --- float kernels (fixed accumulation order) ------------------------------

// out[j] = float(dot(a, b_j)) for j in [0,n_rows) with the 4-lane double
// accumulation contract described above.
void nt_dot_f32_row(const float* a, const float* b, std::size_t b_stride,
                    std::size_t n_rows, std::size_t d, float* out);

// out[c] += w[r] * v[r*v_stride + c] for all r with w[r] != 0 (rows with a
// zero weight are skipped entirely, mirroring the sparse attention map).
void attnv_accum(const float* w, std::size_t rows, const float* v,
                 std::size_t v_stride, std::size_t dv, float* out);

// max(init, max_c x[c] * scale); order-insensitive, so vectorizable.
float row_max_scaled(const float* x, std::size_t n, float scale, float init);

// Same, but entries equal to -inf are excluded (skip-aware softmax).
float row_max_scaled_skipinf(const float* x, std::size_t n, float scale,
                             float init);

// x[c] *= s.
void scale_inplace(float* x, std::size_t n, float s);

// In place: x[c] = float(exp(double(x[c] * scale - row_max))); returns
// `sum` extended element-by-element (sum = (((sum+e0)+e1)+...), so a row
// split into tile segments chains to exactly the whole-row sum).  ALWAYS
// scalar in every backend: libm exp and a serial double chain are the
// cross-ISA determinism anchor.
double exp_sum_segment(float* x, std::size_t n, float scale, float row_max,
                       double sum);

// Elementwise min/max over x (n > 0); lo/hi are outputs.
void minmax_f32(const float* x, std::size_t n, float* lo, float* hi);

// max_c |x[c]| (0 for n == 0).
float absmax_f32(const float* x, std::size_t n);

// out[c] = t.scale * float(clamp(lround(x[c]/t.scale) + zp, qlo, qhi) - zp);
// identical to quantize_value/dequantize_value composition in quant/affine.
void fake_quant_f32(const float* in, float* out, std::size_t n,
                    const QuantTransform& t);

// out[c] = int8(clamp(lround(x[c]/t.scale) + zp, qlo, qhi)); caller must
// guarantee [qlo,qhi] fits int8.
void quantize_i8(const float* in, std::int8_t* out, std::size_t n,
                 const QuantTransform& t);

// out[c] = scale * float(in[c])  (symmetric dequant).
void dequant_i8(const std::int8_t* in, float* out, std::size_t n, float scale);

// out[j] = (float(acc[j]) * row_scale) * col_scales[j]  (W8A8 epilogue).
void dequant_i32_scaled(const std::int32_t* acc, std::size_t n,
                        float row_scale, const float* col_scales, float* out);

// --- LDZ truncation / packing ----------------------------------------------

// dst[c] = fixedpoint ldz_approximate(src[c], bits): keep the `bits` leading
// significant bits of |src[c]|, zero the rest, restore sign.  bits in [1,8]
// (8 copies through).  Values must be int8 (|v| <= 128 by construction).
void ldz_truncate_i8(const std::int8_t* src, std::int8_t* dst, std::size_t n,
                     int bits);

// Packs n LDZ-truncated codes into two streams mirroring the PE operand
// modes: `mag` holds the bits-wide mantissa magnitudes packed lsb-first
// (2b-quads: 4/byte, 4b-pairs: 2/byte, 1b: 8/byte; other widths 1/byte) and
// `signshift` holds one nibble per code: shift | (negative << 3).  Both
// buffers must be zeroed by the caller (ldz_packed_bytes sizes them).
// bits in [1,7].
void ldz_pack(const std::int8_t* src, std::size_t n, int bits,
              std::uint8_t* mag, std::uint8_t* signshift);

// Inverse of ldz_pack: dst[c] = sign * (mantissa << shift); bit-exact equal
// to ldz_truncate_i8 of the original values.
void ldz_unpack(const std::uint8_t* mag, const std::uint8_t* signshift,
                std::size_t n, int bits, std::int8_t* dst);

// Packed mantissa codes per byte for a given width (4 for 2b, 2 for 4b, ...).
int ldz_codes_per_byte(int bits);
// Byte sizes of the two streams for n codes at `bits`.
std::size_t ldz_mag_bytes(std::size_t n, int bits);
std::size_t ldz_signshift_bytes(std::size_t n);

// --- observability ----------------------------------------------------------

struct KernelCallCount {
  const char* name;
  std::uint64_t calls;
};

// Per-kernel call counts since process start (or the last reset).
std::vector<KernelCallCount> kernel_call_counts();
void reset_kernel_call_counts();

// Publishes kernel.dispatch{isa=...} and kernel.calls{kernel=...} into the
// global metrics registry (delta-tracked; safe to call repeatedly).
void publish_kernel_metrics();

}  // namespace paro::kernels
