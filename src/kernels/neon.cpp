// NEON (AArch64) backend.  Implements the int8 dot kernels and the simple
// elementwise/order-insensitive float kernels; everything with a subtler
// contract (fake-quant rounding, LDZ packing) inherits the scalar reference,
// which is always bit-exact by definition.
#if defined(__aarch64__)

#include <arm_neon.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "kernels/backend.hpp"

namespace paro::kernels::detail {
namespace {

inline std::int32_t dot_i8_neon(const std::int8_t* a, const std::int8_t* b,
                                std::size_t k) {
  int32x4_t acc = vdupq_n_s32(0);
  std::size_t c = 0;
  for (; c + 16 <= k; c += 16) {
    const int8x16_t av = vld1q_s8(a + c);
    const int8x16_t bv = vld1q_s8(b + c);
    const int16x8_t lo = vmull_s8(vget_low_s8(av), vget_low_s8(bv));
    const int16x8_t hi = vmull_s8(vget_high_s8(av), vget_high_s8(bv));
    acc = vpadalq_s16(acc, lo);
    acc = vpadalq_s16(acc, hi);
  }
  std::int32_t s = vaddvq_s32(acc);
  for (; c < k; ++c) s += static_cast<std::int32_t>(a[c]) * b[c];
  return s;
}

void qk_tile_i8_scaled_neon(const std::int8_t* q, std::size_t q_stride,
                            std::size_t q_rows, const std::int8_t* k,
                            std::size_t k_stride, std::size_t k_rows,
                            std::size_t d, const float* q_scales,
                            const float* k_scales, float* out,
                            std::size_t out_stride) {
  for (std::size_t i = 0; i < q_rows; ++i) {
    const std::int8_t* qi = q + i * q_stride;
    const float sq = q_scales[i];
    float* orow = out + i * out_stride;
    for (std::size_t j = 0; j < k_rows; ++j) {
      const std::int32_t acc = dot_i8_neon(qi, k + j * k_stride, d);
      orow[j] = (static_cast<float>(acc) * sq) * k_scales[j];
    }
  }
}

void matmul_nt_i8_block_neon(const std::int8_t* a, std::size_t a_stride,
                             std::size_t m, const std::int8_t* b,
                             std::size_t b_stride, std::size_t n,
                             std::size_t k, std::int32_t* c,
                             std::size_t c_stride) {
  constexpr std::size_t kJBlock = 256;
  for (std::size_t jb = 0; jb < n; jb += kJBlock) {
    const std::size_t jend = std::min(jb + kJBlock, n);
    for (std::size_t i = 0; i < m; ++i) {
      const std::int8_t* ai = a + i * a_stride;
      std::int32_t* ci = c + i * c_stride;
      for (std::size_t j = jb; j < jend; ++j) {
        ci[j] = dot_i8_neon(ai, b + j * b_stride, k);
      }
    }
  }
}

// Packed sub-byte QK^T: decode one K row with the scalar unpack (NEON keeps
// ldz_unpack scalar) into a stack buffer, then vectorize the q_rows dot
// products over it.  The decode is O(k_rows * d), the dots O(q_rows *
// k_rows * d), so the scalar unpack amortizes; int32 sums keep it bit-exact.
template <int kBits>
void qk_tile_packed_scaled_neon(const std::int8_t* q, std::size_t q_stride,
                                std::size_t q_rows, const std::uint8_t* k_mag,
                                std::size_t k_mag_stride,
                                const std::uint8_t* k_ss,
                                std::size_t k_ss_stride, std::size_t k_rows,
                                std::size_t d, const float* q_scales,
                                const float* k_scales, float* out,
                                std::size_t out_stride) {
  constexpr std::size_t kMaxD = 1024;
  const auto* sb = scalar_backend();
  if (d > kMaxD) {
    (kBits == 4 ? sb->qk_tile_i4p_scaled : sb->qk_tile_i2q_scaled)(
        q, q_stride, q_rows, k_mag, k_mag_stride, k_ss, k_ss_stride, k_rows,
        d, q_scales, k_scales, out, out_stride);
    return;
  }
  std::int8_t row[kMaxD];
  for (std::size_t j = 0; j < k_rows; ++j) {
    sb->ldz_unpack(k_mag + j * k_mag_stride, k_ss + j * k_ss_stride, d, kBits,
                   row);
    for (std::size_t i = 0; i < q_rows; ++i) {
      const std::int32_t acc = dot_i8_neon(q + i * q_stride, row, d);
      out[i * out_stride + j] =
          (static_cast<float>(acc) * q_scales[i]) * k_scales[j];
    }
  }
}

void nt_dot_f32_row_neon(const float* a, const float* b, std::size_t b_stride,
                         std::size_t n_rows, std::size_t d, float* out) {
  for (std::size_t j = 0; j < n_rows; ++j) {
    const float* bj = b + j * b_stride;
    // Same 4-double-lane k%4 striping as the scalar reference, held in two
    // float64x2 registers (lanes 0/1 and 2/3); vmul+vadd, never vfma.
    float64x2_t acc01 = vdupq_n_f64(0.0);
    float64x2_t acc23 = vdupq_n_f64(0.0);
    std::size_t c = 0;
    for (; c + 4 <= d; c += 4) {
      const float32x4_t af = vld1q_f32(a + c);
      const float32x4_t bf = vld1q_f32(bj + c);
      const float64x2_t a01 = vcvt_f64_f32(vget_low_f32(af));
      const float64x2_t a23 = vcvt_high_f64_f32(af);
      const float64x2_t b01 = vcvt_f64_f32(vget_low_f32(bf));
      const float64x2_t b23 = vcvt_high_f64_f32(bf);
      acc01 = vaddq_f64(acc01, vmulq_f64(a01, b01));
      acc23 = vaddq_f64(acc23, vmulq_f64(a23, b23));
    }
    double lane[4] = {vgetq_lane_f64(acc01, 0), vgetq_lane_f64(acc01, 1),
                      vgetq_lane_f64(acc23, 0), vgetq_lane_f64(acc23, 1)};
    for (; c < d; ++c) {
      lane[c % 4] += static_cast<double>(a[c]) * static_cast<double>(bj[c]);
    }
    out[j] = static_cast<float>((lane[0] + lane[1]) + (lane[2] + lane[3]));
  }
}

void attnv_accum_neon(const float* w, std::size_t rows, const float* v,
                      std::size_t v_stride, std::size_t dv, float* out) {
  for (std::size_t r = 0; r < rows; ++r) {
    const float wr = w[r];
    if (wr == 0.0F) continue;
    const float* vrow = v + r * v_stride;
    const float32x4_t vw = vdupq_n_f32(wr);
    std::size_t c = 0;
    for (; c + 4 <= dv; c += 4) {
      const float32x4_t prod = vmulq_f32(vw, vld1q_f32(vrow + c));
      vst1q_f32(out + c, vaddq_f32(vld1q_f32(out + c), prod));
    }
    for (; c < dv; ++c) out[c] += wr * vrow[c];
  }
}

void scale_inplace_neon(float* x, std::size_t n, float s) {
  const float32x4_t vs = vdupq_n_f32(s);
  std::size_t c = 0;
  for (; c + 4 <= n; c += 4) {
    vst1q_f32(x + c, vmulq_f32(vld1q_f32(x + c), vs));
  }
  for (; c < n; ++c) x[c] *= s;
}

void dequant_i8_neon(const std::int8_t* in, float* out, std::size_t n,
                     float scale) {
  const float32x4_t vs = vdupq_n_f32(scale);
  std::size_t c = 0;
  for (; c + 8 <= n; c += 8) {
    const int16x8_t w = vmovl_s8(vld1_s8(in + c));
    const float32x4_t lo = vcvtq_f32_s32(vmovl_s16(vget_low_s16(w)));
    const float32x4_t hi = vcvtq_f32_s32(vmovl_s16(vget_high_s16(w)));
    vst1q_f32(out + c, vmulq_f32(vs, lo));
    vst1q_f32(out + c + 4, vmulq_f32(vs, hi));
  }
  for (; c < n; ++c) out[c] = scale * static_cast<float>(in[c]);
}

}  // namespace

const Backend* neon_backend() {
  static const Backend backend = [] {
    Backend b = *scalar_backend();
    b.isa = Isa::kNeon;
    b.name = "neon";
    b.qk_tile_i8_scaled = &qk_tile_i8_scaled_neon;
    b.qk_tile_i4p_scaled = &qk_tile_packed_scaled_neon<4>;
    b.qk_tile_i2q_scaled = &qk_tile_packed_scaled_neon<2>;
    b.matmul_nt_i8_block = &matmul_nt_i8_block_neon;
    b.nt_dot_f32_row = &nt_dot_f32_row_neon;
    b.attnv_accum = &attnv_accum_neon;
    b.scale_inplace = &scale_inplace_neon;
    b.dequant_i8 = &dequant_i8_neon;
    return b;
  }();
  return &backend;
}

}  // namespace paro::kernels::detail

#endif  // __aarch64__
