#include "kernels/kernels.hpp"

#include <array>
#include <atomic>
#include <cmath>
#include <mutex>

#include "common/error.hpp"
#include "kernels/backend.hpp"
#include "obs/metrics.hpp"

namespace paro::kernels {

namespace {

enum KernelId : std::size_t {
  kQkTileI8 = 0,
  kQkTileI4P,
  kQkTileI2Q,
  kMatmulNtI8,
  kNtDotF32,
  kAttnVAccum,
  kRowMax,
  kRowMaxSkipInf,
  kScaleInplace,
  kExpSum,
  kMinMax,
  kAbsMax,
  kFakeQuant,
  kQuantizeI8,
  kDequantI8,
  kDequantI32,
  kLdzTruncate,
  kLdzPack,
  kLdzUnpack,
  kNumKernels,
};

constexpr std::array<const char*, kNumKernels> kKernelNames = {
    "qk_tile_i8_scaled",  "qk_tile_i4p_scaled", "qk_tile_i2q_scaled",
    "matmul_nt_i8_block", "nt_dot_f32_row",     "attnv_accum",
    "row_max_scaled",     "row_max_scaled_skipinf", "scale_inplace",
    "exp_sum_segment",    "minmax_f32",         "absmax_f32",
    "fake_quant_f32",     "quantize_i8",        "dequant_i8",
    "dequant_i32_scaled", "ldz_truncate_i8",    "ldz_pack",
    "ldz_unpack",
};

// Relaxed: counts are telemetry, not synchronization.  One cache line per
// counter would be nicer, but the hot kernels amortize over whole tiles.
std::array<std::atomic<std::uint64_t>, kNumKernels>& counters() {
  static std::array<std::atomic<std::uint64_t>, kNumKernels> c{};
  return c;
}

inline void count(KernelId id) {
  counters()[id].fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

void qk_tile_i8_scaled(const std::int8_t* q, std::size_t q_stride,
                       std::size_t q_rows, const std::int8_t* k,
                       std::size_t k_stride, std::size_t k_rows, std::size_t d,
                       const float* q_scales, const float* k_scales, float* out,
                       std::size_t out_stride) {
  count(kQkTileI8);
  detail::active_backend().qk_tile_i8_scaled(q, q_stride, q_rows, k, k_stride,
                                             k_rows, d, q_scales, k_scales,
                                             out, out_stride);
}

void qk_tile_i4p_scaled(const std::int8_t* q, std::size_t q_stride,
                        std::size_t q_rows, const std::uint8_t* k_mag,
                        std::size_t k_mag_stride, const std::uint8_t* k_ss,
                        std::size_t k_ss_stride, std::size_t k_rows,
                        std::size_t d, const float* q_scales,
                        const float* k_scales, float* out,
                        std::size_t out_stride) {
  count(kQkTileI4P);
  detail::active_backend().qk_tile_i4p_scaled(
      q, q_stride, q_rows, k_mag, k_mag_stride, k_ss, k_ss_stride, k_rows, d,
      q_scales, k_scales, out, out_stride);
}

void qk_tile_i2q_scaled(const std::int8_t* q, std::size_t q_stride,
                        std::size_t q_rows, const std::uint8_t* k_mag,
                        std::size_t k_mag_stride, const std::uint8_t* k_ss,
                        std::size_t k_ss_stride, std::size_t k_rows,
                        std::size_t d, const float* q_scales,
                        const float* k_scales, float* out,
                        std::size_t out_stride) {
  count(kQkTileI2Q);
  detail::active_backend().qk_tile_i2q_scaled(
      q, q_stride, q_rows, k_mag, k_mag_stride, k_ss, k_ss_stride, k_rows, d,
      q_scales, k_scales, out, out_stride);
}

void matmul_nt_i8_block(const std::int8_t* a, std::size_t a_stride,
                        std::size_t m, const std::int8_t* b,
                        std::size_t b_stride, std::size_t n, std::size_t k,
                        std::int32_t* c, std::size_t c_stride) {
  count(kMatmulNtI8);
  detail::active_backend().matmul_nt_i8_block(a, a_stride, m, b, b_stride, n,
                                              k, c, c_stride);
}

void nt_dot_f32_row(const float* a, const float* b, std::size_t b_stride,
                    std::size_t n_rows, std::size_t d, float* out) {
  count(kNtDotF32);
  detail::active_backend().nt_dot_f32_row(a, b, b_stride, n_rows, d, out);
}

void attnv_accum(const float* w, std::size_t rows, const float* v,
                 std::size_t v_stride, std::size_t dv, float* out) {
  count(kAttnVAccum);
  detail::active_backend().attnv_accum(w, rows, v, v_stride, dv, out);
}

float row_max_scaled(const float* x, std::size_t n, float scale, float init) {
  count(kRowMax);
  return detail::active_backend().row_max_scaled(x, n, scale, init);
}

float row_max_scaled_skipinf(const float* x, std::size_t n, float scale,
                             float init) {
  count(kRowMaxSkipInf);
  return detail::active_backend().row_max_scaled_skipinf(x, n, scale, init);
}

void scale_inplace(float* x, std::size_t n, float s) {
  count(kScaleInplace);
  detail::active_backend().scale_inplace(x, n, s);
}

double exp_sum_segment(float* x, std::size_t n, float scale, float row_max,
                       double sum) {
  count(kExpSum);
  // Deliberately NOT dispatched: libm exp on a serial double chain is the
  // one sequence every ISA shares, which pins cross-backend bitwise
  // identity of the softmax (and of everything downstream of it).
  for (std::size_t c = 0; c < n; ++c) {
    const double e =
        std::exp(static_cast<double>(x[c] * scale - row_max));
    x[c] = static_cast<float>(e);
    sum += e;
  }
  return sum;
}

void minmax_f32(const float* x, std::size_t n, float* lo, float* hi) {
  PARO_CHECK_MSG(n > 0, "minmax_f32 needs a non-empty span");
  count(kMinMax);
  detail::active_backend().minmax_f32(x, n, lo, hi);
}

float absmax_f32(const float* x, std::size_t n) {
  count(kAbsMax);
  return detail::active_backend().absmax_f32(x, n);
}

void fake_quant_f32(const float* in, float* out, std::size_t n,
                    const QuantTransform& t) {
  count(kFakeQuant);
  detail::active_backend().fake_quant_f32(in, out, n, t);
}

void quantize_i8(const float* in, std::int8_t* out, std::size_t n,
                 const QuantTransform& t) {
  PARO_CHECK_MSG(t.qlo >= -128 && t.qhi <= 127,
                 "quantize_i8 range does not fit int8");
  count(kQuantizeI8);
  detail::active_backend().quantize_i8(in, out, n, t);
}

void dequant_i8(const std::int8_t* in, float* out, std::size_t n,
                float scale) {
  count(kDequantI8);
  detail::active_backend().dequant_i8(in, out, n, scale);
}

void dequant_i32_scaled(const std::int32_t* acc, std::size_t n,
                        float row_scale, const float* col_scales, float* out) {
  count(kDequantI32);
  detail::active_backend().dequant_i32_scaled(acc, n, row_scale, col_scales,
                                              out);
}

void ldz_truncate_i8(const std::int8_t* src, std::int8_t* dst, std::size_t n,
                     int bits) {
  PARO_CHECK_MSG(bits >= 1 && bits <= 8, "ldz bits out of range");
  count(kLdzTruncate);
  detail::active_backend().ldz_truncate_i8(src, dst, n, bits);
}

void ldz_pack(const std::int8_t* src, std::size_t n, int bits,
              std::uint8_t* mag, std::uint8_t* signshift) {
  PARO_CHECK_MSG(bits >= 1 && bits <= 7, "ldz_pack bits out of range");
  count(kLdzPack);
  detail::active_backend().ldz_pack(src, n, bits, mag, signshift);
}

void ldz_unpack(const std::uint8_t* mag, const std::uint8_t* signshift,
                std::size_t n, int bits, std::int8_t* dst) {
  PARO_CHECK_MSG(bits >= 1 && bits <= 7, "ldz_unpack bits out of range");
  count(kLdzUnpack);
  detail::active_backend().ldz_unpack(mag, signshift, n, bits, dst);
}

int ldz_codes_per_byte(int bits) {
  return (bits == 1 || bits == 2 || bits == 4) ? 8 / bits : 1;
}

std::size_t ldz_mag_bytes(std::size_t n, int bits) {
  const auto per = static_cast<std::size_t>(ldz_codes_per_byte(bits));
  return (n + per - 1) / per;
}

std::size_t ldz_signshift_bytes(std::size_t n) { return (n + 1) / 2; }

std::vector<KernelCallCount> kernel_call_counts() {
  std::vector<KernelCallCount> out;
  out.reserve(kNumKernels);
  for (std::size_t i = 0; i < kNumKernels; ++i) {
    out.push_back(
        {kKernelNames[i], counters()[i].load(std::memory_order_relaxed)});
  }
  return out;
}

void reset_kernel_call_counts() {
  for (auto& c : counters()) c.store(0, std::memory_order_relaxed);
}

void publish_kernel_metrics() {
  // The obs counters are cumulative `add()`s, so publish deltas vs the last
  // snapshot (guarded: publish may be called from several report writers).
  static std::mutex mu;
  static std::array<std::uint64_t, kNumKernels> published{};
  std::lock_guard<std::mutex> lock(mu);
  auto& reg = obs::MetricsRegistry::global();
  reg.gauge("kernel.dispatch", {{"isa", isa_name(active_isa())}}).set(1.0);
  for (std::size_t i = 0; i < kNumKernels; ++i) {
    const std::uint64_t now = counters()[i].load(std::memory_order_relaxed);
    if (now > published[i]) {
      reg.counter("kernel.calls", {{"kernel", kKernelNames[i]}})
          .add(static_cast<double>(now - published[i]));
      published[i] = now;
    }
  }
}

}  // namespace paro::kernels
