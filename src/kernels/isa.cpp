#include "kernels/isa.hpp"

#include <atomic>
#include <cstdlib>

#include "common/error.hpp"
#include "kernels/backend.hpp"

namespace paro::kernels {
namespace {

using detail::Backend;

bool cpu_supports(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return true;
    case Isa::kAvx2:
#if defined(__x86_64__) || defined(_M_X64)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case Isa::kAvx512:
#if defined(__x86_64__) || defined(_M_X64)
      return __builtin_cpu_supports("avx512f") != 0 &&
             __builtin_cpu_supports("avx512bw") != 0 &&
             __builtin_cpu_supports("avx512vl") != 0;
#else
      return false;
#endif
    case Isa::kNeon:
#if defined(__aarch64__)
      return true;
#else
      return false;
#endif
  }
  return false;
}

const Backend* backend_for(Isa isa) {
  if (!isa_available(isa)) {
    throw ConfigError(std::string("kernel ISA '") + isa_name(isa) +
                      "' is not available on this host");
  }
  switch (isa) {
    case Isa::kScalar:
      return detail::scalar_backend();
#if defined(__x86_64__) || defined(_M_X64)
    case Isa::kAvx2:
      return detail::avx2_backend();
    case Isa::kAvx512:
      return detail::avx512_backend();
#endif
#if defined(__aarch64__)
    case Isa::kNeon:
      return detail::neon_backend();
#endif
    default:
      break;
  }
  throw ConfigError(std::string("kernel ISA '") + isa_name(isa) +
                    "' is not compiled into this build");
}

// Selected-backend pointer.  nullptr means "not selected yet"; selection is
// deterministic (same env, same CPU -> same backend), so a benign first-use
// race between threads lands on the same value.
std::atomic<const Backend*> g_backend{nullptr};

const Backend* select_backend() {
  const char* env = std::getenv("PARO_ISA");
  if (env != nullptr && *env != '\0') {
    // An explicit request either takes effect or fails loudly — a silent
    // scalar fallback would invalidate every benchmark run under PARO_ISA.
    return backend_for(parse_isa(env));
  }
  const std::vector<Isa> isas = available_isas();
  return backend_for(isas.front());
}

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar:
      return "scalar";
    case Isa::kAvx2:
      return "avx2";
    case Isa::kAvx512:
      return "avx512";
    case Isa::kNeon:
      return "neon";
  }
  return "unknown";
}

Isa parse_isa(const std::string& name) {
  if (name == "scalar") return Isa::kScalar;
  if (name == "avx2") return Isa::kAvx2;
  if (name == "avx512") return Isa::kAvx512;
  if (name == "neon") return Isa::kNeon;
  throw ConfigError("unknown kernel ISA '" + name +
                    "' (expected scalar|avx2|avx512|neon)");
}

bool isa_available(Isa isa) { return cpu_supports(isa); }

std::vector<Isa> available_isas() {
  std::vector<Isa> out;
  for (Isa isa : {Isa::kAvx512, Isa::kAvx2, Isa::kNeon}) {
    if (isa_available(isa)) out.push_back(isa);
  }
  out.push_back(Isa::kScalar);
  return out;
}

Isa active_isa() { return detail::active_backend().isa; }

void force_isa(Isa isa) {
  g_backend.store(backend_for(isa), std::memory_order_release);
}

void reset_isa() { g_backend.store(nullptr, std::memory_order_release); }

namespace detail {

const Backend& active_backend() {
  const Backend* b = g_backend.load(std::memory_order_acquire);
  if (b == nullptr) {
    b = select_backend();
    g_backend.store(b, std::memory_order_release);
  }
  return *b;
}

}  // namespace detail
}  // namespace paro::kernels
