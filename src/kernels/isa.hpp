#pragma once

#include <string>
#include <vector>

namespace paro::kernels {

// Instruction-set backends the kernel layer can dispatch to.  kScalar is the
// always-available, always-correct reference; every other backend must be
// bit-exact against it (integer kernels on all inputs, float kernels by
// construction of a shared operation order — see docs/performance.md).
enum class Isa {
  kScalar,
  kAvx2,
  kAvx512,
  kNeon,
};

// Lower-case stable name used in PARO_ISA=, metrics labels and JSON reports.
const char* isa_name(Isa isa);

// Parses a PARO_ISA value ("scalar", "avx2", "avx512", "neon").
// Throws ConfigError on an unknown name.
Isa parse_isa(const std::string& name);

// True when the host CPU (and this build) can execute `isa`.
bool isa_available(Isa isa);

// Every ISA available on this host, best first (scalar always last).
std::vector<Isa> available_isas();

// The ISA the kernel layer is currently dispatching to.  On first use this
// reads PARO_ISA (throwing ConfigError for an unknown or unavailable value —
// never silently falling back) or, when unset, picks the best available ISA.
Isa active_isa();

// Test/bench hook: pin dispatch to `isa` for the rest of the process (or
// until the next call).  Throws ConfigError when `isa` is unavailable.
void force_isa(Isa isa);

// Test hook: drop any forced/selected backend so the next kernel call
// re-reads PARO_ISA and re-runs auto-selection.
void reset_isa();

}  // namespace paro::kernels
