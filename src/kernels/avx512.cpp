// AVX-512 backend (F+BW+VL).  Builds with -mavx512f/bw/vl/dq; reached only
// after the cpuid check.  Inherits the AVX2 implementations and overrides
// where doubling the vector width pays: the order-insensitive / purely
// elementwise float kernels.  The int8 dot kernels stay on the AVX2 code —
// at attention head dims (d <= 64) a 512-bit accumulator leaves only two
// madd steps before the (expensive) cross-512 reduce, and measured slower
// than the 256-bit panel kernel.  The fixed-order float kernels
// (nt_dot_f32_row, fake_quant) also stay on AVX2 — their accumulation
// contract is 4 double lanes regardless of ISA.
#include <immintrin.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "kernels/backend.hpp"

namespace paro::kernels::detail {
namespace {

void attnv_accum_avx512(const float* w, std::size_t rows, const float* v,
                        std::size_t v_stride, std::size_t dv, float* out) {
  for (std::size_t r = 0; r < rows; ++r) {
    const float wr = w[r];
    if (wr == 0.0F) continue;
    const float* vrow = v + r * v_stride;
    const __m512 vw = _mm512_set1_ps(wr);
    std::size_t c = 0;
    for (; c + 16 <= dv; c += 16) {
      const __m512 prod = _mm512_mul_ps(vw, _mm512_loadu_ps(vrow + c));
      _mm512_storeu_ps(out + c, _mm512_add_ps(_mm512_loadu_ps(out + c), prod));
    }
    for (; c < dv; ++c) out[c] += wr * vrow[c];
  }
}

float row_max_scaled_avx512(const float* x, std::size_t n, float scale,
                            float init) {
  float m = init;
  const __m512 vs = _mm512_set1_ps(scale);
  __m512 vm = _mm512_set1_ps(init);
  std::size_t c = 0;
  for (; c + 16 <= n; c += 16) {
    vm = _mm512_max_ps(vm, _mm512_mul_ps(_mm512_loadu_ps(x + c), vs));
  }
  if (c != 0) m = std::max(m, _mm512_reduce_max_ps(vm));
  for (; c < n; ++c) m = std::max(m, x[c] * scale);
  return m;
}

float row_max_scaled_skipinf_avx512(const float* x, std::size_t n, float scale,
                                    float init) {
  constexpr float kNegInf = -std::numeric_limits<float>::infinity();
  float m = init;
  const __m512 vs = _mm512_set1_ps(scale);
  const __m512 vneginf = _mm512_set1_ps(kNegInf);
  __m512 vm = _mm512_set1_ps(init);
  std::size_t c = 0;
  for (; c + 16 <= n; c += 16) {
    const __m512 xv = _mm512_loadu_ps(x + c);
    const __mmask16 keep = _mm512_cmp_ps_mask(xv, vneginf, _CMP_NEQ_UQ);
    vm = _mm512_max_ps(
        vm, _mm512_mask_blend_ps(keep, vneginf, _mm512_mul_ps(xv, vs)));
  }
  if (c != 0) m = std::max(m, _mm512_reduce_max_ps(vm));
  for (; c < n; ++c) {
    if (x[c] != kNegInf) m = std::max(m, x[c] * scale);
  }
  return m;
}

void scale_inplace_avx512(float* x, std::size_t n, float s) {
  const __m512 vs = _mm512_set1_ps(s);
  std::size_t c = 0;
  for (; c + 16 <= n; c += 16) {
    _mm512_storeu_ps(x + c, _mm512_mul_ps(_mm512_loadu_ps(x + c), vs));
  }
  for (; c < n; ++c) x[c] *= s;
}

void minmax_f32_avx512(const float* x, std::size_t n, float* lo, float* hi) {
  float l = x[0];
  float h = x[0];
  __m512 vlo = _mm512_set1_ps(x[0]);
  __m512 vhi = vlo;
  std::size_t c = 0;
  for (; c + 16 <= n; c += 16) {
    const __m512 xv = _mm512_loadu_ps(x + c);
    vlo = _mm512_min_ps(vlo, xv);
    vhi = _mm512_max_ps(vhi, xv);
  }
  if (c != 0) {
    l = std::min(l, _mm512_reduce_min_ps(vlo));
    h = std::max(h, _mm512_reduce_max_ps(vhi));
  }
  for (; c < n; ++c) {
    l = std::min(l, x[c]);
    h = std::max(h, x[c]);
  }
  *lo = l;
  *hi = h;
}

float absmax_f32_avx512(const float* x, std::size_t n) {
  __m512 vm = _mm512_setzero_ps();
  std::size_t c = 0;
  for (; c + 16 <= n; c += 16) {
    vm = _mm512_max_ps(vm, _mm512_abs_ps(_mm512_loadu_ps(x + c)));
  }
  float m = c != 0 ? std::max(0.0F, _mm512_reduce_max_ps(vm)) : 0.0F;
  for (; c < n; ++c) m = std::max(m, std::fabs(x[c]));
  return m;
}

void dequant_i8_avx512(const std::int8_t* in, float* out, std::size_t n,
                       float scale) {
  const __m512 vs = _mm512_set1_ps(scale);
  std::size_t c = 0;
  for (; c + 16 <= n; c += 16) {
    const __m128i b =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + c));
    const __m512 vf = _mm512_cvtepi32_ps(_mm512_cvtepi8_epi32(b));
    _mm512_storeu_ps(out + c, _mm512_mul_ps(vs, vf));
  }
  for (; c < n; ++c) out[c] = scale * static_cast<float>(in[c]);
}

void dequant_i32_scaled_avx512(const std::int32_t* acc, std::size_t n,
                               float row_scale, const float* col_scales,
                               float* out) {
  const __m512 vr = _mm512_set1_ps(row_scale);
  std::size_t c = 0;
  for (; c + 16 <= n; c += 16) {
    const __m512 vf = _mm512_cvtepi32_ps(_mm512_loadu_si512(acc + c));
    const __m512 scaled = _mm512_mul_ps(vf, vr);
    _mm512_storeu_ps(out + c,
                     _mm512_mul_ps(scaled, _mm512_loadu_ps(col_scales + c)));
  }
  for (; c < n; ++c) {
    out[c] = (static_cast<float>(acc[c]) * row_scale) * col_scales[c];
  }
}

}  // namespace

const Backend* avx512_backend() {
  static const Backend backend = [] {
    Backend b = *avx2_backend();  // inherit int8 dots, LDZ, fake-quant, nt_dot
    b.isa = Isa::kAvx512;
    b.name = "avx512";
    b.attnv_accum = &attnv_accum_avx512;
    b.row_max_scaled = &row_max_scaled_avx512;
    b.row_max_scaled_skipinf = &row_max_scaled_skipinf_avx512;
    b.scale_inplace = &scale_inplace_avx512;
    b.minmax_f32 = &minmax_f32_avx512;
    b.absmax_f32 = &absmax_f32_avx512;
    b.dequant_i8 = &dequant_i8_avx512;
    b.dequant_i32_scaled = &dequant_i32_scaled_avx512;
    return b;
  }();
  return &backend;
}

}  // namespace paro::kernels::detail
