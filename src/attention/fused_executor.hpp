// Fused block-streaming attention executor (the tiled execution core).
//
// PARO's hardware premise is that the attention map never touches DRAM:
// QKᵀ logits stream out of the PE array one destination tile at a time,
// softmax runs online per Q-stripe, the map is quantized tile-by-tile at
// the dispatcher's bitwidth, and 0-bit tiles are bypassed outright.  The
// materialized pipeline (attention/pipeline.cpp) models the *values* of
// that flow but not its *shape*: it allocates full N×N logits, softmax,
// and quantized-map buffers, which is why quality experiments cannot reach
// CogVideoX token counts.
//
// This executor runs the same arithmetic in streaming form: per Q-stripe
// (one block-row of the map), a two-pass online softmax over K-tiles —
// pass one builds the stripe's logits tile-by-tile (with per-tile LDZ
// truncation under OBA) and tracks row maxima, pass two exponentiates,
// normalizes, fake-quantizes each tile at its own bitwidth, and
// accumulates AttnV — all inside an O(rows_per_stripe · N + tile²)
// scratch.  0-bit tiles are skipped without computing them.  The working
// set is O(N·d + N·block), never O(N²).
//
// Numerics contract: outputs are BITWISE IDENTICAL to the materialized
// path for every QuantAttentionConfig.  Every per-element operation —
// int32/int64 MAC order, the float(acc)·s_q·s_k rescale, the
// float-multiply-then-double-cast exp argument, the ascending-j double
// softmax sum, the tile-gather order into calibrate_minmax, and the
// ascending-k float AttnV accumulation with matmul's zero-skip — is
// replicated from the materialized kernels.  Tests assert bit equality,
// not tolerance.
#pragma once

#include "attention/pipeline.hpp"
#include "tensor/matrix.hpp"

namespace paro {

/// Run one head through the fused block-streaming engine.  Drop-in
/// replacement for the materialized quantized_attention: same inputs, same
/// output/avg_map_bits, but `map_reordered` stays empty (the map is never
/// materialized) and `exec` reports what the streaming engine actually did
/// (live/skipped tiles, peak working-set bytes).
///
/// Callers normally go through quantized_attention() with
/// `config.executor == AttnExecutor::kStreamed` (the default) instead of
/// calling this directly.
QuantAttentionResult fused_quantized_attention(
    const MatF& q, const MatF& k, const MatF& v, const HeadCalibration& calib,
    const QuantAttentionConfig& config);

}  // namespace paro
