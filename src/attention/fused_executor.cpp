#include "attention/fused_executor.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "attention/reference.hpp"
#include "attention/session.hpp"
#include "common/arena.hpp"
#include "common/fault.hpp"
#include "common/numeric_guard.hpp"
#include "common/thread_pool.hpp"
#include "kernels/kernels.hpp"
#include "kernels/pack.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/ring_log.hpp"
#include "obs/working_set.hpp"
#include "quant/granularity.hpp"
#include "quant/tile_visitor.hpp"

namespace paro {

namespace {

constexpr float kNegInf = -std::numeric_limits<float>::infinity();

template <typename T>
std::size_t matrix_bytes(const Matrix<T>& m) {
  return m.size() * sizeof(T);
}

std::size_t quantized_bytes(const QuantizedI8& q) {
  return matrix_bytes(q.codes) + q.row_params.size() * sizeof(QuantParams);
}

/// Contiguous per-row scale vector (kernel epilogue operand), refilled
/// into retained storage.
void row_scales_into(const QuantizedI8& q, std::vector<float>& s) {
  s.resize(q.row_params.size());
  for (std::size_t i = 0; i < s.size(); ++i) s[i] = q.row_params[i].scale;
}

/// Raw-pointer views of one stripe's scratch.  The buffers come from
/// per-call vectors (allocating path) or from a worker thread's arena
/// shard (session path); the stripe body is identical either way, which is
/// what keeps the two paths bitwise interchangeable.
struct StripeScratch {
  float* buf = nullptr;          ///< [rows_here, n] logits→exp→map values
  float* rowmax = nullptr;       ///< [rows_here] running row maxima
  float* rowinv = nullptr;       ///< [rows_here] 1/rowsum
  std::uint8_t* qk_skip = nullptr;   ///< [bcols] dispatcher-bypassed tiles
  std::uint8_t* map_zero = nullptr;  ///< [bcols] 0-bit map tiles
  float* tile_scratch = nullptr;     ///< capacity rows_here * tile_side
  std::int8_t* ktile = nullptr;      ///< decoded K rows (OBA), may be null
  std::size_t ktile_len = 0;
};

/// Shared engine body.  `session == nullptr` is the classic allocating
/// path (per-stripe vectors, registry-lookup metrics); a non-null session
/// serves stripe scratch from its arena shards and writes metrics through
/// pre-resolved handles.  `ws` holds every operand either way — the
/// allocating wrapper passes a call-local workspace.  The canonical-order
/// output lands in ws.out; `exec_out` / `avg_bits_out` receive the
/// executor accounting when non-null.
void fused_attention_impl(const MatF& q, const MatF& k, const MatF& v,
                          const HeadCalibration& calib,
                          const QuantAttentionConfig& config,
                          SessionContext* session, HeadWorkspace& ws,
                          AttnExecStats* exec_out, double* avg_bits_out) {
  PARO_SPAN("attn.fused");
  const auto call_start = std::chrono::steady_clock::now();
  PARO_CHECK_MSG(q.rows() == k.rows() && k.rows() == v.rows(),
                 "token count mismatch");
  PARO_CHECK_MSG(q.cols() == k.cols(), "q/k head_dim mismatch");
  const std::size_t n = q.rows();
  const std::size_t d = q.cols();
  const std::size_t dv = v.cols();
  const float scale = attention_scale(q, config.scale);

  obs::WorkingSetMeter meter;

  calib.plan.apply_rows_into(q, ws.qr);
  calib.plan.apply_rows_into(k, ws.kr);
  calib.plan.apply_rows_into(v, ws.vr);
  meter.acquire(matrix_bytes(ws.qr) + matrix_bytes(ws.kr) +
                matrix_bytes(ws.vr));

  const BitTable* table =
      calib.bit_table.has_value() ? &*calib.bit_table : nullptr;
  const bool mixed = config.map_scheme == AttnMapScheme::kBlockwiseMixed;
  PARO_CHECK_MSG(!mixed || table != nullptr,
                 "mixed scheme requires a calibrated BitTable");
  // LDZ truncation / 0-bit QKᵀ bypass is active exactly when the
  // materialized path takes its OBA branch.
  const bool oba_active =
      config.quantize_qkv && config.output_bitwidth_aware && table != nullptr;
  const bool packed_compute = config.packed_subbyte_compute;
  const bool per_row_quant = config.map_scheme == AttnMapScheme::kPerRow;
  const bool block_quant =
      config.map_scheme == AttnMapScheme::kBlockwise || mixed;

  // OBA plane set, decided before K is quantized so the quantizer knows
  // whether a full widened int8 K matrix is ever read downstream.
  ws.plane_bits.clear();
  if (oba_active && n > 0) {
    for (const int b : kBitChoices) {
      if (b > 0 && b < 8 && table->tiles_at(b) > 0) ws.plane_bits.push_back(b);
    }
  }
  // Packed K residency: when every live tile is sub-byte (no 8-bit tiles)
  // the packed planes are the only K representation the stripes read, so K
  // is quantized and packed in row chunks through a chunk-sized staging
  // buffer — the full widened copy never exists and steady-state KV bytes
  // shrink with the average bitwidth.
  const bool packed_resident =
      oba_active && n > 0 && table->tiles_at(8) == 0 && !ws.plane_bits.empty();

  // INT8 per-token Q/K and per-dimension V, shared by every stripe.
  if (config.quantize_qkv) {
    quantize_rows_i8_into(ws.qr, ws.q8, 8);
    fake_quant_per_column_into(ws.vr, 8, /*symmetric=*/true, ws.v_quant,
                               ws.v_tscratch, ws.v_params);
    row_scales_into(ws.q8, ws.q_scales);
    if (packed_resident) {
      // Chunk size trades staging-buffer footprint against per-chunk
      // fan-out overhead; rows are quantized identically regardless of
      // which chunk they land in, so outputs match the monolithic path.
      constexpr std::size_t kPackChunk = 64;
      ws.packed_k.begin_build(n, d, ws.plane_bits);
      ws.k_scales.resize(n);
      for (std::size_t r0 = 0; r0 < n; r0 += kPackChunk) {
        const std::size_t r1 = std::min(r0 + kPackChunk, n);
        quantize_rows_i8_range_into(ws.kr, r0, r1, ws.k8, 8);
        for (std::size_t r = r0; r < r1; ++r) {
          ws.k_scales[r] = ws.k8.row_params[r - r0].scale;
        }
        ws.packed_k.pack_rows(ws.k8.codes.row(0).data(), r0, r1);
      }
    } else {
      quantize_rows_i8_into(ws.kr, ws.k8, 8);
      row_scales_into(ws.k8, ws.k_scales);
      // OBA with 8-bit tiles present: pack the LDZ-truncated planes from
      // the full widened codes (which the 8-bit tiles still read).  The
      // workspace keeps the plane storage; build() refills it in place
      // when the geometry is unchanged.
      if (oba_active && n > 0) {
        ws.packed_k.build(ws.k8.codes.row(0).data(), n, d, ws.plane_bits);
      }
    }
    meter.acquire(quantized_bytes(ws.q8) + quantized_bytes(ws.k8) +
                  matrix_bytes(ws.v_quant));
    if (oba_active && n > 0) meter.acquire(ws.packed_k.packed_bytes());
  }
  if (!(oba_active && n > 0) && !ws.packed_k.empty()) {
    // A retained workspace flipping away from OBA must drop its planes so
    // `empty()` gates the decode scratch like a fresh run.
    ws.packed_k.clear();
  }
  const MatF& v_used = config.quantize_qkv ? ws.v_quant : ws.vr;

  const BlockGrid grid(n, n, config.block);
  if (table != nullptr && (oba_active || mixed)) {
    PARO_CHECK_MSG(table->grid() == grid,
                   "BitTable grid does not match QKᵀ shape / block");
  }
  const TileVisitor visitor =
      table != nullptr ? TileVisitor(*table) : TileVisitor(grid, 8);

  // The decode-to-int8 scratch is only carved when some plane still takes
  // the decode path: packed compute covers the {2,4}-bit planes the bit
  // allocator emits, so with it on the scratch usually vanishes outright.
  bool needs_decode_scratch = false;
  for (const int b : ws.plane_bits) {
    if (!packed_compute || (b != 2 && b != 4)) needs_decode_scratch = true;
  }

  ws.out_r.resize(n, dv);
  std::fill(ws.out_r.flat().begin(), ws.out_r.flat().end(), 0.0F);
  meter.acquire(matrix_bytes(ws.out_r));

  const std::size_t stripes = grid.block_rows();
  const std::size_t bcols = grid.block_cols();
  ws.stripe_stats.assign(stripes, StripeStats{});
  std::vector<StripeStats>& stats = ws.stripe_stats;

  // The stripe body, independent of where its scratch lives.
  auto run_stripe = [&](std::size_t br, std::size_t r0, std::size_t rows_here,
                        std::size_t tile_side, const StripeScratch& sc) {
    float* const buf = sc.buf;
    const std::size_t buf_len = rows_here * n;

    StripeStats& st = stats[br];
    st.local_bytes = buf_len * sizeof(float) + rows_here * sizeof(float) +
                     rows_here * sizeof(float) + 2 * bcols +
                     rows_here * tile_side * sizeof(float) + sc.ktile_len;

    // --- pass 1: per-tile QKᵀ logits + running row maxima ------------
    visitor.for_each_tile_in_row(br, [&](const TileRef& t) {
      const int map_bits_tile = mixed ? t.bits : config.map_bits;
      const bool skip_qk = oba_active && t.bits == 0;
      const bool zero_map = block_quant && map_bits_tile == 0;
      if (zero_map) sc.map_zero[t.bc] = 1;
      // Stats: a tile is "skipped" when the dispatcher bypasses its
      // AttnV work — 0 QKᵀ bits under OBA, or a 0-bit map tile.
      if (skip_qk || zero_map) {
        ++st.tiles_skipped;
      } else {
        ++st.tiles_live;
      }
      ++st.per_bits[static_cast<std::size_t>(
          bit_choice_index(table != nullptr ? t.bits : 8))];
      if (skip_qk) {
        sc.qk_skip[t.bc] = 1;
        return;  // dispatcher bypass: no logits, no exp, no AttnV
      }
      ++st.qk_tiles;

      const auto e = t.extent;
      if (config.quantize_qkv) {
        const std::size_t krows = e.c1 - e.c0;
        const auto bi = static_cast<std::size_t>(
            bit_choice_index(table != nullptr ? t.bits : 8));
        if (oba_active && packed_compute && (t.bits == 4 || t.bits == 2)) {
          // True sub-byte compute: feed the packed plane rows straight to
          // the packed kernel, which unpacks in-register.  Exactly equal
          // to decode-then-int8-dot (LDZ identity + int32 associativity),
          // with no scratch write/read traffic.
          const kernels::PackedLdzK::PlaneView pv = ws.packed_k.plane(t.bits);
          auto* kernel = t.bits == 4 ? &kernels::qk_tile_i4p_scaled
                                     : &kernels::qk_tile_i2q_scaled;
          kernel(ws.q8.codes.row(e.r0).data(), d, e.r1 - e.r0,
                 pv.mag + e.c0 * pv.mag_stride, pv.mag_stride,
                 pv.ss + e.c0 * pv.ss_stride, pv.ss_stride, krows, d,
                 ws.q_scales.data() + e.r0, ws.k_scales.data() + e.c0,
                 buf + (e.r0 - r0) * n + e.c0, n);
          st.qk_calls_bits[bi] += 1;
          st.qk_bytes_bits[bi] += krows * (pv.mag_stride + pv.ss_stride);
        } else {
          const std::int8_t* ktp = ws.k8.codes.row(e.c0).data();
          std::size_t kbytes = krows * d;
          if (oba_active && t.bits < 8) {
            // LDZ keeps `bits` significant magnitude bits of every K
            // operand — applied to every live tile, like the PE array.
            // Decode this tile's rows from the packed plane; the int8 dot
            // over decoded values equals the per-product LDZ sum exactly.
            ws.packed_k.decode_rows(t.bits, e.c0, e.c1, sc.ktile);
            ktp = sc.ktile;
            // Bytes touched = packed stream read + scratch write + read.
            kbytes = krows * (ws.packed_k.packed_row_bytes(t.bits) + 2 * d);
          }
          kernels::qk_tile_i8_scaled(
              ws.q8.codes.row(e.r0).data(), d, e.r1 - e.r0, ktp, d, krows, d,
              ws.q_scales.data() + e.r0, ws.k_scales.data() + e.c0,
              buf + (e.r0 - r0) * n + e.c0, n);
          st.qk_calls_bits[bi] += 1;
          st.qk_bytes_bits[bi] += kbytes;
        }
      } else {
        // FP path: 4-lane double dot products, like matmul_nt.
        for (std::size_t i = e.r0; i < e.r1; ++i) {
          kernels::nt_dot_f32_row(ws.qr.row(i).data(), ws.kr.row(e.c0).data(),
                                  d, e.c1 - e.c0, d,
                                  buf + (i - r0) * n + e.c0);
        }
      }
      // float max is order-insensitive, so tile-by-tile updates land on
      // the same value as the materialized whole-row scan.
      for (std::size_t i = e.r0; i < e.r1; ++i) {
        const float* brow = buf + (i - r0) * n;
        sc.rowmax[i - r0] = kernels::row_max_scaled(
            brow + e.c0, e.c1 - e.c0, scale, sc.rowmax[i - r0]);
      }
    });

    // Fault site: numerical blow-up inside this stripe's QKᵀ.  Fires
    // per stripe, so a spec's skip/count window can target one stripe
    // and prove damage stays contained to it.
    {
      std::uint64_t seed = 0;
      if (PARO_FAULT_FIRE("attn.logits.nonfinite", &seed) && buf_len > 0) {
        buf[seed % buf_len] = std::numeric_limits<float>::quiet_NaN();
      }
    }

    // --- pass 2: online softmax (exp in ascending j, then normalize) --
    bool stripe_has_dead = false;
    for (std::size_t i = 0; i < rows_here; ++i) {
      float* brow = buf + i * n;
      if (sc.rowmax[i] == kNegInf) {
        // Every tile of this row was bypassed; the materialized softmax
        // degenerates to a uniform row.  Replicate it so the (equally
        // degenerate) map-quant and AttnV see identical values.
        stripe_has_dead = true;
        const float u = 1.0F / static_cast<float>(n);
        for (std::size_t j = 0; j < n; ++j) brow[j] = u;
        continue;
      }
      double sum = 0.0;
      for (std::size_t bc = 0; bc < bcols; ++bc) {
        if (sc.qk_skip[bc]) continue;  // buf stays 0, matching dst[j] = 0
        const auto e = grid.extent(br, bc);
        // Segments chain the same serial double sum as the whole-row
        // materialized loop (exp_sum_segment extends `sum` in place).
        sum = kernels::exp_sum_segment(brow + e.c0, e.c1 - e.c0, scale,
                                       sc.rowmax[i], sum);
      }
      const float inv = sum > 0.0 ? static_cast<float>(1.0 / sum) : 0.0F;
      sc.rowinv[i] = inv;
      // Full-row sweep including bypassed zeros (0·inv = 0) — exactly
      // the materialized `v *= inv` loop.
      kernels::scale_inplace(brow, n, inv);
    }

    // Map-boundary guard: post-softmax values are probabilities, so a
    // non-finite entry here is numerical failure whatever its origin.
    // Clean stripes pay one read-only scan — no copy, no mutation — so
    // guarded and unguarded runs stay bitwise identical.
    {
      const std::size_t bad =
          count_nonfinite(std::span<const float>(buf, buf_len));
      if (bad > 0) {
        obs::MetricsRegistry::global()
            .counter("numeric.nonfinite", {{"stage", "map"}})
            .add(static_cast<double>(bad));
        guard_nonfinite(std::span<float>(buf, buf_len), config.nonfinite,
                        "attention map (stripe " + std::to_string(br) + ")");
      }
    }

    // --- pass 3: per-tile map fake-quant at the tile's bitwidth -------
    if (per_row_quant) {
      for (std::size_t i = 0; i < rows_here; ++i) {
        fake_quant_group(std::span<float>(buf + i * n, n), config.map_bits,
                         /*symmetric=*/false);
      }
    } else if (block_quant) {
      visitor.for_each_tile_in_row(br, [&](const TileRef& t) {
        const auto e = t.extent;
        if (sc.map_zero[t.bc]) {
          // 0-bit map tile: fake-quant semantics are "zero the tile".
          // (Needed when exp mass was written — the non-OBA mixed case.)
          for (std::size_t i = e.r0; i < e.r1; ++i) {
            float* brow = buf + (i - r0) * n;
            for (std::size_t j = e.c0; j < e.c1; ++j) brow[j] = 0.0F;
          }
          return;
        }
        if (sc.qk_skip[t.bc] && !stripe_has_dead) {
          return;  // all-zero region; fake-quantizing zeros is identity
        }
        // Gather the tile into contiguous scratch (same element order as
        // the vector-insert idiom it replaces), fake-quant, scatter back.
        std::size_t ts_len = 0;
        for (std::size_t i = e.r0; i < e.r1; ++i) {
          const float* brow = buf + (i - r0) * n;
          std::copy(brow + e.c0, brow + e.c1, sc.tile_scratch + ts_len);
          ts_len += e.c1 - e.c0;
        }
        fake_quant_group(std::span<float>(sc.tile_scratch, ts_len),
                         mixed ? t.bits : config.map_bits,
                         /*symmetric=*/false);
        std::size_t idx = 0;
        for (std::size_t i = e.r0; i < e.r1; ++i) {
          float* brow = buf + (i - r0) * n;
          for (std::size_t j = e.c0; j < e.c1; ++j) {
            brow[j] = sc.tile_scratch[idx++];
          }
        }
      });
    }

    // --- pass 4: AttnV accumulation, tile-by-tile, 0-bit tiles skipped
    for (std::size_t bc = 0; bc < bcols; ++bc) {
      if (sc.map_zero[bc]) continue;                     // zeroed tile
      if (sc.qk_skip[bc] && !stripe_has_dead) continue;  // all-zero tile
      const auto e = grid.extent(br, bc);
      // attnv_accum skips zero weights — matmul's zero-skip, bit-for-bit.
      for (std::size_t i = e.r0; i < e.r1; ++i) {
        const float* arow = buf + (i - r0) * n;
        kernels::attnv_accum(arow + e.c0, e.c1 - e.c0,
                             v_used.row(e.c0).data(), v_used.cols(), dv,
                             ws.out_r.row(i).data());
      }
    }
  };

  // One stripe = one block-row of the map.  Stripes write disjoint rows of
  // out_r and their own stats slot, so grain-1 fan-out is race-free and
  // the chunk layout (hence everything) is thread-count-independent.
  // Which arena shard serves a stripe is scheduling-dependent, but spans
  // are fully written before they are read and nothing depends on their
  // addresses, so outputs stay deterministic (common/arena.hpp).
  global_pool().for_chunks(0, stripes, 1, [&](std::size_t s0, std::size_t s1,
                                              std::size_t /*chunk*/) {
    for (std::size_t br = s0; br < s1; ++br) {
      const auto stripe_ext = grid.extent(br, 0);
      const std::size_t r0 = stripe_ext.r0;
      const std::size_t rows_here = stripe_ext.rows();
      // Flight-recorder breadcrumbs: a post-mortem of a wedged or slow
      // run shows which stripe each thread was in and how big it was.
      PARO_FR("attn.stripe.begin", br, rows_here);
      const std::size_t tile_side = std::min(config.block, n);
      const std::size_t ktile_len =
          needs_decode_scratch && !ws.packed_k.empty() ? tile_side * d : 0;

      StripeScratch sc;
      sc.ktile_len = ktile_len;
      if (session != nullptr) {
        // Arena-backed scratch: bump-carved from this worker's shard,
        // reset per stripe (offsets rewind, slabs stay), explicitly
        // re-initialized exactly like the vector constructors below.
        Arena& arena = session->scratch().local();
        arena.reset();
        sc.buf = arena.alloc_span<float>(rows_here * n, /*zero=*/true).data();
        auto rowmax = arena.alloc_span<float>(rows_here);
        std::fill(rowmax.begin(), rowmax.end(), kNegInf);
        sc.rowmax = rowmax.data();
        sc.rowinv = arena.alloc_span<float>(rows_here, /*zero=*/true).data();
        sc.qk_skip =
            arena.alloc_span<std::uint8_t>(bcols, /*zero=*/true).data();
        sc.map_zero =
            arena.alloc_span<std::uint8_t>(bcols, /*zero=*/true).data();
        sc.tile_scratch =
            arena.alloc_span<float>(rows_here * tile_side).data();
        if (ktile_len > 0) {
          sc.ktile = arena.alloc_span<std::int8_t>(ktile_len).data();
        }
        run_stripe(br, r0, rows_here, tile_side, sc);
      } else {
        // Stripe scratch: `buf` holds the stripe's logits, then exp
        // values, then the normalized (and fake-quantized) map values in
        // place.
        std::vector<float> buf(rows_here * n, 0.0F);
        std::vector<float> rowmax(rows_here, kNegInf);
        std::vector<float> rowinv(rows_here, 0.0F);
        std::vector<std::uint8_t> qk_skip(bcols, 0);
        std::vector<std::uint8_t> map_zero(bcols, 0);
        std::vector<float> tile_scratch(rows_here * tile_side);
        // Decoded K rows for one sub-8-bit OBA tile (value domain int8).
        std::vector<std::int8_t> ktile(ktile_len);
        sc.buf = buf.data();
        sc.rowmax = rowmax.data();
        sc.rowinv = rowinv.data();
        sc.qk_skip = qk_skip.data();
        sc.map_zero = map_zero.data();
        sc.tile_scratch = tile_scratch.data();
        sc.ktile = ktile.empty() ? nullptr : ktile.data();
        run_stripe(br, r0, rows_here, tile_side, sc);
      }
      PARO_FR("attn.stripe.end", br,
              static_cast<std::uint64_t>(stats[br].tiles_live));
    }
  });

  // Fold per-stripe tallies in stripe order; the peak is the shared
  // buffers plus the largest single stripe's scratch (one logical stream —
  // see obs/working_set.hpp for why the parallel copies don't count).
  AttnExecStats exec;
  exec.stripes = stripes;
  exec.tiles_total = grid.num_blocks();
  std::size_t max_local = 0;
  for (const StripeStats& st : stats) {
    exec.tiles_live += st.tiles_live;
    exec.tiles_skipped += st.tiles_skipped;
    exec.qk_tiles_computed += st.qk_tiles;
    for (int b = 0; b < kNumBitChoices; ++b) {
      exec.tiles_per_bits[static_cast<std::size_t>(b)] +=
          st.per_bits[static_cast<std::size_t>(b)];
      exec.qk_calls_per_bits[static_cast<std::size_t>(b)] +=
          st.qk_calls_bits[static_cast<std::size_t>(b)];
      exec.qk_bytes_per_bits[static_cast<std::size_t>(b)] +=
          st.qk_bytes_bits[static_cast<std::size_t>(b)];
    }
    max_local = std::max(max_local, st.local_bytes);
  }
  meter.fold_local_peak(max_local);
  // K residency split: packed planes vs widened int8 codes still held by
  // the workspace at the end of the pass.  Under packed residency the
  // widened side is just the chunk staging buffer.
  exec.kv_packed_bytes = ws.packed_k.packed_bytes();
  exec.kv_widened_bytes = config.quantize_qkv ? matrix_bytes(ws.k8.codes) : 0;

  double avg_map_bits = 16.0;
  switch (config.map_scheme) {
    case AttnMapScheme::kNone:
      avg_map_bits = 16.0;
      break;
    case AttnMapScheme::kPerRow:
    case AttnMapScheme::kBlockwise:
      avg_map_bits = config.map_bits;
      break;
    case AttnMapScheme::kBlockwiseMixed:
      avg_map_bits = table->average_bitwidth();
      break;
  }
  meter.acquire(n * dv * sizeof(float));  // canonical-order output
  calib.plan.invert_rows_into(ws.out_r, ws.out);
  exec.peak_bytes = meter.peak();

  // Wall-clock latency of this head's full attention call, feeding the
  // p50/p95/p99 export (range 0–50 ms, 250 µs bins).
  const double call_us = std::chrono::duration<double, std::micro>(
                             std::chrono::steady_clock::now() - call_start)
                             .count();

  if (session != nullptr) {
    // Steady-state emission path: every series was resolved when the
    // session was built, so no (string, Labels) keys are constructed here.
    const SessionMetricHandles& h = session->metrics();
    h.tiles_skipped->add(static_cast<double>(exec.tiles_skipped));
    h.tiles_live->add(static_cast<double>(exec.tiles_live));
    for (int b = 0; b < kNumBitChoices; ++b) {
      const auto bi = static_cast<std::size_t>(b);
      const auto count = exec.tiles_per_bits[bi];
      if (count != 0) h.tiles_bits[bi]->add(static_cast<double>(count));
      if (exec.qk_calls_per_bits[bi] != 0) {
        h.qk_calls_bits[bi]->add(
            static_cast<double>(exec.qk_calls_per_bits[bi]));
        h.qk_bytes_bits[bi]->add(
            static_cast<double>(exec.qk_bytes_per_bits[bi]));
      }
    }
    h.fused_latency->observe(call_us);
    h.peak_ws_streamed->set_max(static_cast<double>(exec.peak_bytes));
    h.kv_packed_bytes->set_max(static_cast<double>(exec.kv_packed_bytes));
    h.kv_widened_bytes->set_max(static_cast<double>(exec.kv_widened_bytes));
    // kernels::publish_kernel_metrics() builds label vectors; the session
    // flushes it once per step in begin_step() instead of per call.
  } else {
    auto& reg = obs::MetricsRegistry::global();
    reg.counter("attn.tiles_skipped")
        .add(static_cast<double>(exec.tiles_skipped));
    reg.counter("attn.tiles_live").add(static_cast<double>(exec.tiles_live));
    for (int b = 0; b < kNumBitChoices; ++b) {
      const auto bi = static_cast<std::size_t>(b);
      const auto count = exec.tiles_per_bits[bi];
      if (count != 0) {
        reg.counter("attn.tiles_bits",
                    {{"bits", std::to_string(kBitChoices[b])}})
            .add(static_cast<double>(count));
      }
      if (exec.qk_calls_per_bits[bi] != 0) {
        reg.counter("attn.qk_kernel_calls",
                    {{"bits", std::to_string(kBitChoices[b])}})
            .add(static_cast<double>(exec.qk_calls_per_bits[bi]));
        reg.counter("attn.qk_bytes",
                    {{"bits", std::to_string(kBitChoices[b])}})
            .add(static_cast<double>(exec.qk_bytes_per_bits[bi]));
      }
    }
    reg.histogram("attn.fused.latency_us", 0.0, 50000.0, 200).observe(call_us);
    obs::publish_peak_working_set("streamed", exec.peak_bytes);
    reg.gauge("mem.kv_packed_bytes")
        .set_max(static_cast<double>(exec.kv_packed_bytes));
    reg.gauge("mem.kv_widened_bytes")
        .set_max(static_cast<double>(exec.kv_widened_bytes));
    kernels::publish_kernel_metrics();
  }

  if (exec_out != nullptr) *exec_out = exec;
  if (avg_bits_out != nullptr) *avg_bits_out = avg_map_bits;
}

}  // namespace

QuantAttentionResult fused_quantized_attention(
    const MatF& q, const MatF& k, const MatF& v, const HeadCalibration& calib,
    const QuantAttentionConfig& config) {
  // Call-local workspace: allocates fresh buffers exactly once, like the
  // pre-workspace implementation, and frees them on return.
  HeadWorkspace ws;
  QuantAttentionResult result;
  fused_attention_impl(q, k, v, calib, config, /*session=*/nullptr, ws,
                       &result.exec, &result.avg_map_bits);
  result.output = std::move(ws.out);
  return result;
}

MatF& fused_quantized_attention_session(const MatF& q, const MatF& k,
                                        const MatF& v,
                                        const HeadCalibration& calib,
                                        const QuantAttentionConfig& config,
                                        SessionContext& session,
                                        std::size_t layer, std::size_t head,
                                        AttnExecStats* stats_out) {
  HeadWorkspace& ws = session.workspace(layer, head);
  const std::uint32_t ccrc = config_fingerprint(config);
  const std::uint32_t cfp = calib_fingerprint(calib);
  const bool hit = ws.valid && ws.n == q.rows() && ws.d == q.cols() &&
                   ws.dv == v.cols() && ws.config_crc == ccrc &&
                   ws.calib_fingerprint == cfp;
  if (hit) {
    session.note_cache_hit();
  } else {
    session.note_cache_miss();
    ws.valid = true;
    ws.n = q.rows();
    ws.d = q.cols();
    ws.dv = v.cols();
    ws.config_crc = ccrc;
    ws.calib_fingerprint = cfp;
  }
  fused_attention_impl(q, k, v, calib, config, &session, ws, stats_out,
                       /*avg_bits_out=*/nullptr);
  return ws.out;
}

}  // namespace paro
