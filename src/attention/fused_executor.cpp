#include "attention/fused_executor.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <vector>

#include "attention/reference.hpp"
#include "common/fault.hpp"
#include "common/numeric_guard.hpp"
#include "common/thread_pool.hpp"
#include "kernels/kernels.hpp"
#include "kernels/pack.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/ring_log.hpp"
#include "obs/working_set.hpp"
#include "quant/granularity.hpp"
#include "quant/tile_visitor.hpp"

namespace paro {

namespace {

constexpr float kNegInf = -std::numeric_limits<float>::infinity();

template <typename T>
std::size_t matrix_bytes(const Matrix<T>& m) {
  return m.size() * sizeof(T);
}

std::size_t quantized_bytes(const QuantizedI8& q) {
  return matrix_bytes(q.codes) + q.row_params.size() * sizeof(QuantParams);
}

std::vector<float> row_scales(const QuantizedI8& q) {
  std::vector<float> s;
  s.reserve(q.row_params.size());
  for (const QuantParams& p : q.row_params) s.push_back(p.scale);
  return s;
}

/// Per-stripe tallies; each stripe fills its own slot, the coordinator
/// folds them in stripe order.
struct StripeStats {
  std::size_t tiles_live = 0;
  std::size_t tiles_skipped = 0;
  std::size_t qk_tiles = 0;
  std::array<std::uint64_t, kNumBitChoices> per_bits{};
  std::size_t local_bytes = 0;  ///< stripe scratch footprint
};

}  // namespace

QuantAttentionResult fused_quantized_attention(
    const MatF& q, const MatF& k, const MatF& v, const HeadCalibration& calib,
    const QuantAttentionConfig& config) {
  PARO_SPAN("attn.fused");
  const auto call_start = std::chrono::steady_clock::now();
  PARO_CHECK_MSG(q.rows() == k.rows() && k.rows() == v.rows(),
                 "token count mismatch");
  PARO_CHECK_MSG(q.cols() == k.cols(), "q/k head_dim mismatch");
  const std::size_t n = q.rows();
  const std::size_t d = q.cols();
  const std::size_t dv = v.cols();
  const float scale = attention_scale(q, config.scale);

  obs::WorkingSetMeter meter;

  const MatF qr = calib.plan.apply_rows(q);
  const MatF kr = calib.plan.apply_rows(k);
  const MatF vr = calib.plan.apply_rows(v);
  meter.acquire(matrix_bytes(qr) + matrix_bytes(kr) + matrix_bytes(vr));

  // INT8 per-token Q/K and per-dimension V, shared by every stripe.
  std::optional<QuantizedI8> q8;
  std::optional<QuantizedI8> k8;
  MatF v_quant;
  std::vector<float> q_scales;
  std::vector<float> k_scales;
  if (config.quantize_qkv) {
    q8 = quantize_rows_i8(qr, 8);
    k8 = quantize_rows_i8(kr, 8);
    v_quant = fake_quant_matrix(vr, Granularity::kPerColumn, 8,
                                /*symmetric=*/true);
    meter.acquire(quantized_bytes(*q8) + quantized_bytes(*k8) +
                  matrix_bytes(v_quant));
    q_scales = row_scales(*q8);
    k_scales = row_scales(*k8);
  }
  const MatF& v_used = config.quantize_qkv ? v_quant : vr;

  const BitTable* table =
      calib.bit_table.has_value() ? &*calib.bit_table : nullptr;
  const bool mixed = config.map_scheme == AttnMapScheme::kBlockwiseMixed;
  PARO_CHECK_MSG(!mixed || table != nullptr,
                 "mixed scheme requires a calibrated BitTable");
  // LDZ truncation / 0-bit QKᵀ bypass is active exactly when the
  // materialized path takes its OBA branch.
  const bool oba_active =
      config.quantize_qkv && config.output_bitwidth_aware && table != nullptr;
  const bool per_row_quant = config.map_scheme == AttnMapScheme::kPerRow;
  const bool block_quant =
      config.map_scheme == AttnMapScheme::kBlockwise || mixed;

  const BlockGrid grid(n, n, config.block);
  if (table != nullptr && (oba_active || mixed)) {
    PARO_CHECK_MSG(table->grid() == grid,
                   "BitTable grid does not match QKᵀ shape / block");
  }
  const TileVisitor visitor =
      table != nullptr ? TileVisitor(*table) : TileVisitor(grid, 8);

  // OBA: pack the LDZ-truncated K operands once per head (one plane per
  // sub-8 bitwidth the table actually uses).  Stripes decode a tile's rows
  // into scratch and run the ordinary int8 tile kernel — bit-exact vs the
  // per-product (mantissa * q) << shift formulation.
  kernels::PackedLdzK packed_k;
  if (oba_active && n > 0) {
    std::vector<int> plane_bits;
    for (const int b : kBitChoices) {
      if (b > 0 && b < 8 && table->tiles_at(b) > 0) plane_bits.push_back(b);
    }
    packed_k.build(k8->codes.row(0).data(), n, d, plane_bits);
    meter.acquire(packed_k.packed_bytes());
  }

  MatF out_r(n, dv, 0.0F);
  meter.acquire(matrix_bytes(out_r));

  const std::size_t stripes = grid.block_rows();
  const std::size_t bcols = grid.block_cols();
  std::vector<StripeStats> stats(stripes);

  // One stripe = one block-row of the map.  Stripes write disjoint rows of
  // out_r and their own stats slot, so grain-1 fan-out is race-free and
  // the chunk layout (hence everything) is thread-count-independent.
  global_pool().for_chunks(0, stripes, 1, [&](std::size_t s0, std::size_t s1,
                                              std::size_t /*chunk*/) {
    for (std::size_t br = s0; br < s1; ++br) {
      const auto stripe_ext = grid.extent(br, 0);
      const std::size_t r0 = stripe_ext.r0;
      const std::size_t rows_here = stripe_ext.rows();
      // Flight-recorder breadcrumbs: a post-mortem of a wedged or slow
      // run shows which stripe each thread was in and how big it was.
      PARO_FR("attn.stripe.begin", br, rows_here);
      const std::size_t tile_side = std::min(config.block, n);

      // Stripe scratch: `buf` holds the stripe's logits, then exp values,
      // then the normalized (and fake-quantized) map values in place.
      std::vector<float> buf(rows_here * n, 0.0F);
      std::vector<float> rowmax(rows_here, kNegInf);
      std::vector<float> rowinv(rows_here, 0.0F);
      std::vector<std::uint8_t> qk_skip(bcols, 0);
      std::vector<std::uint8_t> map_zero(bcols, 0);
      std::vector<float> tile_scratch;
      tile_scratch.reserve(rows_here * tile_side);
      // Decoded K rows for one sub-8-bit OBA tile (value domain int8).
      std::vector<std::int8_t> ktile;
      if (!packed_k.empty()) ktile.resize(tile_side * d);

      StripeStats& st = stats[br];
      st.local_bytes = buf.size() * sizeof(float) +
                       rowmax.size() * sizeof(float) +
                       rowinv.size() * sizeof(float) + 2 * bcols +
                       rows_here * tile_side * sizeof(float) + ktile.size();

      // --- pass 1: per-tile QKᵀ logits + running row maxima ------------
      visitor.for_each_tile_in_row(br, [&](const TileRef& t) {
        const int map_bits_tile = mixed ? t.bits : config.map_bits;
        const bool skip_qk = oba_active && t.bits == 0;
        const bool zero_map = block_quant && map_bits_tile == 0;
        if (zero_map) map_zero[t.bc] = 1;
        // Stats: a tile is "skipped" when the dispatcher bypasses its
        // AttnV work — 0 QKᵀ bits under OBA, or a 0-bit map tile.
        if (skip_qk || zero_map) {
          ++st.tiles_skipped;
        } else {
          ++st.tiles_live;
        }
        ++st.per_bits[static_cast<std::size_t>(
            bit_choice_index(table != nullptr ? t.bits : 8))];
        if (skip_qk) {
          qk_skip[t.bc] = 1;
          return;  // dispatcher bypass: no logits, no exp, no AttnV
        }
        ++st.qk_tiles;

        const auto e = t.extent;
        if (config.quantize_qkv) {
          const std::int8_t* ktp = k8->codes.row(e.c0).data();
          if (oba_active && t.bits < 8) {
            // LDZ keeps `bits` significant magnitude bits of every K
            // operand — applied to every live tile, like the PE array.
            // Decode this tile's rows from the packed plane; the int8 dot
            // over decoded values equals the per-product LDZ sum exactly.
            packed_k.decode_rows(t.bits, e.c0, e.c1, ktile.data());
            ktp = ktile.data();
          }
          kernels::qk_tile_i8_scaled(
              q8->codes.row(e.r0).data(), d, e.r1 - e.r0, ktp, d, e.c1 - e.c0,
              d, q_scales.data() + e.r0, k_scales.data() + e.c0,
              buf.data() + (e.r0 - r0) * n + e.c0, n);
        } else {
          // FP path: 4-lane double dot products, like matmul_nt.
          for (std::size_t i = e.r0; i < e.r1; ++i) {
            kernels::nt_dot_f32_row(qr.row(i).data(), kr.row(e.c0).data(), d,
                                    e.c1 - e.c0, d,
                                    buf.data() + (i - r0) * n + e.c0);
          }
        }
        // float max is order-insensitive, so tile-by-tile updates land on
        // the same value as the materialized whole-row scan.
        for (std::size_t i = e.r0; i < e.r1; ++i) {
          const float* brow = buf.data() + (i - r0) * n;
          rowmax[i - r0] = kernels::row_max_scaled(brow + e.c0, e.c1 - e.c0,
                                                   scale, rowmax[i - r0]);
        }
      });

      // Fault site: numerical blow-up inside this stripe's QKᵀ.  Fires
      // per stripe, so a spec's skip/count window can target one stripe
      // and prove damage stays contained to it.
      {
        std::uint64_t seed = 0;
        if (PARO_FAULT_FIRE("attn.logits.nonfinite", &seed) && !buf.empty()) {
          buf[seed % buf.size()] = std::numeric_limits<float>::quiet_NaN();
        }
      }

      // --- pass 2: online softmax (exp in ascending j, then normalize) --
      bool stripe_has_dead = false;
      for (std::size_t i = 0; i < rows_here; ++i) {
        float* brow = buf.data() + i * n;
        if (rowmax[i] == kNegInf) {
          // Every tile of this row was bypassed; the materialized softmax
          // degenerates to a uniform row.  Replicate it so the (equally
          // degenerate) map-quant and AttnV see identical values.
          stripe_has_dead = true;
          const float u = 1.0F / static_cast<float>(n);
          for (std::size_t j = 0; j < n; ++j) brow[j] = u;
          continue;
        }
        double sum = 0.0;
        for (std::size_t bc = 0; bc < bcols; ++bc) {
          if (qk_skip[bc]) continue;  // buf stays 0, matching dst[j] = 0
          const auto e = grid.extent(br, bc);
          // Segments chain the same serial double sum as the whole-row
          // materialized loop (exp_sum_segment extends `sum` in place).
          sum = kernels::exp_sum_segment(brow + e.c0, e.c1 - e.c0, scale,
                                         rowmax[i], sum);
        }
        const float inv = sum > 0.0 ? static_cast<float>(1.0 / sum) : 0.0F;
        rowinv[i] = inv;
        // Full-row sweep including bypassed zeros (0·inv = 0) — exactly
        // the materialized `v *= inv` loop.
        kernels::scale_inplace(brow, n, inv);
      }

      // Map-boundary guard: post-softmax values are probabilities, so a
      // non-finite entry here is numerical failure whatever its origin.
      // Clean stripes pay one read-only scan — no copy, no mutation — so
      // guarded and unguarded runs stay bitwise identical.
      {
        const std::size_t bad = count_nonfinite(buf);
        if (bad > 0) {
          obs::MetricsRegistry::global()
              .counter("numeric.nonfinite", {{"stage", "map"}})
              .add(static_cast<double>(bad));
          guard_nonfinite(std::span<float>(buf), config.nonfinite,
                          "attention map (stripe " + std::to_string(br) +
                              ")");
        }
      }

      // --- pass 3: per-tile map fake-quant at the tile's bitwidth -------
      if (per_row_quant) {
        for (std::size_t i = 0; i < rows_here; ++i) {
          fake_quant_group(std::span<float>(buf.data() + i * n, n),
                           config.map_bits, /*symmetric=*/false);
        }
      } else if (block_quant) {
        visitor.for_each_tile_in_row(br, [&](const TileRef& t) {
          const auto e = t.extent;
          if (map_zero[t.bc]) {
            // 0-bit map tile: fake-quant semantics are "zero the tile".
            // (Needed when exp mass was written — the non-OBA mixed case.)
            for (std::size_t i = e.r0; i < e.r1; ++i) {
              float* brow = buf.data() + (i - r0) * n;
              for (std::size_t j = e.c0; j < e.c1; ++j) brow[j] = 0.0F;
            }
            return;
          }
          if (qk_skip[t.bc] && !stripe_has_dead) {
            return;  // all-zero region; fake-quantizing zeros is identity
          }
          tile_scratch.clear();
          for (std::size_t i = e.r0; i < e.r1; ++i) {
            const float* brow = buf.data() + (i - r0) * n;
            tile_scratch.insert(tile_scratch.end(), brow + e.c0, brow + e.c1);
          }
          fake_quant_group(tile_scratch, mixed ? t.bits : config.map_bits,
                           /*symmetric=*/false);
          std::size_t idx = 0;
          for (std::size_t i = e.r0; i < e.r1; ++i) {
            float* brow = buf.data() + (i - r0) * n;
            for (std::size_t j = e.c0; j < e.c1; ++j) {
              brow[j] = tile_scratch[idx++];
            }
          }
        });
      }

      // --- pass 4: AttnV accumulation, tile-by-tile, 0-bit tiles skipped
      for (std::size_t bc = 0; bc < bcols; ++bc) {
        if (map_zero[bc]) continue;                     // zeroed tile
        if (qk_skip[bc] && !stripe_has_dead) continue;  // all-zero tile
        const auto e = grid.extent(br, bc);
        // attnv_accum skips zero weights — matmul's zero-skip, bit-for-bit.
        for (std::size_t i = e.r0; i < e.r1; ++i) {
          const float* arow = buf.data() + (i - r0) * n;
          kernels::attnv_accum(arow + e.c0, e.c1 - e.c0,
                               v_used.row(e.c0).data(), v_used.cols(), dv,
                               out_r.row(i).data());
        }
      }
      PARO_FR("attn.stripe.end", br,
              static_cast<std::uint64_t>(st.tiles_live));
    }
  });

  // Fold per-stripe tallies in stripe order; the peak is the shared
  // buffers plus the largest single stripe's scratch (one logical stream —
  // see obs/working_set.hpp for why the parallel copies don't count).
  AttnExecStats exec;
  exec.stripes = stripes;
  exec.tiles_total = grid.num_blocks();
  std::size_t max_local = 0;
  for (const StripeStats& st : stats) {
    exec.tiles_live += st.tiles_live;
    exec.tiles_skipped += st.tiles_skipped;
    exec.qk_tiles_computed += st.qk_tiles;
    for (int b = 0; b < kNumBitChoices; ++b) {
      exec.tiles_per_bits[static_cast<std::size_t>(b)] +=
          st.per_bits[static_cast<std::size_t>(b)];
    }
    max_local = std::max(max_local, st.local_bytes);
  }
  meter.fold_local_peak(max_local);

  QuantAttentionResult result;
  switch (config.map_scheme) {
    case AttnMapScheme::kNone:
      result.avg_map_bits = 16.0;
      break;
    case AttnMapScheme::kPerRow:
    case AttnMapScheme::kBlockwise:
      result.avg_map_bits = config.map_bits;
      break;
    case AttnMapScheme::kBlockwiseMixed:
      result.avg_map_bits = table->average_bitwidth();
      break;
  }
  meter.acquire(n * dv * sizeof(float));  // canonical-order output
  result.output = calib.plan.invert_rows(out_r);
  exec.peak_bytes = meter.peak();
  result.exec = exec;

  auto& reg = obs::MetricsRegistry::global();
  reg.counter("attn.tiles_skipped").add(static_cast<double>(exec.tiles_skipped));
  reg.counter("attn.tiles_live").add(static_cast<double>(exec.tiles_live));
  for (int b = 0; b < kNumBitChoices; ++b) {
    const auto count = exec.tiles_per_bits[static_cast<std::size_t>(b)];
    if (count == 0) continue;
    reg.counter("attn.tiles_bits",
                {{"bits", std::to_string(kBitChoices[b])}})
        .add(static_cast<double>(count));
  }
  // Wall-clock latency of this head's full attention call, feeding the
  // p50/p95/p99 export (range 0–50 ms, 250 µs bins).
  const double call_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - call_start)
          .count();
  reg.histogram("attn.fused.latency_us", 0.0, 50000.0, 200).observe(call_us);
  obs::publish_peak_working_set("streamed", exec.peak_bytes);
  kernels::publish_kernel_metrics();
  return result;
}

}  // namespace paro
