// Per-session memory subsystem for the steady-state generation loop.
//
// A diffusion run calls the same (layer, head) attention heads once per
// DDIM step with identical shapes and configs — only the values change.
// The seed implementation paid the full allocation bill every call:
// reordered Q/K/V copies, int8 code matrices, packed LDZ planes, the
// stripe scratch, and the output, all malloc'd and freed per head per
// step.  A SessionContext turns every one of those into retained storage:
//
//   * HeadWorkspace — per-(layer, head) operand storage (reordered
//     matrices, int8 codes, scale vectors, PackedLdzK planes, the output)
//     that is RE-FILLED each step but never re-allocated while the shape,
//     config, and calibration stay the same.  This is storage-reuse
//     caching, not content caching: K changes every step, so the packed
//     planes are rebuilt into the retained bytes.
//   * ShardedArena scratch — per-worker-thread bump arenas serving the
//     stripe scratch of the fused executor.  Spans are carved per stripe
//     and the arena is reset (offsets rewound, slabs retained) at stripe
//     granularity, so steps >= 2 touch the heap zero times.
//   * Pre-resolved metric handles — registry lookups build (string,
//     Labels) keys and allocate; the session resolves every steady-state
//     series once at construction and the hot path writes through the
//     handles.  MetricsRegistry::reset() invalidates them: construct the
//     session AFTER any registry reset.
//
// Determinism: workspaces and arena spans are scratch that is fully
// written before it is read, and no result depends on span addresses, so
// outputs stay bitwise identical to the allocating path at any thread
// count (tested in tests/attention/test_session.cpp).
//
// Cache validity: a workspace is keyed by (n, d, dv) plus fingerprints of
// the QuantAttentionConfig and the head's calibration (CRC-32 over the
// plan permutation and BitTable bits).  Any mismatch is a miss: the key
// is re-recorded and storage is resized (the only allocating path).
// SessionContext::invalidate() drops every key explicitly — call it after
// reloading calibration artifacts.  Hits and misses surface as the
// `mem.cache_hits` / `mem.cache_misses` counters.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "attention/pipeline.hpp"
#include "common/arena.hpp"
#include "kernels/pack.hpp"
#include "obs/metrics.hpp"
#include "quant/granularity.hpp"
#include "tensor/matrix.hpp"

namespace paro {

/// Per-stripe tallies of the fused executor; each stripe fills its own
/// slot and the coordinator folds them in stripe order.  Lives here so the
/// slot vector can be retained in the head workspace across steps.
struct StripeStats {
  std::size_t tiles_live = 0;
  std::size_t tiles_skipped = 0;
  std::size_t qk_tiles = 0;
  std::array<std::uint64_t, kNumBitChoices> per_bits{};
  /// QKᵀ kernel invocations / K-operand bytes touched, per bitwidth class
  /// (packed streams for direct sub-byte compute, raw codes for int8,
  /// packed + scratch traffic on the decode path).
  std::array<std::uint64_t, kNumBitChoices> qk_calls_bits{};
  std::array<std::uint64_t, kNumBitChoices> qk_bytes_bits{};
  std::size_t local_bytes = 0;  ///< stripe scratch footprint
};

/// Retained per-(layer, head) storage for the fused executor.  Every
/// member is re-filled each call; none is re-allocated while the validity
/// key below matches.
struct HeadWorkspace {
  // --- validity key -----------------------------------------------------
  bool valid = false;
  std::size_t n = 0, d = 0, dv = 0;
  std::uint32_t config_crc = 0;
  std::uint32_t calib_fingerprint = 0;

  // --- operand storage --------------------------------------------------
  MatF qr, kr, vr;        ///< reordered Q/K/V
  QuantizedI8 q8, k8;     ///< int8 codes + per-row params
  MatF v_quant;           ///< per-column fake-quantized V
  MatF v_tscratch;        ///< transpose scratch for the V path
  std::vector<QuantParams> v_params;
  std::vector<float> q_scales, k_scales;
  std::vector<int> plane_bits;        ///< sub-8 bitwidths for packing
  kernels::PackedLdzK packed_k;       ///< LDZ planes (refilled per step)
  MatF out_r;             ///< reordered output accumulator
  MatF out;               ///< canonical-order output (returned by ref)
  std::vector<StripeStats> stripe_stats;

  // --- model-layer slices (dit's per-head Q/K/V columns) ----------------
  MatF qh, kh, vh;
};

/// Steady-state metric handles, resolved once so the hot path never
/// touches the registry's (string, Labels) map.
struct SessionMetricHandles {
  obs::Gauge* arena_bytes = nullptr;       ///< mem.arena_bytes (high water)
  obs::Counter* mallocs_per_step = nullptr;///< mem.mallocs_per_step
  obs::Counter* cache_hits = nullptr;      ///< mem.cache_hits
  obs::Counter* cache_misses = nullptr;    ///< mem.cache_misses
  obs::Counter* quantized_calls = nullptr; ///< attn.quantized_calls
  obs::Counter* tiles_skipped = nullptr;   ///< attn.tiles_skipped
  obs::Counter* tiles_live = nullptr;      ///< attn.tiles_live
  std::array<obs::Counter*, kNumBitChoices> tiles_bits{};  ///< attn.tiles_bits
  /// attn.qk_kernel_calls / attn.qk_bytes, one series per bitwidth class.
  std::array<obs::Counter*, kNumBitChoices> qk_calls_bits{};
  std::array<obs::Counter*, kNumBitChoices> qk_bytes_bits{};
  obs::HistogramMetric* fused_latency = nullptr;  ///< attn.fused.latency_us
  obs::Gauge* peak_ws_streamed = nullptr;  ///< attn.peak_working_set_bytes
  obs::Gauge* kv_packed_bytes = nullptr;   ///< mem.kv_packed_bytes
  obs::Gauge* kv_widened_bytes = nullptr;  ///< mem.kv_widened_bytes
};

/// Owns the arenas, workspaces, and metric handles of one generation
/// session.  Thread-safe: workspace() takes a mutex (once per head per
/// step), the arena shards are per-thread, and the counters are atomic.
class SessionContext {
 public:
  /// `arena_hint_bytes` pre-carves each worker shard on first touch
  /// (AttnExecStats::peak_bytes from a prior run is the natural hint);
  /// 0 falls back to the default slab size.
  explicit SessionContext(std::size_t arena_hint_bytes = 0);

  ShardedArena& scratch() { return scratch_; }
  const SessionMetricHandles& metrics() const { return metrics_; }

  /// Workspace of one (layer, head), created on first use.  The reference
  /// is stable for the session's lifetime.
  HeadWorkspace& workspace(std::size_t layer, std::size_t head);

  /// Per-step hook (call once per diffusion step, before the forward
  /// pass): resets every arena shard, publishes `mem.arena_bytes` /
  /// `mem.mallocs_per_step`, and flushes the per-kernel dispatch metrics
  /// the per-call path deliberately skips.
  void begin_step();

  /// Drop every workspace's validity key (storage is kept).  Call after
  /// reloading calibration artifacts: the next step re-fingerprints and
  /// re-records every head (a miss each).
  void invalidate();

  /// Bump the hit/miss accounting (registry counters + local atomics).
  void note_cache_hit();
  void note_cache_miss();

  std::uint64_t cache_hits() const {
    return hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t cache_misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::uint64_t steps_begun() const { return steps_; }

 private:
  ShardedArena scratch_;
  std::mutex mu_;
  std::map<std::pair<std::size_t, std::size_t>,
           std::unique_ptr<HeadWorkspace>>
      workspaces_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::uint64_t steps_ = 0;
  std::uint64_t published_slab_mallocs_ = 0;
  SessionMetricHandles metrics_;
};

/// CRC-32 fingerprint of the config fields that change executor behaviour
/// (scheme, bits, block, reorder, OBA, executor, policy, ...).
std::uint32_t config_fingerprint(const QuantAttentionConfig& config);

/// CRC-32 fingerprint of a head's calibration: the plan permutation bytes
/// folded with the BitTable's per-tile bitwidths.  Detects a swapped or
/// reloaded calibration even without an explicit invalidate().
std::uint32_t calib_fingerprint(const HeadCalibration& calib);

/// Session-aware streamed attention for one (layer, head).  Bitwise
/// identical to fused_quantized_attention, but every buffer lives in the
/// head's retained workspace and the stripe scratch comes from the
/// session's arena shards — steps >= 2 perform zero heap allocations
/// (tests/attention/test_steady_state.cpp).  The returned reference is the
/// workspace's canonical-order output; it stays valid (and is overwritten)
/// until the head's next call.  `stats_out`, when non-null, receives the
/// executor accounting of this call.
MatF& fused_quantized_attention_session(const MatF& q, const MatF& k,
                                        const MatF& v,
                                        const HeadCalibration& calib,
                                        const QuantAttentionConfig& config,
                                        SessionContext& session,
                                        std::size_t layer, std::size_t head,
                                        AttnExecStats* stats_out);

/// Session-aware twin of quantized_attention: the same input/output
/// numeric-boundary guards around the session executor.  A non-streamed
/// config falls back to the materialized engine (allocating), parking its
/// output in the workspace so the reference contract holds either way.
MatF& quantized_attention_session(const MatF& q, const MatF& k, const MatF& v,
                                  const HeadCalibration& calib,
                                  const QuantAttentionConfig& config,
                                  SessionContext& session, std::size_t layer,
                                  std::size_t head, AttnExecStats* stats_out);

}  // namespace paro
