#include "attention/session.hpp"

#include <cstring>
#include <string_view>

#include "common/crc32.hpp"
#include "kernels/kernels.hpp"

namespace paro {

namespace {

/// View of an object's bytes for CRC folding.  Only used on buffers we
/// fill ourselves (no padding garbage).
std::string_view bytes_of(const void* p, std::size_t n) {
  return std::string_view(static_cast<const char*>(p), n);
}

}  // namespace

SessionContext::SessionContext(std::size_t arena_hint_bytes)
    : scratch_(arena_hint_bytes) {
  auto& reg = obs::MetricsRegistry::global();
  metrics_.arena_bytes = &reg.gauge("mem.arena_bytes");
  metrics_.mallocs_per_step = &reg.counter("mem.mallocs_per_step");
  metrics_.cache_hits = &reg.counter("mem.cache_hits");
  metrics_.cache_misses = &reg.counter("mem.cache_misses");
  metrics_.quantized_calls = &reg.counter("attn.quantized_calls");
  metrics_.tiles_skipped = &reg.counter("attn.tiles_skipped");
  metrics_.tiles_live = &reg.counter("attn.tiles_live");
  for (int b = 0; b < kNumBitChoices; ++b) {
    const auto bi = static_cast<std::size_t>(b);
    const std::string bits_label = std::to_string(kBitChoices[b]);
    metrics_.tiles_bits[bi] =
        &reg.counter("attn.tiles_bits", {{"bits", bits_label}});
    metrics_.qk_calls_bits[bi] =
        &reg.counter("attn.qk_kernel_calls", {{"bits", bits_label}});
    metrics_.qk_bytes_bits[bi] =
        &reg.counter("attn.qk_bytes", {{"bits", bits_label}});
  }
  metrics_.fused_latency =
      &reg.histogram("attn.fused.latency_us", 0.0, 50000.0, 200);
  metrics_.peak_ws_streamed = &reg.gauge("attn.peak_working_set_bytes",
                                         {{"executor", "streamed"}});
  metrics_.kv_packed_bytes = &reg.gauge("mem.kv_packed_bytes");
  metrics_.kv_widened_bytes = &reg.gauge("mem.kv_widened_bytes");
}

HeadWorkspace& SessionContext::workspace(std::size_t layer, std::size_t head) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = workspaces_[{layer, head}];
  if (slot == nullptr) {
    slot = std::make_unique<HeadWorkspace>();
  }
  return *slot;
}

void SessionContext::begin_step() {
  scratch_.reset_all();
  ++steps_;
  metrics_.arena_bytes->set_max(
      static_cast<double>(scratch_.high_water_total()));
  const std::uint64_t mallocs = scratch_.slab_mallocs_total();
  metrics_.mallocs_per_step->add(
      static_cast<double>(mallocs - published_slab_mallocs_));
  published_slab_mallocs_ = mallocs;
  // The per-call fused path skips the kernel dispatch flush (it allocates
  // label vectors); once per step keeps the series fresh.
  kernels::publish_kernel_metrics();
}

void SessionContext::invalidate() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, ws] : workspaces_) {
    ws->valid = false;
  }
}

void SessionContext::note_cache_hit() {
  hits_.fetch_add(1, std::memory_order_relaxed);
  metrics_.cache_hits->add(1.0);
}

void SessionContext::note_cache_miss() {
  misses_.fetch_add(1, std::memory_order_relaxed);
  metrics_.cache_misses->add(1.0);
}

std::uint32_t config_fingerprint(const QuantAttentionConfig& config) {
  // Fixed-layout buffer, zeroed, fields memcpy'd at stable offsets — no
  // struct padding reaches the CRC.
  unsigned char buf[64] = {};
  std::size_t off = 0;
  auto put = [&](const void* p, std::size_t n) {
    std::memcpy(buf + off, p, n);
    off += n;
  };
  const std::uint8_t qkv = config.quantize_qkv ? 1 : 0;
  const std::uint32_t scheme = static_cast<std::uint32_t>(config.map_scheme);
  const std::int32_t map_bits = config.map_bits;
  const std::uint64_t block = config.block;
  const std::uint8_t reorder = config.use_reorder ? 1 : 0;
  const double budget = config.budget_bits;
  const double alpha = config.alpha;
  const std::uint8_t oba = config.output_bitwidth_aware ? 1 : 0;
  const std::uint8_t packed = config.packed_subbyte_compute ? 1 : 0;
  const std::uint8_t fp16 = config.fp16_scales ? 1 : 0;
  const float scale = config.scale;
  const std::uint32_t executor = static_cast<std::uint32_t>(config.executor);
  const std::uint32_t nonfinite = static_cast<std::uint32_t>(config.nonfinite);
  put(&qkv, 1);
  put(&scheme, 4);
  put(&map_bits, 4);
  put(&block, 8);
  put(&reorder, 1);
  put(&budget, 8);
  put(&alpha, 8);
  put(&oba, 1);
  put(&packed, 1);
  put(&fp16, 1);
  put(&scale, 4);
  put(&executor, 4);
  put(&nonfinite, 4);
  return crc32(bytes_of(buf, off));
}

std::uint32_t calib_fingerprint(const HeadCalibration& calib) {
  std::uint32_t crc = crc32(bytes_of(
      calib.plan.perm.data(), calib.plan.perm.size() * sizeof(std::uint32_t)));
  if (calib.bit_table.has_value()) {
    const BitTable& t = *calib.bit_table;
    const std::size_t tiles = t.grid().num_blocks();
    for (std::size_t i = 0; i < tiles; ++i) {
      const std::int8_t b = static_cast<std::int8_t>(t.bits_flat(i));
      crc = crc32(bytes_of(&b, 1), crc);
    }
  }
  return crc;
}

}  // namespace paro
