#include "attention/calibration_io.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/error.hpp"

namespace paro {

namespace {

AxisOrder parse_order(const std::string& name) {
  for (const AxisOrder& order : all_axis_orders()) {
    if (axis_order_name(order) == name) return order;
  }
  throw Error("unknown axis order: " + name);
}

std::string expect_token(std::istream& is, const char* what) {
  std::string token;
  if (!(is >> token)) {
    throw Error(std::string("calibration stream ended while reading ") +
                what);
  }
  return token;
}

void expect_keyword(std::istream& is, const std::string& keyword) {
  const std::string token = expect_token(is, keyword.c_str());
  PARO_CHECK_MSG(token == keyword,
                 "expected '" + keyword + "', got '" + token + "'");
}

template <typename T>
T read_number(std::istream& is, const char* what) {
  T value{};
  if (!(is >> value)) {
    throw Error(std::string("failed to parse ") + what);
  }
  return value;
}

}  // namespace

void write_head_calibration(std::ostream& os, const HeadCalibration& calib) {
  os << "head\n";
  os << "order " << axis_order_name(calib.plan.order) << "\n";
  os << "perm " << calib.plan.perm.size();
  for (const std::uint32_t p : calib.plan.perm) {
    os << ' ' << p;
  }
  os << "\n";
  if (calib.bit_table.has_value()) {
    const BitTable& t = *calib.bit_table;
    os << "bits " << t.grid().rows() << ' ' << t.grid().cols() << ' '
       << t.grid().block();
    for (std::size_t i = 0; i < t.grid().num_blocks(); ++i) {
      os << ' ' << t.bits_flat(i);
    }
    os << "\n";
  } else {
    os << "bits none\n";
  }
  os << "avgbits " << std::setprecision(17) << calib.planned_avg_bits
     << "\n";
  os << "end\n";
}

HeadCalibration read_head_calibration(std::istream& is) {
  expect_keyword(is, "head");
  HeadCalibration calib;

  expect_keyword(is, "order");
  calib.plan.order = parse_order(expect_token(is, "order name"));

  expect_keyword(is, "perm");
  const auto n = read_number<std::size_t>(is, "perm length");
  calib.plan.perm.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    calib.plan.perm[i] = read_number<std::uint32_t>(is, "perm entry");
  }

  expect_keyword(is, "bits");
  const std::string bits_token = expect_token(is, "bits header");
  if (bits_token != "none") {
    std::size_t rows = 0;
    {
      std::istringstream header(bits_token);
      if (!(header >> rows)) throw Error("bad bits row count");
    }
    const auto cols = read_number<std::size_t>(is, "bits cols");
    const auto block = read_number<std::size_t>(is, "bits block");
    BitTable table(BlockGrid(rows, cols, block), 8);
    for (std::size_t i = 0; i < table.grid().num_blocks(); ++i) {
      table.set_bits_flat(i, read_number<int>(is, "bit entry"));
    }
    calib.bit_table = std::move(table);
  }

  expect_keyword(is, "avgbits");
  calib.planned_avg_bits = read_number<double>(is, "avgbits");
  expect_keyword(is, "end");
  return calib;
}

void write_calibration_table(
    std::ostream& os,
    const std::vector<std::vector<HeadCalibration>>& table) {
  PARO_CHECK_MSG(!table.empty() && !table[0].empty(), "empty table");
  os << "paro-calib v1\n";
  os << "layers " << table.size() << " heads " << table[0].size() << "\n";
  for (const auto& layer : table) {
    PARO_CHECK_MSG(layer.size() == table[0].size(), "ragged table");
    for (const HeadCalibration& head : layer) {
      write_head_calibration(os, head);
    }
  }
}

std::vector<std::vector<HeadCalibration>> read_calibration_table(
    std::istream& is) {
  expect_keyword(is, "paro-calib");
  expect_keyword(is, "v1");
  expect_keyword(is, "layers");
  const auto layers = read_number<std::size_t>(is, "layer count");
  expect_keyword(is, "heads");
  const auto heads = read_number<std::size_t>(is, "head count");
  PARO_CHECK_MSG(layers > 0 && heads > 0, "degenerate table header");
  std::vector<std::vector<HeadCalibration>> table(layers);
  for (std::size_t l = 0; l < layers; ++l) {
    table[l].reserve(heads);
    for (std::size_t h = 0; h < heads; ++h) {
      table[l].push_back(read_head_calibration(is));
    }
  }
  return table;
}

void save_calibration_file(
    const std::string& path,
    const std::vector<std::vector<HeadCalibration>>& table) {
  std::ofstream os(path);
  PARO_CHECK_MSG(os.good(), "cannot open for writing: " + path);
  write_calibration_table(os, table);
  PARO_CHECK_MSG(os.good(), "write failed: " + path);
}

std::vector<std::vector<HeadCalibration>> load_calibration_file(
    const std::string& path) {
  std::ifstream is(path);
  PARO_CHECK_MSG(is.good(), "cannot open for reading: " + path);
  return read_calibration_table(is);
}

}  // namespace paro
