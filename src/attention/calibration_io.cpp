#include "attention/calibration_io.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <optional>
#include <sstream>

#include "common/crc32.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/logging.hpp"
#include "obs/metrics.hpp"

namespace paro {

namespace {

AxisOrder parse_order(const std::string& name) {
  for (const AxisOrder& order : all_axis_orders()) {
    if (axis_order_name(order) == name) return order;
  }
  throw DataError("unknown axis order: " + name);
}

std::string expect_token(std::istream& is, const char* what) {
  std::string token;
  if (!(is >> token)) {
    throw DataError(std::string("calibration stream ended while reading ") +
                    what);
  }
  return token;
}

void expect_keyword(std::istream& is, const std::string& keyword) {
  const std::string token = expect_token(is, keyword.c_str());
  if (token != keyword) {
    throw DataError("expected '" + keyword + "', got '" + token + "'");
  }
}

template <typename T>
T read_number(std::istream& is, const char* what) {
  T value{};
  if (!(is >> value)) {
    throw DataError(std::string("failed to parse ") + what);
  }
  return value;
}

/// The checksummed payload of a head record: every line between `head` and
/// `crc`/`end`.  Writing and CRC verification both go through this one
/// serializer, so the checksum is over canonical bytes — any corruption
/// that still parses necessarily changes the re-serialization and is
/// caught by the CRC compare.
void write_head_payload(std::ostream& os, const HeadCalibration& calib) {
  os << "order " << axis_order_name(calib.plan.order) << "\n";
  os << "perm " << calib.plan.perm.size();
  for (const std::uint32_t p : calib.plan.perm) {
    os << ' ' << p;
  }
  os << "\n";
  if (calib.bit_table.has_value()) {
    const BitTable& t = *calib.bit_table;
    os << "bits " << t.grid().rows() << ' ' << t.grid().cols() << ' '
       << t.grid().block();
    for (std::size_t i = 0; i < t.grid().num_blocks(); ++i) {
      os << ' ' << t.bits_flat(i);
    }
    os << "\n";
  } else {
    os << "bits none\n";
  }
  os << "avgbits " << std::setprecision(17) << calib.planned_avg_bits
     << "\n";
}

std::string head_payload_string(const HeadCalibration& calib) {
  std::ostringstream os;
  write_head_payload(os, calib);
  return os.str();
}

/// Parses the fields of one head record (after `head`, through `end`).
/// `had_crc` reports whether the record carried a checksum; when it did,
/// the checksum has been verified against the re-serialized payload.
HeadCalibration parse_head_record(std::istream& is, bool* had_crc) {
  expect_keyword(is, "head");
  HeadCalibration calib;

  expect_keyword(is, "order");
  calib.plan.order = parse_order(expect_token(is, "order name"));

  expect_keyword(is, "perm");
  const auto n = read_number<std::size_t>(is, "perm length");
  calib.plan.perm.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    calib.plan.perm[i] = read_number<std::uint32_t>(is, "perm entry");
  }

  expect_keyword(is, "bits");
  const std::string bits_token = expect_token(is, "bits header");
  if (bits_token != "none") {
    std::size_t rows = 0;
    {
      std::istringstream header(bits_token);
      if (!(header >> rows)) throw DataError("bad bits row count");
    }
    const auto cols = read_number<std::size_t>(is, "bits cols");
    const auto block = read_number<std::size_t>(is, "bits block");
    BitTable table(BlockGrid(rows, cols, block), 8);
    for (std::size_t i = 0; i < table.grid().num_blocks(); ++i) {
      // set_bits_flat rejects values outside {0, 2, 4, 8}, so an
      // out-of-domain bitwidth fails here, at parse time.
      table.set_bits_flat(i, read_number<int>(is, "bit entry"));
    }
    calib.bit_table = std::move(table);
  }

  expect_keyword(is, "avgbits");
  calib.planned_avg_bits = read_number<double>(is, "avgbits");

  std::string token = expect_token(is, "crc or end");
  bool crc_present = false;
  if (token == "crc") {
    const std::uint32_t stored =
        parse_crc32_hex(expect_token(is, "crc value"));
    const std::uint32_t computed = crc32(head_payload_string(calib));
    if (stored != computed) {
      throw DataError("head record checksum mismatch (stored " +
                      crc32_hex(stored) + ", computed " +
                      crc32_hex(computed) + ")");
    }
    crc_present = true;
    token = expect_token(is, "end");
  }
  if (token != "end") {
    throw DataError("expected 'end', got '" + token + "'");
  }
  if (had_crc != nullptr) *had_crc = crc_present;
  return calib;
}

/// Table header: returns the version (1 or 2) and the declared shape.
int parse_table_header(std::istream& is, std::size_t* layers,
                       std::size_t* heads) {
  std::string magic;
  if (!(is >> magic)) {
    throw DataError("calibration stream is empty");
  }
  if (magic != "paro-calib") {
    throw DataError("expected 'paro-calib', got '" + magic + "'");
  }
  const std::string version_token = expect_token(is, "format version");
  int version = 0;
  if (version_token == "v1") {
    version = 1;
  } else if (version_token == "v2") {
    version = 2;
  } else {
    throw DataError("unsupported calibration format version '" +
                    version_token + "'");
  }
  expect_keyword(is, "layers");
  *layers = read_number<std::size_t>(is, "layer count");
  expect_keyword(is, "heads");
  *heads = read_number<std::size_t>(is, "head count");
  if (*layers == 0 || *heads == 0) {
    throw DataError("degenerate table header");
  }
  return version;
}

std::string trim(const std::string& s) {
  const std::size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) return {};
  const std::size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

/// Split the record region of the stream into per-record byte segments,
/// resyncing on `head` lines.  Line-based segmentation is what makes
/// quarantine possible: a corrupted record cannot desynchronize the
/// token stream for its neighbours — damage stays contained to the
/// segment it occurred in (plus a swallowed neighbour when the `head` /
/// `end` markers themselves are hit, which quarantines both).
std::vector<std::string> segment_head_records(std::istream& is) {
  std::vector<std::string> segments;
  std::string line;
  std::string current;
  bool open = false;
  while (std::getline(is, line)) {
    const std::string t = trim(line);
    if (t == "head") {
      if (open) segments.push_back(current);  // truncated predecessor
      current = line + "\n";
      open = true;
      continue;
    }
    if (!open) continue;  // garbage between records: fails no one else
    current += line + "\n";
    if (t == "end") {
      segments.push_back(current);
      current.clear();
      open = false;
    }
  }
  if (open) segments.push_back(current);  // truncated final record
  return segments;
}

/// Fault sites modelling artifact damage between calibrate and inference.
/// They mutate the already-segmented record bytes, so the recovery path
/// they exercise is exactly the one real corruption would take.
void maybe_inject_read_faults(std::string& segment) {
  std::uint64_t seed = 0;
  if (PARO_FAULT_FIRE("calib.read.corrupt-bit", &seed) && !segment.empty()) {
    const std::size_t bit = seed % (segment.size() * 8);
    segment[bit / 8] = static_cast<char>(
        segment[bit / 8] ^ static_cast<char>(1U << (bit % 8)));
  }
  if (PARO_FAULT_FIRE("calib.read.truncate", &seed) && !segment.empty()) {
    segment.resize(seed % segment.size());
  }
}

struct ParsedSegment {
  std::optional<HeadCalibration> head;  ///< set when parse+validate passed
  std::exception_ptr error;             ///< set otherwise
  std::string error_text;
};

ParsedSegment parse_segment(std::string segment, int version,
                            const CalibExpectations& expect) {
  maybe_inject_read_faults(segment);
  ParsedSegment out;
  try {
    std::istringstream ss(segment);
    bool had_crc = false;
    HeadCalibration head = parse_head_record(ss, &had_crc);
    if (version >= 2 && !had_crc) {
      throw DataError("v2 head record is missing its checksum");
    }
    validate_head_calibration(head, expect);
    out.head = std::move(head);
  } catch (const std::exception& e) {
    out.error = std::current_exception();
    out.error_text = e.what();
  }
  return out;
}

[[noreturn]] void rethrow_with_head_context(const std::exception_ptr& error,
                                            std::size_t layer,
                                            std::size_t head) {
  const std::string context =
      "head record (layer " + std::to_string(layer) + ", head " +
      std::to_string(head) + ")";
  with_error_context(context, [&]() -> int {
    std::rethrow_exception(error);
  });
  std::abort();  // unreachable: with_error_context always throws here
}

}  // namespace

void validate_head_calibration(const HeadCalibration& calib,
                               const CalibExpectations& expect) {
  const std::size_t n = calib.plan.perm.size();
  if (n == 0) {
    throw DataError("permutation is empty");
  }
  if (expect.tokens != 0 && n != expect.tokens) {
    throw DataError("permutation covers " + std::to_string(n) +
                    " tokens, model expects " +
                    std::to_string(expect.tokens));
  }
  // Bijectivity: every canonical index appears exactly once.  A duplicate
  // implies a missing index at equal length, so one scan covers both.
  std::vector<char> seen(n, 0);
  for (const std::uint32_t p : calib.plan.perm) {
    if (p >= n) {
      throw DataError("permutation entry " + std::to_string(p) +
                      " out of range [0, " + std::to_string(n) + ")");
    }
    if (seen[p] != 0) {
      throw DataError("permutation entry " + std::to_string(p) +
                      " appears more than once (not a bijection)");
    }
    seen[p] = 1;
  }
  if (!std::isfinite(calib.planned_avg_bits) ||
      calib.planned_avg_bits < 0.0 || calib.planned_avg_bits > 16.0) {
    throw DataError("avgbits " + std::to_string(calib.planned_avg_bits) +
                    " outside [0, 16]");
  }
  if (calib.bit_table.has_value()) {
    const BlockGrid& grid = calib.bit_table->grid();
    // The bit alphabet itself ({0,2,4,8}) is structurally enforced:
    // BitTable's setters reject anything else, so any instance is valid.
    if (grid.rows() != n || grid.cols() != n) {
      throw DataError("bit table covers " + std::to_string(grid.rows()) +
                      "x" + std::to_string(grid.cols()) +
                      " but the permutation has " + std::to_string(n) +
                      " tokens");
    }
    if (expect.block != 0 && grid.block() != expect.block) {
      throw DataError("bit table tile side " +
                      std::to_string(grid.block()) + ", model expects " +
                      std::to_string(expect.block));
    }
    const double actual = calib.bit_table->average_bitwidth();
    if (std::abs(calib.planned_avg_bits - actual) > 1e-6) {
      throw DataError("stored avgbits " +
                      std::to_string(calib.planned_avg_bits) +
                      " disagrees with the bit table's average " +
                      std::to_string(actual));
    }
  }
}

HeadCalibration fallback_head_calibration(std::size_t tokens,
                                          std::size_t block) {
  PARO_CHECK_MSG(tokens > 0, "fallback needs a token count");
  HeadCalibration fallback;
  fallback.plan = ReorderPlan::identity(tokens);
  if (block > 0) {
    fallback.bit_table = BitTable(BlockGrid(tokens, tokens, block), 8);
    fallback.planned_avg_bits = 8.0;
  }
  return fallback;
}

void write_head_calibration(std::ostream& os, const HeadCalibration& calib,
                            int version) {
  PARO_CHECK_MSG(version == 1 || version == 2,
                 "unsupported calibration version");
  os << "head\n";
  const std::string payload = head_payload_string(calib);
  os << payload;
  if (version >= 2) {
    os << "crc " << crc32_hex(crc32(payload)) << "\n";
  }
  os << "end\n";
}

HeadCalibration read_head_calibration(std::istream& is) {
  return parse_head_record(is, nullptr);
}

void write_calibration_table(
    std::ostream& os, const std::vector<std::vector<HeadCalibration>>& table,
    int version) {
  PARO_CHECK_MSG(version == 1 || version == 2,
                 "unsupported calibration version");
  PARO_CHECK_MSG(!table.empty() && !table[0].empty(), "empty table");
  os << "paro-calib v" << version << "\n";
  os << "layers " << table.size() << " heads " << table[0].size() << "\n";
  for (const auto& layer : table) {
    PARO_CHECK_MSG(layer.size() == table[0].size(), "ragged table");
    for (const HeadCalibration& head : layer) {
      write_head_calibration(os, head, version);
    }
  }
}

std::vector<std::vector<HeadCalibration>> read_calibration_table(
    std::istream& is) {
  return read_calibration_table(is, CalibLoadOptions{}, nullptr);
}

std::vector<std::vector<HeadCalibration>> read_calibration_table(
    std::istream& is, const CalibLoadOptions& options,
    CalibLoadReport* report) {
  std::size_t layers = 0;
  std::size_t heads = 0;
  const int version = parse_table_header(is, &layers, &heads);
  const std::vector<std::string> segments = segment_head_records(is);
  const std::size_t expected_records = layers * heads;
  const bool strict = options.recovery == CalibRecovery::kStrict;

  if (segments.size() > expected_records) {
    if (strict) {
      throw DataError("file holds " + std::to_string(segments.size()) +
                      " head records, header declares " +
                      std::to_string(expected_records));
    }
    PARO_LOG(kWarn) << "calibration file holds " << segments.size()
                    << " head records, header declares " << expected_records
                    << "; ignoring the extras";
  }

  // Parse every present record first: quarantine decisions (and fallback
  // geometry) need the full picture before any substitution happens.
  std::vector<ParsedSegment> parsed;
  parsed.reserve(expected_records);
  for (std::size_t i = 0; i < expected_records && i < segments.size(); ++i) {
    parsed.push_back(parse_segment(segments[i], version, options.expect));
  }

  // Resolve the geometry fallback records need: the caller's expectation
  // wins; otherwise the first intact record supplies it.  Records that
  // disagree with the resolved token count are demoted — a head whose
  // permutation length differs from its siblings cannot run in the same
  // model, however internally consistent it is.
  std::size_t tokens = options.expect.tokens;
  std::size_t block = options.expect.block;
  for (const ParsedSegment& p : parsed) {
    if (!p.head.has_value()) continue;
    if (tokens == 0) tokens = p.head->plan.perm.size();
    if (block == 0 && p.head->bit_table.has_value()) {
      block = p.head->bit_table->grid().block();
    }
  }
  for (ParsedSegment& p : parsed) {
    if (!p.head.has_value() || tokens == 0) continue;
    if (p.head->plan.perm.size() != tokens) {
      p.error_text = "permutation covers " +
                     std::to_string(p.head->plan.perm.size()) +
                     " tokens, other heads cover " + std::to_string(tokens);
      try {
        throw DataError(p.error_text);
      } catch (...) {
        p.error = std::current_exception();
      }
      p.head.reset();
    }
  }

  CalibLoadReport local_report;
  CalibLoadReport& rep = report != nullptr ? *report : local_report;
  rep = CalibLoadReport{};
  rep.version = version;
  rep.layers = layers;
  rep.heads = heads;
  rep.head_status.reserve(expected_records);

  std::vector<std::vector<HeadCalibration>> table(layers);
  for (std::size_t l = 0; l < layers; ++l) {
    table[l].reserve(heads);
    for (std::size_t h = 0; h < heads; ++h) {
      const std::size_t index = l * heads + h;
      HeadLoadStatus status;
      status.layer = l;
      status.head = h;
      if (index < parsed.size() && parsed[index].head.has_value()) {
        table[l].push_back(std::move(*parsed[index].head));
      } else {
        std::exception_ptr error;
        if (index < parsed.size()) {
          status.error = parsed[index].error_text;
          error = parsed[index].error;
        } else {
          status.error = "record missing (file truncated?)";
        }
        if (strict) {
          if (error != nullptr) rethrow_with_head_context(error, l, h);
          throw DataError("head record (layer " + std::to_string(l) +
                          ", head " + std::to_string(h) + "): " +
                          status.error);
        }
        if (tokens == 0) {
          throw IoError(
              "no intact head record and no expected geometry — cannot "
              "build fallbacks (first record error: " + status.error + ")");
        }
        status.ok = false;
        table[l].push_back(fallback_head_calibration(tokens, block));
        PARO_LOG(kWarn) << "calibration layer " << l << " head " << h
                        << " quarantined (" << status.error
                        << "); substituting identity reorder + INT8 map";
      }
      if (status.ok) {
        ++rep.ok_count;
      } else {
        ++rep.fallback_count;
      }
      rep.head_status.push_back(std::move(status));
    }
  }

  auto& reg = obs::MetricsRegistry::global();
  reg.counter("calib.load.heads_ok")
      .add(static_cast<double>(rep.ok_count));
  if (rep.fallback_count > 0) {
    reg.counter("calib.load.heads_fallback")
        .add(static_cast<double>(rep.fallback_count));
  }
  reg.gauge("calib.load.version").set(static_cast<double>(version));
  return table;
}

void save_calibration_file(
    const std::string& path,
    const std::vector<std::vector<HeadCalibration>>& table) {
  // Serialize fully before touching the filesystem, then write to a
  // sibling temp file and rename into place: readers either see the old
  // artifact or the complete new one, never a torn prefix.
  std::ostringstream buffer;
  write_calibration_table(buffer, table);
  const std::string payload = buffer.str();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::trunc);
    if (!os.good()) throw IoError("cannot open for writing: " + tmp);
    std::uint64_t seed = 0;
    if (PARO_FAULT_FIRE("calib.write.truncate", &seed)) {
      // Model a crash mid-write: a torn prefix lands in the temp file and
      // stays there (a real crash would not clean up either).  The key
      // invariant — `path` is untouched — holds because the rename below
      // never runs.
      os.write(payload.data(),
               static_cast<std::streamsize>(seed % payload.size()));
      os.flush();
      throw IoError("injected crash while writing " + tmp);
    }
    os.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    os.flush();
    if (!os.good()) {
      os.close();
      std::remove(tmp.c_str());
      throw IoError("write failed: " + tmp);
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw IoError("rename failed: " + tmp + " -> " + path);
  }
}

std::vector<std::vector<HeadCalibration>> load_calibration_file(
    const std::string& path) {
  return load_calibration_file(path, CalibLoadOptions{}, nullptr);
}

std::vector<std::vector<HeadCalibration>> load_calibration_file(
    const std::string& path, const CalibLoadOptions& options,
    CalibLoadReport* report) {
  std::ifstream is(path);
  if (!is.good()) throw IoError("cannot open for reading: " + path);
  return with_error_context("calibration file " + path, [&] {
    return read_calibration_table(is, options, report);
  });
}

}  // namespace paro
