// The PARO quantized-attention pipeline and its ablations (paper §III, §V).
//
// One configurable path covers every Table-I variant:
//   FP16            — map_scheme = kNone, quantize_qkv = false
//   Naive INTb      — per-row map quant, no reorder
//   Block-wise INTb — block-wise map quant, no reorder
//   PARO INTb       — reorder + block-wise map quant
//   PARO MP         — reorder + block-wise + mixed-precision {0,2,4,8}
// plus the hardware co-design knob:
//   output_bitwidth_aware — emulate the LDZ unit truncating K inside QKᵀ
//   to each destination block's bitwidth (paper §IV-B, Fig. 5b).
//
// Dataflow of the full path (paper Fig. 3):
//   reorder Q,K,V → INT8 Q/K → QKᵀ (per-block LDZ bits) → softmax →
//   block-wise mixed quant of the map → AttnV (INT8 V) → inverse reorder.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "common/numeric_guard.hpp"
#include "quant/bittable.hpp"
#include "reorder/calibrate.hpp"
#include "reorder/plan.hpp"
#include "reorder/token_grid.hpp"
#include "tensor/matrix.hpp"

namespace paro {

/// How the post-softmax attention map is quantized.
enum class AttnMapScheme {
  kNone,            ///< keep FP (the FP16 / SageAttention paths)
  kPerRow,          ///< "naive": one (s,z) per row
  kBlockwise,       ///< uniform bitwidth, per-tile (s,z)
  kBlockwiseMixed,  ///< per-tile bitwidth from the calibrated BitTable
};

/// Which execution engine runs the online pipeline.
enum class AttnExecutor {
  /// Materialize full N×N logits / softmax / quantized map.  O(N²) memory;
  /// keeps the quantized map around — the test oracle.
  kMaterialized,
  /// Fused block-streaming engine (attention/fused_executor.hpp): per
  /// Q-stripe online softmax over K-tiles, 0-bit tiles skipped outright,
  /// never allocates an N×N buffer.  Bitwise-identical outputs.
  kStreamed,
};

/// What an executor actually did with the tile decomposition — fed back
/// into the cycle simulators and the obs layer instead of re-deriving
/// counts from the BitTable.
struct AttnExecStats {
  std::size_t stripes = 0;       ///< Q-stripes processed (streamed path)
  std::size_t tiles_total = 0;   ///< tiles in the map decomposition
  std::size_t tiles_live = 0;    ///< tiles that reached map-quant + AttnV
  std::size_t tiles_skipped = 0; ///< 0-bit tiles the dispatcher bypassed
  std::size_t qk_tiles_computed = 0;  ///< tiles whose QKᵀ logits were built
  /// Tile counts per bitwidth class, indexed like kBitChoices {0,2,4,8}.
  std::array<std::uint64_t, kNumBitChoices> tiles_per_bits{};
  /// QKᵀ tile-kernel invocations per destination bitwidth class (same
  /// indexing).  Sub-byte classes run qk_tile_i4p/i2q when packed compute
  /// is on, the decode+int8 path otherwise; either way the call lands here.
  std::array<std::uint64_t, kNumBitChoices> qk_calls_per_bits{};
  /// K-operand bytes those calls touched, per bitwidth class: packed-plane
  /// bytes for direct packed compute, raw codes for int8 tiles, and packed
  /// bytes + scratch write/read traffic for the decode path — so the
  /// bandwidth win of packed compute is visible, not inferred.
  std::array<std::uint64_t, kNumBitChoices> qk_bytes_per_bits{};
  /// High-water mark of executor-held bytes (one logical stream: shared
  /// buffers + the largest single stripe's scratch).
  std::size_t peak_bytes = 0;
  /// K residency split at the end of the pass: bytes held as packed LDZ
  /// planes vs as widened int8 codes.  High-water semantics under merge.
  std::size_t kv_packed_bytes = 0;
  std::size_t kv_widened_bytes = 0;

  /// Accumulate another run (across heads, layers, or diffusion steps):
  /// counters add, the peak stays a high-water mark.
  void merge(const AttnExecStats& o) {
    stripes += o.stripes;
    tiles_total += o.tiles_total;
    tiles_live += o.tiles_live;
    tiles_skipped += o.tiles_skipped;
    qk_tiles_computed += o.qk_tiles_computed;
    for (int b = 0; b < kNumBitChoices; ++b) {
      tiles_per_bits[static_cast<std::size_t>(b)] +=
          o.tiles_per_bits[static_cast<std::size_t>(b)];
      qk_calls_per_bits[static_cast<std::size_t>(b)] +=
          o.qk_calls_per_bits[static_cast<std::size_t>(b)];
      qk_bytes_per_bits[static_cast<std::size_t>(b)] +=
          o.qk_bytes_per_bits[static_cast<std::size_t>(b)];
    }
    peak_bytes = peak_bytes > o.peak_bytes ? peak_bytes : o.peak_bytes;
    kv_packed_bytes =
        kv_packed_bytes > o.kv_packed_bytes ? kv_packed_bytes
                                            : o.kv_packed_bytes;
    kv_widened_bytes =
        kv_widened_bytes > o.kv_widened_bytes ? kv_widened_bytes
                                              : o.kv_widened_bytes;
  }
};

struct QuantAttentionConfig {
  bool quantize_qkv = true;   ///< INT8 per-token Q/K and per-dim V
  AttnMapScheme map_scheme = AttnMapScheme::kBlockwiseMixed;
  int map_bits = 8;           ///< bitwidth for kPerRow / kBlockwise
  std::size_t block = 64;     ///< attention-map tile side
  bool use_reorder = true;    ///< apply the calibrated token reorder
  double budget_bits = 4.8;   ///< average-bitwidth budget for kBlockwiseMixed
  double alpha = 0.5;         ///< sensitivity blend (paper §III-B)
  bool output_bitwidth_aware = false;  ///< LDZ-truncated QKᵀ
  /// Compute 4-bit/2-bit OBA tiles directly on packed LDZ planes
  /// (qk_tile_i4p/i2q) instead of decoding each tile to an int8 scratch
  /// first.  Outputs are bitwise identical either way (the LDZ identity is
  /// exact); off keeps the decode-to-scratch path for A/B comparison.
  bool packed_subbyte_compute = true;
  /// Store quantization scales in FP16 (paper §IV-A: scales are FP16 and
  /// the vector unit accumulates in FP).  Honoured by the integer-exact
  /// path; the float pipeline keeps float scales (difference is below
  /// its own fake-quant noise).
  bool fp16_scales = false;
  float scale = -1.0F;        ///< softmax scale; -1 → 1/sqrt(head_dim)
  /// Execution engine.  Streamed by default; switch to kMaterialized when
  /// the full quantized map is needed (map inspection, oracle tests).
  AttnExecutor executor = AttnExecutor::kStreamed;
  /// What to do when NaN/Inf appears at an attention stage boundary
  /// (inputs, the post-softmax map, the output): fail fast with a
  /// NumericalError naming the boundary, zero the values and count them,
  /// or log and pass them through.  Both executors honour it; non-finite
  /// counts surface as the obs counter `numeric.nonfinite{stage=...}`.
  /// See docs/robustness.md.
  NonFinitePolicy nonfinite = NonFinitePolicy::kThrow;
};

/// Offline calibration artifacts for one (layer, head).
struct HeadCalibration {
  ReorderPlan plan;                   ///< identity when reorder is off
  std::optional<BitTable> bit_table;  ///< set for mixed / OBA paths
  double planned_avg_bits = 0.0;      ///< allocator outcome (mixed only)
};

/// Calibrate a head from a sample Q/K pair (paper: one offline pass; the
/// patterns are stable across timesteps and prompts).
HeadCalibration calibrate_head(const MatF& sample_q, const MatF& sample_k,
                               const TokenGrid& grid,
                               const QuantAttentionConfig& config);

/// Calibrate a head whose sequence is `prefix` text-conditioning tokens
/// followed by the video grid (CogVideoX: 226 + 17 550).  The reorder
/// keeps the prefix in place; the bitwidth table covers the full
/// (prefix + grid)² map.
HeadCalibration calibrate_head_with_prefix(const MatF& sample_q,
                                           const MatF& sample_k,
                                           const TokenGrid& grid,
                                           std::size_t prefix,
                                           const QuantAttentionConfig& config);

/// Result of a quantized attention forward pass.
struct QuantAttentionResult {
  MatF output;          ///< [tokens, head_dim], canonical order
  /// The (quantized) map in reordered space.  Only the materialized
  /// executor produces it; the streamed engine never builds the N×N map
  /// and leaves this empty.
  MatF map_reordered;
  double avg_map_bits = 16.0;  ///< achieved element-weighted bitwidth
  AttnExecStats exec;   ///< what the executor did (tiles, peak bytes)
};

/// Run the quantized pipeline for one head.  `q/k/v` are in canonical
/// token order; the result's output is too.
QuantAttentionResult quantized_attention(const MatF& q, const MatF& k,
                                         const MatF& v,
                                         const HeadCalibration& calib,
                                         const QuantAttentionConfig& config);

/// Named presets matching Table I rows.
QuantAttentionConfig config_fp16();
QuantAttentionConfig config_naive_int(int bits);
QuantAttentionConfig config_blockwise_int(int bits, std::size_t block = 64);
QuantAttentionConfig config_paro_int(int bits, std::size_t block = 64);
QuantAttentionConfig config_paro_mp(double budget_bits = 4.8,
                                    std::size_t block = 64,
                                    double alpha = 0.5);

}  // namespace paro
