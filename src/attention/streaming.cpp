#include "attention/streaming.hpp"

#include <cmath>
#include <limits>
#include <vector>

#include "attention/reference.hpp"
#include "common/error.hpp"

namespace paro {

MatF attention_streaming(const MatF& q, const MatF& k, const MatF& v,
                         std::size_t chunk, float scale) {
  PARO_CHECK_MSG(q.cols() == k.cols(), "q/k head_dim mismatch");
  PARO_CHECK_MSG(k.rows() == v.rows(), "k/v token count mismatch");
  PARO_CHECK_MSG(chunk > 0, "chunk must be positive");
  const float s = attention_scale(q, scale);
  const std::size_t n_q = q.rows();
  const std::size_t n_k = k.rows();
  const std::size_t dh = v.cols();

  MatF out(n_q, dh, 0.0F);
  // Per query row: running max m, running denominator l.
  std::vector<double> run_max(n_q, -std::numeric_limits<double>::infinity());
  std::vector<double> run_den(n_q, 0.0);
  // FP64 accumulators (the hardware uses FP32 + FP accumulate on the
  // vector unit; FP64 here keeps the test oracle sharp).
  std::vector<double> acc(n_q * dh, 0.0);

  std::vector<double> chunk_logits;
  for (std::size_t c0 = 0; c0 < n_k; c0 += chunk) {
    const std::size_t c1 = std::min(c0 + chunk, n_k);
    for (std::size_t i = 0; i < n_q; ++i) {
      const auto qrow = q.row(i);
      // Logits of this chunk.
      chunk_logits.clear();
      double chunk_max = -std::numeric_limits<double>::infinity();
      for (std::size_t j = c0; j < c1; ++j) {
        const auto krow = k.row(j);
        double dot = 0.0;
        for (std::size_t d = 0; d < qrow.size(); ++d) {
          dot += static_cast<double>(qrow[d]) * krow[d];
        }
        dot *= s;
        chunk_logits.push_back(dot);
        chunk_max = std::max(chunk_max, dot);
      }
      const double new_max = std::max(run_max[i], chunk_max);
      const double rescale =
          run_den[i] > 0.0 ? std::exp(run_max[i] - new_max) : 0.0;
      // Rescale the running accumulator and denominator.
      run_den[i] *= rescale;
      double* arow = acc.data() + i * dh;
      if (rescale != 1.0) {
        for (std::size_t d = 0; d < dh; ++d) {
          arow[d] *= rescale;
        }
      }
      // Fold in this chunk.
      for (std::size_t j = c0; j < c1; ++j) {
        const double w = std::exp(chunk_logits[j - c0] - new_max);
        run_den[i] += w;
        const auto vrow = v.row(j);
        for (std::size_t d = 0; d < dh; ++d) {
          arow[d] += w * vrow[d];
        }
      }
      run_max[i] = new_max;
    }
  }
  for (std::size_t i = 0; i < n_q; ++i) {
    const double inv = run_den[i] > 0.0 ? 1.0 / run_den[i] : 0.0;
    const double* arow = acc.data() + i * dh;
    auto orow = out.row(i);
    for (std::size_t d = 0; d < dh; ++d) {
      orow[d] = static_cast<float>(arow[d] * inv);
    }
  }
  return out;
}

}  // namespace paro
