// FP reference attention (the "FP16" baseline of Table I).
#pragma once

#include "tensor/matrix.hpp"

namespace paro {

/// softmax(q·kᵀ / sqrt(d)) — the attention map.
MatF attention_map(const MatF& q, const MatF& k, float scale = -1.0F);

/// Full attention: softmax(q·kᵀ/sqrt(d)) · v.
MatF attention_reference(const MatF& q, const MatF& k, const MatF& v,
                         float scale = -1.0F);

/// 1/sqrt(head_dim) unless the caller supplied a positive scale.
float attention_scale(const MatF& q, float scale);

}  // namespace paro
