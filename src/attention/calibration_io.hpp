// Serialization of calibration artifacts (reorder plans + bitwidth
// tables).
//
// The paper's deployment story is offline calibration → online inference;
// a production toolchain persists the calibration between the two, which
// makes the artifact boundary the critical robustness surface: a corrupted
// permutation or bitwidth table silently poisons every downstream quality
// number.  The format is a line-oriented text file, deliberately
// human-inspectable:
//
//   paro-calib v2
//   layers <L> heads <H>
//   head
//   order HWF
//   perm <n> i0 i1 ...
//   bits <rows> <cols> <block> b0 b1 ...   | bits none
//   avgbits <x>
//   crc <8 hex digits>                      (v2 only)
//   end
//
// A model-level file is a header plus one `head` record per (layer, head)
// in row-major order.  v2 adds a CRC-32 per head record, computed over the
// record's payload lines (order through avgbits); v1 files (no crc line)
// remain readable.  Loaders validate every record on entry — permutation
// bijectivity, bits ∈ {0,2,4,8}, grid/shape consistency, avgbits
// cross-check — and can either fail fast (kStrict) or quarantine bad head
// records and substitute the conservative paper-faithful fallback of an
// identity reorder + uniform INT8 map (kQuarantine), reporting per-head
// status instead of aborting the whole model.  See docs/robustness.md.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "attention/pipeline.hpp"

namespace paro {

/// Artifact versions this build writes / reads.
inline constexpr int kCalibVersionLatest = 2;

/// Shape knowledge the loader validates records against (0 = unknown).
/// When inference knows the model geometry, passing it here turns shape
/// drift (a calibration for a different model) into a load-time DataError
/// instead of a crash — and gives quarantine mode the geometry it needs to
/// build fallback records even when every stored record is damaged.
struct CalibExpectations {
  std::size_t tokens = 0;  ///< perm length == prefix + grid tokens
  std::size_t block = 0;   ///< BitTable tile side
};

/// What the loader does with an invalid head record.
enum class CalibRecovery {
  kStrict,      ///< throw (DataError/IoError) naming the (layer, head)
  kQuarantine,  ///< substitute fallback_head_calibration, record status
};

struct CalibLoadOptions {
  CalibRecovery recovery = CalibRecovery::kStrict;
  CalibExpectations expect;
};

/// Per-head load outcome (row-major over [layer][head]).
struct HeadLoadStatus {
  std::size_t layer = 0;
  std::size_t head = 0;
  bool ok = true;
  std::string error;  ///< empty when ok
};

/// What a load actually did — surfaced through the CLI JSON report and the
/// obs counters calib.load.heads_ok / calib.load.heads_fallback.
struct CalibLoadReport {
  int version = 0;
  std::size_t layers = 0;
  std::size_t heads = 0;  ///< per layer
  std::vector<HeadLoadStatus> head_status;
  std::size_t ok_count = 0;
  std::size_t fallback_count = 0;
  bool all_ok() const { return fallback_count == 0; }
};

/// Domain validation of one head record: permutation bijectivity, bit
/// domain, grid/shape/block consistency (against `expect` where known),
/// planned-avgbits cross-check against the stored table.  Throws DataError
/// describing the first violation.
void validate_head_calibration(const HeadCalibration& calib,
                               const CalibExpectations& expect = {});

/// The conservative degraded-mode substitute for a quarantined record:
/// identity reorder + uniform INT8 map (the paper's safe operating point —
/// no pattern assumptions, full-precision-class map).  `block` == 0 omits
/// the bit table.
HeadCalibration fallback_head_calibration(std::size_t tokens,
                                          std::size_t block);

/// Write one head's calibration record (v2 with checksum by default).
void write_head_calibration(std::ostream& os, const HeadCalibration& calib,
                            int version = kCalibVersionLatest);

/// Read one head's calibration record (expects the `head` keyword next;
/// accepts records with or without a crc line and verifies it if present).
HeadCalibration read_head_calibration(std::istream& is);

/// Whole-model table: [layer][head].
void write_calibration_table(
    std::ostream& os, const std::vector<std::vector<HeadCalibration>>& table,
    int version = kCalibVersionLatest);
std::vector<std::vector<HeadCalibration>> read_calibration_table(
    std::istream& is);
std::vector<std::vector<HeadCalibration>> read_calibration_table(
    std::istream& is, const CalibLoadOptions& options,
    CalibLoadReport* report);

/// Convenience: round-trip through files.  Saving is atomic (temp file +
/// rename), so a crash mid-write never leaves a half-written artifact at
/// `path`.
void save_calibration_file(
    const std::string& path,
    const std::vector<std::vector<HeadCalibration>>& table);
std::vector<std::vector<HeadCalibration>> load_calibration_file(
    const std::string& path);
std::vector<std::vector<HeadCalibration>> load_calibration_file(
    const std::string& path, const CalibLoadOptions& options,
    CalibLoadReport* report);

}  // namespace paro
