// Serialization of calibration artifacts (reorder plans + bitwidth
// tables).
//
// The paper's deployment story is offline calibration → online inference;
// a production toolchain persists the calibration between the two.  The
// format is a line-oriented text file ("paro-calib v1"), deliberately
// human-inspectable:
//
//   paro-calib v1
//   head
//   order HWF
//   perm <n> i0 i1 ...
//   bits <rows> <cols> <block> b0 b1 ...   | bits none
//   avgbits <x>
//   end
//
// A model-level file is just a header plus one `head` record per
// (layer, head) in row-major order.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "attention/pipeline.hpp"

namespace paro {

/// Write one head's calibration record.
void write_head_calibration(std::ostream& os, const HeadCalibration& calib);

/// Read one head's calibration record (expects the `head` keyword next).
HeadCalibration read_head_calibration(std::istream& is);

/// Whole-model table: [layer][head].
void write_calibration_table(
    std::ostream& os,
    const std::vector<std::vector<HeadCalibration>>& table);
std::vector<std::vector<HeadCalibration>> read_calibration_table(
    std::istream& is);

/// Convenience: round-trip through files.
void save_calibration_file(
    const std::string& path,
    const std::vector<std::vector<HeadCalibration>>& table);
std::vector<std::vector<HeadCalibration>> load_calibration_file(
    const std::string& path);

}  // namespace paro
