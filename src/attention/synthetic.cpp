#include "attention/synthetic.hpp"

#include <cmath>

#include "tensor/random.hpp"

namespace paro {

HeadQKV generate_head(const TokenGrid& grid, const SyntheticHeadSpec& spec,
                      std::size_t head_dim, Rng& rng) {
  PARO_CHECK_MSG(head_dim >= 8 && head_dim % 4 == 0,
                 "head_dim must be a multiple of 4 and >= 8");
  const std::size_t n = grid.num_tokens();
  const std::size_t d_pos = head_dim / 2;        // cos/sin feature pairs
  const std::size_t d_content = head_dim - d_pos;
  const std::size_t m = d_pos / 2;               // number of frequencies

  // Rank of every canonical token in the head's locality ordering.
  const auto perm = grid.permutation(spec.locality_order);
  std::vector<double> rank(n);
  for (std::size_t pos = 0; pos < n; ++pos) {
    rank[perm[pos]] = static_cast<double>(pos) / static_cast<double>(n);
  }

  // Random Fourier frequencies for a Gaussian kernel of bandwidth
  // locality_width (in normalised rank units).
  std::vector<double> freq(m);
  for (double& f : freq) {
    f = rng.normal(0.0, 1.0 / std::max(spec.locality_width, 1e-4));
  }

  HeadQKV out;
  out.q = MatF(n, head_dim);
  out.k = MatF(n, head_dim);
  out.v = random_normal(n, head_dim, rng);

  // The reference attention divides logits by sqrt(d); bake d^(1/4) into
  // both Q and K so the *scaled* logits carry the configured gains.
  const double dim_comp = std::pow(static_cast<double>(head_dim), 0.25);
  const double pos_scale =
      dim_comp * std::sqrt(spec.pattern_gain / static_cast<double>(m));
  const double content_scale =
      dim_comp * std::sqrt(spec.content_gain) /
      std::pow(static_cast<double>(d_content), 0.25);
  const double global_scale = dim_comp * std::sqrt(spec.global_gain);

  // Choose the global "sink" keys.
  std::vector<bool> is_global(n, false);
  const auto num_global = static_cast<std::size_t>(
      std::llround(spec.global_fraction * static_cast<double>(n)));
  for (std::size_t g = 0; g < num_global; ++g) {
    is_global[rng.uniform_index(n)] = true;
  }

  for (std::size_t i = 0; i < n; ++i) {
    auto qrow = out.q.row(i);
    auto krow = out.k.row(i);
    // Positional features (identical construction for Q and K so the dot
    // product realises the shift-invariant kernel).
    for (std::size_t j = 0; j < m; ++j) {
      const double phase = freq[j] * rank[i];
      qrow[2 * j] = static_cast<float>(pos_scale * std::cos(phase));
      qrow[2 * j + 1] = static_cast<float>(pos_scale * std::sin(phase));
      krow[2 * j] = static_cast<float>(pos_scale * std::cos(phase));
      krow[2 * j + 1] = static_cast<float>(pos_scale * std::sin(phase));
    }
    // Content features: independent noise.
    for (std::size_t j = d_pos; j < head_dim; ++j) {
      qrow[j] = static_cast<float>(content_scale * rng.normal());
      krow[j] = static_cast<float>(content_scale * rng.normal());
    }
    // Global sink: boost this key along the shared direction (the first
    // content coordinate), which every query also carries.
    qrow[d_pos] += static_cast<float>(global_scale);
    if (is_global[i]) {
      krow[d_pos] += static_cast<float>(global_scale);
    }
  }
  return out;
}

MatF positional_features(const TokenGrid& grid, const AxisOrder& order,
                         double width, double gain, std::size_t feature_dim,
                         Rng& rng, std::size_t softmax_dim) {
  PARO_CHECK_MSG(feature_dim >= 2 && feature_dim % 2 == 0,
                 "feature_dim must be even and >= 2");
  const std::size_t n = grid.num_tokens();
  const std::size_t m = feature_dim / 2;
  const std::size_t d_soft = softmax_dim == 0 ? feature_dim : softmax_dim;

  const auto perm = grid.permutation(order);
  std::vector<double> rank(n);
  for (std::size_t pos = 0; pos < n; ++pos) {
    rank[perm[pos]] = static_cast<double>(pos) / static_cast<double>(n);
  }
  std::vector<double> freq(m);
  for (double& f : freq) {
    f = rng.normal(0.0, 1.0 / std::max(width, 1e-4));
  }
  const double amp = std::pow(static_cast<double>(d_soft), 0.25) *
                     std::sqrt(gain / static_cast<double>(m));
  MatF p(n, feature_dim);
  for (std::size_t i = 0; i < n; ++i) {
    auto row = p.row(i);
    for (std::size_t j = 0; j < m; ++j) {
      const double phase = freq[j] * rank[i];
      row[2 * j] = static_cast<float>(amp * std::cos(phase));
      row[2 * j + 1] = static_cast<float>(amp * std::sin(phase));
    }
  }
  return p;
}

std::vector<SyntheticHeadSpec> default_head_specs(std::size_t num_heads,
                                                  Rng& rng) {
  std::vector<SyntheticHeadSpec> specs;
  specs.reserve(num_heads);
  const auto& orders = all_axis_orders();
  for (std::size_t h = 0; h < num_heads; ++h) {
    SyntheticHeadSpec spec;
    spec.locality_order = orders[h % orders.size()];
    // Log-uniform widths in [0.01, 0.06]: a mix of sharp and broad heads.
    spec.locality_width = 0.01 * std::pow(6.0, rng.uniform());
    spec.pattern_gain = rng.uniform(4.0, 8.0);
    spec.content_gain = rng.uniform(0.5, 1.5);
    spec.global_fraction = rng.uniform(0.002, 0.01);
    spec.global_gain = rng.uniform(2.0, 4.0);
    specs.push_back(spec);
  }
  return specs;
}

}  // namespace paro
