#include "attention/reference.hpp"

#include <cmath>

#include "tensor/ops.hpp"

namespace paro {

float attention_scale(const MatF& q, float scale) {
  return scale > 0.0F ? scale
                      : 1.0F / std::sqrt(static_cast<float>(q.cols()));
}

MatF attention_map(const MatF& q, const MatF& k, float scale) {
  PARO_CHECK_MSG(q.cols() == k.cols(), "q/k head_dim mismatch");
  return softmax_rows(matmul_nt(q, k), attention_scale(q, scale));
}

MatF attention_reference(const MatF& q, const MatF& k, const MatF& v,
                         float scale) {
  PARO_CHECK_MSG(k.rows() == v.rows(), "k/v token count mismatch");
  return matmul(attention_map(q, k, scale), v);
}

}  // namespace paro
