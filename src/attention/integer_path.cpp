#include "attention/integer_path.hpp"

#include <cmath>
#include <limits>
#include <span>
#include <vector>

#include "attention/reference.hpp"
#include "common/arena.hpp"
#include "common/fixedpoint.hpp"
#include "common/fp16.hpp"
#include "common/thread_pool.hpp"
#include "quant/blockwise.hpp"
#include "quant/granularity.hpp"
#include "quant/tile_visitor.hpp"

namespace paro {

namespace {

/// Shard arenas for the map-quant tile gather: retained across calls so
/// repeated integer-path runs stop allocating per-chunk scratch vectors.
/// Leaked intentionally (thread-exit order).
ShardedArena& map_tile_arena() {
  static ShardedArena* arena = new ShardedArena();
  return *arena;
}

/// Per-column symmetric INT8 quantization of V (paper: "per-dimension").
struct QuantizedV {
  MatI8 codes;                 // [tokens, head_dim]
  std::vector<float> scales;   // per column
};

QuantizedV quantize_v_per_column(const MatF& v) {
  QuantizedV out;
  out.codes = MatI8(v.rows(), v.cols());
  out.scales.resize(v.cols());
  for (std::size_t c = 0; c < v.cols(); ++c) {
    float amax = 0.0F;
    for (std::size_t r = 0; r < v.rows(); ++r) {
      amax = std::max(amax, std::abs(v(r, c)));
    }
    const float scale = std::max(amax / 127.0F, 1e-12F);
    out.scales[c] = scale;  // optionally rounded by the caller
    for (std::size_t r = 0; r < v.rows(); ++r) {
      out.codes(r, c) = static_cast<std::int8_t>(
          std::lround(v(r, c) / scale));
    }
  }
  return out;
}

}  // namespace

IntegerAttentionResult integer_attention(const MatF& q, const MatF& k,
                                         const MatF& v,
                                         const HeadCalibration& calib,
                                         const QuantAttentionConfig& config) {
  PARO_CHECK_MSG(config.map_scheme == AttnMapScheme::kBlockwise ||
                     config.map_scheme == AttnMapScheme::kBlockwiseMixed,
                 "integer path implements the block-wise schemes");
  PARO_CHECK_MSG(config.quantize_qkv,
                 "integer path requires INT8 Q/K/V");
  const float scale = attention_scale(q, config.scale);
  const std::size_t n = q.rows();
  const std::size_t dh = q.cols();

  const MatF qr = calib.plan.apply_rows(q);
  const MatF kr = calib.plan.apply_rows(k);
  const MatF vr = calib.plan.apply_rows(v);

  QuantizedI8 q8 = quantize_rows_i8(qr, 8);
  QuantizedI8 k8 = quantize_rows_i8(kr, 8);
  if (config.fp16_scales) {
    for (auto& p : q8.row_params) p.scale = fp16_round(p.scale);
    for (auto& p : k8.row_params) p.scale = fp16_round(p.scale);
  }

  const BlockGrid grid(n, n, config.block);
  if (config.map_scheme == AttnMapScheme::kBlockwiseMixed ||
      config.output_bitwidth_aware) {
    PARO_CHECK_MSG(calib.bit_table.has_value(),
                   "mixed/OBA path requires a calibrated BitTable");
  }
  // Effective bits of every tile: the BitTable for the mixed scheme, the
  // uniform map bitwidth otherwise.
  const TileVisitor visitor =
      config.map_scheme == AttnMapScheme::kBlockwiseMixed
          ? TileVisitor(*calib.bit_table)
          : TileVisitor(grid, config.map_bits);

  // --- QKᵀ: int8 MACs into int32, per-block LDZ when OBA ---------------
  // Destination tiles are disjoint regions of `logits`, and every dot
  // product is integer-exact, so the parallel sweep is bitwise-identical
  // to the serial one.
  MatF logits(n, n, 0.0F);
  visitor.parallel_for_each_tile([&](const TileRef& t) {
    const auto e = t.extent;
    const int bits = t.bits;
    if (config.output_bitwidth_aware && bits == 0) {
      for (std::size_t i = e.r0; i < e.r1; ++i) {
        for (std::size_t j = e.c0; j < e.c1; ++j) {
          logits(i, j) = -std::numeric_limits<float>::infinity();
        }
      }
      return;
    }
    for (std::size_t i = e.r0; i < e.r1; ++i) {
      const auto qrow = q8.codes.row(i);
      const float sq = q8.row_params[i].scale;
      for (std::size_t j = e.c0; j < e.c1; ++j) {
        const auto krow = k8.codes.row(j);
        std::int64_t acc = 0;
        if (config.output_bitwidth_aware && bits < 8) {
          for (std::size_t c = 0; c < dh; ++c) {
            const LdzCode code = ldz_truncate(krow[c], bits);
            acc += ldz_restore(
                static_cast<std::int64_t>(code.mantissa) * qrow[c],
                code.shift);
          }
        } else {
          for (std::size_t c = 0; c < dh; ++c) {
            acc += static_cast<std::int64_t>(qrow[c]) * krow[c];
          }
        }
        logits(i, j) =
            static_cast<float>(acc) * sq * k8.row_params[j].scale;
      }
    }
  });

  // --- softmax on the vector unit (FP), tolerant of skipped blocks -----
  MatF attn(n, n, 0.0F);
  for (std::size_t i = 0; i < n; ++i) {
    const auto in = logits.row(i);
    auto dst = attn.row(i);
    float maxv = -std::numeric_limits<float>::infinity();
    for (const float x : in) {
      if (x != -std::numeric_limits<float>::infinity()) {
        maxv = std::max(maxv, x * scale);
      }
    }
    double sum = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
      if (in[j] == -std::numeric_limits<float>::infinity()) continue;
      const double ev = std::exp(static_cast<double>(in[j] * scale - maxv));
      dst[j] = static_cast<float>(ev);
      sum += ev;
    }
    const float inv = sum > 0.0 ? static_cast<float>(1.0 / sum) : 0.0F;
    for (float& x : dst) x *= inv;
  }

  // --- block-wise quantization to integer CODES -------------------------
  IntegerAttentionResult result;
  result.map_codes = Matrix<std::int32_t>(n, n, 0);
  // Per-tile (scale, zero) for the AttnV rescale.  Each tile writes its
  // own params slot and a disjoint codes region.
  std::vector<QuantParams> tile_params(grid.num_blocks());
  visitor.parallel_for_each_tile_sharded(
      map_tile_arena(), [&](const TileRef& t, Arena& arena) {
        const auto e = t.extent;
        QuantParams p;
        p.bits = t.bits;
        if (t.bits == 0) {
          tile_params[t.index] = p;
          return;  // codes stay 0, tile skipped
        }
        const auto scratch = arena.alloc_span<float>(e.count());
        std::size_t kk = 0;
        for (std::size_t i = e.r0; i < e.r1; ++i) {
          for (std::size_t j = e.c0; j < e.c1; ++j) {
            scratch[kk++] = attn(i, j);
          }
        }
        const std::span<const float> tile(scratch.data(), scratch.size());
        p = calibrate_minmax(tile, t.bits);
        if (config.fp16_scales) {
          p.scale = fp16_round(p.scale);
        }
        tile_params[t.index] = p;
        for (std::size_t i = e.r0; i < e.r1; ++i) {
          for (std::size_t j = e.c0; j < e.c1; ++j) {
            result.map_codes(i, j) = quantize_value(attn(i, j), p);
          }
        }
      });
  // count·bits products are small integers, exact in double at any
  // association — the reduce order cannot change the value.
  const double weighted_bits = visitor.ordered_reduce_tiles(
      0.0,
      [](const TileRef& t) {
        return static_cast<double>(t.extent.count()) * t.bits;
      },
      [](double a, double b) { return a + b; });
  result.avg_map_bits =
      weighted_bits / static_cast<double>(n) / static_cast<double>(n);

  // --- AttnV: integer MACs per tile + zero-point correction -------------
  QuantizedV v8 = quantize_v_per_column(vr);
  if (config.fp16_scales) {
    for (float& sv : v8.scales) sv = fp16_round(sv);
  }
  // Per (block-column, channel) sums of V codes for the −z correction.
  std::vector<std::vector<std::int64_t>> v_colsum(
      grid.block_cols(), std::vector<std::int64_t>(dh, 0));
  for (std::size_t bc = 0; bc < grid.block_cols(); ++bc) {
    const auto e = grid.extent(0, bc);
    for (std::size_t j = e.c0; j < e.c1; ++j) {
      const auto vrow = v8.codes.row(j);
      for (std::size_t c = 0; c < dh; ++c) {
        v_colsum[bc][c] += vrow[c];
      }
    }
  }

  // Block rows own disjoint output rows; within one block row the tiles
  // accumulate in ascending bc, so each output element keeps the serial
  // left-to-right FP association at any thread count.
  MatF out_r(n, dh, 0.0F);
  global_pool().for_chunks(
      0, grid.block_rows(), 1,
      [&](std::size_t br0, std::size_t br1, std::size_t /*chunk*/) {
        for (std::size_t br = br0; br < br1; ++br) {
          visitor.for_each_tile_in_row(br, [&](const TileRef& t) {
            const auto e = t.extent;
            const QuantParams& p = tile_params[t.index];
            if (p.bits == 0) return;  // dispatcher bypass
            for (std::size_t i = e.r0; i < e.r1; ++i) {
              auto orow = out_r.row(i);
              for (std::size_t c = 0; c < dh; ++c) {
                std::int64_t acc = 0;
                for (std::size_t j = e.c0; j < e.c1; ++j) {
                  acc += static_cast<std::int64_t>(result.map_codes(i, j)) *
                         v8.codes(j, c);
                }
                acc -=
                    static_cast<std::int64_t>(p.zero_point) * v_colsum[t.bc][c];
                // Vector unit: FP rescale + accumulate across tiles.
                orow[c] += p.scale * v8.scales[c] * static_cast<float>(acc);
              }
            }
          });
        }
      });

  result.output = calib.plan.invert_rows(out_r);
  return result;
}

}  // namespace paro
