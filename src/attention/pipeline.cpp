#include "attention/pipeline.hpp"

#include <cmath>
#include <limits>

#include "attention/fused_executor.hpp"
#include "attention/reference.hpp"
#include "attention/session.hpp"
#include "common/fault.hpp"
#include "common/numeric_guard.hpp"
#include "common/thread_pool.hpp"
#include "kernels/kernels.hpp"
#include "kernels/pack.hpp"
#include "mixedprec/allocator.hpp"
#include "mixedprec/sensitivity.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "obs/working_set.hpp"
#include "quant/blockwise.hpp"
#include "quant/granularity.hpp"
#include "quant/tile_visitor.hpp"
#include "tensor/ops.hpp"

namespace paro {

namespace {

/// Contiguous per-row scale vector (kernel epilogue operand).
std::vector<float> row_scales(const QuantizedI8& q) {
  std::vector<float> s;
  s.reserve(q.row_params.size());
  for (const QuantParams& p : q.row_params) s.push_back(p.scale);
  return s;
}

/// Reconstruct FP logits from INT8 Q/K with optional per-block LDZ
/// truncation of the K operand (paper Fig. 5b).  Blocks whose destination
/// bitwidth is 0 are skipped: their logits are set to -inf so softmax
/// assigns them exactly zero mass, matching the dispatcher bypass.
MatF logits_from_int8(const QuantizedI8& q8, const QuantizedI8& k8,
                      const BitTable* table, bool output_bitwidth_aware,
                      bool packed_subbyte_compute) {
  const std::size_t n_q = q8.codes.rows();
  const std::size_t n_k = k8.codes.rows();
  const std::size_t d = q8.codes.cols();
  MatF logits(n_q, n_k);
  if (n_q == 0 || n_k == 0) return logits;
  const std::vector<float> q_scales = row_scales(q8);
  const std::vector<float> k_scales = row_scales(k8);
  const std::int8_t* kbase = k8.codes.row(0).data();

  if (!output_bitwidth_aware || table == nullptr) {
    // Bands of the logit matrix are independent; integer dot products are
    // exact, so parallel bands are bitwise-identical to serial ones.
    global_pool().for_chunks(0, n_q, 8, [&](std::size_t i0, std::size_t i1,
                                            std::size_t /*chunk*/) {
      kernels::qk_tile_i8_scaled(q8.codes.row(i0).data(), d, i1 - i0, kbase,
                                 d, n_k, d, q_scales.data() + i0,
                                 k_scales.data(), logits.row(i0).data(), n_k);
    });
    return logits;
  }

  // Output-bitwidth-aware path: per destination block, the LDZ unit keeps
  // only `bits` significant magnitude bits of every K operand.  The K codes
  // are packed once per used sub-8 bitwidth; tiles decode their rows and
  // run the same int8 tile kernel as the streamed executor — the identity
  // (mantissa * q) << shift == (mantissa << shift) * q makes the decoded
  // dot bit-exact vs the per-product PE + shifter formulation.
  PARO_CHECK_MSG(table->grid().rows() == n_q && table->grid().cols() == n_k,
                 "bit table does not match QKᵀ shape");
  kernels::PackedLdzK packed_k;
  {
    std::vector<int> plane_bits;
    for (const int b : kBitChoices) {
      if (b > 0 && b < 8 && table->tiles_at(b) > 0) plane_bits.push_back(b);
    }
    packed_k.build(kbase, n_k, d, plane_bits);
  }
  const TileVisitor visitor(*table);
  // Destination tiles are disjoint regions of `logits`; fan out on the
  // flattened tile index with one decoded-K scratch per chunk.
  visitor.parallel_for_each_tile_with(
      [&] {
        // Sized once per chunk to the widest possible tile; every tile
        // decodes into a prefix.  (The old lazy per-tile resize churned a
        // reallocation on each ragged-edge width change.)
        return std::vector<std::int8_t>(
            std::min(table->grid().block(), n_k) * d);
      },
      [&](const TileRef& t, std::vector<std::int8_t>& ktile) {
        const auto e = t.extent;
        if (t.bits == 0) {
          for (std::size_t i = e.r0; i < e.r1; ++i) {
            auto lrow = logits.row(i);
            for (std::size_t j = e.c0; j < e.c1; ++j) {
              lrow[j] = -std::numeric_limits<float>::infinity();
            }
          }
          return;
        }
        if (packed_subbyte_compute && (t.bits == 4 || t.bits == 2)) {
          // Same packed-direct dispatch as the streamed executor's pass 1:
          // bitwise identical to decode-then-int8-dot, no scratch traffic.
          const kernels::PackedLdzK::PlaneView pv = packed_k.plane(t.bits);
          auto* kernel = t.bits == 4 ? &kernels::qk_tile_i4p_scaled
                                     : &kernels::qk_tile_i2q_scaled;
          kernel(q8.codes.row(e.r0).data(), d, e.r1 - e.r0,
                 pv.mag + e.c0 * pv.mag_stride, pv.mag_stride,
                 pv.ss + e.c0 * pv.ss_stride, pv.ss_stride, e.c1 - e.c0, d,
                 q_scales.data() + e.r0, k_scales.data() + e.c0,
                 logits.row(e.r0).data() + e.c0, n_k);
          return;
        }
        const std::int8_t* ktp = kbase + e.c0 * d;
        if (t.bits < 8) {
          packed_k.decode_rows(t.bits, e.c0, e.c1, ktile.data());
          ktp = ktile.data();
        }
        kernels::qk_tile_i8_scaled(
            q8.codes.row(e.r0).data(), d, e.r1 - e.r0, ktp, d, e.c1 - e.c0, d,
            q_scales.data() + e.r0, k_scales.data() + e.c0,
            logits.row(e.r0).data() + e.c0, n_k);
      },
      /*grain=*/4);
  return logits;
}

/// Softmax that tolerates -inf entries (skipped blocks) and rows that are
/// entirely skipped (degenerates to uniform over the row — never happens
/// with a sane allocation, but must not produce NaN).
MatF softmax_rows_skipaware(const MatF& logits, float scale) {
  MatF out(logits.rows(), logits.cols(), 0.0F);
  // Row-parallel: each row's max/exp/normalize touches only its own data,
  // and the row-internal accumulation order never changes.
  global_pool().parallel_for(0, logits.rows(), 8, [&](std::size_t i) {
    const auto in = logits.row(i);
    auto dst = out.row(i);
    const float maxv = kernels::row_max_scaled_skipinf(
        in.data(), in.size(), scale,
        -std::numeric_limits<float>::infinity());
    if (maxv == -std::numeric_limits<float>::infinity()) {
      const float u = 1.0F / static_cast<float>(in.size());
      for (float& v : dst) v = u;
      return;
    }
    // -inf entries pass straight through exp_sum_segment: exp(-inf) is an
    // exact +0.0 (the old explicit dst[j] = 0), and sum += 0.0 leaves the
    // serial double chain bit-identical.
    std::copy(in.begin(), in.end(), dst.begin());
    const double sum =
        kernels::exp_sum_segment(dst.data(), dst.size(), scale, maxv, 0.0);
    const float inv = sum > 0.0 ? static_cast<float>(1.0 / sum) : 0.0F;
    kernels::scale_inplace(dst.data(), dst.size(), inv);
  });
  return out;
}

/// Bump the non-finite counter for one stage boundary, then apply the
/// policy (which may throw).  The counter records what was observed, so it
/// is bumped even when kThrow aborts the operation a line later.
void record_nonfinite(std::size_t count, const char* stage) {
  obs::MetricsRegistry::global()
      .counter("numeric.nonfinite", {{"stage", stage}})
      .add(static_cast<double>(count));
}

/// Input-boundary guard.  The fast path for healthy data is a single
/// read-only scan — no copy, no registry traffic — which is what keeps the
/// guarded pipeline bitwise identical to an unguarded one.  Only when a
/// non-finite value is present AND the policy is kSanitize does the input
/// get copied (into `own`) so the caller's matrix is never mutated.
void guard_input(const MatF*& ptr, MatF& own, NonFinitePolicy policy,
                 const char* which) {
  const std::size_t count = count_nonfinite(ptr->flat());
  if (count == 0) return;
  record_nonfinite(count, "input");
  const std::string context = std::string("attention input ") + which;
  if (policy == NonFinitePolicy::kSanitize) {
    if (ptr != &own) {
      own = *ptr;
      ptr = &own;
    }
    guard_nonfinite(own.flat(), policy, context);
  } else {
    guard_nonfinite_readonly(ptr->flat(), policy, context);
  }
}

/// Map-boundary guard (post-softmax values are probabilities; anything
/// non-finite here is numerical failure regardless of the input state).
void guard_map(std::span<float> data, NonFinitePolicy policy,
               const std::string& context) {
  const std::size_t count = count_nonfinite(data);
  if (count == 0) return;
  record_nonfinite(count, "map");
  guard_nonfinite(data, policy, context);
}

/// Poke one quiet NaN into `data` at a seed-chosen index (the
/// attn.*.nonfinite fault sites).
void inject_nan(std::span<float> data, std::uint64_t seed) {
  if (data.empty()) return;
  data[seed % data.size()] = std::numeric_limits<float>::quiet_NaN();
}

/// Per-head calibration telemetry: one `calibrate.heads` tick plus the
/// tile-per-bitwidth counts of the head's BitTable (the Fig. 8 artifact).
void record_head_metrics(const HeadCalibration& calib) {
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("calibrate.heads").add(1.0);
  if (!calib.bit_table.has_value()) return;
  reg.stats("calibrate.avg_map_bits").record(calib.planned_avg_bits);
  for (int b = 0; b < kNumBitChoices; ++b) {
    const std::size_t tiles = calib.bit_table->tiles_at(kBitChoices[b]);
    if (tiles == 0) continue;
    reg.counter("calibrate.tiles_bits",
                {{"bits", std::to_string(kBitChoices[b])}})
        .add(static_cast<double>(tiles));
  }
}

/// Shared body of calibrate_head / calibrate_head_with_prefix: `prefix`
/// text-conditioning tokens (0 for the plain case) ahead of the video
/// grid, plan selection, and the BitTable-construction branch.
HeadCalibration calibrate_head_impl(const MatF& sample_q,
                                    const MatF& sample_k,
                                    const TokenGrid& grid, std::size_t prefix,
                                    const QuantAttentionConfig& config) {
  PARO_SPAN("calibrate.head");
  const std::size_t n = prefix + grid.num_tokens();
  PARO_CHECK_MSG(sample_q.rows() == n,
                 "sample does not match prefix + token grid");
  HeadCalibration calib;
  const MatF sample_map = attention_map(sample_q, sample_k, config.scale);
  if (!config.use_reorder) {
    calib.plan = ReorderPlan::identity(n);
  } else if (prefix == 0) {
    calib.plan = calibrate_plan(sample_map, grid, config.block);
  } else {
    calib.plan =
        calibrate_plan_with_prefix(sample_map, grid, prefix, config.block);
  }

  const bool needs_table =
      config.map_scheme == AttnMapScheme::kBlockwiseMixed ||
      config.output_bitwidth_aware;
  if (needs_table) {
    const MatF reordered = calib.plan.apply_map(sample_map);
    const BlockGrid bgrid(reordered.rows(), reordered.cols(), config.block);
    if (config.map_scheme == AttnMapScheme::kBlockwiseMixed) {
      const auto stats = collect_block_stats(reordered, config.block);
      const auto sens = compute_sensitivity(stats, config.alpha);
      const Allocation alloc = allocate_lagrangian(sens, config.budget_bits);
      calib.bit_table = make_bittable(bgrid, alloc.bits);
      calib.planned_avg_bits = alloc.average_bitwidth;
    } else {
      // OBA with a uniform map bitwidth: a uniform table.
      const int bits = config.map_scheme == AttnMapScheme::kNone
                           ? 8
                           : config.map_bits;
      calib.bit_table = BitTable(bgrid, bits);
      calib.planned_avg_bits = bits;
    }
  }
  record_head_metrics(calib);
  return calib;
}

/// Tile tallies of the materialized run (the same classification the
/// streaming engine tracks live) so both executors report AttnExecStats.
AttnExecStats materialized_exec_stats(std::size_t n, const BitTable* table,
                                      const QuantAttentionConfig& config) {
  const bool mixed = config.map_scheme == AttnMapScheme::kBlockwiseMixed;
  const bool block_quant =
      config.map_scheme == AttnMapScheme::kBlockwise || mixed;
  const bool oba_active =
      config.quantize_qkv && config.output_bitwidth_aware && table != nullptr;
  const TileVisitor visitor = table != nullptr
                                  ? TileVisitor(*table)
                                  : TileVisitor(BlockGrid(n, n, config.block),
                                                8);
  AttnExecStats exec;
  exec.tiles_total = visitor.num_tiles();
  visitor.for_each_tile([&](const TileRef& t) {
    const int map_bits_tile = mixed ? t.bits : config.map_bits;
    const bool skip_qk = oba_active && t.bits == 0;
    const bool zero_map = block_quant && map_bits_tile == 0;
    if (skip_qk || zero_map) {
      ++exec.tiles_skipped;
    } else {
      ++exec.tiles_live;
    }
    if (!skip_qk) ++exec.qk_tiles_computed;
    ++exec.tiles_per_bits[static_cast<std::size_t>(
        bit_choice_index(table != nullptr ? t.bits : 8))];
  });
  return exec;
}

/// The materialized engine: full N×N logits, softmax, and quantized map.
/// O(N²) memory — kept as the bit-exact oracle for the streaming engine
/// and as the only path that returns `map_reordered`.
QuantAttentionResult materialized_quantized_attention(
    const MatF& q, const MatF& k, const MatF& v, const HeadCalibration& calib,
    const QuantAttentionConfig& config) {
  const std::size_t n = q.rows();
  const float scale = attention_scale(q, config.scale);
  obs::WorkingSetMeter meter;
  const std::size_t nd_bytes = q.size() * sizeof(float);
  const std::size_t nn_bytes = n * n * sizeof(float);

  const MatF qr = calib.plan.apply_rows(q);
  const MatF kr = calib.plan.apply_rows(k);
  const MatF vr = calib.plan.apply_rows(v);
  meter.acquire(3 * nd_bytes);

  const BitTable* table =
      calib.bit_table.has_value() ? &*calib.bit_table : nullptr;

  // --- QKᵀ ---
  MatF logits;
  if (config.quantize_qkv) {
    const QuantizedI8 q8 = quantize_rows_i8(qr, 8);
    const QuantizedI8 k8 = quantize_rows_i8(kr, 8);
    meter.acquire(2 * (q8.codes.size() * sizeof(std::int8_t) +
                       q8.row_params.size() * sizeof(QuantParams)));
    logits = logits_from_int8(q8, k8, table, config.output_bitwidth_aware,
                              config.packed_subbyte_compute);
    meter.acquire(nn_bytes);
    meter.release(2 * (q8.codes.size() * sizeof(std::int8_t) +
                       q8.row_params.size() * sizeof(QuantParams)));
  } else {
    logits = matmul_nt(qr, kr);
    meter.acquire(nn_bytes);
  }

  // Fault site: numerical blow-up inside QKᵀ (overflow, bad scale).
  {
    std::uint64_t seed = 0;
    if (PARO_FAULT_FIRE("attn.logits.nonfinite", &seed)) {
      inject_nan(logits.flat(), seed);
    }
  }

  // --- softmax (vector unit, FP) ---
  MatF attn = softmax_rows_skipaware(logits, scale);
  meter.acquire(nn_bytes);
  guard_map(attn.flat(), config.nonfinite, "attention map (post-softmax)");

  // --- attention-map quantization ---
  QuantAttentionResult result;
  result.avg_map_bits = 16.0;
  switch (config.map_scheme) {
    case AttnMapScheme::kNone:
      break;
    case AttnMapScheme::kPerRow: {
      global_pool().parallel_for(0, attn.rows(), 8, [&](std::size_t r) {
        fake_quant_group(attn.row(r), config.map_bits, /*symmetric=*/false);
      });
      result.avg_map_bits = config.map_bits;
      break;
    }
    case AttnMapScheme::kBlockwise: {
      meter.acquire(nn_bytes);  // quantized copy coexists with the source
      attn = fake_quant_blockwise(attn, config.block, config.map_bits);
      meter.release(nn_bytes);
      result.avg_map_bits = config.map_bits;
      break;
    }
    case AttnMapScheme::kBlockwiseMixed: {
      PARO_CHECK_MSG(calib.bit_table.has_value(),
                     "mixed scheme requires a calibrated BitTable");
      meter.acquire(nn_bytes);
      attn = fake_quant_blockwise_mixed(attn, *calib.bit_table);
      meter.release(nn_bytes);
      result.avg_map_bits = calib.bit_table->average_bitwidth();
      break;
    }
  }

  // --- AttnV ---
  MatF v_used = vr;
  meter.acquire(nd_bytes);
  if (config.quantize_qkv) {
    v_used = fake_quant_matrix(vr, Granularity::kPerColumn, 8,
                               /*symmetric=*/true);
  }
  const MatF out_reordered = matmul(attn, v_used);
  meter.acquire(nd_bytes);

  meter.acquire(nd_bytes);  // canonical-order output
  result.output = calib.plan.invert_rows(out_reordered);
  result.map_reordered = std::move(attn);

  result.exec = materialized_exec_stats(n, table, config);
  result.exec.peak_bytes = meter.peak();

  auto& reg = obs::MetricsRegistry::global();
  reg.counter("attn.tiles_skipped")
      .add(static_cast<double>(result.exec.tiles_skipped));
  reg.counter("attn.tiles_live")
      .add(static_cast<double>(result.exec.tiles_live));
  obs::publish_peak_working_set("materialized", result.exec.peak_bytes);
  return result;
}

}  // namespace

HeadCalibration calibrate_head(const MatF& sample_q, const MatF& sample_k,
                               const TokenGrid& grid,
                               const QuantAttentionConfig& config) {
  return calibrate_head_impl(sample_q, sample_k, grid, /*prefix=*/0, config);
}

HeadCalibration calibrate_head_with_prefix(
    const MatF& sample_q, const MatF& sample_k, const TokenGrid& grid,
    std::size_t prefix, const QuantAttentionConfig& config) {
  return calibrate_head_impl(sample_q, sample_k, grid, prefix, config);
}

QuantAttentionResult quantized_attention(const MatF& q, const MatF& k,
                                         const MatF& v,
                                         const HeadCalibration& calib,
                                         const QuantAttentionConfig& config) {
  PARO_SPAN("attn.quantized");
  obs::MetricsRegistry::global().counter("attn.quantized_calls").add(1.0);
  PARO_CHECK_MSG(q.rows() == k.rows() && k.rows() == v.rows(),
                 "token count mismatch");

  // --- input boundary -------------------------------------------------
  // Guarded here, above the executor switch, so both engines share one
  // policy implementation.  `*_use` stays pointing at the caller's data
  // unless sanitization (or fault injection) forces a private copy.
  const MatF* q_use = &q;
  const MatF* k_use = &k;
  const MatF* v_use = &v;
  MatF q_own, k_own, v_own;
  {
    // Fault site: upstream layer handed us poisoned activations.
    std::uint64_t seed = 0;
    if (PARO_FAULT_FIRE("attn.input.nonfinite", &seed)) {
      q_own = q;
      inject_nan(q_own.flat(), seed);
      q_use = &q_own;
    }
  }
  guard_input(q_use, q_own, config.nonfinite, "q");
  guard_input(k_use, k_own, config.nonfinite, "k");
  guard_input(v_use, v_own, config.nonfinite, "v");

  QuantAttentionResult result =
      config.executor == AttnExecutor::kStreamed
          ? fused_quantized_attention(*q_use, *k_use, *v_use, calib, config)
          : materialized_quantized_attention(*q_use, *k_use, *v_use, calib,
                                             config);

  // --- output boundary ------------------------------------------------
  const std::size_t bad = count_nonfinite(result.output.flat());
  if (bad > 0) {
    record_nonfinite(bad, "output");
    guard_nonfinite(result.output.flat(), config.nonfinite,
                    "attention output");
  }
  return result;
}

MatF& quantized_attention_session(const MatF& q, const MatF& k, const MatF& v,
                                  const HeadCalibration& calib,
                                  const QuantAttentionConfig& config,
                                  SessionContext& session, std::size_t layer,
                                  std::size_t head,
                                  AttnExecStats* stats_out) {
  PARO_SPAN("attn.quantized");
  session.metrics().quantized_calls->add(1.0);
  PARO_CHECK_MSG(q.rows() == k.rows() && k.rows() == v.rows(),
                 "token count mismatch");

  // --- input boundary -------------------------------------------------
  // Same guard stack as the allocating dispatcher.  Healthy data pays one
  // read-only scan per tensor; only sanitization / fault injection copies
  // (and those error paths may allocate — they are off the steady state).
  const MatF* q_use = &q;
  const MatF* k_use = &k;
  const MatF* v_use = &v;
  MatF q_own, k_own, v_own;
  {
    std::uint64_t seed = 0;
    if (PARO_FAULT_FIRE("attn.input.nonfinite", &seed)) {
      q_own = q;
      inject_nan(q_own.flat(), seed);
      q_use = &q_own;
    }
  }
  guard_input(q_use, q_own, config.nonfinite, "q");
  guard_input(k_use, k_own, config.nonfinite, "k");
  guard_input(v_use, v_own, config.nonfinite, "v");

  MatF* out = nullptr;
  if (config.executor == AttnExecutor::kStreamed) {
    out = &fused_quantized_attention_session(*q_use, *k_use, *v_use, calib,
                                             config, session, layer, head,
                                             stats_out);
  } else {
    // Materialized fallback: the O(N²) oracle allocates by design; the
    // session still parks the output in the head's workspace so callers
    // see one storage contract for both executors.
    QuantAttentionResult r = materialized_quantized_attention(
        *q_use, *k_use, *v_use, calib, config);
    if (stats_out != nullptr) *stats_out = r.exec;
    HeadWorkspace& ws = session.workspace(layer, head);
    ws.out = std::move(r.output);
    out = &ws.out;
  }

  // --- output boundary ------------------------------------------------
  const std::size_t bad = count_nonfinite(out->flat());
  if (bad > 0) {
    record_nonfinite(bad, "output");
    guard_nonfinite(out->flat(), config.nonfinite, "attention output");
  }
  return *out;
}

QuantAttentionConfig config_fp16() {
  QuantAttentionConfig c;
  c.quantize_qkv = false;
  c.map_scheme = AttnMapScheme::kNone;
  c.use_reorder = false;
  return c;
}

QuantAttentionConfig config_naive_int(int bits) {
  QuantAttentionConfig c;
  c.map_scheme = AttnMapScheme::kPerRow;
  c.map_bits = bits;
  c.use_reorder = false;
  return c;
}

QuantAttentionConfig config_blockwise_int(int bits, std::size_t block) {
  QuantAttentionConfig c;
  c.map_scheme = AttnMapScheme::kBlockwise;
  c.map_bits = bits;
  c.block = block;
  c.use_reorder = false;
  return c;
}

QuantAttentionConfig config_paro_int(int bits, std::size_t block) {
  QuantAttentionConfig c;
  c.map_scheme = AttnMapScheme::kBlockwise;
  c.map_bits = bits;
  c.block = block;
  c.use_reorder = true;
  return c;
}

QuantAttentionConfig config_paro_mp(double budget_bits, std::size_t block,
                                    double alpha) {
  QuantAttentionConfig c;
  c.map_scheme = AttnMapScheme::kBlockwiseMixed;
  c.block = block;
  c.use_reorder = true;
  c.budget_bits = budget_bits;
  c.alpha = alpha;
  return c;
}

}  // namespace paro
