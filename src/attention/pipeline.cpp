#include "attention/pipeline.hpp"

#include <cmath>
#include <limits>

#include "attention/reference.hpp"
#include "common/fixedpoint.hpp"
#include "common/thread_pool.hpp"
#include "mixedprec/allocator.hpp"
#include "mixedprec/sensitivity.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "quant/blockwise.hpp"
#include "quant/granularity.hpp"
#include "tensor/ops.hpp"

namespace paro {

namespace {

/// Reconstruct FP logits from INT8 Q/K with optional per-block LDZ
/// truncation of the K operand (paper Fig. 5b).  Blocks whose destination
/// bitwidth is 0 are skipped: their logits are set to -inf so softmax
/// assigns them exactly zero mass, matching the dispatcher bypass.
MatF logits_from_int8(const QuantizedI8& q8, const QuantizedI8& k8,
                      const BitTable* table, bool output_bitwidth_aware) {
  const std::size_t n_q = q8.codes.rows();
  const std::size_t n_k = k8.codes.rows();
  const std::size_t d = q8.codes.cols();
  MatF logits(n_q, n_k);

  if (!output_bitwidth_aware || table == nullptr) {
    // Rows of the logit matrix are independent; integer dot products are
    // exact, so parallel rows are bitwise-identical to serial ones.
    global_pool().parallel_for(0, n_q, 8, [&](std::size_t i) {
      const auto qrow = q8.codes.row(i);
      const float sq = q8.row_params[i].scale;
      for (std::size_t j = 0; j < n_k; ++j) {
        const auto krow = k8.codes.row(j);
        std::int32_t acc = 0;
        for (std::size_t c = 0; c < d; ++c) {
          acc += static_cast<std::int32_t>(qrow[c]) *
                 static_cast<std::int32_t>(krow[c]);
        }
        logits(i, j) =
            static_cast<float>(acc) * sq * k8.row_params[j].scale;
      }
    });
    return logits;
  }

  // Output-bitwidth-aware path: per destination block, the LDZ unit keeps
  // only `bits` significant magnitude bits of every K operand.
  const BlockGrid& grid = table->grid();
  PARO_CHECK_MSG(grid.rows() == n_q && grid.cols() == n_k,
                 "bit table does not match QKᵀ shape");
  // Destination tiles are disjoint regions of `logits`; fan out over the
  // flattened tile index.
  global_pool().for_chunks(
      0, grid.num_blocks(), 4,
      [&](std::size_t t0, std::size_t t1, std::size_t /*chunk*/) {
    for (std::size_t t = t0; t < t1; ++t) {
      const std::size_t br = t / grid.block_cols();
      const std::size_t bc = t % grid.block_cols();
      const auto e = grid.extent(br, bc);
      const int bits = table->bits_at(br, bc);
      if (bits == 0) {
        for (std::size_t i = e.r0; i < e.r1; ++i) {
          auto lrow = logits.row(i);
          for (std::size_t j = e.c0; j < e.c1; ++j) {
            lrow[j] = -std::numeric_limits<float>::infinity();
          }
        }
        continue;
      }
      for (std::size_t i = e.r0; i < e.r1; ++i) {
        const auto qrow = q8.codes.row(i);
        const float sq = q8.row_params[i].scale;
        auto lrow = logits.row(i);
        for (std::size_t j = e.c0; j < e.c1; ++j) {
          const auto krow = k8.codes.row(j);
          std::int64_t acc = 0;
          for (std::size_t c = 0; c < d; ++c) {
            // mantissa·q, restored by the MSVB shift — what the PE +
            // shifter pair computes.
            const LdzCode code = ldz_truncate(krow[c], bits);
            acc += ldz_restore(static_cast<std::int64_t>(code.mantissa) *
                                   qrow[c],
                               code.shift);
          }
          lrow[j] =
              static_cast<float>(acc) * sq * k8.row_params[j].scale;
        }
      }
    }
  });
  return logits;
}

/// Softmax that tolerates -inf entries (skipped blocks) and rows that are
/// entirely skipped (degenerates to uniform over the row — never happens
/// with a sane allocation, but must not produce NaN).
MatF softmax_rows_skipaware(const MatF& logits, float scale) {
  MatF out(logits.rows(), logits.cols(), 0.0F);
  // Row-parallel: each row's max/exp/normalize touches only its own data,
  // and the row-internal accumulation order never changes.
  global_pool().parallel_for(0, logits.rows(), 8, [&](std::size_t i) {
    const auto in = logits.row(i);
    auto dst = out.row(i);
    float maxv = -std::numeric_limits<float>::infinity();
    for (const float v : in) {
      if (v != -std::numeric_limits<float>::infinity()) {
        maxv = std::max(maxv, v * scale);
      }
    }
    if (maxv == -std::numeric_limits<float>::infinity()) {
      const float u = 1.0F / static_cast<float>(in.size());
      for (float& v : dst) v = u;
      return;
    }
    double sum = 0.0;
    for (std::size_t j = 0; j < in.size(); ++j) {
      if (in[j] == -std::numeric_limits<float>::infinity()) {
        dst[j] = 0.0F;
        continue;
      }
      const double e = std::exp(static_cast<double>(in[j] * scale - maxv));
      dst[j] = static_cast<float>(e);
      sum += e;
    }
    const float inv = sum > 0.0 ? static_cast<float>(1.0 / sum) : 0.0F;
    for (float& v : dst) v *= inv;
  });
  return out;
}

/// Per-head calibration telemetry: one `calibrate.heads` tick plus the
/// tile-per-bitwidth counts of the head's BitTable (the Fig. 8 artifact).
void record_head_metrics(const HeadCalibration& calib) {
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("calibrate.heads").add(1.0);
  if (!calib.bit_table.has_value()) return;
  reg.stats("calibrate.avg_map_bits").record(calib.planned_avg_bits);
  for (int b = 0; b < kNumBitChoices; ++b) {
    const std::size_t tiles = calib.bit_table->tiles_at(kBitChoices[b]);
    if (tiles == 0) continue;
    reg.counter("calibrate.tiles_bits",
                {{"bits", std::to_string(kBitChoices[b])}})
        .add(static_cast<double>(tiles));
  }
}

}  // namespace

HeadCalibration calibrate_head(const MatF& sample_q, const MatF& sample_k,
                               const TokenGrid& grid,
                               const QuantAttentionConfig& config) {
  PARO_SPAN("calibrate.head");
  PARO_CHECK_MSG(sample_q.rows() == grid.num_tokens(),
                 "sample does not match token grid");
  HeadCalibration calib;
  const MatF sample_map = attention_map(sample_q, sample_k, config.scale);
  calib.plan = config.use_reorder
                   ? calibrate_plan(sample_map, grid, config.block)
                   : ReorderPlan::identity(grid.num_tokens());

  const bool needs_table =
      config.map_scheme == AttnMapScheme::kBlockwiseMixed ||
      config.output_bitwidth_aware;
  if (!needs_table) {
    record_head_metrics(calib);
    return calib;
  }
  const MatF reordered = calib.plan.apply_map(sample_map);
  const BlockGrid bgrid(reordered.rows(), reordered.cols(), config.block);
  if (config.map_scheme == AttnMapScheme::kBlockwiseMixed) {
    const auto stats = collect_block_stats(reordered, config.block);
    const auto sens = compute_sensitivity(stats, config.alpha);
    const Allocation alloc = allocate_lagrangian(sens, config.budget_bits);
    calib.bit_table = make_bittable(bgrid, alloc.bits);
    calib.planned_avg_bits = alloc.average_bitwidth;
  } else {
    // OBA with a uniform map bitwidth: a uniform table.
    const int bits = config.map_scheme == AttnMapScheme::kNone
                         ? 8
                         : config.map_bits;
    calib.bit_table = BitTable(bgrid, bits);
    calib.planned_avg_bits = bits;
  }
  record_head_metrics(calib);
  return calib;
}

HeadCalibration calibrate_head_with_prefix(
    const MatF& sample_q, const MatF& sample_k, const TokenGrid& grid,
    std::size_t prefix, const QuantAttentionConfig& config) {
  PARO_SPAN("calibrate.head");
  const std::size_t n = prefix + grid.num_tokens();
  PARO_CHECK_MSG(sample_q.rows() == n,
                 "sample does not match prefix + token grid");
  HeadCalibration calib;
  const MatF sample_map = attention_map(sample_q, sample_k, config.scale);
  calib.plan =
      config.use_reorder
          ? calibrate_plan_with_prefix(sample_map, grid, prefix, config.block)
          : ReorderPlan::identity(n);

  const bool needs_table =
      config.map_scheme == AttnMapScheme::kBlockwiseMixed ||
      config.output_bitwidth_aware;
  if (!needs_table) {
    record_head_metrics(calib);
    return calib;
  }
  const MatF reordered = calib.plan.apply_map(sample_map);
  const BlockGrid bgrid(reordered.rows(), reordered.cols(), config.block);
  if (config.map_scheme == AttnMapScheme::kBlockwiseMixed) {
    const auto stats = collect_block_stats(reordered, config.block);
    const auto sens = compute_sensitivity(stats, config.alpha);
    const Allocation alloc = allocate_lagrangian(sens, config.budget_bits);
    calib.bit_table = make_bittable(bgrid, alloc.bits);
    calib.planned_avg_bits = alloc.average_bitwidth;
  } else {
    const int bits =
        config.map_scheme == AttnMapScheme::kNone ? 8 : config.map_bits;
    calib.bit_table = BitTable(bgrid, bits);
    calib.planned_avg_bits = bits;
  }
  record_head_metrics(calib);
  return calib;
}

QuantAttentionResult quantized_attention(const MatF& q, const MatF& k,
                                         const MatF& v,
                                         const HeadCalibration& calib,
                                         const QuantAttentionConfig& config) {
  PARO_SPAN("attn.quantized");
  obs::MetricsRegistry::global().counter("attn.quantized_calls").add(1.0);
  PARO_CHECK_MSG(q.rows() == k.rows() && k.rows() == v.rows(),
                 "token count mismatch");
  const float scale = attention_scale(q, config.scale);

  const MatF qr = calib.plan.apply_rows(q);
  const MatF kr = calib.plan.apply_rows(k);
  const MatF vr = calib.plan.apply_rows(v);

  // --- QKᵀ ---
  MatF logits;
  if (config.quantize_qkv) {
    const QuantizedI8 q8 = quantize_rows_i8(qr, 8);
    const QuantizedI8 k8 = quantize_rows_i8(kr, 8);
    const BitTable* table =
        calib.bit_table.has_value() ? &*calib.bit_table : nullptr;
    logits = logits_from_int8(q8, k8, table, config.output_bitwidth_aware);
  } else {
    logits = matmul_nt(qr, kr);
  }

  // --- softmax (vector unit, FP) ---
  MatF attn = softmax_rows_skipaware(logits, scale);

  // --- attention-map quantization ---
  QuantAttentionResult result;
  result.avg_map_bits = 16.0;
  switch (config.map_scheme) {
    case AttnMapScheme::kNone:
      break;
    case AttnMapScheme::kPerRow: {
      global_pool().parallel_for(0, attn.rows(), 8, [&](std::size_t r) {
        fake_quant_group(attn.row(r), config.map_bits, /*symmetric=*/false);
      });
      result.avg_map_bits = config.map_bits;
      break;
    }
    case AttnMapScheme::kBlockwise: {
      attn = fake_quant_blockwise(attn, config.block, config.map_bits);
      result.avg_map_bits = config.map_bits;
      break;
    }
    case AttnMapScheme::kBlockwiseMixed: {
      PARO_CHECK_MSG(calib.bit_table.has_value(),
                     "mixed scheme requires a calibrated BitTable");
      attn = fake_quant_blockwise_mixed(attn, *calib.bit_table);
      result.avg_map_bits = calib.bit_table->average_bitwidth();
      break;
    }
  }

  // --- AttnV ---
  MatF v_used = vr;
  if (config.quantize_qkv) {
    v_used = fake_quant_matrix(vr, Granularity::kPerColumn, 8,
                               /*symmetric=*/true);
  }
  const MatF out_reordered = matmul(attn, v_used);

  result.output = calib.plan.invert_rows(out_reordered);
  result.map_reordered = std::move(attn);
  return result;
}

QuantAttentionConfig config_fp16() {
  QuantAttentionConfig c;
  c.quantize_qkv = false;
  c.map_scheme = AttnMapScheme::kNone;
  c.use_reorder = false;
  return c;
}

QuantAttentionConfig config_naive_int(int bits) {
  QuantAttentionConfig c;
  c.map_scheme = AttnMapScheme::kPerRow;
  c.map_bits = bits;
  c.use_reorder = false;
  return c;
}

QuantAttentionConfig config_blockwise_int(int bits, std::size_t block) {
  QuantAttentionConfig c;
  c.map_scheme = AttnMapScheme::kBlockwise;
  c.map_bits = bits;
  c.block = block;
  c.use_reorder = false;
  return c;
}

QuantAttentionConfig config_paro_int(int bits, std::size_t block) {
  QuantAttentionConfig c;
  c.map_scheme = AttnMapScheme::kBlockwise;
  c.map_bits = bits;
  c.block = block;
  c.use_reorder = true;
  return c;
}

QuantAttentionConfig config_paro_mp(double budget_bits, std::size_t block,
                                    double alpha) {
  QuantAttentionConfig c;
  c.map_scheme = AttnMapScheme::kBlockwiseMixed;
  c.block = block;
  c.use_reorder = true;
  c.budget_bits = budget_bits;
  c.alpha = alpha;
  return c;
}

}  // namespace paro
