// Streaming (online-softmax) attention reference.
//
// Computes exact attention while visiting K/V in chunks and keeping only a
// running row maximum, running denominator, and rescaled output
// accumulator — the dataflow PARO's fused pipeline (and the performance
// model's Q-stripe streaming) relies on.  Tests assert bit-level-grade
// agreement with the materialised reference: evidence that the simulator's
// "attention map never touches DRAM" assumption loses nothing.
#pragma once

#include "tensor/matrix.hpp"

namespace paro {

/// Exact attention with K/V processed `chunk` rows at a time.
/// `scale` defaults to 1/sqrt(head_dim).
MatF attention_streaming(const MatF& q, const MatF& k, const MatF& v,
                         std::size_t chunk, float scale = -1.0F);

}  // namespace paro
