// Synthetic 3D-full-attention heads with the pattern structure PARO
// exploits (substitution for CogVideoX attention; see DESIGN.md §2).
//
// The paper observes (§III-A, Fig. 1/8) that video-DiT heads perform
// *local aggregation along one of the grid axes*: some heads attend to the
// same spatial token across frames, others to spatial neighbours within a
// frame, producing diverse strided-diagonal attention patterns in the
// canonical token order — which all become block-diagonal under the right
// axis reorder.
//
// We synthesise Q/K embeddings that provably have this structure: each
// token gets random-Fourier positional features of its *rank* in the
// head's private locality ordering, so q_i · k_j decays with rank
// distance, plus a content component and a few "global" tokens that give
// the map the outlier columns real maps show.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "reorder/token_grid.hpp"
#include "tensor/matrix.hpp"

namespace paro {

/// Generation parameters for one synthetic head.
struct SyntheticHeadSpec {
  AxisOrder locality_order = canonical_axis_order();
  /// Kernel bandwidth as a fraction of the token count: attention mass
  /// concentrates on tokens within ±locality_width·N ranks.
  double locality_width = 0.02;
  /// Strength of the positional (pattern) component in the logits.
  double pattern_gain = 6.0;
  /// Strength of the i.i.d. content component.
  double content_gain = 1.0;
  /// Fraction of tokens acting as globally attended "sink" keys.
  double global_fraction = 0.004;
  /// Extra logit boost for global keys.
  double global_gain = 3.0;
};

/// Q/K/V embeddings of a single head, [tokens, head_dim], canonical order.
struct HeadQKV {
  MatF q, k, v;
};

/// Generate one head.  Deterministic in `rng`.
HeadQKV generate_head(const TokenGrid& grid, const SyntheticHeadSpec& spec,
                      std::size_t head_dim, Rng& rng);

/// A default set of head specs cycling through the 6 locality orders with
/// varying widths/gains — the "diverse patterns across heads" of Fig. 1.
std::vector<SyntheticHeadSpec> default_head_specs(std::size_t num_heads,
                                                  Rng& rng);

/// Random-Fourier positional feature matrix P [tokens, feature_dim] for the
/// given locality ordering: P·Pᵀ ≈ gain · exp(−Δrank² / 2·width²), i.e. a
/// shift-invariant locality kernel in that ordering.  Used by the synthetic
/// DiT to give its attention heads the paper's pattern structure.
/// `feature_dim` must be even.  Dot products already include the d^(1/4)
/// compensation for a later 1/sqrt(d) softmax scale with d = feature_dim*2
/// unless `softmax_dim` overrides it.
MatF positional_features(const TokenGrid& grid, const AxisOrder& order,
                         double width, double gain, std::size_t feature_dim,
                         Rng& rng, std::size_t softmax_dim = 0);

}  // namespace paro
