// Hardware-faithful integer attention dataflow (paper §IV-A).
//
// The float pipeline in pipeline.hpp uses fake quantization: it computes
// with dequantized values, which is numerically identical to the integer
// dataflow but hides the fixed-point mechanics.  This module executes the
// REAL mechanics, exactly as the PE array + vector unit would:
//
//   QKᵀ    : int8 × int8 → int32 accumulators, rescaled to FP by
//            s_q(row) · s_k(col) on the vector unit (per-block LDZ
//            truncation of K optional).
//   softmax: FP on the vector unit.
//   map    : quantized to UNSIGNED integer codes per block with the
//            calibrated (s, z) — the codes are what the hardware stores.
//   AttnV  : integer MACs  Σ_j a_code(i,j) · v_int8(j,c)  accumulated in
//            int32 PER BLOCK-ROW, plus the zero-point correction
//            −z · Σ_j v_int8(j,c); the vector unit folds in
//            s_a(block) · s_v(col) and accumulates partial sums in FP
//            (paper §IV-A: "fixed-point accumulation results ... are
//            forwarded to the vector unit ... performs floating-point
//            accumulation").
//
// Tests verify this path agrees with the fake-quant float pipeline to
// float tolerance — evidence that the modelled hardware computes the same
// numbers the algorithm experiments were scored on.
#pragma once

#include "attention/pipeline.hpp"
#include "tensor/matrix.hpp"

namespace paro {

/// Result of the integer-exact pipeline.
struct IntegerAttentionResult {
  MatF output;                ///< [tokens, head_dim], canonical order
  Matrix<std::int32_t> map_codes;  ///< unsigned map codes, reordered space
  double avg_map_bits = 0.0;
};

/// Execute the integer dataflow.  Supports the block-wise schemes
/// (kBlockwise / kBlockwiseMixed); per-row and FP schemes belong to the
/// float pipeline.  `calib` must carry a BitTable when the scheme or the
/// output-bitwidth-aware flag requires one (same contract as
/// quantized_attention).
IntegerAttentionResult integer_attention(const MatF& q, const MatF& k,
                                         const MatF& v,
                                         const HeadCalibration& calib,
                                         const QuantAttentionConfig& config);

}  // namespace paro
