#include "metrics/video_metrics.hpp"

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "tensor/ops.hpp"
#include "tensor/random.hpp"

namespace paro {

namespace {

void check_video(const MatF& latent, const GridDims& grid) {
  PARO_CHECK_MSG(latent.rows() == grid.tokens(),
                 "latent rows do not match grid tokens");
  PARO_CHECK_MSG(latent.cols() >= 1, "latent needs at least one channel");
}

}  // namespace

MatF frame_features(const MatF& latent, const GridDims& grid,
                    std::size_t feature_dim, std::uint64_t seed) {
  check_video(latent, grid);
  const std::size_t frame_tokens = grid.height * grid.width;
  const std::size_t frame_elems = frame_tokens * latent.cols();
  // Fixed Gaussian projection, scaled to keep feature variance O(1).
  Rng rng(seed);
  MatF proj(frame_elems, feature_dim);
  const float s = 1.0F / std::sqrt(static_cast<float>(frame_elems));
  for (float& v : proj.flat()) {
    v = static_cast<float>(rng.normal()) * s;
  }
  MatF feats(grid.frames, feature_dim, 0.0F);
  for (std::size_t f = 0; f < grid.frames; ++f) {
    auto out = feats.row(f);
    std::size_t e = 0;
    for (std::size_t t = 0; t < frame_tokens; ++t) {
      const auto token = latent.row(f * frame_tokens + t);
      for (std::size_t c = 0; c < token.size(); ++c, ++e) {
        const float x = token[c];
        if (x == 0.0F) continue;
        const auto prow = proj.row(e);
        for (std::size_t d = 0; d < feature_dim; ++d) {
          out[d] += x * prow[d];
        }
      }
    }
  }
  return feats;
}

double fvd_proxy(const MatF& candidate, const MatF& reference,
                 const GridDims& grid, std::size_t feature_dim) {
  const MatF fa = frame_features(candidate, grid, feature_dim);
  const MatF fb = frame_features(reference, grid, feature_dim);
  // Diagonal-covariance Fréchet distance between the two frame-feature
  // distributions: Σ_d (μa−μb)² + (σa−σb)².
  double fvd = 0.0;
  for (std::size_t d = 0; d < feature_dim; ++d) {
    RunningStats sa, sb;
    for (std::size_t f = 0; f < fa.rows(); ++f) sa.add(fa(f, d));
    for (std::size_t f = 0; f < fb.rows(); ++f) sb.add(fb(f, d));
    const double dm = sa.mean() - sb.mean();
    const double ds = sa.stddev() - sb.stddev();
    fvd += dm * dm + ds * ds;
  }
  return fvd / static_cast<double>(feature_dim);
}

double clipsim_proxy(const MatF& candidate, const MatF& reference,
                     const GridDims& grid, std::size_t feature_dim) {
  const MatF fa = frame_features(candidate, grid, feature_dim);
  const MatF fb = frame_features(reference, grid, feature_dim);
  double acc = 0.0;
  for (std::size_t f = 0; f < fa.rows(); ++f) {
    acc += cosine_similarity(fa.row(f), fb.row(f));
  }
  return acc / static_cast<double>(fa.rows());
}

double clip_temp_proxy(const MatF& candidate, const GridDims& grid,
                       std::size_t feature_dim) {
  const MatF feats = frame_features(candidate, grid, feature_dim);
  if (feats.rows() < 2) return 1.0;
  double acc = 0.0;
  for (std::size_t f = 0; f + 1 < feats.rows(); ++f) {
    acc += cosine_similarity(feats.row(f), feats.row(f + 1));
  }
  return acc / static_cast<double>(feats.rows() - 1);
}

double vqa_proxy(const MatF& candidate, const GridDims& grid) {
  check_video(candidate, grid);
  // Lag-1 spatial autocorrelation along the width axis, averaged over
  // frames and channels.  Structured content is spatially coherent;
  // quantization damage decorrelates neighbours.
  const std::size_t channels = candidate.cols();
  double num = 0.0, den = 0.0;
  double mean = 0.0;
  for (const float v : candidate.flat()) mean += v;
  mean /= static_cast<double>(candidate.size());
  for (std::size_t f = 0; f < grid.frames; ++f) {
    for (std::size_t h = 0; h < grid.height; ++h) {
      for (std::size_t w = 0; w + 1 < grid.width; ++w) {
        const std::size_t t0 = (f * grid.height + h) * grid.width + w;
        const auto a = candidate.row(t0);
        const auto b = candidate.row(t0 + 1);
        for (std::size_t c = 0; c < channels; ++c) {
          num += (a[c] - mean) * (b[c] - mean);
          den += (a[c] - mean) * (a[c] - mean);
        }
      }
    }
  }
  const double corr = den > 0.0 ? num / den : 0.0;
  return 100.0 * std::clamp(corr, 0.0, 1.0);
}

double flicker_score(const MatF& candidate, const GridDims& grid) {
  check_video(candidate, grid);
  if (grid.frames < 2) return 100.0;
  const std::size_t frame_tokens = grid.height * grid.width;
  const std::size_t channels = candidate.cols();
  RunningStats all;
  for (const float v : candidate.flat()) all.add(v);
  const double sigma = std::max(all.stddev(), 1e-9);
  double diff = 0.0;
  std::size_t count = 0;
  for (std::size_t f = 0; f + 1 < grid.frames; ++f) {
    for (std::size_t t = 0; t < frame_tokens; ++t) {
      const auto a = candidate.row(f * frame_tokens + t);
      const auto b = candidate.row((f + 1) * frame_tokens + t);
      for (std::size_t c = 0; c < channels; ++c) {
        diff += std::abs(static_cast<double>(a[c]) - b[c]);
        ++count;
      }
    }
  }
  const double norm = diff / (static_cast<double>(count) * 2.0 * sigma);
  return 100.0 * std::clamp(1.0 - norm, 0.0, 1.0);
}

double video_psnr_db(const MatF& candidate, const MatF& reference,
                     const GridDims& grid) {
  check_video(candidate, grid);
  check_video(reference, grid);
  PARO_CHECK_MSG(candidate.cols() == reference.cols(),
                 "channel count mismatch");
  const RunningStats ref_stats = summarize(reference.flat());
  const double peak = std::max(ref_stats.max() - ref_stats.min(), 1e-12);
  const double err = mse(candidate.flat(), reference.flat());
  if (err == 0.0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(peak * peak / err);
}

std::vector<double> per_frame_psnr_db(const MatF& candidate,
                                      const MatF& reference,
                                      const GridDims& grid) {
  check_video(candidate, grid);
  check_video(reference, grid);
  const RunningStats ref_stats = summarize(reference.flat());
  const double peak = std::max(ref_stats.max() - ref_stats.min(), 1e-12);
  const std::size_t frame_tokens = grid.height * grid.width;
  const std::size_t channels = candidate.cols();
  std::vector<double> psnr(grid.frames, 0.0);
  for (std::size_t f = 0; f < grid.frames; ++f) {
    double err = 0.0;
    for (std::size_t t = 0; t < frame_tokens; ++t) {
      const auto a = candidate.row(f * frame_tokens + t);
      const auto b = reference.row(f * frame_tokens + t);
      for (std::size_t c = 0; c < channels; ++c) {
        const double d = static_cast<double>(a[c]) - b[c];
        err += d * d;
      }
    }
    err /= static_cast<double>(frame_tokens * channels);
    psnr[f] = err == 0.0 ? std::numeric_limits<double>::infinity()
                         : 10.0 * std::log10(peak * peak / err);
  }
  return psnr;
}

double motion_smoothness(const MatF& candidate, const GridDims& grid) {
  check_video(candidate, grid);
  if (grid.frames < 3) return 100.0;
  const std::size_t frame_tokens = grid.height * grid.width;
  const std::size_t channels = candidate.cols();
  double vel = 0.0, acc = 0.0;
  for (std::size_t f = 0; f + 2 < grid.frames; ++f) {
    for (std::size_t t = 0; t < frame_tokens; ++t) {
      const auto a = candidate.row(f * frame_tokens + t);
      const auto b = candidate.row((f + 1) * frame_tokens + t);
      const auto c = candidate.row((f + 2) * frame_tokens + t);
      for (std::size_t ch = 0; ch < channels; ++ch) {
        const double v1 = static_cast<double>(b[ch]) - a[ch];
        const double v2 = static_cast<double>(c[ch]) - b[ch];
        vel += std::abs(v1) + std::abs(v2);
        acc += std::abs(v2 - v1);
      }
    }
  }
  if (vel == 0.0) return 100.0;  // static clip: perfectly smooth
  // acc/vel ∈ [0, 2]: 0 = uniform motion, 2 = direction flips each frame.
  return 100.0 * std::clamp(1.0 - acc / vel, 0.0, 1.0);
}

VideoQuality evaluate_video(const MatF& candidate, const MatF& reference,
                            const GridDims& grid) {
  VideoQuality q;
  q.fvd = fvd_proxy(candidate, reference, grid);
  q.clipsim = clipsim_proxy(candidate, reference, grid);
  q.clip_temp = clip_temp_proxy(candidate, grid);
  q.vqa = vqa_proxy(candidate, grid);
  q.flicker = flicker_score(candidate, grid);
  return q;
}

}  // namespace paro
