// Proxy video-quality metrics (substitutes for FVD / CLIPSIM / CLIP-Temp /
// VQA / Flicker, which require pretrained I3D/CLIP/DOVER networks; see
// DESIGN.md §2).
//
// A generated "video" here is a latent tensor [tokens, channels] over a
// frame-major token grid.  Frame features are fixed random projections of
// each frame's latent (a seeded Gaussian feature extractor — the same role
// I3D/CLIP embeddings play: a stable feature space in which to compare).
//
//   fvd_proxy       Fréchet distance between the frame-feature
//                   distributions of candidate and reference (diagonal-
//                   covariance Fréchet; reference = the FP16 output, so
//                   FP16 scores 0 like Table I's "FVD-FP16").
//   clipsim_proxy   mean per-frame feature cosine to the reference
//                   (text-video alignment stand-in; FP16 scores 1).
//   clip_temp_proxy mean adjacent-frame feature cosine within the
//                   candidate (temporal consistency).
//   vqa_proxy       100 × mean lag-1 spatial autocorrelation: structured
//                   content scores high, quantization noise scores low.
//   flicker_score   100 × (1 − normalised mean temporal difference):
//                   higher = less flicker.
#pragma once

#include <cstdint>
#include <vector>

#include "model/config.hpp"
#include "tensor/matrix.hpp"

namespace paro {

/// Random-projection features of each frame: [frames, feature_dim].
/// The projection matrix is a fixed function of `seed` so every method is
/// embedded identically.
MatF frame_features(const MatF& latent, const GridDims& grid,
                    std::size_t feature_dim = 64,
                    std::uint64_t seed = 0xfeedbeef);

double fvd_proxy(const MatF& candidate, const MatF& reference,
                 const GridDims& grid, std::size_t feature_dim = 64);

double clipsim_proxy(const MatF& candidate, const MatF& reference,
                     const GridDims& grid, std::size_t feature_dim = 64);

double clip_temp_proxy(const MatF& candidate, const GridDims& grid,
                       std::size_t feature_dim = 64);

double vqa_proxy(const MatF& candidate, const GridDims& grid);

double flicker_score(const MatF& candidate, const GridDims& grid);

/// All five in one struct (one Table-I row).
struct VideoQuality {
  double fvd = 0.0;
  double clipsim = 0.0;
  double clip_temp = 0.0;
  double vqa = 0.0;
  double flicker = 0.0;
};
VideoQuality evaluate_video(const MatF& candidate, const MatF& reference,
                            const GridDims& grid);

/// PSNR (dB) of the candidate against the reference, with the signal peak
/// taken from the reference's dynamic range.  +inf for an exact match.
double video_psnr_db(const MatF& candidate, const MatF& reference,
                     const GridDims& grid);

/// Per-frame PSNR series — localises where in the clip quantization
/// damage concentrates (early frames inherit more sampling error).
std::vector<double> per_frame_psnr_db(const MatF& candidate,
                                      const MatF& reference,
                                      const GridDims& grid);

/// Motion smoothness in [0, 100]: penalises the *acceleration* of the
/// latent (second temporal difference) relative to its velocity (first
/// difference).  Natural motion is smooth; quantization noise is jerky.
double motion_smoothness(const MatF& candidate, const GridDims& grid);

}  // namespace paro
