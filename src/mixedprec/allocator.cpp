#include "mixedprec/allocator.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <queue>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace paro {

namespace {

double total_weight(const SensitivityTable& table) {
  double w = 0.0;
  for (const auto& e : table) {
    w += static_cast<double>(e.count);
  }
  return w;
}

Allocation finalize(const SensitivityTable& table, std::vector<int> bits) {
  Allocation out;
  out.bits = std::move(bits);
  double weighted_bits = 0.0;
  double weights = 0.0;
  for (std::size_t i = 0; i < table.size(); ++i) {
    const auto w = static_cast<double>(table[i].count);
    out.total_sensitivity += table[i].s[static_cast<std::size_t>(
        bit_choice_index(out.bits[i]))];
    weighted_bits += w * out.bits[i];
    weights += w;
  }
  out.average_bitwidth = weights == 0.0 ? 0.0 : weighted_bits / weights;
  return out;
}

std::size_t gcd_counts(const SensitivityTable& table) {
  std::size_t g = 0;
  for (const auto& e : table) {
    g = std::gcd(g, e.count);
  }
  return g == 0 ? 1 : g;
}

}  // namespace

Allocation allocate_dp_exact(const SensitivityTable& table, double budget_bits,
                             std::size_t max_states) {
  PARO_CHECK_MSG(!table.empty(), "empty sensitivity table");
  PARO_CHECK_MSG(budget_bits >= 0.0, "negative budget");
  const std::size_t n = table.size();
  const std::size_t g = gcd_counts(table);
  // Weighted capacity in 2-bit units of the reduced weights.
  const double total = total_weight(table);
  const auto capacity = static_cast<std::size_t>(
      std::floor(budget_bits * total / (2.0 * static_cast<double>(g))));
  PARO_CHECK_MSG(n * (capacity + 1) <= max_states,
                 "DP lattice too large; use allocate_lagrangian");

  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> best(capacity + 1, kInf);
  // choice[i * (capacity+1) + c] = bit-choice index taken at block i with
  // c units already consumed *after* choosing.
  std::vector<std::uint8_t> choice(n * (capacity + 1), 0xFF);
  best[0] = 0.0;
  std::vector<double> next(capacity + 1, kInf);
  for (std::size_t i = 0; i < n; ++i) {
    std::fill(next.begin(), next.end(), kInf);
    const std::size_t w = table[i].count / g;
    for (std::size_t c = 0; c <= capacity; ++c) {
      if (best[c] == kInf) continue;
      for (int bi = 0; bi < kNumBitChoices; ++bi) {
        const std::size_t units = w * static_cast<std::size_t>(kBitChoices[bi]) / 2;
        const std::size_t c2 = c + units;
        if (c2 > capacity) continue;
        const double v = best[c] + table[i].s[bi];
        if (v < next[c2]) {
          next[c2] = v;
          choice[i * (capacity + 1) + c2] = static_cast<std::uint8_t>(bi);
        }
      }
    }
    best.swap(next);
  }
  // Find the best terminal state and backtrack.
  std::size_t best_c = 0;
  double best_v = kInf;
  for (std::size_t c = 0; c <= capacity; ++c) {
    if (best[c] < best_v) {
      best_v = best[c];
      best_c = c;
    }
  }
  PARO_CHECK_MSG(best_v != kInf, "infeasible budget");
  std::vector<int> bits(n, 0);
  std::size_t c = best_c;
  for (std::size_t i = n; i-- > 0;) {
    const std::uint8_t bi = choice[i * (capacity + 1) + c];
    PARO_CHECK(bi != 0xFF);
    bits[i] = kBitChoices[bi];
    const std::size_t w = table[i].count / g;
    c -= w * static_cast<std::size_t>(bits[i]) / 2;
  }
  return finalize(table, std::move(bits));
}

namespace {

/// Per-block argmin of S_{i,b} + λ·w_i·b; ties broken toward more bits.
int lagrangian_pick(const SensitivityEntry& e, double lambda) {
  int best = 0;
  double best_cost = std::numeric_limits<double>::infinity();
  for (int bi = 0; bi < kNumBitChoices; ++bi) {
    const double cost =
        e.s[bi] + lambda * static_cast<double>(e.count) * kBitChoices[bi];
    if (cost < best_cost || (cost == best_cost && kBitChoices[bi] > best)) {
      best_cost = cost;
      best = kBitChoices[bi];
    }
  }
  return best;
}

double bits_used(const SensitivityTable& table, const std::vector<int>& bits) {
  // count × bits products are exact integers well below 2^53, so the sum
  // is grouping-independent; ordered_reduce keeps the association fixed
  // anyway.
  return global_pool().ordered_reduce(
      0, table.size(), 1024, 0.0,
      [&](std::size_t i0, std::size_t i1) {
        double partial = 0.0;
        for (std::size_t i = i0; i < i1; ++i) {
          partial += static_cast<double>(table[i].count) * bits[i];
        }
        return partial;
      },
      [](double a, double b) { return a + b; });
}

}  // namespace

Allocation allocate_lagrangian(const SensitivityTable& table,
                               double budget_bits, int iterations) {
  PARO_CHECK_MSG(!table.empty(), "empty sensitivity table");
  const double capacity = budget_bits * total_weight(table);
  const std::size_t n = table.size();

  auto solve = [&](double lambda) {
    std::vector<int> bits(n);
    // Per-block argmins are independent; indexed writes, no reduction.
    global_pool().parallel_for(0, n, 256, [&](std::size_t i) {
      bits[i] = lagrangian_pick(table[i], lambda);
    });
    return bits;
  };

  std::vector<int> bits = solve(0.0);
  if (bits_used(table, bits) <= capacity) {
    return finalize(table, std::move(bits));
  }
  // Grow λ until feasible, then bisect.
  double lo = 0.0, hi = 1e-12;
  while (bits_used(table, solve(hi)) > capacity) {
    hi *= 2.0;
    PARO_CHECK_MSG(hi < 1e30, "Lagrangian bit price diverged");
  }
  std::vector<int> best_feasible = solve(hi);
  for (int it = 0; it < iterations; ++it) {
    const double mid = 0.5 * (lo + hi);
    std::vector<int> cand = solve(mid);
    if (bits_used(table, cand) <= capacity) {
      best_feasible = std::move(cand);
      hi = mid;
    } else {
      lo = mid;
    }
  }
  // Fill remaining slack with the most valuable upgrades.
  bits = std::move(best_feasible);
  double used = bits_used(table, bits);
  struct Upgrade {
    double gain_per_bit;  // sensitivity decrease per weighted bit added
    std::size_t block;
  };
  auto next_upgrade = [&](std::size_t i) -> Upgrade {
    const int bi = bit_choice_index(bits[i]);
    if (bi + 1 >= kNumBitChoices) return {-1.0, i};
    const double dbits = static_cast<double>(table[i].count) *
                         (kBitChoices[bi + 1] - kBitChoices[bi]);
    const double gain = table[i].s[bi] - table[i].s[bi + 1];
    if (gain <= 0.0) return {-1.0, i};
    return {gain / dbits, i};
  };
  std::priority_queue<std::pair<double, std::size_t>> heap;
  for (std::size_t i = 0; i < n; ++i) {
    const Upgrade u = next_upgrade(i);
    if (u.gain_per_bit > 0.0) heap.push({u.gain_per_bit, i});
  }
  while (!heap.empty()) {
    const auto [key, i] = heap.top();
    heap.pop();
    const Upgrade u = next_upgrade(i);
    if (u.gain_per_bit <= 0.0) continue;
    if (u.gain_per_bit != key) {  // stale entry: refresh
      heap.push({u.gain_per_bit, i});
      continue;
    }
    const int bi = bit_choice_index(bits[i]);
    const double dbits = static_cast<double>(table[i].count) *
                         (kBitChoices[bi + 1] - kBitChoices[bi]);
    if (used + dbits > capacity) continue;  // does not fit; try others
    bits[i] = kBitChoices[bi + 1];
    used += dbits;
    const Upgrade nu = next_upgrade(i);
    if (nu.gain_per_bit > 0.0) heap.push({nu.gain_per_bit, i});
  }
  return finalize(table, std::move(bits));
}

Allocation allocate_greedy(const SensitivityTable& table, double budget_bits) {
  PARO_CHECK_MSG(!table.empty(), "empty sensitivity table");
  const double capacity = budget_bits * total_weight(table);
  const std::size_t n = table.size();
  std::vector<int> bits(n, 8);
  double used = bits_used(table, bits);

  // Marginal cost of downgrading block i one level: ΔS per weighted bit
  // freed.  Negative costs (downgrade *helps*) are applied eagerly.
  auto next_downgrade_cost = [&](std::size_t i) -> double {
    const int bi = bit_choice_index(bits[i]);
    if (bi == 0) return std::numeric_limits<double>::infinity();
    const double dbits = static_cast<double>(table[i].count) *
                         (kBitChoices[bi] - kBitChoices[bi - 1]);
    return (table[i].s[bi - 1] - table[i].s[bi]) / dbits;
  };

  using Entry = std::pair<double, std::size_t>;  // (cost, block)
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  for (std::size_t i = 0; i < n; ++i) {
    const double c = next_downgrade_cost(i);
    if (std::isfinite(c)) heap.push({c, i});
  }
  while (used > capacity) {
    PARO_CHECK_MSG(!heap.empty(), "infeasible budget");
    const auto [key, i] = heap.top();
    heap.pop();
    const double fresh = next_downgrade_cost(i);
    if (!std::isfinite(fresh)) continue;
    if (fresh != key) {
      heap.push({fresh, i});
      continue;
    }
    const int bi = bit_choice_index(bits[i]);
    used -= static_cast<double>(table[i].count) *
            (kBitChoices[bi] - kBitChoices[bi - 1]);
    bits[i] = kBitChoices[bi - 1];
    const double c = next_downgrade_cost(i);
    if (std::isfinite(c)) heap.push({c, i});
  }
  return finalize(table, std::move(bits));
}

BitTable make_bittable(const BlockGrid& grid, const std::vector<int>& bits) {
  PARO_CHECK_MSG(bits.size() == grid.num_blocks(),
                 "bits vector does not match grid");
  BitTable table(grid, 8);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    table.set_bits_flat(i, bits[i]);
  }
  return table;
}

}  // namespace paro
