// Model-wide mixed-precision allocation (paper Eq. 1 — N there is "the
// number of blocks in the MODEL", i.e. one budget shared by every head of
// every layer, not a per-head budget).
//
// Sharing the budget lets the allocator move bits from easy heads (broad,
// low-contrast maps) to hard ones (sharp diagonals + sinks), which is
// where mixed precision earns its keep over uniform INT4.  The per-head
// allocation in attention/pipeline.hpp is the special case of a
// one-entry table.
#pragma once

#include <vector>

#include "mixedprec/allocator.hpp"
#include "quant/bittable.hpp"

namespace paro {

/// Identifies one attention head's block statistics inside the model-wide
/// problem.
struct HeadBlockStats {
  std::size_t layer = 0;
  std::size_t head = 0;
  BlockGrid grid{1, 1, 1};             ///< tile geometry of this head's map
  std::vector<BlockQuantStats> stats;  ///< per-tile stats (row-major)
};

/// Result: one BitTable per submitted head, in submission order, plus the
/// aggregate outcome.
struct GlobalAllocation {
  std::vector<BitTable> tables;
  double average_bitwidth = 0.0;  ///< element-weighted over the whole model
  double total_sensitivity = 0.0;
};

/// Solve Eq. 1 across all heads with a single average-bitwidth budget.
/// `alpha` blends importance and difficulty as in compute_sensitivity.
GlobalAllocation allocate_global(const std::vector<HeadBlockStats>& heads,
                                 double budget_bits, double alpha = 0.5);

}  // namespace paro
