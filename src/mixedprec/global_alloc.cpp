#include "mixedprec/global_alloc.hpp"

#include "common/error.hpp"
#include "mixedprec/sensitivity.hpp"

namespace paro {

GlobalAllocation allocate_global(const std::vector<HeadBlockStats>& heads,
                                 double budget_bits, double alpha) {
  PARO_CHECK_MSG(!heads.empty(), "no heads to allocate");
  // Concatenate every head's per-tile sensitivities into one problem.
  SensitivityTable merged;
  std::vector<std::size_t> offsets;
  offsets.reserve(heads.size());
  for (const HeadBlockStats& h : heads) {
    PARO_CHECK_MSG(h.stats.size() == h.grid.num_blocks(),
                   "stats do not match the head's grid");
    offsets.push_back(merged.size());
    const SensitivityTable part = compute_sensitivity(h.stats, alpha);
    merged.insert(merged.end(), part.begin(), part.end());
  }

  const Allocation alloc = allocate_lagrangian(merged, budget_bits);

  GlobalAllocation out;
  out.average_bitwidth = alloc.average_bitwidth;
  out.total_sensitivity = alloc.total_sensitivity;
  out.tables.reserve(heads.size());
  for (std::size_t h = 0; h < heads.size(); ++h) {
    BitTable table(heads[h].grid, 8);
    const std::size_t base = offsets[h];
    for (std::size_t i = 0; i < heads[h].grid.num_blocks(); ++i) {
      table.set_bits_flat(i, alloc.bits[base + i]);
    }
    out.tables.push_back(std::move(table));
  }
  return out;
}

}  // namespace paro
