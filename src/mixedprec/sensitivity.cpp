#include "mixedprec/sensitivity.hpp"

#include <cmath>

#include "common/error.hpp"

namespace paro {

namespace {
/// pow with the convention 0^0 = 1 and a floor to keep scores finite.
double safe_pow(double base, double exponent) {
  if (exponent == 0.0) return 1.0;
  if (base <= 0.0) return 0.0;
  return std::pow(base, exponent);
}
}  // namespace

SensitivityTable compute_sensitivity(const std::vector<BlockQuantStats>& stats,
                                     double alpha) {
  PARO_CHECK_MSG(alpha >= 0.0 && alpha <= 1.0, "alpha must be in [0,1]");
  SensitivityTable table;
  table.reserve(stats.size());
  for (const BlockQuantStats& block : stats) {
    SensitivityEntry entry;
    entry.count = block.count;
    const double importance = safe_pow(block.value_sum, alpha);
    for (int bi = 0; bi < kNumBitChoices; ++bi) {
      entry.s[bi] = importance * safe_pow(block.error_l2[bi], 1.0 - alpha);
    }
    table.push_back(entry);
  }
  return table;
}

}  // namespace paro
