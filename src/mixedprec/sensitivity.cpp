#include "mixedprec/sensitivity.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/thread_pool.hpp"

namespace paro {

namespace {
/// pow with the convention 0^0 = 1 and a floor to keep scores finite.
double safe_pow(double base, double exponent) {
  if (exponent == 0.0) return 1.0;
  if (base <= 0.0) return 0.0;
  return std::pow(base, exponent);
}
}  // namespace

SensitivityTable compute_sensitivity(const std::vector<BlockQuantStats>& stats,
                                     double alpha) {
  PARO_CHECK_MSG(alpha >= 0.0 && alpha <= 1.0, "alpha must be in [0,1]");
  SensitivityTable table(stats.size());
  // Each entry depends on one BlockQuantStats; indexed writes keep the
  // table identical at any thread count.
  global_pool().parallel_for(0, stats.size(), 64, [&](std::size_t i) {
    const BlockQuantStats& block = stats[i];
    SensitivityEntry entry;
    entry.count = block.count;
    const double importance = safe_pow(block.value_sum, alpha);
    for (int bi = 0; bi < kNumBitChoices; ++bi) {
      entry.s[bi] = importance * safe_pow(block.error_l2[bi], 1.0 - alpha);
    }
    table[i] = entry;
  });
  return table;
}

}  // namespace paro
