// Importance-guided quantization sensitivity (paper §III-B).
//
// For each attention-map block with values x ∈ R^G and candidate bitwidth b:
//
//   S_{i,b} = (Σ x)^α · ‖x − x_q(b)‖^(1−α)
//
// "Block importance" (Σ x — attention mass routed through the block) and
// "quantization difficulty" (the L2 error a b-bit quantizer achieves on the
// block) are blended by hyper-parameter α ∈ [0, 1].
#pragma once

#include <array>
#include <vector>

#include "quant/blockwise.hpp"

namespace paro {

/// S_{i,b} for every block i and every b in kBitChoices, plus the block's
/// element count (the budget weight).
struct SensitivityEntry {
  std::array<double, kNumBitChoices> s{};  ///< indexed via bit_choice_index
  std::size_t count = 0;
};

using SensitivityTable = std::vector<SensitivityEntry>;

/// Compute the table from per-block stats.  `alpha` defaults to the
/// balanced setting 0.5.  Importance and difficulty are exponentiated per
/// the paper's formula; a zero base with a zero exponent is defined as 1
/// (so α = 1 ignores difficulty entirely and vice versa).
SensitivityTable compute_sensitivity(const std::vector<BlockQuantStats>& stats,
                                     double alpha = 0.5);

}  // namespace paro
