// Mixed-precision bitwidth allocation (paper Eq. 1).
//
//   argmin_{c}  Σ_i Σ_b c_{i,b} · S_{i,b}
//   s.t.        Σ_b c_{i,b} = 1  ∀i,     Σ_i Σ_b c_{i,b} · b ≤ B · N,
//               b ∈ {0, 2, 4, 8}
//
// Three solvers are provided:
//   * allocate_dp_exact   — exact 0/1 integer program via dynamic
//                           programming over the (block, budget) lattice;
//                           reference solver, O(N · budget) time.
//   * allocate_lagrangian — Lagrangian relaxation with bisection on the
//                           bit-price λ; near-optimal, O(N log(1/ε)).
//   * allocate_greedy     — marginal-cost downgrading from 8 bits;
//                           the fast online heuristic.
// Ragged edge tiles are handled by weighting each block's bits with its
// element count, which reduces to the paper's uniform count when N_token
// divides the block size.
#pragma once

#include <vector>

#include "mixedprec/sensitivity.hpp"
#include "quant/bittable.hpp"

namespace paro {

/// Outcome of an allocation.
struct Allocation {
  std::vector<int> bits;        ///< chosen bitwidth per block (flat order)
  double total_sensitivity = 0.0;
  double average_bitwidth = 0.0;  ///< element-weighted
};

/// Exact solver (dynamic programming).  Intended for tests and small
/// calibration problems; throws if the budget lattice would exceed
/// `max_states` (default 64M states).
Allocation allocate_dp_exact(const SensitivityTable& table,
                             double budget_bits,
                             std::size_t max_states = std::size_t{1} << 26);

/// Lagrangian-relaxation solver with bisection on λ.
Allocation allocate_lagrangian(const SensitivityTable& table,
                               double budget_bits, int iterations = 64);

/// Greedy marginal-cost solver: start at 8 bits everywhere and repeatedly
/// take the cheapest (ΔS per bit removed) downgrade until within budget.
Allocation allocate_greedy(const SensitivityTable& table, double budget_bits);

/// Wrap a flat bits vector into a BitTable over `grid` (row-major order,
/// matching collect_block_stats).
BitTable make_bittable(const BlockGrid& grid, const std::vector<int>& bits);

}  // namespace paro
