// Cycle-level models of PARO's auxiliary functional units (paper Fig. 4a):
//
//  * VectorUnitSim — the FP16 ALU array (Exp/Div/Add/Mult/Acc).  A job of
//    E elements and P passes (softmax = 3: max, exp+sum, normalize; +1
//    when the map is quantized inline) occupies the unit for
//    P · ceil(E / lanes) cycles; jobs are served FIFO.
//  * LdzUnitSim — the leading-zero detectors beside each PE row.  Values
//    stream through at `lanes` per cycle with a fixed pipeline latency;
//    outputs are the LdzCode truncations, in order, timed.
//
// Both are Components for the CycleEngine; tests pin their cycle counts
// to the closed forms used by the operator-level simulator.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "common/fixedpoint.hpp"
#include "sim/cycle_engine.hpp"

namespace paro {

/// One vector-unit job (e.g. softmax over a stripe of attention rows).
struct VectorJob {
  std::uint64_t elements = 0;
  int passes = 3;
};

class VectorUnitSim : public Component {
 public:
  explicit VectorUnitSim(double lanes);

  void submit(const VectorJob& job);

  void tick(std::uint64_t cycle) override;
  bool busy() const override;

  std::uint64_t busy_cycles() const { return busy_cycles_; }
  std::size_t jobs_completed() const { return jobs_completed_; }

  /// Closed-form cycles for one job (what the operator model charges).
  static std::uint64_t job_cycles(const VectorJob& job, double lanes);

 private:
  double lanes_;
  std::deque<std::uint64_t> queue_;  ///< remaining cycles per queued job
  std::uint64_t busy_cycles_ = 0;
  std::size_t jobs_completed_ = 0;
};

/// Streaming leading-zero truncation unit.
class LdzUnitSim : public Component {
 public:
  /// `lanes` values enter per cycle; results emerge `latency` cycles
  /// later, in order.
  LdzUnitSim(std::size_t lanes, std::size_t latency, int bits);

  /// Feed the input stream (call before running the engine).
  void submit(std::vector<std::int32_t> values);

  void tick(std::uint64_t cycle) override;
  bool busy() const override;

  /// Truncated outputs (valid once the engine quiesces).
  const std::vector<LdzCode>& outputs() const { return outputs_; }
  /// Cycle at which the last result emerged.
  std::uint64_t done_cycle() const { return done_cycle_; }

 private:
  std::size_t lanes_;
  std::size_t latency_;
  int bits_;
  std::vector<std::int32_t> inputs_;
  std::size_t next_in_ = 0;
  /// In-flight batches: (emerge_cycle, first_index, count).
  struct Batch {
    std::uint64_t emerge_cycle;
    std::size_t first;
    std::size_t count;
  };
  std::deque<Batch> in_flight_;
  std::vector<LdzCode> outputs_;
  std::uint64_t done_cycle_ = 0;
};

}  // namespace paro
