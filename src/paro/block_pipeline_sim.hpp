// Cycle-driven execution of an operator stream (one transformer block or
// a whole diffusion step) on the PARO resource set.
//
// Generalises the fused-attention stripe pipeline to arbitrary operator
// sequences: each operator carries PE cycles, vector cycles and DRAM
// load/store bytes; operators execute in order, but the DMA of operator
// i+1 overlaps the compute of operator i and the vector post-processing
// of operator i−1 (double-buffered SRAM, window of 2).
//
// This is the cycle-driven counterpart of OverlapModel::run — the
// operator model charges max(PE, vector, DRAM) per op, the pipeline here
// executes the same stream against a FIFO DRAM channel and exclusive
// PE / vector units.  Tests pin the two against each other; the bench
// reports the gap at CogVideoX scale.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/dram_model.hpp"
#include "sim/overlap.hpp"
#include "sim/resources.hpp"

namespace paro {

/// One operator for the cycle-driven block pipeline.
struct PipelineOp {
  std::uint64_t pe_cycles = 0;
  std::uint64_t vector_cycles = 0;
  double load_bytes = 0.0;   ///< DMA-in before compute can start
  double store_bytes = 0.0;  ///< DMA-out after vector post-processing
};

struct BlockPipelineResult {
  std::uint64_t cycles = 0;
  std::uint64_t pe_busy_cycles = 0;
  std::uint64_t vector_busy_cycles = 0;
  std::uint64_t dram_busy_cycles = 0;
  double dram_bytes = 0.0;
};

/// Run the operator stream to completion (cycle-driven).
BlockPipelineResult simulate_block_pipeline(const std::vector<PipelineOp>& ops,
                                            const HwResources& hw);

/// Run several independent operator streams (e.g. one per transformer
/// block or per head) through the common/thread_pool.  Result slot `i`
/// is produced solely from `streams[i]`, and each task accumulates its
/// observability metrics in a private shard that is flushed to the global
/// registry in stream order at the barrier — so results AND metric series
/// are bitwise-identical at any thread count.
std::vector<BlockPipelineResult> simulate_block_pipelines(
    const std::vector<std::vector<PipelineOp>>& streams,
    const HwResources& hw);

/// Convert the operator-level OpCost stream (ParoAccelerator::build_ops)
/// into pipeline operators, splitting each op's DRAM bytes evenly between
/// load and store (the overlap model does not distinguish them).
std::vector<PipelineOp> pipeline_ops_from_costs(
    const std::vector<OpCost>& costs);

}  // namespace paro
