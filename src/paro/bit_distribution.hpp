// Bitwidth distribution of attention-map blocks.
//
// The performance simulator does not need the exact calibrated BitTable of
// every (layer, head) at full CogVideoX scale — it needs the *distribution*
// of block bitwidths, which the mixed-precision allocator makes
// essentially scale-free (the block-diagonal structure puts a fixed
// fraction of tiles on/near the diagonal).  Benches calibrate a
// distribution on a scaled grid with the real algorithm stack and feed it
// here; a representative default (budget 4.80 bits) is provided.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "quant/bittable.hpp"
#include "sim/pe_array_sim.hpp"

namespace paro {

/// Fractions of attention-map blocks at each bitwidth in kBitChoices order
/// ({0, 2, 4, 8}).  Must sum to 1.
struct BitDistribution {
  std::array<double, kNumBitChoices> fraction{0.0, 0.0, 0.0, 1.0};

  double average_bits() const;
  void validate() const;  ///< throws unless fractions sum to ≈1

  /// All blocks at a single bitwidth.
  static BitDistribution uniform(int bits);
  /// Representative PARO-MP distribution at the paper's 4.80-bit budget.
  static BitDistribution paro_mp_default();
  /// Measure the distribution of a calibrated BitTable.
  static BitDistribution from_bittable(const BitTable& table);

  /// Expand into a shuffled per-block job list (`num_blocks` jobs, each
  /// needing `base_cycles` in 8-bit mode) for the PE-array scheduler.
  std::vector<PeBlockJob> make_jobs(std::size_t num_blocks,
                                    std::uint64_t base_cycles,
                                    Rng& rng) const;

  /// Expected per-block compute-cycle factor relative to all-8-bit, with
  /// the given PE mode speedups and 0-bit skipping (perfect dispatch).
  double ideal_cycle_factor(bool output_bitwidth_aware) const;
};

}  // namespace paro
