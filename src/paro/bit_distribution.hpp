// Bitwidth distribution of attention-map blocks.
//
// The performance simulator does not need the exact calibrated BitTable of
// every (layer, head) at full CogVideoX scale — it needs the *distribution*
// of block bitwidths, which the mixed-precision allocator makes
// essentially scale-free (the block-diagonal structure puts a fixed
// fraction of tiles on/near the diagonal).  Benches calibrate a
// distribution on a scaled grid with the real algorithm stack and feed it
// here; a representative default (budget 4.80 bits) is provided.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "quant/bittable.hpp"
#include "sim/pe_array_sim.hpp"

namespace paro {

/// Fractions of attention-map blocks at each bitwidth in kBitChoices order
/// ({0, 2, 4, 8}).  Must sum to 1.
struct BitDistribution {
  std::array<double, kNumBitChoices> fraction{0.0, 0.0, 0.0, 1.0};

  double average_bits() const;
  void validate() const;  ///< throws unless fractions sum to ≈1

  /// All blocks at a single bitwidth.
  static BitDistribution uniform(int bits);
  /// Representative PARO-MP distribution at the paper's 4.80-bit budget.
  static BitDistribution paro_mp_default();
  /// Measure the distribution of a calibrated BitTable.
  static BitDistribution from_bittable(const BitTable& table);
  /// Tile-weighted distribution from exact per-class tile counts — e.g.
  /// AttnExecStats::tiles_per_bits measured by the online executor, or
  /// BitTable::tiles_at sums aggregated over a saved calibration.
  static BitDistribution from_tile_counts(
      const std::array<std::uint64_t, kNumBitChoices>& counts);

  /// Expand into a shuffled per-block job list (`num_blocks` jobs, each
  /// needing `base_cycles` in 8-bit mode) for the PE-array scheduler.
  std::vector<PeBlockJob> make_jobs(std::size_t num_blocks,
                                    std::uint64_t base_cycles,
                                    Rng& rng) const;

  /// Expected per-block compute-cycle factor relative to all-8-bit, with
  /// the given PE mode speedups and 0-bit skipping (perfect dispatch).
  double ideal_cycle_factor(bool output_bitwidth_aware) const;
};

/// Deterministic split of exact per-class tile counts across `num_slices`
/// stripes: slice `s` of class `i` gets counts[i]·(s+1)/S − counts[i]·s/S,
/// so the slices sum to the totals exactly and no class drifts by more
/// than one tile between stripes.  Used by the fused-attention simulator
/// to spread executor-measured counts over its stripe schedule.
std::array<std::uint64_t, kNumBitChoices> slice_tile_counts(
    const std::array<std::uint64_t, kNumBitChoices>& counts,
    std::size_t slice, std::size_t num_slices);

/// Expand exact per-class counts into a shuffled job list (the exact-count
/// analogue of BitDistribution::make_jobs).
std::vector<PeBlockJob> expand_tile_count_jobs(
    const std::array<std::uint64_t, kNumBitChoices>& counts,
    std::uint64_t base_cycles, Rng& rng);

}  // namespace paro
