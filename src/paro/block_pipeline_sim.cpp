#include "paro/block_pipeline_sim.hpp"

#include <cmath>

#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "sim/cycle_engine.hpp"

namespace paro {

namespace {

class OpController : public Component {
 public:
  OpController(const std::vector<PipelineOp>& ops, DramModel* dram)
      : ops_(ops), dram_(dram) {}

  void tick(std::uint64_t /*cycle*/) override {
    // Issue loads within the double-buffer window.
    while (next_load_ < ops_.size() && next_load_ < compute_done_ + 2) {
      load_tickets_.push_back(dram_->request(ops_[next_load_].load_bytes));
      ++next_load_;
    }
    // PE stage.
    if (pe_remaining_ == 0 && next_compute_ < ops_.size() &&
        next_compute_ < load_tickets_.size() &&
        dram_->complete(load_tickets_[next_compute_]) &&
        next_compute_ < post_done_ + 2) {
      pe_remaining_ = ops_[next_compute_].pe_cycles;
      if (pe_remaining_ == 0) {
        ++next_compute_;
        ++compute_done_;
      }
    }
    if (pe_remaining_ > 0) {
      --pe_remaining_;
      ++pe_busy_;
      if (pe_remaining_ == 0) {
        ++next_compute_;
        ++compute_done_;
      }
    }
    // Vector stage + store.
    if (vec_remaining_ == 0 && next_post_ < compute_done_) {
      vec_remaining_ = ops_[next_post_].vector_cycles;
      if (vec_remaining_ == 0) {
        dram_->request(ops_[next_post_].store_bytes);
        ++next_post_;
        ++post_done_;
      }
    }
    if (vec_remaining_ > 0) {
      --vec_remaining_;
      ++vec_busy_;
      if (vec_remaining_ == 0) {
        dram_->request(ops_[next_post_].store_bytes);
        ++next_post_;
        ++post_done_;
      }
    }
  }

  bool busy() const override { return post_done_ < ops_.size(); }

  std::uint64_t pe_busy() const { return pe_busy_; }
  std::uint64_t vec_busy() const { return vec_busy_; }

 private:
  const std::vector<PipelineOp>& ops_;
  DramModel* dram_;
  std::vector<std::uint64_t> load_tickets_;
  std::size_t next_load_ = 0;
  std::size_t next_compute_ = 0;
  std::size_t next_post_ = 0;
  std::size_t compute_done_ = 0;
  std::size_t post_done_ = 0;
  std::uint64_t pe_remaining_ = 0;
  std::uint64_t vec_remaining_ = 0;
  std::uint64_t pe_busy_ = 0;
  std::uint64_t vec_busy_ = 0;
};

}  // namespace

BlockPipelineResult simulate_block_pipeline(const std::vector<PipelineOp>& ops,
                                            const HwResources& hw) {
  PARO_CHECK_MSG(!ops.empty(), "empty operator stream");
  DramModel dram(hw.dram_bytes_per_cycle());
  OpController controller(ops, &dram);
  CycleEngine engine;
  engine.add(&dram);
  engine.add(&controller);
  const std::uint64_t cycles = engine.run(1ULL << 40);

  BlockPipelineResult result;
  result.cycles = cycles;
  result.pe_busy_cycles = controller.pe_busy();
  result.vector_busy_cycles = controller.vec_busy();
  result.dram_busy_cycles = dram.busy_cycles();
  result.dram_bytes = dram.total_bytes();
  return result;
}

std::vector<BlockPipelineResult> simulate_block_pipelines(
    const std::vector<std::vector<PipelineOp>>& streams,
    const HwResources& hw) {
  std::vector<BlockPipelineResult> results(streams.size());
  std::vector<obs::MetricsShard> shards(streams.size());
  global_pool().parallel_for(0, streams.size(), 1, [&](std::size_t i) {
    results[i] = simulate_block_pipeline(streams[i], hw);
    shards[i].add("sim.pipeline.streams");
    shards[i].add("sim.pipeline.cycles",
                  static_cast<double>(results[i].cycles));
    shards[i].observe("sim.pipeline.stream_cycles",
                      static_cast<double>(results[i].cycles));
  });
  // Ordered flush: stats series fold in stream order at any thread count.
  auto& reg = obs::MetricsRegistry::global();
  for (obs::MetricsShard& shard : shards) {
    shard.flush_to(reg);
  }
  return results;
}

std::vector<PipelineOp> pipeline_ops_from_costs(
    const std::vector<OpCost>& costs) {
  std::vector<PipelineOp> ops;
  ops.reserve(costs.size());
  for (const OpCost& c : costs) {
    PipelineOp op;
    op.pe_cycles = static_cast<std::uint64_t>(std::ceil(c.compute_cycles));
    op.vector_cycles =
        static_cast<std::uint64_t>(std::ceil(c.vector_cycles));
    op.load_bytes = c.dram_bytes * 0.5;
    op.store_bytes = c.dram_bytes * 0.5;
    ops.push_back(op);
  }
  return ops;
}

}  // namespace paro
