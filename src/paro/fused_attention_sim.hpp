// Cycle-driven model of PARO's fused attention pipeline for one head.
//
// Q is processed in stripes sized by the SRAM budget; each stripe flows
// through a three-stage pipeline:
//
//   LOAD    DMA the stripe's Q rows plus the streamed K/V (DramModel)
//   COMPUTE QKᵀ blocks then AttnV blocks on the PE array (dispatcher
//           schedule, per-block bitwidths — pe_array_cycles_analytic,
//           itself validated cycle-by-cycle against PeArraySim)
//   POST    softmax + map quantization on the vector unit, then the
//           output rows drain back over DRAM
//
// Stages of consecutive stripes overlap (double-buffered SRAM): while
// stripe i computes, stripe i+1 loads and stripe i−1 post-processes.
// This is the microarchitectural justification for the operator-level
// OverlapModel the end-to-end simulator uses: tests check the two agree
// to within the pipeline fill/drain overhead.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "paro/bit_distribution.hpp"
#include "sim/dram_model.hpp"
#include "sim/resources.hpp"

namespace paro::obs {
class CostLedger;
}  // namespace paro::obs

namespace paro {

struct FusedAttentionParams {
  std::size_t tokens = 0;
  std::size_t head_dim = 64;
  std::size_t map_block = 64;     ///< attention-map tile side
  BitDistribution map_bits = BitDistribution::paro_mp_default();
  /// Exact per-class tile counts for the whole head, kBitChoices order —
  /// feed AttnExecStats::tiles_per_bits here so the simulator schedules
  /// the tiles the executor actually dispatched instead of re-deriving a
  /// per-stripe mix from `map_bits` fractions.  Counts are spread across
  /// stripes with slice_tile_counts (sums are exact).
  std::optional<std::array<std::uint64_t, kNumBitChoices>> tile_counts;
  bool output_bitwidth_aware = true;
  bool dispatcher = true;
  bool quantized = true;          ///< INT8 flow vs FP16 baseline
  std::uint64_t seed = 7;
  /// Attribution key used when a CostLedger is passed to
  /// simulate_fused_attention_heads: which (layer, head) this pipeline
  /// models.  Has no effect on the simulation itself.
  std::size_t layer = 0;
  std::size_t head = 0;
};

struct FusedAttentionResult {
  std::uint64_t cycles = 0;
  double dram_bytes = 0.0;
  std::uint64_t pe_busy_cycles = 0;
  std::uint64_t vector_busy_cycles = 0;
  std::uint64_t dram_busy_cycles = 0;
  std::size_t stripes = 0;
  double sram_peak_bytes = 0.0;
};

/// Run the cycle-driven pipeline to completion.
FusedAttentionResult simulate_fused_attention(const FusedAttentionParams& p,
                                              const HwResources& hw);

/// Simulate many independent heads through the common/thread_pool.
/// Result slot `i` depends only on `heads[i]`; per-task metric shards are
/// flushed to the global registry in head order at the barrier, so both
/// results and metric series are identical at any thread count.
///
/// When `cost_ledger` is non-null, each head's cycles / PE-busy cycles /
/// DRAM bytes are attributed to its (layer, head) across the bitwidth
/// classes, weighted by tile_count·bits (everything lands on the 8-bit
/// class when tile_counts is absent, and on the 0-bit class when every
/// tile was skipped).  The splits are remainder-exact, so ledger totals
/// equal the summed FusedAttentionResult aggregates.  Feeding happens on
/// the calling thread in head order after the barrier — deterministic at
/// any thread count.
std::vector<FusedAttentionResult> simulate_fused_attention_heads(
    const std::vector<FusedAttentionParams>& heads, const HwResources& hw,
    obs::CostLedger* cost_ledger = nullptr);

}  // namespace paro
