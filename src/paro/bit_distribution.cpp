#include "paro/bit_distribution.hpp"

#include <cmath>

#include "common/error.hpp"
#include "sim/resources.hpp"

namespace paro {

double BitDistribution::average_bits() const {
  double avg = 0.0;
  for (int i = 0; i < kNumBitChoices; ++i) {
    avg += fraction[static_cast<std::size_t>(i)] * kBitChoices[i];
  }
  return avg;
}

void BitDistribution::validate() const {
  double sum = 0.0;
  for (const double f : fraction) {
    PARO_CHECK_MSG(f >= 0.0 && f <= 1.0, "fractions must be in [0,1]");
    sum += f;
  }
  PARO_CHECK_MSG(std::abs(sum - 1.0) < 1e-6, "fractions must sum to 1");
}

BitDistribution BitDistribution::uniform(int bits) {
  BitDistribution d;
  d.fraction = {0.0, 0.0, 0.0, 0.0};
  d.fraction[static_cast<std::size_t>(bit_choice_index(bits))] = 1.0;
  return d;
}

BitDistribution BitDistribution::paro_mp_default() {
  // {0, 2, 4, 8} bits.  Average = 0.2·0 + 0.25·2 + 0.3·4 + 0.25·8 = 3.7…
  // chosen so the *element-weighted* average lands at 4.80 with the
  // calibration bias toward keeping diagonal blocks at 8 bits:
  // 0·f0 + 2·f2 + 4·f4 + 8·f8 = 4.8 with f = {.10, .20, .30, .40}.
  BitDistribution d;
  d.fraction = {0.10, 0.20, 0.30, 0.40};
  return d;
}

BitDistribution BitDistribution::from_bittable(const BitTable& table) {
  BitDistribution d;
  d.fraction = {0.0, 0.0, 0.0, 0.0};
  for (int i = 0; i < kNumBitChoices; ++i) {
    d.fraction[static_cast<std::size_t>(i)] =
        table.fraction_at(kBitChoices[i]);
  }
  // fraction_at is element-weighted; re-normalise against rounding.
  double sum = 0.0;
  for (const double f : d.fraction) sum += f;
  PARO_CHECK(sum > 0.0);
  for (double& f : d.fraction) f /= sum;
  return d;
}

BitDistribution BitDistribution::from_tile_counts(
    const std::array<std::uint64_t, kNumBitChoices>& counts) {
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  PARO_CHECK_MSG(total > 0, "tile counts are all zero");
  BitDistribution d;
  for (int i = 0; i < kNumBitChoices; ++i) {
    d.fraction[static_cast<std::size_t>(i)] =
        static_cast<double>(counts[static_cast<std::size_t>(i)]) /
        static_cast<double>(total);
  }
  return d;
}

std::array<std::uint64_t, kNumBitChoices> slice_tile_counts(
    const std::array<std::uint64_t, kNumBitChoices>& counts,
    std::size_t slice, std::size_t num_slices) {
  PARO_CHECK(num_slices > 0 && slice < num_slices);
  std::array<std::uint64_t, kNumBitChoices> out{};
  for (int i = 0; i < kNumBitChoices; ++i) {
    const std::uint64_t c = counts[static_cast<std::size_t>(i)];
    out[static_cast<std::size_t>(i)] =
        c * (slice + 1) / num_slices - c * slice / num_slices;
  }
  return out;
}

std::vector<PeBlockJob> expand_tile_count_jobs(
    const std::array<std::uint64_t, kNumBitChoices>& counts,
    std::uint64_t base_cycles, Rng& rng) {
  std::vector<PeBlockJob> jobs;
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  jobs.reserve(total);
  for (int i = 0; i < kNumBitChoices; ++i) {
    for (std::uint64_t j = 0; j < counts[static_cast<std::size_t>(i)]; ++j) {
      jobs.push_back({kBitChoices[i], base_cycles});
    }
  }
  rng.shuffle(jobs);
  return jobs;
}

std::vector<PeBlockJob> BitDistribution::make_jobs(std::size_t num_blocks,
                                                   std::uint64_t base_cycles,
                                                   Rng& rng) const {
  validate();
  std::vector<PeBlockJob> jobs;
  jobs.reserve(num_blocks);
  // Deterministic counts per class (largest-remainder rounding), then a
  // seeded shuffle to emulate the irregular spatial layout.
  std::array<std::size_t, kNumBitChoices> counts{};
  std::size_t assigned = 0;
  for (int i = 0; i < kNumBitChoices; ++i) {
    counts[static_cast<std::size_t>(i)] = static_cast<std::size_t>(
        std::floor(fraction[static_cast<std::size_t>(i)] *
                   static_cast<double>(num_blocks)));
    assigned += counts[static_cast<std::size_t>(i)];
  }
  // Give leftovers to the highest-bit classes (conservative).
  for (int i = kNumBitChoices - 1; assigned < num_blocks; ) {
    ++counts[static_cast<std::size_t>(i)];
    ++assigned;
    i = i == 0 ? kNumBitChoices - 1 : i - 1;
  }
  for (int i = 0; i < kNumBitChoices; ++i) {
    for (std::size_t j = 0; j < counts[static_cast<std::size_t>(i)]; ++j) {
      jobs.push_back({kBitChoices[i], base_cycles});
    }
  }
  rng.shuffle(jobs);
  return jobs;
}

double BitDistribution::ideal_cycle_factor(bool output_bitwidth_aware) const {
  validate();
  if (!output_bitwidth_aware) {
    // QKᵀ without the OBA flow cannot exploit the table at all: every
    // block, 0-bit ones included, is computed at the 8-bit input rate.
    return 1.0;
  }
  double factor = 0.0;
  for (int i = 0; i < kNumBitChoices; ++i) {
    const int bits = kBitChoices[i];
    if (bits == 0) continue;  // dispatcher bypass
    factor += fraction[static_cast<std::size_t>(i)] /
              HwResources::mode_speedup(bits);
  }
  return factor;
}

}  // namespace paro
