// End-to-end performance model of the PARO accelerator (paper §IV).
//
// Dataflow:
//  * All matrix multiplications run on the mixed-precision PE array;
//    softmax / dequant / reorder run on the FP16 vector unit.
//  * Attention is FUSED per head: Q stripes stream against K/V held (or
//    re-streamed) in SRAM, the quantized attention map lives entirely
//    on-chip — only Q/K/V/O touch DRAM.  This is what the 1.5 MB buffer
//    plus low-bit map makes possible, and is the root of PARO's advantage
//    over the baselines that materialise sparse maps off-chip.
//  * QKᵀ compute is scheduled per attention-map block through the
//    dispatcher model (pe_array_cycles_analytic, validated cycle-by-cycle
//    by PeArraySim): 0-bit blocks are bypassed, and with the
//    output-bitwidth-aware LDZ path 4/2-bit destination blocks run at
//    2×/4× rate.  AttnV blocks always enjoy the mixed-precision input
//    speedup (the map IS the input there).
//
// Ablation switches reproduce Fig. 6(b): fp16_baseline → w8a8_only →
// quant_attention → + output_bitwidth_aware.
#pragma once

#include <array>
#include <map>
#include <mutex>
#include <tuple>

#include "model/workload.hpp"
#include "paro/bit_distribution.hpp"
#include "sim/overlap.hpp"
#include "sim/resources.hpp"

namespace paro {

struct ParoConfig {
  bool w8a8_linear = true;          ///< INT8 linear layers
  bool quant_attention = true;      ///< INT8 QKV + mixed-precision map
  bool output_bitwidth_aware = true;  ///< LDZ-truncated QKᵀ
  bool dispatcher = true;           ///< block load-balancing across PE rows
  bool include_reorder = true;      ///< online QKVO reorder overhead
  /// Model linear-layer DRAM traffic with the SRAM tiling planner
  /// (weight/activation re-reads) instead of the optimistic stream-once
  /// bound.  Off by default: the paper-aligned headline numbers use the
  /// stream-once convention for every platform; this switch quantifies
  /// how sensitive the conclusions are to that convention (see
  /// examples/design_space and EXPERIMENTS.md).
  bool tiled_linear_traffic = false;
  std::size_t map_block = 64;       ///< attention-map tile side
  BitDistribution map_bits = BitDistribution::paro_mp_default();
  std::uint64_t seed = 7;           ///< job-shuffle seed

  /// Fig. 6(b) ablation presets.
  static ParoConfig fp16_baseline();
  static ParoConfig w8a8_only();
  static ParoConfig quant_attn();   ///< + attention quant, no OBA
  static ParoConfig full();
};

class ParoAccelerator {
 public:
  ParoAccelerator(HwResources hw, ParoConfig config);

  const HwResources& resources() const { return hw_; }
  const ParoConfig& config() const { return cfg_; }

  /// Operator cost list for one diffusion step (exposed for tests).
  std::vector<OpCost> build_ops(const Workload& workload) const;

  /// Simulate one diffusion step.  When `trace` is non-null, per-operator
  /// intervals are recorded (sim/trace.hpp).
  SimStats simulate_step(const Workload& workload,
                         Trace* trace = nullptr) const;

  /// Simulate a full video (workload × sampling steps).  When
  /// `step_trace` is non-null it records the operator schedule of ONE
  /// representative diffusion step (every step runs the same schedule;
  /// the returned stats are still scaled to the full video).
  SimStats simulate_video(const ModelConfig& model,
                          Trace* step_trace = nullptr) const;

 private:
  /// PE-array cycles of one attention GEMM, through the dispatcher model.
  double attention_gemm_cycles(const GemmOp& gemm, bool is_qk) const;

  /// Number of Q-stripe passes the fused attention needs over K/V.
  double kv_stream_passes(std::size_t tokens, std::size_t head_dim) const;

  HwResources hw_;
  ParoConfig cfg_;
  /// Scheduled attention-map tiles per bitwidth, kBitChoices order.
  using TileCounts = std::array<std::uint64_t, kNumBitChoices>;
  struct SchedEntry {
    double cycles = 0.0;
    TileCounts tiles{};
  };
  /// Memoised scheduler results: identical GEMM shapes recur per head/layer.
  /// sched_mu_ serializes lookup+fill so one accelerator may be shared by
  /// concurrent simulations; each entry is a pure function of its key, so
  /// the cache contents never depend on arrival order.
  mutable std::mutex sched_mu_;
  mutable std::map<std::tuple<std::size_t, std::size_t, std::size_t, bool>,
                   SchedEntry>
      sched_cache_;
};

}  // namespace paro
