#include "paro/accelerator.hpp"

#include <array>
#include <cmath>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "sim/tiling.hpp"

namespace paro {

ParoConfig ParoConfig::fp16_baseline() {
  ParoConfig c;
  c.w8a8_linear = false;
  c.quant_attention = false;
  c.output_bitwidth_aware = false;
  c.include_reorder = false;
  return c;
}

ParoConfig ParoConfig::w8a8_only() {
  ParoConfig c = fp16_baseline();
  c.w8a8_linear = true;
  return c;
}

ParoConfig ParoConfig::quant_attn() {
  ParoConfig c;
  c.w8a8_linear = true;
  c.quant_attention = true;
  c.output_bitwidth_aware = false;
  c.include_reorder = true;
  return c;
}

ParoConfig ParoConfig::full() {
  ParoConfig c;
  return c;  // defaults are the fully optimised design
}

ParoAccelerator::ParoAccelerator(HwResources hw, ParoConfig config)
    : hw_(std::move(hw)), cfg_(std::move(config)) {
  cfg_.map_bits.validate();
  PARO_CHECK_MSG(cfg_.map_block > 0, "map_block must be positive");
}

double ParoAccelerator::kv_stream_passes(std::size_t tokens,
                                         std::size_t head_dim) const {
  // Fused (flash-style) attention: a group of Q rows is resident with its
  // FP32 output accumulators while K/V stream through.  The Q-group size
  // is bounded by half the SRAM; every group re-streams K and V once.
  const double acc_bytes = 4.0 + 2.0;  // FP32 accumulator + staging
  const double q_rows =
      std::max(32.0, std::floor(hw_.sram_bytes * 0.5 /
                                (static_cast<double>(head_dim) * acc_bytes)));
  return std::ceil(static_cast<double>(tokens) / q_rows);
}

double ParoAccelerator::attention_gemm_cycles(const GemmOp& gemm,
                                              bool is_qk) const {
  const double rows = 32.0;
  if (!cfg_.quant_attention) {
    // FP16 attention on the fixed-point array: reduced MAC rate.
    return gemm.macs() / (hw_.pe_macs_per_cycle * hw_.fp16_rate_factor);
  }
  const std::size_t n_tokens = is_qk ? gemm.n : gemm.k;
  const std::size_t head_dim = is_qk ? gemm.k : gemm.n;
  const auto key = std::make_tuple(gemm.m, n_tokens, head_dim, is_qk);
  auto& reg = obs::MetricsRegistry::global();
  const auto count_tiles = [&reg](const TileCounts& tiles) {
    for (int b = 0; b < kNumBitChoices; ++b) {
      if (tiles[static_cast<std::size_t>(b)] == 0) continue;
      reg.counter("sim.tiles_bits",
                  {{"bits", std::to_string(kBitChoices[b])}})
          .add(static_cast<double>(tiles[static_cast<std::size_t>(b)]));
    }
  };
  const std::lock_guard<std::mutex> cache_lock(sched_mu_);
  const auto it = sched_cache_.find(key);
  if (it != sched_cache_.end()) {
    reg.counter("sim.sched_cache_hits").add(1.0);
    count_tiles(it->second.tiles);
    return it->second.cycles;
  }

  const std::size_t b = cfg_.map_block;
  const std::size_t blocks_r = (gemm.m + b - 1) / b;
  const std::size_t blocks_c = (n_tokens + b - 1) / b;
  // Row-group cycles of one block in 8-bit mode: block MACs over the
  // per-row-group MAC rate.
  const double row_rate = hw_.pe_macs_per_cycle / rows;
  const auto base_cycles = static_cast<std::uint64_t>(std::ceil(
      static_cast<double>(b) * static_cast<double>(b) *
      static_cast<double>(head_dim) / row_rate));

  BitDistribution dist = cfg_.map_bits;
  if (is_qk && !cfg_.output_bitwidth_aware) {
    // Without the output-bitwidth-aware flow, QKᵀ has no knowledge of the
    // destination block's bitwidth: every block (including ones whose
    // output will be dropped) runs at the full 8-bit input precision.
    dist = BitDistribution::uniform(8);
  }
  Rng rng(cfg_.seed ^ (is_qk ? 0x9e37ULL : 0x85ebULL));
  const auto jobs = dist.make_jobs(blocks_r * blocks_c, base_cycles, rng);
  PeArrayConfig pe_cfg;
  pe_cfg.rows = static_cast<std::size_t>(rows);
  pe_cfg.dispatcher = cfg_.dispatcher;
  const double cycles =
      static_cast<double>(pe_array_cycles_analytic(pe_cfg, jobs));
  SchedEntry entry;
  entry.cycles = cycles;
  for (const PeBlockJob& job : jobs) {
    ++entry.tiles[static_cast<std::size_t>(bit_choice_index(job.bits))];
  }
  count_tiles(entry.tiles);
  sched_cache_[key] = entry;
  return cycles;
}

std::vector<OpCost> ParoAccelerator::build_ops(const Workload& w) const {
  PARO_SPAN("sim.build_ops");
  std::vector<OpCost> ops;
  const double lanes = hw_.vector_lanes;
  const double act_bytes = cfg_.w8a8_linear ? 1.0 : 2.0;
  const double weight_bytes = cfg_.w8a8_linear ? 1.0 : 2.0;

  // --- GEMMs ---
  for (const GemmOp& g : w.gemms) {
    switch (g.kind) {
      case GemmKind::kLinear: {
        OpCost op;
        op.phase = "linear";
        const double rate = hw_.pe_macs_per_cycle *
                            (cfg_.w8a8_linear ? 1.0 : hw_.fp16_rate_factor);
        op.compute_cycles = g.macs() / rate;
        if (cfg_.tiled_linear_traffic) {
          TilingProblem tp;
          tp.m = g.m;
          tp.k = g.k;
          tp.n = g.n;
          tp.a_elem_bytes = act_bytes;
          tp.b_elem_bytes = weight_bytes;
          tp.sram_bytes = hw_.sram_bytes * 0.8;
          op.dram_bytes = plan_gemm_tiling(tp).traffic_bytes;
        } else {
          op.dram_bytes =
              act_bytes * (static_cast<double>(g.m) * g.k +
                           static_cast<double>(g.m) * g.n) +
              weight_bytes * static_cast<double>(g.k) * g.n;
        }
        if (cfg_.w8a8_linear) {
          op.vector_cycles = static_cast<double>(g.m) * g.n / lanes;  // dequant
        }
        ops.push_back(op);
        break;
      }
      case GemmKind::kQK: {
        // Fused attention head: QKᵀ + softmax (+ map quant) + AttnV in one
        // on-chip pipeline; the map never reaches DRAM.
        const std::size_t n = g.m;       // tokens
        const std::size_t dh = g.k;      // head dim
        OpCost op;
        op.phase = "attention";
        op.compute_cycles = attention_gemm_cycles(g, /*is_qk=*/true);
        GemmOp av;
        av.kind = GemmKind::kAttnV;
        av.m = n;
        av.k = n;
        av.n = dh;
        op.compute_cycles += attention_gemm_cycles(av, /*is_qk=*/false);
        const double softmax_passes = cfg_.quant_attention ? 4.0 : 3.0;
        op.vector_cycles = softmax_passes * static_cast<double>(n) * n / lanes;
        const double passes = kv_stream_passes(n, dh);
        const double attn_act = cfg_.quant_attention ? 1.0 : 2.0;
        op.dram_bytes =
            attn_act * static_cast<double>(n) * dh *  // Q once, O once
                (2.0 + 2.0 * passes);                 // K and V per pass
        ops.push_back(op);
        break;
      }
      case GemmKind::kAttnV:
        break;  // folded into the fused kQK op above
    }
  }

  // --- vector operations ---
  for (const VectorOp& v : w.vectors) {
    const auto e = static_cast<double>(v.elements);
    OpCost op;
    switch (v.kind) {
      case VectorKind::kSoftmax:
        continue;  // inside the fused attention op
      case VectorKind::kLayerNorm:
        op.phase = "vector";
        op.vector_cycles = 3.0 * e / lanes;
        op.dram_bytes = 2.0 * e * 2.0;  // FP16 stream in/out
        break;
      case VectorKind::kGelu:
        op.phase = "vector";
        op.vector_cycles = 2.0 * e / lanes;
        op.dram_bytes = 2.0 * e * act_bytes;
        break;
      case VectorKind::kResidual:
        op.phase = "vector";
        op.vector_cycles = e / lanes;
        op.dram_bytes = 3.0 * e * 2.0;
        break;
      case VectorKind::kDequant:
        op.phase = "vector";
        op.vector_cycles = e / lanes;
        break;
      case VectorKind::kReorder:
        if (!cfg_.include_reorder) continue;
        // The permutation is known offline, so the gather is fused into
        // the QKV write-out / O read-in as address generation: no extra
        // DRAM round trip, only gather/scatter issue slots.
        op.phase = "reorder";
        op.vector_cycles = 2.0 * e / lanes;
        break;
    }
    ops.push_back(op);
  }
  return ops;
}

SimStats ParoAccelerator::simulate_step(const Workload& workload,
                                        Trace* trace) const {
  PARO_SPAN("sim.step");
  const OverlapModel model(hw_);
  return model.run(build_ops(workload), trace);
}

SimStats ParoAccelerator::simulate_video(const ModelConfig& model,
                                         Trace* step_trace) const {
  PARO_SPAN("sim.video");
  const Workload w = Workload::build(
      model, cfg_.include_reorder && cfg_.quant_attention);
  SimStats stats = simulate_step(w, step_trace);
  stats.scale(static_cast<double>(model.sampling_steps));
  obs::MetricsRegistry::global()
      .counter("sim.videos_simulated")
      .add(1.0);
  return stats;
}

}  // namespace paro
