#include "paro/functional_units.hpp"

#include <cmath>

#include "common/error.hpp"

namespace paro {

VectorUnitSim::VectorUnitSim(double lanes) : lanes_(lanes) {
  PARO_CHECK_MSG(lanes > 0.0, "vector unit needs lanes");
}

std::uint64_t VectorUnitSim::job_cycles(const VectorJob& job, double lanes) {
  PARO_CHECK_MSG(job.passes > 0, "job needs at least one pass");
  const auto per_pass = static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(job.elements) / lanes));
  return static_cast<std::uint64_t>(job.passes) * per_pass;
}

void VectorUnitSim::submit(const VectorJob& job) {
  queue_.push_back(job_cycles(job, lanes_));
}

void VectorUnitSim::tick(std::uint64_t /*cycle*/) {
  if (queue_.empty()) return;
  ++busy_cycles_;
  if (--queue_.front() == 0) {
    queue_.pop_front();
    ++jobs_completed_;
  }
}

bool VectorUnitSim::busy() const { return !queue_.empty(); }

LdzUnitSim::LdzUnitSim(std::size_t lanes, std::size_t latency, int bits)
    : lanes_(lanes), latency_(latency), bits_(bits) {
  PARO_CHECK_MSG(lanes > 0, "LDZ unit needs lanes");
  PARO_CHECK_MSG(latency >= 1, "pipeline latency must be >= 1");
}

void LdzUnitSim::submit(std::vector<std::int32_t> values) {
  PARO_CHECK_MSG(inputs_.empty() && outputs_.empty(),
                 "submit once per simulation");
  inputs_ = std::move(values);
  outputs_.reserve(inputs_.size());
}

void LdzUnitSim::tick(std::uint64_t cycle) {
  // Retire batches whose results emerge this cycle.
  while (!in_flight_.empty() && in_flight_.front().emerge_cycle <= cycle) {
    const Batch batch = in_flight_.front();
    in_flight_.pop_front();
    for (std::size_t i = 0; i < batch.count; ++i) {
      outputs_.push_back(ldz_truncate(inputs_[batch.first + i], bits_));
    }
    done_cycle_ = cycle;
  }
  // Issue the next batch of up to `lanes` values.
  if (next_in_ < inputs_.size()) {
    const std::size_t count =
        std::min(lanes_, inputs_.size() - next_in_);
    in_flight_.push_back({cycle + latency_, next_in_, count});
    next_in_ += count;
  }
}

bool LdzUnitSim::busy() const {
  return next_in_ < inputs_.size() || !in_flight_.empty();
}

}  // namespace paro
