#include "paro/fused_attention_sim.hpp"

#include <cmath>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "obs/attribution.hpp"
#include "obs/metrics.hpp"
#include "sim/pe_array_sim.hpp"

namespace paro {

namespace {

/// The stripe controller: drives stripes through LOAD → COMPUTE → POST,
/// double-buffered against the shared DRAM channel.
class StripeController : public Component {
 public:
  StripeController(const FusedAttentionParams& p, const HwResources& hw,
                   DramModel* dram, SramBuffer* sram)
      : dram_(dram), sram_(sram) {
    PARO_CHECK(p.tokens > 0);
    const double act_bytes = p.quantized ? 1.0 : 2.0;
    const auto dh = static_cast<double>(p.head_dim);

    // Stripe sizing (same rule as the operator-level model): the Q group
    // with its FP32 accumulators owns half the SRAM.
    const double acc_bytes = 6.0;
    stripe_rows_ = static_cast<std::size_t>(std::max(
        32.0, std::floor(hw.sram_bytes * 0.5 / (dh * acc_bytes))));
    stripes_ = (p.tokens + stripe_rows_ - 1) / stripe_rows_;
    stripe_working_set_ = static_cast<double>(stripe_rows_) * dh * acc_bytes;

    // Pre-compute per-stripe costs.
    const double rows = 32.0;
    const double row_rate = hw.pe_macs_per_cycle / rows;
    const auto base_cycles = static_cast<std::uint64_t>(
        std::ceil(static_cast<double>(p.map_block) * p.map_block * dh /
                  row_rate));
    load_bytes_.resize(stripes_);
    pe_cycles_.resize(stripes_);
    vec_cycles_.resize(stripes_);
    store_bytes_.resize(stripes_);
    Rng rng(p.seed);
    for (std::size_t s = 0; s < stripes_; ++s) {
      const std::size_t r0 = s * stripe_rows_;
      const std::size_t r1 = std::min(r0 + stripe_rows_, p.tokens);
      const std::size_t rows_here = r1 - r0;
      load_bytes_[s] = act_bytes * (static_cast<double>(rows_here) * dh +
                                    2.0 * static_cast<double>(p.tokens) * dh);
      store_bytes_[s] = act_bytes * static_cast<double>(rows_here) * dh;

      if (p.quantized) {
        std::vector<PeBlockJob> qk_jobs;
        std::vector<PeBlockJob> av_jobs;
        if (p.tile_counts.has_value()) {
          // Executor-measured counts: this stripe schedules its exact
          // slice of the tiles the online engine actually dispatched.
          const auto slice = slice_tile_counts(*p.tile_counts, s, stripes_);
          av_jobs = expand_tile_count_jobs(slice, base_cycles, rng);
          if (p.output_bitwidth_aware) {
            qk_jobs = expand_tile_count_jobs(slice, base_cycles, rng);
          } else {
            // Without OBA the table cannot steer QKᵀ: every tile — 0-bit
            // ones included, their logits feed the softmax denominator —
            // computes at the 8-bit input rate.
            std::array<std::uint64_t, kNumBitChoices> all8{};
            for (const std::uint64_t c : slice) {
              all8[kNumBitChoices - 1] += c;
            }
            qk_jobs = expand_tile_count_jobs(all8, base_cycles, rng);
          }
        } else {
          const std::size_t br = (rows_here + p.map_block - 1) / p.map_block;
          const std::size_t bc = (p.tokens + p.map_block - 1) / p.map_block;
          BitDistribution qk_bits = p.map_bits;
          if (!p.output_bitwidth_aware) {
            qk_bits = BitDistribution::uniform(8);
          }
          qk_jobs = qk_bits.make_jobs(br * bc, base_cycles, rng);
          av_jobs = p.map_bits.make_jobs(br * bc, base_cycles, rng);
        }
        const PeArrayConfig pe_cfg{static_cast<std::size_t>(rows),
                                   p.dispatcher};
        pe_cycles_[s] = pe_array_cycles_analytic(pe_cfg, qk_jobs) +
                        pe_array_cycles_analytic(pe_cfg, av_jobs);
      } else {
        const double macs = 2.0 * static_cast<double>(rows_here) *
                            static_cast<double>(p.tokens) * dh;
        pe_cycles_[s] = static_cast<std::uint64_t>(std::ceil(
            macs / (hw.pe_macs_per_cycle * hw.fp16_rate_factor)));
      }
      const double passes = p.quantized ? 4.0 : 3.0;
      vec_cycles_[s] = static_cast<std::uint64_t>(std::ceil(
          passes * static_cast<double>(rows_here) *
          static_cast<double>(p.tokens) / hw.vector_lanes));
    }
  }

  void tick(std::uint64_t /*cycle*/) override {
    // 1. issue loads within the double-buffer window (2 stripes beyond
    //    the one currently computing).
    while (next_load_ < stripes_ && next_load_ < compute_done_ + 2 &&
           sram_->reserve(stripe_working_set_)) {
      load_tickets_.push_back(dram_->request(load_bytes_[next_load_]));
      ++next_load_;
    }
    // 2. PE array.
    if (pe_remaining_ == 0 && next_compute_ < stripes_ &&
        next_compute_ < load_tickets_.size() &&
        dram_->complete(load_tickets_[next_compute_]) &&
        next_compute_ < post_done_ + 2) {
      pe_remaining_ = pe_cycles_[next_compute_];
      if (pe_remaining_ == 0) {  // fully skipped stripe
        ++next_compute_;
        ++compute_done_;
      }
    }
    if (pe_remaining_ > 0) {
      --pe_remaining_;
      ++pe_busy_;
      if (pe_remaining_ == 0) {
        ++next_compute_;
        ++compute_done_;
      }
    }
    // 3. vector unit (softmax + quant), then drain the stripe output.
    if (vec_remaining_ == 0 && next_post_ < compute_done_) {
      vec_remaining_ = vec_cycles_[next_post_];
    }
    if (vec_remaining_ > 0) {
      --vec_remaining_;
      ++vec_busy_;
      if (vec_remaining_ == 0) {
        dram_->request(store_bytes_[next_post_]);
        sram_->release(stripe_working_set_);
        ++next_post_;
        ++post_done_;
      }
    }
  }

  bool busy() const override {
    return post_done_ < stripes_;
  }

  std::size_t stripes() const { return stripes_; }
  std::uint64_t pe_busy() const { return pe_busy_; }
  std::uint64_t vec_busy() const { return vec_busy_; }

 private:
  DramModel* dram_;
  SramBuffer* sram_;
  std::size_t stripe_rows_ = 0;
  std::size_t stripes_ = 0;
  double stripe_working_set_ = 0.0;
  std::vector<double> load_bytes_;
  std::vector<std::uint64_t> pe_cycles_;
  std::vector<std::uint64_t> vec_cycles_;
  std::vector<double> store_bytes_;

  std::vector<std::uint64_t> load_tickets_;
  std::size_t next_load_ = 0;
  std::size_t next_compute_ = 0;
  std::size_t next_post_ = 0;
  std::size_t compute_done_ = 0;
  std::size_t post_done_ = 0;
  std::uint64_t pe_remaining_ = 0;
  std::uint64_t vec_remaining_ = 0;
  std::uint64_t pe_busy_ = 0;
  std::uint64_t vec_busy_ = 0;
};

}  // namespace

FusedAttentionResult simulate_fused_attention(const FusedAttentionParams& p,
                                              const HwResources& hw) {
  DramModel dram(hw.dram_bytes_per_cycle());
  SramBuffer sram(hw.sram_bytes);
  StripeController controller(p, hw, &dram, &sram);

  CycleEngine engine;
  engine.add(&dram);
  engine.add(&controller);
  const std::uint64_t cycles = engine.run(1ULL << 40);

  FusedAttentionResult result;
  result.cycles = cycles;
  result.dram_bytes = dram.total_bytes();
  result.pe_busy_cycles = controller.pe_busy();
  result.vector_busy_cycles = controller.vec_busy();
  result.dram_busy_cycles = dram.busy_cycles();
  result.stripes = controller.stripes();
  result.sram_peak_bytes = sram.peak();
  return result;
}

std::vector<FusedAttentionResult> simulate_fused_attention_heads(
    const std::vector<FusedAttentionParams>& heads, const HwResources& hw,
    obs::CostLedger* cost_ledger) {
  std::vector<FusedAttentionResult> results(heads.size());
  std::vector<obs::MetricsShard> shards(heads.size());
  // Each head is a self-contained pipeline (own DRAM channel, SRAM buffer
  // and RNG seeded from its params), so head i's result depends only on
  // heads[i].
  global_pool().parallel_for(0, heads.size(), 1, [&](std::size_t i) {
    results[i] = simulate_fused_attention(heads[i], hw);
    shards[i].add("sim.fused.heads");
    shards[i].add("sim.fused.cycles", static_cast<double>(results[i].cycles));
    shards[i].add("sim.fused.dram_bytes", results[i].dram_bytes);
    shards[i].observe("sim.fused.head_cycles",
                      static_cast<double>(results[i].cycles));
  });
  // Ordered flush keeps stats series identical at any thread count.
  auto& reg = obs::MetricsRegistry::global();
  for (obs::MetricsShard& shard : shards) {
    shard.flush_to(reg);
  }
  // Attribution feed: serial, in head order, with remainder-exact splits —
  // ledger totals equal the summed results by construction.
  if (cost_ledger != nullptr) {
    for (std::size_t i = 0; i < heads.size(); ++i) {
      const FusedAttentionParams& p = heads[i];
      const FusedAttentionResult& r = results[i];
      std::array<double, kNumBitChoices> weights{};
      if (p.tile_counts.has_value()) {
        // Cost scales with tiles·bits; the 0-bit class gets zero weight
        // unless every class is empty-or-skipped, in which case the
        // integer apportioner routes the whole total to slot 0 (= 0-bit).
        for (int b = 0; b < kNumBitChoices; ++b) {
          weights[static_cast<std::size_t>(b)] =
              static_cast<double>((*p.tile_counts)[static_cast<std::size_t>(b)]) *
              static_cast<double>(kBitChoices[b]);
        }
      } else {
        weights[kNumBitChoices - 1] = 1.0;  // no mix known: all 8-bit
      }
      std::array<std::uint64_t, kNumBitChoices> cycles{}, pe_cycles{};
      std::array<double, kNumBitChoices> dram{};
      obs::apportion_exact(r.cycles, weights, std::span<std::uint64_t>(cycles));
      obs::apportion_exact(r.pe_busy_cycles, weights,
                           std::span<std::uint64_t>(pe_cycles));
      obs::apportion_exact(r.dram_bytes, weights, std::span<double>(dram));
      for (int b = 0; b < kNumBitChoices; ++b) {
        const auto bi = static_cast<std::size_t>(b);
        if (cycles[bi] == 0 && pe_cycles[bi] == 0 && dram[bi] == 0.0) continue;
        obs::CostRecord rec;
        rec.cycles = cycles[bi];
        rec.pe_cycles = pe_cycles[bi];
        rec.dram_bytes = dram[bi];
        cost_ledger->add({p.layer, p.head, kBitChoices[b]}, rec);
      }
    }
  }
  return results;
}

}  // namespace paro
