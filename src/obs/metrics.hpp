// Thread-safe metrics registry.
//
// Named, labelled metrics that every layer of the stack (calibration,
// quantized pipeline, cycle simulator, CLI) emits through:
//
//   * Counter   — monotonically increasing double (tiles quantized, DRAM
//                 bytes, PE-busy cycles, ...), lock-free add.
//   * Gauge     — last-written value (current config knobs, utilization).
//   * HistogramMetric — fixed-range paro::Histogram behind a mutex
//                 (attention-map value distributions, bitwidth spreads).
//   * StatsMetric — RunningStats behind a mutex; ScopedTimer records
//                 wall-clock seconds into one (per-phase latency summaries).
//
// Metrics are identified by (name, labels); labels are sorted key/value
// pairs, so {{"bits","8"}} and {{"bits","4"}} are distinct series of the
// same metric family.  Registration is idempotent: the first call creates
// the metric, later calls return the same instance; re-registering a name
// with a different kind throws ConfigError.
//
// snapshot() returns a consistent, sorted copy for reporting; the
// MetricsSnapshot knows how to serialize itself as JSON (obs/json.hpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hpp"

namespace paro::obs {

class JsonWriter;

/// Label set of one metric series.  Stored sorted by key.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void add(double delta = 1.0) {
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class Gauge {
 public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  /// Raise the gauge to `v` if it is below — a commutative high-water
  /// update, safe (and deterministic) from concurrent emitters because
  /// max() has no order sensitivity.
  void set_max(double v) {
    double cur = value_.load(std::memory_order_relaxed);
    while (cur < v &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

class HistogramMetric {
 public:
  HistogramMetric(double lo, double hi, std::size_t bins)
      : hist_(lo, hi, bins) {}
  void observe(double v) {
    const std::lock_guard<std::mutex> lock(mu_);
    hist_.add(v);
  }
  Histogram snapshot() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return hist_;
  }

 private:
  mutable std::mutex mu_;
  Histogram hist_;
};

class StatsMetric {
 public:
  void record(double v) {
    const std::lock_guard<std::mutex> lock(mu_);
    stats_.add(v);
  }
  RunningStats snapshot() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

 private:
  mutable std::mutex mu_;
  RunningStats stats_;
};

enum class MetricKind { kCounter, kGauge, kHistogram, kStats };

const char* metric_kind_name(MetricKind kind);

/// Point-in-time copy of one metric series.
struct MetricSample {
  std::string name;
  Labels labels;
  MetricKind kind = MetricKind::kCounter;
  /// Scalar view of the series: the counter/gauge value, the observation
  /// count for kHistogram, or the running sum for kStats.
  double value = 0.0;
  RunningStats stats;        ///< kStats
  // kHistogram summary:
  double lo = 0.0;
  double hi = 0.0;
  std::uint64_t total = 0;
  std::vector<std::uint64_t> bins;
  // Latency-style quantiles (bin-interpolated; error bounded by one bin
  // width).  Zero when total == 0.
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

struct MetricsSnapshot {
  std::vector<MetricSample> samples;  ///< sorted by (name, labels)

  /// First sample matching (name, labels); nullptr when absent.
  const MetricSample* find(const std::string& name,
                           const Labels& labels = {}) const;
  /// Scalar value of the series (see MetricSample::value for the
  /// per-kind meaning), or 0 when the series is absent.
  double value_of(const std::string& name, const Labels& labels = {}) const;
  /// Sum of the scalar `value` over every series of the family `name`
  /// (any labels).
  double family_total(const std::string& name) const;

  /// Serialize as a JSON array of sample objects into an open writer.
  void write_json(JsonWriter& w) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();  // out of line: Entry is incomplete here
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name, Labels labels = {});
  Gauge& gauge(const std::string& name, Labels labels = {});
  /// Histogram range/binning is fixed by the first registration.
  HistogramMetric& histogram(const std::string& name, double lo, double hi,
                             std::size_t bins, Labels labels = {});
  StatsMetric& stats(const std::string& name, Labels labels = {});

  MetricsSnapshot snapshot() const;

  /// Drops every metric.  Invalidates references returned earlier —
  /// intended for test setup and fresh CLI runs, not steady-state use.
  void reset();

  std::size_t size() const;

  /// Process-wide registry the library's instrumentation points use.
  static MetricsRegistry& global();

 private:
  struct Entry;
  /// Finds or creates the series, fully constructing the metric object
  /// while the registry mutex is held.  lo/hi/bins apply to kHistogram.
  Entry& entry(const std::string& name, Labels labels, MetricKind kind,
               double lo = 0.0, double hi = 0.0, std::size_t bins = 0);

  mutable std::mutex mu_;
  std::map<std::pair<std::string, Labels>, std::unique_ptr<Entry>> metrics_;
};

/// Unsynchronized per-task metric accumulator for parallel regions.
///
/// Tasks running under common/thread_pool must not interleave their
/// StatsMetric observations (the merge order would depend on thread
/// timing) and should not hammer the registry mutex from a hot loop.
/// Instead each task fills its own shard, and the coordinating thread
/// flushes the shards IN TASK-INDEX ORDER at the barrier:
///
///   std::vector<MetricsShard> shards(n);
///   pool.parallel_for(0, n, 1, [&](std::size_t i) {
///     shards[i].add("sim.head_cycles", cycles);
///     shards[i].observe("sim.head_latency", t);
///   });
///   for (auto& s : shards) s.flush_to(MetricsRegistry::global());
///
/// Counter merges are commutative anyway; the ordered flush makes stats
/// series (RunningStats folds are order-sensitive in FP) bitwise identical
/// at any thread count.
class MetricsShard {
 public:
  /// Accumulate a counter delta.
  void add(const std::string& name, double delta = 1.0, Labels labels = {});
  /// Queue a stats observation (flushed in insertion order).
  void observe(const std::string& name, double value, Labels labels = {});

  /// Fold `other` into this shard (other's observations append after ours).
  void merge(const MetricsShard& other);

  /// Apply every accumulated value to `registry` and clear the shard.
  void flush_to(MetricsRegistry& registry);

  bool empty() const { return counters_.empty() && stats_.empty(); }

 private:
  using Key = std::pair<std::string, Labels>;
  std::map<Key, double> counters_;
  std::map<Key, std::vector<double>> stats_;
};

/// RAII timer recording elapsed wall-clock seconds into a StatsMetric.
class ScopedTimer {
 public:
  explicit ScopedTimer(StatsMetric& target);
  ~ScopedTimer();
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  StatsMetric& target_;
  std::uint64_t start_ns_;
};

}  // namespace paro::obs
