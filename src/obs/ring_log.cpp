#include "obs/ring_log.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <istream>
#include <map>
#include <ostream>

#include "common/error.hpp"

namespace paro::obs {
namespace {

std::uint64_t steady_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

constexpr char kMagic[8] = {'P', 'A', 'R', 'O', 'F', 'R', '1', '\0'};
constexpr std::uint32_t kVersion = 1;

void put_u32(std::ostream& out, std::uint32_t v) {
  unsigned char b[4];
  for (int i = 0; i < 4; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  out.write(reinterpret_cast<const char*>(b), 4);
}

void put_u64(std::ostream& out, std::uint64_t v) {
  unsigned char b[8];
  for (int i = 0; i < 8; ++i) b[i] = static_cast<unsigned char>(v >> (8 * i));
  out.write(reinterpret_cast<const char*>(b), 8);
}

std::uint32_t get_u32(std::istream& in) {
  unsigned char b[4];
  if (!in.read(reinterpret_cast<char*>(b), 4)) {
    throw DataError("flight dump truncated reading u32");
  }
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= std::uint32_t{b[i]} << (8 * i);
  return v;
}

std::uint64_t get_u64(std::istream& in) {
  unsigned char b[8];
  if (!in.read(reinterpret_cast<char*>(b), 8)) {
    throw DataError("flight dump truncated reading u64");
  }
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= std::uint64_t{b[i]} << (8 * i);
  return v;
}

std::atomic<std::uint64_t> g_next_instance_id{1};

}  // namespace

/// One thread's ring.  The owning thread writes under `mu`; snapshot/dump
/// readers also take `mu`, so concurrent writers and dumpers are safe (the
/// lock is per-thread and uncontended in steady state — the writer is the
/// only regular taker).
struct FlightRecorder::ThreadRing {
  std::mutex mu;
  std::vector<RingEvent> buf;       // capacity-sized, circular
  std::size_t head = 0;             // next write slot
  std::size_t count = 0;            // live events (<= capacity)
  std::uint64_t total_writes = 0;   // lifetime writes (for drop accounting)
  std::uint32_t tid = 0;
};

FlightRecorder::FlightRecorder(std::size_t capacity_per_thread)
    : capacity_(std::max<std::size_t>(1, capacity_per_thread)),
      instance_id_(g_next_instance_id.fetch_add(1, std::memory_order_relaxed)) {}

FlightRecorder::~FlightRecorder() = default;

std::uint32_t FlightRecorder::register_site(const char* name) {
  std::lock_guard<std::mutex> lk(mu_);
  for (std::uint32_t i = 0; i < sites_.size(); ++i) {
    if (sites_[i] == name) return i;
  }
  sites_.emplace_back(name);
  return static_cast<std::uint32_t>(sites_.size() - 1);
}

std::shared_ptr<FlightRecorder::ThreadRing> FlightRecorder::ring_for_this_thread() {
  // Keyed by instance id so distinct recorders (tests) don't share rings,
  // and a recorder destroyed+recreated at the same address can't inherit
  // a stale ring.
  thread_local std::map<std::uint64_t, std::shared_ptr<ThreadRing>> tls_rings;
  auto it = tls_rings.find(instance_id_);
  if (it != tls_rings.end()) return it->second;

  auto ring = std::make_shared<ThreadRing>();
  ring->buf.resize(capacity_);
  {
    std::lock_guard<std::mutex> lk(mu_);
    ring->tid = next_tid_++;
    rings_.push_back(ring);
  }
  tls_rings.emplace(instance_id_, ring);
  return ring;
}

void FlightRecorder::record(std::uint32_t site, std::uint64_t a,
                            std::uint64_t b) {
  if (!enabled()) return;
  auto ring = ring_for_this_thread();
  RingEvent ev;
  ev.ts_ns = steady_now_ns();
  ev.site = site;
  ev.tid = ring->tid;
  ev.a = a;
  ev.b = b;
  std::lock_guard<std::mutex> lk(ring->mu);
  ring->buf[ring->head] = ev;
  ring->head = (ring->head + 1) % capacity_;
  if (ring->count < capacity_) ++ring->count;
  ++ring->total_writes;
}

FlightDump FlightRecorder::snapshot() const {
  FlightDump out;
  std::vector<std::shared_ptr<ThreadRing>> rings;
  {
    std::lock_guard<std::mutex> lk(mu_);
    rings = rings_;
    out.sites = sites_;
  }
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lk(ring->mu);
    out.dropped += ring->total_writes - ring->count;
    // Oldest-first: the ring is [head - count, head) modulo capacity.
    for (std::size_t i = 0; i < ring->count; ++i) {
      const std::size_t idx =
          (ring->head + capacity_ - ring->count + i) % capacity_;
      DecodedEvent de;
      de.ev = ring->buf[idx];
      de.site_name = de.ev.site < out.sites.size() ? out.sites[de.ev.site]
                                                   : std::string("<unknown>");
      out.events.push_back(std::move(de));
    }
  }
  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const DecodedEvent& x, const DecodedEvent& y) {
                     return x.ev.ts_ns < y.ev.ts_ns;
                   });
  return out;
}

void FlightRecorder::dump(std::ostream& out) const {
  std::vector<std::shared_ptr<ThreadRing>> rings;
  std::vector<std::string> sites;
  {
    std::lock_guard<std::mutex> lk(mu_);
    rings = rings_;
    sites = sites_;
  }
  out.write(kMagic, sizeof(kMagic));
  put_u32(out, kVersion);
  put_u32(out, static_cast<std::uint32_t>(sizeof(RingEvent)));
  put_u32(out, static_cast<std::uint32_t>(sites.size()));
  for (std::uint32_t i = 0; i < sites.size(); ++i) {
    put_u32(out, i);
    put_u32(out, static_cast<std::uint32_t>(sites[i].size()));
    out.write(sites[i].data(), static_cast<std::streamsize>(sites[i].size()));
  }
  put_u32(out, static_cast<std::uint32_t>(rings.size()));
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lk(ring->mu);
    put_u32(out, ring->tid);
    put_u64(out, ring->total_writes);
    put_u32(out, static_cast<std::uint32_t>(ring->count));
    for (std::size_t i = 0; i < ring->count; ++i) {
      const std::size_t idx =
          (ring->head + capacity_ - ring->count + i) % capacity_;
      const RingEvent& ev = ring->buf[idx];
      put_u64(out, ev.ts_ns);
      put_u32(out, ev.site);
      put_u32(out, ev.tid);
      put_u64(out, ev.a);
      put_u64(out, ev.b);
    }
  }
}

FlightDump FlightRecorder::decode(std::istream& in) {
  char magic[8];
  if (!in.read(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    throw DataError("flight dump: bad magic (not a PAROFR1 stream)");
  }
  const std::uint32_t version = get_u32(in);
  if (version != kVersion) {
    throw DataError("flight dump: unsupported version " +
                    std::to_string(version));
  }
  const std::uint32_t event_size = get_u32(in);
  if (event_size != sizeof(RingEvent)) {
    throw DataError("flight dump: event size mismatch (" +
                    std::to_string(event_size) + " vs " +
                    std::to_string(sizeof(RingEvent)) + ")");
  }
  FlightDump out;
  const std::uint32_t n_sites = get_u32(in);
  if (n_sites > (1u << 20)) throw DataError("flight dump: implausible site count");
  out.sites.resize(n_sites);
  for (std::uint32_t i = 0; i < n_sites; ++i) {
    const std::uint32_t id = get_u32(in);
    const std::uint32_t len = get_u32(in);
    if (id >= n_sites) throw DataError("flight dump: site id out of range");
    if (len > (1u << 16)) throw DataError("flight dump: implausible site name");
    std::string name(len, '\0');
    if (!in.read(name.data(), len)) {
      throw DataError("flight dump truncated reading site name");
    }
    out.sites[id] = std::move(name);
  }
  const std::uint32_t n_rings = get_u32(in);
  if (n_rings > (1u << 16)) throw DataError("flight dump: implausible ring count");
  for (std::uint32_t r = 0; r < n_rings; ++r) {
    get_u32(in);  // tid (also carried per-event)
    const std::uint64_t total_writes = get_u64(in);
    const std::uint32_t count = get_u32(in);
    if (count > (1u << 26)) throw DataError("flight dump: implausible ring size");
    out.dropped += total_writes - count;
    for (std::uint32_t i = 0; i < count; ++i) {
      DecodedEvent de;
      de.ev.ts_ns = get_u64(in);
      de.ev.site = get_u32(in);
      de.ev.tid = get_u32(in);
      de.ev.a = get_u64(in);
      de.ev.b = get_u64(in);
      de.site_name = de.ev.site < out.sites.size() ? out.sites[de.ev.site]
                                                   : std::string("<unknown>");
      out.events.push_back(std::move(de));
    }
  }
  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const DecodedEvent& x, const DecodedEvent& y) {
                     return x.ev.ts_ns < y.ev.ts_ns;
                   });
  return out;
}

void FlightRecorder::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> rlk(ring->mu);
    ring->head = 0;
    ring->count = 0;
    ring->total_writes = 0;
  }
}

FlightRecorder& FlightRecorder::global() {
  static FlightRecorder* g = new FlightRecorder(4096);
  return *g;
}

}  // namespace paro::obs
