#include "obs/working_set.hpp"

#include "obs/metrics.hpp"

namespace paro::obs {

void publish_peak_working_set(const char* executor, std::size_t peak_bytes) {
  MetricsRegistry::global()
      .gauge("attn.peak_working_set_bytes", {{"executor", executor}})
      .set_max(static_cast<double>(peak_bytes));
}

}  // namespace paro::obs
