#include "obs/trace_export.hpp"

#include <ostream>

#include "obs/json.hpp"

namespace paro::obs {

ChromeTraceEvent process_name_event(std::uint32_t pid, std::string name) {
  ChromeTraceEvent e;
  e.name = "process_name";
  e.cat = "__metadata";
  e.ph = 'M';
  e.pid = pid;
  e.sargs.emplace_back("name", std::move(name));
  return e;
}

ChromeTraceEvent thread_name_event(std::uint32_t pid, std::uint32_t tid,
                                   std::string name) {
  ChromeTraceEvent e = process_name_event(pid, std::move(name));
  e.name = "thread_name";
  e.tid = tid;
  return e;
}

void write_chrome_trace(std::ostream& os,
                        const std::vector<ChromeTraceEvent>& events) {
  JsonWriter w(os);
  w.begin_object();
  w.key("traceEvents").begin_array();
  for (const ChromeTraceEvent& e : events) {
    w.begin_object();
    w.kv("name", e.name);
    w.kv("cat", e.cat);
    w.kv("ph", std::string_view(&e.ph, 1));
    w.kv("pid", static_cast<std::uint64_t>(e.pid));
    w.kv("tid", static_cast<std::uint64_t>(e.tid));
    if (e.ph != 'M') {
      w.kv("ts", e.ts);
      if (e.ph == 'X') w.kv("dur", e.dur);
    }
    if (e.ph == 's' || e.ph == 't' || e.ph == 'f') {
      w.kv("id", e.id);
      if (!e.bp.empty()) w.kv("bp", e.bp);
    }
    if (!e.args.empty() || !e.sargs.empty()) {
      w.key("args").begin_object();
      for (const auto& [k, v] : e.sargs) w.kv(k, v);
      for (const auto& [k, v] : e.args) w.kv(k, v);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.kv("displayTimeUnit", "ms");
  w.end_object();
  os << '\n';
}

}  // namespace paro::obs
