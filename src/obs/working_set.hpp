// Working-set accounting for the attention executors.
//
// The repo's memory claim — the streamed executor runs in O(N·d + tile²)
// where the materialized oracle needs O(N²) — must be measurable, not
// asserted.  Executors meter every logical buffer they hold through a
// WorkingSetMeter and publish the high-water mark to the
// `attn.peak_working_set_bytes{executor=...}` gauge, which paro_cli
// surfaces in its JSON reports.
//
// Determinism rule: a meter models ONE logical execution stream.  Parallel
// stripe workers do NOT share a meter (a shared concurrent high-water mark
// would depend on scheduling); each stripe meters its own scratch locally
// and the coordinator folds the per-stripe peaks with fold_local_peak(),
// which is a max over values that are themselves thread-count-independent.
#pragma once

#include <cstddef>

namespace paro::obs {

/// Byte accounting with a high-water mark for one logical allocation scope.
/// Not thread-safe by design — see the determinism rule above.
class WorkingSetMeter {
 public:
  /// Record `bytes` entering the working set.
  void acquire(std::size_t bytes) {
    current_ += bytes;
    if (current_ > peak_) peak_ = current_;
  }

  /// Record `bytes` leaving the working set.
  void release(std::size_t bytes) {
    current_ = bytes > current_ ? 0 : current_ - bytes;
  }

  /// Fold a subordinate scope's peak that lived ON TOP of this meter's
  /// current bytes (e.g. one stripe's scratch over the executor's shared
  /// buffers): peak = max(peak, current + local_peak).
  void fold_local_peak(std::size_t local_peak) {
    if (current_ + local_peak > peak_) peak_ = current_ + local_peak;
  }

  std::size_t current() const { return current_; }
  std::size_t peak() const { return peak_; }

 private:
  std::size_t current_ = 0;
  std::size_t peak_ = 0;
};

/// RAII acquire/release of one buffer's bytes on a meter.
class ScopedBytes {
 public:
  ScopedBytes(WorkingSetMeter& meter, std::size_t bytes)
      : meter_(meter), bytes_(bytes) {
    meter_.acquire(bytes_);
  }
  ~ScopedBytes() { meter_.release(bytes_); }
  ScopedBytes(const ScopedBytes&) = delete;
  ScopedBytes& operator=(const ScopedBytes&) = delete;

 private:
  WorkingSetMeter& meter_;
  std::size_t bytes_;
};

/// Publish `peak_bytes` to the global registry's high-water gauge
/// `attn.peak_working_set_bytes{executor=<executor>}`.
void publish_peak_working_set(const char* executor, std::size_t peak_bytes);

}  // namespace paro::obs
