#include "obs/metrics.hpp"

#include <algorithm>
#include <chrono>

#include "common/error.hpp"
#include "obs/json.hpp"

namespace paro::obs {

const char* metric_kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter:   return "counter";
    case MetricKind::kGauge:     return "gauge";
    case MetricKind::kHistogram: return "histogram";
    case MetricKind::kStats:     return "stats";
  }
  return "?";
}

struct MetricsRegistry::Entry {
  MetricKind kind;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<HistogramMetric> histogram;
  std::unique_ptr<StatsMetric> stats;
};

MetricsRegistry::MetricsRegistry() = default;
MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::Entry& MetricsRegistry::entry(const std::string& name,
                                               Labels labels, MetricKind kind,
                                               double lo, double hi,
                                               std::size_t bins) {
  std::sort(labels.begin(), labels.end());
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = metrics_[{name, std::move(labels)}];
  if (slot == nullptr) {
    // Construct the metric object while mu_ is still held so a fully
    // initialized Entry is published; concurrent first-registrations of
    // the same series must not race on the member unique_ptrs, and
    // snapshot() must never see a half-built Entry.
    auto e = std::make_unique<Entry>();
    e->kind = kind;
    switch (kind) {
      case MetricKind::kCounter:
        e->counter = std::make_unique<Counter>();
        break;
      case MetricKind::kGauge:
        e->gauge = std::make_unique<Gauge>();
        break;
      case MetricKind::kHistogram:
        e->histogram = std::make_unique<HistogramMetric>(lo, hi, bins);
        break;
      case MetricKind::kStats:
        e->stats = std::make_unique<StatsMetric>();
        break;
    }
    slot = std::move(e);
  } else if (slot->kind != kind) {
    throw ConfigError("metric '" + name + "' registered as " +
                      metric_kind_name(slot->kind) + ", requested as " +
                      metric_kind_name(kind));
  }
  return *slot;
}

Counter& MetricsRegistry::counter(const std::string& name, Labels labels) {
  return *entry(name, std::move(labels), MetricKind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(const std::string& name, Labels labels) {
  return *entry(name, std::move(labels), MetricKind::kGauge).gauge;
}

HistogramMetric& MetricsRegistry::histogram(const std::string& name, double lo,
                                            double hi, std::size_t bins,
                                            Labels labels) {
  return *entry(name, std::move(labels), MetricKind::kHistogram, lo, hi, bins)
              .histogram;
}

StatsMetric& MetricsRegistry::stats(const std::string& name, Labels labels) {
  return *entry(name, std::move(labels), MetricKind::kStats).stats;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  const std::lock_guard<std::mutex> lock(mu_);
  snap.samples.reserve(metrics_.size());
  for (const auto& [key, e] : metrics_) {
    MetricSample s;
    s.name = key.first;
    s.labels = key.second;
    s.kind = e->kind;
    switch (e->kind) {
      case MetricKind::kCounter:
        s.value = e->counter->value();
        break;
      case MetricKind::kGauge:
        s.value = e->gauge->value();
        break;
      case MetricKind::kHistogram: {
        const Histogram h = e->histogram->snapshot();
        s.lo = h.bin_lo(0);
        s.hi = h.bin_hi(h.bin_count() - 1);
        s.total = h.total();
        s.value = static_cast<double>(s.total);
        s.bins.reserve(h.bin_count());
        for (std::size_t i = 0; i < h.bin_count(); ++i) {
          s.bins.push_back(h.bin(i));
        }
        if (s.total > 0) {
          s.p50 = h.quantile(0.50);
          s.p95 = h.quantile(0.95);
          s.p99 = h.quantile(0.99);
        }
        break;
      }
      case MetricKind::kStats:
        s.stats = e->stats->snapshot();
        s.value = s.stats.sum();
        break;
    }
    snap.samples.push_back(std::move(s));
  }
  // std::map iteration is already (name, labels)-ordered.
  return snap;
}

void MetricsRegistry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  metrics_.clear();
}

std::size_t MetricsRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return metrics_.size();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

void MetricsShard::add(const std::string& name, double delta, Labels labels) {
  std::sort(labels.begin(), labels.end());
  counters_[{name, std::move(labels)}] += delta;
}

void MetricsShard::observe(const std::string& name, double value,
                           Labels labels) {
  std::sort(labels.begin(), labels.end());
  stats_[{name, std::move(labels)}].push_back(value);
}

void MetricsShard::merge(const MetricsShard& other) {
  for (const auto& [key, delta] : other.counters_) {
    counters_[key] += delta;
  }
  for (const auto& [key, values] : other.stats_) {
    auto& dst = stats_[key];
    dst.insert(dst.end(), values.begin(), values.end());
  }
}

void MetricsShard::flush_to(MetricsRegistry& registry) {
  for (const auto& [key, delta] : counters_) {
    registry.counter(key.first, key.second).add(delta);
  }
  for (const auto& [key, values] : stats_) {
    StatsMetric& metric = registry.stats(key.first, key.second);
    for (const double v : values) {
      metric.record(v);
    }
  }
  counters_.clear();
  stats_.clear();
}

const MetricSample* MetricsSnapshot::find(const std::string& name,
                                          const Labels& labels) const {
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  for (const MetricSample& s : samples) {
    if (s.name == name && s.labels == sorted) return &s;
  }
  return nullptr;
}

double MetricsSnapshot::value_of(const std::string& name,
                                 const Labels& labels) const {
  const MetricSample* s = find(name, labels);
  return s == nullptr ? 0.0 : s->value;
}

double MetricsSnapshot::family_total(const std::string& name) const {
  double total = 0.0;
  for (const MetricSample& s : samples) {
    if (s.name == name) total += s.value;
  }
  return total;
}

void MetricsSnapshot::write_json(JsonWriter& w) const {
  w.begin_array();
  for (const MetricSample& s : samples) {
    w.begin_object();
    w.kv("name", s.name);
    w.kv("kind", metric_kind_name(s.kind));
    if (!s.labels.empty()) {
      w.key("labels").begin_object();
      for (const auto& [k, v] : s.labels) w.kv(k, v);
      w.end_object();
    }
    switch (s.kind) {
      case MetricKind::kCounter:
      case MetricKind::kGauge:
        w.kv("value", s.value);
        break;
      case MetricKind::kHistogram:
        w.kv("lo", s.lo);
        w.kv("hi", s.hi);
        w.kv("total", s.total);
        w.kv("p50", s.p50);
        w.kv("p95", s.p95);
        w.kv("p99", s.p99);
        w.key("bins").begin_array();
        for (const std::uint64_t b : s.bins) w.value(b);
        w.end_array();
        break;
      case MetricKind::kStats:
        w.kv("count", static_cast<std::uint64_t>(s.stats.count()));
        w.kv("sum", s.stats.sum());
        w.kv("mean", s.stats.mean());
        w.kv("min", s.stats.min());
        w.kv("max", s.stats.max());
        w.kv("stddev", s.stats.stddev());
        break;
    }
    w.end_object();
  }
  w.end_array();
}

ScopedTimer::ScopedTimer(StatsMetric& target)
    : target_(target),
      start_ns_(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now().time_since_epoch())
              .count())) {}

ScopedTimer::~ScopedTimer() {
  const auto now_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  target_.record(static_cast<double>(now_ns - start_ns_) * 1e-9);
}

}  // namespace paro::obs
