// Minimal streaming JSON writer.
//
// The observability layer emits three JSON artifacts — Chrome trace files,
// metrics snapshots, and CLI reports — and all of them go through this
// writer so escaping and number formatting are correct in one place.  The
// writer is strictly streaming (no DOM): callers open/close scopes and the
// writer tracks commas, key/value alternation, and optional indentation.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace paro::obs {

/// `s` as a JSON string literal, including the surrounding quotes.
/// Escapes quotes, backslashes, and control characters; any other byte
/// (including UTF-8 sequences) passes through unchanged.
std::string json_escape(std::string_view s);

/// Shortest decimal representation of `v` that round-trips to the same
/// double.  Non-finite values map to "null" (JSON has no NaN/Inf).
std::string json_number(double v);

class JsonWriter {
 public:
  /// `indent` = 0 writes compact JSON; > 0 pretty-prints with that many
  /// spaces per nesting level.
  explicit JsonWriter(std::ostream& os, int indent = 0)
      : os_(os), indent_(indent) {}
  JsonWriter(const JsonWriter&) = delete;
  JsonWriter& operator=(const JsonWriter&) = delete;

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Object key; must be followed by a value or a begin_*().
  JsonWriter& key(std::string_view k);

  JsonWriter& value(double v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& null_value();

  /// key + value in one call.
  template <typename T>
  JsonWriter& kv(std::string_view k, const T& v) {
    key(k);
    return value(v);
  }

  /// Number of currently open scopes (0 when the document is complete).
  std::size_t depth() const { return stack_.size(); }

 private:
  void prefix();   ///< comma / newline / indent before a value or key
  void newline();  ///< newline + indent (pretty mode only)

  std::ostream& os_;
  int indent_;
  struct Frame {
    bool is_array;
    bool first = true;
  };
  std::vector<Frame> stack_;
  bool after_key_ = false;
};

}  // namespace paro::obs
