#include "obs/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace paro::obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"':  out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  char buf[40];
  // Integral values that fit an int64 print without fraction or exponent
  // (cycle counts, byte totals — the common case in trace output).
  if (v == std::floor(v) && std::abs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(v));
    return buf;
  }
  // Shortest representation that parses back to the same double: try
  // increasing precision until the round trip is exact (17 digits always
  // suffices for IEEE-754 binary64).
  for (int prec = 1; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

JsonWriter& JsonWriter::begin_object() {
  prefix();
  os_ << '{';
  stack_.push_back({/*is_array=*/false});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  const bool empty = stack_.empty() || stack_.back().first;
  if (!stack_.empty()) stack_.pop_back();
  if (!empty) newline();
  os_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  prefix();
  os_ << '[';
  stack_.push_back({/*is_array=*/true});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  const bool empty = stack_.empty() || stack_.back().first;
  if (!stack_.empty()) stack_.pop_back();
  if (!empty) newline();
  os_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  prefix();
  os_ << json_escape(k) << ':';
  if (indent_ > 0) os_ << ' ';
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  prefix();
  os_ << json_number(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  prefix();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  prefix();
  os_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  prefix();
  os_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  prefix();
  os_ << json_escape(v);
  return *this;
}

JsonWriter& JsonWriter::null_value() {
  prefix();
  os_ << "null";
  return *this;
}

void JsonWriter::prefix() {
  if (after_key_) {
    // Value completes the key; no comma handling needed.
    after_key_ = false;
    return;
  }
  if (stack_.empty()) return;
  Frame& top = stack_.back();
  if (!top.first) os_ << ',';
  top.first = false;
  newline();
}

void JsonWriter::newline() {
  if (indent_ <= 0) return;
  os_ << '\n';
  for (std::size_t i = 0; i < stack_.size() * static_cast<std::size_t>(indent_);
       ++i) {
    os_ << ' ';
  }
}

}  // namespace paro::obs
