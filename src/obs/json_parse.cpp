#include "obs/json_parse.hpp"

#include <cctype>
#include <cstdlib>

#include "common/error.hpp"

namespace paro::obs {

const JsonValue* JsonValue::get(const std::string& key) const {
  if (kind != Kind::kObject) return nullptr;
  auto it = obj_v.find(key);
  return it == obj_v.end() ? nullptr : it->second.get();
}

double JsonValue::number_or(double fallback) const {
  return kind == Kind::kNumber ? num_v : fallback;
}

std::string JsonValue::string_or(const std::string& fallback) const {
  return kind == Kind::kString ? str_v : fallback;
}

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValuePtr parse() {
    skip_ws();
    JsonValuePtr v = value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw DataError("json parse error at byte " + std::to_string(pos_) + ": " +
                    why);
  }

  char peek() const { return pos_ < text_.size() ? text_[pos_] : '\0'; }

  char take() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_++];
  }

  void expect(char c) {
    if (take() != c) fail(std::string("expected '") + c + "'");
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  JsonValuePtr value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': return literal("true", [](JsonValue& v) {
        v.kind = JsonValue::Kind::kBool;
        v.bool_v = true;
      });
      case 'f': return literal("false", [](JsonValue& v) {
        v.kind = JsonValue::Kind::kBool;
        v.bool_v = false;
      });
      case 'n': return literal("null", [](JsonValue& v) {
        v.kind = JsonValue::Kind::kNull;
      });
      default: return number();
    }
  }

  template <typename Fill>
  JsonValuePtr literal(const char* word, Fill fill) {
    for (const char* p = word; *p; ++p) {
      if (take() != *p) fail(std::string("bad literal, expected ") + word);
    }
    auto v = std::make_shared<JsonValue>();
    fill(*v);
    return v;
  }

  JsonValuePtr object() {
    expect('{');
    auto v = std::make_shared<JsonValue>();
    v->kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string_raw();
      skip_ws();
      expect(':');
      skip_ws();
      v->obj_v[std::move(key)] = value();
      skip_ws();
      const char c = take();
      if (c == ',') continue;
      if (c == '}') return v;
      fail("expected ',' or '}' in object");
    }
  }

  JsonValuePtr array() {
    expect('[');
    auto v = std::make_shared<JsonValue>();
    v->kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      v->arr_v.push_back(value());
      skip_ws();
      const char c = take();
      if (c == ',') continue;
      if (c == ']') return v;
      fail("expected ',' or ']' in array");
    }
  }

  JsonValuePtr string_value() {
    auto v = std::make_shared<JsonValue>();
    v->kind = JsonValue::Kind::kString;
    v->str_v = string_raw();
    return v;
  }

  std::string string_raw() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char e = take();
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = take();
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by the repo's writer; pass them through raw).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  JsonValuePtr number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("bad number");
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("bad fraction");
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) fail("bad exponent");
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    auto v = std::make_shared<JsonValue>();
    v->kind = JsonValue::Kind::kNumber;
    v->num_v = std::strtod(text_.substr(start, pos_ - start).c_str(), nullptr);
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValuePtr parse_json(const std::string& text) { return Parser(text).parse(); }

}  // namespace paro::obs
