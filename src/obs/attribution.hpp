// Cost attribution: per-(layer, head, bitwidth) rollups of what a run
// actually spent.
//
// PARO's argument is a cost model — pattern-aware reorder buys fewer bits,
// fewer bits buy fewer cycles / bytes / joules — so the obs layer must be
// able to attribute measured cost to the (layer, head, bitwidth) decisions
// the calibrator made.  A CostLedger collects CostRecords keyed by
// (layer, head, bits):
//
//   * tile counts come from AttnExecStats (what the executors dispatched),
//     fed per (layer, head) by the model fan-out (model/dit);
//   * cycles / DRAM bytes come from the cycle simulators
//     (paro/fused_attention_sim), apportioned across bitwidth classes;
//   * joules come from the energy model, attributed over the ledger with
//     attribute_joules().
//
// Apportionment uses the largest-remainder method (apportion_exact), so
// per-class splits sum EXACTLY to the per-head totals — the ledger
// reconciles against simulator and energy aggregates by construction, and
// reconcile() verifies it.  All feeds happen on the coordinating thread in
// (layer, head) order, so rollups are bitwise-identical at any pool width.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

namespace paro::obs {

/// One attribution bucket.  `bits` is the bitwidth class as a plain int
/// ({0, 2, 4, 8} for the PARO mixed-precision path) — the obs layer does
/// not depend on the quant layer's BitTable types.
struct CostKey {
  std::size_t layer = 0;
  std::size_t head = 0;
  int bits = 0;

  friend bool operator<(const CostKey& a, const CostKey& b) {
    if (a.layer != b.layer) return a.layer < b.layer;
    if (a.head != b.head) return a.head < b.head;
    return a.bits < b.bits;
  }
  friend bool operator==(const CostKey& a, const CostKey& b) {
    return a.layer == b.layer && a.head == b.head && a.bits == b.bits;
  }
};

/// Cost accumulated against one (layer, head, bits) bucket.  Different
/// feeders own different fields (the executor feed fills tile counts, the
/// simulator feed fills cycles/bytes, attribute_joules fills joules), so
/// merging feeds never double-counts.
struct CostRecord {
  std::uint64_t tiles = 0;          ///< map tiles in this bitwidth class
  std::uint64_t tiles_skipped = 0;  ///< dispatcher-bypassed (0-bit class)
  std::uint64_t qk_tiles = 0;       ///< QKᵀ tiles computed
  std::uint64_t kernel_calls = 0;   ///< SIMD micro-kernel invocations
  std::uint64_t qk_kernel_calls = 0;///< QKᵀ tile-kernel calls (exact count)
  double qk_bytes = 0.0;            ///< K-operand bytes those calls touched
  std::uint64_t cycles = 0;         ///< simulated total cycles
  std::uint64_t pe_cycles = 0;      ///< simulated PE-busy cycles
  double dram_bytes = 0.0;          ///< simulated DRAM traffic
  double joules = 0.0;              ///< attributed energy

  void merge(const CostRecord& o) {
    tiles += o.tiles;
    tiles_skipped += o.tiles_skipped;
    qk_tiles += o.qk_tiles;
    kernel_calls += o.kernel_calls;
    qk_kernel_calls += o.qk_kernel_calls;
    qk_bytes += o.qk_bytes;
    cycles += o.cycles;
    pe_cycles += o.pe_cycles;
    dram_bytes += o.dram_bytes;
    joules += o.joules;
  }
};

/// Largest-remainder apportionment of an integer `total` over `weights`:
/// out[i] ≈ total·w[i]/Σw, floors first, then the remainder goes to the
/// largest fractional parts (ties broken by lowest index).  The outputs
/// sum to `total` EXACTLY.  All-zero weights put the whole total in
/// out[0].  `weights.size() == out.size()` is required.
void apportion_exact(std::uint64_t total, std::span<const double> weights,
                     std::span<std::uint64_t> out);

/// Double-valued analogue: proportional shares with the FP residue folded
/// into the last nonzero-weight slot, so the outputs sum to `total`
/// exactly (bit-for-bit: the last share is computed as total − Σothers).
void apportion_exact(double total, std::span<const double> weights,
                     std::span<double> out);

/// Thread-safe accumulator of CostRecords.  Writers add deltas; readers
/// take sorted rollups.  The repo's feeds call add() from coordinating
/// threads in (layer, head) order, keeping the contents thread-count-pure
/// — but the ledger itself is safe under concurrent add() too.
class CostLedger {
 public:
  void add(const CostKey& key, const CostRecord& delta);
  void merge(const CostLedger& other);

  /// Sorted copy of every (key, record) pair.
  std::vector<std::pair<CostKey, CostRecord>> rollup() const;

  /// Sum of every record.
  CostRecord total() const;

  /// Distribute an energy estimate over the ledger: `dram_j` is split by
  /// DRAM-byte share, `non_dram_j` (PE + LDZ + vector + buffer + leakage)
  /// by cycle share; both splits are remainder-exact, so the attributed
  /// joules sum to non_dram_j + dram_j.  No-op on an empty ledger.
  void attribute_joules(double non_dram_j, double dram_j);

  void reset();
  bool empty() const;
  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<CostKey, CostRecord> records_;
};

/// Outcome of checking ledger totals against the aggregates they were fed
/// from.  Relative errors are |ledger − aggregate| / max(|aggregate|, 1).
struct Reconciliation {
  double cycles_rel = 0.0;
  double dram_rel = 0.0;
  double joules_rel = 0.0;

  bool ok(double tol = 1e-3) const {
    return cycles_rel <= tol && dram_rel <= tol && joules_rel <= tol;
  }
};

/// Compare the ledger's cycle/byte/joule totals with independently summed
/// aggregates (cycle-simulator totals, the energy model's total_j).
Reconciliation reconcile(const CostLedger& ledger, std::uint64_t total_cycles,
                         double total_dram_bytes, double total_joules);

}  // namespace paro::obs
