#include "obs/profile.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <ostream>

#include "obs/trace_export.hpp"

namespace paro::obs {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct OpenSpan {
  const char* name;
  std::uint64_t start_ns;
  std::uint32_t depth;
};

}  // namespace

struct Profiler::ThreadState {
  std::uint32_t tid = 0;
  bool tid_assigned = false;
  std::uint64_t generation = 0;
  std::vector<OpenSpan> stack;
};

Profiler::ThreadState& Profiler::thread_state() {
  // Keyed by a monotonically increasing per-instance id (not `this`) so
  // independently constructed profilers (tests) never share per-thread
  // span stacks, even when a new Profiler reuses a destroyed one's
  // address.
  thread_local std::map<std::uint64_t, ThreadState> states;
  return states[id_];
}

std::uint64_t Profiler::next_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

Profiler::Profiler() : epoch_ns_(now_ns()), id_(next_id()) {}

void Profiler::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  epoch_ns_ = now_ns();
  generation_.fetch_add(1, std::memory_order_acq_rel);
  next_tid_ = 0;
}

void Profiler::begin_span(const char* name) {
  ThreadState& st = thread_state();
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (st.generation != gen) {
    // First span since a reset(): stale opens belong to the old epoch.
    st.stack.clear();
    st.generation = gen;
    st.tid_assigned = false;
  }
  st.stack.push_back(
      {name, now_ns(), static_cast<std::uint32_t>(st.stack.size())});
}

void Profiler::end_span() {
  const std::uint64_t end_ns = now_ns();
  ThreadState& st = thread_state();
  if (st.stack.empty()) return;
  const OpenSpan span = st.stack.back();
  st.stack.pop_back();

  const std::lock_guard<std::mutex> lock(mu_);
  if (st.generation != generation_.load(std::memory_order_relaxed)) {
    // reset() happened while this span was open; its start time belongs
    // to the previous epoch, so drop it and every stale open above it.
    st.stack.clear();
    return;
  }
  if (!st.tid_assigned) {
    st.tid = next_tid_++;
    st.tid_assigned = true;
  }
  SpanEvent e;
  e.name = span.name;
  e.tid = st.tid;
  e.depth = span.depth;
  e.start_us = static_cast<double>(span.start_ns - epoch_ns_) * 1e-3;
  e.dur_us = static_cast<double>(end_ns - span.start_ns) * 1e-3;
  events_.push_back(e);
}

std::vector<SpanEvent> Profiler::events() const {
  std::vector<SpanEvent> out;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    out = events_;
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanEvent& a, const SpanEvent& b) {
                     return a.start_us < b.start_us;
                   });
  return out;
}

double ProfileNode::self_us() const {
  double children_us = 0.0;
  for (const ProfileNode& c : children) children_us += c.total_us;
  return std::max(0.0, total_us - children_us);
}

const ProfileNode* ProfileNode::child(const std::string& name) const {
  for (const ProfileNode& c : children) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

ProfileNode Profiler::report() const {
  const std::vector<SpanEvent> evs = events();
  ProfileNode root;
  root.name = "total";
  root.calls = 1;

  // Rebuild nesting per thread: a span is a child of the deepest span on
  // the same thread that is still open when it starts.
  struct StackEntry {
    ProfileNode* node;
    double end_us;
  };
  std::map<std::uint32_t, std::vector<StackEntry>> stacks;
  for (const SpanEvent& e : evs) {
    auto& stack = stacks[e.tid];
    while (!stack.empty() && e.start_us >= stack.back().end_us) {
      stack.pop_back();
    }
    ProfileNode* parent = stack.empty() ? &root : stack.back().node;
    ProfileNode* node = nullptr;
    for (ProfileNode& c : parent->children) {
      if (c.name == e.name) {
        node = &c;
        break;
      }
    }
    if (node == nullptr) {
      // Children vector may reallocate, but only nodes on this thread's
      // stack are held by pointer and they live in ancestors, whose
      // children vectors are not touched while descendants are added.
      parent->children.push_back({});
      node = &parent->children.back();
      node->name = e.name;
    }
    ++node->calls;
    node->total_us += e.dur_us;
    stack.push_back({node, e.start_us + e.dur_us});
  }
  for (const ProfileNode& c : root.children) root.total_us += c.total_us;
  return root;
}

namespace {

void write_node(std::ostream& os, const ProfileNode& node, int depth) {
  for (int i = 0; i < depth; ++i) os << "  ";
  os << node.name << "  calls=" << node.calls << "  total_ms=";
  os << node.total_us * 1e-3 << "  self_ms=" << node.self_us() * 1e-3
     << '\n';
  for (const ProfileNode& c : node.children) write_node(os, c, depth + 1);
}

}  // namespace

void Profiler::write_report(std::ostream& os) const {
  write_node(os, report(), 0);
}

void Profiler::write_chrome_json(std::ostream& os) const {
  const std::vector<SpanEvent> evs = events();
  std::vector<ChromeTraceEvent> out;
  out.reserve(evs.size() + 4);
  out.push_back(process_name_event(1, "paro"));
  std::uint32_t max_tid = 0;
  for (const SpanEvent& e : evs) max_tid = std::max(max_tid, e.tid);
  for (std::uint32_t t = 0; t <= max_tid; ++t) {
    out.push_back(thread_name_event(1, t, "thread " + std::to_string(t)));
  }
  for (const SpanEvent& e : evs) {
    ChromeTraceEvent c;
    c.name = e.name;
    c.cat = "span";
    c.ph = 'X';
    c.ts = e.start_us;
    c.dur = e.dur_us;
    c.pid = 1;
    c.tid = e.tid;
    out.push_back(std::move(c));
  }
  write_chrome_trace(os, out);
}

Profiler& Profiler::global() {
  static Profiler profiler;
  return profiler;
}

}  // namespace paro::obs
