#include "obs/profile.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <ostream>

#include "common/thread_pool.hpp"
#include "obs/trace_export.hpp"

namespace paro::obs {

namespace {

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct OpenSpan {
  const char* name;
  std::uint64_t start_ns;
  std::uint32_t depth;
  std::uint64_t flow_in;
};

}  // namespace

/// Per-thread span stack.  The owning thread is the only mutator; the
/// export path reads concurrently under `mu` (so in-progress spans can be
/// emitted), which is why states live centrally as shared_ptrs rather
/// than purely in TLS.  Lock order is Profiler::mu_ before ThreadState::mu
/// whenever both are held.
struct Profiler::ThreadState {
  std::mutex mu;              ///< guards `stack`
  std::uint32_t tid = 0;      ///< re-assigned on generation sync; mu_ held
  std::uint64_t generation = 0;  ///< owner-written; epoch of stack contents
  std::vector<OpenSpan> stack;
};

std::shared_ptr<Profiler::ThreadState> Profiler::thread_state() {
  // Keyed by a monotonically increasing per-instance id (not `this`) so
  // independently constructed profilers (tests) never share per-thread
  // span stacks, even when a new Profiler reuses a destroyed one's
  // address.
  thread_local std::map<std::uint64_t, std::shared_ptr<ThreadState>> states;
  auto it = states.find(id_);
  if (it != states.end()) return it->second;
  auto st = std::make_shared<ThreadState>();
  {
    const std::lock_guard<std::mutex> lock(mu_);
    st->generation = generation_.load(std::memory_order_relaxed);
    st->tid = next_tid_++;
    states_.push_back(st);
  }
  states.emplace(id_, st);
  return st;
}

std::uint64_t Profiler::next_id() {
  static std::atomic<std::uint64_t> counter{0};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

Profiler::Profiler() : epoch_ns_(now_ns()), id_(next_id()) {}

Profiler::~Profiler() = default;

void Profiler::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  flow_origins_.clear();
  epoch_ns_ = now_ns();
  generation_.fetch_add(1, std::memory_order_acq_rel);
  next_tid_ = 0;
}

void Profiler::begin_span(const char* name) { begin_span_flow(name, 0); }

void Profiler::begin_span_flow(const char* name, std::uint64_t flow_id) {
  const std::shared_ptr<ThreadState> st = thread_state();
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (st->generation != gen) {
    // First span since a reset(): stale opens belong to the old epoch,
    // and the dense tid numbering restarted.
    const std::lock_guard<std::mutex> lock(mu_);
    const std::lock_guard<std::mutex> slock(st->mu);
    st->stack.clear();
    st->generation = generation_.load(std::memory_order_relaxed);
    st->tid = next_tid_++;
  }
  const std::lock_guard<std::mutex> slock(st->mu);
  st->stack.push_back({name, now_ns(),
                       static_cast<std::uint32_t>(st->stack.size()), flow_id});
}

void Profiler::end_span() {
  const std::uint64_t end_ns = now_ns();
  const std::shared_ptr<ThreadState> st = thread_state();
  OpenSpan span;
  {
    const std::lock_guard<std::mutex> slock(st->mu);
    if (st->stack.empty()) return;
    span = st->stack.back();
    st->stack.pop_back();
  }

  const std::lock_guard<std::mutex> lock(mu_);
  if (st->generation != generation_.load(std::memory_order_relaxed)) {
    // reset() happened while this span was open; its start time belongs
    // to the previous epoch, so drop it and every stale open above it.
    const std::lock_guard<std::mutex> slock(st->mu);
    st->stack.clear();
    return;
  }
  SpanEvent e;
  e.name = span.name;
  e.tid = st->tid;
  e.depth = span.depth;
  e.start_us = static_cast<double>(span.start_ns - epoch_ns_) * 1e-3;
  e.dur_us = static_cast<double>(end_ns - span.start_ns) * 1e-3;
  e.flow_in = span.flow_in;
  events_.push_back(e);
}

std::uint64_t Profiler::begin_flow_fanout(const char* name, std::size_t count) {
  if (!enabled() || count == 0) return 0;
  const std::shared_ptr<ThreadState> st = thread_state();
  const std::uint64_t gen = generation_.load(std::memory_order_acquire);
  if (st->generation != gen) {
    const std::lock_guard<std::mutex> lock(mu_);
    const std::lock_guard<std::mutex> slock(st->mu);
    st->stack.clear();
    st->generation = generation_.load(std::memory_order_relaxed);
    st->tid = next_tid_++;
  }
  const std::uint64_t base =
      next_flow_id_.fetch_add(count, std::memory_order_relaxed);
  const std::uint64_t ts_ns = now_ns();
  const std::lock_guard<std::mutex> lock(mu_);
  FlowOrigin origin;
  origin.name = name;
  origin.base = base;
  origin.count = count;
  origin.tid = st->tid;
  origin.ts_us = static_cast<double>(ts_ns - epoch_ns_) * 1e-3;
  flow_origins_.push_back(origin);
  return base;
}

std::vector<SpanEvent> Profiler::events() const {
  std::vector<SpanEvent> out;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    out = events_;
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanEvent& a, const SpanEvent& b) {
                     return a.start_us < b.start_us;
                   });
  return out;
}

double ProfileNode::self_us() const {
  double children_us = 0.0;
  for (const ProfileNode& c : children) children_us += c.total_us;
  return std::max(0.0, total_us - children_us);
}

const ProfileNode* ProfileNode::child(const std::string& name) const {
  for (const ProfileNode& c : children) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

ProfileNode Profiler::report() const {
  const std::vector<SpanEvent> evs = events();
  ProfileNode root;
  root.name = "total";
  root.calls = 1;

  // Rebuild nesting per thread: a span is a child of the deepest span on
  // the same thread that is still open when it starts.
  struct StackEntry {
    ProfileNode* node;
    double end_us;
  };
  std::map<std::uint32_t, std::vector<StackEntry>> stacks;
  for (const SpanEvent& e : evs) {
    auto& stack = stacks[e.tid];
    while (!stack.empty() && e.start_us >= stack.back().end_us) {
      stack.pop_back();
    }
    ProfileNode* parent = stack.empty() ? &root : stack.back().node;
    ProfileNode* node = nullptr;
    for (ProfileNode& c : parent->children) {
      if (c.name == e.name) {
        node = &c;
        break;
      }
    }
    if (node == nullptr) {
      // Children vector may reallocate, but only nodes on this thread's
      // stack are held by pointer and they live in ancestors, whose
      // children vectors are not touched while descendants are added.
      parent->children.push_back({});
      node = &parent->children.back();
      node->name = e.name;
    }
    ++node->calls;
    node->total_us += e.dur_us;
    stack.push_back({node, e.start_us + e.dur_us});
  }
  for (const ProfileNode& c : root.children) root.total_us += c.total_us;
  return root;
}

namespace {

void write_node(std::ostream& os, const ProfileNode& node, int depth) {
  for (int i = 0; i < depth; ++i) os << "  ";
  os << node.name << "  calls=" << node.calls << "  total_ms=";
  os << node.total_us * 1e-3 << "  self_ms=" << node.self_us() * 1e-3
     << '\n';
  for (const ProfileNode& c : node.children) write_node(os, c, depth + 1);
}

}  // namespace

void Profiler::write_chrome_json(std::ostream& os) const {
  const std::uint64_t export_ns = now_ns();
  std::vector<SpanEvent> evs;
  std::vector<FlowOrigin> origins;
  std::vector<std::shared_ptr<ThreadState>> states;
  std::uint64_t epoch_ns = 0;
  std::uint64_t gen = 0;
  {
    const std::lock_guard<std::mutex> lock(mu_);
    evs = events_;
    origins = flow_origins_;
    states = states_;
    epoch_ns = epoch_ns_;
    gen = generation_.load(std::memory_order_relaxed);
  }
  std::stable_sort(evs.begin(), evs.end(),
                   [](const SpanEvent& a, const SpanEvent& b) {
                     return a.start_us < b.start_us;
                   });

  // Spans still open at export time become in-progress slices reaching
  // the export timestamp, so a trace taken mid-run stays balanced.
  std::vector<SpanEvent> open;
  for (const auto& st : states) {
    const std::lock_guard<std::mutex> slock(st->mu);
    if (st->generation != gen) continue;  // stale pre-reset opens
    for (const OpenSpan& s : st->stack) {
      SpanEvent e;
      e.name = s.name;
      e.tid = st->tid;
      e.depth = s.depth;
      e.start_us = static_cast<double>(s.start_ns - epoch_ns) * 1e-3;
      e.dur_us = s.start_ns <= export_ns
                     ? static_cast<double>(export_ns - s.start_ns) * 1e-3
                     : 0.0;
      e.flow_in = s.flow_in;
      open.push_back(e);
    }
  }

  // Flow finish events bind by id; only ids some fanout actually reserved
  // get an arrow (a receiver that outlived a reset would otherwise emit an
  // unmatched 'f').
  const auto origin_for = [&origins](std::uint64_t id) -> const FlowOrigin* {
    if (id == 0) return nullptr;
    for (const FlowOrigin& o : origins) {
      if (id >= o.base && id < o.base + o.count) return &o;
    }
    return nullptr;
  };

  std::vector<ChromeTraceEvent> out;
  out.reserve(evs.size() + open.size() + 3 * origins.size() + 4);
  out.push_back(process_name_event(1, "paro"));
  std::uint32_t max_tid = 0;
  for (const SpanEvent& e : evs) max_tid = std::max(max_tid, e.tid);
  for (const SpanEvent& e : open) max_tid = std::max(max_tid, e.tid);
  for (const FlowOrigin& o : origins) max_tid = std::max(max_tid, o.tid);
  for (std::uint32_t t = 0; t <= max_tid; ++t) {
    out.push_back(thread_name_event(1, t, "thread " + std::to_string(t)));
  }

  const auto append_span = [&out, &origin_for](const SpanEvent& e,
                                               bool in_progress) {
    ChromeTraceEvent c;
    c.name = e.name;
    c.cat = "span";
    c.ph = 'X';
    c.ts = e.start_us;
    c.dur = e.dur_us;
    c.pid = 1;
    c.tid = e.tid;
    if (in_progress) c.args.emplace_back("in_progress", 1.0);
    out.push_back(std::move(c));
    if (const FlowOrigin* o = origin_for(e.flow_in)) {
      ChromeTraceEvent f;
      f.name = o->name;
      f.cat = "flow";
      f.ph = 'f';
      f.ts = e.start_us;
      f.pid = 1;
      f.tid = e.tid;
      f.id = e.flow_in;
      f.bp = "e";
      out.push_back(std::move(f));
    }
  };

  // One start record per reserved id, all anchored at the fanout point.
  for (const FlowOrigin& o : origins) {
    for (std::size_t k = 0; k < o.count; ++k) {
      ChromeTraceEvent s;
      s.name = o.name;
      s.cat = "flow";
      s.ph = 's';
      s.ts = o.ts_us;
      s.pid = 1;
      s.tid = o.tid;
      s.id = o.base + k;
      out.push_back(std::move(s));
    }
  }
  for (const SpanEvent& e : evs) append_span(e, false);
  for (const SpanEvent& e : open) append_span(e, true);
  write_chrome_trace(os, out);
}

void Profiler::write_report(std::ostream& os) const {
  write_node(os, report(), 0);
}

namespace {

/// Links ThreadPool parallel regions to the global profiler: the region
/// fanout reserves one flow id per chunk, and every chunk body runs under
/// a "pool.chunk" span carrying its id — the Chrome export then draws the
/// arrows.  region_begin returning 0 while the profiler is disabled keeps
/// the steady-state cost at one atomic load per region.
class ProfilerPoolObserver final : public PoolTraceObserver {
 public:
  std::uint64_t region_begin(std::size_t n_chunks) override {
    Profiler& p = Profiler::global();
    if (!p.enabled()) return 0;
    return p.begin_flow_fanout("pool.region", n_chunks);
  }
  void chunk_begin(std::uint64_t flow_base, std::size_t chunk) override {
    Profiler::global().begin_span_flow("pool.chunk", flow_base + chunk);
  }
  void chunk_end() override { Profiler::global().end_span(); }
  void region_end(std::uint64_t /*flow_base*/) override {}
};

}  // namespace

Profiler& Profiler::global() {
  // Leaked on purpose: worker threads may record spans during static
  // destruction of other TUs, and the pool observer must outlive every
  // parallel region.
  static Profiler* profiler = new Profiler();
  static const bool pool_hook_installed = [] {
    set_pool_trace_observer(new ProfilerPoolObserver());
    return true;
  }();
  (void)pool_hook_installed;
  return *profiler;
}

}  // namespace paro::obs
