// Scoped wall-clock profiling spans.
//
//   void calibrate_layer(...) {
//     PARO_SPAN("calibrate.layer");
//     for (auto& head : heads) {
//       PARO_SPAN("calibrate.head");   // nests under calibrate.layer
//       ...
//     }
//   }
//
// Spans form a per-thread stack; completed spans are collected centrally
// and can be rendered three ways: a flat event list (events()), an
// aggregated call tree (report() / write_report()), or a Chrome trace
// file (write_chrome_json(), loadable in chrome://tracing / Perfetto).
//
// The profiler is DISABLED by default: a disabled PARO_SPAN costs one
// relaxed atomic load and no allocation, so instrumentation can stay in
// hot paths permanently.  Span names must be string literals (the pointer
// is kept until the span closes).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <vector>

namespace paro::obs {

/// One completed span.
struct SpanEvent {
  const char* name = "";
  std::uint32_t tid = 0;    ///< dense per-profiler thread index
  std::uint32_t depth = 0;  ///< nesting depth at the time the span opened
  double start_us = 0.0;    ///< relative to the profiler epoch (reset())
  double dur_us = 0.0;
};

/// Aggregated call-tree node (children ordered by first appearance).
struct ProfileNode {
  std::string name;
  std::uint64_t calls = 0;
  double total_us = 0.0;
  std::vector<ProfileNode> children;

  /// Time not attributed to any child.
  double self_us() const;
  /// Child with `name`, or nullptr.
  const ProfileNode* child(const std::string& name) const;
};

class Profiler {
 public:
  Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Discards collected spans and restarts the epoch.  Spans that are
  /// open across a reset are dropped when they close.
  void reset();

  /// Completed spans ordered by start time.
  std::vector<SpanEvent> events() const;

  /// Aggregate the events into a call tree rooted at a synthetic node.
  ProfileNode report() const;

  /// Indented text rendering of report() (calls, total ms, self ms).
  void write_report(std::ostream& os) const;

  /// Chrome trace-event JSON of every completed span.
  void write_chrome_json(std::ostream& os) const;

  /// Used by SpanScope; call through PARO_SPAN rather than directly.
  void begin_span(const char* name);
  void end_span();

  /// Process-wide profiler the PARO_SPAN macro records into.
  static Profiler& global();

 private:
  struct ThreadState;
  ThreadState& thread_state();
  static std::uint64_t next_id();

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<SpanEvent> events_;
  std::uint64_t epoch_ns_ = 0;
  /// Bumped by reset() so spans open across a reset are dropped.
  std::atomic<std::uint64_t> generation_{0};
  std::uint32_t next_tid_ = 0;
  /// Process-unique instance id keying per-thread state (never reused,
  /// unlike addresses).
  std::uint64_t id_ = 0;
};

/// RAII guard behind PARO_SPAN.  Captures enablement at construction so a
/// span that began is always closed even if the profiler is toggled
/// mid-scope.
class SpanScope {
 public:
  explicit SpanScope(const char* name)
      : active_(Profiler::global().enabled()) {
    if (active_) Profiler::global().begin_span(name);
  }
  ~SpanScope() {
    if (active_) Profiler::global().end_span();
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  bool active_;
};

}  // namespace paro::obs

#define PARO_SPAN_CONCAT_IMPL_(a, b) a##b
#define PARO_SPAN_CONCAT_(a, b) PARO_SPAN_CONCAT_IMPL_(a, b)
/// Opens a profiling span for the rest of the enclosing scope.
#define PARO_SPAN(name) \
  ::paro::obs::SpanScope PARO_SPAN_CONCAT_(paro_span_scope_, __LINE__)(name)
