// Scoped wall-clock profiling spans.
//
//   void calibrate_layer(...) {
//     PARO_SPAN("calibrate.layer");
//     for (auto& head : heads) {
//       PARO_SPAN("calibrate.head");   // nests under calibrate.layer
//       ...
//     }
//   }
//
// Spans form a per-thread stack; completed spans are collected centrally
// and can be rendered three ways: a flat event list (events()), an
// aggregated call tree (report() / write_report()), or a Chrome trace
// file (write_chrome_json(), loadable in chrome://tracing / Perfetto).
//
// Cross-thread flows: begin_flow_fanout() reserves a contiguous block of
// flow ids at the current span position, and begin_span_flow() opens a
// span that declares one of those ids as its inbound edge.  The export
// then emits Chrome flow records ('s' at the origin, 'f' with bp:"e" at
// each receiving span), so a threads=8 run renders pool chunks linked to
// the span that spawned them.  The thread pool is wired up automatically:
// Profiler::global() installs a PoolTraceObserver, so enabling the global
// profiler is all it takes.
//
// Spans still open when write_chrome_json() runs are exported as
// in-progress slices (duration up to the export timestamp, args
// {"in_progress": 1}) instead of being dropped — a trace taken mid-run or
// after a crash-adjacent stop stays balanced.
//
// The profiler is DISABLED by default: a disabled PARO_SPAN costs one
// relaxed atomic load and no allocation, so instrumentation can stay in
// hot paths permanently.  Span names must be string literals (the pointer
// is kept until the span closes).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace paro::obs {

/// One completed span.
struct SpanEvent {
  const char* name = "";
  std::uint32_t tid = 0;    ///< dense per-profiler thread index
  std::uint32_t depth = 0;  ///< nesting depth at the time the span opened
  double start_us = 0.0;    ///< relative to the profiler epoch (reset())
  double dur_us = 0.0;
  /// Inbound flow id (0 = none): this span was spawned by the fanout that
  /// reserved the id, and the Chrome export draws the arrow.
  std::uint64_t flow_in = 0;
};

/// One flow fanout: `count` ids starting at `base`, originating at
/// (tid, ts_us).  Receiving spans carry base+k as their flow_in.
struct FlowOrigin {
  const char* name = "";
  std::uint64_t base = 0;
  std::size_t count = 0;
  std::uint32_t tid = 0;
  double ts_us = 0.0;
};

/// Aggregated call-tree node (children ordered by first appearance).
struct ProfileNode {
  std::string name;
  std::uint64_t calls = 0;
  double total_us = 0.0;
  std::vector<ProfileNode> children;

  /// Time not attributed to any child.
  double self_us() const;
  /// Child with `name`, or nullptr.
  const ProfileNode* child(const std::string& name) const;
};

class Profiler {
 public:
  Profiler();
  ~Profiler();
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  void set_enabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Discards collected spans and restarts the epoch.  Spans that are
  /// open across a reset are dropped when they close.
  void reset();

  /// Completed spans ordered by start time.
  std::vector<SpanEvent> events() const;

  /// Aggregate the events into a call tree rooted at a synthetic node.
  ProfileNode report() const;

  /// Indented text rendering of report() (calls, total ms, self ms).
  void write_report(std::ostream& os) const;

  /// Chrome trace-event JSON: completed spans, flow arrows, and spans
  /// still open at export time (as in-progress slices).
  void write_chrome_json(std::ostream& os) const;

  /// Used by SpanScope; call through PARO_SPAN rather than directly.
  void begin_span(const char* name);
  void end_span();

  /// Open a span declaring `flow_id` as its inbound flow edge.  Closed
  /// with the ordinary end_span().
  void begin_span_flow(const char* name, std::uint64_t flow_id);

  /// Reserve `count` flow ids anchored at the calling thread's current
  /// position; receivers open spans with begin_span_flow(_, base + k).
  /// Returns 0 (no flow recorded) when disabled or count == 0.
  std::uint64_t begin_flow_fanout(const char* name, std::size_t count);

  /// Process-wide profiler the PARO_SPAN macro records into.  First use
  /// also installs the thread-pool flow observer.
  static Profiler& global();

 private:
  struct ThreadState;
  std::shared_ptr<ThreadState> thread_state();
  static std::uint64_t next_id();

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<SpanEvent> events_;
  std::vector<FlowOrigin> flow_origins_;
  std::vector<std::shared_ptr<ThreadState>> states_;
  std::uint64_t epoch_ns_ = 0;
  /// Bumped by reset() so spans open across a reset are dropped.
  std::atomic<std::uint64_t> generation_{0};
  /// Flow ids are process-monotonic and never reused (0 = "no flow").
  std::atomic<std::uint64_t> next_flow_id_{1};
  std::uint32_t next_tid_ = 0;
  /// Process-unique instance id keying per-thread state (never reused,
  /// unlike addresses).
  std::uint64_t id_ = 0;
};

/// RAII guard behind PARO_SPAN.  Captures enablement at construction so a
/// span that began is always closed even if the profiler is toggled
/// mid-scope.
class SpanScope {
 public:
  explicit SpanScope(const char* name)
      : active_(Profiler::global().enabled()) {
    if (active_) Profiler::global().begin_span(name);
  }
  ~SpanScope() {
    if (active_) Profiler::global().end_span();
  }
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  bool active_;
};

}  // namespace paro::obs

#define PARO_SPAN_CONCAT_IMPL_(a, b) a##b
#define PARO_SPAN_CONCAT_(a, b) PARO_SPAN_CONCAT_IMPL_(a, b)
/// Opens a profiling span for the rest of the enclosing scope.
#define PARO_SPAN(name) \
  ::paro::obs::SpanScope PARO_SPAN_CONCAT_(paro_span_scope_, __LINE__)(name)
