// Chrome trace-event (catapult / Perfetto) JSON export.
//
// Both the profiler's wall-clock spans (obs/profile.hpp) and the
// simulator's operator trace (sim/trace.hpp) serialize through this one
// writer, so every timeline artifact the project produces opens in
// chrome://tracing and ui.perfetto.dev.  Only the two event types those
// sources need are modelled: complete events (ph = "X", with ts + dur) and
// metadata events (ph = "M", naming processes and threads/tracks).
//
// Flow events (ph = "s" start / "f" finish, plus "t" step) are also
// supported so the profiler can draw arrows from a spawning span to the
// pool chunks it fanned out — they carry a shared `id`, and finish events
// bind to the enclosing slice ("bp": "e") per the spec.
//
// Format reference: the "Trace Event Format" document (Chromium project);
// timestamps and durations are in microseconds.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace paro::obs {

struct ChromeTraceEvent {
  std::string name;
  std::string cat = "paro";
  char ph = 'X';
  double ts = 0.0;   ///< microseconds
  double dur = 0.0;  ///< microseconds; written for ph == 'X' only
  std::uint32_t pid = 1;
  std::uint32_t tid = 0;
  /// Flow-event binding id; written only for ph in {'s', 't', 'f'}.
  std::uint64_t id = 0;
  /// Binding point; "e" on finish events so the arrow lands on the
  /// enclosing slice.  Written only when non-empty on a flow phase.
  std::string bp;
  /// Extra numeric payload shown in the trace viewer's detail pane.
  std::vector<std::pair<std::string, double>> args;
  /// Extra string payload ("name" for metadata events goes here too).
  std::vector<std::pair<std::string, std::string>> sargs;
};

/// Metadata event labelling a process track.
ChromeTraceEvent process_name_event(std::uint32_t pid, std::string name);

/// Metadata event labelling a thread (sub-)track.
ChromeTraceEvent thread_name_event(std::uint32_t pid, std::uint32_t tid,
                                   std::string name);

/// Writes `{"traceEvents": [...], "displayTimeUnit": "ms"}`.
void write_chrome_trace(std::ostream& os,
                        const std::vector<ChromeTraceEvent>& events);

}  // namespace paro::obs
