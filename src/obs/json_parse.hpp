// Minimal JSON reader for the observability tooling.
//
// The obs layer writes JSON with its own streaming writer; bench_diff and
// the trace tests need to read it back.  This is a strict RFC 8259
// recursive-descent parser into a small value tree — no external
// dependency, throws paro::DataError on malformed input.  Numbers are
// kept as doubles (fine for every count/seconds field the repo emits).
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace paro::obs {

class JsonValue;
using JsonValuePtr = std::shared_ptr<JsonValue>;

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_v = false;
  double num_v = 0.0;
  std::string str_v;
  std::vector<JsonValuePtr> arr_v;
  std::map<std::string, JsonValuePtr> obj_v;  // sorted keys; fine for configs

  bool is_null() const { return kind == Kind::kNull; }
  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  /// Object member lookup; nullptr when absent or not an object.
  const JsonValue* get(const std::string& key) const;

  /// Typed accessors with defaults (no throw on absence/type mismatch).
  double number_or(double fallback) const;
  std::string string_or(const std::string& fallback) const;
};

/// Parse a complete JSON document; throws paro::DataError on any syntax
/// error or trailing non-whitespace.
JsonValuePtr parse_json(const std::string& text);

}  // namespace paro::obs
