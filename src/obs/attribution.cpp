#include "obs/attribution.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace paro::obs {

void apportion_exact(std::uint64_t total, std::span<const double> weights,
                     std::span<std::uint64_t> out) {
  const std::size_t n = weights.size();
  if (n == 0) return;
  std::fill(out.begin(), out.end(), std::uint64_t{0});
  double wsum = 0.0;
  for (double w : weights) wsum += (w > 0.0 ? w : 0.0);
  if (!(wsum > 0.0)) {
    out[0] = total;
    return;
  }
  std::uint64_t assigned = 0;
  std::vector<double> frac(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    const double share = static_cast<double>(total) * (w / wsum);
    std::uint64_t base = static_cast<std::uint64_t>(std::floor(share));
    if (base > total) base = total;  // FP overshoot guard
    out[i] = base;
    frac[i] = share - static_cast<double>(base);
    assigned += base;
  }
  // Hand the leftover units to the largest fractional remainders, lowest
  // index first on ties — deterministic regardless of FP noise ordering.
  std::uint64_t leftover = total >= assigned ? total - assigned : 0;
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return frac[a] > frac[b];
  });
  for (std::size_t k = 0; leftover > 0; k = (k + 1) % n) {
    out[order[k]] += 1;
    --leftover;
  }
}

void apportion_exact(double total, std::span<const double> weights,
                     std::span<double> out) {
  const std::size_t n = weights.size();
  if (n == 0) return;
  std::fill(out.begin(), out.end(), 0.0);
  double wsum = 0.0;
  for (double w : weights) wsum += (w > 0.0 ? w : 0.0);
  if (!(wsum > 0.0)) {
    out[0] = total;
    return;
  }
  std::size_t last_nz = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (weights[i] > 0.0) last_nz = i;
  }
  double others = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    if (i == last_nz) continue;
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    out[i] = total * (w / wsum);
    others += out[i];
  }
  // Absorb the FP residue so Σout == total bit-for-bit.
  out[last_nz] = total - others;
}

void CostLedger::add(const CostKey& key, const CostRecord& delta) {
  std::lock_guard<std::mutex> lk(mu_);
  records_[key].merge(delta);
}

void CostLedger::merge(const CostLedger& other) {
  // Copy first so we never hold both mutexes at once.
  const auto theirs = other.rollup();
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [key, rec] : theirs) records_[key].merge(rec);
}

std::vector<std::pair<CostKey, CostRecord>> CostLedger::rollup() const {
  std::lock_guard<std::mutex> lk(mu_);
  return {records_.begin(), records_.end()};
}

CostRecord CostLedger::total() const {
  std::lock_guard<std::mutex> lk(mu_);
  CostRecord sum;
  for (const auto& [key, rec] : records_) sum.merge(rec);
  return sum;
}

void CostLedger::attribute_joules(double non_dram_j, double dram_j) {
  std::lock_guard<std::mutex> lk(mu_);
  if (records_.empty()) return;
  const std::size_t n = records_.size();
  std::vector<double> cycle_w(n), byte_w(n);
  std::size_t i = 0;
  for (const auto& [key, rec] : records_) {
    cycle_w[i] = static_cast<double>(rec.cycles);
    byte_w[i] = rec.dram_bytes;
    ++i;
  }
  std::vector<double> from_cycles(n), from_bytes(n);
  apportion_exact(non_dram_j, cycle_w, std::span<double>(from_cycles));
  apportion_exact(dram_j, byte_w, std::span<double>(from_bytes));
  i = 0;
  for (auto& [key, rec] : records_) {
    rec.joules += from_cycles[i] + from_bytes[i];
    ++i;
  }
}

void CostLedger::reset() {
  std::lock_guard<std::mutex> lk(mu_);
  records_.clear();
}

bool CostLedger::empty() const {
  std::lock_guard<std::mutex> lk(mu_);
  return records_.empty();
}

std::size_t CostLedger::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return records_.size();
}

Reconciliation reconcile(const CostLedger& ledger, std::uint64_t total_cycles,
                         double total_dram_bytes, double total_joules) {
  const CostRecord sum = ledger.total();
  const auto rel = [](double have, double want) {
    const double denom = std::max(std::abs(want), 1.0);
    return std::abs(have - want) / denom;
  };
  Reconciliation r;
  r.cycles_rel = rel(static_cast<double>(sum.cycles),
                     static_cast<double>(total_cycles));
  r.dram_rel = rel(sum.dram_bytes, total_dram_bytes);
  r.joules_rel = rel(sum.joules, total_joules);
  return r;
}

}  // namespace paro::obs
