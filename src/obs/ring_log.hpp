// Flight recorder: fixed-size per-thread ring buffers of binary events.
//
// The profiler answers "where did time go" for runs you planned to watch;
// the flight recorder answers "what happened just before it went wrong"
// for runs you didn't.  Each thread writes 32-byte RingEvents into its own
// fixed-capacity ring, so steady-state cost is one relaxed atomic load
// (when disabled) or a TLS lookup plus a bounded-buffer store (when
// enabled) — no allocation, no unbounded growth, old events overwritten.
//
// Sites are interned once per call site (static-local id from
// register_site), so events carry a u32 site id instead of a string.
// dump() serializes the rings plus the site table to a compact binary
// format ("PAROFR1"); decode() reads it back offline, so post-mortems of
// long runs don't require the process that produced them.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace paro::obs {

/// One recorded event.  `a` and `b` are site-defined payload words
/// (e.g. stripe index and live-tile count for an attention stripe).
struct RingEvent {
  std::uint64_t ts_ns = 0;  ///< steady-clock nanoseconds
  std::uint32_t site = 0;   ///< interned site id (see FlightRecorder::site_name)
  std::uint32_t tid = 0;    ///< recorder-local thread id (assignment order)
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};
static_assert(sizeof(RingEvent) == 32, "binary dump format assumes 32B events");

/// Decoded form used by snapshot()/decode(): event plus resolved site name.
struct DecodedEvent {
  RingEvent ev;
  std::string site_name;
};

/// Decoded dump: everything needed for an offline post-mortem.
struct FlightDump {
  std::vector<std::string> sites;        ///< site id -> name
  std::vector<DecodedEvent> events;      ///< all threads, sorted by ts_ns
  std::uint64_t dropped = 0;             ///< events overwritten by wraparound
};

class FlightRecorder {
 public:
  /// `capacity_per_thread` is the ring size in events (rounded up to 1).
  explicit FlightRecorder(std::size_t capacity_per_thread = 4096);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void set_enabled(bool on) { enabled_.store(on, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Intern a site name, returning its stable id.  Call once per call
  /// site and cache the result (the PARO_FR macro does this with a
  /// static local).  Re-registering the same name returns the same id.
  std::uint32_t register_site(const char* name);

  /// Record an event at `site`.  Cheap no-op while disabled.
  void record(std::uint32_t site, std::uint64_t a, std::uint64_t b);

  /// Decode the current contents in-process (ts-sorted across threads).
  FlightDump snapshot() const;

  /// Serialize site table + all rings to `out` in the PAROFR1 binary
  /// format.  The stream must be opened in binary mode.
  void dump(std::ostream& out) const;

  /// Parse a PAROFR1 dump produced by dump().  Throws paro::DataError on
  /// a malformed stream.
  static FlightDump decode(std::istream& in);

  /// Clear all rings and drop-counters; site table and enabled flag keep.
  void reset();

  /// Process-wide recorder used by the PARO_FR macro.  Disabled until
  /// set_enabled(true); rings are only allocated for threads that write.
  static FlightRecorder& global();

 private:
  struct ThreadRing;
  std::shared_ptr<ThreadRing> ring_for_this_thread();

  std::atomic<bool> enabled_{false};
  const std::size_t capacity_;
  const std::uint64_t instance_id_;

  mutable std::mutex mu_;
  std::vector<std::shared_ptr<ThreadRing>> rings_;
  std::vector<std::string> sites_;
  std::uint32_t next_tid_ = 0;
};

}  // namespace paro::obs

/// Record a flight-recorder event against the global recorder.  The site
/// id is interned once (static local), so the steady-state disabled cost
/// is a single relaxed load.  `name` must be a string literal.
#define PARO_FR(name, a, b)                                                  \
  do {                                                                       \
    auto& paro_fr_rec_ = ::paro::obs::FlightRecorder::global();              \
    if (paro_fr_rec_.enabled()) {                                            \
      static const std::uint32_t paro_fr_site_ =                             \
          ::paro::obs::FlightRecorder::global().register_site(name);         \
      paro_fr_rec_.record(paro_fr_site_, static_cast<std::uint64_t>(a),      \
                          static_cast<std::uint64_t>(b));                    \
    }                                                                        \
  } while (0)
