// A synthetic video DiT denoiser — the CogVideoX stand-in for the quality
// experiments (Table I; substitution documented in DESIGN.md §2).
//
// The network is a genuine 3D-full-attention transformer: patch embedding,
// L blocks of (LayerNorm → MHA → residual → LayerNorm → FFN → residual),
// and an output projection predicting the noise ε.  Its attention heads
// carry fixed positional anchors built from random-Fourier locality
// features in per-head axis orderings, so the attention maps exhibit the
// paper's diverse strided-diagonal patterns — the property every
// experiment in §III depends on.
//
// Every Table-I method plugs in through ExecConfig: the same weights run
// with FP attention, SageAttention, Sanger pruning, or the PARO quantized
// pipeline (naive / block-wise / reorder / mixed-precision).
#pragma once

#include <cstdint>
#include <vector>

#include "attention/pipeline.hpp"
#include "quant/linear_w8a8.hpp"
#include "reorder/token_grid.hpp"
#include "tensor/matrix.hpp"

namespace paro::obs {
class CostLedger;
}  // namespace paro::obs

namespace paro {

class SessionContext;

class SyntheticDiT {
 public:
  struct Config {
    std::size_t frames = 5, height = 12, width = 12;  ///< 720 tokens
    std::size_t layers = 3;
    std::size_t hidden = 64;
    std::size_t heads = 4;
    std::size_t channels = 8;  ///< latent channels
    std::uint64_t seed = 42;
    double pattern_gain = 5.0;   ///< positional-anchor strength
    double pattern_width = 0.03; ///< base locality width (varied per head)
    double global_fraction = 0.005;  ///< sink tokens per head
  };

  /// Which attention implementation the forward pass uses.
  /// kQuantizedInteger runs the hardware-faithful integer dataflow
  /// (attention/integer_path.hpp) instead of the fake-quant float path —
  /// the two agree to float tolerance (tested), so either can stand in
  /// for the accelerator's arithmetic.
  enum class AttnImpl {
    kReference,
    kSage,
    kSage2,    ///< SageAttention2-style per-group INT4 QK (ref [17])
    kSanger,
    kQuantized,
    kQuantizedInteger,
  };

  struct ExecConfig {
    AttnImpl impl = AttnImpl::kReference;
    QuantAttentionConfig quant;    ///< used when impl == kQuantized
    float sanger_threshold = 2e-4F;
    bool w8a8_linear = false;      ///< INT8 linear layers (PARO / ablations)
    /// Optional sink for executor accounting (kQuantized only): every
    /// (layer, head) attention call merges its AttnExecStats here, folded
    /// in (layer, head) order so the totals are thread-count-pure.  The
    /// caller owns the object and may accumulate across forward passes.
    AttnExecStats* attn_stats = nullptr;
    /// Optional per-session memory context (kQuantized + streamed executor
    /// only): per-(layer, head) workspaces retain every attention operand
    /// across diffusion steps and stripe scratch comes from per-thread
    /// arena shards, so steps >= 2 of a generation run are allocation-free
    /// on the attention path (attention/session.hpp).  forward() calls
    /// session->begin_step() once per pass.  Outputs are bitwise identical
    /// with or without a session.  The caller owns the context.
    SessionContext* session = nullptr;
    /// Optional cost-attribution sink (kQuantized only): each (layer,
    /// head) feeds its per-bitwidth tile counts (tiles, skipped, QKᵀ
    /// tiles) into the ledger, in (layer, head) order on the coordinating
    /// thread — bitwise-stable at any thread count.  Cycles/bytes/joules
    /// fields are left to the simulator and energy feeds (obs/attribution).
    obs::CostLedger* cost_ledger = nullptr;
  };

  /// Offline per-(layer, head) calibration artifacts.
  struct Calibration {
    std::vector<std::vector<HeadCalibration>> heads;  ///< [layer][head]
  };

  explicit SyntheticDiT(const Config& config);

  const Config& config() const { return cfg_; }
  const TokenGrid& token_grid() const { return grid_; }
  std::size_t head_dim() const { return cfg_.hidden / cfg_.heads; }

  /// Calibrate the quantized pipeline on one FP forward pass at latent
  /// `calib_latent` / time `t_frac` (the paper's offline pass; patterns are
  /// stable across timesteps so a single sample suffices).
  Calibration calibrate(const QuantAttentionConfig& quant,
                        const MatF& calib_latent, double t_frac) const;

  /// Like calibrate(), but solves Eq. 1 with ONE average-bitwidth budget
  /// shared across every (layer, head) of the model — the paper's global
  /// formulation ("N is the number of blocks in the model").  Easy heads
  /// donate bits to hard ones; the model-wide average stays ≤ the budget.
  /// Requires quant.map_scheme == kBlockwiseMixed.
  Calibration calibrate_global(const QuantAttentionConfig& quant,
                               const MatF& calib_latent, double t_frac) const;

  /// Predict noise for latent `x` [tokens, channels] at diffusion time
  /// fraction `t_frac` ∈ (0, 1].  `calib` is required for kQuantized.
  MatF forward(const MatF& x, double t_frac, const ExecConfig& exec,
               const Calibration* calib = nullptr) const;

  /// FP attention map of a given (layer, head) at the given input — used by
  /// pattern analyses (Fig. 8) and tests.
  MatF attention_map_at(const MatF& x, double t_frac, std::size_t layer,
                        std::size_t head) const;

 private:
  struct Block {
    MatF wq, wk, wv, wo;  ///< [hidden, hidden], applied as X·W
    MatF w1, w2;          ///< FFN [hidden, ffn], [ffn, hidden]
    LinearW8A8 wq_q, wk_q, wv_q, wo_q, w1_q, w2_q;  ///< INT8 twins
    std::vector<MatF> pos;  ///< per-head positional anchor [tokens, head_dim]
  };

  /// Capture of per-head Q/K for calibration.
  struct QkCapture {
    std::vector<std::vector<std::pair<MatF, MatF>>>* sink = nullptr;
  };

  MatF forward_impl(const MatF& x, double t_frac, const ExecConfig& exec,
                    const Calibration* calib, QkCapture capture) const;

  MatF timestep_embedding(double t_frac) const;  ///< [1, hidden]

  Config cfg_;
  TokenGrid grid_;
  MatF w_in_;   ///< [channels, hidden]
  MatF w_out_;  ///< [hidden, channels]
  std::vector<Block> blocks_;
};

}  // namespace paro
