// Operator-level workload descriptors.
//
// The cycle simulator and the GPU roofline model both consume the same
// description of one diffusion-step forward pass: the ordered list of
// GEMMs and vector operations of the full transformer stack (paper Fig. 2).
// This keeps PARO and the baselines rigorously on identical workloads.
#pragma once

#include <cstdint>
#include <vector>

#include "model/config.hpp"

namespace paro {

enum class GemmKind {
  kLinear,  ///< QKV/O projections and FFN layers (W8A8 on PARO)
  kQK,      ///< QKᵀ per head → attention logits
  kAttnV,   ///< attention map × V per head
};

struct GemmOp {
  GemmKind kind = GemmKind::kLinear;
  std::size_t m = 0, k = 0, n = 0;  ///< C[m,n] = A[m,k] · B[k,n]
  std::size_t layer = 0;
  std::size_t head = 0;  ///< meaningful for kQK / kAttnV

  double macs() const {
    return static_cast<double>(m) * static_cast<double>(k) *
           static_cast<double>(n);
  }
  /// Minimum DRAM traffic in elements (read A, read B, write C once).
  double stream_elements() const {
    return static_cast<double>(m) * k + static_cast<double>(k) * n +
           static_cast<double>(m) * n;
  }
};

enum class VectorKind {
  kLayerNorm,
  kSoftmax,
  kGelu,
  kResidual,
  kDequant,   ///< int32 accumulator → FP16 rescale
  kReorder,   ///< token gather/scatter of Q/K/V/O (PARO only)
};

struct VectorOp {
  VectorKind kind = VectorKind::kLayerNorm;
  std::size_t elements = 0;
  std::size_t layer = 0;
};

/// One diffusion-step forward pass of the full transformer stack.
struct Workload {
  ModelConfig model;
  std::vector<GemmOp> gemms;
  std::vector<VectorOp> vectors;

  /// Build the workload.  `include_reorder` adds PARO's online QKVO
  /// reorder vector ops (absent on GPU / baseline accelerators).
  static Workload build(const ModelConfig& config, bool include_reorder);

  /// Build the OpenSORA-style "spatial-temporal" variant the paper
  /// contrasts with 3D full attention (§I/§II): each block runs F
  /// per-frame spatial attentions over H·W tokens plus H·W per-location
  /// temporal attentions over F tokens, instead of one (F·H·W)² map.
  /// Quadratic cost collapses — the reason earlier models used it — at
  /// the algorithm-quality cost the paper cites CogVideoX for fixing.
  /// Text tokens join the spatial attention of every frame.
  static Workload build_spatial_temporal(const ModelConfig& config);

  double total_macs() const;
  double attention_macs() const;  ///< QKᵀ + AttnV
  double linear_macs() const;
  double vector_elements() const;
  double reorder_elements() const;
  std::size_t count_gemms(GemmKind kind) const;
};

}  // namespace paro
