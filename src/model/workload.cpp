#include "model/workload.hpp"

namespace paro {

Workload Workload::build(const ModelConfig& config, bool include_reorder) {
  Workload w;
  w.model = config;
  const std::size_t n = config.tokens();
  const std::size_t h = config.hidden;
  const std::size_t dh = config.head_dim();
  const std::size_t ffn = config.ffn_mult * h;

  for (std::size_t layer = 0; layer < config.blocks; ++layer) {
    // --- multi-head self-attention ---
    w.vectors.push_back({VectorKind::kLayerNorm, n * h, layer});
    for (int proj = 0; proj < 3; ++proj) {  // Q, K, V
      w.gemms.push_back({GemmKind::kLinear, n, h, h, layer, 0});
    }
    if (include_reorder) {
      // Online gather of Q, K, V along the token dimension.
      w.vectors.push_back({VectorKind::kReorder, 3 * n * h, layer});
    }
    for (std::size_t head = 0; head < config.heads; ++head) {
      w.gemms.push_back({GemmKind::kQK, n, dh, n, layer, head});
      w.vectors.push_back({VectorKind::kSoftmax, n * n, layer});
      w.gemms.push_back({GemmKind::kAttnV, n, n, dh, layer, head});
    }
    if (include_reorder) {
      // Inverse reorder of the attention output O.
      w.vectors.push_back({VectorKind::kReorder, n * h, layer});
    }
    w.gemms.push_back({GemmKind::kLinear, n, h, h, layer, 0});  // O proj
    w.vectors.push_back({VectorKind::kResidual, n * h, layer});

    // --- feed-forward network ---
    w.vectors.push_back({VectorKind::kLayerNorm, n * h, layer});
    w.gemms.push_back({GemmKind::kLinear, n, h, ffn, layer, 0});
    w.vectors.push_back({VectorKind::kGelu, n * ffn, layer});
    w.gemms.push_back({GemmKind::kLinear, n, ffn, h, layer, 0});
    w.vectors.push_back({VectorKind::kResidual, n * h, layer});
  }
  return w;
}

Workload Workload::build_spatial_temporal(const ModelConfig& config) {
  Workload w;
  w.model = config;
  const std::size_t n = config.tokens();
  const std::size_t h = config.hidden;
  const std::size_t dh = config.head_dim();
  const std::size_t ffn = config.ffn_mult * h;
  const std::size_t spatial = config.grid.height * config.grid.width +
                              config.text_tokens;  // tokens per frame attn
  const std::size_t temporal = config.grid.frames;

  for (std::size_t layer = 0; layer < config.blocks; ++layer) {
    // --- spatial attention (one per frame) ---
    w.vectors.push_back({VectorKind::kLayerNorm, n * h, layer});
    for (int proj = 0; proj < 3; ++proj) {
      w.gemms.push_back({GemmKind::kLinear, n, h, h, layer, 0});
    }
    for (std::size_t head = 0; head < config.heads; ++head) {
      // One batched op covers all F per-frame attentions: m aggregates
      // the batch so macs() and softmax elements are exact.
      w.gemms.push_back({GemmKind::kQK, config.grid.frames * spatial, dh,
                         spatial, layer, head});
      w.vectors.push_back({VectorKind::kSoftmax,
                           config.grid.frames * spatial * spatial, layer});
      w.gemms.push_back({GemmKind::kAttnV, config.grid.frames * spatial,
                         spatial, dh, layer, head});
    }
    w.gemms.push_back({GemmKind::kLinear, n, h, h, layer, 0});
    w.vectors.push_back({VectorKind::kResidual, n * h, layer});

    // --- temporal attention (one per spatial location) ---
    w.vectors.push_back({VectorKind::kLayerNorm, n * h, layer});
    for (int proj = 0; proj < 3; ++proj) {
      w.gemms.push_back({GemmKind::kLinear, n, h, h, layer, 0});
    }
    const std::size_t locations = config.grid.height * config.grid.width;
    for (std::size_t head = 0; head < config.heads; ++head) {
      // One batched op covers all H·W per-location attentions.
      w.gemms.push_back({GemmKind::kQK, locations * temporal, dh, temporal,
                         layer, head});
      w.vectors.push_back(
          {VectorKind::kSoftmax, locations * temporal * temporal, layer});
      w.gemms.push_back({GemmKind::kAttnV, locations * temporal, temporal,
                         dh, layer, head});
    }
    w.gemms.push_back({GemmKind::kLinear, n, h, h, layer, 0});
    w.vectors.push_back({VectorKind::kResidual, n * h, layer});

    // --- feed-forward network ---
    w.vectors.push_back({VectorKind::kLayerNorm, n * h, layer});
    w.gemms.push_back({GemmKind::kLinear, n, h, ffn, layer, 0});
    w.vectors.push_back({VectorKind::kGelu, n * ffn, layer});
    w.gemms.push_back({GemmKind::kLinear, n, ffn, h, layer, 0});
    w.vectors.push_back({VectorKind::kResidual, n * h, layer});
  }
  return w;
}

double Workload::total_macs() const {
  double total = 0.0;
  for (const GemmOp& g : gemms) total += g.macs();
  return total;
}

double Workload::attention_macs() const {
  double total = 0.0;
  for (const GemmOp& g : gemms) {
    if (g.kind != GemmKind::kLinear) total += g.macs();
  }
  return total;
}

double Workload::linear_macs() const {
  double total = 0.0;
  for (const GemmOp& g : gemms) {
    if (g.kind == GemmKind::kLinear) total += g.macs();
  }
  return total;
}

double Workload::vector_elements() const {
  double total = 0.0;
  for (const VectorOp& v : vectors) total += static_cast<double>(v.elements);
  return total;
}

double Workload::reorder_elements() const {
  double total = 0.0;
  for (const VectorOp& v : vectors) {
    if (v.kind == VectorKind::kReorder) {
      total += static_cast<double>(v.elements);
    }
  }
  return total;
}

std::size_t Workload::count_gemms(GemmKind kind) const {
  std::size_t count = 0;
  for (const GemmOp& g : gemms) {
    count += g.kind == kind ? 1 : 0;
  }
  return count;
}

}  // namespace paro
