// CogVideoX model configurations (paper §II-A, §V-A).
//
// CogVideoX generates 49-frame 480×640 videos.  The 3D-VAE compresses
// 4× temporally and 8× spatially, and the DiT patchifies 2×2, giving a
// latent token grid of 13 × 30 × 45 = 17 550 video tokens; with the 226
// text tokens the attention sequence length is 17 776 ("17.8k").
#pragma once

#include <cstddef>
#include <string>

namespace paro {

/// Dimensions of the latent token grid (video tokens only).
struct GridDims {
  std::size_t frames = 13;
  std::size_t height = 30;
  std::size_t width = 45;
  std::size_t tokens() const { return frames * height * width; }
};

/// A transformer stack configuration.
struct ModelConfig {
  std::string name;
  std::size_t blocks = 42;       ///< transformer blocks
  std::size_t hidden = 3072;     ///< model dimension d
  std::size_t heads = 48;        ///< attention heads (head_dim = hidden/heads)
  std::size_t ffn_mult = 4;      ///< FFN expansion
  GridDims grid;                 ///< latent video token grid
  std::size_t text_tokens = 226; ///< prepended conditioning tokens
  std::size_t sampling_steps = 50;  ///< DDIM steps for one video

  std::size_t tokens() const { return grid.tokens() + text_tokens; }
  std::size_t head_dim() const { return hidden / heads; }

  /// CogVideoX-5B: 42 blocks, hidden 3072, 48 heads.
  static ModelConfig cogvideox_5b();
  /// CogVideoX-2B: 30 blocks, hidden 1920, 30 heads.
  static ModelConfig cogvideox_2b();

  /// FP16 bytes of one head's attention map (logits or scores).
  double attention_map_bytes_per_head_fp16() const;
  /// FP16 bytes of all attention maps of ONE transformer block, counting
  /// both the QKᵀ logits and the softmax scores that must be materialised
  /// without fusion — the paper's "56.50 GB per block" motivation number.
  double attention_map_bytes_per_block_fp16() const;
};

}  // namespace paro
