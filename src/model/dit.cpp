#include "model/dit.hpp"

#include <array>
#include <cmath>
#include <span>

#include "attention/integer_path.hpp"
#include "attention/session.hpp"
#include "common/error.hpp"
#include "common/thread_pool.hpp"
#include "obs/attribution.hpp"
#include "attention/reference.hpp"
#include "attention/synthetic.hpp"
#include "quant/sage.hpp"
#include "mixedprec/global_alloc.hpp"
#include "quant/blockwise.hpp"
#include "quant/sparse_attention.hpp"
#include "tensor/ops.hpp"
#include "tensor/random.hpp"

namespace paro {

namespace {

/// Columns [c0, c0+width) of `m` as a new matrix.
MatF col_slice(const MatF& m, std::size_t c0, std::size_t width) {
  PARO_CHECK(c0 + width <= m.cols());
  MatF out(m.rows(), width);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const auto src = m.row(r);
    auto dst = out.row(r);
    for (std::size_t c = 0; c < width; ++c) {
      dst[c] = src[c0 + c];
    }
  }
  return out;
}

/// Write `part` into columns [c0, c0+part.cols()) of `m`.
void col_assign(MatF& m, std::size_t c0, const MatF& part) {
  PARO_CHECK(part.rows() == m.rows() && c0 + part.cols() <= m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const auto src = part.row(r);
    auto dst = m.row(r);
    for (std::size_t c = 0; c < part.cols(); ++c) {
      dst[c0 + c] = src[c];
    }
  }
}

/// col_slice into retained workspace storage (same loops, no fresh matrix).
void col_slice_into(const MatF& m, std::size_t c0, std::size_t width,
                    MatF& out) {
  PARO_CHECK(c0 + width <= m.cols());
  out.resize(m.rows(), width);
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const auto src = m.row(r);
    auto dst = out.row(r);
    for (std::size_t c = 0; c < width; ++c) {
      dst[c] = src[c0 + c];
    }
  }
}

/// a += b, elementwise — the same float additions as add(a, b).
void add_inplace(MatF& a, const MatF& b) {
  PARO_CHECK_MSG(a.same_shape(b), "add_inplace shape mismatch");
  auto fa = a.flat();
  const auto fb = b.flat();
  for (std::size_t i = 0; i < fa.size(); ++i) {
    fa[i] += fb[i];
  }
}

}  // namespace

SyntheticDiT::SyntheticDiT(const Config& config)
    : cfg_(config), grid_(config.frames, config.height, config.width) {
  PARO_CHECK_MSG(cfg_.hidden % cfg_.heads == 0,
                 "hidden must be divisible by heads");
  const std::size_t dh = head_dim();
  PARO_CHECK_MSG(dh >= 4 && dh % 2 == 0, "head_dim must be even and >= 4");
  Rng rng(cfg_.seed);

  w_in_ = random_xavier(cfg_.channels, cfg_.hidden, rng);
  w_out_ = random_xavier(cfg_.hidden, cfg_.channels, rng);

  const std::size_t ffn = 4 * cfg_.hidden;
  const auto& orders = all_axis_orders();
  blocks_.resize(cfg_.layers);
  for (std::size_t l = 0; l < cfg_.layers; ++l) {
    Block& b = blocks_[l];
    b.wq = random_xavier(cfg_.hidden, cfg_.hidden, rng);
    b.wk = random_xavier(cfg_.hidden, cfg_.hidden, rng);
    b.wv = random_xavier(cfg_.hidden, cfg_.hidden, rng);
    b.wo = random_xavier(cfg_.hidden, cfg_.hidden, rng);
    b.w1 = random_xavier(cfg_.hidden, ffn, rng);
    b.w2 = random_xavier(ffn, cfg_.hidden, rng);
    // INT8 twins (LinearW8A8 computes x·Wᵀ, so pass the transpose).
    b.wq_q = LinearW8A8(transpose(b.wq));
    b.wk_q = LinearW8A8(transpose(b.wk));
    b.wv_q = LinearW8A8(transpose(b.wv));
    b.wo_q = LinearW8A8(transpose(b.wo));
    b.w1_q = LinearW8A8(transpose(b.w1));
    b.w2_q = LinearW8A8(transpose(b.w2));
    // Per-head positional anchors: cycle locality orders across heads and
    // layers, vary bandwidth so some heads are sharp and some broad.
    b.pos.reserve(cfg_.heads);
    for (std::size_t h = 0; h < cfg_.heads; ++h) {
      const AxisOrder order = orders[(l * cfg_.heads + h) % orders.size()];
      const double width =
          cfg_.pattern_width * std::pow(2.0, rng.uniform(-1.0, 1.0));
      const double gain = cfg_.pattern_gain * rng.uniform(0.8, 1.25);
      Rng head_rng = rng.fork(l * 1000 + h);
      b.pos.push_back(positional_features(grid_, order, width, gain, dh,
                                          head_rng, dh));
    }
  }
}

MatF SyntheticDiT::timestep_embedding(double t_frac) const {
  MatF e(1, cfg_.hidden);
  auto row = e.row(0);
  const std::size_t half = cfg_.hidden / 2;
  for (std::size_t j = 0; j < half; ++j) {
    const double freq =
        std::pow(10000.0, -static_cast<double>(j) / static_cast<double>(half));
    row[2 * j] = static_cast<float>(std::sin(t_frac * 1000.0 * freq));
    row[2 * j + 1] = static_cast<float>(std::cos(t_frac * 1000.0 * freq));
  }
  return e;
}

SyntheticDiT::Calibration SyntheticDiT::calibrate(
    const QuantAttentionConfig& quant, const MatF& calib_latent,
    double t_frac) const {
  std::vector<std::vector<std::pair<MatF, MatF>>> qk;
  ExecConfig fp_exec;  // reference attention
  QkCapture capture;
  capture.sink = &qk;
  (void)forward_impl(calib_latent, t_frac, fp_exec, nullptr, capture);

  Calibration calib;
  calib.heads.resize(cfg_.layers);
  for (std::size_t l = 0; l < cfg_.layers; ++l) {
    calib.heads[l].resize(cfg_.heads);
  }
  // Heads calibrate independently; each task fills its own slot, so the
  // table is identical at any thread count.
  global_pool().parallel_for(
      0, cfg_.layers * cfg_.heads, 1, [&](std::size_t idx) {
        const std::size_t l = idx / cfg_.heads;
        const std::size_t h = idx % cfg_.heads;
        calib.heads[l][h] =
            calibrate_head(qk[l][h].first, qk[l][h].second, grid_, quant);
      });
  return calib;
}

SyntheticDiT::Calibration SyntheticDiT::calibrate_global(
    const QuantAttentionConfig& quant, const MatF& calib_latent,
    double t_frac) const {
  PARO_CHECK_MSG(quant.map_scheme == AttnMapScheme::kBlockwiseMixed,
                 "global calibration only applies to mixed precision");
  std::vector<std::vector<std::pair<MatF, MatF>>> qk;
  QkCapture capture;
  capture.sink = &qk;
  (void)forward_impl(calib_latent, t_frac, ExecConfig{}, nullptr, capture);

  // Per-head reorder plans + tile statistics in REORDERED space.
  Calibration calib;
  calib.heads.resize(cfg_.layers);
  for (std::size_t l = 0; l < cfg_.layers; ++l) {
    calib.heads[l].resize(cfg_.heads);
  }
  std::vector<HeadBlockStats> all_stats(cfg_.layers * cfg_.heads);
  // all_stats keeps (layer, head) order by construction: slot idx is
  // written only by task idx.
  global_pool().parallel_for(
      0, cfg_.layers * cfg_.heads, 1, [&](std::size_t idx) {
        const std::size_t l = idx / cfg_.heads;
        const std::size_t h = idx % cfg_.heads;
        const MatF sample_map =
            attention_map(qk[l][h].first, qk[l][h].second, quant.scale);
        HeadCalibration& hc = calib.heads[l][h];
        hc.plan = quant.use_reorder
                      ? calibrate_plan(sample_map, grid_, quant.block)
                      : ReorderPlan::identity(grid_.num_tokens());
        const MatF reordered = hc.plan.apply_map(sample_map);
        HeadBlockStats& hs = all_stats[idx];
        hs.layer = l;
        hs.head = h;
        hs.grid = BlockGrid(reordered.rows(), reordered.cols(), quant.block);
        hs.stats = collect_block_stats(reordered, quant.block);
      });

  const GlobalAllocation alloc =
      allocate_global(all_stats, quant.budget_bits, quant.alpha);
  std::size_t index = 0;
  for (std::size_t l = 0; l < cfg_.layers; ++l) {
    for (std::size_t h = 0; h < cfg_.heads; ++h) {
      calib.heads[l][h].bit_table = alloc.tables[index++];
      calib.heads[l][h].planned_avg_bits =
          calib.heads[l][h].bit_table->average_bitwidth();
    }
  }
  return calib;
}

MatF SyntheticDiT::forward(const MatF& x, double t_frac,
                           const ExecConfig& exec,
                           const Calibration* calib) const {
  return forward_impl(x, t_frac, exec, calib, QkCapture{});
}

MatF SyntheticDiT::attention_map_at(const MatF& x, double t_frac,
                                    std::size_t layer,
                                    std::size_t head) const {
  PARO_CHECK(layer < cfg_.layers && head < cfg_.heads);
  std::vector<std::vector<std::pair<MatF, MatF>>> qk;
  QkCapture capture;
  capture.sink = &qk;
  (void)forward_impl(x, t_frac, ExecConfig{}, nullptr, capture);
  return attention_map(qk[layer][head].first, qk[layer][head].second);
}

MatF SyntheticDiT::forward_impl(const MatF& x, double t_frac,
                                const ExecConfig& exec,
                                const Calibration* calib,
                                QkCapture capture) const {
  PARO_CHECK_MSG(x.rows() == grid_.num_tokens() && x.cols() == cfg_.channels,
                 "latent shape mismatch");
  if (exec.impl == AttnImpl::kQuantized ||
      exec.impl == AttnImpl::kQuantizedInteger) {
    PARO_CHECK_MSG(capture.sink != nullptr || calib != nullptr,
                   "quantized execution requires calibration");
    // A calibration for a different model must fail loudly here, not as a
    // vector out-of-range deep inside a worker thread.
    if (calib != nullptr &&
        (calib->heads.size() != cfg_.layers ||
         (!calib->heads.empty() && calib->heads[0].size() != cfg_.heads))) {
      throw DataError(
          "calibration covers " + std::to_string(calib->heads.size()) +
          " layers x " +
          std::to_string(calib->heads.empty() ? 0 : calib->heads[0].size()) +
          " heads, model has " + std::to_string(cfg_.layers) + " x " +
          std::to_string(cfg_.heads));
    }
  }
  const std::size_t dh = head_dim();
  // One forward pass = one diffusion step for the session's memory
  // subsystem: arena shards rewind, mem.* gauges publish, and the
  // per-kernel dispatch metrics flush (the per-call path skips them).
  if (exec.session != nullptr) {
    exec.session->begin_step();
  }

  auto lin = [&](const MatF& in, const MatF& w, const LinearW8A8& wq) {
    return exec.w8a8_linear ? wq.forward(in) : matmul(in, w);
  };

  MatF h = matmul(x, w_in_);
  add_bias_inplace(h, timestep_embedding(t_frac).row(0));

  if (capture.sink != nullptr) {
    capture.sink->assign(cfg_.layers, {});
  }

  for (std::size_t l = 0; l < cfg_.layers; ++l) {
    const Block& b = blocks_[l];

    // --- attention ---
    MatF u = h;
    layernorm_rows_inplace(u);
    const MatF q_all = lin(u, b.wq, b.wq_q);
    const MatF k_all = lin(u, b.wk, b.wk_q);
    const MatF v_all = lin(u, b.wv, b.wv_q);

    MatF concat(h.rows(), cfg_.hidden);
    if (capture.sink != nullptr) {
      (*capture.sink)[l].resize(cfg_.heads);
    }
    // Per-head executor accounting lands in its own slot and folds in head
    // order below — the aggregate never depends on the pool width.
    std::vector<AttnExecStats> head_stats(
        exec.attn_stats != nullptr || exec.cost_ledger != nullptr ? cfg_.heads
                                                                  : 0);
    // Heads are independent: each task writes its own column band of
    // `concat` and its own capture slot.  Nested parallel regions inside
    // the attention kernels run inline on the worker.
    global_pool().parallel_for(0, cfg_.heads, 1, [&](std::size_t head) {
      // Session fast path: slice into the head's retained workspace and
      // run the workspace-backed attention — no per-head allocations once
      // warm, outputs bitwise identical to the generic path below.
      if (exec.impl == AttnImpl::kQuantized && exec.session != nullptr &&
          capture.sink == nullptr) {
        PARO_CHECK(calib != nullptr);
        SessionContext& session = *exec.session;
        HeadWorkspace& hw = session.workspace(l, head);
        col_slice_into(q_all, head * dh, dh, hw.qh);
        col_slice_into(k_all, head * dh, dh, hw.kh);
        col_slice_into(v_all, head * dh, dh, hw.vh);
        add_inplace(hw.qh, b.pos[head]);
        add_inplace(hw.kh, b.pos[head]);
        with_error_context(
            "layer " + std::to_string(l) + " head " + std::to_string(head),
            [&] {
              const MatF& o = quantized_attention_session(
                  hw.qh, hw.kh, hw.vh, calib->heads.at(l).at(head), exec.quant,
                  session, l, head,
                  head_stats.empty() ? nullptr : &head_stats[head]);
              col_assign(concat, head * dh, o);
            });
        return;
      }
      MatF qh = col_slice(q_all, head * dh, dh);
      MatF kh = col_slice(k_all, head * dh, dh);
      const MatF vh = col_slice(v_all, head * dh, dh);
      // Positional anchors give this head its locality pattern.
      qh = add(qh, b.pos[head]);
      kh = add(kh, b.pos[head]);
      if (capture.sink != nullptr) {
        (*capture.sink)[l][head] = {qh, kh};
      }
      MatF oh;
      switch (exec.impl) {
        case AttnImpl::kReference:
          oh = attention_reference(qh, kh, vh);
          break;
        case AttnImpl::kSage:
          oh = sage_attention(qh, kh, vh);
          break;
        case AttnImpl::kSage2:
          oh = sage2_attention(qh, kh, vh, 32);
          break;
        case AttnImpl::kSanger:
          oh = sanger_attention(qh, kh, vh, exec.sanger_threshold);
          break;
        case AttnImpl::kQuantized: {
          PARO_CHECK(calib != nullptr);
          // Failures below (NumericalError from a guard, DataError from a
          // bad calibration record) name only tensor-level context; the
          // model layer owns the (layer, head) coordinates.
          QuantAttentionResult r =
              with_error_context("layer " + std::to_string(l) + " head " +
                                     std::to_string(head),
                                 [&] {
                                   return quantized_attention(
                                       qh, kh, vh,
                                       calib->heads.at(l).at(head),
                                       exec.quant);
                                 });
          if (!head_stats.empty()) {
            head_stats[head] = r.exec;
          }
          oh = std::move(r.output);
          break;
        }
        case AttnImpl::kQuantizedInteger: {
          PARO_CHECK(calib != nullptr);
          oh = with_error_context(
                   "layer " + std::to_string(l) + " head " +
                       std::to_string(head),
                   [&] {
                     return integer_attention(qh, kh, vh,
                                              calib->heads.at(l).at(head),
                                              exec.quant);
                   })
                   .output;
          break;
        }
      }
      col_assign(concat, head * dh, oh);
    });
    if (exec.attn_stats != nullptr) {
      for (const AttnExecStats& s : head_stats) {
        exec.attn_stats->merge(s);
      }
    }
    if (exec.cost_ledger != nullptr) {
      // Attribution feed, on the coordinating thread in head order.  Tile
      // counts land on their own bitwidth class; skipped tiles are the
      // 0-bit class by construction; QKᵀ tiles split over the classes
      // that actually computed (bits > 0), remainder-exact so the ledger
      // sum equals qk_tiles_computed.
      for (std::size_t head = 0; head < head_stats.size(); ++head) {
        const AttnExecStats& s = head_stats[head];
        std::array<double, kNumBitChoices> qk_weights{};
        for (int b = 1; b < kNumBitChoices; ++b) {
          qk_weights[static_cast<std::size_t>(b)] =
              static_cast<double>(s.tiles_per_bits[static_cast<std::size_t>(b)]);
        }
        std::array<std::uint64_t, kNumBitChoices> qk_split{};
        obs::apportion_exact(s.qk_tiles_computed, qk_weights,
                             std::span<std::uint64_t>(qk_split));
        for (int b = 0; b < kNumBitChoices; ++b) {
          const auto bi = static_cast<std::size_t>(b);
          obs::CostRecord rec;
          rec.tiles = s.tiles_per_bits[bi];
          rec.tiles_skipped = b == 0 ? s.tiles_skipped : 0;
          rec.qk_tiles = qk_split[bi];
          // Exact per-class QKᵀ kernel-call and bytes-touched tallies from
          // the executor — measured per tile, not apportioned.
          rec.qk_kernel_calls = s.qk_calls_per_bits[bi];
          rec.qk_bytes = static_cast<double>(s.qk_bytes_per_bits[bi]);
          if (rec.tiles == 0 && rec.tiles_skipped == 0 && rec.qk_tiles == 0 &&
              rec.qk_kernel_calls == 0) {
            continue;
          }
          exec.cost_ledger->add({l, head, kBitChoices[b]}, rec);
        }
      }
    }
    h = add(h, lin(concat, b.wo, b.wo_q));

    // --- FFN ---
    u = h;
    layernorm_rows_inplace(u);
    MatF f = lin(u, b.w1, b.w1_q);
    gelu_inplace(f);
    h = add(h, lin(f, b.w2, b.w2_q));
  }

  layernorm_rows_inplace(h);
  return matmul(h, w_out_);
}

}  // namespace paro
