#include "model/config.hpp"

namespace paro {

ModelConfig ModelConfig::cogvideox_5b() {
  ModelConfig c;
  c.name = "CogVideoX-5B";
  c.blocks = 42;
  c.hidden = 3072;
  c.heads = 48;
  return c;
}

ModelConfig ModelConfig::cogvideox_2b() {
  ModelConfig c;
  c.name = "CogVideoX-2B";
  c.blocks = 30;
  c.hidden = 1920;
  c.heads = 30;
  return c;
}

double ModelConfig::attention_map_bytes_per_head_fp16() const {
  const double n = static_cast<double>(tokens());
  return n * n * 2.0;
}

double ModelConfig::attention_map_bytes_per_block_fp16() const {
  // Logits + softmax scores, all heads of the block.
  return 2.0 * static_cast<double>(heads) *
         attention_map_bytes_per_head_fp16();
}

}  // namespace paro
