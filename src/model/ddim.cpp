#include "model/ddim.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "tensor/ops.hpp"
#include "tensor/random.hpp"

namespace paro {

double alpha_bar(double s) {
  const double t = (s + 0.008) / 1.008 * (M_PI / 2.0);
  const double c = std::cos(t);
  return c * c;
}

std::vector<double> ddim_timesteps(int steps) {
  PARO_CHECK_MSG(steps >= 1, "need at least one step");
  std::vector<double> ts(static_cast<std::size_t>(steps));
  // Start slightly below s = 1: ᾱ(1) = 0 would make the x₀ estimate
  // singular (standard samplers use the same guard).
  constexpr double kStart = 0.98;
  for (int i = 0; i < steps; ++i) {
    ts[static_cast<std::size_t>(i)] =
        kStart * static_cast<double>(steps - i) / static_cast<double>(steps);
  }
  return ts;
}

MatF ddim_sample(const SyntheticDiT& dit, const SyntheticDiT::ExecConfig& exec,
                 const SyntheticDiT::Calibration* calib, int steps,
                 std::uint64_t seed) {
  PARO_SPAN("ddim.sample");
  auto& reg = obs::MetricsRegistry::global();
  Rng rng(seed);
  const std::size_t tokens = dit.token_grid().num_tokens();
  MatF x = random_normal(tokens, dit.config().channels, rng);

  const auto ts = ddim_timesteps(steps);
  for (std::size_t i = 0; i < ts.size(); ++i) {
    PARO_SPAN("ddim.step");
    const obs::ScopedTimer step_timer(reg.stats("ddim.step_seconds"));
    reg.counter("ddim.steps").add(1.0);
    const double t = ts[i];
    const double t_prev = i + 1 < ts.size() ? ts[i + 1] : 0.0;
    const double ab_t = alpha_bar(t);
    const double ab_prev = alpha_bar(t_prev);

    const MatF eps = dit.forward(x, t, exec, calib);

    const double sq_ab_t = std::sqrt(ab_t);
    const double sq_1m_t = std::sqrt(1.0 - ab_t);
    const double sq_ab_p = std::sqrt(ab_prev);
    const double sq_1m_p = std::sqrt(1.0 - ab_prev);

    MatF next(x.rows(), x.cols());
    const auto fx = x.flat();
    const auto fe = eps.flat();
    auto fn = next.flat();
    // Static thresholding of the x₀ estimate (as in standard samplers):
    // keeps the first low-ᾱ steps from amplifying prediction error.
    constexpr double kX0Clip = 10.0;
    for (std::size_t j = 0; j < fx.size(); ++j) {
      double x0 = (fx[j] - sq_1m_t * fe[j]) / sq_ab_t;
      x0 = std::clamp(x0, -kX0Clip, kX0Clip);
      fn[j] = static_cast<float>(sq_ab_p * x0 + sq_1m_p * fe[j]);
    }
    x = std::move(next);
  }
  return x;
}

}  // namespace paro
