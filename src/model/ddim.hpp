// Deterministic DDIM sampling (paper §V-A: "DDIM 50 steps", η = 0).
//
//   x_{t-1} = sqrt(ᾱ_{t-1}) · x̂₀ + sqrt(1 − ᾱ_{t-1}) · ε̂,
//   x̂₀     = (x_t − sqrt(1 − ᾱ_t) · ε̂) / sqrt(ᾱ_t)
//
// with the cosine noise schedule ᾱ(s) = cos²(((s + 0.008)/1.008)·π/2).
// Sampling is fully deterministic given the seed, so quantized runs differ
// from the FP16 run only through the quantization itself — exactly the
// comparison Table I makes (FVD against the FP16 output).
#pragma once

#include <cstdint>
#include <vector>

#include "model/dit.hpp"
#include "tensor/matrix.hpp"

namespace paro {

/// ᾱ at diffusion time fraction s ∈ [0, 1] (cosine schedule).
double alpha_bar(double s);

/// Run DDIM sampling with the given attention execution; returns the final
/// clean latent [tokens, channels].
MatF ddim_sample(const SyntheticDiT& dit, const SyntheticDiT::ExecConfig& exec,
                 const SyntheticDiT::Calibration* calib, int steps,
                 std::uint64_t seed);

/// Per-step time fractions used by ddim_sample (descending from 1).
std::vector<double> ddim_timesteps(int steps);

}  // namespace paro
