// GEMM tiling planner for the on-chip buffer.
//
// Chooses output-stationary tile sizes (Tm × Tn with full-K accumulation
// panels) for C[m,n] = A[m,k]·B[k,n] under an SRAM budget, and reports the
// DRAM traffic the chosen tiling implies:
//
//   A traffic = m·k · ceil(n / Tn)     (A panel re-read per B column strip)
//   B traffic = k·n · ceil(m / Tm)     (B panel re-read per A row strip)
//   C traffic = m·n                    (written once)
//
// The planner scans the feasible (Tm, Tn) lattice for the minimum total
// traffic — the classic inner-loop blocking trade-off.  ParoAccelerator's
// operator costs use the resulting traffic instead of the naive
// "stream everything once" lower bound when a planner is attached.
#pragma once

#include <cstddef>

namespace paro {

struct TilingPlan {
  std::size_t tile_m = 0;
  std::size_t tile_n = 0;
  double traffic_bytes = 0.0;   ///< total DRAM bytes (A + B + C)
  double a_bytes = 0.0;
  double b_bytes = 0.0;
  double c_bytes = 0.0;
  double sram_bytes_used = 0.0;
};

struct TilingProblem {
  std::size_t m = 0, k = 0, n = 0;
  double a_elem_bytes = 1.0;  ///< INT8 activations
  double b_elem_bytes = 1.0;  ///< INT8 weights
  double c_elem_bytes = 4.0;  ///< INT32 accumulators resident on-chip
  double sram_bytes = 0.0;    ///< budget for A-panel + B-panel + C-tile
  /// PE-array tile granularity: Tm and Tn are multiples of this.
  std::size_t granularity = 32;
};

/// Plan the minimum-traffic tiling.  Throws if even the smallest tile
/// (granularity × granularity with its K panels) does not fit.
TilingPlan plan_gemm_tiling(const TilingProblem& problem);

/// Naive streaming lower bound (every operand crosses DRAM exactly once)
/// — what an infinitely large buffer would achieve.
double streaming_lower_bound_bytes(const TilingProblem& problem);

}  // namespace paro
