// Cycle-driven model of the mixed-precision PE array with its dispatcher
// (paper §IV-B, Fig. 4).
//
// The 32×32×32 array is organised as `rows` row-groups; the dispatcher
// hands attention-map blocks to row-groups as they free up, bypassing
// 0-bit blocks outright.  A block that needs `base_cycles` row-group
// cycles in 8-bit mode finishes in ceil(base_cycles / mode_speedup(bits))
// cycles, because each PE reconfigures into two 4b×8b or four 2b×8b
// multiplications per cycle.
//
// With `dispatcher = false` (ablation) the row-groups run in lock-step
// waves of `rows` blocks: a wave lasts as long as its slowest block, which
// is how a rigid SIMD mapping wastes the fast low-bit blocks.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/cycle_engine.hpp"

namespace paro {

/// One attention-map block to process.
struct PeBlockJob {
  int bits = 8;                  ///< {0, 2, 4, 8}
  std::uint64_t base_cycles = 1; ///< row-group cycles in 8-bit mode
};

struct PeArrayConfig {
  std::size_t rows = 32;    ///< independently schedulable row-groups
  bool dispatcher = true;   ///< load-balancing + 0-bit bypass
};

/// Cycle-driven PE array.  Construct, then run via CycleEngine (or the
/// simulate() convenience which drives its own engine).
class PeArraySim : public Component {
 public:
  PeArraySim(PeArrayConfig config, std::vector<PeBlockJob> jobs);

  void tick(std::uint64_t cycle) override;
  bool busy() const override;

  std::uint64_t busy_row_cycles() const { return busy_row_cycles_; }
  std::size_t jobs_skipped() const { return jobs_skipped_; }

  /// Drive to completion and return the elapsed cycles.
  static std::uint64_t simulate(PeArrayConfig config,
                                std::vector<PeBlockJob> jobs);

 private:
  /// Cycles the job occupies one row-group.
  static std::uint64_t job_cycles(const PeBlockJob& job);
  /// Pop the next non-skipped job; returns 0 when exhausted.
  std::uint64_t next_job_cycles();

  PeArrayConfig config_;
  std::vector<PeBlockJob> jobs_;
  std::size_t next_job_ = 0;
  std::vector<std::uint64_t> row_remaining_;
  std::uint64_t busy_row_cycles_ = 0;
  std::size_t jobs_skipped_ = 0;
  bool wave_in_flight_ = false;  ///< dispatcher == false bookkeeping
};

/// Closed-form prediction of the cycle-driven result, used by the
/// operator-level simulator and validated against PeArraySim in tests:
/// with the dispatcher, total ≈ ceil(Σ job_cycles / rows) plus the drain
/// tail; without it, Σ over waves of max(job_cycles in wave).
std::uint64_t pe_array_cycles_analytic(const PeArrayConfig& config,
                                       const std::vector<PeBlockJob>& jobs);

}  // namespace paro
