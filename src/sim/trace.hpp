// Operator-level simulation trace.
//
// When attached to OverlapModel::run, records every operator's resource
// demands and scheduled [start, end) interval; the CSV dump makes the
// simulator's behaviour inspectable with external tooling (the artifact
// an accelerator-paper reviewer asks for), and the Chrome trace-event
// dump opens the same timeline in chrome://tracing / Perfetto with one
// track per phase.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace paro {

struct TraceEvent {
  std::size_t index = 0;      ///< position in the operator stream
  std::string phase;
  double start_cycle = 0.0;
  double end_cycle = 0.0;
  double compute_cycles = 0.0;
  double vector_cycles = 0.0;
  double dram_bytes = 0.0;

  double duration() const { return end_cycle - start_cycle; }
};

class Trace {
 public:
  void add(TraceEvent event) { events_.push_back(std::move(event)); }

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// Longest single operator (the critical chunk to optimise next).
  const TraceEvent* longest() const;

  /// CSV with header: index,phase,start,end,compute,vector,dram_bytes.
  void write_csv(std::ostream& os) const;

  /// Chrome trace-event JSON (obs/trace_export.hpp).  Cycles are written
  /// as microseconds (1 cycle = 1 µs in the viewer); each phase gets its
  /// own named track, and per-operator compute/vector/DRAM demands appear
  /// in the event's args pane.
  void write_chrome_json(std::ostream& os) const;

 private:
  std::vector<TraceEvent> events_;
};

}  // namespace paro
