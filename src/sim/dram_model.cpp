#include "sim/dram_model.hpp"

#include "common/error.hpp"

namespace paro {

DramModel::DramModel(double bytes_per_cycle)
    : bytes_per_cycle_(bytes_per_cycle) {
  PARO_CHECK_MSG(bytes_per_cycle > 0.0, "DRAM bandwidth must be positive");
}

std::uint64_t DramModel::request(double bytes) {
  PARO_CHECK_MSG(bytes >= 0.0, "negative transfer");
  const std::uint64_t ticket = next_ticket_++;
  total_bytes_ += bytes;
  if (bytes == 0.0 && queue_.empty()) {
    completed_through_ = ticket;
    return ticket;
  }
  queue_.push_back({ticket, bytes});
  return ticket;
}

bool DramModel::complete(std::uint64_t ticket) const {
  return ticket <= completed_through_;
}

void DramModel::tick(std::uint64_t /*cycle*/) {
  if (queue_.empty()) return;
  ++busy_cycles_;
  double budget = bytes_per_cycle_;
  while (budget > 0.0 && !queue_.empty()) {
    Transfer& head = queue_.front();
    const double moved = head.remaining < budget ? head.remaining : budget;
    head.remaining -= moved;
    budget -= moved;
    if (head.remaining <= 0.0) {
      completed_through_ = head.ticket;
      queue_.pop_front();
    }
  }
}

bool DramModel::busy() const { return !queue_.empty(); }

SramBuffer::SramBuffer(double capacity_bytes) : capacity_(capacity_bytes) {
  PARO_CHECK_MSG(capacity_bytes > 0.0, "SRAM capacity must be positive");
}

bool SramBuffer::reserve(double bytes) {
  PARO_CHECK_MSG(bytes >= 0.0, "negative reservation");
  if (used_ + bytes > capacity_) return false;
  used_ += bytes;
  if (used_ > peak_) peak_ = used_;
  return true;
}

void SramBuffer::release(double bytes) {
  PARO_CHECK_MSG(bytes <= used_ + 1e-9, "releasing more than reserved");
  used_ -= bytes;
  if (used_ < 0.0) used_ = 0.0;
}

}  // namespace paro
