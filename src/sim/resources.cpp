#include "sim/resources.hpp"

#include "common/error.hpp"

namespace paro {

double HwResources::mode_speedup(int bits) {
  switch (bits) {
    case 8: return 1.0;
    case 4: return 2.0;
    case 2: return 4.0;
    case 0: return 0.0;  // skipped entirely
    default:
      throw ConfigError("PE mode bits must be one of {0,2,4,8}");
  }
}

HwResources HwResources::paro_asic() {
  HwResources r;
  r.name = "PARO";
  r.freq_ghz = 1.0;
  r.pe_macs_per_cycle = 32.0 * 32.0 * 32.0;  // 65.5 INT8 TOPS (2 ops/MAC)
  r.vector_lanes = 2048.0;
  r.dram_gbps = 51.2;
  r.sram_bytes = 1.5 * 1024 * 1024;
  return r;
}

HwResources HwResources::paro_align_a100() {
  HwResources r;
  r.name = "PARO-align-A100";
  r.freq_ghz = 1.0;
  // "Same peak computing performance" = the A100's quoted 312 TFLOPS
  // (156e12 MACs/s).  PARO's wins then come from precision and
  // utilization inside that envelope, not from a larger array.
  r.pe_macs_per_cycle = 156e12 / 1e9;
  // Scale the vector unit with the compute array.
  r.vector_lanes = 2048.0 * (156e12 / 1e9) / (32.0 * 32.0 * 32.0);
  r.dram_gbps = 1935.0;
  r.sram_bytes = 40.0 * 1024 * 1024;
  return r;
}

}  // namespace paro
