#include "sim/cycle_engine.hpp"

#include "common/error.hpp"
#include "obs/metrics.hpp"

namespace paro {

void CycleEngine::add(Component* component) {
  PARO_CHECK(component != nullptr);
  components_.push_back(component);
}

std::uint64_t CycleEngine::run(std::uint64_t max_cycles) {
  std::uint64_t cycle = 0;
  auto any_busy = [this]() {
    for (const Component* c : components_) {
      if (c->busy()) return true;
    }
    return false;
  };
  while (any_busy()) {
    PARO_CHECK_MSG(cycle < max_cycles, "cycle-engine did not quiesce");
    for (Component* c : components_) {
      c->tick(cycle);
    }
    ++cycle;
  }
  // Counter adds are atomic and commutative, so concurrent engine runs
  // (parallel head/stream simulations) report correct totals.
  auto& reg = obs::MetricsRegistry::global();
  reg.counter("sim.engine.runs").add(1.0);
  reg.counter("sim.engine.cycles").add(static_cast<double>(cycle));
  return cycle;
}

}  // namespace paro
