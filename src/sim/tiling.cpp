#include "sim/tiling.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace paro {

namespace {

double ceil_div(std::size_t a, std::size_t b) {
  return static_cast<double>((a + b - 1) / b);
}

}  // namespace

double streaming_lower_bound_bytes(const TilingProblem& p) {
  return static_cast<double>(p.m) * p.k * p.a_elem_bytes +
         static_cast<double>(p.k) * p.n * p.b_elem_bytes +
         static_cast<double>(p.m) * p.n *
             std::min(p.a_elem_bytes, p.c_elem_bytes);
}

TilingPlan plan_gemm_tiling(const TilingProblem& p) {
  PARO_CHECK_MSG(p.m > 0 && p.k > 0 && p.n > 0, "degenerate GEMM");
  PARO_CHECK_MSG(p.granularity > 0, "granularity must be positive");
  PARO_CHECK_MSG(p.sram_bytes > 0.0, "SRAM budget must be positive");

  const std::size_t g = p.granularity;
  auto round_up = [&](std::size_t v) { return ((v + g - 1) / g) * g; };
  const std::size_t max_tm = round_up(p.m);
  const std::size_t max_tn = round_up(p.n);

  auto sram_used = [&](std::size_t tm, std::size_t tn) {
    return static_cast<double>(tm) * p.k * p.a_elem_bytes +
           static_cast<double>(p.k) * tn * p.b_elem_bytes +
           static_cast<double>(tm) * tn * p.c_elem_bytes;
  };

  TilingPlan best;
  best.traffic_bytes = std::numeric_limits<double>::infinity();
  for (std::size_t tm = g; tm <= max_tm; tm += g) {
    // Largest feasible Tn for this Tm (monotone, so solve directly).
    for (std::size_t tn = g; tn <= max_tn; tn += g) {
      if (sram_used(tm, tn) > p.sram_bytes) break;
      const double a_once = static_cast<double>(p.m) * p.k * p.a_elem_bytes;
      const double b_once = static_cast<double>(p.k) * p.n * p.b_elem_bytes;
      const double c_once = static_cast<double>(p.m) * p.n *
                            std::min(p.a_elem_bytes, p.c_elem_bytes);
      // Row-strips outer: A panels once, B reloaded per row strip.
      const double row_outer = a_once + b_once * ceil_div(p.m, tm) + c_once;
      // Column-strips outer: B panels once, A reloaded per column strip.
      const double col_outer = a_once * ceil_div(p.n, tn) + b_once + c_once;
      const double traffic = std::min(row_outer, col_outer);
      if (traffic < best.traffic_bytes ||
          (traffic == best.traffic_bytes &&
           sram_used(tm, tn) < best.sram_bytes_used)) {
        best.tile_m = tm;
        best.tile_n = tn;
        best.traffic_bytes = traffic;
        best.sram_bytes_used = sram_used(tm, tn);
        if (row_outer <= col_outer) {
          best.a_bytes = a_once;
          best.b_bytes = b_once * ceil_div(p.m, tm);
        } else {
          best.a_bytes = a_once * ceil_div(p.n, tn);
          best.b_bytes = b_once;
        }
        best.c_bytes = c_once;
      }
    }
  }
  PARO_CHECK_MSG(std::isfinite(best.traffic_bytes),
                 "no feasible tiling: SRAM too small for one tile");
  return best;
}

}  // namespace paro
