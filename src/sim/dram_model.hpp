// Bandwidth-limited DRAM channel for the cycle-driven models.
//
// Transfers are served in FIFO order at `bytes_per_cycle`; completion is
// queried by ticket.  This is deliberately a bandwidth model (no banks,
// no refresh): the workloads of interest stream megabyte-scale tensors,
// where sustained bandwidth is the only first-order effect — the same
// abstraction level as the paper's "DDR bandwidth of PARO is 51.2 GB/s".
#pragma once

#include <cstdint>
#include <deque>

#include "sim/cycle_engine.hpp"

namespace paro {

class DramModel : public Component {
 public:
  explicit DramModel(double bytes_per_cycle);

  /// Queue a transfer; returns its ticket.  Zero-byte transfers complete
  /// immediately.
  std::uint64_t request(double bytes);

  /// Has the ticketed transfer fully drained?
  bool complete(std::uint64_t ticket) const;

  void tick(std::uint64_t cycle) override;
  bool busy() const override;

  double total_bytes() const { return total_bytes_; }
  std::uint64_t busy_cycles() const { return busy_cycles_; }

 private:
  struct Transfer {
    std::uint64_t ticket;
    double remaining;
  };
  double bytes_per_cycle_;
  std::deque<Transfer> queue_;
  std::uint64_t next_ticket_ = 1;
  std::uint64_t completed_through_ = 0;  ///< all tickets <= this are done
  double total_bytes_ = 0.0;
  std::uint64_t busy_cycles_ = 0;
};

/// Capacity bookkeeping for an on-chip buffer (double-buffered tiling
/// decisions, peak-occupancy checks).
class SramBuffer {
 public:
  explicit SramBuffer(double capacity_bytes);

  /// Reserve space; returns false (and reserves nothing) if it won't fit.
  bool reserve(double bytes);
  void release(double bytes);

  double capacity() const { return capacity_; }
  double used() const { return used_; }
  double peak() const { return peak_; }

 private:
  double capacity_;
  double used_ = 0.0;
  double peak_ = 0.0;
};

}  // namespace paro
