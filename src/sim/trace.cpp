#include "sim/trace.hpp"

#include <map>
#include <ostream>

#include "obs/trace_export.hpp"

namespace paro {

const TraceEvent* Trace::longest() const {
  const TraceEvent* best = nullptr;
  for (const TraceEvent& e : events_) {
    if (best == nullptr || e.duration() > best->duration()) {
      best = &e;
    }
  }
  return best;
}

void Trace::write_csv(std::ostream& os) const {
  os << "index,phase,start,end,compute,vector,dram_bytes\n";
  for (const TraceEvent& e : events_) {
    os << e.index << ',' << e.phase << ',' << e.start_cycle << ','
       << e.end_cycle << ',' << e.compute_cycles << ',' << e.vector_cycles
       << ',' << e.dram_bytes << '\n';
  }
}

void Trace::write_chrome_json(std::ostream& os) const {
  // One viewer track (tid) per phase, in order of first appearance so the
  // timeline reads top-to-bottom the way the schedule executes.
  std::map<std::string, std::uint32_t> phase_tid;
  std::vector<std::string> phase_order;
  for (const TraceEvent& e : events_) {
    if (phase_tid.emplace(e.phase, phase_order.size()).second) {
      phase_order.push_back(e.phase);
    }
  }

  constexpr std::uint32_t kPid = 1;
  std::vector<obs::ChromeTraceEvent> out;
  out.reserve(events_.size() + phase_order.size() + 1);
  out.push_back(obs::process_name_event(kPid, "paro-sim (1 cycle = 1us)"));
  for (std::size_t t = 0; t < phase_order.size(); ++t) {
    out.push_back(obs::thread_name_event(
        kPid, static_cast<std::uint32_t>(t), phase_order[t]));
  }
  for (const TraceEvent& e : events_) {
    obs::ChromeTraceEvent c;
    c.name = e.phase;
    c.cat = "sim";
    c.ph = 'X';
    c.ts = e.start_cycle;
    c.dur = e.duration();
    c.pid = kPid;
    c.tid = phase_tid.at(e.phase);
    c.args.emplace_back("index", static_cast<double>(e.index));
    c.args.emplace_back("compute_cycles", e.compute_cycles);
    c.args.emplace_back("vector_cycles", e.vector_cycles);
    c.args.emplace_back("dram_bytes", e.dram_bytes);
    out.push_back(std::move(c));
  }
  obs::write_chrome_trace(os, out);
}

}  // namespace paro
