#include "sim/trace.hpp"

#include <ostream>

namespace paro {

const TraceEvent* Trace::longest() const {
  const TraceEvent* best = nullptr;
  for (const TraceEvent& e : events_) {
    if (best == nullptr || e.duration() > best->duration()) {
      best = &e;
    }
  }
  return best;
}

void Trace::write_csv(std::ostream& os) const {
  os << "index,phase,start,end,compute,vector,dram_bytes\n";
  for (const TraceEvent& e : events_) {
    os << e.index << ',' << e.phase << ',' << e.start_cycle << ','
       << e.end_cycle << ',' << e.compute_cycles << ',' << e.vector_cycles
       << ',' << e.dram_bytes << '\n';
  }
}

}  // namespace paro
