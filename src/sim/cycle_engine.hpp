// Minimal cycle-driven simulation kernel.
//
// Components implement tick(); the engine advances the global clock until
// every component reports idle (or a cycle limit is hit).  Used by the
// micro-architectural models (PE array + dispatcher, LDZ pipeline) whose
// behaviour the coarser OverlapModel inputs are validated against.
#pragma once

#include <cstdint>
#include <vector>

namespace paro {

/// Anything that advances one clock cycle at a time.
class Component {
 public:
  virtual ~Component() = default;
  /// Advance one cycle.  `cycle` is the index of the cycle being executed.
  virtual void tick(std::uint64_t cycle) = 0;
  /// True while the component still has work in flight.
  virtual bool busy() const = 0;
};

/// Drives a set of components cycle by cycle.
class CycleEngine {
 public:
  void add(Component* component);

  /// Run until all components are idle.  Returns the number of cycles
  /// executed.  Throws if `max_cycles` elapse without quiescing.
  std::uint64_t run(std::uint64_t max_cycles = 1'000'000'000ULL);

 private:
  std::vector<Component*> components_;
};

}  // namespace paro
