// Tile/op-level performance aggregation with double-buffered overlap.
//
// Each operator (GEMM, softmax stripe, reorder pass, ...) is reduced to an
// OpCost: cycles demanded from the PE array, cycles demanded from the
// vector unit, and bytes moved over DRAM.  With double-buffered SRAM the
// three resources overlap within an operator, so the operator's latency is
// the max of the three demands (plus nothing else: fill/drain latencies are
// sub-ppm at these op sizes and are ignored).  Operators execute in
// sequence — the dataflow dependences of the transformer.
//
// This is the standard aggregation used by accelerator-paper simulators;
// the genuinely cycle-driven PE-array model (pe_array_sim.hpp) validates
// the per-operator compute-cycle inputs used here.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sim/resources.hpp"
#include "sim/trace.hpp"

namespace paro {

/// Resource demands of one operator.
struct OpCost {
  std::string phase;          ///< e.g. "linear", "qk", "softmax", "attnv"
  double compute_cycles = 0;  ///< PE-array cycles
  double vector_cycles = 0;   ///< vector-unit cycles
  double dram_bytes = 0;      ///< bytes in + out
};

/// Per-phase accounting.
struct PhaseStats {
  double cycles = 0;          ///< latency contributed by this phase
  double compute_cycles = 0;
  double vector_cycles = 0;
  double dram_cycles = 0;
  double dram_bytes = 0;
};

/// Whole-run accounting.
struct SimStats {
  double total_cycles = 0;
  double pe_busy_cycles = 0;
  double vector_busy_cycles = 0;
  double dram_busy_cycles = 0;
  double dram_bytes = 0;
  std::map<std::string, PhaseStats> phases;

  double seconds(double freq_ghz) const {
    return total_cycles / (freq_ghz * 1e9);
  }
  double pe_utilization() const {
    return total_cycles > 0 ? pe_busy_cycles / total_cycles : 0.0;
  }
  /// Latency share of one phase.
  double phase_fraction(const std::string& phase) const;
  /// Merge another run (e.g. accumulate layers or diffusion steps).
  void merge(const SimStats& other);
  /// Multiply all counters (e.g. ×50 DDIM steps).
  void scale(double factor);
};

/// Evaluates a sequence of operators on a resource budget.
class OverlapModel {
 public:
  explicit OverlapModel(const HwResources& resources)
      : resources_(resources) {}

  const HwResources& resources() const { return resources_; }

  /// Latency of one operator: max of the three overlapped demands.
  double op_cycles(const OpCost& op) const;

  /// Evaluate the operator stream.  When `trace` is non-null, every
  /// operator's scheduled interval is recorded (sim/trace.hpp).
  SimStats run(const std::vector<OpCost>& ops, Trace* trace = nullptr) const;

 private:
  HwResources resources_;
};

}  // namespace paro
