#include "sim/pe_array_sim.hpp"

#include <algorithm>
#include <queue>

#include "common/error.hpp"
#include "sim/resources.hpp"

namespace paro {

PeArraySim::PeArraySim(PeArrayConfig config, std::vector<PeBlockJob> jobs)
    : config_(config), jobs_(std::move(jobs)),
      row_remaining_(config.rows, 0) {
  PARO_CHECK_MSG(config_.rows > 0, "PE array needs at least one row-group");
  for (const PeBlockJob& job : jobs_) {
    PARO_CHECK_MSG(job.base_cycles > 0, "jobs must have positive base cycles");
  }
}

std::uint64_t PeArraySim::job_cycles(const PeBlockJob& job) {
  const double speedup = HwResources::mode_speedup(job.bits);
  if (speedup == 0.0) return 0;  // bypassed
  return (job.base_cycles + static_cast<std::uint64_t>(speedup) - 1) /
         static_cast<std::uint64_t>(speedup);
}

std::uint64_t PeArraySim::next_job_cycles() {
  while (next_job_ < jobs_.size()) {
    const std::uint64_t cycles = job_cycles(jobs_[next_job_]);
    ++next_job_;
    if (cycles > 0) return cycles;
    ++jobs_skipped_;
  }
  return 0;
}

void PeArraySim::tick(std::uint64_t /*cycle*/) {
  if (config_.dispatcher) {
    // Each idle row-group pulls the next block, in row order.
    for (auto& remaining : row_remaining_) {
      if (remaining == 0) {
        remaining = next_job_cycles();
      }
      if (remaining > 0) {
        --remaining;
        ++busy_row_cycles_;
      }
    }
    return;
  }
  // Lock-step waves: refill only when every row-group is idle.
  const bool all_idle = std::all_of(row_remaining_.begin(),
                                    row_remaining_.end(),
                                    [](std::uint64_t r) { return r == 0; });
  if (all_idle) {
    for (auto& remaining : row_remaining_) {
      remaining = next_job_cycles();
    }
    wave_in_flight_ = std::any_of(row_remaining_.begin(), row_remaining_.end(),
                                  [](std::uint64_t r) { return r > 0; });
  }
  for (auto& remaining : row_remaining_) {
    if (remaining > 0) {
      --remaining;
      ++busy_row_cycles_;
    }
  }
}

bool PeArraySim::busy() const {
  for (const std::uint64_t r : row_remaining_) {
    if (r > 0) return true;
  }
  // Any non-bypassed job still unissued?
  for (std::size_t j = next_job_; j < jobs_.size(); ++j) {
    if (job_cycles(jobs_[j]) > 0) return true;
  }
  return false;
}

std::uint64_t PeArraySim::simulate(PeArrayConfig config,
                                   std::vector<PeBlockJob> jobs) {
  PeArraySim sim(config, std::move(jobs));
  CycleEngine engine;
  engine.add(&sim);
  return engine.run();
}

std::uint64_t pe_array_cycles_analytic(const PeArrayConfig& config,
                                       const std::vector<PeBlockJob>& jobs) {
  PARO_CHECK(config.rows > 0);
  auto cycles_of = [](const PeBlockJob& job) {
    const double speedup = HwResources::mode_speedup(job.bits);
    if (speedup == 0.0) return std::uint64_t{0};
    return (job.base_cycles + static_cast<std::uint64_t>(speedup) - 1) /
           static_cast<std::uint64_t>(speedup);
  };
  if (config.dispatcher) {
    // Exact list-scheduling makespan: idle rows pull jobs in order; ties
    // resolved by row index (matching PeArraySim::tick).
    using Slot = std::pair<std::uint64_t, std::size_t>;  // (free_at, row)
    std::priority_queue<Slot, std::vector<Slot>, std::greater<>> rows;
    for (std::size_t r = 0; r < config.rows; ++r) {
      rows.push({0, r});
    }
    std::uint64_t makespan = 0;
    for (const PeBlockJob& job : jobs) {
      const std::uint64_t c = cycles_of(job);
      if (c == 0) continue;
      const auto [free_at, row] = rows.top();
      rows.pop();
      const std::uint64_t done = free_at + c;
      makespan = std::max(makespan, done);
      rows.push({done, row});
    }
    return makespan;
  }
  // Waves of `rows` jobs; each wave lasts as long as its slowest job.
  std::uint64_t total = 0;
  std::uint64_t wave_max = 0;
  std::size_t in_wave = 0;
  for (const PeBlockJob& job : jobs) {
    const std::uint64_t c = cycles_of(job);
    if (c == 0) continue;  // bypassed jobs do not occupy wave slots
    wave_max = std::max(wave_max, c);
    if (++in_wave == config.rows) {
      total += wave_max;
      wave_max = 0;
      in_wave = 0;
    }
  }
  return total + wave_max;
}

}  // namespace paro
