// Hardware resource descriptions shared by PARO and the baseline models
// (paper §V-A "Hardware Implementation": a cycle-accurate simulator models
// PARO and the baselines under the SAME hardware resource constraints).
#pragma once

#include <cstdint>
#include <string>

namespace paro {

/// Resource budget of one accelerator configuration.
struct HwResources {
  std::string name;
  double freq_ghz = 1.0;
  /// 8b×8b MACs the PE array completes per cycle (32×32×32 organisation:
  /// a 32×32 output tile with a 32-deep reduction).
  double pe_macs_per_cycle = 32.0 * 32.0 * 32.0;
  /// FP16 vector-unit lanes (exp/div/add/mul/acc each lane per cycle).
  double vector_lanes = 2048.0;
  double dram_gbps = 51.2;          ///< DDR bandwidth
  double sram_bytes = 1.5 * 1024 * 1024;

  /// Throughput multiplier of the mixed-precision PE for a given operand
  /// bitwidth: each PE = four 2b×8b multipliers → 1× at 8 b, 2× at 4 b,
  /// 4× at 2 b (paper Fig. 4b).  0 b means the block is skipped.
  static double mode_speedup(int bits);

  /// Relative MAC rate when operands are FP16 (the "naive FP16" ablation
  /// baseline): an FP16 FMA costs ~2 fixed-point PE slots under iso-area.
  double fp16_rate_factor = 0.5;

  double macs_per_second() const { return pe_macs_per_cycle * freq_ghz * 1e9; }
  double dram_bytes_per_cycle() const { return dram_gbps / freq_ghz; }

  /// The PARO ASIC of Table II: 32×32×32 PEs, 1.5 MB SRAM, 51.2 GB/s DDR.
  static HwResources paro_asic();
  /// PARO scaled to the A100's peak compute / bandwidth / buffer
  /// ("PARO-align-A100"): 624 INT8 TOPS, 1935 GB/s HBM, 40 MB on-chip.
  static HwResources paro_align_a100();
};

/// NVIDIA A100 GPU parameters for the roofline model.
struct GpuResources {
  std::string name = "NVIDIA A100";
  double fp16_tflops = 312.0;   ///< dense tensor-core FP16
  double int8_tops = 624.0;     ///< dense tensor-core INT8
  double hbm_gbps = 1935.0;     ///< A100 80GB HBM2e
  double gemm_efficiency = 0.70;   ///< achieved / peak on large GEMMs
  double bandwidth_efficiency = 0.92;
  double avg_power_w = 250.0;   ///< nvidia-smi average under DiT load
};

}  // namespace paro
