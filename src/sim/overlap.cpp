#include "sim/overlap.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"

namespace paro {

double SimStats::phase_fraction(const std::string& phase) const {
  const auto it = phases.find(phase);
  if (it == phases.end() || total_cycles == 0.0) return 0.0;
  return it->second.cycles / total_cycles;
}

void SimStats::merge(const SimStats& other) {
  total_cycles += other.total_cycles;
  pe_busy_cycles += other.pe_busy_cycles;
  vector_busy_cycles += other.vector_busy_cycles;
  dram_busy_cycles += other.dram_busy_cycles;
  dram_bytes += other.dram_bytes;
  for (const auto& [name, ps] : other.phases) {
    PhaseStats& dst = phases[name];
    dst.cycles += ps.cycles;
    dst.compute_cycles += ps.compute_cycles;
    dst.vector_cycles += ps.vector_cycles;
    dst.dram_cycles += ps.dram_cycles;
    dst.dram_bytes += ps.dram_bytes;
  }
}

void SimStats::scale(double factor) {
  PARO_CHECK(factor >= 0.0);
  total_cycles *= factor;
  pe_busy_cycles *= factor;
  vector_busy_cycles *= factor;
  dram_busy_cycles *= factor;
  dram_bytes *= factor;
  for (auto& [name, ps] : phases) {
    ps.cycles *= factor;
    ps.compute_cycles *= factor;
    ps.vector_cycles *= factor;
    ps.dram_cycles *= factor;
    ps.dram_bytes *= factor;
  }
}

double OverlapModel::op_cycles(const OpCost& op) const {
  const double dram_cycles = op.dram_bytes / resources_.dram_bytes_per_cycle();
  return std::max({op.compute_cycles, op.vector_cycles, dram_cycles});
}

SimStats OverlapModel::run(const std::vector<OpCost>& ops,
                           Trace* trace) const {
  PARO_SPAN("sim.overlap.run");
  SimStats stats;
  std::size_t index = 0;
  for (const OpCost& op : ops) {
    const double dram_cycles =
        op.dram_bytes / resources_.dram_bytes_per_cycle();
    const double latency = op_cycles(op);
    if (trace != nullptr) {
      TraceEvent event;
      event.index = index;
      event.phase = op.phase;
      event.start_cycle = stats.total_cycles;
      event.end_cycle = stats.total_cycles + latency;
      event.compute_cycles = op.compute_cycles;
      event.vector_cycles = op.vector_cycles;
      event.dram_bytes = op.dram_bytes;
      trace->add(std::move(event));
    }
    ++index;
    stats.total_cycles += latency;
    stats.pe_busy_cycles += op.compute_cycles;
    stats.vector_busy_cycles += op.vector_cycles;
    stats.dram_busy_cycles += dram_cycles;
    stats.dram_bytes += op.dram_bytes;

    PhaseStats& ps = stats.phases[op.phase];
    ps.cycles += latency;
    ps.compute_cycles += op.compute_cycles;
    ps.vector_cycles += op.vector_cycles;
    ps.dram_cycles += dram_cycles;
    ps.dram_bytes += op.dram_bytes;
  }

  auto& reg = obs::MetricsRegistry::global();
  reg.counter("sim.ops").add(static_cast<double>(ops.size()));
  reg.counter("sim.total_cycles").add(stats.total_cycles);
  reg.counter("sim.pe_busy_cycles").add(stats.pe_busy_cycles);
  reg.counter("sim.vector_busy_cycles").add(stats.vector_busy_cycles);
  reg.counter("sim.dram_bytes").add(stats.dram_bytes);
  return stats;
}

}  // namespace paro
