#include "energy/area_power.hpp"

#include <cmath>

namespace paro {

namespace {
double pe_scale(const HwResources& r) {
  return r.pe_macs_per_cycle / Table2Reference::kRefPeMacs;
}
double vector_scale(const HwResources& r) {
  return r.vector_lanes / Table2Reference::kRefVectorLanes;
}
double sram_area_scale(const HwResources& r) {
  return std::pow(r.sram_bytes / Table2Reference::kRefSramBytes, 0.85);
}
double sram_power_scale(const HwResources& r) {
  return std::pow(r.sram_bytes / Table2Reference::kRefSramBytes, 0.5);
}

std::string format_mb(double bytes) {
  const double mb = bytes / (1024.0 * 1024.0);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f MB SRAM", mb);
  return buf;
}
}  // namespace

std::vector<ComponentSpec> area_power_breakdown(const HwResources& r) {
  const double ps = pe_scale(r);
  const double vs = vector_scale(r);
  std::vector<ComponentSpec> rows;
  rows.push_back({"PE Array", "mixed-precision PEs",
                  Table2Reference::kPeArrayArea * ps,
                  Table2Reference::kPeArrayPower * ps});
  rows.push_back({"PE Array", "Leading Zero Unit",
                  Table2Reference::kLdzArea * ps,
                  Table2Reference::kLdzPower * ps});
  rows.push_back({"PE Array", "Others (dispatch/ctrl)",
                  Table2Reference::kPeOtherArea * ps,
                  Table2Reference::kPeOtherPower * ps});
  rows.push_back({"Vector Unit", "Exp/Div/Add/Mult/Acc.",
                  Table2Reference::kVectorArea * vs,
                  Table2Reference::kVectorPower * vs});
  rows.push_back({"Buffer", format_mb(r.sram_bytes),
                  Table2Reference::kBufferArea * sram_area_scale(r),
                  Table2Reference::kBufferPower * sram_power_scale(r)});
  return rows;
}

double total_area_mm2(const HwResources& r) {
  double total = 0.0;
  for (const auto& c : area_power_breakdown(r)) total += c.area_mm2;
  return total;
}

double total_power_w(const HwResources& r) {
  double total = 0.0;
  for (const auto& c : area_power_breakdown(r)) total += c.power_w;
  return total;
}

}  // namespace paro
