// Area / power model seeded with the paper's synthesis results
// (Table II: TSMC 12 nm @ 1 GHz, Synopsys DC for logic, CACTI 7 for SRAM).
//
// The published per-component numbers are the reference point; other
// configurations (e.g. PARO-align-A100) scale logic linearly with PE
// count and SRAM super-linearly (CACTI-style capacity^0.85 for area,
// capacity^0.5 for access-dominated power at fixed bandwidth share).
#pragma once

#include <string>
#include <vector>

#include "sim/resources.hpp"

namespace paro {

/// One row of the Table-II style breakdown.
struct ComponentSpec {
  std::string name;
  std::string config;
  double area_mm2 = 0.0;
  double power_w = 0.0;
};

/// Reference constants (paper Table II).
struct Table2Reference {
  // PE array group
  static constexpr double kPeArrayArea = 2.52, kPeArrayPower = 3.60;
  static constexpr double kLdzArea = 0.65, kLdzPower = 0.78;
  static constexpr double kPeOtherArea = 0.39, kPeOtherPower = 0.54;
  // Vector unit (Exp/Div/Add/Mult/Acc)
  static constexpr double kVectorArea = 2.79, kVectorPower = 4.55;
  // 1.5 MB SRAM buffer
  static constexpr double kBufferArea = 1.82, kBufferPower = 1.73;
  static constexpr double kTotalArea = 8.17, kTotalPower = 11.20;

  static constexpr double kRefPeMacs = 32.0 * 32.0 * 32.0;
  static constexpr double kRefVectorLanes = 2048.0;
  static constexpr double kRefSramBytes = 1.5 * 1024 * 1024;
};

/// Breakdown for an arbitrary resource configuration.
std::vector<ComponentSpec> area_power_breakdown(const HwResources& resources);

double total_area_mm2(const HwResources& resources);
double total_power_w(const HwResources& resources);

}  // namespace paro
