#include "energy/energy_model.hpp"

#include "energy/area_power.hpp"

namespace paro {

EnergyReport estimate_energy(const SimStats& stats, const HwResources& hw,
                             double effective_ops,
                             const EnergyModelConfig& config) {
  EnergyReport report;
  report.seconds = stats.seconds(hw.freq_ghz);
  const double total_s = report.seconds;
  const double pe_busy_s = stats.pe_busy_cycles / (hw.freq_ghz * 1e9);
  const double vec_busy_s = stats.vector_busy_cycles / (hw.freq_ghz * 1e9);
  const double dyn = config.dynamic_fraction;
  const double leak = 1.0 - config.dynamic_fraction;

  const double pe_scale = hw.pe_macs_per_cycle / Table2Reference::kRefPeMacs;
  const double vec_scale = hw.vector_lanes / Table2Reference::kRefVectorLanes;

  const double pe_power =
      (Table2Reference::kPeArrayPower + Table2Reference::kPeOtherPower) *
      pe_scale;
  const double ldz_power = Table2Reference::kLdzPower * pe_scale;
  const double vec_power = Table2Reference::kVectorPower * vec_scale;
  const double buf_power = total_power_w(hw) - pe_power - ldz_power -
                           vec_power;  // buffer (already SRAM-scaled)

  report.pe_j = dyn * pe_power * pe_busy_s;
  // The LDZ units toggle with the QKᵀ portion of PE activity; charging
  // them for all PE-busy time is a (slightly pessimistic) upper bound.
  report.ldz_j = dyn * ldz_power * pe_busy_s;
  report.vector_j = dyn * vec_power * vec_busy_s;
  // Buffer banks are active whenever either engine is.
  report.buffer_j = dyn * buf_power * (pe_busy_s + vec_busy_s) / 2.0;
  report.leakage_j = leak * total_power_w(hw) * total_s;
  report.dram_j = stats.dram_bytes * 8.0 * config.dram_pj_per_bit * 1e-12;

  report.total_j = report.pe_j + report.ldz_j + report.vector_j +
                   report.buffer_j + report.leakage_j;
  double accounted = report.total_j;
  if (config.count_dram_in_tops_w) {
    accounted += report.dram_j;
  }
  report.total_j += report.dram_j;
  if (accounted > 0.0) {
    // TOPS/W = (ops/s) / W = ops / J.
    report.effective_tops_per_watt = effective_ops / accounted / 1e12;
  }
  return report;
}

EnergyReport estimate_gpu_energy(double seconds, const GpuResources& gpu,
                                 double effective_ops) {
  EnergyReport report;
  report.seconds = seconds;
  report.total_j = gpu.avg_power_w * seconds;
  if (report.total_j > 0.0) {
    report.effective_tops_per_watt = effective_ops / report.total_j / 1e12;
  }
  return report;
}

}  // namespace paro
