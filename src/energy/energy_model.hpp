// Energy estimation from simulator statistics.
//
// Component energy = dynamic share × component power × busy time
//                  + leakage share × component power × total time.
// DRAM energy is charged per byte (DDR4-class 20 pJ/bit).  The paper's
// TOPS/W numbers count the *useful* operations of the FP16 workload
// (2 × MACs) against accelerator energy — the standard effective-ops
// convention for sparsity/quantization accelerators.
#pragma once

#include "sim/overlap.hpp"
#include "sim/resources.hpp"

namespace paro {

struct EnergyReport {
  double pe_j = 0.0;
  double ldz_j = 0.0;
  double vector_j = 0.0;
  double buffer_j = 0.0;
  double dram_j = 0.0;
  double leakage_j = 0.0;
  double total_j = 0.0;
  double seconds = 0.0;
  double effective_tops_per_watt = 0.0;
};

struct EnergyModelConfig {
  double dynamic_fraction = 0.8;   ///< of Table-II power when busy
  double dram_pj_per_bit = 20.0;   ///< DDR4-class interface energy
  /// When true, DRAM interface energy is included in TOPS/W — the
  /// system-level (more conservative) accounting.
  bool count_dram_in_tops_w = true;
};

/// Estimate energy for a simulated run.  `effective_ops` is the FP16-
/// equivalent operation count of the workload (2 × MACs × steps).
EnergyReport estimate_energy(const SimStats& stats, const HwResources& hw,
                             double effective_ops,
                             const EnergyModelConfig& config = {});

/// Two-bucket view of a report for cost attribution: the DRAM interface
/// energy scales with bytes moved, everything else (PE, LDZ, vector,
/// buffers, leakage) scales with cycles.  The buckets sum to total_j, so
/// an attribution over them reconciles with the report exactly.
struct EnergySplit {
  double dram_j = 0.0;
  double non_dram_j = 0.0;
};

inline EnergySplit energy_attribution_split(const EnergyReport& report) {
  EnergySplit s;
  s.dram_j = report.dram_j;
  s.non_dram_j = report.total_j - report.dram_j;
  return s;
}

/// GPU energy: measured average power × runtime.
EnergyReport estimate_gpu_energy(double seconds, const GpuResources& gpu,
                                 double effective_ops);

}  // namespace paro
