#include "reorder/plan.hpp"

#include <algorithm>
#include <numeric>

#include "tensor/ops.hpp"

namespace paro {

ReorderPlan ReorderPlan::for_order(const TokenGrid& grid,
                                   const AxisOrder& order) {
  ReorderPlan plan;
  plan.order = order;
  plan.perm = grid.permutation(order);
  return plan;
}

ReorderPlan ReorderPlan::for_order_with_prefix(const TokenGrid& grid,
                                               const AxisOrder& order,
                                               std::size_t prefix) {
  ReorderPlan plan;
  plan.order = order;
  plan.perm.reserve(prefix + grid.num_tokens());
  for (std::size_t i = 0; i < prefix; ++i) {
    plan.perm.push_back(static_cast<std::uint32_t>(i));
  }
  for (const std::uint32_t p : grid.permutation(order)) {
    plan.perm.push_back(static_cast<std::uint32_t>(prefix) + p);
  }
  return plan;
}

ReorderPlan ReorderPlan::identity(std::size_t num_tokens) {
  ReorderPlan plan;
  plan.perm.resize(num_tokens);
  std::iota(plan.perm.begin(), plan.perm.end(), 0U);
  return plan;
}

bool ReorderPlan::is_identity() const {
  for (std::size_t i = 0; i < perm.size(); ++i) {
    if (perm[i] != i) return false;
  }
  return true;
}

MatF ReorderPlan::apply_rows(const MatF& x) const {
  return permute_rows(x, perm);
}

MatF ReorderPlan::invert_rows(const MatF& x) const {
  return unpermute_rows(x, perm);
}

void ReorderPlan::apply_rows_into(const MatF& x, MatF& out) const {
  PARO_CHECK_MSG(x.rows() == perm.size(), "plan length does not match rows");
  out.resize(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const auto src = x.row(perm[i]);
    std::copy(src.begin(), src.end(), out.row(i).begin());
  }
}

void ReorderPlan::invert_rows_into(const MatF& x, MatF& out) const {
  PARO_CHECK_MSG(x.rows() == perm.size(), "plan length does not match rows");
  out.resize(x.rows(), x.cols());
  for (std::size_t i = 0; i < x.rows(); ++i) {
    const auto src = x.row(i);
    std::copy(src.begin(), src.end(), out.row(perm[i]).begin());
  }
}

MatF ReorderPlan::apply_map(const MatF& attn) const {
  PARO_CHECK_MSG(attn.rows() == perm.size() && attn.cols() == perm.size(),
                 "attention map shape does not match plan");
  MatF out(attn.rows(), attn.cols());
  for (std::size_t i = 0; i < attn.rows(); ++i) {
    const auto src = attn.row(perm[i]);
    auto dst = out.row(i);
    for (std::size_t j = 0; j < attn.cols(); ++j) {
      dst[j] = src[perm[j]];
    }
  }
  return out;
}

MatF ReorderPlan::invert_map(const MatF& attn) const {
  PARO_CHECK_MSG(attn.rows() == perm.size() && attn.cols() == perm.size(),
                 "attention map shape does not match plan");
  MatF out(attn.rows(), attn.cols());
  for (std::size_t i = 0; i < attn.rows(); ++i) {
    const auto src = attn.row(i);
    auto dst = out.row(perm[i]);
    for (std::size_t j = 0; j < attn.cols(); ++j) {
      dst[perm[j]] = src[j];
    }
  }
  return out;
}

}  // namespace paro
