#include "reorder/token_grid.hpp"

namespace paro {

AxisOrder canonical_axis_order() {
  return AxisOrder{{Axis::kFrame, Axis::kHeight, Axis::kWidth}};
}

const std::array<AxisOrder, 6>& all_axis_orders() {
  static const std::array<AxisOrder, 6> orders = {{
      {{Axis::kFrame, Axis::kHeight, Axis::kWidth}},
      {{Axis::kFrame, Axis::kWidth, Axis::kHeight}},
      {{Axis::kHeight, Axis::kFrame, Axis::kWidth}},
      {{Axis::kHeight, Axis::kWidth, Axis::kFrame}},
      {{Axis::kWidth, Axis::kFrame, Axis::kHeight}},
      {{Axis::kWidth, Axis::kHeight, Axis::kFrame}},
  }};
  return orders;
}

std::string axis_order_name(const AxisOrder& order) {
  std::string name;
  for (const Axis axis : order.axes) {
    switch (axis) {
      case Axis::kFrame: name.push_back('F'); break;
      case Axis::kHeight: name.push_back('H'); break;
      case Axis::kWidth: name.push_back('W'); break;
    }
  }
  return name;
}

TokenGrid::TokenGrid(std::size_t frames, std::size_t height, std::size_t width)
    : frames_(frames), height_(height), width_(width) {
  PARO_CHECK_MSG(frames > 0 && height > 0 && width > 0,
                 "token grid extents must be positive");
}

std::size_t TokenGrid::extent(Axis axis) const {
  switch (axis) {
    case Axis::kFrame: return frames_;
    case Axis::kHeight: return height_;
    case Axis::kWidth: return width_;
  }
  throw Error("invalid axis");
}

std::size_t TokenGrid::token_index(std::size_t f, std::size_t h,
                                   std::size_t w) const {
  PARO_CHECK(f < frames_ && h < height_ && w < width_);
  return (f * height_ + h) * width_ + w;
}

std::size_t TokenGrid::Coord::get(Axis axis) const {
  switch (axis) {
    case Axis::kFrame: return f;
    case Axis::kHeight: return h;
    case Axis::kWidth: return w;
  }
  throw Error("invalid axis");
}

TokenGrid::Coord TokenGrid::coord(std::size_t token) const {
  PARO_CHECK(token < num_tokens());
  Coord c;
  c.w = token % width_;
  c.h = (token / width_) % height_;
  c.f = token / (width_ * height_);
  return c;
}

std::vector<std::uint32_t> TokenGrid::permutation(
    const AxisOrder& order) const {
  std::vector<std::uint32_t> perm;
  perm.reserve(num_tokens());
  const std::size_t n0 = extent(order.axes[0]);
  const std::size_t n1 = extent(order.axes[1]);
  const std::size_t n2 = extent(order.axes[2]);
  std::size_t coords[3] = {0, 0, 0};  // indexed by Axis value
  for (std::size_t a = 0; a < n0; ++a) {
    for (std::size_t b = 0; b < n1; ++b) {
      for (std::size_t c = 0; c < n2; ++c) {
        coords[static_cast<int>(order.axes[0])] = a;
        coords[static_cast<int>(order.axes[1])] = b;
        coords[static_cast<int>(order.axes[2])] = c;
        perm.push_back(static_cast<std::uint32_t>(
            token_index(coords[0], coords[1], coords[2])));
      }
    }
  }
  return perm;
}

}  // namespace paro
