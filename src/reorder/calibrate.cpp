#include "reorder/calibrate.hpp"

#include <limits>

#include "common/thread_pool.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "quant/blockwise.hpp"

namespace paro {

std::vector<PlanScore> score_all_orders(const MatF& sample_map,
                                        const TokenGrid& grid,
                                        std::size_t block,
                                        int calibration_bits) {
  PARO_SPAN("calibrate.score_orders");
  PARO_CHECK_MSG(sample_map.rows() == grid.num_tokens() &&
                     sample_map.cols() == grid.num_tokens(),
                 "sample map does not match token grid");
  const auto& orders = all_axis_orders();
  std::vector<PlanScore> scores(orders.size());
  // Each candidate order is scored independently (apply_map + a block-wise
  // quantization pass, both O(N²)); fan the 6 plans out across the pool.
  // Slot `i` depends only on orders[i], so the result is identical at any
  // thread count.
  global_pool().parallel_for(0, orders.size(), 1, [&](std::size_t i) {
    const ReorderPlan plan = ReorderPlan::for_order(grid, orders[i]);
    const MatF reordered = plan.apply_map(sample_map);
    scores[i].order = orders[i];
    scores[i].quant_error_sq =
        blockwise_quant_error_sq(reordered, block, calibration_bits);
    scores[i].diagonality = block_diagonality(reordered, block);
  });
  return scores;
}

ReorderPlan calibrate_plan(const MatF& sample_map, const TokenGrid& grid,
                           std::size_t block, int calibration_bits) {
  PARO_SPAN("calibrate.plan");
  const auto scores =
      score_all_orders(sample_map, grid, block, calibration_bits);
  std::size_t best = 0;
  double best_err = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (scores[i].quant_error_sq < best_err) {
      best_err = scores[i].quant_error_sq;
      best = i;
    }
  }
  obs::MetricsRegistry::global()
      .counter("reorder.plan_chosen",
               {{"order", axis_order_name(scores[best].order)}})
      .add(1.0);
  return ReorderPlan::for_order(grid, scores[best].order);
}

ReorderPlan calibrate_plan_with_prefix(const MatF& sample_map,
                                       const TokenGrid& grid,
                                       std::size_t prefix, std::size_t block,
                                       int calibration_bits) {
  const std::size_t n = prefix + grid.num_tokens();
  PARO_CHECK_MSG(sample_map.rows() == n && sample_map.cols() == n,
                 "sample map does not match prefix + token grid");
  // Score the candidate orders on the video-token submap.
  MatF video(grid.num_tokens(), grid.num_tokens());
  for (std::size_t i = 0; i < grid.num_tokens(); ++i) {
    const auto src = sample_map.row(prefix + i);
    auto dst = video.row(i);
    for (std::size_t j = 0; j < grid.num_tokens(); ++j) {
      dst[j] = src[prefix + j];
    }
  }
  const ReorderPlan video_plan =
      calibrate_plan(video, grid, block, calibration_bits);
  return ReorderPlan::for_order_with_prefix(grid, video_plan.order, prefix);
}

PlanTable::PlanTable(std::size_t layers, std::size_t heads)
    : layers_(layers), heads_(heads), plans_(layers * heads) {
  PARO_CHECK(layers > 0 && heads > 0);
}

const ReorderPlan& PlanTable::plan(std::size_t layer, std::size_t head) const {
  PARO_CHECK(layer < layers_ && head < heads_);
  return plans_[layer * heads_ + head];
}

void PlanTable::set_plan(std::size_t layer, std::size_t head,
                         ReorderPlan plan) {
  PARO_CHECK(layer < layers_ && head < heads_);
  plans_[layer * heads_ + head] = std::move(plan);
}

std::vector<std::size_t> PlanTable::order_histogram() const {
  const auto& orders = all_axis_orders();
  std::vector<std::size_t> hist(orders.size(), 0);
  for (const ReorderPlan& plan : plans_) {
    for (std::size_t i = 0; i < orders.size(); ++i) {
      if (plan.order == orders[i]) {
        ++hist[i];
        break;
      }
    }
  }
  return hist;
}

PlanTable calibrate_model(const std::vector<std::vector<MatF>>& sample_maps,
                          const TokenGrid& grid, std::size_t block,
                          int calibration_bits) {
  PARO_CHECK_MSG(!sample_maps.empty() && !sample_maps[0].empty(),
                 "need at least one sample map");
  PlanTable table(sample_maps.size(), sample_maps[0].size());
  for (std::size_t l = 0; l < sample_maps.size(); ++l) {
    PARO_CHECK_MSG(sample_maps[l].size() == table.heads(),
                   "ragged sample map table");
  }
  // Heads are independent calibration problems (paper §III-A); fan out over
  // the flattened (layer, head) axis.  The nested plan sweep inside
  // calibrate_plan runs inline on the worker.
  const std::size_t heads = table.heads();
  global_pool().parallel_for(
      0, table.layers() * heads, 1, [&](std::size_t idx) {
        const std::size_t l = idx / heads;
        const std::size_t h = idx % heads;
        table.set_plan(
            l, h,
            calibrate_plan(sample_maps[l][h], grid, block, calibration_bits));
      });
  return table;
}

}  // namespace paro
