// Offline reorder-plan calibration (paper §III-A).
//
// "There are a total of 6 possible reorder plans for each attention head...
//  We select the reorder plan that minimizes quantization error for each
//  head and block offline."  Patterns are stable across timesteps and
//  prompts, so one calibration pass on a sample attention map per
//  (layer, head) fixes the plan for the whole sampling run.
#pragma once

#include <vector>

#include "reorder/plan.hpp"
#include "reorder/token_grid.hpp"
#include "tensor/matrix.hpp"

namespace paro {

/// Result of evaluating one candidate order on a sample map.
struct PlanScore {
  AxisOrder order;
  double quant_error_sq = 0.0;    ///< block-wise quant error after reorder
  double diagonality = 0.0;       ///< mass fraction on the block diagonal
};

/// Evaluate all 6 candidate orders on `sample_map` (a token×token softmax
/// map in canonical order) using block-wise quantization at
/// `calibration_bits`.  Scores are returned in all_axis_orders() order.
std::vector<PlanScore> score_all_orders(const MatF& sample_map,
                                        const TokenGrid& grid,
                                        std::size_t block,
                                        int calibration_bits = 4);

/// Pick the order with the minimum block-wise quantization error and
/// materialise its plan.
ReorderPlan calibrate_plan(const MatF& sample_map, const TokenGrid& grid,
                           std::size_t block, int calibration_bits = 4);

/// Calibrate for a sequence with `prefix` non-grid (text-conditioning)
/// tokens ahead of the video grid — CogVideoX's layout (226 + 17 550).
/// The candidate orders are scored on the video-token submap; the chosen
/// plan keeps the prefix in place.  `sample_map` is the full
/// (prefix + grid) × (prefix + grid) softmax map.
ReorderPlan calibrate_plan_with_prefix(const MatF& sample_map,
                                       const TokenGrid& grid,
                                       std::size_t prefix, std::size_t block,
                                       int calibration_bits = 4);

/// Calibrated plans for a whole model: one per (layer, head), selected from
/// per-head sample maps.  `sample_maps[l][h]` is the sample for layer l,
/// head h.
class PlanTable {
 public:
  PlanTable(std::size_t layers, std::size_t heads);

  std::size_t layers() const { return layers_; }
  std::size_t heads() const { return heads_; }

  const ReorderPlan& plan(std::size_t layer, std::size_t head) const;
  void set_plan(std::size_t layer, std::size_t head, ReorderPlan plan);

  /// Histogram over the 6 orders of how many heads chose each (useful to
  /// reproduce the paper's "different heads aggregate along different
  /// dimensions" observation).
  std::vector<std::size_t> order_histogram() const;

 private:
  std::size_t layers_, heads_;
  std::vector<ReorderPlan> plans_;
};

/// Calibrate every (layer, head) of a model from sample maps.
PlanTable calibrate_model(
    const std::vector<std::vector<MatF>>& sample_maps, const TokenGrid& grid,
    std::size_t block, int calibration_bits = 4);

}  // namespace paro
