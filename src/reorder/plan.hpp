// Reorder plans: a chosen axis order materialised as token permutations,
// plus the reorder operators on Q/K/V/attention-map/O (paper Fig. 3).
//
// Mathematical equivalence (tested in tests/reorder):
//   Let P be the row-gather by `perm`.  Then
//     softmax((P·Q)(P·K)ᵀ) = P · softmax(Q·Kᵀ) · Pᵀ
//   and with V also reordered, the reordered output is P·O, so gathering
//   back through `unpermute_rows` recovers O exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "reorder/token_grid.hpp"
#include "tensor/matrix.hpp"

namespace paro {

/// A calibrated reorder decision for one attention head.
struct ReorderPlan {
  AxisOrder order = canonical_axis_order();
  std::vector<std::uint32_t> perm;  ///< position → canonical token index

  /// Build the plan for `order` on `grid`.
  static ReorderPlan for_order(const TokenGrid& grid, const AxisOrder& order);

  /// Build a plan for a sequence of `prefix` non-grid tokens (CogVideoX's
  /// text-conditioning tokens) followed by the video token grid: the
  /// prefix stays in place, the grid tokens are permuted by `order`.
  static ReorderPlan for_order_with_prefix(const TokenGrid& grid,
                                           const AxisOrder& order,
                                           std::size_t prefix);

  /// Identity plan (no reorder).
  static ReorderPlan identity(std::size_t num_tokens);

  bool is_identity() const;

  /// Reorder per-token rows (Q, K or V): row i of the result is the row of
  /// the token at reordered position i.
  MatF apply_rows(const MatF& x) const;

  /// Inverse-reorder per-token rows (the output O).
  MatF invert_rows(const MatF& x) const;

  /// Allocation-free twins writing into a caller-owned matrix (resized to
  /// x's shape; retained workspace storage is reused).  They skip the
  /// permutation validity re-check — plans are validated when built or
  /// loaded (calibration_io), and the hot loop must not pay an O(N)
  /// alloc-bearing scan per call.  Values are bitwise identical to the
  /// allocating versions (pure row gathers / scatters).
  void apply_rows_into(const MatF& x, MatF& out) const;
  void invert_rows_into(const MatF& x, MatF& out) const;

  /// Conjugate a token×token attention map: out(i,j) = in(perm[i], perm[j]).
  MatF apply_map(const MatF& attn) const;

  /// Inverse of apply_map.
  MatF invert_map(const MatF& attn) const;
};

}  // namespace paro
