// The 3-D token grid of a video DiT and its axis-order permutations
// (paper §III-A).
//
// A latent video of N_frame × N_height × N_width patches is flattened into
// a token sequence.  The canonical ("model") order is frame-major:
//   token(f, h, w) = f·H·W + h·W + w.
// PARO's reorder re-sorts tokens by one of the 3! = 6 axis orders, e.g.
// sorting height-major places tokens of the same image row (across all
// frames) next to each other, turning a "height-local" attention pattern
// into a block-diagonal one.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace paro {

enum class Axis : std::uint8_t { kFrame = 0, kHeight = 1, kWidth = 2 };

/// One of the six orderings of (frame, height, width), outermost first.
struct AxisOrder {
  std::array<Axis, 3> axes;

  bool operator==(const AxisOrder&) const = default;
};

/// The canonical model order: frame outermost, width innermost.
AxisOrder canonical_axis_order();

/// All 6 axis orders (canonical first).
const std::array<AxisOrder, 6>& all_axis_orders();

/// Short name such as "FHW" or "HWF".
std::string axis_order_name(const AxisOrder& order);

/// A 3-D token grid.
class TokenGrid {
 public:
  TokenGrid(std::size_t frames, std::size_t height, std::size_t width);

  std::size_t frames() const { return frames_; }
  std::size_t height() const { return height_; }
  std::size_t width() const { return width_; }
  std::size_t num_tokens() const { return frames_ * height_ * width_; }

  std::size_t extent(Axis axis) const;

  /// Canonical token index of coordinates (f, h, w).
  std::size_t token_index(std::size_t f, std::size_t h, std::size_t w) const;

  /// Coordinates of a canonical token index.
  struct Coord {
    std::size_t f, h, w;
    std::size_t get(Axis axis) const;
  };
  Coord coord(std::size_t token) const;

  /// Build the permutation realising `order`:  perm[i] = canonical index of
  /// the token at position i in the reordered sequence.  Reordering a
  /// matrix X of per-token rows is then permute_rows(X, perm); the inverse
  /// is unpermute_rows with the same perm.
  std::vector<std::uint32_t> permutation(const AxisOrder& order) const;

 private:
  std::size_t frames_, height_, width_;
};

}  // namespace paro
