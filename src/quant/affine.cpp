#include "quant/affine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/error.hpp"
#include "kernels/kernels.hpp"

namespace paro {

namespace {
constexpr float kMinScale = 1e-12F;

std::int64_t qmax_unsigned(int bits) { return (std::int64_t{1} << bits) - 1; }

/// QuantParams in kernel-native form: the clamp interval spelled out.
kernels::QuantTransform transform_of(const QuantParams& p) {
  kernels::QuantTransform t;
  t.scale = p.scale;
  t.zero_point = p.zero_point;
  if (p.symmetric) {
    const std::int64_t qmax = (std::int64_t{1} << (p.bits - 1)) - 1;
    t.qlo = -qmax;
    t.qhi = qmax;
  } else {
    t.qlo = 0;
    t.qhi = qmax_unsigned(p.bits);
  }
  return t;
}
}  // namespace

QuantParams calibrate_minmax(std::span<const float> values, int bits) {
  PARO_CHECK_MSG(bits >= 1 && bits <= 16, "bits out of range");
  PARO_CHECK_MSG(!values.empty(), "cannot calibrate an empty group");
  float lo = values[0], hi = values[0];
  kernels::minmax_f32(values.data(), values.size(), &lo, &hi);
  QuantParams p;
  p.bits = bits;
  p.symmetric = false;
  const float range = hi - lo;
  if (range <= 0.0F) {
    // Degenerate (constant) group: pick a scale that represents the
    // constant exactly at the top code.
    p.scale = std::max(std::abs(lo) / static_cast<float>(qmax_unsigned(bits)),
                       kMinScale);
  } else {
    p.scale =
        std::max(range / static_cast<float>(qmax_unsigned(bits)), kMinScale);
  }
  // The zero point may be negative (all-positive groups) or exceed qmax
  // (all-negative groups); codes are clamped at quantize time instead, so
  // the representable interval stays [lo, hi].
  p.zero_point = static_cast<std::int32_t>(std::lround(-lo / p.scale));
  return p;
}

QuantParams calibrate_symmetric(std::span<const float> values, int bits) {
  PARO_CHECK_MSG(bits >= 2 && bits <= 16, "symmetric quant needs >= 2 bits");
  PARO_CHECK_MSG(!values.empty(), "cannot calibrate an empty group");
  const float amax = kernels::absmax_f32(values.data(), values.size());
  QuantParams p;
  p.bits = bits;
  p.symmetric = true;
  const auto qmax = static_cast<float>((std::int64_t{1} << (bits - 1)) - 1);
  p.scale = std::max(amax / qmax, kMinScale);
  p.zero_point = 0;
  return p;
}

QuantParams calibrate_percentile(std::span<const float> values, int bits,
                                 double clip) {
  PARO_CHECK_MSG(clip >= 0.0 && clip < 0.5, "clip must be in [0, 0.5)");
  PARO_CHECK_MSG(!values.empty(), "cannot calibrate an empty group");
  if (clip == 0.0) {
    return calibrate_minmax(values, bits);
  }
  std::vector<float> sorted(values.begin(), values.end());
  const auto lo_index = static_cast<std::size_t>(
      clip * static_cast<double>(sorted.size() - 1));
  const auto hi_index = sorted.size() - 1 - lo_index;
  std::nth_element(sorted.begin(),
                   sorted.begin() + static_cast<std::ptrdiff_t>(lo_index),
                   sorted.end());
  const float lo = sorted[lo_index];
  std::nth_element(sorted.begin(),
                   sorted.begin() + static_cast<std::ptrdiff_t>(hi_index),
                   sorted.end());
  const float hi = sorted[hi_index];
  // Reuse the min–max math on the clipped interval.
  const float clipped[2] = {lo, hi};
  return calibrate_minmax(clipped, bits);
}

std::int32_t quantize_value(float x, const QuantParams& p) {
  const auto q = static_cast<std::int64_t>(
      std::lround(static_cast<double>(x) / p.scale) + p.zero_point);
  if (p.symmetric) {
    const std::int64_t qmax = (std::int64_t{1} << (p.bits - 1)) - 1;
    return static_cast<std::int32_t>(std::clamp(q, -qmax, qmax));
  }
  return static_cast<std::int32_t>(std::clamp<std::int64_t>(q, 0, qmax_unsigned(p.bits)));
}

float dequantize_value(std::int32_t q, const QuantParams& p) {
  return p.scale * static_cast<float>(q - p.zero_point);
}

void quantize_span(std::span<const float> in, std::span<std::int32_t> out,
                   const QuantParams& p) {
  PARO_CHECK(in.size() == out.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = quantize_value(in[i], p);
  }
}

void fake_quant_span(std::span<const float> in, std::span<float> out,
                     const QuantParams& p) {
  PARO_CHECK(in.size() == out.size());
  kernels::fake_quant_f32(in.data(), out.data(), in.size(), transform_of(p));
}

double quant_error_sq(std::span<const float> values, const QuantParams& p) {
  double acc = 0.0;
  for (const float v : values) {
    const float r = dequantize_value(quantize_value(v, p), p);
    const double d = static_cast<double>(v) - static_cast<double>(r);
    acc += d * d;
  }
  return acc;
}

QuantParams fake_quant_group(std::span<float> values, int bits,
                             bool symmetric) {
  if (bits == 0) {
    std::fill(values.begin(), values.end(), 0.0F);
    QuantParams p;
    p.bits = 0;
    p.scale = kMinScale;
    p.symmetric = symmetric;
    return p;
  }
  if (bits >= 16) {
    QuantParams p;
    p.bits = bits;
    p.scale = 1.0F;
    p.symmetric = symmetric;
    return p;  // treated as lossless FP16 passthrough
  }
  const QuantParams p = symmetric ? calibrate_symmetric(values, bits)
                                  : calibrate_minmax(values, bits);
  fake_quant_span(values, values, p);
  return p;
}

}  // namespace paro
