#include "quant/linear_w8a8.hpp"

#include "common/thread_pool.hpp"
#include "kernels/kernels.hpp"
#include "quant/granularity.hpp"
#include "tensor/ops.hpp"

namespace paro {

namespace {

/// Symmetric int8 transform for `bits`-wide codes (zero point 0).
kernels::QuantTransform symmetric_transform(float scale, int bits) {
  kernels::QuantTransform t;
  t.scale = scale;
  t.zero_point = 0;
  const std::int64_t qmax = (std::int64_t{1} << (bits - 1)) - 1;
  t.qlo = -qmax;
  t.qhi = qmax;
  return t;
}

}  // namespace

LinearW8A8::LinearW8A8(const MatF& weight) {
  codes_ = MatI8(weight.rows(), weight.cols());
  channel_params_.reserve(weight.rows());
  channel_scales_.reserve(weight.rows());
  for (std::size_t r = 0; r < weight.rows(); ++r) {
    const QuantParams p = calibrate_symmetric(weight.row(r), 8);
    const auto src = weight.row(r);
    kernels::quantize_i8(src.data(), codes_.row(r).data(), src.size(),
                         symmetric_transform(p.scale, 8));
    channel_params_.push_back(p);
    channel_scales_.push_back(p.scale);
  }
}

MatF LinearW8A8::forward(const MatF& x) const {
  PARO_CHECK_MSG(x.cols() == in_features(), "LinearW8A8 input width mismatch");
  const QuantizedI8 xa = quantize_rows_i8(x, 8);
  const MatI32 acc = matmul_nt_i8(xa.codes, codes_);
  MatF y(x.rows(), out_features());
  // Dequant epilogue rows are independent; each is one kernel call over the
  // contiguous per-channel scale vector.
  global_pool().parallel_for(0, y.rows(), 16, [&](std::size_t t) {
    kernels::dequant_i32_scaled(acc.row(t).data(), y.cols(),
                                xa.row_params[t].scale,
                                channel_scales_.data(), y.row(t).data());
  });
  return y;
}

MatF LinearW8A8::dequantized_weight() const {
  MatF w(codes_.rows(), codes_.cols());
  for (std::size_t r = 0; r < w.rows(); ++r) {
    kernels::dequant_i8(codes_.row(r).data(), w.row(r).data(), w.cols(),
                        channel_params_[r].scale);
  }
  return w;
}

}  // namespace paro
