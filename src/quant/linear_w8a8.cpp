#include "quant/linear_w8a8.hpp"

#include "quant/granularity.hpp"
#include "tensor/ops.hpp"

namespace paro {

LinearW8A8::LinearW8A8(const MatF& weight) {
  codes_ = MatI8(weight.rows(), weight.cols());
  channel_params_.reserve(weight.rows());
  for (std::size_t r = 0; r < weight.rows(); ++r) {
    const QuantParams p = calibrate_symmetric(weight.row(r), 8);
    const auto src = weight.row(r);
    auto dst = codes_.row(r);
    for (std::size_t c = 0; c < src.size(); ++c) {
      dst[c] = static_cast<std::int8_t>(quantize_value(src[c], p));
    }
    channel_params_.push_back(p);
  }
}

MatF LinearW8A8::forward(const MatF& x) const {
  PARO_CHECK_MSG(x.cols() == in_features(), "LinearW8A8 input width mismatch");
  const QuantizedI8 xa = quantize_rows_i8(x, 8);
  const MatI32 acc = matmul_nt_i8(xa.codes, codes_);
  MatF y(x.rows(), out_features());
  for (std::size_t t = 0; t < y.rows(); ++t) {
    const float sx = xa.row_params[t].scale;
    const auto arow = acc.row(t);
    auto yrow = y.row(t);
    for (std::size_t o = 0; o < yrow.size(); ++o) {
      yrow[o] = static_cast<float>(arow[o]) * sx * channel_params_[o].scale;
    }
  }
  return y;
}

MatF LinearW8A8::dequantized_weight() const {
  MatF w(codes_.rows(), codes_.cols());
  for (std::size_t r = 0; r < w.rows(); ++r) {
    const float s = channel_params_[r].scale;
    const auto src = codes_.row(r);
    auto dst = w.row(r);
    for (std::size_t c = 0; c < src.size(); ++c) {
      dst[c] = static_cast<float>(src[c]) * s;
    }
  }
  return w;
}

}  // namespace paro
