// Tile iteration over BlockGrid / BitTable — the shared walking layer of
// the tiled execution core.
//
// Every consumer of the block decomposition (block-wise fake-quant, the
// OBA logits kernel, the integer-exact path, the fused streaming executor)
// used to hand-roll the same `t / block_cols(), t % block_cols()` loop and
// re-derive extents and bitwidths inline.  TileVisitor centralizes that:
// it resolves a flat tile index into a TileRef carrying (br, bc, extent,
// bits) and offers serial, parallel, and reducing sweeps.
//
// Parallel sweeps run on common/thread_pool with a FIXED grain, so the
// chunk layout — and with it every ordered reduction — depends only on the
// tile count, never on the thread count (the repo's chunk-purity rule).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "common/arena.hpp"
#include "common/thread_pool.hpp"
#include "quant/bittable.hpp"

namespace paro {

/// One tile of a BlockGrid, annotated with its bitwidth: the BitTable's
/// entry when the visitor wraps a table, a uniform default otherwise.
struct TileRef {
  std::size_t index = 0;     ///< flat row-major tile index
  std::size_t br = 0;        ///< block row
  std::size_t bc = 0;        ///< block column
  BlockGrid::Extent extent{0, 0, 0, 0};
  int bits = 8;

  /// A tile the dispatcher would hand to the PE array (bits > 0).
  bool live() const { return bits != 0; }
};

class TileVisitor {
 public:
  /// Tiles per parallel chunk.  Fixed (not a function of the thread count)
  /// so chunk layout is identical at any pool width.
  static constexpr std::size_t kDefaultGrain = 16;

  /// Visit `grid` with every tile at `uniform_bits`.
  explicit TileVisitor(const BlockGrid& grid, int uniform_bits = 8)
      : grid_(grid), uniform_bits_(uniform_bits) {}

  /// Visit `table.grid()` with per-tile bitwidths from `table`.  The table
  /// is borrowed: it must outlive the visitor.
  explicit TileVisitor(const BitTable& table)
      : grid_(table.grid()), table_(&table) {}

  const BlockGrid& grid() const { return grid_; }
  std::size_t num_tiles() const { return grid_.num_blocks(); }
  bool has_table() const { return table_ != nullptr; }

  /// Resolve a flat tile index into its TileRef.
  TileRef tile(std::size_t flat) const {
    TileRef t;
    t.index = flat;
    t.br = flat / grid_.block_cols();
    t.bc = flat % grid_.block_cols();
    t.extent = grid_.extent(t.br, t.bc);
    t.bits = table_ != nullptr ? table_->bits_flat(flat) : uniform_bits_;
    return t;
  }

  /// Serial sweep over every tile in flat (row-major) order.
  template <typename Fn>
  void for_each_tile(Fn&& fn) const {
    for (std::size_t t = 0; t < grid_.num_blocks(); ++t) {
      fn(tile(t));
    }
  }

  /// Serial sweep over tiles the dispatcher keeps (bits > 0).
  template <typename Fn>
  void for_each_live_tile(Fn&& fn) const {
    for (std::size_t t = 0; t < grid_.num_blocks(); ++t) {
      const TileRef ref = tile(t);
      if (ref.live()) fn(ref);
    }
  }

  /// Serial sweep over the tiles of one block row, bc ascending.
  template <typename Fn>
  void for_each_tile_in_row(std::size_t br, Fn&& fn) const {
    const std::size_t base = br * grid_.block_cols();
    for (std::size_t bc = 0; bc < grid_.block_cols(); ++bc) {
      fn(tile(base + bc));
    }
  }

  /// Parallel sweep: fn(tile) for every tile, fanned out on the global
  /// pool in chunks of `grain` tiles.  Tiles are disjoint regions, so
  /// callers writing only inside their tile race on nothing.
  template <typename Fn>
  void parallel_for_each_tile(Fn&& fn,
                              std::size_t grain = kDefaultGrain) const {
    global_pool().for_chunks(
        0, grid_.num_blocks(), grain,
        [&](std::size_t t0, std::size_t t1, std::size_t /*chunk*/) {
          for (std::size_t t = t0; t < t1; ++t) fn(tile(t));
        });
  }

  /// Parallel sweep with per-chunk scratch state: `make_state()` runs once
  /// per chunk and its result is passed (by reference) to every tile of
  /// that chunk — the hoisted-scratch idiom of the per-tile quant loops,
  /// without a hand-rolled chunk loop.  State must not leak information
  /// between tiles that affects results (scratch buffers only).
  template <typename MakeState, typename Fn>
  void parallel_for_each_tile_with(MakeState&& make_state, Fn&& fn,
                                   std::size_t grain = kDefaultGrain) const {
    global_pool().for_chunks(
        0, grid_.num_blocks(), grain,
        [&](std::size_t t0, std::size_t t1, std::size_t /*chunk*/) {
          auto state = make_state();
          for (std::size_t t = t0; t < t1; ++t) fn(tile(t), state);
        });
  }

  /// Parallel sweep whose scratch comes from per-thread arena shards
  /// instead of per-chunk vectors: the calling worker's shard is reset
  /// before each tile and handed to `fn(tile, arena)`, which carves spans
  /// valid until the next tile.  Spans are scratch — fully written before
  /// they are read, with no result depending on their addresses — so
  /// WHICH shard serves a tile is scheduling-dependent but WHAT it
  /// computes is not (the same argument as the pool's chunk purity).
  /// Steady-state sweeps over a warmed arena touch the heap zero times.
  template <typename Fn>
  void parallel_for_each_tile_sharded(ShardedArena& arena, Fn&& fn,
                                      std::size_t grain = kDefaultGrain) const {
    global_pool().for_chunks(
        0, grid_.num_blocks(), grain,
        [&](std::size_t t0, std::size_t t1, std::size_t /*chunk*/) {
          Arena& local = arena.local();
          for (std::size_t t = t0; t < t1; ++t) {
            local.reset();
            fn(tile(t), local);
          }
        });
  }

  /// Parallel sweep over live tiles only (dead tiles are filtered inside
  /// the chunk, so the chunk layout still covers all flat indices and
  /// stays pure in the tile count).
  template <typename Fn>
  void parallel_for_each_live_tile(Fn&& fn,
                                   std::size_t grain = kDefaultGrain) const {
    parallel_for_each_tile(
        [&](const TileRef& t) {
          if (t.live()) fn(t);
        },
        grain);
  }

  /// Deterministic reduction over tiles: `tile_fn(tile)` maps each tile to
  /// a value, chunk partials accumulate with `combine` in flat-tile order,
  /// and chunk partials fold left-to-right in chunk order (thread_pool's
  /// ordered_reduce) — one fixed FP association at any thread count.
  template <typename T, typename TileFn, typename CombineFn>
  T ordered_reduce_tiles(T init, TileFn&& tile_fn, CombineFn&& combine,
                         std::size_t grain = kDefaultGrain) const {
    return global_pool().ordered_reduce(
        0, grid_.num_blocks(), grain, init,
        [&](std::size_t t0, std::size_t t1) {
          T partial = init;
          for (std::size_t t = t0; t < t1; ++t) {
            partial = combine(partial, tile_fn(tile(t)));
          }
          return partial;
        },
        [&](T a, T b) { return combine(std::move(a), std::move(b)); });
  }

  /// Count of live (bits > 0) tiles.
  std::size_t count_live() const;

  /// Tile counts per bitwidth class, indexed like kBitChoices.
  std::vector<std::size_t> counts_per_bits() const;

 private:
  BlockGrid grid_;
  const BitTable* table_ = nullptr;  // borrowed, nullable
  int uniform_bits_ = 8;
};

}  // namespace paro
