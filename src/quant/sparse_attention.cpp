#include "quant/sparse_attention.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "quant/granularity.hpp"
#include "tensor/ops.hpp"

namespace paro {

namespace {
float default_scale(const MatF& q, float scale) {
  return scale > 0.0F ? scale
                      : 1.0F / std::sqrt(static_cast<float>(q.cols()));
}
}  // namespace

double SparseMask::density() const {
  if (keep.size() == 0) return 0.0;
  std::size_t kept = 0;
  for (const auto v : keep.flat()) {
    kept += v != 0 ? 1 : 0;
  }
  return static_cast<double>(kept) / static_cast<double>(keep.size());
}

std::vector<std::size_t> SparseMask::row_nnz() const {
  std::vector<std::size_t> nnz(keep.rows(), 0);
  for (std::size_t r = 0; r < keep.rows(); ++r) {
    const auto row = keep.row(r);
    nnz[r] = static_cast<std::size_t>(
        std::count_if(row.begin(), row.end(), [](auto v) { return v != 0; }));
  }
  return nnz;
}

double SparseMask::row_imbalance() const {
  const auto nnz = row_nnz();
  if (nnz.empty()) return 1.0;
  const auto total = std::accumulate(nnz.begin(), nnz.end(), std::size_t{0});
  const double mean =
      static_cast<double>(total) / static_cast<double>(nnz.size());
  if (mean == 0.0) return 1.0;
  const auto maxv = *std::max_element(nnz.begin(), nnz.end());
  return static_cast<double>(maxv) / mean;
}

SparseMask sanger_predict_mask(const MatF& q, const MatF& k, float threshold,
                               int pred_bits, float scale) {
  PARO_CHECK_MSG(q.cols() == k.cols(), "q/k head_dim mismatch");
  const QuantizedI8 qq = quantize_rows_i8(q, pred_bits);
  const QuantizedI8 kq = quantize_rows_i8(k, pred_bits);
  const MatI32 acc = matmul_nt_i8(qq.codes, kq.codes);
  MatF logits(q.rows(), k.rows());
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    const float si = qq.row_params[i].scale;
    const auto arow = acc.row(i);
    auto lrow = logits.row(i);
    for (std::size_t j = 0; j < lrow.size(); ++j) {
      lrow[j] = static_cast<float>(arow[j]) * si * kq.row_params[j].scale;
    }
  }
  const MatF predicted = softmax_rows(logits, default_scale(q, scale));
  SparseMask mask;
  mask.keep = Matrix<std::uint8_t>(predicted.rows(), predicted.cols(), 0);
  for (std::size_t i = 0; i < predicted.rows(); ++i) {
    const auto prow = predicted.row(i);
    auto mrow = mask.keep.row(i);
    for (std::size_t j = 0; j < prow.size(); ++j) {
      mrow[j] = prow[j] >= threshold ? 1 : 0;
    }
  }
  return mask;
}

MatF apply_mask(const MatF& attn, const SparseMask& mask, bool renormalize) {
  PARO_CHECK_MSG(attn.rows() == mask.keep.rows() &&
                     attn.cols() == mask.keep.cols(),
                 "mask shape mismatch");
  MatF out = attn;
  for (std::size_t i = 0; i < out.rows(); ++i) {
    auto row = out.row(i);
    const auto mrow = mask.keep.row(i);
    double kept_sum = 0.0;
    std::size_t argmax = 0;
    for (std::size_t j = 0; j < row.size(); ++j) {
      if (attn(i, j) > attn(i, argmax)) argmax = j;  // original values
      if (mrow[j] != 0) {
        kept_sum += row[j];
      } else {
        row[j] = 0.0F;
      }
    }
    if (renormalize) {
      if (kept_sum > 0.0) {
        const float inv = static_cast<float>(1.0 / kept_sum);
        for (float& v : row) v *= inv;
      } else {
        // A row with no survivors keeps its strongest entry so AttnV still
        // produces a convex combination.
        row[argmax] = 1.0F;
      }
    }
  }
  return out;
}

MatF sanger_attention(const MatF& q, const MatF& k, const MatF& v,
                      float threshold, int pred_bits, float scale) {
  const SparseMask mask = sanger_predict_mask(q, k, threshold, pred_bits, scale);
  const MatF exact = softmax_rows(matmul_nt(q, k), default_scale(q, scale));
  const MatF pruned = apply_mask(exact, mask, /*renormalize=*/true);
  return matmul(pruned, v);
}

SparseMask vitcod_polarize_mask(const MatF& attn, float dense_col_fraction,
                                float threshold) {
  PARO_CHECK_MSG(dense_col_fraction >= 0.0F && dense_col_fraction <= 1.0F,
                 "dense_col_fraction must be in [0,1]");
  // Rank columns by total mass.
  std::vector<double> col_mass(attn.cols(), 0.0);
  for (std::size_t r = 0; r < attn.rows(); ++r) {
    const auto row = attn.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) {
      col_mass[c] += row[c];
    }
  }
  std::vector<std::size_t> order(attn.cols());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return col_mass[a] > col_mass[b];
  });
  const auto dense_count = static_cast<std::size_t>(
      std::lround(dense_col_fraction * static_cast<float>(attn.cols())));
  std::vector<std::uint8_t> is_dense(attn.cols(), 0);
  for (std::size_t i = 0; i < dense_count; ++i) {
    is_dense[order[i]] = 1;
  }
  SparseMask mask;
  mask.keep = Matrix<std::uint8_t>(attn.rows(), attn.cols(), 0);
  for (std::size_t r = 0; r < attn.rows(); ++r) {
    const auto row = attn.row(r);
    auto mrow = mask.keep.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) {
      mrow[c] = (is_dense[c] != 0 || row[c] >= threshold) ? 1 : 0;
    }
  }
  return mask;
}

VitcodSplit vitcod_split_stats(const MatF& attn, float dense_col_fraction,
                               float threshold) {
  const SparseMask mask = vitcod_polarize_mask(attn, dense_col_fraction, threshold);
  const auto dense_cols = static_cast<std::size_t>(std::lround(
      dense_col_fraction * static_cast<float>(attn.cols())));
  VitcodSplit split;
  split.dense_fraction =
      static_cast<double>(dense_cols) / static_cast<double>(attn.cols());
  const double overall = mask.density();
  split.overall_density = overall;
  const double sparse_entries =
      static_cast<double>(attn.size()) * (1.0 - split.dense_fraction);
  const double kept_total = overall * static_cast<double>(attn.size());
  const double kept_dense =
      split.dense_fraction * static_cast<double>(attn.size());
  split.sparse_density =
      sparse_entries > 0.0
          ? std::max(0.0, (kept_total - kept_dense) / sparse_entries)
          : 0.0;
  return split;
}

PackStats sanger_pack_and_split(const SparseMask& mask,
                                std::size_t bucket_width) {
  PARO_CHECK_MSG(bucket_width > 0, "bucket width must be positive");
  PackStats stats;
  stats.bucket_width = bucket_width;
  const auto nnz = mask.row_nnz();
  for (const std::size_t n : nnz) {
    stats.kept_entries += n;
    stats.buckets += (n + bucket_width - 1) / bucket_width;
  }
  if (stats.buckets > 0) {
    stats.utilization =
        static_cast<double>(stats.kept_entries) /
        (static_cast<double>(stats.buckets) *
         static_cast<double>(bucket_width));
  }
  if (!nnz.empty()) {
    stats.avg_segments_per_row =
        static_cast<double>(stats.buckets) / static_cast<double>(nnz.size());
  }
  return stats;
}

float calibrate_threshold_for_density(const MatF& attn,
                                      double target_density) {
  PARO_CHECK_MSG(target_density > 0.0 && target_density <= 1.0,
                 "target density must be in (0,1]");
  // The density of {a >= t} is monotone non-increasing in t: bisect.
  float lo = 0.0F, hi = 1.0F;
  for (int iter = 0; iter < 48; ++iter) {
    const float mid = 0.5F * (lo + hi);
    std::size_t kept = 0;
    for (const float v : attn.flat()) {
      kept += v >= mid ? 1 : 0;
    }
    const double density =
        static_cast<double>(kept) / static_cast<double>(attn.size());
    if (density > target_density) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return 0.5F * (lo + hi);
}

}  // namespace paro
