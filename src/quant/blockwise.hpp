// Block-wise quantization of attention maps (paper §III-A).
//
// Instead of one (s, z) per row — where diagonal "outliers" inflate the
// scale and crush the rest of the row to zero — each block×block tile gets
// its own parameters.  After the PARO token reorder the large values
// cluster into few tiles, so most tiles see a small dynamic range.
#pragma once

#include <vector>

#include "quant/affine.hpp"
#include "quant/bittable.hpp"
#include "tensor/matrix.hpp"

namespace paro {

/// Fake-quantize `attn` tile-by-tile with a uniform bitwidth.
/// Attention maps are non-negative (post-softmax), so the asymmetric
/// unsigned quantizer is used.
MatF fake_quant_blockwise(const MatF& attn, std::size_t block, int bits);

/// Fake-quantize with per-tile bitwidths from `table` (0 bits zeroes the
/// tile — the hardware skips it entirely).
MatF fake_quant_blockwise_mixed(const MatF& attn, const BitTable& table);

/// Per-tile data statistics feeding the mixed-precision sensitivity metric:
/// sum of values ("block importance") and the quantization error achieved
/// at each candidate bitwidth ("quantization difficulty").
struct BlockQuantStats {
  std::size_t block_row = 0;
  std::size_t block_col = 0;
  std::size_t count = 0;          ///< elements in the tile
  double value_sum = 0.0;         ///< Σ x  over the tile (x ≥ 0 post-softmax)
  double abs_mean = 0.0;          ///< mean |x|
  /// L2 quantization error ‖x − x_q‖₂ at each bitwidth in kBitChoices order
  /// (index via bit_choice_index).
  double error_l2[kNumBitChoices] = {0, 0, 0, 0};
};

/// Collect BlockQuantStats for every tile of `attn`.
std::vector<BlockQuantStats> collect_block_stats(const MatF& attn,
                                                 std::size_t block);

/// Total squared error of quantizing `attn` block-wise at `bits`
/// (Σ over tiles of the per-tile squared error).
double blockwise_quant_error_sq(const MatF& attn, std::size_t block, int bits);

/// Per-tile mean value map (block_rows × block_cols) — the "mass" picture
/// used by the Fig. 8 pattern visualisation and the block-diagonality score.
MatF block_mass(const MatF& attn, std::size_t block);

/// Block-diagonality score in [0, 1]: fraction of total mass that lies in
/// tiles on the block diagonal.  Requires a square map.
double block_diagonality(const MatF& attn, std::size_t block);

}  // namespace paro
