// Affine (uniform) quantization primitives (paper §II-B).
//
//   x ≈ x̂ = s · (x_int − z),   x_int = clamp(⌊x/s⌉ + z, 0, 2^b − 1)
//
// Dynamic min–max calibration per group: s = (max(x) − min(x)) / (2^b − 1),
// z = ⌊−min(x)/s⌉.  A symmetric signed variant (used for Q/K/V/weights,
// where values straddle zero) maps to [−(2^(b−1)−1), 2^(b−1)−1] with z = 0.
#pragma once

#include <cstdint>
#include <span>

namespace paro {

/// Quantization parameters for one group.
struct QuantParams {
  float scale = 1.0F;       ///< step size s (always > 0)
  std::int32_t zero_point = 0;  ///< z; 0 for symmetric mode
  int bits = 8;             ///< bitwidth b
  bool symmetric = false;   ///< signed-symmetric vs unsigned-asymmetric
};

/// Min–max calibration of an asymmetric unsigned quantizer over `values`.
/// Degenerate groups (max == min) get a tiny positive scale so round-trip
/// reproduces the constant exactly.
QuantParams calibrate_minmax(std::span<const float> values, int bits);

/// Min–max calibration of a symmetric signed quantizer (z = 0,
/// s = max|x| / (2^(b−1) − 1)).
QuantParams calibrate_symmetric(std::span<const float> values, int bits);

/// Percentile-clipped calibration (beyond-paper ablation): the range is
/// set to the [clip, 1−clip] quantiles instead of [min, max], trading
/// clipping error on rare outliers for resolution on the bulk.
/// `clip` ∈ [0, 0.5); clip = 0 degenerates to calibrate_minmax.
QuantParams calibrate_percentile(std::span<const float> values, int bits,
                                 double clip);

/// Quantize one value (round-to-nearest, clamped to the b-bit range).
std::int32_t quantize_value(float x, const QuantParams& p);

/// Dequantize one integer code.
float dequantize_value(std::int32_t q, const QuantParams& p);

/// Quantize a span into integer codes.
void quantize_span(std::span<const float> in, std::span<std::int32_t> out,
                   const QuantParams& p);

/// Fake-quantize (quantize + dequantize) a span in one pass.  `in` and
/// `out` may alias.
void fake_quant_span(std::span<const float> in, std::span<float> out,
                     const QuantParams& p);

/// Sum of squared quantization errors of `values` under params `p`.
double quant_error_sq(std::span<const float> values, const QuantParams& p);

/// Convenience: calibrate + fake-quantize a group in place and return the
/// parameters used.  `bits == 0` zeroes the group (PARO's "skip" bitwidth);
/// `bits >= 16` is treated as lossless passthrough.
QuantParams fake_quant_group(std::span<float> values, int bits,
                             bool symmetric);

}  // namespace paro
