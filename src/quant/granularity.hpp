// Quantization granularities (paper §II-B):
//   * per-tensor  — one (s, z) for the whole matrix
//   * per-row     — "per-token" for activations / attention-map rows
//   * per-column  — "per-dimension" for weights and V
//
// All functions fake-quantize (quantize + dequantize) so downstream FP math
// sees exactly the values the integer pipeline would produce.
#pragma once

#include <vector>

#include "quant/affine.hpp"
#include "tensor/matrix.hpp"

namespace paro {

enum class Granularity { kPerTensor, kPerRow, kPerColumn };

/// Fake-quantize `m` at the given granularity and bitwidth; returns the
/// quantized copy and (via out-param, if non-null) the group parameters in
/// group order (1 for per-tensor, rows for per-row, cols for per-column).
MatF fake_quant_matrix(const MatF& m, Granularity granularity, int bits,
                       bool symmetric,
                       std::vector<QuantParams>* params_out = nullptr);

/// Integer-quantize `m` to int8 codes with symmetric per-row calibration.
/// This is the representation the PE array consumes for Q/K/V.
struct QuantizedI8 {
  MatI8 codes;
  std::vector<QuantParams> row_params;  ///< one per row
};
QuantizedI8 quantize_rows_i8(const MatF& m, int bits = 8);

/// Dequantize a QuantizedI8 back to float (for checking / reference paths).
MatF dequantize_rows(const QuantizedI8& q);

}  // namespace paro
