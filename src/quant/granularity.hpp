// Quantization granularities (paper §II-B):
//   * per-tensor  — one (s, z) for the whole matrix
//   * per-row     — "per-token" for activations / attention-map rows
//   * per-column  — "per-dimension" for weights and V
//
// All functions fake-quantize (quantize + dequantize) so downstream FP math
// sees exactly the values the integer pipeline would produce.
#pragma once

#include <vector>

#include "quant/affine.hpp"
#include "tensor/matrix.hpp"

namespace paro {

enum class Granularity { kPerTensor, kPerRow, kPerColumn };

/// Fake-quantize `m` at the given granularity and bitwidth; returns the
/// quantized copy and (via out-param, if non-null) the group parameters in
/// group order (1 for per-tensor, rows for per-row, cols for per-column).
MatF fake_quant_matrix(const MatF& m, Granularity granularity, int bits,
                       bool symmetric,
                       std::vector<QuantParams>* params_out = nullptr);

/// Integer-quantize `m` to int8 codes with symmetric per-row calibration.
/// This is the representation the PE array consumes for Q/K/V.
struct QuantizedI8 {
  MatI8 codes;
  std::vector<QuantParams> row_params;  ///< one per row
};
QuantizedI8 quantize_rows_i8(const MatF& m, int bits = 8);

/// Allocation-free twin of quantize_rows_i8: codes/params storage in `out`
/// is resized (retained capacity is reused — the session-workspace idiom)
/// and refilled.  Bitwise identical to quantize_rows_i8.
void quantize_rows_i8_into(const MatF& m, QuantizedI8& out, int bits = 8);

/// Row-range variant: quantizes rows [r0, r1) of `m` into out.codes rows
/// [0, r1-r0).  Calibration is per-row, so each row's codes and params are
/// bitwise identical to the whole-matrix call — this is what lets the
/// packed-resident K path stage through a chunk-sized buffer instead of a
/// full widened copy.
void quantize_rows_i8_range_into(const MatF& m, std::size_t r0, std::size_t r1,
                                 QuantizedI8& out, int bits = 8);

/// Allocation-free per-column symmetric fake-quant (the executor's V-path):
/// equivalent to fake_quant_matrix(m, kPerColumn, bits, /*symmetric=*/true)
/// bit for bit, but the transpose scratch and the output live in
/// caller-retained storage.  `params` receives the per-column parameters.
void fake_quant_per_column_into(const MatF& m, int bits, bool symmetric,
                                MatF& out, MatF& transpose_scratch,
                                std::vector<QuantParams>& params);

/// Dequantize a QuantizedI8 back to float (for checking / reference paths).
MatF dequantize_rows(const QuantizedI8& q);

}  // namespace paro
