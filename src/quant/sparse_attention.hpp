// Algorithm-side models of the sparse-attention baselines (Sanger, ViTCoD).
//
// Both baselines prune the attention map rather than quantize it:
//  * Sanger (MICRO'21) predicts the attention map with low-bit (4-bit) Q/K,
//    thresholds the predicted softmax scores into a binary mask, and then
//    computes only the surviving entries at full precision ("pack & split"
//    load balancing happens in hardware, modelled in src/baselines/).
//  * ViTCoD (HPCA'23) polarizes the map offline into a "denser" region
//    (columns attending globally, kept dense) and a "sparser" remainder
//    (kept only above threshold), trading accuracy for regularity.
//
// These functions produce (a) the pruned map used in the Table-I quality
// comparison and (b) mask statistics that the cycle-level baseline
// accelerator models consume.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"

namespace paro {

/// Binary attention mask with bookkeeping.
struct SparseMask {
  Matrix<std::uint8_t> keep;  ///< 1 = compute this entry

  double density() const;                   ///< kept fraction of entries
  std::vector<std::size_t> row_nnz() const; ///< kept entries per row
  /// Load-imbalance of rows: max(row_nnz) / mean(row_nnz); 1.0 = balanced.
  double row_imbalance() const;
};

/// Sanger's prediction pass: quantize Q/K to `pred_bits`, softmax the
/// predicted logits, keep entries with predicted score >= threshold.
SparseMask sanger_predict_mask(const MatF& q, const MatF& k, float threshold,
                               int pred_bits = 4, float scale = -1.0F);

/// Zero out masked entries of a softmax map.  If `renormalize`, surviving
/// entries in each row are rescaled to sum to 1 (rows losing all entries
/// keep their max entry).
MatF apply_mask(const MatF& attn, const SparseMask& mask, bool renormalize);

/// Full Sanger quality path: predict mask, compute exact attention on the
/// surviving entries, AttnV.
MatF sanger_attention(const MatF& q, const MatF& k, const MatF& v,
                      float threshold, int pred_bits = 4, float scale = -1.0F);

/// ViTCoD polarization: mark the `dense_col_fraction` columns with the most
/// total mass as globally dense; in the remaining ("sparser") region keep
/// entries >= threshold.
SparseMask vitcod_polarize_mask(const MatF& attn, float dense_col_fraction,
                                float threshold);

/// ViTCoD's split sizes for the cycle model: fraction of entries in the
/// dense region and density of the sparser region.
struct VitcodSplit {
  double dense_fraction = 0.0;   ///< entries in dense columns / total
  double sparse_density = 0.0;   ///< kept / total in the sparser region
  double overall_density = 0.0;  ///< kept / total over the whole map
};
VitcodSplit vitcod_split_stats(const MatF& attn, float dense_col_fraction,
                               float threshold);

/// Calibrate a threshold such that the masked map keeps ≈ `target_density`
/// of the entries (bisection over thresholds on the given map).
float calibrate_threshold_for_density(const MatF& attn, double target_density);

/// Sanger's "pack & split" bucketization (MICRO'21 §4): each row's
/// surviving entries are split into segments of at most `bucket_width`
/// columns; every segment occupies one PE bucket, and a row's last
/// (partial) segment pads its bucket.  The achieved utilization is what
/// the Sanger cycle model's `pack_efficiency` abstracts.
struct PackStats {
  std::size_t bucket_width = 0;
  std::size_t buckets = 0;         ///< total segments across all rows
  std::size_t kept_entries = 0;
  double utilization = 0.0;        ///< kept / (buckets × width)
  double avg_segments_per_row = 0.0;
};
PackStats sanger_pack_and_split(const SparseMask& mask,
                                std::size_t bucket_width);

}  // namespace paro
