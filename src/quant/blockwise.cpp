#include "quant/blockwise.hpp"

#include <cmath>

#include "common/thread_pool.hpp"

namespace paro {

namespace {

/// Tiles per parallel chunk for the per-tile sweeps below.  Fixed (not a
/// function of the thread count) so chunk layout — and with it every
/// ordered reduction — is identical at any pool width.
constexpr std::size_t kTileGrain = 16;

/// Copy a tile into a scratch vector.
void gather_tile(const MatF& m, const BlockGrid::Extent& e,
                 std::vector<float>& scratch) {
  scratch.clear();
  scratch.reserve(e.count());
  for (std::size_t r = e.r0; r < e.r1; ++r) {
    const auto row = m.row(r);
    scratch.insert(scratch.end(), row.begin() + static_cast<std::ptrdiff_t>(e.c0),
                   row.begin() + static_cast<std::ptrdiff_t>(e.c1));
  }
}

void scatter_tile(MatF& m, const BlockGrid::Extent& e,
                  const std::vector<float>& scratch) {
  std::size_t k = 0;
  for (std::size_t r = e.r0; r < e.r1; ++r) {
    auto row = m.row(r);
    for (std::size_t c = e.c0; c < e.c1; ++c) {
      row[c] = scratch[k++];
    }
  }
}

}  // namespace

MatF fake_quant_blockwise(const MatF& attn, std::size_t block, int bits) {
  const BlockGrid grid(attn.rows(), attn.cols(), block);
  MatF out = attn;
  // Tiles are disjoint regions of `out`, so quantizing them in parallel
  // writes disjoint elements.
  global_pool().for_chunks(
      0, grid.num_blocks(), kTileGrain,
      [&](std::size_t t0, std::size_t t1, std::size_t /*chunk*/) {
        std::vector<float> tile;
        for (std::size_t t = t0; t < t1; ++t) {
          const auto e = grid.extent(t / grid.block_cols(),
                                     t % grid.block_cols());
          gather_tile(out, e, tile);
          fake_quant_group(tile, bits, /*symmetric=*/false);
          scatter_tile(out, e, tile);
        }
      });
  return out;
}

MatF fake_quant_blockwise_mixed(const MatF& attn, const BitTable& table) {
  const BlockGrid& grid = table.grid();
  PARO_CHECK_MSG(grid.rows() == attn.rows() && grid.cols() == attn.cols(),
                 "BitTable grid does not match attention map shape");
  MatF out = attn;
  global_pool().for_chunks(
      0, grid.num_blocks(), kTileGrain,
      [&](std::size_t t0, std::size_t t1, std::size_t /*chunk*/) {
        std::vector<float> tile;
        for (std::size_t t = t0; t < t1; ++t) {
          const std::size_t br = t / grid.block_cols();
          const std::size_t bc = t % grid.block_cols();
          const auto e = grid.extent(br, bc);
          gather_tile(out, e, tile);
          fake_quant_group(tile, table.bits_at(br, bc), /*symmetric=*/false);
          scatter_tile(out, e, tile);
        }
      });
  return out;
}

std::vector<BlockQuantStats> collect_block_stats(const MatF& attn,
                                                 std::size_t block) {
  const BlockGrid grid(attn.rows(), attn.cols(), block);
  std::vector<BlockQuantStats> stats(grid.num_blocks());
  // The sensitivity pass scores every tile at every candidate bitwidth —
  // the dominant offline cost after plan selection.  Each tile fills its
  // own slot, so row-major tile order is preserved at any thread count.
  global_pool().for_chunks(
      0, grid.num_blocks(), kTileGrain,
      [&](std::size_t t0, std::size_t t1, std::size_t /*chunk*/) {
        std::vector<float> tile;
        for (std::size_t t = t0; t < t1; ++t) {
          const std::size_t br = t / grid.block_cols();
          const std::size_t bc = t % grid.block_cols();
          gather_tile(attn, grid.extent(br, bc), tile);
          BlockQuantStats s;
          s.block_row = br;
          s.block_col = bc;
          s.count = tile.size();
          for (const float v : tile) {
            s.value_sum += v;
            s.abs_mean += std::abs(v);
          }
          s.abs_mean /= static_cast<double>(tile.size());
          for (int bi = 0; bi < kNumBitChoices; ++bi) {
            const int bits = kBitChoices[bi];
            if (bits == 0) {
              // Skipping the tile leaves the full signal as error.
              double sq = 0.0;
              for (const float v : tile) sq += static_cast<double>(v) * v;
              s.error_l2[bi] = std::sqrt(sq);
            } else {
              const QuantParams p = calibrate_minmax(tile, bits);
              s.error_l2[bi] = std::sqrt(quant_error_sq(tile, p));
            }
          }
          stats[t] = s;
        }
      });
  return stats;
}

double blockwise_quant_error_sq(const MatF& attn, std::size_t block,
                                int bits) {
  const BlockGrid grid(attn.rows(), attn.cols(), block);
  // Chunk partials are combined in chunk order, so the FP sum has one fixed
  // association regardless of thread count.
  return global_pool().ordered_reduce(
      0, grid.num_blocks(), kTileGrain, 0.0,
      [&](std::size_t t0, std::size_t t1) {
        std::vector<float> tile;
        double partial = 0.0;
        for (std::size_t t = t0; t < t1; ++t) {
          gather_tile(attn,
                      grid.extent(t / grid.block_cols(), t % grid.block_cols()),
                      tile);
          if (bits == 0) {
            for (const float v : tile) partial += static_cast<double>(v) * v;
          } else {
            const QuantParams p = calibrate_minmax(tile, bits);
            partial += quant_error_sq(tile, p);
          }
        }
        return partial;
      },
      [](double a, double b) { return a + b; });
}

MatF block_mass(const MatF& attn, std::size_t block) {
  const BlockGrid grid(attn.rows(), attn.cols(), block);
  MatF mass(grid.block_rows(), grid.block_cols(), 0.0F);
  for (std::size_t br = 0; br < grid.block_rows(); ++br) {
    for (std::size_t bc = 0; bc < grid.block_cols(); ++bc) {
      const auto e = grid.extent(br, bc);
      double sum = 0.0;
      for (std::size_t r = e.r0; r < e.r1; ++r) {
        const auto row = attn.row(r);
        for (std::size_t c = e.c0; c < e.c1; ++c) {
          sum += row[c];
        }
      }
      mass(br, bc) = static_cast<float>(sum / static_cast<double>(e.count()));
    }
  }
  return mass;
}

double block_diagonality(const MatF& attn, std::size_t block) {
  PARO_CHECK_MSG(attn.rows() == attn.cols(),
                 "block_diagonality needs a square map");
  const MatF mass = block_mass(attn, block);
  double diag = 0.0, total = 0.0;
  for (std::size_t br = 0; br < mass.rows(); ++br) {
    for (std::size_t bc = 0; bc < mass.cols(); ++bc) {
      total += mass(br, bc);
      if (br == bc) diag += mass(br, bc);
    }
  }
  return total == 0.0 ? 0.0 : diag / total;
}

}  // namespace paro
