#include "quant/blockwise.hpp"

#include <cmath>

namespace paro {

namespace {

/// Copy a tile into a scratch vector.
void gather_tile(const MatF& m, const BlockGrid::Extent& e,
                 std::vector<float>& scratch) {
  scratch.clear();
  scratch.reserve(e.count());
  for (std::size_t r = e.r0; r < e.r1; ++r) {
    const auto row = m.row(r);
    scratch.insert(scratch.end(), row.begin() + static_cast<std::ptrdiff_t>(e.c0),
                   row.begin() + static_cast<std::ptrdiff_t>(e.c1));
  }
}

void scatter_tile(MatF& m, const BlockGrid::Extent& e,
                  const std::vector<float>& scratch) {
  std::size_t k = 0;
  for (std::size_t r = e.r0; r < e.r1; ++r) {
    auto row = m.row(r);
    for (std::size_t c = e.c0; c < e.c1; ++c) {
      row[c] = scratch[k++];
    }
  }
}

}  // namespace

MatF fake_quant_blockwise(const MatF& attn, std::size_t block, int bits) {
  const BlockGrid grid(attn.rows(), attn.cols(), block);
  MatF out = attn;
  std::vector<float> tile;
  for (std::size_t br = 0; br < grid.block_rows(); ++br) {
    for (std::size_t bc = 0; bc < grid.block_cols(); ++bc) {
      const auto e = grid.extent(br, bc);
      gather_tile(out, e, tile);
      fake_quant_group(tile, bits, /*symmetric=*/false);
      scatter_tile(out, e, tile);
    }
  }
  return out;
}

MatF fake_quant_blockwise_mixed(const MatF& attn, const BitTable& table) {
  const BlockGrid& grid = table.grid();
  PARO_CHECK_MSG(grid.rows() == attn.rows() && grid.cols() == attn.cols(),
                 "BitTable grid does not match attention map shape");
  MatF out = attn;
  std::vector<float> tile;
  for (std::size_t br = 0; br < grid.block_rows(); ++br) {
    for (std::size_t bc = 0; bc < grid.block_cols(); ++bc) {
      const auto e = grid.extent(br, bc);
      gather_tile(out, e, tile);
      fake_quant_group(tile, table.bits_at(br, bc), /*symmetric=*/false);
      scatter_tile(out, e, tile);
    }
  }
  return out;
}

std::vector<BlockQuantStats> collect_block_stats(const MatF& attn,
                                                 std::size_t block) {
  const BlockGrid grid(attn.rows(), attn.cols(), block);
  std::vector<BlockQuantStats> stats;
  stats.reserve(grid.num_blocks());
  std::vector<float> tile;
  for (std::size_t br = 0; br < grid.block_rows(); ++br) {
    for (std::size_t bc = 0; bc < grid.block_cols(); ++bc) {
      const auto e = grid.extent(br, bc);
      gather_tile(attn, e, tile);
      BlockQuantStats s;
      s.block_row = br;
      s.block_col = bc;
      s.count = tile.size();
      for (const float v : tile) {
        s.value_sum += v;
        s.abs_mean += std::abs(v);
      }
      s.abs_mean /= static_cast<double>(tile.size());
      for (int bi = 0; bi < kNumBitChoices; ++bi) {
        const int bits = kBitChoices[bi];
        if (bits == 0) {
          // Skipping the tile leaves the full signal as error.
          double sq = 0.0;
          for (const float v : tile) sq += static_cast<double>(v) * v;
          s.error_l2[bi] = std::sqrt(sq);
        } else {
          const QuantParams p = calibrate_minmax(tile, bits);
          s.error_l2[bi] = std::sqrt(quant_error_sq(tile, p));
        }
      }
      stats.push_back(s);
    }
  }
  return stats;
}

double blockwise_quant_error_sq(const MatF& attn, std::size_t block,
                                int bits) {
  const BlockGrid grid(attn.rows(), attn.cols(), block);
  std::vector<float> tile;
  double total = 0.0;
  for (std::size_t br = 0; br < grid.block_rows(); ++br) {
    for (std::size_t bc = 0; bc < grid.block_cols(); ++bc) {
      gather_tile(attn, grid.extent(br, bc), tile);
      if (bits == 0) {
        for (const float v : tile) total += static_cast<double>(v) * v;
      } else {
        const QuantParams p = calibrate_minmax(tile, bits);
        total += quant_error_sq(tile, p);
      }
    }
  }
  return total;
}

MatF block_mass(const MatF& attn, std::size_t block) {
  const BlockGrid grid(attn.rows(), attn.cols(), block);
  MatF mass(grid.block_rows(), grid.block_cols(), 0.0F);
  for (std::size_t br = 0; br < grid.block_rows(); ++br) {
    for (std::size_t bc = 0; bc < grid.block_cols(); ++bc) {
      const auto e = grid.extent(br, bc);
      double sum = 0.0;
      for (std::size_t r = e.r0; r < e.r1; ++r) {
        const auto row = attn.row(r);
        for (std::size_t c = e.c0; c < e.c1; ++c) {
          sum += row[c];
        }
      }
      mass(br, bc) = static_cast<float>(sum / static_cast<double>(e.count()));
    }
  }
  return mass;
}

double block_diagonality(const MatF& attn, std::size_t block) {
  PARO_CHECK_MSG(attn.rows() == attn.cols(),
                 "block_diagonality needs a square map");
  const MatF mass = block_mass(attn, block);
  double diag = 0.0, total = 0.0;
  for (std::size_t br = 0; br < mass.rows(); ++br) {
    for (std::size_t bc = 0; bc < mass.cols(); ++bc) {
      total += mass(br, bc);
      if (br == bc) diag += mass(br, bc);
    }
  }
  return total == 0.0 ? 0.0 : diag / total;
}

}  // namespace paro
