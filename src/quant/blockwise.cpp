#include "quant/blockwise.hpp"

#include <algorithm>
#include <cmath>
#include <span>

#include "common/arena.hpp"
#include "quant/tile_visitor.hpp"

namespace paro {

namespace {

/// Copy a tile into contiguous scratch (row-major within the tile — the
/// same element order the vector-insert idiom produced).
void gather_tile(const MatF& m, const BlockGrid::Extent& e, float* scratch) {
  std::size_t k = 0;
  for (std::size_t r = e.r0; r < e.r1; ++r) {
    const auto row = m.row(r);
    std::copy(row.begin() + static_cast<std::ptrdiff_t>(e.c0),
              row.begin() + static_cast<std::ptrdiff_t>(e.c1), scratch + k);
    k += e.cols();
  }
}

void scatter_tile(MatF& m, const BlockGrid::Extent& e, const float* scratch) {
  std::size_t k = 0;
  for (std::size_t r = e.r0; r < e.r1; ++r) {
    auto row = m.row(r);
    for (std::size_t c = e.c0; c < e.c1; ++c) {
      row[c] = scratch[k++];
    }
  }
}

/// Process-wide shard arenas for the tile sweeps: a tile's gather scratch
/// (≤ block² floats per thread) is carved per tile and the storage is
/// retained across calls, so repeated sweeps — the calibration scoring
/// loop, the materialized map quant per step — stop paying a heap
/// round-trip per chunk.  Leaked intentionally (thread-exit order).
ShardedArena& tile_scratch_arena() {
  static ShardedArena* arena = new ShardedArena();
  return *arena;
}

}  // namespace

MatF fake_quant_blockwise(const MatF& attn, std::size_t block, int bits) {
  const TileVisitor visitor(BlockGrid(attn.rows(), attn.cols(), block), bits);
  MatF out = attn;
  // Tiles are disjoint regions of `out`, so quantizing them in parallel
  // writes disjoint elements.
  visitor.parallel_for_each_tile_sharded(
      tile_scratch_arena(), [&](const TileRef& t, Arena& arena) {
        const auto tile = arena.alloc_span<float>(t.extent.count());
        gather_tile(out, t.extent, tile.data());
        fake_quant_group(std::span<float>(tile.data(), tile.size()), t.bits,
                         /*symmetric=*/false);
        scatter_tile(out, t.extent, tile.data());
      });
  return out;
}

MatF fake_quant_blockwise_mixed(const MatF& attn, const BitTable& table) {
  PARO_CHECK_MSG(table.grid().rows() == attn.rows() &&
                     table.grid().cols() == attn.cols(),
                 "BitTable grid does not match attention map shape");
  const TileVisitor visitor(table);
  MatF out = attn;
  visitor.parallel_for_each_tile_sharded(
      tile_scratch_arena(), [&](const TileRef& t, Arena& arena) {
        const auto tile = arena.alloc_span<float>(t.extent.count());
        gather_tile(out, t.extent, tile.data());
        fake_quant_group(std::span<float>(tile.data(), tile.size()), t.bits,
                         /*symmetric=*/false);
        scatter_tile(out, t.extent, tile.data());
      });
  return out;
}

std::vector<BlockQuantStats> collect_block_stats(const MatF& attn,
                                                 std::size_t block) {
  const TileVisitor visitor(BlockGrid(attn.rows(), attn.cols(), block));
  std::vector<BlockQuantStats> stats(visitor.num_tiles());
  // The sensitivity pass scores every tile at every candidate bitwidth —
  // the dominant offline cost after plan selection.  Each tile fills its
  // own slot, so row-major tile order is preserved at any thread count.
  visitor.parallel_for_each_tile_sharded(
      tile_scratch_arena(), [&](const TileRef& t, Arena& arena) {
        const auto scratch = arena.alloc_span<float>(t.extent.count());
        gather_tile(attn, t.extent, scratch.data());
        const std::span<const float> tile(scratch.data(), scratch.size());
        BlockQuantStats s;
        s.block_row = t.br;
        s.block_col = t.bc;
        s.count = tile.size();
        for (const float v : tile) {
          s.value_sum += v;
          s.abs_mean += std::abs(v);
        }
        s.abs_mean /= static_cast<double>(tile.size());
        for (int bi = 0; bi < kNumBitChoices; ++bi) {
          const int bits = kBitChoices[bi];
          if (bits == 0) {
            // Skipping the tile leaves the full signal as error.
            double sq = 0.0;
            for (const float v : tile) sq += static_cast<double>(v) * v;
            s.error_l2[bi] = std::sqrt(sq);
          } else {
            const QuantParams p = calibrate_minmax(tile, bits);
            s.error_l2[bi] = std::sqrt(quant_error_sq(tile, p));
          }
        }
        stats[t.index] = s;
      });
  return stats;
}

double blockwise_quant_error_sq(const MatF& attn, std::size_t block,
                                int bits) {
  const TileVisitor visitor(BlockGrid(attn.rows(), attn.cols(), block), bits);
  // Per-tile errors accumulate in flat-tile order and chunk partials fold
  // in chunk order, so the FP sum has one fixed association regardless of
  // thread count.
  return visitor.ordered_reduce_tiles(
      0.0,
      [&](const TileRef& t) {
        Arena& arena = tile_scratch_arena().local();
        arena.reset();
        const auto scratch = arena.alloc_span<float>(t.extent.count());
        gather_tile(attn, t.extent, scratch.data());
        const std::span<const float> tile(scratch.data(), scratch.size());
        if (t.bits == 0) {
          double sq = 0.0;
          for (const float v : tile) sq += static_cast<double>(v) * v;
          return sq;
        }
        const QuantParams p = calibrate_minmax(tile, t.bits);
        return quant_error_sq(tile, p);
      },
      [](double a, double b) { return a + b; });
}

MatF block_mass(const MatF& attn, std::size_t block) {
  const TileVisitor visitor(BlockGrid(attn.rows(), attn.cols(), block));
  MatF mass(visitor.grid().block_rows(), visitor.grid().block_cols(), 0.0F);
  visitor.for_each_tile([&](const TileRef& t) {
    double sum = 0.0;
    for (std::size_t r = t.extent.r0; r < t.extent.r1; ++r) {
      const auto row = attn.row(r);
      for (std::size_t c = t.extent.c0; c < t.extent.c1; ++c) {
        sum += row[c];
      }
    }
    mass(t.br, t.bc) =
        static_cast<float>(sum / static_cast<double>(t.extent.count()));
  });
  return mass;
}

double block_diagonality(const MatF& attn, std::size_t block) {
  PARO_CHECK_MSG(attn.rows() == attn.cols(),
                 "block_diagonality needs a square map");
  const MatF mass = block_mass(attn, block);
  double diag = 0.0, total = 0.0;
  for (std::size_t br = 0; br < mass.rows(); ++br) {
    for (std::size_t bc = 0; bc < mass.cols(); ++bc) {
      total += mass(br, bc);
      if (br == bc) diag += mass(br, bc);
    }
  }
  return total == 0.0 ? 0.0 : diag / total;
}

}  // namespace paro
