#include "quant/blockwise.hpp"

#include <cmath>

#include "quant/tile_visitor.hpp"

namespace paro {

namespace {

/// Copy a tile into a scratch vector.
void gather_tile(const MatF& m, const BlockGrid::Extent& e,
                 std::vector<float>& scratch) {
  scratch.clear();
  scratch.reserve(e.count());
  for (std::size_t r = e.r0; r < e.r1; ++r) {
    const auto row = m.row(r);
    scratch.insert(scratch.end(), row.begin() + static_cast<std::ptrdiff_t>(e.c0),
                   row.begin() + static_cast<std::ptrdiff_t>(e.c1));
  }
}

void scatter_tile(MatF& m, const BlockGrid::Extent& e,
                  const std::vector<float>& scratch) {
  std::size_t k = 0;
  for (std::size_t r = e.r0; r < e.r1; ++r) {
    auto row = m.row(r);
    for (std::size_t c = e.c0; c < e.c1; ++c) {
      row[c] = scratch[k++];
    }
  }
}

}  // namespace

MatF fake_quant_blockwise(const MatF& attn, std::size_t block, int bits) {
  const TileVisitor visitor(BlockGrid(attn.rows(), attn.cols(), block), bits);
  MatF out = attn;
  // Tiles are disjoint regions of `out`, so quantizing them in parallel
  // writes disjoint elements.
  visitor.parallel_for_each_tile_with(
      [] { return std::vector<float>(); },
      [&](const TileRef& t, std::vector<float>& tile) {
        gather_tile(out, t.extent, tile);
        fake_quant_group(tile, t.bits, /*symmetric=*/false);
        scatter_tile(out, t.extent, tile);
      });
  return out;
}

MatF fake_quant_blockwise_mixed(const MatF& attn, const BitTable& table) {
  PARO_CHECK_MSG(table.grid().rows() == attn.rows() &&
                     table.grid().cols() == attn.cols(),
                 "BitTable grid does not match attention map shape");
  const TileVisitor visitor(table);
  MatF out = attn;
  visitor.parallel_for_each_tile_with(
      [] { return std::vector<float>(); },
      [&](const TileRef& t, std::vector<float>& tile) {
        gather_tile(out, t.extent, tile);
        fake_quant_group(tile, t.bits, /*symmetric=*/false);
        scatter_tile(out, t.extent, tile);
      });
  return out;
}

std::vector<BlockQuantStats> collect_block_stats(const MatF& attn,
                                                 std::size_t block) {
  const TileVisitor visitor(BlockGrid(attn.rows(), attn.cols(), block));
  std::vector<BlockQuantStats> stats(visitor.num_tiles());
  // The sensitivity pass scores every tile at every candidate bitwidth —
  // the dominant offline cost after plan selection.  Each tile fills its
  // own slot, so row-major tile order is preserved at any thread count.
  visitor.parallel_for_each_tile_with(
      [] { return std::vector<float>(); },
      [&](const TileRef& t, std::vector<float>& tile) {
        gather_tile(attn, t.extent, tile);
        BlockQuantStats s;
        s.block_row = t.br;
        s.block_col = t.bc;
        s.count = tile.size();
        for (const float v : tile) {
          s.value_sum += v;
          s.abs_mean += std::abs(v);
        }
        s.abs_mean /= static_cast<double>(tile.size());
        for (int bi = 0; bi < kNumBitChoices; ++bi) {
          const int bits = kBitChoices[bi];
          if (bits == 0) {
            // Skipping the tile leaves the full signal as error.
            double sq = 0.0;
            for (const float v : tile) sq += static_cast<double>(v) * v;
            s.error_l2[bi] = std::sqrt(sq);
          } else {
            const QuantParams p = calibrate_minmax(tile, bits);
            s.error_l2[bi] = std::sqrt(quant_error_sq(tile, p));
          }
        }
        stats[t.index] = s;
      });
  return stats;
}

double blockwise_quant_error_sq(const MatF& attn, std::size_t block,
                                int bits) {
  const TileVisitor visitor(BlockGrid(attn.rows(), attn.cols(), block), bits);
  // Per-tile errors accumulate in flat-tile order and chunk partials fold
  // in chunk order, so the FP sum has one fixed association regardless of
  // thread count.
  return visitor.ordered_reduce_tiles(
      0.0,
      [&](const TileRef& t) {
        std::vector<float> tile;
        gather_tile(attn, t.extent, tile);
        if (t.bits == 0) {
          double sq = 0.0;
          for (const float v : tile) sq += static_cast<double>(v) * v;
          return sq;
        }
        const QuantParams p = calibrate_minmax(tile, t.bits);
        return quant_error_sq(tile, p);
      },
      [](double a, double b) { return a + b; });
}

MatF block_mass(const MatF& attn, std::size_t block) {
  const TileVisitor visitor(BlockGrid(attn.rows(), attn.cols(), block));
  MatF mass(visitor.grid().block_rows(), visitor.grid().block_cols(), 0.0F);
  visitor.for_each_tile([&](const TileRef& t) {
    double sum = 0.0;
    for (std::size_t r = t.extent.r0; r < t.extent.r1; ++r) {
      const auto row = attn.row(r);
      for (std::size_t c = t.extent.c0; c < t.extent.c1; ++c) {
        sum += row[c];
      }
    }
    mass(t.br, t.bc) =
        static_cast<float>(sum / static_cast<double>(t.extent.count()));
  });
  return mass;
}

double block_diagonality(const MatF& attn, std::size_t block) {
  PARO_CHECK_MSG(attn.rows() == attn.cols(),
                 "block_diagonality needs a square map");
  const MatF mass = block_mass(attn, block);
  double diag = 0.0, total = 0.0;
  for (std::size_t br = 0; br < mass.rows(); ++br) {
    for (std::size_t bc = 0; bc < mass.cols(); ++bc) {
      total += mass(br, bc);
      if (br == bc) diag += mass(br, bc);
    }
  }
  return total == 0.0 ? 0.0 : diag / total;
}

}  // namespace paro
