// W8A8 quantized linear layer (paper §V-A: "weights and activations of all
// linear layers are quantized to INT8").
//
// Weight codes are produced offline with per-output-channel symmetric
// calibration; activations are quantized online per token (per row).  The
// integer GEMM accumulates in int32 and the per-(token, channel) scale
// product dequantizes the result — exactly the dataflow of the PARO PE
// array + vector unit (fixed-point accumulate, FP16 rescale).
#pragma once

#include <vector>

#include "quant/affine.hpp"
#include "tensor/matrix.hpp"

namespace paro {

/// An INT8 linear layer y = x · Wᵀ with per-channel weight scales.
class LinearW8A8 {
 public:
  /// Empty layer; forward() on it throws.  Exists so aggregates holding
  /// quantized twins can be built before weights are assigned.
  LinearW8A8() = default;

  /// Quantize FP weights offline.  `weight` is [out_features, in_features].
  explicit LinearW8A8(const MatF& weight);

  std::size_t in_features() const { return codes_.cols(); }
  std::size_t out_features() const { return codes_.rows(); }

  /// Quantize `x` per row to INT8, run the integer GEMM, dequantize.
  /// `x` is [tokens, in_features]; result [tokens, out_features].
  MatF forward(const MatF& x) const;

  /// The dequantized weights actually used (for error analyses).
  MatF dequantized_weight() const;

 private:
  MatI8 codes_;                        // [out, in]
  std::vector<QuantParams> channel_params_;  // one per output channel
  std::vector<float> channel_scales_;  // contiguous mirror for the kernel
};

}  // namespace paro
