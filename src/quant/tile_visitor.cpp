#include "quant/tile_visitor.hpp"

namespace paro {

std::size_t TileVisitor::count_live() const {
  std::size_t live = 0;
  for_each_tile([&](const TileRef& t) {
    if (t.live()) ++live;
  });
  return live;
}

std::vector<std::size_t> TileVisitor::counts_per_bits() const {
  std::vector<std::size_t> counts(static_cast<std::size_t>(kNumBitChoices), 0);
  for_each_tile([&](const TileRef& t) {
    ++counts[static_cast<std::size_t>(bit_choice_index(t.bits))];
  });
  return counts;
}

}  // namespace paro
