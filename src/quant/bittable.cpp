#include "quant/bittable.hpp"

#include <algorithm>

namespace paro {

BlockGrid::BlockGrid(std::size_t rows, std::size_t cols, std::size_t block)
    : rows_(rows), cols_(cols), block_(block) {
  PARO_CHECK_MSG(rows > 0 && cols > 0, "empty grid");
  PARO_CHECK_MSG(block > 0, "block size must be positive");
  block_rows_ = (rows + block - 1) / block;
  block_cols_ = (cols + block - 1) / block;
}

BlockGrid::Extent BlockGrid::extent(std::size_t br, std::size_t bc) const {
  PARO_CHECK(br < block_rows_ && bc < block_cols_);
  Extent e;
  e.r0 = br * block_;
  e.r1 = std::min(e.r0 + block_, rows_);
  e.c0 = bc * block_;
  e.c1 = std::min(e.c0 + block_, cols_);
  return e;
}

int bit_choice_index(int bits) {
  for (int i = 0; i < kNumBitChoices; ++i) {
    if (kBitChoices[i] == bits) return i;
  }
  throw ConfigError("bitwidth must be one of {0,2,4,8}, got " +
                    std::to_string(bits));
}

BitTable::BitTable(BlockGrid grid, int initial_bits)
    : grid_(grid),
      bits_(grid.num_blocks(), static_cast<std::int8_t>(initial_bits)) {
  bit_choice_index(initial_bits);  // validate
}

void BitTable::set_bits(std::size_t br, std::size_t bc, int bits) {
  bit_choice_index(bits);
  bits_[grid_.flat_index(br, bc)] = static_cast<std::int8_t>(bits);
}

void BitTable::set_bits_flat(std::size_t index, int bits) {
  bit_choice_index(bits);
  bits_.at(index) = static_cast<std::int8_t>(bits);
}

double BitTable::average_bitwidth() const {
  double weighted = 0.0;
  double total = 0.0;
  for (std::size_t br = 0; br < grid_.block_rows(); ++br) {
    for (std::size_t bc = 0; bc < grid_.block_cols(); ++bc) {
      const auto count =
          static_cast<double>(grid_.extent(br, bc).count());
      weighted += count * bits_at(br, bc);
      total += count;
    }
  }
  return total == 0.0 ? 0.0 : weighted / total;
}

double BitTable::fraction_at(int bits) const {
  double at = 0.0;
  double total = 0.0;
  for (std::size_t br = 0; br < grid_.block_rows(); ++br) {
    for (std::size_t bc = 0; bc < grid_.block_cols(); ++bc) {
      const auto count =
          static_cast<double>(grid_.extent(br, bc).count());
      if (bits_at(br, bc) == bits) at += count;
      total += count;
    }
  }
  return total == 0.0 ? 0.0 : at / total;
}

std::size_t BitTable::tiles_at(int bits) const {
  return static_cast<std::size_t>(
      std::count(bits_.begin(), bits_.end(), static_cast<std::int8_t>(bits)));
}

std::string BitTable::to_ascii() const {
  std::string out;
  out.reserve((grid_.block_cols() + 1) * grid_.block_rows());
  for (std::size_t br = 0; br < grid_.block_rows(); ++br) {
    for (std::size_t bc = 0; bc < grid_.block_cols(); ++bc) {
      const int b = bits_at(br, bc);
      out.push_back(b == 0 ? '.' : static_cast<char>('0' + b));
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace paro
