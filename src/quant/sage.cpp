#include "quant/sage.hpp"

#include <cmath>

#include "quant/granularity.hpp"
#include "tensor/ops.hpp"

namespace paro {

namespace {

/// Subtract the per-channel mean of K (SageAttention's outlier smoothing).
/// Softmax is invariant to adding a constant per query row, and
/// q · (k − k̄) differs from q · k by a row-constant, so this is exact.
MatF smooth_k(const MatF& k) {
  MatF out = k;
  for (std::size_t c = 0; c < k.cols(); ++c) {
    double mean = 0.0;
    for (std::size_t r = 0; r < k.rows(); ++r) mean += k(r, c);
    mean /= static_cast<double>(k.rows());
    for (std::size_t r = 0; r < k.rows(); ++r) {
      out(r, c) = static_cast<float>(k(r, c) - mean);
    }
  }
  return out;
}

float default_scale(const MatF& q, float scale) {
  return scale > 0.0F ? scale
                      : 1.0F / std::sqrt(static_cast<float>(q.cols()));
}

}  // namespace

MatF sage_attention_map(const MatF& q, const MatF& k, float scale) {
  PARO_CHECK_MSG(q.cols() == k.cols(), "q/k head_dim mismatch");
  const MatF ks = smooth_k(k);
  const QuantizedI8 qq = quantize_rows_i8(q, 8);
  const QuantizedI8 kq = quantize_rows_i8(ks, 8);
  const MatI32 acc = matmul_nt_i8(qq.codes, kq.codes);
  MatF logits(q.rows(), k.rows());
  for (std::size_t i = 0; i < logits.rows(); ++i) {
    const float si = qq.row_params[i].scale;
    const auto arow = acc.row(i);
    auto lrow = logits.row(i);
    for (std::size_t j = 0; j < lrow.size(); ++j) {
      lrow[j] = static_cast<float>(arow[j]) * si * kq.row_params[j].scale;
    }
  }
  return softmax_rows(logits, default_scale(q, scale));
}

MatF sage_attention(const MatF& q, const MatF& k, const MatF& v, float scale) {
  const MatF attn = sage_attention_map(q, k, scale);
  return matmul(attn, v);
}

namespace {

/// Fake-quantize rows of `m` to INT4 with one symmetric scale per group of
/// `group_rows` consecutive rows (SageAttention2's per-thread-group INT4).
MatF fake_quant_row_groups_int4(const MatF& m, std::size_t group_rows) {
  MatF out = m;
  for (std::size_t g0 = 0; g0 < m.rows(); g0 += group_rows) {
    const std::size_t g1 = std::min(g0 + group_rows, m.rows());
    float amax = 0.0F;
    for (std::size_t r = g0; r < g1; ++r) {
      for (const float v : m.row(r)) {
        amax = std::max(amax, std::abs(v));
      }
    }
    QuantParams p;
    p.bits = 4;
    p.symmetric = true;
    p.scale = std::max(amax / 7.0F, 1e-12F);
    for (std::size_t r = g0; r < g1; ++r) {
      fake_quant_span(out.row(r), out.row(r), p);
    }
  }
  return out;
}

}  // namespace

MatF sage2_attention(const MatF& q, const MatF& k, const MatF& v,
                     std::size_t group_rows, float scale) {
  PARO_CHECK_MSG(q.cols() == k.cols(), "q/k head_dim mismatch");
  PARO_CHECK_MSG(group_rows > 0, "group_rows must be positive");
  const MatF ks = smooth_k(k);
  const MatF q4 = fake_quant_row_groups_int4(q, group_rows);
  const MatF k4 = fake_quant_row_groups_int4(ks, group_rows);
  const MatF attn = softmax_rows(matmul_nt(q4, k4), default_scale(q, scale));
  return matmul(attn, v);
}

}  // namespace paro
