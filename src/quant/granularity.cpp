#include "quant/granularity.hpp"

#include "tensor/ops.hpp"

namespace paro {

MatF fake_quant_matrix(const MatF& m, Granularity granularity, int bits,
                       bool symmetric, std::vector<QuantParams>* params_out) {
  MatF out = m;
  std::vector<QuantParams> params;
  switch (granularity) {
    case Granularity::kPerTensor: {
      params.push_back(fake_quant_group(out.flat(), bits, symmetric));
      break;
    }
    case Granularity::kPerRow: {
      params.reserve(out.rows());
      for (std::size_t r = 0; r < out.rows(); ++r) {
        params.push_back(fake_quant_group(out.row(r), bits, symmetric));
      }
      break;
    }
    case Granularity::kPerColumn: {
      // Transpose, quantize rows, transpose back: simple and obviously
      // correct; the quality experiments are small enough not to care.
      MatF t = transpose(out);
      params.reserve(t.rows());
      for (std::size_t r = 0; r < t.rows(); ++r) {
        params.push_back(fake_quant_group(t.row(r), bits, symmetric));
      }
      out = transpose(t);
      break;
    }
  }
  if (params_out != nullptr) {
    *params_out = std::move(params);
  }
  return out;
}

QuantizedI8 quantize_rows_i8(const MatF& m, int bits) {
  PARO_CHECK_MSG(bits >= 2 && bits <= 8, "int8-path bits must be in [2,8]");
  QuantizedI8 q;
  q.codes = MatI8(m.rows(), m.cols());
  q.row_params.reserve(m.rows());
  for (std::size_t r = 0; r < m.rows(); ++r) {
    const QuantParams p = calibrate_symmetric(m.row(r), bits);
    const auto src = m.row(r);
    auto dst = q.codes.row(r);
    for (std::size_t c = 0; c < src.size(); ++c) {
      dst[c] = static_cast<std::int8_t>(quantize_value(src[c], p));
    }
    q.row_params.push_back(p);
  }
  return q;
}

MatF dequantize_rows(const QuantizedI8& q) {
  MatF out(q.codes.rows(), q.codes.cols());
  for (std::size_t r = 0; r < out.rows(); ++r) {
    const QuantParams& p = q.row_params.at(r);
    const auto src = q.codes.row(r);
    auto dst = out.row(r);
    for (std::size_t c = 0; c < src.size(); ++c) {
      dst[c] = dequantize_value(src[c], p);
    }
  }
  return out;
}

}  // namespace paro
