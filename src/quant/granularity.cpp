#include "quant/granularity.hpp"

#include "common/thread_pool.hpp"
#include "kernels/kernels.hpp"
#include "tensor/ops.hpp"

namespace paro {

MatF fake_quant_matrix(const MatF& m, Granularity granularity, int bits,
                       bool symmetric, std::vector<QuantParams>* params_out) {
  MatF out = m;
  std::vector<QuantParams> params;
  switch (granularity) {
    case Granularity::kPerTensor: {
      params.push_back(fake_quant_group(out.flat(), bits, symmetric));
      break;
    }
    case Granularity::kPerRow: {
      params.reserve(out.rows());
      for (std::size_t r = 0; r < out.rows(); ++r) {
        params.push_back(fake_quant_group(out.row(r), bits, symmetric));
      }
      break;
    }
    case Granularity::kPerColumn: {
      // Transpose, quantize rows, transpose back: simple and obviously
      // correct; the quality experiments are small enough not to care.
      MatF t = transpose(out);
      params.reserve(t.rows());
      for (std::size_t r = 0; r < t.rows(); ++r) {
        params.push_back(fake_quant_group(t.row(r), bits, symmetric));
      }
      out = transpose(t);
      break;
    }
  }
  if (params_out != nullptr) {
    *params_out = std::move(params);
  }
  return out;
}

QuantizedI8 quantize_rows_i8(const MatF& m, int bits) {
  QuantizedI8 q;
  quantize_rows_i8_into(m, q, bits);
  return q;
}

void quantize_rows_i8_into(const MatF& m, QuantizedI8& out, int bits) {
  quantize_rows_i8_range_into(m, 0, m.rows(), out, bits);
}

void quantize_rows_i8_range_into(const MatF& m, std::size_t r0, std::size_t r1,
                                 QuantizedI8& out, int bits) {
  PARO_CHECK_MSG(bits >= 2 && bits <= 8, "int8-path bits must be in [2,8]");
  PARO_CHECK_MSG(r0 <= r1 && r1 <= m.rows(),
                 "quantize_rows_i8 row range out of bounds");
  out.codes.resize(r1 - r0, m.cols());
  out.row_params.resize(r1 - r0);
  // Rows are independent (own codes row, own params slot) and both the
  // absmax calibration and the rounding kernel are element-exact, so the
  // parallel fan-out is bitwise identical to the old serial loop — and a
  // row's result does not depend on which range it was quantized in.
  global_pool().parallel_for(0, r1 - r0, 16, [&](std::size_t i) {
    const std::size_t r = r0 + i;
    const QuantParams p = calibrate_symmetric(m.row(r), bits);
    const auto src = m.row(r);
    kernels::QuantTransform t;
    t.scale = p.scale;
    t.zero_point = 0;
    const std::int64_t qmax = (std::int64_t{1} << (bits - 1)) - 1;
    t.qlo = -qmax;
    t.qhi = qmax;
    kernels::quantize_i8(src.data(), out.codes.row(i).data(), src.size(), t);
    out.row_params[i] = p;
  });
}

void fake_quant_per_column_into(const MatF& m, int bits, bool symmetric,
                                MatF& out, MatF& transpose_scratch,
                                std::vector<QuantParams>& params) {
  // Same transpose → per-row fake-quant → transpose-back dance as the
  // kPerColumn branch of fake_quant_matrix, with every intermediate in
  // retained storage.  Identical operations in identical order → bitwise
  // identical values.
  transpose_into(m, transpose_scratch);
  params.resize(transpose_scratch.rows());
  for (std::size_t r = 0; r < transpose_scratch.rows(); ++r) {
    params[r] = fake_quant_group(transpose_scratch.row(r), bits, symmetric);
  }
  transpose_into(transpose_scratch, out);
}

MatF dequantize_rows(const QuantizedI8& q) {
  MatF out(q.codes.rows(), q.codes.cols());
  for (std::size_t r = 0; r < out.rows(); ++r) {
    const QuantParams& p = q.row_params.at(r);
    const auto src = q.codes.row(r);
    auto dst = out.row(r);
    if (p.zero_point == 0) {
      kernels::dequant_i8(src.data(), dst.data(), src.size(), p.scale);
    } else {
      for (std::size_t c = 0; c < src.size(); ++c) {
        dst[c] = dequantize_value(src[c], p);
      }
    }
  }
  return out;
}

}  // namespace paro
