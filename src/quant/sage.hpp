// SageAttention-style baseline (paper Table I row "SageAttention").
//
// SageAttention quantizes only Q and K to INT8 (per token, after smoothing
// K by subtracting its per-channel mean) and computes QKᵀ in INT8; softmax,
// the attention map, and AttnV stay in high precision.  It therefore
// accelerates only half the attention FLOPs — the motivating limitation
// PARO addresses (§III-A).
#pragma once

#include "tensor/matrix.hpp"

namespace paro {

/// Attention with INT8 Q/K (per-token symmetric, K mean-smoothed) and FP
/// softmax / AttnV.  `q`,`k`,`v` are [tokens, head_dim]; returns the
/// attention output [tokens, head_dim].  `scale` is 1/sqrt(d) unless the
/// caller overrides.
MatF sage_attention(const MatF& q, const MatF& k, const MatF& v,
                    float scale = -1.0F);

/// The INT8-reconstructed attention map itself (before AttnV), used by the
/// quality metrics that compare attention maps directly.
MatF sage_attention_map(const MatF& q, const MatF& k, float scale = -1.0F);

/// SageAttention2-style variant (Zhang et al. 2024, the paper's ref [17]):
/// Q/K quantized to INT4 per token GROUP of `group_rows` rows (finer than
/// per-tensor, coarser than per-token) after mean smoothing; softmax and
/// AttnV stay high-precision.  Included as the natural follow-up baseline
/// the paper cites — it accelerates QKᵀ 2× further than SageAttention but
/// still leaves AttnV and the map untouched, which is PARO's opening.
MatF sage2_attention(const MatF& q, const MatF& k, const MatF& v,
                     std::size_t group_rows = 32, float scale = -1.0F);

}  // namespace paro
