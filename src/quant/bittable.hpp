// Block geometry and per-block bitwidth tables.
//
// The attention map [N, N] is tiled into `block × block` tiles (ragged at
// the edges when N is not a multiple).  A BitTable assigns every tile a
// bitwidth from {0, 2, 4, 8}: the output format of PARO's mixed-precision
// allocator and the control input of the PE-array dispatcher.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace paro {

/// Tiling of an R×C matrix into square tiles of side `block`.
class BlockGrid {
 public:
  BlockGrid(std::size_t rows, std::size_t cols, std::size_t block);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t block() const { return block_; }
  std::size_t block_rows() const { return block_rows_; }
  std::size_t block_cols() const { return block_cols_; }
  std::size_t num_blocks() const { return block_rows_ * block_cols_; }

  /// Half-open element range covered by tile (br, bc).
  struct Extent {
    std::size_t r0, r1, c0, c1;
    std::size_t rows() const { return r1 - r0; }
    std::size_t cols() const { return c1 - c0; }
    std::size_t count() const { return rows() * cols(); }
  };
  Extent extent(std::size_t br, std::size_t bc) const;

  /// Flat tile index (row-major over tiles).
  std::size_t flat_index(std::size_t br, std::size_t bc) const {
    PARO_CHECK(br < block_rows_ && bc < block_cols_);
    return br * block_cols_ + bc;
  }

  bool operator==(const BlockGrid& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           block_ == other.block_;
  }

 private:
  std::size_t rows_, cols_, block_;
  std::size_t block_rows_, block_cols_;
};

/// PARO's attention-map bitwidth alphabet (paper Eq. 1).
inline constexpr int kBitChoices[] = {0, 2, 4, 8};
inline constexpr int kNumBitChoices = 4;

/// Index of `bits` inside kBitChoices; throws for other values.
int bit_choice_index(int bits);

/// Per-tile bitwidth assignment over a BlockGrid.
class BitTable {
 public:
  explicit BitTable(BlockGrid grid, int initial_bits = 8);

  const BlockGrid& grid() const { return grid_; }

  int bits_at(std::size_t br, std::size_t bc) const {
    return bits_[grid_.flat_index(br, bc)];
  }
  int bits_flat(std::size_t index) const { return bits_.at(index); }
  void set_bits(std::size_t br, std::size_t bc, int bits);
  void set_bits_flat(std::size_t index, int bits);

  /// Element-weighted average bitwidth (the paper's "average 4.80 bit").
  double average_bitwidth() const;

  /// Fraction of tiles (element-weighted) at exactly `bits`.
  double fraction_at(int bits) const;

  /// Count of tiles at exactly `bits`.
  std::size_t tiles_at(int bits) const;

  /// Human-readable tile map ('.', '2', '4', '8') for debugging / Fig. 8.
  std::string to_ascii() const;

 private:
  BlockGrid grid_;
  std::vector<std::int8_t> bits_;
};

}  // namespace paro
