#include "baselines/gpu_roofline.hpp"

#include <algorithm>

namespace paro {

GpuRoofline::GpuRoofline(GpuResources gpu, GpuModelConfig config)
    : gpu_(std::move(gpu)), cfg_(config) {}

double GpuRoofline::gemm_seconds(double macs, double bytes) const {
  const double compute_s =
      2.0 * macs / (gpu_.fp16_tflops * 1e12 * gpu_.gemm_efficiency);
  const double memory_s =
      bytes / (gpu_.hbm_gbps * 1e9 * gpu_.bandwidth_efficiency);
  return std::max(compute_s, memory_s);
}

GpuStepTime GpuRoofline::simulate_step(const Workload& w) const {
  GpuStepTime t;
  const double bw = gpu_.hbm_gbps * 1e9 * gpu_.bandwidth_efficiency;

  for (const GemmOp& g : w.gemms) {
    switch (g.kind) {
      case GemmKind::kLinear:
        t.linear_s += gemm_seconds(g.macs(), 2.0 * g.stream_elements());
        break;
      case GemmKind::kQK: {
        const auto n = static_cast<double>(g.m);
        const auto dh = static_cast<double>(g.k);
        // QKᵀ writes the map; softmax and AttnV re-cross it map_passes−1
        // more times in total.
        const double map_bytes = cfg_.map_passes * n * n * 2.0;
        const double io_bytes = 2.0 * n * dh * 2.0;  // Q, K
        t.attention_s += gemm_seconds(n * n * dh, io_bytes) +
                         map_bytes / bw;
        break;
      }
      case GemmKind::kAttnV: {
        const auto n = static_cast<double>(g.m);
        const auto dh = static_cast<double>(g.n);
        // Map read already charged via map_passes; V in, O out here.
        t.attention_s += gemm_seconds(n * n * dh, 2.0 * n * dh * 2.0);
        break;
      }
    }
  }
  for (const VectorOp& v : w.vectors) {
    if (v.kind == VectorKind::kSoftmax || v.kind == VectorKind::kReorder) {
      continue;  // softmax traffic inside map_passes; no reorder on GPU
    }
    t.vector_s += 2.0 * static_cast<double>(v.elements) * 2.0 / bw;
  }
  return t;
}

double GpuRoofline::simulate_video_seconds(const ModelConfig& model) const {
  return simulate_video_breakdown(model).total_s();
}

GpuStepTime GpuRoofline::simulate_video_breakdown(
    const ModelConfig& model) const {
  const Workload w = Workload::build(model, /*include_reorder=*/false);
  GpuStepTime t = simulate_step(w);
  const auto steps = static_cast<double>(model.sampling_steps);
  t.linear_s *= steps;
  t.attention_s *= steps;
  t.vector_s *= steps;
  return t;
}

}  // namespace paro
