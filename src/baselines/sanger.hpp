// Performance model of Sanger (Lu et al., MICRO'21) under PARO's resource
// budget (paper §V-A: baselines are simulated with the same cycle-level
// methodology and hardware constraints).
//
// Sanger's pipeline per attention head:
//   1. Prediction: dense QKᵀ in 4-bit to estimate scores (fast mode).
//   2. Threshold → binary mask; "pack & split" load balancing.
//   3. Sparse SDDMM: recompute surviving logits at full precision.
//   4. Softmax over survivors; sparse AttnV.
// Linear layers are untouched (FP16).  Crucially, at 17.8 k tokens the
// packed sparse map (values + column indices) exceeds on-chip storage by
// orders of magnitude and is materialised in DRAM between the score and
// AttnV phases — the scaling wall PARO's fused low-bit flow removes.
#pragma once

#include "model/workload.hpp"
#include "sim/overlap.hpp"
#include "sim/resources.hpp"

namespace paro {

struct SangerConfig {
  /// Surviving fraction of attention entries.  At video scale Sanger's
  /// dynamic threshold must keep more than on 196-token ViTs to stay
  /// quality-aligned with PARO (§V-A aligns all baselines on quality).
  double density = 0.30;
  double pack_efficiency = 0.70;  ///< PE utilisation after pack & split
  double prediction_rate = 2.0;   ///< 4-bit prediction speedup vs 8-bit MACs
  double index_bytes = 4.0;    ///< per packed entry (column index + bucket)
  /// Storage utilisation of the pack-&-split bucket format: irregular
  /// video-attention rows leave padding in the fixed-width buckets.
  double storage_efficiency = 0.80;
};

class SangerAccelerator {
 public:
  SangerAccelerator(HwResources hw, SangerConfig config = {});

  std::vector<OpCost> build_ops(const Workload& workload) const;
  SimStats simulate_step(const Workload& workload) const;
  SimStats simulate_video(const ModelConfig& model) const;

 private:
  HwResources hw_;
  SangerConfig cfg_;
};

}  // namespace paro
