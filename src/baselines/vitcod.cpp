#include "baselines/vitcod.hpp"

#include "common/error.hpp"

namespace paro {

VitcodAccelerator::VitcodAccelerator(HwResources hw, VitcodConfig config)
    : hw_(std::move(hw)), cfg_(config) {
  PARO_CHECK_MSG(cfg_.dense_col_fraction >= 0.0 &&
                     cfg_.dense_col_fraction <= 1.0,
                 "dense_col_fraction must be in [0,1]");
  PARO_CHECK_MSG(cfg_.sparse_density >= 0.0 && cfg_.sparse_density <= 1.0,
                 "sparse_density must be in [0,1]");
  PARO_CHECK_MSG(cfg_.compression_ratio >= 1.0, "compression must be >= 1");
}

std::vector<OpCost> VitcodAccelerator::build_ops(const Workload& w) const {
  std::vector<OpCost> ops;
  const double lanes = hw_.vector_lanes;
  const double fp16_rate = hw_.pe_macs_per_cycle * hw_.fp16_rate_factor;
  const double kept_frac = cfg_.overall_density();

  for (const GemmOp& g : w.gemms) {
    switch (g.kind) {
      case GemmKind::kLinear: {
        OpCost op;
        op.phase = "linear";
        op.compute_cycles = g.macs() / fp16_rate;
        op.dram_bytes = 2.0 * g.stream_elements();
        ops.push_back(op);
        break;
      }
      case GemmKind::kQK: {
        const auto n = static_cast<double>(g.m);
        const auto dh = static_cast<double>(g.k);
        const double dense_macs = n * (cfg_.dense_col_fraction * n) * dh;
        const double sparse_macs = cfg_.sparse_density *
                                   (1.0 - cfg_.dense_col_fraction) * n * n *
                                   dh;
        const double kept = kept_frac * n * n;
        OpCost op;
        op.phase = "attn-score";
        op.compute_cycles =
            dense_macs / fp16_rate +
            sparse_macs / (fp16_rate * cfg_.sparse_efficiency);
        // softmax over kept entries + encoder pass before spilling
        op.vector_cycles = (3.0 + 1.0) * kept / lanes;
        op.dram_bytes = 2.0 * n * dh * 2.0  // Q, K FP16
                        + kept * 2.0 / cfg_.compression_ratio;  // map write
        ops.push_back(op);
        break;
      }
      case GemmKind::kAttnV: {
        const auto n = static_cast<double>(g.m);
        const auto dh = static_cast<double>(g.n);
        const double kept = kept_frac * n * n;
        const double dense_macs = (cfg_.dense_col_fraction * n) * n * dh;
        const double sparse_macs = cfg_.sparse_density *
                                   (1.0 - cfg_.dense_col_fraction) * n * n *
                                   dh;
        OpCost op;
        op.phase = "attn-v";
        op.compute_cycles =
            dense_macs / fp16_rate +
            sparse_macs / (fp16_rate * cfg_.sparse_efficiency);
        op.vector_cycles = kept / lanes;  // decoder pass
        op.dram_bytes = kept * 2.0 / cfg_.compression_ratio  // map read
                        + n * dh * 2.0 * 2.0;                // V in, O out
        ops.push_back(op);
        break;
      }
    }
  }

  for (const VectorOp& v : w.vectors) {
    if (v.kind == VectorKind::kSoftmax || v.kind == VectorKind::kReorder) {
      continue;
    }
    const auto e = static_cast<double>(v.elements);
    OpCost op;
    op.phase = "vector";
    op.vector_cycles =
        (v.kind == VectorKind::kLayerNorm ? 3.0
         : v.kind == VectorKind::kGelu    ? 2.0
                                          : 1.0) *
        e / lanes;
    op.dram_bytes = 2.0 * e * 2.0;
    ops.push_back(op);
  }
  return ops;
}

SimStats VitcodAccelerator::simulate_step(const Workload& workload) const {
  return OverlapModel(hw_).run(build_ops(workload));
}

SimStats VitcodAccelerator::simulate_video(const ModelConfig& model) const {
  const Workload w = Workload::build(model, /*include_reorder=*/false);
  SimStats stats = simulate_step(w);
  stats.scale(static_cast<double>(model.sampling_steps));
  return stats;
}

}  // namespace paro
