// Roofline model of the NVIDIA A100 running the stock FP16 pipeline
// (paper §V-A measures the real GPU; we substitute a calibrated roofline —
// DESIGN.md §2).
//
// Each GEMM kernel takes max(compute-time, memory-time); the unfused
// attention materialises the FP16 attention map in HBM (the paper's
// motivation: 56.50 GB of maps per block, attention = 67.93 % of latency).
// `map_passes` counts how often the N×N map crosses HBM per head
// (logits write, fused-softmax read+write amortised, AttnV read ≈ 3).
#pragma once

#include "model/workload.hpp"
#include "sim/resources.hpp"

namespace paro {

struct GpuModelConfig {
  /// HBM crossings of the N×N map per head: the logits are written once
  /// with the softmax fused into the epilogue, then read back for AttnV.
  /// Calibrated so the attention latency share matches the paper's
  /// measured 67.93 % (see EXPERIMENTS.md E8).
  double map_passes = 2.0;
};

/// Per-phase GPU timing of one diffusion step.
struct GpuStepTime {
  double linear_s = 0.0;
  double attention_s = 0.0;  ///< QKᵀ + softmax + AttnV incl. map traffic
  double vector_s = 0.0;     ///< LayerNorm / GELU / residual streams
  double total_s() const { return linear_s + attention_s + vector_s; }
  double attention_fraction() const {
    const double t = total_s();
    return t > 0.0 ? attention_s / t : 0.0;
  }
};

class GpuRoofline {
 public:
  explicit GpuRoofline(GpuResources gpu = {}, GpuModelConfig config = {});

  const GpuResources& gpu() const { return gpu_; }

  GpuStepTime simulate_step(const Workload& workload) const;
  /// Seconds for a full video (step × sampling steps).
  double simulate_video_seconds(const ModelConfig& model) const;
  GpuStepTime simulate_video_breakdown(const ModelConfig& model) const;

 private:
  double gemm_seconds(double macs, double bytes) const;

  GpuResources gpu_;
  GpuModelConfig cfg_;
};

}  // namespace paro
