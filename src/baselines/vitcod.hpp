// Performance model of ViTCoD (You et al., HPCA'23) under PARO's resource
// budget.
//
// ViTCoD polarizes the attention map offline into a "denser" region (a set
// of globally attended key columns, computed densely) and a "sparser"
// remainder (fixed mask, kept entries only), and runs an on-the-fly
// encoder/decoder that compresses the sparse map traffic.  The fixed masks
// avoid Sanger's online prediction pass and its per-row imbalance, but the
// map still round-trips DRAM (compressed) at video-scale token counts, and
// the compute stays FP16 — the two gaps PARO's quantized fused flow closes.
#pragma once

#include "model/workload.hpp"
#include "sim/overlap.hpp"
#include "sim/resources.hpp"

namespace paro {

struct VitcodConfig {
  /// ViTCoD's masks are FIXED offline; video-DiT attention varies with
  /// timestep and prompt, so quality-aligned static masks must keep far
  /// more than on static-image ViTs (paper §V-A aligns quality).
  double dense_col_fraction = 0.20;  ///< polarized "denser" columns
  double sparse_density = 0.55;      ///< kept fraction in the sparser region
  double sparse_efficiency = 0.75;   ///< PE utilisation on the sparse branch
  double compression_ratio = 1.15;   ///< encoder gain on high-entropy maps
  /// Effective kept fraction of all entries.
  double overall_density() const {
    return dense_col_fraction +
           (1.0 - dense_col_fraction) * sparse_density;
  }
};

class VitcodAccelerator {
 public:
  VitcodAccelerator(HwResources hw, VitcodConfig config = {});

  std::vector<OpCost> build_ops(const Workload& workload) const;
  SimStats simulate_step(const Workload& workload) const;
  SimStats simulate_video(const ModelConfig& model) const;

 private:
  HwResources hw_;
  VitcodConfig cfg_;
};

}  // namespace paro
