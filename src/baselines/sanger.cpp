#include "baselines/sanger.hpp"

#include "common/error.hpp"

namespace paro {

SangerAccelerator::SangerAccelerator(HwResources hw, SangerConfig config)
    : hw_(std::move(hw)), cfg_(config) {
  PARO_CHECK_MSG(cfg_.density > 0.0 && cfg_.density <= 1.0,
                 "density must be in (0,1]");
  PARO_CHECK_MSG(cfg_.pack_efficiency > 0.0 && cfg_.pack_efficiency <= 1.0,
                 "pack efficiency must be in (0,1]");
}

std::vector<OpCost> SangerAccelerator::build_ops(const Workload& w) const {
  std::vector<OpCost> ops;
  const double lanes = hw_.vector_lanes;
  const double fp16_rate = hw_.pe_macs_per_cycle * hw_.fp16_rate_factor;

  for (const GemmOp& g : w.gemms) {
    switch (g.kind) {
      case GemmKind::kLinear: {
        OpCost op;
        op.phase = "linear";
        op.compute_cycles = g.macs() / fp16_rate;
        op.dram_bytes = 2.0 * g.stream_elements();
        ops.push_back(op);
        break;
      }
      case GemmKind::kQK: {
        const auto n = static_cast<double>(g.m);
        const auto dh = static_cast<double>(g.k);
        const double kept = cfg_.density * n * n;

        // 1) dense low-bit prediction pass
        OpCost pred;
        pred.phase = "attn-predict";
        pred.compute_cycles =
            n * n * dh / (hw_.pe_macs_per_cycle * cfg_.prediction_rate);
        pred.vector_cycles = n * n / lanes;  // threshold + mask build
        pred.dram_bytes = 2.0 * n * dh * 0.5   // 4-bit Q, K
                          + n * n / 8.0;       // bitmask out
        ops.push_back(pred);

        // 2) sparse SDDMM (recompute kept logits at FP16), pack & split
        OpCost score;
        score.phase = "attn-score";
        score.compute_cycles =
            kept * dh / (fp16_rate * cfg_.pack_efficiency);
        score.vector_cycles = 3.0 * kept / lanes;  // softmax over survivors
        // packed sparse map (value + index) spilled to DRAM, plus inputs
        score.dram_bytes =
            2.0 * n * dh * 2.0   // Q, K FP16
            + n * n / 8.0        // bitmask in
            + kept * (2.0 + cfg_.index_bytes) /
                  cfg_.storage_efficiency;  // packed map write (padded)
        ops.push_back(score);
        break;
      }
      case GemmKind::kAttnV: {
        const auto n = static_cast<double>(g.m);
        const auto dh = static_cast<double>(g.n);
        const double kept = cfg_.density * n * n;
        OpCost av;
        av.phase = "attn-v";
        av.compute_cycles =
            kept * dh / (fp16_rate * cfg_.pack_efficiency);
        av.dram_bytes = kept * (2.0 + cfg_.index_bytes) /
                            cfg_.storage_efficiency      // map read back
                        + n * dh * 2.0 * 2.0;            // V in, O out
        ops.push_back(av);
        break;
      }
    }
  }

  for (const VectorOp& v : w.vectors) {
    if (v.kind == VectorKind::kSoftmax || v.kind == VectorKind::kReorder) {
      continue;  // softmax folded into attn-score; Sanger has no reorder
    }
    const auto e = static_cast<double>(v.elements);
    OpCost op;
    op.phase = "vector";
    op.vector_cycles =
        (v.kind == VectorKind::kLayerNorm ? 3.0
         : v.kind == VectorKind::kGelu    ? 2.0
                                          : 1.0) *
        e / lanes;
    op.dram_bytes = 2.0 * e * 2.0;
    ops.push_back(op);
  }
  return ops;
}

SimStats SangerAccelerator::simulate_step(const Workload& workload) const {
  return OverlapModel(hw_).run(build_ops(workload));
}

SimStats SangerAccelerator::simulate_video(const ModelConfig& model) const {
  const Workload w = Workload::build(model, /*include_reorder=*/false);
  SimStats stats = simulate_step(w);
  stats.scale(static_cast<double>(model.sampling_steps));
  return stats;
}

}  // namespace paro
