file(REMOVE_RECURSE
  "../examples/accelerator_sim"
  "../examples/accelerator_sim.pdb"
  "CMakeFiles/accelerator_sim.dir/accelerator_sim.cpp.o"
  "CMakeFiles/accelerator_sim.dir/accelerator_sim.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/accelerator_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
