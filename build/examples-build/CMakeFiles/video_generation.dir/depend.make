# Empty dependencies file for video_generation.
# This may be replaced when dependencies are built.
