file(REMOVE_RECURSE
  "../examples/video_generation"
  "../examples/video_generation.pdb"
  "CMakeFiles/video_generation.dir/video_generation.cpp.o"
  "CMakeFiles/video_generation.dir/video_generation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/video_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
