file(REMOVE_RECURSE
  "../examples/design_space"
  "../examples/design_space.pdb"
  "CMakeFiles/design_space.dir/design_space.cpp.o"
  "CMakeFiles/design_space.dir/design_space.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/design_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
