# Empty compiler generated dependencies file for paro_mixedprec.
# This may be replaced when dependencies are built.
