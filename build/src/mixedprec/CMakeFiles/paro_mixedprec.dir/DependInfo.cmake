
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mixedprec/allocator.cpp" "src/mixedprec/CMakeFiles/paro_mixedprec.dir/allocator.cpp.o" "gcc" "src/mixedprec/CMakeFiles/paro_mixedprec.dir/allocator.cpp.o.d"
  "/root/repo/src/mixedprec/global_alloc.cpp" "src/mixedprec/CMakeFiles/paro_mixedprec.dir/global_alloc.cpp.o" "gcc" "src/mixedprec/CMakeFiles/paro_mixedprec.dir/global_alloc.cpp.o.d"
  "/root/repo/src/mixedprec/sensitivity.cpp" "src/mixedprec/CMakeFiles/paro_mixedprec.dir/sensitivity.cpp.o" "gcc" "src/mixedprec/CMakeFiles/paro_mixedprec.dir/sensitivity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/quant/CMakeFiles/paro_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/paro_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/paro_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
