file(REMOVE_RECURSE
  "libparo_mixedprec.a"
)
