file(REMOVE_RECURSE
  "CMakeFiles/paro_mixedprec.dir/allocator.cpp.o"
  "CMakeFiles/paro_mixedprec.dir/allocator.cpp.o.d"
  "CMakeFiles/paro_mixedprec.dir/global_alloc.cpp.o"
  "CMakeFiles/paro_mixedprec.dir/global_alloc.cpp.o.d"
  "CMakeFiles/paro_mixedprec.dir/sensitivity.cpp.o"
  "CMakeFiles/paro_mixedprec.dir/sensitivity.cpp.o.d"
  "libparo_mixedprec.a"
  "libparo_mixedprec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paro_mixedprec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
