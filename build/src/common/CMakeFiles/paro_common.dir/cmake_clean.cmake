file(REMOVE_RECURSE
  "CMakeFiles/paro_common.dir/config.cpp.o"
  "CMakeFiles/paro_common.dir/config.cpp.o.d"
  "CMakeFiles/paro_common.dir/error.cpp.o"
  "CMakeFiles/paro_common.dir/error.cpp.o.d"
  "CMakeFiles/paro_common.dir/fixedpoint.cpp.o"
  "CMakeFiles/paro_common.dir/fixedpoint.cpp.o.d"
  "CMakeFiles/paro_common.dir/fp16.cpp.o"
  "CMakeFiles/paro_common.dir/fp16.cpp.o.d"
  "CMakeFiles/paro_common.dir/logging.cpp.o"
  "CMakeFiles/paro_common.dir/logging.cpp.o.d"
  "CMakeFiles/paro_common.dir/rng.cpp.o"
  "CMakeFiles/paro_common.dir/rng.cpp.o.d"
  "CMakeFiles/paro_common.dir/stats.cpp.o"
  "CMakeFiles/paro_common.dir/stats.cpp.o.d"
  "libparo_common.a"
  "libparo_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paro_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
