file(REMOVE_RECURSE
  "libparo_common.a"
)
