# Empty dependencies file for paro_common.
# This may be replaced when dependencies are built.
