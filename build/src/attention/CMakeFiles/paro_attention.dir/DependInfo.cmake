
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attention/calibration_io.cpp" "src/attention/CMakeFiles/paro_attention.dir/calibration_io.cpp.o" "gcc" "src/attention/CMakeFiles/paro_attention.dir/calibration_io.cpp.o.d"
  "/root/repo/src/attention/integer_path.cpp" "src/attention/CMakeFiles/paro_attention.dir/integer_path.cpp.o" "gcc" "src/attention/CMakeFiles/paro_attention.dir/integer_path.cpp.o.d"
  "/root/repo/src/attention/pipeline.cpp" "src/attention/CMakeFiles/paro_attention.dir/pipeline.cpp.o" "gcc" "src/attention/CMakeFiles/paro_attention.dir/pipeline.cpp.o.d"
  "/root/repo/src/attention/reference.cpp" "src/attention/CMakeFiles/paro_attention.dir/reference.cpp.o" "gcc" "src/attention/CMakeFiles/paro_attention.dir/reference.cpp.o.d"
  "/root/repo/src/attention/streaming.cpp" "src/attention/CMakeFiles/paro_attention.dir/streaming.cpp.o" "gcc" "src/attention/CMakeFiles/paro_attention.dir/streaming.cpp.o.d"
  "/root/repo/src/attention/synthetic.cpp" "src/attention/CMakeFiles/paro_attention.dir/synthetic.cpp.o" "gcc" "src/attention/CMakeFiles/paro_attention.dir/synthetic.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/reorder/CMakeFiles/paro_reorder.dir/DependInfo.cmake"
  "/root/repo/build/src/mixedprec/CMakeFiles/paro_mixedprec.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/paro_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/paro_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/paro_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
