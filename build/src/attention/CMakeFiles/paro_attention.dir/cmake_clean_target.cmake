file(REMOVE_RECURSE
  "libparo_attention.a"
)
