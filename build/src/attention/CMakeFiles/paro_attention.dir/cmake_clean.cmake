file(REMOVE_RECURSE
  "CMakeFiles/paro_attention.dir/calibration_io.cpp.o"
  "CMakeFiles/paro_attention.dir/calibration_io.cpp.o.d"
  "CMakeFiles/paro_attention.dir/integer_path.cpp.o"
  "CMakeFiles/paro_attention.dir/integer_path.cpp.o.d"
  "CMakeFiles/paro_attention.dir/pipeline.cpp.o"
  "CMakeFiles/paro_attention.dir/pipeline.cpp.o.d"
  "CMakeFiles/paro_attention.dir/reference.cpp.o"
  "CMakeFiles/paro_attention.dir/reference.cpp.o.d"
  "CMakeFiles/paro_attention.dir/streaming.cpp.o"
  "CMakeFiles/paro_attention.dir/streaming.cpp.o.d"
  "CMakeFiles/paro_attention.dir/synthetic.cpp.o"
  "CMakeFiles/paro_attention.dir/synthetic.cpp.o.d"
  "libparo_attention.a"
  "libparo_attention.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paro_attention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
