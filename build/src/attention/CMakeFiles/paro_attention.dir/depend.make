# Empty dependencies file for paro_attention.
# This may be replaced when dependencies are built.
