file(REMOVE_RECURSE
  "CMakeFiles/paro_reorder.dir/calibrate.cpp.o"
  "CMakeFiles/paro_reorder.dir/calibrate.cpp.o.d"
  "CMakeFiles/paro_reorder.dir/plan.cpp.o"
  "CMakeFiles/paro_reorder.dir/plan.cpp.o.d"
  "CMakeFiles/paro_reorder.dir/token_grid.cpp.o"
  "CMakeFiles/paro_reorder.dir/token_grid.cpp.o.d"
  "libparo_reorder.a"
  "libparo_reorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paro_reorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
