
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/reorder/calibrate.cpp" "src/reorder/CMakeFiles/paro_reorder.dir/calibrate.cpp.o" "gcc" "src/reorder/CMakeFiles/paro_reorder.dir/calibrate.cpp.o.d"
  "/root/repo/src/reorder/plan.cpp" "src/reorder/CMakeFiles/paro_reorder.dir/plan.cpp.o" "gcc" "src/reorder/CMakeFiles/paro_reorder.dir/plan.cpp.o.d"
  "/root/repo/src/reorder/token_grid.cpp" "src/reorder/CMakeFiles/paro_reorder.dir/token_grid.cpp.o" "gcc" "src/reorder/CMakeFiles/paro_reorder.dir/token_grid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/quant/CMakeFiles/paro_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/paro_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/paro_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
