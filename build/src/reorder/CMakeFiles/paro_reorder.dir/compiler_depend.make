# Empty compiler generated dependencies file for paro_reorder.
# This may be replaced when dependencies are built.
