file(REMOVE_RECURSE
  "libparo_reorder.a"
)
