# Empty dependencies file for paro_tensor.
# This may be replaced when dependencies are built.
