file(REMOVE_RECURSE
  "libparo_tensor.a"
)
