file(REMOVE_RECURSE
  "CMakeFiles/paro_tensor.dir/ops.cpp.o"
  "CMakeFiles/paro_tensor.dir/ops.cpp.o.d"
  "CMakeFiles/paro_tensor.dir/random.cpp.o"
  "CMakeFiles/paro_tensor.dir/random.cpp.o.d"
  "libparo_tensor.a"
  "libparo_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paro_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
