file(REMOVE_RECURSE
  "libparo_sim.a"
)
