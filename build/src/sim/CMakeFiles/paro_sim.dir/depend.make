# Empty dependencies file for paro_sim.
# This may be replaced when dependencies are built.
