
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cycle_engine.cpp" "src/sim/CMakeFiles/paro_sim.dir/cycle_engine.cpp.o" "gcc" "src/sim/CMakeFiles/paro_sim.dir/cycle_engine.cpp.o.d"
  "/root/repo/src/sim/dram_model.cpp" "src/sim/CMakeFiles/paro_sim.dir/dram_model.cpp.o" "gcc" "src/sim/CMakeFiles/paro_sim.dir/dram_model.cpp.o.d"
  "/root/repo/src/sim/overlap.cpp" "src/sim/CMakeFiles/paro_sim.dir/overlap.cpp.o" "gcc" "src/sim/CMakeFiles/paro_sim.dir/overlap.cpp.o.d"
  "/root/repo/src/sim/pe_array_sim.cpp" "src/sim/CMakeFiles/paro_sim.dir/pe_array_sim.cpp.o" "gcc" "src/sim/CMakeFiles/paro_sim.dir/pe_array_sim.cpp.o.d"
  "/root/repo/src/sim/resources.cpp" "src/sim/CMakeFiles/paro_sim.dir/resources.cpp.o" "gcc" "src/sim/CMakeFiles/paro_sim.dir/resources.cpp.o.d"
  "/root/repo/src/sim/tiling.cpp" "src/sim/CMakeFiles/paro_sim.dir/tiling.cpp.o" "gcc" "src/sim/CMakeFiles/paro_sim.dir/tiling.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/paro_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/paro_sim.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/quant/CMakeFiles/paro_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/paro_common.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/paro_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
