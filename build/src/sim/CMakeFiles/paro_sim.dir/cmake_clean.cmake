file(REMOVE_RECURSE
  "CMakeFiles/paro_sim.dir/cycle_engine.cpp.o"
  "CMakeFiles/paro_sim.dir/cycle_engine.cpp.o.d"
  "CMakeFiles/paro_sim.dir/dram_model.cpp.o"
  "CMakeFiles/paro_sim.dir/dram_model.cpp.o.d"
  "CMakeFiles/paro_sim.dir/overlap.cpp.o"
  "CMakeFiles/paro_sim.dir/overlap.cpp.o.d"
  "CMakeFiles/paro_sim.dir/pe_array_sim.cpp.o"
  "CMakeFiles/paro_sim.dir/pe_array_sim.cpp.o.d"
  "CMakeFiles/paro_sim.dir/resources.cpp.o"
  "CMakeFiles/paro_sim.dir/resources.cpp.o.d"
  "CMakeFiles/paro_sim.dir/tiling.cpp.o"
  "CMakeFiles/paro_sim.dir/tiling.cpp.o.d"
  "CMakeFiles/paro_sim.dir/trace.cpp.o"
  "CMakeFiles/paro_sim.dir/trace.cpp.o.d"
  "libparo_sim.a"
  "libparo_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paro_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
