
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/config.cpp" "src/model/CMakeFiles/paro_model.dir/config.cpp.o" "gcc" "src/model/CMakeFiles/paro_model.dir/config.cpp.o.d"
  "/root/repo/src/model/ddim.cpp" "src/model/CMakeFiles/paro_model.dir/ddim.cpp.o" "gcc" "src/model/CMakeFiles/paro_model.dir/ddim.cpp.o.d"
  "/root/repo/src/model/dit.cpp" "src/model/CMakeFiles/paro_model.dir/dit.cpp.o" "gcc" "src/model/CMakeFiles/paro_model.dir/dit.cpp.o.d"
  "/root/repo/src/model/workload.cpp" "src/model/CMakeFiles/paro_model.dir/workload.cpp.o" "gcc" "src/model/CMakeFiles/paro_model.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/attention/CMakeFiles/paro_attention.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/paro_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/paro_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/paro_common.dir/DependInfo.cmake"
  "/root/repo/build/src/reorder/CMakeFiles/paro_reorder.dir/DependInfo.cmake"
  "/root/repo/build/src/mixedprec/CMakeFiles/paro_mixedprec.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
