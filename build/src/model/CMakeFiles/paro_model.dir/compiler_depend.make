# Empty compiler generated dependencies file for paro_model.
# This may be replaced when dependencies are built.
