file(REMOVE_RECURSE
  "libparo_model.a"
)
