file(REMOVE_RECURSE
  "CMakeFiles/paro_model.dir/config.cpp.o"
  "CMakeFiles/paro_model.dir/config.cpp.o.d"
  "CMakeFiles/paro_model.dir/ddim.cpp.o"
  "CMakeFiles/paro_model.dir/ddim.cpp.o.d"
  "CMakeFiles/paro_model.dir/dit.cpp.o"
  "CMakeFiles/paro_model.dir/dit.cpp.o.d"
  "CMakeFiles/paro_model.dir/workload.cpp.o"
  "CMakeFiles/paro_model.dir/workload.cpp.o.d"
  "libparo_model.a"
  "libparo_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paro_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
