file(REMOVE_RECURSE
  "CMakeFiles/paro_quant.dir/affine.cpp.o"
  "CMakeFiles/paro_quant.dir/affine.cpp.o.d"
  "CMakeFiles/paro_quant.dir/bittable.cpp.o"
  "CMakeFiles/paro_quant.dir/bittable.cpp.o.d"
  "CMakeFiles/paro_quant.dir/blockwise.cpp.o"
  "CMakeFiles/paro_quant.dir/blockwise.cpp.o.d"
  "CMakeFiles/paro_quant.dir/granularity.cpp.o"
  "CMakeFiles/paro_quant.dir/granularity.cpp.o.d"
  "CMakeFiles/paro_quant.dir/linear_w8a8.cpp.o"
  "CMakeFiles/paro_quant.dir/linear_w8a8.cpp.o.d"
  "CMakeFiles/paro_quant.dir/sage.cpp.o"
  "CMakeFiles/paro_quant.dir/sage.cpp.o.d"
  "CMakeFiles/paro_quant.dir/sparse_attention.cpp.o"
  "CMakeFiles/paro_quant.dir/sparse_attention.cpp.o.d"
  "libparo_quant.a"
  "libparo_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paro_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
