file(REMOVE_RECURSE
  "libparo_quant.a"
)
