# Empty compiler generated dependencies file for paro_quant.
# This may be replaced when dependencies are built.
