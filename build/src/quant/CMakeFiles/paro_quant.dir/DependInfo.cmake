
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quant/affine.cpp" "src/quant/CMakeFiles/paro_quant.dir/affine.cpp.o" "gcc" "src/quant/CMakeFiles/paro_quant.dir/affine.cpp.o.d"
  "/root/repo/src/quant/bittable.cpp" "src/quant/CMakeFiles/paro_quant.dir/bittable.cpp.o" "gcc" "src/quant/CMakeFiles/paro_quant.dir/bittable.cpp.o.d"
  "/root/repo/src/quant/blockwise.cpp" "src/quant/CMakeFiles/paro_quant.dir/blockwise.cpp.o" "gcc" "src/quant/CMakeFiles/paro_quant.dir/blockwise.cpp.o.d"
  "/root/repo/src/quant/granularity.cpp" "src/quant/CMakeFiles/paro_quant.dir/granularity.cpp.o" "gcc" "src/quant/CMakeFiles/paro_quant.dir/granularity.cpp.o.d"
  "/root/repo/src/quant/linear_w8a8.cpp" "src/quant/CMakeFiles/paro_quant.dir/linear_w8a8.cpp.o" "gcc" "src/quant/CMakeFiles/paro_quant.dir/linear_w8a8.cpp.o.d"
  "/root/repo/src/quant/sage.cpp" "src/quant/CMakeFiles/paro_quant.dir/sage.cpp.o" "gcc" "src/quant/CMakeFiles/paro_quant.dir/sage.cpp.o.d"
  "/root/repo/src/quant/sparse_attention.cpp" "src/quant/CMakeFiles/paro_quant.dir/sparse_attention.cpp.o" "gcc" "src/quant/CMakeFiles/paro_quant.dir/sparse_attention.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/paro_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/paro_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
