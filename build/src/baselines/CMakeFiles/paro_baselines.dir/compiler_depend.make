# Empty compiler generated dependencies file for paro_baselines.
# This may be replaced when dependencies are built.
