file(REMOVE_RECURSE
  "libparo_baselines.a"
)
