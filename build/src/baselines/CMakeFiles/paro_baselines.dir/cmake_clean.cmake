file(REMOVE_RECURSE
  "CMakeFiles/paro_baselines.dir/gpu_roofline.cpp.o"
  "CMakeFiles/paro_baselines.dir/gpu_roofline.cpp.o.d"
  "CMakeFiles/paro_baselines.dir/sanger.cpp.o"
  "CMakeFiles/paro_baselines.dir/sanger.cpp.o.d"
  "CMakeFiles/paro_baselines.dir/vitcod.cpp.o"
  "CMakeFiles/paro_baselines.dir/vitcod.cpp.o.d"
  "libparo_baselines.a"
  "libparo_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paro_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
