file(REMOVE_RECURSE
  "libparo_metrics.a"
)
