# Empty compiler generated dependencies file for paro_metrics.
# This may be replaced when dependencies are built.
