file(REMOVE_RECURSE
  "CMakeFiles/paro_metrics.dir/video_metrics.cpp.o"
  "CMakeFiles/paro_metrics.dir/video_metrics.cpp.o.d"
  "libparo_metrics.a"
  "libparo_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paro_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
