# Empty dependencies file for paro_accel.
# This may be replaced when dependencies are built.
