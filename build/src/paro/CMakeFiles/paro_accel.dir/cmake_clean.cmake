file(REMOVE_RECURSE
  "CMakeFiles/paro_accel.dir/accelerator.cpp.o"
  "CMakeFiles/paro_accel.dir/accelerator.cpp.o.d"
  "CMakeFiles/paro_accel.dir/bit_distribution.cpp.o"
  "CMakeFiles/paro_accel.dir/bit_distribution.cpp.o.d"
  "CMakeFiles/paro_accel.dir/block_pipeline_sim.cpp.o"
  "CMakeFiles/paro_accel.dir/block_pipeline_sim.cpp.o.d"
  "CMakeFiles/paro_accel.dir/functional_units.cpp.o"
  "CMakeFiles/paro_accel.dir/functional_units.cpp.o.d"
  "CMakeFiles/paro_accel.dir/fused_attention_sim.cpp.o"
  "CMakeFiles/paro_accel.dir/fused_attention_sim.cpp.o.d"
  "libparo_accel.a"
  "libparo_accel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paro_accel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
