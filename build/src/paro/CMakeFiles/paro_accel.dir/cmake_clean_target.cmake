file(REMOVE_RECURSE
  "libparo_accel.a"
)
