file(REMOVE_RECURSE
  "CMakeFiles/paro_energy.dir/area_power.cpp.o"
  "CMakeFiles/paro_energy.dir/area_power.cpp.o.d"
  "CMakeFiles/paro_energy.dir/energy_model.cpp.o"
  "CMakeFiles/paro_energy.dir/energy_model.cpp.o.d"
  "libparo_energy.a"
  "libparo_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paro_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
