# Empty dependencies file for paro_energy.
# This may be replaced when dependencies are built.
