
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/energy/area_power.cpp" "src/energy/CMakeFiles/paro_energy.dir/area_power.cpp.o" "gcc" "src/energy/CMakeFiles/paro_energy.dir/area_power.cpp.o.d"
  "/root/repo/src/energy/energy_model.cpp" "src/energy/CMakeFiles/paro_energy.dir/energy_model.cpp.o" "gcc" "src/energy/CMakeFiles/paro_energy.dir/energy_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/paro_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/paro_common.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/paro_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/paro_tensor.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
