file(REMOVE_RECURSE
  "libparo_energy.a"
)
