# Empty compiler generated dependencies file for paro_cli.
# This may be replaced when dependencies are built.
