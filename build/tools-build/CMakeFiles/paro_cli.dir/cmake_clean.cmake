file(REMOVE_RECURSE
  "../tools/paro_cli"
  "../tools/paro_cli.pdb"
  "CMakeFiles/paro_cli.dir/paro_cli.cpp.o"
  "CMakeFiles/paro_cli.dir/paro_cli.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paro_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
