# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_tensor[1]_include.cmake")
include("/root/repo/build/tests/test_quant[1]_include.cmake")
include("/root/repo/build/tests/test_reorder[1]_include.cmake")
include("/root/repo/build/tests/test_mixedprec[1]_include.cmake")
include("/root/repo/build/tests/test_attention[1]_include.cmake")
include("/root/repo/build/tests/test_model[1]_include.cmake")
include("/root/repo/build/tests/test_metrics[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_energy[1]_include.cmake")
include("/root/repo/build/tests/test_paro[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_integration[1]_include.cmake")
