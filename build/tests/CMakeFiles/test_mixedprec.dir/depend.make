# Empty dependencies file for test_mixedprec.
# This may be replaced when dependencies are built.
