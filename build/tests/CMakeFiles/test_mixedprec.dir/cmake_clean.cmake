file(REMOVE_RECURSE
  "CMakeFiles/test_mixedprec.dir/mixedprec/test_allocator.cpp.o"
  "CMakeFiles/test_mixedprec.dir/mixedprec/test_allocator.cpp.o.d"
  "CMakeFiles/test_mixedprec.dir/mixedprec/test_global_alloc.cpp.o"
  "CMakeFiles/test_mixedprec.dir/mixedprec/test_global_alloc.cpp.o.d"
  "CMakeFiles/test_mixedprec.dir/mixedprec/test_sensitivity.cpp.o"
  "CMakeFiles/test_mixedprec.dir/mixedprec/test_sensitivity.cpp.o.d"
  "CMakeFiles/test_mixedprec.dir/mixedprec/test_sensitivity_validation.cpp.o"
  "CMakeFiles/test_mixedprec.dir/mixedprec/test_sensitivity_validation.cpp.o.d"
  "test_mixedprec"
  "test_mixedprec.pdb"
  "test_mixedprec[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mixedprec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
