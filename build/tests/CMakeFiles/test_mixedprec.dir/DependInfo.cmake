
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mixedprec/test_allocator.cpp" "tests/CMakeFiles/test_mixedprec.dir/mixedprec/test_allocator.cpp.o" "gcc" "tests/CMakeFiles/test_mixedprec.dir/mixedprec/test_allocator.cpp.o.d"
  "/root/repo/tests/mixedprec/test_global_alloc.cpp" "tests/CMakeFiles/test_mixedprec.dir/mixedprec/test_global_alloc.cpp.o" "gcc" "tests/CMakeFiles/test_mixedprec.dir/mixedprec/test_global_alloc.cpp.o.d"
  "/root/repo/tests/mixedprec/test_sensitivity.cpp" "tests/CMakeFiles/test_mixedprec.dir/mixedprec/test_sensitivity.cpp.o" "gcc" "tests/CMakeFiles/test_mixedprec.dir/mixedprec/test_sensitivity.cpp.o.d"
  "/root/repo/tests/mixedprec/test_sensitivity_validation.cpp" "tests/CMakeFiles/test_mixedprec.dir/mixedprec/test_sensitivity_validation.cpp.o" "gcc" "tests/CMakeFiles/test_mixedprec.dir/mixedprec/test_sensitivity_validation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/paro/CMakeFiles/paro_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/paro_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/paro_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/paro_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/paro_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/paro_model.dir/DependInfo.cmake"
  "/root/repo/build/src/attention/CMakeFiles/paro_attention.dir/DependInfo.cmake"
  "/root/repo/build/src/mixedprec/CMakeFiles/paro_mixedprec.dir/DependInfo.cmake"
  "/root/repo/build/src/reorder/CMakeFiles/paro_reorder.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/paro_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/paro_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/paro_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
