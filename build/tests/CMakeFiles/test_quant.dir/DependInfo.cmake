
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/quant/test_affine.cpp" "tests/CMakeFiles/test_quant.dir/quant/test_affine.cpp.o" "gcc" "tests/CMakeFiles/test_quant.dir/quant/test_affine.cpp.o.d"
  "/root/repo/tests/quant/test_bittable.cpp" "tests/CMakeFiles/test_quant.dir/quant/test_bittable.cpp.o" "gcc" "tests/CMakeFiles/test_quant.dir/quant/test_bittable.cpp.o.d"
  "/root/repo/tests/quant/test_blockwise.cpp" "tests/CMakeFiles/test_quant.dir/quant/test_blockwise.cpp.o" "gcc" "tests/CMakeFiles/test_quant.dir/quant/test_blockwise.cpp.o.d"
  "/root/repo/tests/quant/test_granularity.cpp" "tests/CMakeFiles/test_quant.dir/quant/test_granularity.cpp.o" "gcc" "tests/CMakeFiles/test_quant.dir/quant/test_granularity.cpp.o.d"
  "/root/repo/tests/quant/test_linear_w8a8.cpp" "tests/CMakeFiles/test_quant.dir/quant/test_linear_w8a8.cpp.o" "gcc" "tests/CMakeFiles/test_quant.dir/quant/test_linear_w8a8.cpp.o.d"
  "/root/repo/tests/quant/test_sage.cpp" "tests/CMakeFiles/test_quant.dir/quant/test_sage.cpp.o" "gcc" "tests/CMakeFiles/test_quant.dir/quant/test_sage.cpp.o.d"
  "/root/repo/tests/quant/test_sparse.cpp" "tests/CMakeFiles/test_quant.dir/quant/test_sparse.cpp.o" "gcc" "tests/CMakeFiles/test_quant.dir/quant/test_sparse.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/paro/CMakeFiles/paro_accel.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/paro_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/paro_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/paro_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/paro_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/paro_model.dir/DependInfo.cmake"
  "/root/repo/build/src/attention/CMakeFiles/paro_attention.dir/DependInfo.cmake"
  "/root/repo/build/src/mixedprec/CMakeFiles/paro_mixedprec.dir/DependInfo.cmake"
  "/root/repo/build/src/reorder/CMakeFiles/paro_reorder.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/paro_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/paro_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/paro_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
