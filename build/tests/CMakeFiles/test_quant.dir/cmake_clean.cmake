file(REMOVE_RECURSE
  "CMakeFiles/test_quant.dir/quant/test_affine.cpp.o"
  "CMakeFiles/test_quant.dir/quant/test_affine.cpp.o.d"
  "CMakeFiles/test_quant.dir/quant/test_bittable.cpp.o"
  "CMakeFiles/test_quant.dir/quant/test_bittable.cpp.o.d"
  "CMakeFiles/test_quant.dir/quant/test_blockwise.cpp.o"
  "CMakeFiles/test_quant.dir/quant/test_blockwise.cpp.o.d"
  "CMakeFiles/test_quant.dir/quant/test_granularity.cpp.o"
  "CMakeFiles/test_quant.dir/quant/test_granularity.cpp.o.d"
  "CMakeFiles/test_quant.dir/quant/test_linear_w8a8.cpp.o"
  "CMakeFiles/test_quant.dir/quant/test_linear_w8a8.cpp.o.d"
  "CMakeFiles/test_quant.dir/quant/test_sage.cpp.o"
  "CMakeFiles/test_quant.dir/quant/test_sage.cpp.o.d"
  "CMakeFiles/test_quant.dir/quant/test_sparse.cpp.o"
  "CMakeFiles/test_quant.dir/quant/test_sparse.cpp.o.d"
  "test_quant"
  "test_quant.pdb"
  "test_quant[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
