# Empty dependencies file for test_paro.
# This may be replaced when dependencies are built.
