file(REMOVE_RECURSE
  "CMakeFiles/test_paro.dir/paro/test_accelerator.cpp.o"
  "CMakeFiles/test_paro.dir/paro/test_accelerator.cpp.o.d"
  "CMakeFiles/test_paro.dir/paro/test_bit_distribution.cpp.o"
  "CMakeFiles/test_paro.dir/paro/test_bit_distribution.cpp.o.d"
  "CMakeFiles/test_paro.dir/paro/test_block_pipeline.cpp.o"
  "CMakeFiles/test_paro.dir/paro/test_block_pipeline.cpp.o.d"
  "CMakeFiles/test_paro.dir/paro/test_functional_units.cpp.o"
  "CMakeFiles/test_paro.dir/paro/test_functional_units.cpp.o.d"
  "CMakeFiles/test_paro.dir/paro/test_fused_attention_sim.cpp.o"
  "CMakeFiles/test_paro.dir/paro/test_fused_attention_sim.cpp.o.d"
  "test_paro"
  "test_paro.pdb"
  "test_paro[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_paro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
