file(REMOVE_RECURSE
  "CMakeFiles/test_attention.dir/attention/test_calibration_io.cpp.o"
  "CMakeFiles/test_attention.dir/attention/test_calibration_io.cpp.o.d"
  "CMakeFiles/test_attention.dir/attention/test_integer_path.cpp.o"
  "CMakeFiles/test_attention.dir/attention/test_integer_path.cpp.o.d"
  "CMakeFiles/test_attention.dir/attention/test_pipeline.cpp.o"
  "CMakeFiles/test_attention.dir/attention/test_pipeline.cpp.o.d"
  "CMakeFiles/test_attention.dir/attention/test_streaming.cpp.o"
  "CMakeFiles/test_attention.dir/attention/test_streaming.cpp.o.d"
  "CMakeFiles/test_attention.dir/attention/test_synthetic.cpp.o"
  "CMakeFiles/test_attention.dir/attention/test_synthetic.cpp.o.d"
  "test_attention"
  "test_attention.pdb"
  "test_attention[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_attention.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
