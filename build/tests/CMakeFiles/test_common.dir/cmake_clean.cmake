file(REMOVE_RECURSE
  "CMakeFiles/test_common.dir/common/test_config.cpp.o"
  "CMakeFiles/test_common.dir/common/test_config.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_fixedpoint.cpp.o"
  "CMakeFiles/test_common.dir/common/test_fixedpoint.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_fp16.cpp.o"
  "CMakeFiles/test_common.dir/common/test_fp16.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_logging.cpp.o"
  "CMakeFiles/test_common.dir/common/test_logging.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_rng.cpp.o"
  "CMakeFiles/test_common.dir/common/test_rng.cpp.o.d"
  "CMakeFiles/test_common.dir/common/test_stats.cpp.o"
  "CMakeFiles/test_common.dir/common/test_stats.cpp.o.d"
  "test_common"
  "test_common.pdb"
  "test_common[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
