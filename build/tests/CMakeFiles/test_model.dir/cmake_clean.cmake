file(REMOVE_RECURSE
  "CMakeFiles/test_model.dir/model/test_config.cpp.o"
  "CMakeFiles/test_model.dir/model/test_config.cpp.o.d"
  "CMakeFiles/test_model.dir/model/test_ddim.cpp.o"
  "CMakeFiles/test_model.dir/model/test_ddim.cpp.o.d"
  "CMakeFiles/test_model.dir/model/test_dit.cpp.o"
  "CMakeFiles/test_model.dir/model/test_dit.cpp.o.d"
  "CMakeFiles/test_model.dir/model/test_workload.cpp.o"
  "CMakeFiles/test_model.dir/model/test_workload.cpp.o.d"
  "test_model"
  "test_model.pdb"
  "test_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
