file(REMOVE_RECURSE
  "CMakeFiles/test_sim.dir/sim/test_cycle_engine.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_cycle_engine.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_dram_model.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_dram_model.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_overlap.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_overlap.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_pe_array.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_pe_array.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_tiling.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_tiling.cpp.o.d"
  "CMakeFiles/test_sim.dir/sim/test_trace.cpp.o"
  "CMakeFiles/test_sim.dir/sim/test_trace.cpp.o.d"
  "test_sim"
  "test_sim.pdb"
  "test_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
