# Empty dependencies file for bench_calibration_cost.
# This may be replaced when dependencies are built.
