file(REMOVE_RECURSE
  "../bench/bench_calibration_cost"
  "../bench/bench_calibration_cost.pdb"
  "CMakeFiles/bench_calibration_cost.dir/bench_calibration_cost.cpp.o"
  "CMakeFiles/bench_calibration_cost.dir/bench_calibration_cost.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_calibration_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
