file(REMOVE_RECURSE
  "../bench/bench_mixedprec"
  "../bench/bench_mixedprec.pdb"
  "CMakeFiles/bench_mixedprec.dir/bench_mixedprec.cpp.o"
  "CMakeFiles/bench_mixedprec.dir/bench_mixedprec.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_mixedprec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
