# Empty dependencies file for bench_mixedprec.
# This may be replaced when dependencies are built.
