file(REMOVE_RECURSE
  "../bench/bench_fig6b_ablation"
  "../bench/bench_fig6b_ablation.pdb"
  "CMakeFiles/bench_fig6b_ablation.dir/bench_fig6b_ablation.cpp.o"
  "CMakeFiles/bench_fig6b_ablation.dir/bench_fig6b_ablation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6b_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
