# Empty dependencies file for bench_fig8_patterns.
# This may be replaced when dependencies are built.
