file(REMOVE_RECURSE
  "../bench/bench_reorder_overhead"
  "../bench/bench_reorder_overhead.pdb"
  "CMakeFiles/bench_reorder_overhead.dir/bench_reorder_overhead.cpp.o"
  "CMakeFiles/bench_reorder_overhead.dir/bench_reorder_overhead.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reorder_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
