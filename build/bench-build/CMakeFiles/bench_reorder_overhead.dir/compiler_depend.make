# Empty compiler generated dependencies file for bench_reorder_overhead.
# This may be replaced when dependencies are built.
