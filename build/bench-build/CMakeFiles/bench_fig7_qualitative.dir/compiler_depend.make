# Empty compiler generated dependencies file for bench_fig7_qualitative.
# This may be replaced when dependencies are built.
