file(REMOVE_RECURSE
  "../bench/bench_fig7_qualitative"
  "../bench/bench_fig7_qualitative.pdb"
  "CMakeFiles/bench_fig7_qualitative.dir/bench_fig7_qualitative.cpp.o"
  "CMakeFiles/bench_fig7_qualitative.dir/bench_fig7_qualitative.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_qualitative.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
