file(REMOVE_RECURSE
  "../bench/bench_motivation"
  "../bench/bench_motivation.pdb"
  "CMakeFiles/bench_motivation.dir/bench_motivation.cpp.o"
  "CMakeFiles/bench_motivation.dir/bench_motivation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_motivation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
