file(REMOVE_RECURSE
  "../bench/bench_table2_area_power"
  "../bench/bench_table2_area_power.pdb"
  "CMakeFiles/bench_table2_area_power.dir/bench_table2_area_power.cpp.o"
  "CMakeFiles/bench_table2_area_power.dir/bench_table2_area_power.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_area_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
