# Empty dependencies file for bench_table2_area_power.
# This may be replaced when dependencies are built.
