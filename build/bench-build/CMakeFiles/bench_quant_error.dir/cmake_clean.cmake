file(REMOVE_RECURSE
  "../bench/bench_quant_error"
  "../bench/bench_quant_error.pdb"
  "CMakeFiles/bench_quant_error.dir/bench_quant_error.cpp.o"
  "CMakeFiles/bench_quant_error.dir/bench_quant_error.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_quant_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
