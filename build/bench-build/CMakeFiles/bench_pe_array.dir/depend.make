# Empty dependencies file for bench_pe_array.
# This may be replaced when dependencies are built.
