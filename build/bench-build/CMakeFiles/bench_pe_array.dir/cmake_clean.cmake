file(REMOVE_RECURSE
  "../bench/bench_pe_array"
  "../bench/bench_pe_array.pdb"
  "CMakeFiles/bench_pe_array.dir/bench_pe_array.cpp.o"
  "CMakeFiles/bench_pe_array.dir/bench_pe_array.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pe_array.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
