file(REMOVE_RECURSE
  "../bench/bench_table1_quality"
  "../bench/bench_table1_quality.pdb"
  "CMakeFiles/bench_table1_quality.dir/bench_table1_quality.cpp.o"
  "CMakeFiles/bench_table1_quality.dir/bench_table1_quality.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_quality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
