// §I motivation numbers (Fig. 1 / intro).
//
//  * "the attention map size for CogVideoX-5B requires 56.50 GB"
//    (per transformer block, FP16)
//  * "attention computation accounts for 67.93% of the overall latency on
//    an NVIDIA A100"
//  * MAC distribution between attention and linear layers.
#include <cstdio>

#include "baselines/gpu_roofline.hpp"
#include "bench_util.hpp"
#include "model/workload.hpp"

namespace paro {
namespace {

int run() {
  bench::banner("Motivation: attention-map footprint and latency share",
                "PARO §I — 56.50 GB maps per block; 67.93% of A100 latency");

  bench::TextTable table({"Model", "tokens", "map/head (GB)",
                          "maps/block (GB)", "paper", "attn MACs share",
                          "A100 attn latency share", "paper"});
  for (const ModelConfig& m :
       {ModelConfig::cogvideox_2b(), ModelConfig::cogvideox_5b()}) {
    const Workload w = Workload::build(m, false);
    const GpuRoofline gpu;
    const GpuStepTime t = gpu.simulate_video_breakdown(m);
    table.add_row(
        {m.name, std::to_string(m.tokens()),
         bench::fmt(m.attention_map_bytes_per_head_fp16() / 1e9, 2),
         bench::fmt(m.attention_map_bytes_per_block_fp16() / 1e9, 2),
         m.blocks == 42 ? "56.50" : "-",
         bench::fmt(100.0 * w.attention_macs() / w.total_macs(), 1) + "%",
         bench::fmt(100.0 * t.attention_fraction(), 2) + "%",
         m.blocks == 42 ? "67.93%" : "-"});
  }
  table.print();

  const ModelConfig m5b = ModelConfig::cogvideox_5b();
  const GpuRoofline gpu;
  const GpuStepTime t = gpu.simulate_video_breakdown(m5b);
  std::printf("\nA100 5B breakdown per video: linear %.1fs, attention %.1fs "
              "(incl. %.1f GB of FP16 map traffic per step), vector %.1fs\n",
              t.linear_s, t.attention_s,
              2.0 * static_cast<double>(m5b.tokens()) * m5b.tokens() *
                  2.0 * m5b.heads * m5b.blocks / 1e9,
              t.vector_s);
  std::printf("Paper: generating a 49-frame video takes ~1 minute per "
              "handful of steps on A100; the exact scale depends on the "
              "implementation — the SHARE is the reproduced quantity.\n");

  // §I/II context: why 3D full attention explodes relative to the
  // spatial-temporal scheme of earlier models (OpenSORA).
  std::printf("\nAttention scheme comparison (per diffusion step, 5B "
              "dims):\n");
  const Workload full = Workload::build(m5b, false);
  const Workload st = Workload::build_spatial_temporal(m5b);
  std::printf("  3D full attention      : %7.1f TMAC attention, map %6.2f "
              "GB/block\n",
              full.attention_macs() / 1e12,
              m5b.attention_map_bytes_per_block_fp16() / 1e9);
  const double st_map_gb =
      2.0 * static_cast<double>(m5b.heads) * 2.0 *
      (static_cast<double>(m5b.grid.frames) *
           (m5b.grid.height * m5b.grid.width + m5b.text_tokens) *
           (m5b.grid.height * m5b.grid.width + m5b.text_tokens) +
       static_cast<double>(m5b.grid.height * m5b.grid.width) *
           m5b.grid.frames * m5b.grid.frames) /
      1e9;
  std::printf("  spatial-temporal (OpenSORA-style): %7.1f TMAC attention, "
              "map %6.2f GB/block\n",
              st.attention_macs() / 1e12, st_map_gb);
  std::printf("  -> 3D full attention costs %.1fx the attention MACs and "
              "%.0fx the map storage; the quality gain is why CogVideoX "
              "pays it and why PARO is needed.\n",
              full.attention_macs() / st.attention_macs(),
              m5b.attention_map_bytes_per_block_fp16() / 1e9 / st_map_gb);
  return 0;
}

}  // namespace
}  // namespace paro

int main() { return paro::run(); }
