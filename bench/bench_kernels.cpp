// Micro-kernel benchmarks (google-benchmark) for the host-side reference
// implementations: GEMM, softmax, quantizers, reorder, LDZ, allocation.
// These time the SIMULATION substrate, not the modelled hardware — they
// exist to keep the quality experiments fast and to catch regressions.
#include <benchmark/benchmark.h>

#include <cstring>

#include "attention/pipeline.hpp"
#include "common/error.hpp"
#include "attention/reference.hpp"
#include "attention/synthetic.hpp"
#include "common/fixedpoint.hpp"
#include "mixedprec/allocator.hpp"
#include "quant/blockwise.hpp"
#include "quant/granularity.hpp"
#include "reorder/calibrate.hpp"
#include "tensor/ops.hpp"
#include "tensor/random.hpp"

namespace paro {
namespace {

void BM_MatmulNt(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const MatF a = random_normal(n, 64, rng);
  const MatF b = random_normal(n, 64, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul_nt(a, b));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n) *
                          static_cast<std::int64_t>(n) * 64);
}
BENCHMARK(BM_MatmulNt)->Arg(128)->Arg(256)->Arg(512);

void BM_SoftmaxRows(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const MatF logits = random_normal(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(softmax_rows(logits, 0.125F));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SoftmaxRows)->Arg(256)->Arg(512);

void BM_QuantizeRowsI8(benchmark::State& state) {
  Rng rng(3);
  const MatF m = random_normal(512, 64, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(quantize_rows_i8(m, 8));
  }
}
BENCHMARK(BM_QuantizeRowsI8);

void BM_BlockwiseQuant(benchmark::State& state) {
  const auto block = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  MatF m = random_uniform(512, 512, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fake_quant_blockwise(m, block, 4));
  }
}
BENCHMARK(BM_BlockwiseQuant)->Arg(16)->Arg(64);

void BM_ReorderMap(benchmark::State& state) {
  const TokenGrid grid(8, 8, 8);
  Rng rng(5);
  const MatF m = random_uniform(grid.num_tokens(), grid.num_tokens(), rng);
  const ReorderPlan plan = ReorderPlan::for_order(
      grid, {{Axis::kHeight, Axis::kWidth, Axis::kFrame}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.apply_map(m));
  }
}
BENCHMARK(BM_ReorderMap);

void BM_CalibratePlan(benchmark::State& state) {
  const TokenGrid grid(6, 6, 6);
  SyntheticHeadSpec spec;
  spec.locality_width = 0.012;
  Rng rng(6);
  const HeadQKV head = generate_head(grid, spec, 16, rng);
  const MatF map = attention_map(head.q, head.k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(calibrate_plan(map, grid, 8, 4));
  }
}
BENCHMARK(BM_CalibratePlan);

void BM_LdzTruncate(benchmark::State& state) {
  for (auto _ : state) {
    std::int64_t acc = 0;
    for (int v = -127; v <= 127; ++v) {
      acc += ldz_approximate(v, 2);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 255);
}
BENCHMARK(BM_LdzTruncate);

void BM_AllocateLagrangian(benchmark::State& state) {
  const auto blocks = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  SensitivityTable table(blocks);
  for (auto& e : table) {
    e.count = 64;
    double s = rng.uniform(0.5, 4.0);
    for (int b = 0; b < kNumBitChoices; ++b) {
      e.s[static_cast<std::size_t>(b)] = s;
      s *= 0.4;
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocate_lagrangian(table, 4.8));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(blocks));
}
BENCHMARK(BM_AllocateLagrangian)->Arg(1024)->Arg(16384);

void BM_QuantizedAttentionHead(benchmark::State& state) {
  const TokenGrid grid(6, 6, 6);
  SyntheticHeadSpec spec;
  spec.locality_width = 0.012;
  Rng rng(8);
  const HeadQKV head = generate_head(grid, spec, 16, rng);
  const QuantAttentionConfig cfg = config_paro_mp(4.8, 8);
  const HeadCalibration calib = calibrate_head(head.q, head.k, grid, cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        quantized_attention(head.q, head.k, head.v, calib, cfg));
  }
}
BENCHMARK(BM_QuantizedAttentionHead);

// Executor-agreement smoke (CI runs this one benchmark as a Release-mode
// regression gate).  Times the fused streaming executor against a
// materialized-oracle baseline computed once up front, verifies the two
// outputs are BITWISE identical — a mismatch throws, failing the binary
// loudly — and reports the streamed/materialized peak-working-set ratio
// and the skipped-tile fraction as counters.
void BM_StreamedVsMaterializedExecutor(benchmark::State& state) {
  const TokenGrid grid(6, 6, 6);
  SyntheticHeadSpec spec;
  spec.locality_width = 0.012;
  Rng rng(9);
  const HeadQKV head = generate_head(grid, spec, 32, rng);
  QuantAttentionConfig cfg = config_paro_mp(4.8, 8);
  cfg.output_bitwidth_aware = true;
  const HeadCalibration calib = calibrate_head(head.q, head.k, grid, cfg);

  QuantAttentionConfig oracle_cfg = cfg;
  oracle_cfg.executor = AttnExecutor::kMaterialized;
  const QuantAttentionResult oracle =
      quantized_attention(head.q, head.k, head.v, calib, oracle_cfg);

  QuantAttentionResult streamed;
  for (auto _ : state) {
    streamed = quantized_attention(head.q, head.k, head.v, calib, cfg);
    benchmark::DoNotOptimize(streamed);
  }

  if (!streamed.output.same_shape(oracle.output) ||
      std::memcmp(streamed.output.flat().data(), oracle.output.flat().data(),
                  oracle.output.flat().size() * sizeof(float)) != 0) {
    throw Error(
        "streamed executor diverged bitwise from the materialized oracle");
  }
  state.counters["peak_ws_ratio"] =
      static_cast<double>(streamed.exec.peak_bytes) /
      static_cast<double>(oracle.exec.peak_bytes);
  state.counters["tiles_skipped_frac"] =
      static_cast<double>(streamed.exec.tiles_skipped) /
      static_cast<double>(streamed.exec.tiles_total);
}
BENCHMARK(BM_StreamedVsMaterializedExecutor);

}  // namespace
}  // namespace paro
