// Micro-kernel benchmarks for the SIMD kernel layer (src/kernels/) plus the
// host-side simulation substrate: GEMM, softmax, quantizers, reorder, LDZ,
// allocation.  These time the SIMULATION substrate, not the modelled
// hardware — they exist to keep the quality experiments fast and to catch
// regressions.
//
// Two modes:
//   * google-benchmark (default): the BM_* registrations below, driven by
//     the usual --benchmark_* flags (CI's executor-agreement smoke uses
//     --benchmark_filter=StreamedVsMaterializedExecutor).
//   * --kernels_json=<path>: the per-kernel speedup harness.  Every kernel
//     is timed under PARO's scalar reference backend and under each
//     available vector ISA (forced via kernels::force_isa, same inputs),
//     and the results — GB/s, GOP/s, speedup vs scalar, and the ISA the
//     dispatcher would choose — are written as BENCH_kernels.json
//     (schema "paro.bench_kernels.v2": v1's fields plus a "build" metadata
//     block and a "flight_recorder" overhead measurement; tools/bench_diff
//     reads both versions).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "attention/fused_executor.hpp"
#include "attention/pipeline.hpp"
#include "attention/session.hpp"
#include "attention/reference.hpp"
#include "attention/synthetic.hpp"
#include "common/error.hpp"
#include "common/fixedpoint.hpp"
#include "common/thread_pool.hpp"
#include "kernels/isa.hpp"
#include "kernels/kernels.hpp"
#include "kernels/pack.hpp"
#include "mixedprec/allocator.hpp"
#include "obs/json.hpp"
#include "obs/ring_log.hpp"
#include "quant/bittable.hpp"
#include "quant/blockwise.hpp"
#include "quant/granularity.hpp"
#include "reorder/calibrate.hpp"
#include "tensor/ops.hpp"
#include "tensor/random.hpp"

namespace paro {
namespace {

// ---------------------------------------------------------------------------
// google-benchmark registrations (simulation substrate)
// ---------------------------------------------------------------------------

void BM_MatmulNt(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const MatF a = random_normal(n, 64, rng);
  const MatF b = random_normal(n, 64, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul_nt(a, b));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n) *
                          static_cast<std::int64_t>(n) * 64);
}
BENCHMARK(BM_MatmulNt)->Arg(128)->Arg(256)->Arg(512);

void BM_MatmulNtI8(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const QuantizedI8 a = quantize_rows_i8(random_normal(n, 64, rng), 8);
  const QuantizedI8 b = quantize_rows_i8(random_normal(n, 64, rng), 8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(matmul_nt_i8(a.codes, b.codes));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n) *
                          static_cast<std::int64_t>(n) * 64);
}
BENCHMARK(BM_MatmulNtI8)->Arg(256)->Arg(1024);

void BM_QkTileI8(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const std::size_t d = 64;
  Rng rng(1);
  const QuantizedI8 q = quantize_rows_i8(random_normal(n, d, rng), 8);
  const QuantizedI8 k = quantize_rows_i8(random_normal(n, d, rng), 8);
  std::vector<float> sq(n, 0.01F), sk(n, 0.01F), out(n * n);
  for (auto _ : state) {
    kernels::qk_tile_i8_scaled(q.codes.row(0).data(), d, n,
                               k.codes.row(0).data(), d, n, d, sq.data(),
                               sk.data(), out.data(), n);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n) *
                          static_cast<std::int64_t>(n) *
                          static_cast<std::int64_t>(d));
}
BENCHMARK(BM_QkTileI8)->Arg(256)->Arg(1024);

void BM_SoftmaxRows(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const MatF logits = random_normal(n, n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(softmax_rows(logits, 0.125F));
  }
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(n) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SoftmaxRows)->Arg(256)->Arg(512);

void BM_QuantizeRowsI8(benchmark::State& state) {
  Rng rng(3);
  const MatF m = random_normal(512, 64, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(quantize_rows_i8(m, 8));
  }
}
BENCHMARK(BM_QuantizeRowsI8);

void BM_BlockwiseQuant(benchmark::State& state) {
  const auto block = static_cast<std::size_t>(state.range(0));
  Rng rng(4);
  MatF m = random_uniform(512, 512, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fake_quant_blockwise(m, block, 4));
  }
}
BENCHMARK(BM_BlockwiseQuant)->Arg(16)->Arg(64);

void BM_ReorderMap(benchmark::State& state) {
  const TokenGrid grid(8, 8, 8);
  Rng rng(5);
  const MatF m = random_uniform(grid.num_tokens(), grid.num_tokens(), rng);
  const ReorderPlan plan = ReorderPlan::for_order(
      grid, {{Axis::kHeight, Axis::kWidth, Axis::kFrame}});
  for (auto _ : state) {
    benchmark::DoNotOptimize(plan.apply_map(m));
  }
}
BENCHMARK(BM_ReorderMap);

void BM_CalibratePlan(benchmark::State& state) {
  const TokenGrid grid(6, 6, 6);
  SyntheticHeadSpec spec;
  spec.locality_width = 0.012;
  Rng rng(6);
  const HeadQKV head = generate_head(grid, spec, 16, rng);
  const MatF map = attention_map(head.q, head.k);
  for (auto _ : state) {
    benchmark::DoNotOptimize(calibrate_plan(map, grid, 8, 4));
  }
}
BENCHMARK(BM_CalibratePlan);

void BM_LdzTruncate(benchmark::State& state) {
  for (auto _ : state) {
    std::int64_t acc = 0;
    for (int v = -127; v <= 127; ++v) {
      acc += ldz_approximate(v, 2);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(state.iterations() * 255);
}
BENCHMARK(BM_LdzTruncate);

void BM_AllocateLagrangian(benchmark::State& state) {
  const auto blocks = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  SensitivityTable table(blocks);
  for (auto& e : table) {
    e.count = 64;
    double s = rng.uniform(0.5, 4.0);
    for (int b = 0; b < kNumBitChoices; ++b) {
      e.s[static_cast<std::size_t>(b)] = s;
      s *= 0.4;
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(allocate_lagrangian(table, 4.8));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(blocks));
}
BENCHMARK(BM_AllocateLagrangian)->Arg(1024)->Arg(16384);

void BM_QuantizedAttentionHead(benchmark::State& state) {
  const TokenGrid grid(6, 6, 6);
  SyntheticHeadSpec spec;
  spec.locality_width = 0.012;
  Rng rng(8);
  const HeadQKV head = generate_head(grid, spec, 16, rng);
  const QuantAttentionConfig cfg = config_paro_mp(4.8, 8);
  const HeadCalibration calib = calibrate_head(head.q, head.k, grid, cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        quantized_attention(head.q, head.k, head.v, calib, cfg));
  }
}
BENCHMARK(BM_QuantizedAttentionHead);

// Executor-agreement smoke (CI runs this one benchmark as a Release-mode
// regression gate).  Times the fused streaming executor against a
// materialized-oracle baseline computed once up front, verifies the two
// outputs are BITWISE identical — a mismatch throws, failing the binary
// loudly — and reports the streamed/materialized peak-working-set ratio
// and the skipped-tile fraction as counters.
void BM_StreamedVsMaterializedExecutor(benchmark::State& state) {
  const TokenGrid grid(6, 6, 6);
  SyntheticHeadSpec spec;
  spec.locality_width = 0.012;
  Rng rng(9);
  const HeadQKV head = generate_head(grid, spec, 32, rng);
  QuantAttentionConfig cfg = config_paro_mp(4.8, 8);
  cfg.output_bitwidth_aware = true;
  const HeadCalibration calib = calibrate_head(head.q, head.k, grid, cfg);

  QuantAttentionConfig oracle_cfg = cfg;
  oracle_cfg.executor = AttnExecutor::kMaterialized;
  const QuantAttentionResult oracle =
      quantized_attention(head.q, head.k, head.v, calib, oracle_cfg);

  QuantAttentionResult streamed;
  for (auto _ : state) {
    streamed = quantized_attention(head.q, head.k, head.v, calib, cfg);
    benchmark::DoNotOptimize(streamed);
  }

  if (!streamed.output.same_shape(oracle.output) ||
      std::memcmp(streamed.output.flat().data(), oracle.output.flat().data(),
                  oracle.output.flat().size() * sizeof(float)) != 0) {
    throw Error(
        "streamed executor diverged bitwise from the materialized oracle");
  }
  state.counters["peak_ws_ratio"] =
      static_cast<double>(streamed.exec.peak_bytes) /
      static_cast<double>(oracle.exec.peak_bytes);
  state.counters["tiles_skipped_frac"] =
      static_cast<double>(streamed.exec.tiles_skipped) /
      static_cast<double>(streamed.exec.tiles_total);
}
BENCHMARK(BM_StreamedVsMaterializedExecutor);

// ---------------------------------------------------------------------------
// --kernels_json harness: scalar vs vector ISA speedups
// ---------------------------------------------------------------------------

/// One kernel case: `fn` runs a fixed amount of work (`ops` arithmetic
/// operations over `bytes` of traffic) whose backend is whatever
/// kernels::force_isa last selected.
struct KernelCase {
  std::string name;
  std::string shape;
  double ops;
  double bytes;
  std::function<void()> fn;
};

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// One timed block: `reps` back-to-back calls, per-call seconds.
double time_block(const std::function<void()>& fn, int reps) {
  const auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) fn();
  return seconds_since(t0) / reps;
}

/// Repetition count sized so one measured block lasts >= ~30 ms (single
/// repetition for already-long cases).  Also serves as the warm-up pass.
int calibrate_reps(const std::function<void()>& fn) {
  fn();  // warm caches and the dispatch pointer
  const double once = time_block(fn, 1);
  return once >= 0.03 ? 1 : static_cast<int>(0.03 / std::max(once, 1e-7)) + 1;
}

/// End-to-end fused streaming attention at N=4096, d=64 under a caller-
/// provided OBA BitTable — the packed QK^T path, softmax, blockwise map
/// quant, and AttnV, exactly as the executor runs them.  `avg_bits` is the
/// table's average (stamped into the calibration for bookkeeping only).
KernelCase fused_attention_case_with(std::string name, std::string shape,
                                     BitTable table, double avg_bits) {
  const std::size_t n = 4096, d = 64;
  Rng rng(11);
  auto q = std::make_shared<MatF>(random_normal(n, d, rng));
  auto k = std::make_shared<MatF>(random_normal(n, d, rng));
  auto v = std::make_shared<MatF>(random_normal(n, d, rng));
  auto calib = std::make_shared<HeadCalibration>();
  calib->plan = ReorderPlan::identity(n);
  calib->bit_table = std::move(table);
  calib->planned_avg_bits = avg_bits;
  QuantAttentionConfig cfg;
  cfg.map_scheme = AttnMapScheme::kBlockwise;
  cfg.map_bits = 8;
  cfg.block = 64;
  cfg.use_reorder = false;
  cfg.output_bitwidth_aware = true;
  cfg.executor = AttnExecutor::kStreamed;
  KernelCase c;
  c.name = std::move(name);
  c.shape = std::move(shape);
  c.ops = 2.0 * n * n * d * 2;  // QK^T + AttnV MAC+add
  c.bytes = static_cast<double>(n) * n * sizeof(float);
  c.fn = [q, k, v, calib, cfg] {
    benchmark::DoNotOptimize(
        fused_quantized_attention(*q, *k, *v, *calib, cfg));
  };
  return c;
}

KernelCase fused_attention_case() {
  const std::size_t n = 4096;
  return fused_attention_case_with("fused_attention",
                                   "n=4096 d=64 block=64 oba4",
                                   BitTable(BlockGrid(n, n, 64), 4), 4.0);
}

/// Uniform INT8 baseline for the mixed-precision comparison below: every
/// tile takes the raw-codes QK^T path, no packing, no skips.
KernelCase fused_attention_i8_case() {
  const std::size_t n = 4096;
  return fused_attention_case_with("fused_attention_i8",
                                   "n=4096 d=64 block=64 oba8",
                                   BitTable(BlockGrid(n, n, 64), 8), 8.0);
}

/// PARO's operating point: a mixed table averaging 4.8 bits/tile (the
/// paper's B=4.8 budget), with 8/4/2/0-bit classes interleaved so the
/// packed sub-byte kernels, the raw int8 path, and the 0-bit skip all see
/// realistic shares.  bench_diff's b48_max gate asserts this case beats
/// fused_attention_i8 — the headline claim that mixed precision with
/// packed compute is FASTER than uniform INT8, not just smaller.
KernelCase fused_attention_b48_case() {
  const std::size_t n = 4096;
  BitTable table(BlockGrid(n, n, 64), 8);
  constexpr int kPattern[10] = {8, 8, 8, 8, 4, 4, 4, 2, 2, 0};  // avg 4.8
  const std::size_t tiles = table.grid().num_blocks();
  for (std::size_t i = 0; i < tiles; ++i) {
    table.set_bits_flat(i, kPattern[i % 10]);
  }
  return fused_attention_case_with("fused_attention_b48",
                                   "n=4096 d=64 block=64 oba mixed b=4.8",
                                   std::move(table), 4.8);
}

/// The same end-to-end shape through the session executor: a warm
/// SessionContext makes every iteration after the first malloc-free
/// (retained workspaces + arena scratch), so steady/cold is the measured
/// value of the zero-allocation steady state.  bench_diff gates the ratio
/// within one report via steady_max=.
KernelCase fused_attention_steady_case() {
  const std::size_t n = 4096, d = 64;
  Rng rng(11);
  auto q = std::make_shared<MatF>(random_normal(n, d, rng));
  auto k = std::make_shared<MatF>(random_normal(n, d, rng));
  auto v = std::make_shared<MatF>(random_normal(n, d, rng));
  auto calib = std::make_shared<HeadCalibration>();
  calib->plan = ReorderPlan::identity(n);
  calib->bit_table = BitTable(BlockGrid(n, n, 64), 4);
  calib->planned_avg_bits = 4.0;
  QuantAttentionConfig cfg;
  cfg.map_scheme = AttnMapScheme::kBlockwise;
  cfg.map_bits = 8;
  cfg.block = 64;
  cfg.use_reorder = false;
  cfg.output_bitwidth_aware = true;
  cfg.executor = AttnExecutor::kStreamed;
  auto session = std::make_shared<SessionContext>();
  KernelCase c;
  c.name = "fused_attention_steady";
  c.shape = "n=4096 d=64 block=64 oba4 warm-session";
  c.ops = 2.0 * n * n * d * 2;
  c.bytes = static_cast<double>(n) * n * sizeof(float);
  c.fn = [q, k, v, calib, cfg, session] {
    session->begin_step();
    benchmark::DoNotOptimize(fused_quantized_attention_session(
        *q, *k, *v, *calib, cfg, *session, 0, 0, nullptr));
  };
  return c;
}

std::vector<KernelCase> build_cases() {
  std::vector<KernelCase> cases;
  Rng rng(10);

  {  // int8 GEMM through the cache-blocked tile kernel
    const std::size_t m = 2048, n = 2048, kk = 64;
    auto a = std::make_shared<QuantizedI8>(
        quantize_rows_i8(random_normal(m, kk, rng), 8));
    auto b = std::make_shared<QuantizedI8>(
        quantize_rows_i8(random_normal(n, kk, rng), 8));
    auto c32 = std::make_shared<std::vector<std::int32_t>>(m * n);
    KernelCase c;
    c.name = "matmul_nt_i8_block";
    c.shape = "m=2048 n=2048 k=64";
    c.ops = 2.0 * m * n * kk;
    c.bytes = static_cast<double>(m * kk + n * kk + m * n * 4);
    c.fn = [a, b, c32, m, n, kk] {
      kernels::matmul_nt_i8_block(a->codes.row(0).data(), kk, m,
                                  b->codes.row(0).data(), kk, n, kk,
                                  c32->data(), n);
      benchmark::DoNotOptimize(c32->data());
    };
    cases.push_back(std::move(c));
  }
  {  // scaled QK^T tile kernel (the fused executor's pass-1 workhorse)
    const std::size_t n = 1024, d = 64;
    auto q = std::make_shared<QuantizedI8>(
        quantize_rows_i8(random_normal(n, d, rng), 8));
    auto k = std::make_shared<QuantizedI8>(
        quantize_rows_i8(random_normal(n, d, rng), 8));
    auto sq = std::make_shared<std::vector<float>>(n, 0.01F);
    auto out = std::make_shared<std::vector<float>>(n * n);
    KernelCase c;
    c.name = "qk_tile_i8_scaled";
    c.shape = "q_rows=1024 k_rows=1024 d=64";
    c.ops = 2.0 * n * n * d;
    c.bytes = static_cast<double>(2 * n * d + n * n * 4);
    c.fn = [q, k, sq, out, n, d] {
      kernels::qk_tile_i8_scaled(q->codes.row(0).data(), d, n,
                                 k->codes.row(0).data(), d, n, d, sq->data(),
                                 sq->data(), out->data(), n);
      benchmark::DoNotOptimize(out->data());
    };
    cases.push_back(std::move(c));
  }
  {  // packed sub-byte QK^T tile kernels (in-register unpack, no scratch)
    const std::size_t n = 1024, d = 64;
    auto q = std::make_shared<QuantizedI8>(
        quantize_rows_i8(random_normal(n, d, rng), 8));
    const QuantizedI8 kq = quantize_rows_i8(random_normal(n, d, rng), 8);
    auto sq = std::make_shared<std::vector<float>>(n, 0.01F);
    for (const int bits : {4, 2}) {
      auto packed = std::make_shared<kernels::PackedLdzK>();
      packed->build(kq.codes.row(0).data(), n, d, {bits});
      auto out = std::make_shared<std::vector<float>>(n * n);
      KernelCase c;
      c.name = bits == 4 ? "qk_tile_i4p" : "qk_tile_i2q";
      c.shape = "q_rows=1024 k_rows=1024 d=64";
      c.ops = 2.0 * n * n * d;
      c.bytes = static_cast<double>(n * d +
                                    n * packed->packed_row_bytes(bits) +
                                    n * n * 4);
      c.fn = [q, packed, sq, out, n, d, bits] {
        const kernels::PackedLdzK::PlaneView pv = packed->plane(bits);
        auto* kernel = bits == 4 ? &kernels::qk_tile_i4p_scaled
                                 : &kernels::qk_tile_i2q_scaled;
        kernel(q->codes.row(0).data(), d, n, pv.mag, pv.mag_stride, pv.ss,
               pv.ss_stride, n, d, sq->data(), sq->data(), out->data(), n);
        benchmark::DoNotOptimize(out->data());
      };
      cases.push_back(std::move(c));
    }
  }
  {  // FP fallback dot rows
    const std::size_t n = 4096, d = 64;
    auto a = std::make_shared<MatF>(random_normal(1, d, rng));
    auto b = std::make_shared<MatF>(random_normal(n, d, rng));
    auto out = std::make_shared<std::vector<float>>(n);
    KernelCase c;
    c.name = "nt_dot_f32_row";
    c.shape = "rows=4096 d=64";
    c.ops = 2.0 * n * d;
    c.bytes = static_cast<double>((n * d + d + n) * 4);
    c.fn = [a, b, out, n, d] {
      kernels::nt_dot_f32_row(a->row(0).data(), b->row(0).data(), d, n, d,
                              out->data());
      benchmark::DoNotOptimize(out->data());
    };
    cases.push_back(std::move(c));
  }
  {  // AttnV accumulation
    const std::size_t n = 4096, dv = 64;
    auto w = std::make_shared<std::vector<float>>(n, 1.0F / 4096.0F);
    auto v = std::make_shared<MatF>(random_normal(n, dv, rng));
    auto out = std::make_shared<std::vector<float>>(dv, 0.0F);
    KernelCase c;
    c.name = "attnv_accum";
    c.shape = "rows=4096 dv=64";
    c.ops = 2.0 * n * dv;
    c.bytes = static_cast<double>((n * dv + n + dv) * 4);
    c.fn = [w, v, out, n, dv] {
      std::fill(out->begin(), out->end(), 0.0F);
      kernels::attnv_accum(w->data(), n, v->row(0).data(), dv, dv,
                           out->data());
      benchmark::DoNotOptimize(out->data());
    };
    cases.push_back(std::move(c));
  }

  const std::size_t big = std::size_t{1} << 20;
  auto fdata = std::make_shared<std::vector<float>>(big);
  {
    Rng r2(12);
    for (float& x : *fdata) x = static_cast<float>(r2.uniform(-4.0, 4.0));
  }
  auto fout = std::make_shared<std::vector<float>>(big);
  kernels::QuantTransform t8;
  t8.scale = 0.03125F;
  t8.qlo = -127;
  t8.qhi = 127;

  auto elementwise = [&](std::string name, double ops_per, double bytes_per,
                         std::function<void()> fn) {
    KernelCase c;
    c.name = std::move(name);
    c.shape = "n=1Mi";
    c.ops = ops_per * static_cast<double>(big);
    c.bytes = bytes_per * static_cast<double>(big);
    c.fn = std::move(fn);
    cases.push_back(std::move(c));
  };

  elementwise("row_max_scaled", 2.0, 4.0, [fdata, big] {
    benchmark::DoNotOptimize(
        kernels::row_max_scaled(fdata->data(), big, 0.125F, 0.0F));
  });
  elementwise("minmax_f32", 2.0, 4.0, [fdata, big] {
    float lo = 0.0F, hi = 0.0F;
    kernels::minmax_f32(fdata->data(), big, &lo, &hi);
    benchmark::DoNotOptimize(lo);
  });
  elementwise("absmax_f32", 2.0, 4.0, [fdata, big] {
    benchmark::DoNotOptimize(kernels::absmax_f32(fdata->data(), big));
  });
  elementwise("fake_quant_f32", 4.0, 8.0, [fdata, fout, big, t8] {
    kernels::fake_quant_f32(fdata->data(), fout->data(), big, t8);
    benchmark::DoNotOptimize(fout->data());
  });

  auto i8out = std::make_shared<std::vector<std::int8_t>>(big);
  elementwise("quantize_i8", 3.0, 5.0, [fdata, i8out, big, t8] {
    kernels::quantize_i8(fdata->data(), i8out->data(), big, t8);
    benchmark::DoNotOptimize(i8out->data());
  });
  elementwise("dequant_i8", 1.0, 5.0, [i8out, fout, big] {
    kernels::dequant_i8(i8out->data(), fout->data(), big, 0.03125F);
    benchmark::DoNotOptimize(fout->data());
  });
  {
    auto acc = std::make_shared<std::vector<std::int32_t>>(big, 1234);
    auto scales = std::make_shared<std::vector<float>>(big, 0.01F);
    elementwise("dequant_i32_scaled", 2.0, 12.0,
                [acc, scales, fout, big] {
                  kernels::dequant_i32_scaled(acc->data(), big, 0.02F,
                                              scales->data(), fout->data());
                  benchmark::DoNotOptimize(fout->data());
                });
  }
  {
    auto dst = std::make_shared<std::vector<std::int8_t>>(big);
    elementwise("ldz_truncate_i8", 4.0, 2.0, [i8out, dst, big] {
      kernels::ldz_truncate_i8(i8out->data(), dst->data(), big, 4);
      benchmark::DoNotOptimize(dst->data());
    });
    for (const int bits : {4, 2}) {
      auto mag = std::make_shared<std::vector<std::uint8_t>>(
          kernels::ldz_mag_bytes(big, bits), 0);
      auto ss = std::make_shared<std::vector<std::uint8_t>>(
          kernels::ldz_signshift_bytes(big), 0);
      kernels::ldz_truncate_i8(i8out->data(), dst->data(), big, bits);
      kernels::ldz_pack(dst->data(), big, bits, mag->data(), ss->data());
      elementwise("ldz_unpack_" + std::to_string(bits) + "b", 4.0, 1.5,
                  [mag, ss, dst, big, bits] {
                    kernels::ldz_unpack(mag->data(), ss->data(), big, bits,
                                        dst->data());
                    benchmark::DoNotOptimize(dst->data());
                  });
    }
  }

  // Gated ratio partners sit adjacent so one clean window in an
  // interleaved round covers both sides of each ratio.
  cases.push_back(fused_attention_case());
  cases.push_back(fused_attention_steady_case());
  cases.push_back(fused_attention_i8_case());
  cases.push_back(fused_attention_b48_case());
  return cases;
}

/// Compiler identity baked in at build time (schema v2 "build" block) —
/// bench_diff warns when two reports come from different compilers.
std::string compiler_id() {
#if defined(__clang__)
  return std::string("clang ") + __clang_version__;
#elif defined(__GNUC__)
  return std::string("gcc ") + __VERSION__;
#else
  return "unknown";
#endif
}

std::string build_flags() {
#ifdef PARO_BENCH_CXX_FLAGS
  return PARO_BENCH_CXX_FLAGS;
#else
  std::string f;
#ifdef __OPTIMIZE__
  f += "optimized";
#endif
#ifdef NDEBUG
  f += f.empty() ? "NDEBUG" : " NDEBUG";
#endif
  return f;
#endif
}

int run_kernel_harness(const std::string& json_path) {
  set_global_threads(1);  // isolate SIMD effect: same thread count per ISA
  const std::vector<kernels::Isa> isas = kernels::available_isas();
  const kernels::Isa chosen = isas.front();
  std::printf("kernel speedup harness: chosen ISA %s, candidates:",
              kernels::isa_name(chosen));
  for (const auto isa : isas) std::printf(" %s", kernels::isa_name(isa));
  std::printf("\n");

  std::vector<KernelCase> cases = build_cases();
  // seconds[case][isa index]
  std::vector<std::vector<double>> seconds(cases.size(),
                                           std::vector<double>(isas.size()));
  // Rounds are interleaved round-robin across cases (A B C... A B C...)
  // rather than completing one case before the next: bench_diff gates
  // intra-report ratios (steady/cold, b48/i8), and on a shared host a
  // burst of interference that lands entirely inside one case's rounds
  // would skew the ratio by 10%+.  Interference is strictly additive, so
  // the per-case minimum over enough rounds recovers the clean time;
  // measured bursts here last ~0.5-1.5 s with a clean-round probability
  // around 1-in-4 under load, so the chosen ISA (the only one the ratio
  // gates read) gets 12 rounds and the rest — gated only by the loose
  // speedup_vs_scalar tolerance — get 5.
  for (std::size_t ii = 0; ii < isas.size(); ++ii) {
    kernels::force_isa(isas[ii]);
    const int rounds = ii == 0 ? 12 : 5;
    std::vector<int> reps(cases.size());
    for (std::size_t c = 0; c < cases.size(); ++c) {
      reps[c] = calibrate_reps(cases[c].fn);
      seconds[c][ii] = std::numeric_limits<double>::infinity();
    }
    for (int round = 0; round < rounds; ++round) {
      for (std::size_t c = 0; c < cases.size(); ++c) {
        seconds[c][ii] =
            std::min(seconds[c][ii], time_block(cases[c].fn, reps[c]));
      }
    }
    for (std::size_t c = 0; c < cases.size(); ++c) {
      std::printf("  %-20s %-8s %10.3f ms\n", cases[c].name.c_str(),
                  kernels::isa_name(isas[ii]), seconds[c][ii] * 1e3);
    }
  }
  kernels::reset_isa();

  // Flight-recorder overhead on the end-to-end fused attention case under
  // the dispatch-chosen backend: the ISSUE's acceptance gate is <5%
  // steady-state cost with recording enabled (rings wrap; no allocation).
  // Off/on rounds alternate and each state keeps its minimum, for the
  // same burst-interference reason as the main sweep — a gate this tight
  // cannot survive one contaminated side of the pair.
  const KernelCase fr_case = fused_attention_case();
  obs::FlightRecorder::global().reset();
  fr_case.fn();  // warm
  double fr_disabled_s = std::numeric_limits<double>::infinity();
  double fr_enabled_s = std::numeric_limits<double>::infinity();
  for (int round = 0; round < 8; ++round) {
    obs::FlightRecorder::global().set_enabled(false);
    fr_disabled_s = std::min(fr_disabled_s, time_block(fr_case.fn, 1));
    obs::FlightRecorder::global().set_enabled(true);
    fr_enabled_s = std::min(fr_enabled_s, time_block(fr_case.fn, 1));
  }
  obs::FlightRecorder::global().set_enabled(false);
  const double fr_overhead = fr_enabled_s / fr_disabled_s - 1.0;
  std::printf("flight recorder on %s: %.3f ms off, %.3f ms on "
              "(%+.2f%% overhead)\n",
              fr_case.name.c_str(), fr_disabled_s * 1e3, fr_enabled_s * 1e3,
              100.0 * fr_overhead);

  const std::size_t scalar_index = isas.size() - 1;  // scalar is always last
  std::ofstream os(json_path);
  if (!os) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  obs::JsonWriter w(os, 2);
  w.begin_object();
  w.kv("schema", "paro.bench_kernels.v2");
  w.kv("chosen_isa", kernels::isa_name(chosen));
  w.key("available_isas").begin_array();
  for (const auto isa : isas) w.value(kernels::isa_name(isa));
  w.end_array();
  w.kv("threads", std::uint64_t{1});
  // v2: machine/build provenance, so trajectory comparisons can detect
  // apples-to-oranges diffs (bench_diff warns on a compiler mismatch).
  w.key("build").begin_object();
  w.kv("compiler", compiler_id());
  w.kv("flags", build_flags());
  w.kv("threads", std::uint64_t{1});
  w.key("isas").begin_array();
  for (const auto isa : isas) w.value(kernels::isa_name(isa));
  w.end_array();
  w.end_object();
  // v2: steady-state flight-recorder cost on the fused attention case.
  w.key("flight_recorder").begin_object();
  w.kv("case", fr_case.name);
  w.kv("disabled_seconds", fr_disabled_s);
  w.kv("enabled_seconds", fr_enabled_s);
  w.kv("overhead_frac", fr_overhead);
  w.end_object();
  w.key("kernels").begin_array();
  for (std::size_t c = 0; c < cases.size(); ++c) {
    w.begin_object();
    w.kv("name", cases[c].name);
    w.kv("shape", cases[c].shape);
    w.kv("scalar_seconds", seconds[c][scalar_index]);
    w.key("isas").begin_array();
    for (std::size_t ii = 0; ii < isas.size(); ++ii) {
      const double s = seconds[c][ii];
      w.begin_object();
      w.kv("isa", kernels::isa_name(isas[ii]));
      w.kv("seconds", s);
      w.kv("gops", cases[c].ops / s * 1e-9);
      w.kv("gbps", cases[c].bytes / s * 1e-9);
      w.kv("speedup_vs_scalar", seconds[c][scalar_index] / s);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  os << "\n";
  std::printf("wrote %s\n", json_path.c_str());

  // Headline ratios (the ISSUE's acceptance targets) to stdout.
  double i8_s = 0.0, b48_s = 0.0;
  for (std::size_t c = 0; c < cases.size(); ++c) {
    if (cases[c].name == "matmul_nt_i8_block" ||
        cases[c].name == "fused_attention") {
      std::printf("%s: %s %.2fx vs scalar\n", cases[c].name.c_str(),
                  kernels::isa_name(chosen),
                  seconds[c][scalar_index] / seconds[c][0]);
    }
    if (cases[c].name == "fused_attention_i8") i8_s = seconds[c][0];
    if (cases[c].name == "fused_attention_b48") b48_s = seconds[c][0];
  }
  if (i8_s > 0.0 && b48_s > 0.0) {
    std::printf("mixed precision B=4.8 vs uniform INT8: %.3f ms vs %.3f ms "
                "(b48/i8 %.3f, bench_diff gates <= b48_max)\n", b48_s * 1e3,
                i8_s * 1e3, b48_s / i8_s);
  }
  return 0;
}

}  // namespace
}  // namespace paro

int main(int argc, char** argv) {
  std::string kernels_json;
  std::vector<char*> passthrough;
  for (int i = 0; i < argc; ++i) {
    const std::string_view arg = argv[i];
    constexpr std::string_view kFlag = "--kernels_json=";
    if (arg.rfind(kFlag, 0) == 0) {
      kernels_json = std::string(arg.substr(kFlag.size()));
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!kernels_json.empty()) {
    return paro::run_kernel_harness(kernels_json);
  }
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pass_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
