// Table I — algorithm performance of text-to-video generation.
//
// Regenerates the paper's quality comparison on the synthetic video-DiT
// stand-in (DESIGN.md §2): every method runs the same DDIM sampling from
// the same seed; metrics are the proxy equivalents of FVD-FP16 (↓),
// CLIPSIM, CLIP-Temp, VQA and Flicker (↑).  Absolute values differ from
// the paper (different metric networks); the ORDERING of methods is the
// reproduced result.
//
// Usage: bench_table1_quality [steps=10] [frames=5] [height=8] [width=8]
//                             [layers=2] [hidden=48] [heads=3] [block=8]
//                             [seed=21] [alpha=0.5] [prompts=3]
//
// `prompts` runs the whole comparison over that many independent noise
// seeds ("prompts") and reports per-metric means — the paper evaluates a
// prompt set, not a single clip.
#include <cstdio>

#include "bench_util.hpp"
#include "common/config.hpp"
#include "metrics/video_metrics.hpp"
#include "model/ddim.hpp"

namespace paro {
namespace {

struct Row {
  std::string method;
  std::string blockwise, reorder, mixed;
  std::string bitwidth;
  VideoQuality quality;
};

int run(int argc, char** argv) {
  const KeyValueConfig cfg = KeyValueConfig::from_args(argc, argv);
  const int steps = static_cast<int>(cfg.get_int("steps", 10));
  const auto block = static_cast<std::size_t>(cfg.get_int("block", 8));
  const double alpha = cfg.get_double("alpha", 0.5);
  const std::uint64_t seed = static_cast<std::uint64_t>(cfg.get_int("seed", 21));
  const int prompts = static_cast<int>(cfg.get_int("prompts", 3));

  SyntheticDiT::Config dc;
  dc.frames = static_cast<std::size_t>(cfg.get_int("frames", 5));
  dc.height = static_cast<std::size_t>(cfg.get_int("height", 8));
  dc.width = static_cast<std::size_t>(cfg.get_int("width", 8));
  dc.layers = static_cast<std::size_t>(cfg.get_int("layers", 2));
  dc.hidden = static_cast<std::size_t>(cfg.get_int("hidden", 48));
  dc.heads = static_cast<std::size_t>(cfg.get_int("heads", 3));
  dc.channels = 4;
  dc.seed = 77;
  dc.pattern_gain = 6.0;
  dc.pattern_width = 0.01;

  bench::banner("Table I: algorithm performance (proxy metrics)",
                "PARO Table I — CogVideoX prompt set, DDIM 50 steps "
                "(here: synthetic DiT, DDIM " +
                    std::to_string(steps) + " steps)");
  std::printf("model: %zux%zux%zu tokens=%zu, layers=%zu, hidden=%zu, "
              "heads=%zu, block=%zu, prompts=%d (metrics are means)\n\n",
              dc.frames, dc.height, dc.width,
              dc.frames * dc.height * dc.width, dc.layers, dc.hidden,
              dc.heads, block, prompts);

  const SyntheticDiT dit(dc);
  const GridDims grid{dc.frames, dc.height, dc.width};
  std::vector<MatF> references;
  for (int p = 0; p < prompts; ++p) {
    references.push_back(
        ddim_sample(dit, {}, nullptr, steps, seed + 100 * p));
  }
  const MatF calib_latent = ddim_sample(dit, {}, nullptr, 1, seed + 1);

  auto average = [&](auto&& one_prompt) {
    VideoQuality mean;
    for (int p = 0; p < prompts; ++p) {
      const VideoQuality q = one_prompt(p);
      mean.fvd += q.fvd;
      mean.clipsim += q.clipsim;
      mean.clip_temp += q.clip_temp;
      mean.vqa += q.vqa;
      mean.flicker += q.flicker;
    }
    const double n = prompts;
    mean.fvd /= n;
    mean.clipsim /= n;
    mean.clip_temp /= n;
    mean.vqa /= n;
    mean.flicker /= n;
    return mean;
  };
  auto eval_exec = [&](const SyntheticDiT::ExecConfig& exec,
                       const SyntheticDiT::Calibration* calib) {
    return average([&](int p) {
      const MatF video =
          ddim_sample(dit, exec, calib, steps, seed + 100 * p);
      return evaluate_video(video, references[static_cast<std::size_t>(p)],
                            grid);
    });
  };
  auto eval_quant = [&](const QuantAttentionConfig& quant,
                        double* avg_bits_out = nullptr) {
    SyntheticDiT::ExecConfig exec;
    exec.impl = SyntheticDiT::AttnImpl::kQuantized;
    exec.w8a8_linear = true;
    exec.quant = quant;
    const auto calib = dit.calibrate(quant, calib_latent, 1.0);
    if (avg_bits_out != nullptr) {
      double total = 0.0;
      std::size_t n = 0;
      for (const auto& layer : calib.heads) {
        for (const auto& head : layer) {
          total += head.bit_table.has_value()
                       ? head.bit_table->average_bitwidth()
                       : quant.map_bits;
          ++n;
        }
      }
      *avg_bits_out = total / static_cast<double>(n);
    }
    return eval_exec(exec, &calib);
  };

  std::vector<Row> rows;
  rows.push_back({"FP16", "-", "-", "-", "16", eval_exec({}, nullptr)});

  {
    SyntheticDiT::ExecConfig sage;
    sage.impl = SyntheticDiT::AttnImpl::kSage;
    rows.push_back({"SageAttention", "-", "-", "-", "8 (QK-only)",
                    eval_exec(sage, nullptr)});
  }
  {
    SyntheticDiT::ExecConfig sage2;
    sage2.impl = SyntheticDiT::AttnImpl::kSage2;
    rows.push_back({"SageAttention2", "-", "-", "-", "4 (QK-only)",
                    eval_exec(sage2, nullptr)});
  }
  {
    SyntheticDiT::ExecConfig sanger;
    sanger.impl = SyntheticDiT::AttnImpl::kSanger;
    sanger.sanger_threshold =
        static_cast<float>(cfg.get_double("sanger_threshold", 1e-3));
    rows.push_back({"Sanger (sparse)", "-", "-", "-", "-",
                    eval_exec(sanger, nullptr)});
  }
  rows.push_back({"Naive INT8", "-", "-", "-", "8",
                  eval_quant(config_naive_int(8))});
  rows.push_back({"Block-wise INT8", "yes", "-", "-", "8",
                  eval_quant(config_blockwise_int(8, block))});
  rows.push_back({"PARO INT8", "yes", "yes", "-", "8",
                  eval_quant(config_paro_int(8, block))});
  rows.push_back({"Naive INT4", "-", "-", "-", "4",
                  eval_quant(config_naive_int(4))});
  rows.push_back({"Block-wise INT4", "yes", "-", "-", "4",
                  eval_quant(config_blockwise_int(4, block))});
  rows.push_back({"PARO INT4", "yes", "yes", "-", "4",
                  eval_quant(config_paro_int(4, block))});
  {
    QuantAttentionConfig mp = config_paro_mp(4.8, block, alpha);
    mp.output_bitwidth_aware = true;  // the full hardware path
    double avg_bits = 4.8;
    const VideoQuality q = eval_quant(mp, &avg_bits);
    rows.push_back({"PARO MP", "yes", "yes", "yes",
                    bench::fmt(avg_bits, 2), q});
  }

  bench::TextTable table({"Method", "Block-wise", "Reorder", "Mixed",
                          "Bitwidth", "FVD-FP16 (down)", "CLIPSIM (up)",
                          "CLIP-Temp (up)", "VQA (up)", "Flicker (up)"});
  for (const Row& r : rows) {
    table.add_row({r.method, r.blockwise, r.reorder, r.mixed, r.bitwidth,
                   bench::fmt(r.quality.fvd, 4),
                   bench::fmt(r.quality.clipsim, 4),
                   bench::fmt(r.quality.clip_temp, 4),
                   bench::fmt(r.quality.vqa, 2),
                   bench::fmt(r.quality.flicker, 1)});
  }
  table.print();

  std::printf(
      "\nPaper (Table I, for shape comparison; proxy scales differ):\n"
      "  FP16 0.0 / Sage 0.08 / Sanger 0.22 / Naive8 0.44 / Block8 0.21 /\n"
      "  PARO8 0.19 / Naive4 1.40 / Block4 0.40 / PARO4 0.28 / MP(4.80) 0.15"
      " (FVD-FP16)\n"
      "Expected shape: Naive INT4 fails hard; block-wise recovers; reorder\n"
      "improves further; PARO MP at ~4.8 bits approaches INT8/FP16.\n");
  return 0;
}

}  // namespace
}  // namespace paro

int main(int argc, char** argv) { return paro::run(argc, argv); }
