// Fig. 6(b) — ablation of PARO's optimizations.
//
// Starting from the naive FP16 accelerator, adds W8A8 linear quantization,
// 4.80-bit mixed-precision attention quantization, and the output-bitwidth
// aware (LDZ) computation flow, reporting cumulative speedup over FP16 —
// the paper's 1.07/1.11x → 2.33/2.38x → 3.06/3.00x chain.  A dispatcher
// on/off ablation (called out in DESIGN.md) is appended.
#include <cstdio>

#include "bench_util.hpp"
#include "paro/accelerator.hpp"

namespace paro {
namespace {

double video_seconds(const ParoConfig& cfg, const ModelConfig& model) {
  const HwResources hw = HwResources::paro_asic();
  return ParoAccelerator(hw, cfg).simulate_video(model).seconds(hw.freq_ghz);
}

int run() {
  bench::banner("Fig. 6(b): ablation of PARO optimizations",
                "PARO Fig. 6b — cumulative speedup over the naive FP16 "
                "design, CogVideoX-2B/5B");

  const ModelConfig m2b = ModelConfig::cogvideox_2b();
  const ModelConfig m5b = ModelConfig::cogvideox_5b();

  struct Step {
    std::string name;
    ParoConfig cfg;
    std::string paper;
  };
  const std::vector<Step> steps = {
      {"naive FP16", ParoConfig::fp16_baseline(), "1.00x / 1.00x"},
      {"+ W8A8 linear quant", ParoConfig::w8a8_only(), "1.07x / 1.11x"},
      {"+ 4.80b attention quant", ParoConfig::quant_attn(), "2.33x / 2.38x"},
      {"+ output-bitwidth-aware PE", ParoConfig::full(), "3.06x / 3.00x"},
  };

  const double base_2b = video_seconds(steps[0].cfg, m2b);
  const double base_5b = video_seconds(steps[0].cfg, m5b);

  bench::TextTable table({"Configuration", "2B video (s)", "5B video (s)",
                          "2B speedup", "5B speedup", "paper (2B/5B)"});
  for (const Step& s : steps) {
    const double t2 = video_seconds(s.cfg, m2b);
    const double t5 = video_seconds(s.cfg, m5b);
    table.add_row({s.name, bench::fmt(t2, 1), bench::fmt(t5, 1),
                   bench::fmt_times(base_2b / t2),
                   bench::fmt_times(base_5b / t5), s.paper});
  }
  table.print();

  // Extra ablation: the dispatcher's load balancing across mixed-bitwidth
  // blocks (paper §IV-B discusses the dispatcher; no number is given).
  ParoConfig no_dispatch = ParoConfig::full();
  no_dispatch.dispatcher = false;
  const double with_d5 = video_seconds(ParoConfig::full(), m5b);
  const double without_d5 = video_seconds(no_dispatch, m5b);
  std::printf("\nDispatcher ablation (5B): with %.1fs, without (lock-step "
              "waves) %.1fs -> %.3fx from load balancing\n",
              with_d5, without_d5, without_d5 / with_d5);
  return 0;
}

}  // namespace
}  // namespace paro

int main() { return paro::run(); }
