// Energy efficiency (paper §V-B "Energy Efficiency").
//
// PARO's effective TOPS/W on CogVideoX-2B/5B versus the A100
// (paper: 3.46 / 3.61 TOPS/W, 4.86x / 6.43x over the GPU).
#include <cstdio>

#include "baselines/gpu_roofline.hpp"
#include "bench_util.hpp"
#include "energy/energy_model.hpp"
#include "paro/accelerator.hpp"

namespace paro {
namespace {

int run() {
  bench::banner("Energy efficiency",
                "PARO §V-B — effective TOPS/W vs NVIDIA A100 "
                "(paper: 3.46/3.61 TOPS/W, 4.86x/6.43x)");

  bench::TextTable table({"Model", "PARO (s)", "PARO energy (J)",
                          "PARO TOPS/W", "A100 (s)", "A100 TOPS/W",
                          "ratio", "paper"});
  for (const ModelConfig& m :
       {ModelConfig::cogvideox_2b(), ModelConfig::cogvideox_5b()}) {
    const Workload w = Workload::build(m, false);
    // Effective ops: the FP16 workload's 2·MACs, over all sampling steps.
    const double effective_ops =
        2.0 * w.total_macs() * static_cast<double>(m.sampling_steps);

    const HwResources hw = HwResources::paro_asic();
    const ParoAccelerator accel(hw, ParoConfig::full());
    const SimStats stats = accel.simulate_video(m);
    const EnergyReport paro = estimate_energy(stats, hw, effective_ops);

    const GpuRoofline gpu_model;
    const double gpu_s = gpu_model.simulate_video_seconds(m);
    const EnergyReport gpu =
        estimate_gpu_energy(gpu_s, gpu_model.gpu(), effective_ops);

    table.add_row(
        {m.name, bench::fmt(paro.seconds, 1), bench::fmt(paro.total_j, 0),
         bench::fmt(paro.effective_tops_per_watt, 2), bench::fmt(gpu_s, 1),
         bench::fmt(gpu.effective_tops_per_watt, 2),
         bench::fmt_times(paro.effective_tops_per_watt /
                          gpu.effective_tops_per_watt),
         m.blocks == 30 ? "3.46 TOPS/W, 4.86x" : "3.61 TOPS/W, 6.43x"});
  }
  table.print();

  // Component-level energy breakdown for the 5B run.
  const ModelConfig m5b = ModelConfig::cogvideox_5b();
  const Workload w = Workload::build(m5b, false);
  const HwResources hw = HwResources::paro_asic();
  const SimStats stats =
      ParoAccelerator(hw, ParoConfig::full()).simulate_video(m5b);
  const EnergyReport r = estimate_energy(
      stats, hw, 2.0 * w.total_macs() * static_cast<double>(m5b.sampling_steps));
  std::printf("\n5B energy breakdown (J): PE %.0f, LDZ %.0f, vector %.0f, "
              "buffer %.0f, leakage %.0f, DRAM-interface %.0f\n",
              r.pe_j, r.ldz_j, r.vector_j, r.buffer_j, r.leakage_j, r.dram_j);
  return 0;
}

}  // namespace
}  // namespace paro

int main() { return paro::run(); }
