// Reorder overhead (paper §V-B "Reorder Overhead").
//
// Measures the share of end-to-end latency spent on the online QKVO
// reorder in the PARO simulator, and the data-size argument behind it
// (QKVO matrices vs attention maps).  Paper: 1.26 % (2B) / 1.07 % (5B).
#include <cstdio>

#include "bench_util.hpp"
#include "paro/accelerator.hpp"

namespace paro {
namespace {

int run() {
  bench::banner("Reorder overhead",
                "PARO §V-B — reorder share of end-to-end latency "
                "(paper: 1.26% / 1.07% on 2B/5B)");

  bench::TextTable table({"Model", "video (s)", "reorder (s)",
                          "reorder share", "paper", "QKVO / map data"});
  for (const ModelConfig& m :
       {ModelConfig::cogvideox_2b(), ModelConfig::cogvideox_5b()}) {
    const HwResources hw = HwResources::paro_asic();
    const ParoAccelerator accel(hw, ParoConfig::full());
    const SimStats stats = accel.simulate_video(m);
    const double total_s = stats.seconds(hw.freq_ghz);
    const double reorder_s =
        stats.phases.count("reorder")
            ? stats.phases.at("reorder").cycles / (hw.freq_ghz * 1e9)
            : 0.0;

    const Workload w = Workload::build(m, true);
    const double n = static_cast<double>(m.tokens());
    const double map_elems = n * n * static_cast<double>(m.heads) *
                             static_cast<double>(m.blocks);
    const double data_ratio = w.reorder_elements() / map_elems;

    table.add_row({m.name, bench::fmt(total_s, 1), bench::fmt(reorder_s, 2),
                   bench::fmt(100.0 * reorder_s / total_s, 2) + "%",
                   m.blocks == 30 ? "1.26%" : "1.07%",
                   bench::fmt(100.0 * data_ratio, 2) + "%"});
  }
  table.print();
  std::printf("\nPaper: QKVO data is ~0.36%% of the attention-map size, so "
              "the online reorder is negligible in the compute-bound "
              "attention.\n");
  return 0;
}

}  // namespace
}  // namespace paro

int main() { return paro::run(); }
