// Fig. 4/5 micro-study: mixed-precision PE array throughput and the LDZ
// (output-bitwidth-aware) path.
//
//  * cycle-level throughput per PE mode (8b×8b / 4b×8b / 2b×8b / bypass)
//  * dispatcher vs lock-step waves across bit distributions
//  * LDZ truncation error versus direct low-bit quantization of K
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "common/fixedpoint.hpp"
#include "common/rng.hpp"
#include "paro/bit_distribution.hpp"
#include "paro/fused_attention_sim.hpp"
#include "sim/pe_array_sim.hpp"

namespace paro {
namespace {

int run() {
  bench::banner("PE array + LDZ micro-study",
                "PARO Fig. 4/5 — PE modes, dispatcher, LDZ truncation");

  // --- PE mode throughput (cycle-level) ---
  bench::TextTable modes({"Mode", "blocks", "cycles", "throughput vs 8b"});
  const std::uint64_t base = 64;
  const std::size_t jobs = 1024;
  const std::uint64_t t8 = PeArraySim::simulate(
      {32, true}, std::vector<PeBlockJob>(jobs, {8, base}));
  for (const int bits : {8, 4, 2}) {
    const std::uint64_t t = PeArraySim::simulate(
        {32, true}, std::vector<PeBlockJob>(jobs, {bits, base}));
    modes.add_row({std::to_string(bits) + "b x 8b", std::to_string(jobs),
                   std::to_string(t),
                   bench::fmt_times(static_cast<double>(t8) /
                                    static_cast<double>(t))});
  }
  modes.add_row({"0b (bypass)", std::to_string(jobs),
                 std::to_string(PeArraySim::simulate(
                     {32, true}, std::vector<PeBlockJob>(jobs, {0, base}))),
                 "inf"});
  modes.print();

  // --- dispatcher vs waves across distributions ---
  std::printf("\nDispatcher load balancing (1024 blocks, 32 row-groups):\n");
  bench::TextTable disp({"Distribution", "avg bits", "dispatcher",
                         "lock-step waves", "gain"});
  struct Named {
    std::string name;
    BitDistribution dist;
  };
  std::vector<Named> dists = {
      {"uniform 8b", BitDistribution::uniform(8)},
      {"PARO MP default", BitDistribution::paro_mp_default()},
  };
  BitDistribution extreme;
  extreme.fraction = {0.4, 0.3, 0.2, 0.1};
  dists.push_back({"aggressive (40% skip)", extreme});
  for (const auto& [name, dist] : dists) {
    Rng rng(11);
    const auto job_list = dist.make_jobs(1024, base, rng);
    const auto with = pe_array_cycles_analytic({32, true}, job_list);
    const auto without = pe_array_cycles_analytic({32, false}, job_list);
    disp.add_row({name, bench::fmt(dist.average_bits(), 2),
                  std::to_string(with), std::to_string(without),
                  bench::fmt_times(static_cast<double>(without) /
                                   static_cast<double>(with))});
  }
  disp.print();

  // --- LDZ truncation error vs bitwidth ---
  std::printf("\nLDZ truncation of 8-bit K operands (mean |error| over all "
              "values, vs the 2^shift bound):\n");
  bench::TextTable ldz({"kept bits", "mean |err|", "max |err|",
                        "mean rel err"});
  for (const int bits : {2, 3, 4, 6, 8}) {
    double mean_err = 0.0, rel = 0.0;
    int max_err = 0, counted = 0;
    for (int v = -127; v <= 127; ++v) {
      const int err = std::abs(v - ldz_approximate(v, bits));
      mean_err += err;
      max_err = std::max(max_err, err);
      if (v != 0) {
        rel += static_cast<double>(err) / std::abs(v);
        ++counted;
      }
    }
    ldz.add_row({std::to_string(bits), bench::fmt(mean_err / 255.0, 2),
                 std::to_string(max_err),
                 bench::fmt(100.0 * rel / counted, 1) + "%"});
  }
  ldz.print();
  std::printf("\nPaper example: 8b00011010 (26) at 2 bits -> 2b11 shifted "
              "by 3 = 24 (check: %d)\n", ldz_approximate(26, 2));

  // --- cycle-driven fused pipeline vs ideal overlap --------------------
  std::printf("\nFused attention pipeline (cycle-driven, one head) vs "
              "ideal resource overlap:\n");
  bench::TextTable fused({"tokens", "config", "cycles", "ideal overlap",
                          "pipeline overhead", "stripes", "DRAM MB"});
  const HwResources hw = HwResources::paro_asic();
  for (const std::size_t tokens : {2048UL, 8192UL, 17776UL}) {
    for (const bool quantized : {true, false}) {
      FusedAttentionParams p;
      p.tokens = tokens;
      p.head_dim = 64;
      p.quantized = quantized;
      const FusedAttentionResult r = simulate_fused_attention(p, hw);
      const double ideal = std::max(
          {static_cast<double>(r.pe_busy_cycles),
           static_cast<double>(r.vector_busy_cycles),
           r.dram_bytes / hw.dram_bytes_per_cycle()});
      fused.add_row({std::to_string(tokens),
                     quantized ? "PARO MP 4.80b" : "FP16",
                     std::to_string(r.cycles), bench::fmt(ideal, 0),
                     bench::fmt(100.0 * (static_cast<double>(r.cycles) /
                                             ideal -
                                         1.0), 2) + "%",
                     std::to_string(r.stripes),
                     bench::fmt(r.dram_bytes / 1e6, 1)});
    }
  }
  fused.print();
  std::printf("The operator-level simulator charges the ideal overlap; the "
              "cycle-driven pipeline quantifies the fill/serialization "
              "overhead on top of it, which shrinks as the stripe count "
              "grows (it is the same for PARO and for the baselines, so "
              "the Fig. 6 ratios are unaffected).\n");
  return 0;
}

}  // namespace
}  // namespace paro

int main() { return paro::run(); }
