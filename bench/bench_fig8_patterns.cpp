// Fig. 8 — visualization of attention patterns before and after reorder.
//
// Renders per-tile mass maps (ASCII heat maps) of synthetic heads that
// aggregate along different axes, in the canonical token order and after
// the calibrated reorder — the diverse strided patterns collapse into the
// unified "block diagonal" form.  Also prints the per-head plan selection
// histogram (the paper's observation that different heads aggregate along
// different dimensions).
#include <cstdio>

#include "attention/reference.hpp"
#include "attention/synthetic.hpp"
#include "bench_util.hpp"
#include "common/config.hpp"
#include "quant/blockwise.hpp"
#include "reorder/calibrate.hpp"

namespace paro {
namespace {

/// ASCII heat map of per-tile mean mass.
void print_heat(const MatF& mass) {
  static const char* kShades = " .:-=+*#%@";
  float maxv = 0.0F;
  for (const float v : mass.flat()) maxv = std::max(maxv, v);
  for (std::size_t r = 0; r < mass.rows(); ++r) {
    std::printf("    ");
    for (std::size_t c = 0; c < mass.cols(); ++c) {
      const double t = maxv > 0 ? mass(r, c) / maxv : 0.0;
      const int idx = std::min(9, static_cast<int>(t * 9.999));
      std::printf("%c", kShades[idx]);
    }
    std::printf("\n");
  }
}

int run(int argc, char** argv) {
  const KeyValueConfig cfg = KeyValueConfig::from_args(argc, argv);
  const std::size_t dim = static_cast<std::size_t>(cfg.get_int("dim", 6));
  const std::size_t block = static_cast<std::size_t>(cfg.get_int("block", 8));
  const std::size_t heads = static_cast<std::size_t>(cfg.get_int("heads", 6));

  bench::banner("Fig. 8: attention patterns before/after reorder",
                "PARO Fig. 8 — reorder unifies diverse patterns into a "
                "block-diagonal form");

  const TokenGrid grid(dim, dim, dim);
  Rng seed_rng(9);
  const auto specs = default_head_specs(heads, seed_rng);

  std::vector<std::size_t> order_hist(all_axis_orders().size(), 0);
  for (std::size_t h = 0; h < specs.size(); ++h) {
    SyntheticHeadSpec spec = specs[h];
    spec.locality_width = 0.012;
    spec.pattern_gain = 6.0;
    Rng rng(100 + h);
    const HeadQKV head = generate_head(grid, spec, 16, rng);
    const MatF map = attention_map(head.q, head.k);
    const ReorderPlan plan = calibrate_plan(map, grid, block, 4);
    const MatF reordered = plan.apply_map(map);

    for (std::size_t i = 0; i < all_axis_orders().size(); ++i) {
      if (plan.order == all_axis_orders()[i]) ++order_hist[i];
    }

    std::printf("head %zu: locality=%s, calibrated plan=%s\n", h,
                axis_order_name(spec.locality_order).c_str(),
                axis_order_name(plan.order).c_str());
    std::printf("  before reorder (diagonality %.3f):\n",
                block_diagonality(map, block));
    print_heat(block_mass(map, block));
    std::printf("  after reorder (diagonality %.3f):\n",
                block_diagonality(reordered, block));
    print_heat(block_mass(reordered, block));
    std::printf("\n");
  }

  std::printf("Plan-selection histogram over %zu heads:\n", specs.size());
  for (std::size_t i = 0; i < order_hist.size(); ++i) {
    std::printf("  %s: %zu\n",
                axis_order_name(all_axis_orders()[i]).c_str(), order_hist[i]);
  }
  std::printf("\nPaper: different heads aggregate along different dimensions "
              "(frame / height / width); reorder makes all of them "
              "block-diagonal.\n");
  return 0;
}

}  // namespace
}  // namespace paro

int main(int argc, char** argv) { return paro::run(argc, argv); }
