// Shared helpers for the table/figure reproduction benches.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/thread_pool.hpp"

namespace paro::bench {

/// Applies the bench-standard `threads=` knob to the global pool
/// (0 = hardware concurrency, default 1 = serial) and returns the
/// resulting execution width.  Results never depend on this knob —
/// common/thread_pool guarantees bitwise-identical output at any width.
inline std::size_t configure_threads(const KeyValueConfig& cfg) {
  const auto threads = cfg.get_int("threads", 1);
  set_global_threads(threads < 0 ? 0 : static_cast<std::size_t>(threads));
  return global_threads();
}

/// Fixed-width text table, printed like the paper's tables.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  void add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
  }

  void print() const {
    std::vector<std::size_t> widths(headers_.size(), 0);
    auto widen = [&](const std::vector<std::string>& row) {
      for (std::size_t i = 0; i < row.size() && i < widths.size(); ++i) {
        widths[i] = std::max(widths[i], row[i].size());
      }
    };
    widen(headers_);
    for (const auto& row : rows_) widen(row);

    auto print_row = [&](const std::vector<std::string>& row) {
      std::printf("|");
      for (std::size_t i = 0; i < widths.size(); ++i) {
        const std::string& cell = i < row.size() ? row[i] : std::string();
        std::printf(" %-*s |", static_cast<int>(widths[i]), cell.c_str());
      }
      std::printf("\n");
    };
    auto print_sep = [&]() {
      std::printf("+");
      for (const std::size_t w : widths) {
        for (std::size_t i = 0; i < w + 2; ++i) std::printf("-");
        std::printf("+");
      }
      std::printf("\n");
    };
    print_sep();
    print_row(headers_);
    print_sep();
    for (const auto& row : rows_) print_row(row);
    print_sep();
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string fmt(double value, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

inline std::string fmt_times(double value, int precision = 2) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*fx", precision, value);
  return buf;
}

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n=== %s ===\n", title.c_str());
  std::printf("Reproduces: %s\n\n", paper_ref.c_str());
}

}  // namespace paro::bench
