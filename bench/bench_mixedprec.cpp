// Mixed-precision allocation study (Eq. 1 of the paper).
//
//  * solver comparison: exact DP vs Lagrangian vs greedy (quality + the
//    budget actually used) on calibrated attention-map statistics
//  * α sweep of the sensitivity metric (paper leaves α unexplored —
//    DESIGN.md design-choice ablation)
//  * budget sweep: achieved average bits and resulting map error
#include <chrono>
#include <cstdio>

#include "attention/reference.hpp"
#include "attention/synthetic.hpp"
#include "bench_util.hpp"
#include "common/stats.hpp"
#include "mixedprec/allocator.hpp"
#include "quant/blockwise.hpp"
#include "reorder/calibrate.hpp"

namespace paro {
namespace {

MatF sample_map(std::size_t seed) {
  const TokenGrid grid(6, 6, 6);
  SyntheticHeadSpec spec;
  spec.locality_order = all_axis_orders()[seed % 6];
  spec.locality_width = 0.012;
  spec.pattern_gain = 5.5;
  Rng rng(700 + seed);
  const HeadQKV head = generate_head(grid, spec, 16, rng);
  const MatF map = attention_map(head.q, head.k);
  const ReorderPlan plan = calibrate_plan(map, grid, 8, 4);
  return plan.apply_map(map);
}

int run() {
  bench::banner("Mixed-precision allocation (Eq. 1)",
                "PARO §III-B — sensitivity-guided bit allocation under an "
                "average-bitwidth budget");

  const MatF map = sample_map(1);
  const auto stats = collect_block_stats(map, 8);
  const auto sens = compute_sensitivity(stats, 0.5);
  const BlockGrid grid(map.rows(), map.cols(), 8);

  // --- solver comparison at budget 4.8 ---
  bench::TextTable solvers({"Solver", "total sensitivity", "avg bits",
                            "map MSE x1e6", "time (us)"});
  auto eval = [&](const std::string& name, auto&& solver) {
    const auto t0 = std::chrono::steady_clock::now();
    const Allocation alloc = solver();
    const auto t1 = std::chrono::steady_clock::now();
    const BitTable table = make_bittable(grid, alloc.bits);
    const MatF q = fake_quant_blockwise_mixed(map, table);
    solvers.add_row(
        {name, bench::fmt(alloc.total_sensitivity, 4),
         bench::fmt(alloc.average_bitwidth, 3),
         bench::fmt(mse(q.flat(), map.flat()) * 1e6, 3),
         std::to_string(std::chrono::duration_cast<std::chrono::microseconds>(
                            t1 - t0)
                            .count())});
  };
  eval("DP (exact)", [&] { return allocate_dp_exact(sens, 4.8); });
  eval("Lagrangian", [&] { return allocate_lagrangian(sens, 4.8); });
  eval("Greedy", [&] { return allocate_greedy(sens, 4.8); });
  solvers.print();

  // --- alpha sweep ---
  std::printf("\nSensitivity blend alpha (importance vs difficulty), budget "
              "4.8, Lagrangian:\n");
  bench::TextTable alphas({"alpha", "map MSE x1e6", "skip tiles",
                           "8-bit tiles"});
  for (const double alpha : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    const auto s = compute_sensitivity(stats, alpha);
    const Allocation alloc = allocate_lagrangian(s, 4.8);
    const BitTable table = make_bittable(grid, alloc.bits);
    const MatF q = fake_quant_blockwise_mixed(map, table);
    alphas.add_row({bench::fmt(alpha, 2),
                    bench::fmt(mse(q.flat(), map.flat()) * 1e6, 3),
                    std::to_string(table.tiles_at(0)),
                    std::to_string(table.tiles_at(8))});
  }
  alphas.print();

  // --- budget sweep ---
  std::printf("\nBudget sweep (alpha 0.5, Lagrangian):\n");
  bench::TextTable budgets({"budget (bits)", "achieved avg", "map MSE x1e6",
                            "tiles 0/2/4/8"});
  for (const double b : {2.0, 3.0, 4.0, 4.8, 6.0, 8.0}) {
    const Allocation alloc = allocate_lagrangian(sens, b);
    const BitTable table = make_bittable(grid, alloc.bits);
    const MatF q = fake_quant_blockwise_mixed(map, table);
    budgets.add_row(
        {bench::fmt(b, 1), bench::fmt(alloc.average_bitwidth, 2),
         bench::fmt(mse(q.flat(), map.flat()) * 1e6, 3),
         std::to_string(table.tiles_at(0)) + "/" +
             std::to_string(table.tiles_at(2)) + "/" +
             std::to_string(table.tiles_at(4)) + "/" +
             std::to_string(table.tiles_at(8))});
  }
  budgets.print();
  return 0;
}

}  // namespace
}  // namespace paro

int main() { return paro::run(); }
