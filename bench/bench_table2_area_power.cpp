// Table II — area and power breakdown of PARO.
//
// The reference configuration reproduces the paper's synthesis numbers
// exactly (they seed our analytical model); the PARO-align-A100
// configuration shows how the model scales logic linearly with PE count
// and SRAM with CACTI-style exponents.
#include <cstdio>

#include "bench_util.hpp"
#include "energy/area_power.hpp"

namespace paro {
namespace {

void print_breakdown(const HwResources& hw) {
  std::printf("Configuration: %s (%.1f GHz, %.0f MACs/cycle, %.2f GB/s, "
              "%.1f MB SRAM)\n",
              hw.name.c_str(), hw.freq_ghz, hw.pe_macs_per_cycle,
              hw.dram_gbps, hw.sram_bytes / (1024.0 * 1024.0));
  bench::TextTable table({"Component", "Config", "Area (mm^2)", "Power (W)"});
  for (const ComponentSpec& c : area_power_breakdown(hw)) {
    table.add_row({c.name, c.config, bench::fmt(c.area_mm2, 2),
                   bench::fmt(c.power_w, 2)});
  }
  table.add_row({"Total", "TSMC 12nm", bench::fmt(total_area_mm2(hw), 2),
                 bench::fmt(total_power_w(hw), 2)});
  table.print();
  std::printf("\n");
}

int run() {
  bench::banner("Table II: area and power breakdown",
                "PARO Table II — TSMC 12 nm @ 1 GHz, Synopsys DC + CACTI 7");
  print_breakdown(HwResources::paro_asic());
  std::printf("Paper: PE array 2.52/3.60, LDZ 0.65/0.78, others 0.39/0.54,\n"
              "vector 2.79/4.55, buffer 1.82/1.73, total 8.17 mm^2 / 11.20 W\n\n");

  std::printf("Scaled configuration (not in the paper, model extrapolation):\n");
  print_breakdown(HwResources::paro_align_a100());
  return 0;
}

}  // namespace
}  // namespace paro

int main() { return paro::run(); }
