// §III-A quantization-error study (the claim behind Table I's ablation).
//
// On pattern-structured synthetic heads: per-row vs block-wise vs
// reorder+block-wise quantization error of the attention map, across
// bitwidths and block sizes (the block-size sweep is the DESIGN.md
// ablation of a design choice the paper fixes at 64).
#include <cstdio>

#include "attention/reference.hpp"
#include "attention/synthetic.hpp"
#include "bench_util.hpp"
#include "common/config.hpp"
#include "common/stats.hpp"
#include "quant/blockwise.hpp"
#include "quant/granularity.hpp"
#include "reorder/calibrate.hpp"

namespace paro {
namespace {

int run(int argc, char** argv) {
  const KeyValueConfig cfg = KeyValueConfig::from_args(argc, argv);
  const std::size_t dim = static_cast<std::size_t>(cfg.get_int("dim", 6));
  const std::size_t heads = static_cast<std::size_t>(cfg.get_int("heads", 6));

  bench::banner("Quantization error: per-row vs block-wise vs reorder",
                "PARO §III-A — why naive per-row quantization fails and "
                "reorder+block-wise recovers");

  const TokenGrid grid(dim, dim, dim);
  Rng seed_rng(4);
  auto specs = default_head_specs(heads, seed_rng);
  for (auto& s : specs) {
    s.locality_width = 0.012;
    s.pattern_gain = 5.5;
  }

  // Collect per-head maps once.
  std::vector<MatF> maps;
  for (std::size_t h = 0; h < specs.size(); ++h) {
    Rng rng(300 + h);
    const HeadQKV head = generate_head(grid, specs[h], 16, rng);
    maps.push_back(attention_map(head.q, head.k));
  }

  auto mean_err = [&](auto&& per_map) {
    double acc = 0.0;
    for (const MatF& m : maps) acc += per_map(m);
    return acc / static_cast<double>(maps.size());
  };

  // --- bitwidth sweep at block 8 ---
  bench::TextTable table({"Bits", "per-row (naive)", "block-wise",
                          "reorder + block-wise", "row/reorder ratio"});
  for (const int bits : {2, 4, 8}) {
    const double row_err = mean_err([&](const MatF& m) {
      MatF q = m;
      for (std::size_t r = 0; r < q.rows(); ++r) {
        fake_quant_group(q.row(r), bits, false);
      }
      return mse(q.flat(), m.flat());
    });
    const double block_err = mean_err([&](const MatF& m) {
      return mse(fake_quant_blockwise(m, 8, bits).flat(), m.flat());
    });
    const double reorder_err = mean_err([&](const MatF& m) {
      const ReorderPlan plan = calibrate_plan(m, grid, 8, bits);
      const MatF rm = plan.apply_map(m);
      return mse(fake_quant_blockwise(rm, 8, bits).flat(), rm.flat());
    });
    table.add_row({std::to_string(bits), bench::fmt(row_err * 1e6, 3),
                   bench::fmt(block_err * 1e6, 3),
                   bench::fmt(reorder_err * 1e6, 3),
                   bench::fmt_times(row_err / reorder_err)});
  }
  std::printf("(map MSE x 1e6, mean over %zu heads)\n", maps.size());
  table.print();

  // --- block-size sweep at 4 bits (design-choice ablation) ---
  bench::TextTable sweep({"Block size", "block-wise MSE x1e6",
                          "reorder + block-wise MSE x1e6"});
  for (const std::size_t block : {4UL, 8UL, 16UL, 32UL, 72UL}) {
    const double block_err = mean_err([&](const MatF& m) {
      return mse(fake_quant_blockwise(m, block, 4).flat(), m.flat());
    });
    const double reorder_err = mean_err([&](const MatF& m) {
      const ReorderPlan plan = calibrate_plan(m, grid, block, 4);
      const MatF rm = plan.apply_map(m);
      return mse(fake_quant_blockwise(rm, block, 4).flat(), rm.flat());
    });
    sweep.add_row({std::to_string(block), bench::fmt(block_err * 1e6, 3),
                   bench::fmt(reorder_err * 1e6, 3)});
  }
  // --- calibration-rule ablation at 4 bits, block 8 -------------------
  bench::TextTable calib_rules({"Calibration", "block-wise MSE x1e6"});
  for (const double clip : {0.0, 0.005, 0.01, 0.02}) {
    const double err = mean_err([&](const MatF& m) {
      const BlockGrid grid(m.rows(), m.cols(), 8);
      MatF q = m;
      std::vector<float> tile;
      for (std::size_t br = 0; br < grid.block_rows(); ++br) {
        for (std::size_t bc = 0; bc < grid.block_cols(); ++bc) {
          const auto e = grid.extent(br, bc);
          tile.clear();
          for (std::size_t r = e.r0; r < e.r1; ++r) {
            for (std::size_t c = e.c0; c < e.c1; ++c) {
              tile.push_back(m(r, c));
            }
          }
          const QuantParams p = calibrate_percentile(tile, 4, clip);
          for (std::size_t r = e.r0; r < e.r1; ++r) {
            for (std::size_t c = e.c0; c < e.c1; ++c) {
              q(r, c) = dequantize_value(quantize_value(m(r, c), p), p);
            }
          }
        }
      }
      return mse(q.flat(), m.flat());
    });
    calib_rules.add_row(
        {clip == 0.0 ? "min-max (paper)" : "percentile clip " +
                                               bench::fmt(100.0 * clip, 1) +
                                               "%",
         bench::fmt(err * 1e6, 3)});
  }
  std::printf("\nCalibration-rule ablation (beyond the paper): percentile "
              "clipping inside each tile:\n");
  calib_rules.print();
  std::printf("Finding: inside 8x8 tiles, sub-element clips degenerate to "
              "min-max, and clipping a real element HURTS — block-wise "
              "grouping already removed the outlier problem percentile "
              "calibration exists to fix (it is the reorder+tiling that "
              "does the work, not the calibration rule).\n");

  std::printf("\nBlock-size ablation at 4 bits (smaller tiles quantize "
              "better but cost more scale storage / dispatch):\n");
  sweep.print();
  return 0;
}

}  // namespace
}  // namespace paro

int main(int argc, char** argv) { return paro::run(argc, argv); }
