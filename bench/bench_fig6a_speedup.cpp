// Fig. 6(a) — end-to-end speedup on CogVideoX-2B/5B, normalized to Sanger.
//
// All ASIC platforms are simulated under the same resource budget
// (Table II); the A100 uses the calibrated roofline model and
// "PARO-align-A100" scales PARO's resources to the A100's peaks.
#include <cstdio>
#include <fstream>
#include <functional>

#include "attention/reference.hpp"
#include "attention/synthetic.hpp"
#include "baselines/gpu_roofline.hpp"
#include "baselines/sanger.hpp"
#include "baselines/vitcod.hpp"
#include "bench_util.hpp"
#include "common/config.hpp"
#include "obs/json.hpp"
#include "paro/accelerator.hpp"
#include "quant/sparse_attention.hpp"

namespace paro {
namespace {

struct PlatformResult {
  std::string name;
  double seconds_2b = 0.0;
  double seconds_5b = 0.0;
};

int run(int argc, char** argv) {
  const KeyValueConfig cfg = KeyValueConfig::from_args(argc, argv);
  bench::configure_threads(cfg);
  bench::banner("Fig. 6(a): end-to-end speedup (normalized to Sanger)",
                "PARO Fig. 6a — CogVideoX-2B/5B, 49-frame 480x640 video, "
                "DDIM 50 steps");

  const ModelConfig m2b = ModelConfig::cogvideox_2b();
  const ModelConfig m5b = ModelConfig::cogvideox_5b();
  const HwResources asic = HwResources::paro_asic();
  const HwResources aligned = HwResources::paro_align_a100();

  // --- Preamble: measure the baseline-model inputs on structured heads.
  // The Sanger/ViTCoD cycle models take density / utilization constants;
  // here they are measured on scaled synthetic heads at quality-aligned
  // settings so the constants are grounded, not invented.
  {
    const TokenGrid grid(6, 6, 6);
    Rng seed_rng(2);
    auto specs = default_head_specs(4, seed_rng);
    double density = 0.0, pack_util = 0.0, imbalance = 0.0;
    for (std::size_t h = 0; h < specs.size(); ++h) {
      specs[h].locality_width = 0.012;
      specs[h].pattern_gain = 5.5;
      Rng rng(500 + h);
      const HeadQKV head = generate_head(grid, specs[h], 16, rng);
      // Quality-aligned threshold: keep 30% of the entries (which carry
      // nearly all of the attention mass on these heads).
      const MatF map = attention_map(head.q, head.k);
      const float threshold = calibrate_threshold_for_density(map, 0.30);
      const SparseMask mask =
          sanger_predict_mask(head.q, head.k, threshold);
      density += mask.density();
      imbalance += mask.row_imbalance();
      pack_util += sanger_pack_and_split(mask, 16).utilization;
    }
    const double n = static_cast<double>(specs.size());
    std::printf("Measured Sanger-model inputs on %zu structured heads "
                "(threshold at 30%% kept entries):\n"
                "  mask density %.2f, pack&split utilization %.2f, row "
                "imbalance %.2f\n"
                "  (cycle model uses density %.2f, pack efficiency %.2f)\n\n",
                specs.size(), density / n, pack_util / n, imbalance / n,
                SangerConfig{}.density, SangerConfig{}.pack_efficiency);
  }

  // One task per platform; each owns its accelerator object, so the only
  // shared state the tasks touch is the (atomic) metrics registry.  Slot
  // `i` is written by task `i` alone — platform order never changes.
  const std::vector<std::function<PlatformResult()>> platforms = {
      [&] {
        const SangerAccelerator sanger(asic);
        return PlatformResult{
            "Sanger", sanger.simulate_video(m2b).seconds(asic.freq_ghz),
            sanger.simulate_video(m5b).seconds(asic.freq_ghz)};
      },
      [&] {
        const VitcodAccelerator vitcod(asic);
        return PlatformResult{
            "ViTCoD", vitcod.simulate_video(m2b).seconds(asic.freq_ghz),
            vitcod.simulate_video(m5b).seconds(asic.freq_ghz)};
      },
      [&] {
        const ParoAccelerator paro(asic, ParoConfig::full());
        return PlatformResult{
            "PARO", paro.simulate_video(m2b).seconds(asic.freq_ghz),
            paro.simulate_video(m5b).seconds(asic.freq_ghz)};
      },
      [&] {
        const GpuRoofline gpu;
        return PlatformResult{"A100 GPU", gpu.simulate_video_seconds(m2b),
                              gpu.simulate_video_seconds(m5b)};
      },
      [&] {
        const ParoAccelerator paro(aligned, ParoConfig::full());
        return PlatformResult{
            "PARO-align-A100",
            paro.simulate_video(m2b).seconds(aligned.freq_ghz),
            paro.simulate_video(m5b).seconds(aligned.freq_ghz)};
      },
  };
  std::vector<PlatformResult> results(platforms.size());
  global_pool().parallel_for(0, platforms.size(), 1,
                             [&](std::size_t i) { results[i] = platforms[i](); });

  const double sanger_2b = results[0].seconds_2b;
  const double sanger_5b = results[0].seconds_5b;

  bench::TextTable table({"Platform", "2B video (s)", "5B video (s)",
                          "2B speedup vs Sanger", "5B speedup vs Sanger"});
  for (const PlatformResult& r : results) {
    table.add_row({r.name, bench::fmt(r.seconds_2b, 1),
                   bench::fmt(r.seconds_5b, 1),
                   bench::fmt_times(sanger_2b / r.seconds_2b),
                   bench::fmt_times(sanger_5b / r.seconds_5b)});
  }
  table.print();

  const double paro_2b = results[2].seconds_2b;
  const double paro_5b = results[2].seconds_5b;
  const double a100_2b = results[3].seconds_2b;
  const double a100_5b = results[3].seconds_5b;
  const double align_2b = results[4].seconds_2b;
  const double align_5b = results[4].seconds_5b;

  std::printf("\nKey ratios (measured | paper):\n");
  std::printf("  PARO vs Sanger     : %s / %s  | 10.61x / 12.04x (2B/5B)\n",
              bench::fmt_times(sanger_2b / paro_2b).c_str(),
              bench::fmt_times(sanger_5b / paro_5b).c_str());
  std::printf("  PARO vs ViTCoD     : %s / %s  | 6.38x / 7.05x\n",
              bench::fmt_times(results[1].seconds_2b / paro_2b).c_str(),
              bench::fmt_times(results[1].seconds_5b / paro_5b).c_str());
  std::printf("  PARO-align vs A100 : %s / %s  | 1.68x / 2.71x\n",
              bench::fmt_times(a100_2b / align_2b).c_str(),
              bench::fmt_times(a100_5b / align_5b).c_str());
  std::printf("  A100 vs PARO (51.2 GB/s ASIC): %s / %s  | A100 ahead in "
              "the paper too\n",
              bench::fmt_times(paro_2b / a100_2b).c_str(),
              bench::fmt_times(paro_5b / a100_5b).c_str());

  // Plot-ready CSV (csv=<path>): the series Fig. 6(a) bars are drawn from.
  if (cfg.contains("csv")) {
    const std::string path = cfg.get_string("csv", "fig6a.csv");
    std::ofstream os(path);
    os << "platform,seconds_2b,seconds_5b,speedup_2b,speedup_5b\n";
    for (const PlatformResult& r : results) {
      os << r.name << ',' << r.seconds_2b << ',' << r.seconds_5b << ','
         << sanger_2b / r.seconds_2b << ',' << sanger_5b / r.seconds_5b
         << "\n";
    }
    std::printf("\nwrote %s\n", path.c_str());
  }

  // Machine-readable results (json=<path>), schema paro.bench_fig6a.v1.
  if (cfg.contains("json")) {
    const std::string path = cfg.get_string("json", "fig6a.json");
    std::ofstream os(path);
    obs::JsonWriter w(os, 2);
    w.begin_object();
    w.kv("schema", "paro.bench_fig6a.v1");
    w.key("platforms").begin_array();
    for (const PlatformResult& r : results) {
      w.begin_object();
      w.kv("platform", r.name);
      w.kv("seconds_2b", r.seconds_2b);
      w.kv("seconds_5b", r.seconds_5b);
      w.kv("speedup_2b_vs_sanger", sanger_2b / r.seconds_2b);
      w.kv("speedup_5b_vs_sanger", sanger_5b / r.seconds_5b);
      w.end_object();
    }
    w.end_array();
    w.end_object();
    os << "\n";
    std::printf("\nwrote %s\n", path.c_str());
  }
  return 0;
}

}  // namespace
}  // namespace paro

int main(int argc, char** argv) { return paro::run(argc, argv); }
