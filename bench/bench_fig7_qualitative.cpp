// Fig. 7 — qualitative comparison of generated videos.
//
// The paper shows generated frames for FP16 / INT8 / Naive INT4 / PARO MP
// and argues PARO MP is visually indistinguishable from FP16 while naive
// INT4 is unreadable noise.  We render the latent's first channel of
// three frames as ASCII heat maps for the same seed under each method,
// plus per-frame PSNR against FP16 — the closest text-mode analogue of
// the figure.
//
// Usage: bench_fig7_qualitative [steps=10] [seed=21]
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "common/config.hpp"
#include "metrics/video_metrics.hpp"
#include "model/ddim.hpp"

namespace paro {
namespace {

/// ASCII heat map of one latent channel of one frame.
void print_frame(const MatF& video, const GridDims& grid, std::size_t frame,
                 float lo, float hi) {
  static const char* kShades = " .:-=+*#%@";
  const std::size_t frame_tokens = grid.height * grid.width;
  for (std::size_t h = 0; h < grid.height; ++h) {
    std::printf("    ");
    for (std::size_t w = 0; w < grid.width; ++w) {
      const float v =
          video(frame * frame_tokens + h * grid.width + w, 0);
      const double t = (v - lo) / (hi - lo + 1e-9F);
      const int idx =
          std::clamp(static_cast<int>(t * 9.999), 0, 9);
      std::printf("%c%c", kShades[idx], kShades[idx]);
    }
    std::printf("\n");
  }
}

int run(int argc, char** argv) {
  const KeyValueConfig cfg = KeyValueConfig::from_args(argc, argv);
  const int steps = static_cast<int>(cfg.get_int("steps", 10));
  const auto seed = static_cast<std::uint64_t>(cfg.get_int("seed", 21));

  bench::banner("Fig. 7: qualitative comparison of generated videos",
                "PARO Fig. 7 — FP16 vs PARO MP (indistinguishable) vs "
                "Naive INT4 (noise)");

  SyntheticDiT::Config dc;
  dc.frames = 5;
  dc.height = 10;
  dc.width = 16;
  dc.layers = 2;
  dc.hidden = 48;
  dc.heads = 3;
  dc.channels = 4;
  dc.seed = 77;
  dc.pattern_gain = 6.0;
  dc.pattern_width = 0.01;
  const SyntheticDiT dit(dc);
  const GridDims grid{dc.frames, dc.height, dc.width};

  const MatF fp16 = ddim_sample(dit, {}, nullptr, steps, seed);
  const MatF calib_latent = ddim_sample(dit, {}, nullptr, 1, seed + 1);

  auto generate = [&](const QuantAttentionConfig& quant) {
    SyntheticDiT::ExecConfig exec;
    exec.impl = SyntheticDiT::AttnImpl::kQuantized;
    exec.w8a8_linear = true;
    exec.quant = quant;
    const auto calib = dit.calibrate(quant, calib_latent, 1.0);
    return ddim_sample(dit, exec, &calib, steps, seed);
  };
  QuantAttentionConfig mp_cfg = config_paro_mp(4.8, 8);
  mp_cfg.output_bitwidth_aware = true;
  const MatF paro_mp = generate(mp_cfg);
  const MatF naive4 = generate(config_naive_int(4));

  // Shared color scale from the FP16 output.
  float lo = fp16(0, 0), hi = fp16(0, 0);
  for (std::size_t t = 0; t < fp16.rows(); ++t) {
    lo = std::min(lo, fp16(t, 0));
    hi = std::max(hi, fp16(t, 0));
  }

  struct Entry {
    const char* name;
    const MatF* video;
  };
  const Entry entries[] = {{"FP16 (reference)", &fp16},
                           {"PARO MP 4.80b", &paro_mp},
                           {"Naive INT4", &naive4}};
  for (const std::size_t frame : {0UL, 2UL, 4UL}) {
    std::printf("--- frame %zu (latent channel 0) ---\n", frame);
    for (const Entry& e : entries) {
      const auto psnr = per_frame_psnr_db(*e.video, fp16, grid);
      std::printf("  %s (frame PSNR %.1f dB):\n", e.name, psnr[frame]);
      print_frame(*e.video, grid, frame, lo, hi);
    }
    std::printf("\n");
  }

  std::printf("Whole-clip PSNR vs FP16: PARO MP %.1f dB, Naive INT4 %.1f "
              "dB\n",
              video_psnr_db(paro_mp, fp16, grid),
              video_psnr_db(naive4, fp16, grid));
  std::printf("Paper: PARO MP videos show no visual difference from FP16; "
              "naive INT4 produces unreadable noise.\n");
  return 0;
}

}  // namespace
}  // namespace paro

int main(int argc, char** argv) { return paro::run(argc, argv); }
