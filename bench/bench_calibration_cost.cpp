// Offline calibration cost study (beyond the paper, DESIGN.md ablation).
//
// PARO's deployment story rests on calibration being a one-off offline
// pass (§III-A: patterns are stable across timesteps/prompts).  This
// bench quantifies that pass: wall-clock of the 6-plan scoring + Eq.-1
// allocation per head as the token count grows, and how the result
// scales, so a user can budget calibration for their own model.
#include <chrono>
#include <cstdio>

#include "attention/pipeline.hpp"
#include "attention/reference.hpp"
#include "attention/synthetic.hpp"
#include "bench_util.hpp"
#include "common/config.hpp"

namespace paro {
namespace {

int run(int argc, char** argv) {
  const KeyValueConfig cfg = KeyValueConfig::from_args(argc, argv);
  const auto block = static_cast<std::size_t>(cfg.get_int("block", 8));
  const std::size_t width = bench::configure_threads(cfg);

  bench::banner("Offline calibration cost",
                "PARO §III-A deployment: one offline pass per (layer, "
                "head); this quantifies it");
  std::printf("threads=%zu (results are identical at any width)\n\n", width);

  bench::TextTable table({"grid", "tokens", "plan+alloc time (ms)",
                          "per-token (us)", "chosen plan", "avg bits"});
  struct Shape {
    std::size_t f, h, w;
  };
  for (const Shape& shape :
       {Shape{4, 4, 4}, Shape{6, 6, 6}, Shape{8, 8, 8}, Shape{8, 12, 12}}) {
    const TokenGrid grid(shape.f, shape.h, shape.w);
    SyntheticHeadSpec spec;
    spec.locality_order = all_axis_orders()[3];
    spec.locality_width = 0.01;
    spec.pattern_gain = 5.0;
    Rng rng(7);
    const HeadQKV head = generate_head(grid, spec, 16, rng);
    const QuantAttentionConfig quant = config_paro_mp(4.8, block);

    const auto t0 = std::chrono::steady_clock::now();
    const HeadCalibration calib =
        calibrate_head(head.q, head.k, grid, quant);
    const auto t1 = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    char gridname[32];
    std::snprintf(gridname, sizeof(gridname), "%zux%zux%zu", shape.f,
                  shape.h, shape.w);
    table.add_row(
        {gridname, std::to_string(grid.num_tokens()), bench::fmt(ms, 1),
         bench::fmt(1000.0 * ms / static_cast<double>(grid.num_tokens()), 1),
         axis_order_name(calib.plan.order),
         bench::fmt(calib.bit_table->average_bitwidth(), 2)});
  }
  table.print();

  // Thread-scaling section: one head calibrated serially, then at the
  // configured width.  The plan sweep and tile scoring fan out across the
  // pool; the resulting plan and bit table are bitwise identical, only
  // the wall-clock changes.
  if (width > 1) {
    const TokenGrid grid(8, 8, 8);
    SyntheticHeadSpec spec;
    spec.locality_order = all_axis_orders()[3];
    spec.locality_width = 0.01;
    spec.pattern_gain = 5.0;
    Rng rng(7);
    const HeadQKV head = generate_head(grid, spec, 16, rng);
    const QuantAttentionConfig quant = config_paro_mp(4.8, block);

    auto time_once = [&]() {
      const auto t0 = std::chrono::steady_clock::now();
      const HeadCalibration calib = calibrate_head(head.q, head.k, grid, quant);
      const auto t1 = std::chrono::steady_clock::now();
      (void)calib;
      return std::chrono::duration<double, std::milli>(t1 - t0).count();
    };
    set_global_threads(1);
    const double serial_ms = time_once();
    set_global_threads(width);
    const double parallel_ms = time_once();
    std::printf(
        "\nThread scaling (8x8x8 head): threads=1 %.1f ms, threads=%zu "
        "%.1f ms (%s)\n",
        serial_ms, width, parallel_ms,
        bench::fmt_times(serial_ms / parallel_ms).c_str());
  }
  std::printf(
      "\nCost is dominated by scoring the 6 candidate orders on the sample "
      "map (O(6·N²) quantization passes).  At CogVideoX scale (17 776 "
      "tokens, 2 016 heads) a single-threaded pass extrapolates to tens of "
      "minutes — run once, cached for every prompt and timestep "
      "(Dit.PlansStableAcrossTimesteps verifies the stability claim).\n");
  return 0;
}

}  // namespace
}  // namespace paro

int main(int argc, char** argv) { return paro::run(argc, argv); }
