#include "energy/area_power.hpp"

#include <gtest/gtest.h>

namespace paro {
namespace {

TEST(AreaPower, ReferenceConfigReproducesTableII) {
  const HwResources r = HwResources::paro_asic();
  const auto rows = area_power_breakdown(r);
  ASSERT_EQ(rows.size(), 5U);
  EXPECT_NEAR(rows[0].area_mm2, 2.52, 1e-9);   // PE array
  EXPECT_NEAR(rows[0].power_w, 3.60, 1e-9);
  EXPECT_NEAR(rows[1].area_mm2, 0.65, 1e-9);   // LDZ
  EXPECT_NEAR(rows[1].power_w, 0.78, 1e-9);
  EXPECT_NEAR(rows[2].area_mm2, 0.39, 1e-9);   // others
  EXPECT_NEAR(rows[3].area_mm2, 2.79, 1e-9);   // vector unit
  EXPECT_NEAR(rows[3].power_w, 4.55, 1e-9);
  EXPECT_NEAR(rows[4].area_mm2, 1.82, 1e-9);   // buffer
  EXPECT_NEAR(rows[4].power_w, 1.73, 1e-9);
  EXPECT_NEAR(total_area_mm2(r), 8.17, 1e-6);
  EXPECT_NEAR(total_power_w(r), 11.20, 1e-6);
}

TEST(AreaPower, ScalesWithPeCount) {
  HwResources r = HwResources::paro_asic();
  r.pe_macs_per_cycle *= 2.0;
  const auto rows = area_power_breakdown(r);
  EXPECT_NEAR(rows[0].area_mm2, 5.04, 1e-9);
  EXPECT_NEAR(rows[1].power_w, 1.56, 1e-9);
  // Vector unit and buffer unchanged.
  EXPECT_NEAR(rows[3].area_mm2, 2.79, 1e-9);
  EXPECT_NEAR(rows[4].area_mm2, 1.82, 1e-9);
}

TEST(AreaPower, SramScalingSublinear) {
  HwResources r = HwResources::paro_asic();
  r.sram_bytes *= 4.0;
  const auto rows = area_power_breakdown(r);
  EXPECT_GT(rows[4].area_mm2, 1.82);
  EXPECT_LT(rows[4].area_mm2, 4.0 * 1.82);  // capacity^0.85
  EXPECT_NEAR(rows[4].power_w, 1.73 * 2.0, 1e-6);  // capacity^0.5
}

TEST(AreaPower, AlignA100IsMuchBigger) {
  const double asic = total_area_mm2(HwResources::paro_asic());
  const double aligned = total_area_mm2(HwResources::paro_align_a100());
  EXPECT_GT(aligned, 5.0 * asic);
}

}  // namespace
}  // namespace paro
