#include "energy/energy_model.hpp"

#include <gtest/gtest.h>

namespace paro {
namespace {

SimStats busy_stats(double cycles) {
  SimStats s;
  s.total_cycles = cycles;
  s.pe_busy_cycles = 0.8 * cycles;
  s.vector_busy_cycles = 0.3 * cycles;
  s.dram_bytes = cycles * 10.0;
  return s;
}

TEST(Energy, ComponentsArePositiveAndSum) {
  const HwResources hw = HwResources::paro_asic();
  const EnergyReport r = estimate_energy(busy_stats(1e9), hw, 1e12);
  EXPECT_GT(r.pe_j, 0.0);
  EXPECT_GT(r.ldz_j, 0.0);
  EXPECT_GT(r.vector_j, 0.0);
  EXPECT_GT(r.buffer_j, 0.0);
  EXPECT_GT(r.leakage_j, 0.0);
  EXPECT_GT(r.dram_j, 0.0);
  EXPECT_NEAR(r.total_j,
              r.pe_j + r.ldz_j + r.vector_j + r.buffer_j + r.leakage_j +
                  r.dram_j,
              1e-9);
}

TEST(Energy, BoundedByTdpTimesTime) {
  // Chip energy (without DRAM interface) can never exceed full power for
  // the whole runtime.
  const HwResources hw = HwResources::paro_asic();
  const SimStats s = busy_stats(2e9);
  const EnergyReport r = estimate_energy(s, hw, 1e12);
  const double chip_j = r.total_j - r.dram_j;
  EXPECT_LE(chip_j, 11.20 * s.seconds(hw.freq_ghz) * 1.001);
}

TEST(Energy, TopsPerWattScalesWithOps) {
  const HwResources hw = HwResources::paro_asic();
  const SimStats s = busy_stats(1e9);
  const EnergyReport a = estimate_energy(s, hw, 1e12);
  const EnergyReport b = estimate_energy(s, hw, 2e12);
  EXPECT_NEAR(b.effective_tops_per_watt / a.effective_tops_per_watt, 2.0,
              1e-9);
}

TEST(Energy, IdleChipBurnsOnlyLeakage) {
  const HwResources hw = HwResources::paro_asic();
  SimStats idle;
  idle.total_cycles = 1e9;
  const EnergyReport r = estimate_energy(idle, hw, 0.0);
  EXPECT_EQ(r.pe_j, 0.0);
  EXPECT_EQ(r.vector_j, 0.0);
  EXPECT_GT(r.leakage_j, 0.0);
}

TEST(Energy, GpuEnergyIsPowerTimesTime) {
  GpuResources gpu;
  gpu.avg_power_w = 300.0;
  const EnergyReport r = estimate_gpu_energy(10.0, gpu, 3e15);
  EXPECT_NEAR(r.total_j, 3000.0, 1e-9);
  EXPECT_NEAR(r.effective_tops_per_watt, 3e15 / 3000.0 / 1e12, 1e-9);
}

TEST(Energy, AsicBeatsGpuEfficiencyOnSameWork) {
  // The qualitative Table/§V-B claim: PARO's TOPS/W is several times the
  // A100's for the same effective work.
  const HwResources hw = HwResources::paro_asic();
  const double ops = 1e13;
  SimStats s = busy_stats(1e9);  // 1 s on the ASIC
  const EnergyReport asic = estimate_energy(s, hw, ops);
  const EnergyReport gpu = estimate_gpu_energy(0.5, GpuResources{}, ops);
  EXPECT_GT(asic.effective_tops_per_watt, 2.0 * gpu.effective_tops_per_watt);
}

}  // namespace
}  // namespace paro
