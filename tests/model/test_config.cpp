#include "model/config.hpp"

#include <gtest/gtest.h>

namespace paro {
namespace {

TEST(ModelConfig, CogVideoX5B) {
  const ModelConfig c = ModelConfig::cogvideox_5b();
  EXPECT_EQ(c.blocks, 42U);
  EXPECT_EQ(c.hidden, 3072U);
  EXPECT_EQ(c.heads, 48U);
  EXPECT_EQ(c.head_dim(), 64U);
  // 13×30×45 video tokens + 226 text tokens = 17 776 ("17.8k").
  EXPECT_EQ(c.grid.tokens(), 17550U);
  EXPECT_EQ(c.tokens(), 17776U);
  EXPECT_EQ(c.sampling_steps, 50U);
}

TEST(ModelConfig, CogVideoX2B) {
  const ModelConfig c = ModelConfig::cogvideox_2b();
  EXPECT_EQ(c.blocks, 30U);
  EXPECT_EQ(c.hidden, 1920U);
  EXPECT_EQ(c.heads, 30U);
  EXPECT_EQ(c.head_dim(), 64U);
  EXPECT_EQ(c.tokens(), 17776U);
}

TEST(ModelConfig, AttentionMapBytesMatchPaperMotivation) {
  // Paper §I: "the attention map size for CogVideoX-5B requires 56.50 GB"
  // per transformer block.  Our accounting (logits + scores, FP16, all
  // heads) lands within ~10% of that figure.
  const ModelConfig c = ModelConfig::cogvideox_5b();
  const double gb = c.attention_map_bytes_per_block_fp16() / 1e9;
  EXPECT_GT(gb, 50.0);
  EXPECT_LT(gb, 65.0);
}

TEST(ModelConfig, PerHeadMapBytes) {
  const ModelConfig c = ModelConfig::cogvideox_5b();
  const double n = 17776.0;
  EXPECT_DOUBLE_EQ(c.attention_map_bytes_per_head_fp16(), n * n * 2.0);
}

}  // namespace
}  // namespace paro
