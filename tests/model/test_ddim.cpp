#include "model/ddim.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/stats.hpp"

namespace paro {
namespace {

SyntheticDiT::Config tiny_config() {
  SyntheticDiT::Config c;
  c.frames = 3;
  c.height = 4;
  c.width = 4;
  c.layers = 2;
  c.hidden = 32;
  c.heads = 2;
  c.channels = 4;
  c.seed = 11;
  return c;
}

TEST(Ddim, AlphaBarBoundsAndMonotonicity) {
  EXPECT_NEAR(alpha_bar(0.0), 1.0, 1e-3);
  EXPECT_LT(alpha_bar(1.0), 0.01);
  double prev = alpha_bar(0.0);
  for (double s = 0.05; s <= 1.0; s += 0.05) {
    const double a = alpha_bar(s);
    EXPECT_LT(a, prev);
    EXPECT_GE(a, 0.0);
    prev = a;
  }
}

TEST(Ddim, TimestepsDescendFromOne) {
  const auto ts = ddim_timesteps(10);
  ASSERT_EQ(ts.size(), 10U);
  EXPECT_DOUBLE_EQ(ts.front(), 0.98);  // guarded start (see ddim.cpp)
  for (std::size_t i = 0; i + 1 < ts.size(); ++i) {
    EXPECT_GT(ts[i], ts[i + 1]);
  }
  EXPECT_THROW(ddim_timesteps(0), Error);
}

TEST(Ddim, SamplingIsDeterministic) {
  const SyntheticDiT dit(tiny_config());
  const MatF a = ddim_sample(dit, {}, nullptr, 5, 42);
  const MatF b = ddim_sample(dit, {}, nullptr, 5, 42);
  EXPECT_EQ(a, b);
}

TEST(Ddim, SeedChangesSample) {
  const SyntheticDiT dit(tiny_config());
  const MatF a = ddim_sample(dit, {}, nullptr, 5, 1);
  const MatF b = ddim_sample(dit, {}, nullptr, 5, 2);
  EXPECT_GT(rmse(a.flat(), b.flat()), 1e-3);
}

TEST(Ddim, OutputIsFiniteAndBounded) {
  const SyntheticDiT dit(tiny_config());
  const MatF x = ddim_sample(dit, {}, nullptr, 8, 3);
  for (const float v : x.flat()) {
    ASSERT_TRUE(std::isfinite(v));
    ASSERT_LT(std::abs(v), 100.0F);
  }
}

TEST(Ddim, QuantizedSamplingStaysNearReference) {
  const SyntheticDiT dit(tiny_config());
  const MatF ref = ddim_sample(dit, {}, nullptr, 6, 7);

  SyntheticDiT::ExecConfig exec;
  exec.impl = SyntheticDiT::AttnImpl::kQuantized;
  exec.quant = config_paro_int(8, 16);
  const MatF calib_latent = ddim_sample(dit, {}, nullptr, 1, 99);
  const auto calib = dit.calibrate(exec.quant, calib_latent, 1.0);
  const MatF quant = ddim_sample(dit, exec, &calib, 6, 7);
  // Same seed → same initial noise; INT8 PARO must stay close after the
  // full sampling loop.
  EXPECT_GT(snr_db(ref.flat(), quant.flat()), 5.0);
}

}  // namespace
}  // namespace paro
