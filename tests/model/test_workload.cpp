#include "model/workload.hpp"

#include <gtest/gtest.h>

namespace paro {
namespace {

ModelConfig tiny_model() {
  ModelConfig c;
  c.name = "tiny";
  c.blocks = 2;
  c.hidden = 64;
  c.heads = 4;
  c.grid = {2, 4, 4};
  c.text_tokens = 0;
  return c;
}

TEST(Workload, GemmCountsPerBlock) {
  const ModelConfig c = tiny_model();
  const Workload w = Workload::build(c, false);
  // Per block: 3 QKV + 1 O + 2 FFN linears, plus per-head QK and AttnV.
  EXPECT_EQ(w.count_gemms(GemmKind::kLinear), c.blocks * 6);
  EXPECT_EQ(w.count_gemms(GemmKind::kQK), c.blocks * c.heads);
  EXPECT_EQ(w.count_gemms(GemmKind::kAttnV), c.blocks * c.heads);
}

TEST(Workload, MacAccountingIdentity) {
  const ModelConfig c = tiny_model();
  const Workload w = Workload::build(c, false);
  EXPECT_DOUBLE_EQ(w.total_macs(), w.attention_macs() + w.linear_macs());

  const double n = static_cast<double>(c.tokens());
  const double h = static_cast<double>(c.hidden);
  // Linear MACs per block: 4·n·h² (QKV+O) + 2·n·h·4h (FFN) = 12·n·h².
  EXPECT_DOUBLE_EQ(w.linear_macs(),
                   static_cast<double>(c.blocks) * 12.0 * n * h * h);
  // Attention MACs per block: heads · 2 · n² · dh = 2·n²·h.
  EXPECT_DOUBLE_EQ(w.attention_macs(),
                   static_cast<double>(c.blocks) * 2.0 * n * n * h);
}

TEST(Workload, ReorderOpsOnlyWhenRequested) {
  const ModelConfig c = tiny_model();
  const Workload without = Workload::build(c, false);
  const Workload with = Workload::build(c, true);
  EXPECT_EQ(without.reorder_elements(), 0.0);
  // QKV (3·n·h) + O (n·h) per block.
  const double n = static_cast<double>(c.tokens());
  const double h = static_cast<double>(c.hidden);
  EXPECT_DOUBLE_EQ(with.reorder_elements(),
                   static_cast<double>(c.blocks) * 4.0 * n * h);
}

TEST(Workload, ReorderDataTinyVersusAttentionMap) {
  // Paper §V-B: QKVO matrices are ~0.36% of the attention-map size, which
  // is why the reorder overhead is negligible.
  const ModelConfig c = ModelConfig::cogvideox_5b();
  const Workload w = Workload::build(c, true);
  const double n = static_cast<double>(c.tokens());
  const double map_elems =
      n * n * static_cast<double>(c.heads) * static_cast<double>(c.blocks);
  EXPECT_LT(w.reorder_elements() / map_elems, 0.02);
}

TEST(Workload, SoftmaxElementsMatchMapSize) {
  const ModelConfig c = tiny_model();
  const Workload w = Workload::build(c, false);
  double softmax_elems = 0.0;
  for (const VectorOp& v : w.vectors) {
    if (v.kind == VectorKind::kSoftmax) {
      softmax_elems += static_cast<double>(v.elements);
    }
  }
  const double n = static_cast<double>(c.tokens());
  EXPECT_DOUBLE_EQ(softmax_elems,
                   static_cast<double>(c.blocks * c.heads) * n * n);
}

TEST(Workload, AttentionDominatesAtScale) {
  // At 17.8k tokens attention MACs rival the linear MACs even though the
  // hidden dim is large — the quadratic blowup the paper targets.
  const Workload w =
      Workload::build(ModelConfig::cogvideox_5b(), false);
  EXPECT_GT(w.attention_macs() / w.total_macs(), 0.40);
}

TEST(Workload, SpatialTemporalAttentionIsFarCheaper) {
  // §I motivation in reverse: the spatial-temporal scheme of earlier
  // models has orders-of-magnitude fewer attention MACs than 3D full
  // attention at CogVideoX scale (and correspondingly smaller maps).
  const ModelConfig c = ModelConfig::cogvideox_5b();
  const Workload full = Workload::build(c, false);
  const Workload st = Workload::build_spatial_temporal(c);
  EXPECT_GT(full.attention_macs() / st.attention_macs(), 5.0);
  // Linear projections: spatial-temporal runs TWO attention sub-blocks
  // per layer (extra QKV+O set).
  EXPECT_GT(st.linear_macs(), full.linear_macs());
}

TEST(Workload, SpatialTemporalMacAccounting) {
  ModelConfig c = tiny_model();
  const Workload st = Workload::build_spatial_temporal(c);
  const double n = static_cast<double>(c.tokens());
  const double h = static_cast<double>(c.hidden);
  const double spatial =
      static_cast<double>(c.grid.height * c.grid.width + c.text_tokens);
  const double frames = static_cast<double>(c.grid.frames);
  const double locations = static_cast<double>(c.grid.height * c.grid.width);
  // Attention MACs: per layer, heads·(2·F·spatial²·dh + 2·HW·F²·dh)
  //               = 2·h·(F·spatial² + HW·F²).
  const double expected_attn =
      static_cast<double>(c.blocks) * 2.0 * h *
      (frames * spatial * spatial + locations * frames * frames);
  EXPECT_DOUBLE_EQ(st.attention_macs(), expected_attn);
  // Linear MACs: 8·n·h² (two QKV+O sets) + 8·n·h² (FFN) = 16·n·h².
  EXPECT_DOUBLE_EQ(st.linear_macs(),
                   static_cast<double>(c.blocks) * 16.0 * n * h * h);
}

TEST(Workload, StreamElements) {
  GemmOp g;
  g.m = 2;
  g.k = 3;
  g.n = 4;
  EXPECT_DOUBLE_EQ(g.macs(), 24.0);
  EXPECT_DOUBLE_EQ(g.stream_elements(), 6.0 + 12.0 + 8.0);
}

}  // namespace
}  // namespace paro
