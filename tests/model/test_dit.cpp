#include "model/dit.hpp"

#include <gtest/gtest.h>

#include "common/stats.hpp"
#include "quant/blockwise.hpp"
#include "tensor/random.hpp"

namespace paro {
namespace {

SyntheticDiT::Config tiny_config() {
  SyntheticDiT::Config c;
  c.frames = 3;
  c.height = 4;
  c.width = 4;
  c.layers = 2;
  c.hidden = 32;
  c.heads = 2;
  c.channels = 4;
  c.seed = 11;
  return c;
}

MatF tiny_latent(const SyntheticDiT& dit, std::uint64_t seed = 5) {
  Rng rng(seed);
  return random_normal(dit.token_grid().num_tokens(), dit.config().channels,
                       rng);
}

TEST(Dit, ForwardShapeAndDeterminism) {
  const SyntheticDiT dit(tiny_config());
  const MatF x = tiny_latent(dit);
  const MatF e1 = dit.forward(x, 0.8, {});
  const MatF e2 = dit.forward(x, 0.8, {});
  EXPECT_EQ(e1.rows(), x.rows());
  EXPECT_EQ(e1.cols(), x.cols());
  EXPECT_EQ(e1, e2);
}

TEST(Dit, TimestepChangesOutput) {
  const SyntheticDiT dit(tiny_config());
  const MatF x = tiny_latent(dit);
  const MatF a = dit.forward(x, 0.9, {});
  const MatF b = dit.forward(x, 0.1, {});
  EXPECT_GT(rmse(a.flat(), b.flat()), 1e-4);
}

TEST(Dit, LatentShapeMismatchThrows) {
  const SyntheticDiT dit(tiny_config());
  MatF bad(7, 4, 0.0F);
  EXPECT_THROW(dit.forward(bad, 0.5, {}), Error);
}

TEST(Dit, AttentionMapsAreLocalityStructured) {
  // Heads carry positional anchors → maps must be far more block-diagonal
  // under the right reorder than a uniform map would be.
  SyntheticDiT::Config cfg = tiny_config();
  cfg.frames = 4;
  cfg.height = 4;
  cfg.width = 4;
  cfg.pattern_gain = 6.0;
  const SyntheticDiT dit(cfg);
  const MatF x = tiny_latent(dit);
  const MatF map = dit.attention_map_at(x, 0.7, 0, 0);
  EXPECT_EQ(map.rows(), dit.token_grid().num_tokens());
  double best = 0.0;
  for (const AxisOrder& order : all_axis_orders()) {
    const ReorderPlan plan = ReorderPlan::for_order(dit.token_grid(), order);
    best = std::max(best, block_diagonality(plan.apply_map(map), 16));
  }
  const double uniform = 16.0 / static_cast<double>(map.rows());
  EXPECT_GT(best, 3.0 * uniform);
}

TEST(Dit, W8A8LinearIsNearLossless) {
  const SyntheticDiT dit(tiny_config());
  const MatF x = tiny_latent(dit);
  SyntheticDiT::ExecConfig fp;
  SyntheticDiT::ExecConfig w8;
  w8.w8a8_linear = true;
  const MatF a = dit.forward(x, 0.5, fp);
  const MatF b = dit.forward(x, 0.5, w8);
  EXPECT_GT(snr_db(a.flat(), b.flat()), 15.0);
}

TEST(Dit, QuantizedRequiresCalibration) {
  const SyntheticDiT dit(tiny_config());
  const MatF x = tiny_latent(dit);
  SyntheticDiT::ExecConfig exec;
  exec.impl = SyntheticDiT::AttnImpl::kQuantized;
  exec.quant = config_paro_mp(4.8, 16);
  EXPECT_THROW(dit.forward(x, 0.5, exec), Error);
}

TEST(Dit, CalibratedQuantizedForwardTracksReference) {
  const SyntheticDiT dit(tiny_config());
  const MatF x = tiny_latent(dit);
  SyntheticDiT::ExecConfig exec;
  exec.impl = SyntheticDiT::AttnImpl::kQuantized;
  exec.quant = config_paro_int(8, 16);
  const auto calib = dit.calibrate(exec.quant, x, 0.9);
  EXPECT_EQ(calib.heads.size(), dit.config().layers);
  EXPECT_EQ(calib.heads[0].size(), dit.config().heads);
  const MatF ref = dit.forward(x, 0.5, {});
  const MatF q = dit.forward(x, 0.5, exec, &calib);
  EXPECT_GT(snr_db(ref.flat(), q.flat()), 10.0);
}

TEST(Dit, SageAndSangerPathsRun) {
  const SyntheticDiT dit(tiny_config());
  const MatF x = tiny_latent(dit);
  const MatF ref = dit.forward(x, 0.5, {});

  SyntheticDiT::ExecConfig sage;
  sage.impl = SyntheticDiT::AttnImpl::kSage;
  const MatF s = dit.forward(x, 0.5, sage);
  EXPECT_GT(snr_db(ref.flat(), s.flat()), 12.0);

  SyntheticDiT::ExecConfig sanger;
  sanger.impl = SyntheticDiT::AttnImpl::kSanger;
  sanger.sanger_threshold = 1e-3F;
  const MatF sg = dit.forward(x, 0.5, sanger);
  EXPECT_GT(snr_db(ref.flat(), sg.flat()), 5.0);
}

TEST(Dit, GlobalCalibrationSharesBudget) {
  const SyntheticDiT dit(tiny_config());
  const MatF x = tiny_latent(dit);
  const auto quant = config_paro_mp(4.8, 8);
  const auto calib = dit.calibrate_global(quant, x, 0.9);
  double total = 0.0;
  std::size_t heads = 0;
  double min_avg = 8.0, max_avg = 0.0;
  for (const auto& layer : calib.heads) {
    for (const auto& head : layer) {
      ASSERT_TRUE(head.bit_table.has_value());
      const double avg = head.bit_table->average_bitwidth();
      total += avg;
      min_avg = std::min(min_avg, avg);
      max_avg = std::max(max_avg, avg);
      ++heads;
    }
  }
  // Model-wide average respects the budget; individual heads may differ
  // (that is the point of the shared formulation).
  EXPECT_LE(total / static_cast<double>(heads), 4.8 + 1e-9);
  EXPECT_GE(max_avg, min_avg);
}

TEST(Dit, GlobalCalibrationRunsQuantizedForward) {
  const SyntheticDiT dit(tiny_config());
  const MatF x = tiny_latent(dit);
  SyntheticDiT::ExecConfig exec;
  exec.impl = SyntheticDiT::AttnImpl::kQuantized;
  exec.quant = config_paro_mp(4.8, 8);
  const auto calib = dit.calibrate_global(exec.quant, x, 0.9);
  const MatF ref = dit.forward(x, 0.5, {});
  const MatF q = dit.forward(x, 0.5, exec, &calib);
  EXPECT_GT(snr_db(ref.flat(), q.flat()), 8.0);
}

TEST(Dit, GlobalCalibrationRequiresMixedScheme) {
  const SyntheticDiT dit(tiny_config());
  const MatF x = tiny_latent(dit);
  EXPECT_THROW(dit.calibrate_global(config_paro_int(8, 8), x, 0.9), Error);
}

TEST(Dit, IntegerPathMatchesFloatPath) {
  // The hardware-faithful integer dataflow must reproduce the fake-quant
  // float pipeline through a whole DiT forward pass.
  const SyntheticDiT dit(tiny_config());
  const MatF x = tiny_latent(dit);
  SyntheticDiT::ExecConfig float_exec;
  float_exec.impl = SyntheticDiT::AttnImpl::kQuantized;
  float_exec.w8a8_linear = true;
  float_exec.quant = config_paro_mp(4.8, 8);
  SyntheticDiT::ExecConfig int_exec = float_exec;
  int_exec.impl = SyntheticDiT::AttnImpl::kQuantizedInteger;
  const auto calib = dit.calibrate(float_exec.quant, x, 0.9);
  const MatF a = dit.forward(x, 0.5, float_exec, &calib);
  const MatF b = dit.forward(x, 0.5, int_exec, &calib);
  EXPECT_GT(snr_db(a.flat(), b.flat()), 45.0);
}

TEST(Dit, PlansStableAcrossTimesteps) {
  // §III-A: "the observed patterns remain consistent across different
  // timesteps and input noise or prompts" — calibrating at two different
  // diffusion times must select mostly identical reorder plans.
  const SyntheticDiT dit(tiny_config());
  Rng rng_a(5), rng_b(6);
  const MatF x1 = random_normal(dit.token_grid().num_tokens(),
                                dit.config().channels, rng_a);
  const MatF x2 = random_normal(dit.token_grid().num_tokens(),
                                dit.config().channels, rng_b);
  const auto quant = config_paro_int(4, 8);
  const auto c1 = dit.calibrate(quant, x1, 1.0);
  const auto c2 = dit.calibrate(quant, x2, 0.3);
  std::size_t same = 0, total = 0;
  for (std::size_t l = 0; l < c1.heads.size(); ++l) {
    for (std::size_t h = 0; h < c1.heads[l].size(); ++h) {
      same += c1.heads[l][h].plan.order == c2.heads[l][h].plan.order ? 1 : 0;
      ++total;
    }
  }
  // The positional anchors dominate the pattern, so the chosen orders are
  // largely input-independent.
  EXPECT_GE(same * 2, total);  // at least half identical
}

TEST(Dit, RejectsIndivisibleHeads) {
  SyntheticDiT::Config cfg = tiny_config();
  cfg.hidden = 30;
  cfg.heads = 4;
  EXPECT_THROW(SyntheticDiT{cfg}, Error);
}

}  // namespace
}  // namespace paro
