#include "metrics/video_metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "tensor/random.hpp"

namespace paro {
namespace {

GridDims tiny_grid() { return {4, 6, 6}; }

/// Smooth structured "video": slowly varying in space and time.
MatF smooth_video(const GridDims& g, std::size_t channels, double speed) {
  MatF v(g.tokens(), channels);
  for (std::size_t f = 0; f < g.frames; ++f) {
    for (std::size_t h = 0; h < g.height; ++h) {
      for (std::size_t w = 0; w < g.width; ++w) {
        const std::size_t t = (f * g.height + h) * g.width + w;
        for (std::size_t c = 0; c < channels; ++c) {
          v(t, c) = static_cast<float>(
              std::sin(0.4 * h + 0.3 * w + speed * f + 1.7 * c));
        }
      }
    }
  }
  return v;
}

MatF noise_video(const GridDims& g, std::size_t channels, std::uint64_t seed) {
  Rng rng(seed);
  return random_normal(g.tokens(), channels, rng);
}

TEST(FrameFeatures, ShapeAndDeterminism) {
  const GridDims g = tiny_grid();
  const MatF v = smooth_video(g, 3, 0.2);
  const MatF f1 = frame_features(v, g, 32);
  const MatF f2 = frame_features(v, g, 32);
  EXPECT_EQ(f1.rows(), g.frames);
  EXPECT_EQ(f1.cols(), 32U);
  EXPECT_EQ(f1, f2);
}

TEST(FrameFeatures, ShapeMismatchThrows) {
  MatF bad(7, 3, 0.0F);
  EXPECT_THROW(frame_features(bad, tiny_grid()), Error);
}

TEST(Fvd, IdenticalVideosScoreZero) {
  const GridDims g = tiny_grid();
  const MatF v = smooth_video(g, 3, 0.2);
  EXPECT_NEAR(fvd_proxy(v, v, g), 0.0, 1e-9);
}

TEST(Fvd, IncreasesWithPerturbation) {
  const GridDims g = tiny_grid();
  const MatF ref = smooth_video(g, 3, 0.2);
  MatF mild = ref, harsh = ref;
  Rng rng(3);
  for (float& x : mild.flat()) x += 0.05F * static_cast<float>(rng.normal());
  for (float& x : harsh.flat()) x += 0.8F * static_cast<float>(rng.normal());
  const double f_mild = fvd_proxy(mild, ref, g);
  const double f_harsh = fvd_proxy(harsh, ref, g);
  EXPECT_GT(f_mild, 0.0);
  EXPECT_GT(f_harsh, f_mild);
}

TEST(ClipSim, SelfSimilarityIsOne) {
  const GridDims g = tiny_grid();
  const MatF v = smooth_video(g, 3, 0.2);
  EXPECT_NEAR(clipsim_proxy(v, v, g), 1.0, 1e-6);
}

TEST(ClipSim, NoiseScoresLowerThanPerturbedCopy) {
  const GridDims g = tiny_grid();
  const MatF ref = smooth_video(g, 3, 0.2);
  MatF near = ref;
  Rng rng(4);
  for (float& x : near.flat()) x += 0.1F * static_cast<float>(rng.normal());
  const MatF noise = noise_video(g, 3, 9);
  EXPECT_GT(clipsim_proxy(near, ref, g), clipsim_proxy(noise, ref, g));
}

TEST(ClipTemp, SmoothBeatsNoise) {
  const GridDims g = tiny_grid();
  const MatF smooth = smooth_video(g, 3, 0.05);
  const MatF noise = noise_video(g, 3, 5);
  EXPECT_GT(clip_temp_proxy(smooth, g), clip_temp_proxy(noise, g));
}

TEST(Vqa, StructuredContentBeatsNoise) {
  const GridDims g = tiny_grid();
  const MatF smooth = smooth_video(g, 3, 0.2);
  const MatF noise = noise_video(g, 3, 6);
  EXPECT_GT(vqa_proxy(smooth, g), vqa_proxy(noise, g) + 10.0);
  EXPECT_LE(vqa_proxy(smooth, g), 100.0);
  EXPECT_GE(vqa_proxy(noise, g), 0.0);
}

TEST(Flicker, StaticVideoScoresPerfect) {
  const GridDims g = tiny_grid();
  const MatF frame0 = smooth_video({1, g.height, g.width}, 3, 0.0);
  MatF still(g.tokens(), 3);
  for (std::size_t f = 0; f < g.frames; ++f) {
    for (std::size_t t = 0; t < g.height * g.width; ++t) {
      for (std::size_t c = 0; c < 3; ++c) {
        still(f * g.height * g.width + t, c) = frame0(t, c);
      }
    }
  }
  EXPECT_NEAR(flicker_score(still, g), 100.0, 1e-6);
}

TEST(Flicker, NoiseFlickersMore) {
  const GridDims g = tiny_grid();
  const MatF slow = smooth_video(g, 3, 0.05);
  const MatF noise = noise_video(g, 3, 8);
  EXPECT_GT(flicker_score(slow, g), flicker_score(noise, g));
}

TEST(Psnr, ExactMatchIsInfinite) {
  const GridDims g = tiny_grid();
  const MatF v = smooth_video(g, 3, 0.2);
  EXPECT_TRUE(std::isinf(video_psnr_db(v, v, g)));
}

TEST(Psnr, DecreasesWithNoise) {
  const GridDims g = tiny_grid();
  const MatF ref = smooth_video(g, 3, 0.2);
  MatF mild = ref, harsh = ref;
  Rng rng(11);
  for (float& x : mild.flat()) x += 0.02F * static_cast<float>(rng.normal());
  for (float& x : harsh.flat()) x += 0.4F * static_cast<float>(rng.normal());
  const double p_mild = video_psnr_db(mild, ref, g);
  const double p_harsh = video_psnr_db(harsh, ref, g);
  EXPECT_GT(p_mild, p_harsh + 15.0);  // 20x noise ~ 26 dB apart
}

TEST(Psnr, PerFrameSeriesLocalizesDamage) {
  const GridDims g = tiny_grid();
  const MatF ref = smooth_video(g, 3, 0.2);
  MatF cand = ref;
  // Corrupt only frame 2.
  const std::size_t frame_tokens = g.height * g.width;
  Rng rng(12);
  for (std::size_t t = 0; t < frame_tokens; ++t) {
    for (std::size_t c = 0; c < 3; ++c) {
      cand(2 * frame_tokens + t, c) += 0.5F * static_cast<float>(rng.normal());
    }
  }
  const auto psnr = per_frame_psnr_db(cand, ref, g);
  ASSERT_EQ(psnr.size(), g.frames);
  for (std::size_t f = 0; f < g.frames; ++f) {
    if (f == 2) {
      EXPECT_LT(psnr[f], 30.0);
    } else {
      EXPECT_TRUE(std::isinf(psnr[f]));
    }
  }
}

TEST(Psnr, ShapeMismatchThrows) {
  const GridDims g = tiny_grid();
  const MatF v = smooth_video(g, 3, 0.2);
  MatF bad(7, 3, 0.0F);
  EXPECT_THROW(video_psnr_db(bad, v, g), Error);
}

TEST(MotionSmoothness, UniformMotionIsSmooth) {
  // A linearly drifting latent has zero acceleration → score 100.
  const GridDims g = tiny_grid();
  MatF v(g.tokens(), 2);
  const std::size_t frame_tokens = g.height * g.width;
  for (std::size_t f = 0; f < g.frames; ++f) {
    for (std::size_t t = 0; t < frame_tokens; ++t) {
      for (std::size_t c = 0; c < 2; ++c) {
        v(f * frame_tokens + t, c) =
            static_cast<float>(f) * 0.5F + static_cast<float>(t % 7) * 0.1F;
      }
    }
  }
  EXPECT_NEAR(motion_smoothness(v, g), 100.0, 1e-4);
}

TEST(MotionSmoothness, NoiseIsJerky) {
  const GridDims g = tiny_grid();
  const MatF noise = noise_video(g, 3, 13);
  const MatF smooth = smooth_video(g, 3, 0.1);
  EXPECT_LT(motion_smoothness(noise, g), motion_smoothness(smooth, g));
  EXPECT_LT(motion_smoothness(noise, g), 40.0);
}

TEST(MotionSmoothness, StaticClipIsPerfect) {
  const GridDims g = tiny_grid();
  MatF still(g.tokens(), 2, 1.0F);
  EXPECT_DOUBLE_EQ(motion_smoothness(still, g), 100.0);
}

TEST(Evaluate, BundlesAllFive) {
  const GridDims g = tiny_grid();
  const MatF ref = smooth_video(g, 3, 0.2);
  MatF cand = ref;
  Rng rng(10);
  for (float& x : cand.flat()) x += 0.05F * static_cast<float>(rng.normal());
  const VideoQuality q = evaluate_video(cand, ref, g);
  EXPECT_GT(q.fvd, 0.0);
  EXPECT_GT(q.clipsim, 0.8);
  EXPECT_GT(q.clip_temp, 0.0);
  EXPECT_GT(q.vqa, 0.0);
  EXPECT_GT(q.flicker, 0.0);
}

}  // namespace
}  // namespace paro
