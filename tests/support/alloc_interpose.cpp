// Global operator new/delete interposition for the malloc-count tests.
//
// Linking this TU into a test target replaces every global allocation
// entry point with a forwarding version that ticks the counter in
// common/alloc_hook.hpp.  Production binaries and the other test targets
// never link it, so they keep the default (or sanitizer) allocator.
#include <cstdlib>
#include <new>

#include "common/alloc_hook.hpp"

namespace {

struct RegisterInterposition {
  RegisterInterposition() { paro::alloc_hook::set_interposition_active(); }
};
const RegisterInterposition register_interposition;

void* counted_alloc(std::size_t size) noexcept {
  paro::alloc_hook::note_allocation();
  return std::malloc(size == 0 ? 1 : size);
}

void* counted_aligned_alloc(std::size_t size, std::size_t align) noexcept {
  paro::alloc_hook::note_allocation();
  void* p = nullptr;
  if (posix_memalign(&p, align < sizeof(void*) ? sizeof(void*) : align,
                     size == 0 ? 1 : size) != 0) {
    return nullptr;
  }
  return p;
}

}  // namespace

void* operator new(std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size) {
  void* p = counted_alloc(size);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  return counted_alloc(size);
}

void* operator new(std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new[](std::size_t size, std::align_val_t align) {
  void* p = counted_aligned_alloc(size, static_cast<std::size_t>(align));
  if (p == nullptr) throw std::bad_alloc();
  return p;
}

void* operator new(std::size_t size, std::align_val_t align,
                   const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void* operator new[](std::size_t size, std::align_val_t align,
                     const std::nothrow_t&) noexcept {
  return counted_aligned_alloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete(void* p, std::align_val_t, const std::nothrow_t&) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t,
                       const std::nothrow_t&) noexcept {
  std::free(p);
}
