// The zero-allocation steady state, enforced: this target links
// tests/support/alloc_interpose.cpp, which replaces global operator
// new/delete with counting versions, and asserts that steps >= 2 of a
// multi-step generation perform ZERO heap allocations on the fused
// attention path.  Strict-zero is skipped under sanitizers (they own the
// allocator), but the monotone "warm steps allocate no more than cold
// ones" check runs everywhere the interposition is active.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "attention/session.hpp"
#include "attention/synthetic.hpp"
#include "common/alloc_hook.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"

namespace paro {
namespace {

bool sanitizers_active() {
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
  return true;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
  return true;
#else
  return false;
#endif
#else
  return false;
#endif
}

/// Overwrite Q/K/V values in place (same shapes) — the DDIM-step shape of
/// change: contents differ every step, geometry never does.
void refresh_values(HeadQKV& head, std::uint64_t seed) {
  Rng rng(seed);
  for (MatF* m : {&head.q, &head.k, &head.v}) {
    for (std::size_t r = 0; r < m->rows(); ++r) {
      for (float& x : m->row(r)) x = static_cast<float>(rng.normal());
    }
  }
}

TEST(SteadyState, InterpositionIsLinkedAndCounting) {
  ASSERT_TRUE(alloc_hook::interposition_active())
      << "tests/support/alloc_interpose.cpp must be linked into this target";
  const std::uint64_t before = alloc_hook::allocation_count();
  // Direct operator-new call: paired new/delete expressions may be elided
  // by the compiler, raw operator calls may not.
  void* p = ::operator new(64);
  const std::uint64_t after = alloc_hook::allocation_count();
  ::operator delete(p);
  EXPECT_GT(after, before);
}

TEST(SteadyState, FusedSessionStepsTwoPlusAreMallocFree) {
  ASSERT_TRUE(alloc_hook::interposition_active());

  TokenGrid grid(6, 6, 6);
  SyntheticHeadSpec spec;
  spec.locality_order = all_axis_orders()[3];
  spec.locality_width = 0.01;
  spec.pattern_gain = 5.0;
  spec.content_gain = 0.5;
  spec.global_fraction = 0.01;
  spec.global_gain = 3.5;
  Rng rng(53);
  HeadQKV head = generate_head(grid, spec, 16, rng);

  QuantAttentionConfig cfg = config_paro_mp(4.8, 8);
  cfg.output_bitwidth_aware = true;  // exercises the packed-LDZ reuse too
  const HeadCalibration calib = calibrate_head(head.q, head.k, grid, cfg);

  SessionContext session;
  constexpr int kSteps = 4;
  constexpr std::size_t kHeads = 2;
  std::array<std::uint64_t, kSteps> allocs{};
  for (int step = 0; step < kSteps; ++step) {
    refresh_values(head, 100 + static_cast<std::uint64_t>(step));
    session.begin_step();
    const std::uint64_t before = alloc_hook::allocation_count();
    for (std::size_t h = 0; h < kHeads; ++h) {
      fused_quantized_attention_session(head.q, head.k, head.v, calib, cfg,
                                        session, 0, h, nullptr);
    }
    allocs[static_cast<std::size_t>(step)] =
        alloc_hook::allocation_count() - before;
  }

  // Step 1 sizes the workspaces and slabs; every later step replays into
  // retained storage.
  EXPECT_GT(allocs[0], 0U);
  for (int step = 1; step < kSteps; ++step) {
    if (sanitizers_active()) {
      // Sanitizer runtimes allocate behind our backs; only monotonicity is
      // meaningful there.
      EXPECT_LE(allocs[static_cast<std::size_t>(step)], allocs[0]);
    } else {
      EXPECT_EQ(allocs[static_cast<std::size_t>(step)], 0U)
          << "step " << step << " touched the heap";
    }
  }
  EXPECT_EQ(session.cache_misses(), kHeads);
  EXPECT_EQ(session.cache_hits(),
            static_cast<std::uint64_t>(kSteps - 1) * kHeads);
}

TEST(SteadyState, PackedResidentSessionStepsTwoPlusAreMallocFree) {
  // A table with NO 8-bit tiles puts the session on the packed-K residency
  // path: K is quantized and packed in chunks through a small staging
  // buffer, so the only retained K operand is the sub-byte planes.  That
  // path must be exactly as allocation-free from step 2 as the widened one,
  // and the executor accounting must show it: packed bytes retained, the
  // widened footprint capped at the staging chunk, and the QK^T calls
  // landing on the 4- and 2-bit packed kernels.
  ASSERT_TRUE(alloc_hook::interposition_active());

  const TokenGrid grid(6, 6, 6);
  const std::size_t n = grid.num_tokens(), d = 16;
  SyntheticHeadSpec spec;
  spec.locality_width = 0.01;
  Rng rng(61);
  HeadQKV head = generate_head(grid, spec, d, rng);

  HeadCalibration calib;
  calib.plan = ReorderPlan::identity(n);
  BitTable table(BlockGrid(n, n, 8), 4);
  constexpr int kPattern[4] = {4, 4, 2, 0};  // sub-byte + skip, never 8
  for (std::size_t i = 0; i < table.grid().num_blocks(); ++i) {
    table.set_bits_flat(i, kPattern[i % 4]);
  }
  calib.bit_table = std::move(table);
  calib.planned_avg_bits = 2.5;

  QuantAttentionConfig cfg;
  cfg.map_scheme = AttnMapScheme::kBlockwise;
  cfg.map_bits = 8;
  cfg.block = 8;
  cfg.use_reorder = false;
  cfg.output_bitwidth_aware = true;
  cfg.executor = AttnExecutor::kStreamed;

  SessionContext session;
  constexpr int kSteps = 4;
  std::array<std::uint64_t, kSteps> allocs{};
  AttnExecStats stats;
  for (int step = 0; step < kSteps; ++step) {
    refresh_values(head, 300 + static_cast<std::uint64_t>(step));
    session.begin_step();
    const std::uint64_t before = alloc_hook::allocation_count();
    fused_quantized_attention_session(head.q, head.k, head.v, calib, cfg,
                                      session, 0, 0, &stats);
    allocs[static_cast<std::size_t>(step)] =
        alloc_hook::allocation_count() - before;
  }

  EXPECT_GT(allocs[0], 0U);
  for (int step = 1; step < kSteps; ++step) {
    if (sanitizers_active()) {
      EXPECT_LE(allocs[static_cast<std::size_t>(step)], allocs[0]);
    } else {
      EXPECT_EQ(allocs[static_cast<std::size_t>(step)], 0U)
          << "step " << step << " touched the heap on the packed-K path";
    }
  }

  EXPECT_GT(stats.kv_packed_bytes, 0U);
  EXPECT_LT(stats.kv_widened_bytes, n * d)
      << "full widened K matrix materialized on the packed-resident path";
  const std::size_t i2 = 1, i4 = 2;  // kBitChoices = {0, 2, 4, 8}
  EXPECT_GT(stats.qk_calls_per_bits[i4], 0U);
  EXPECT_GT(stats.qk_calls_per_bits[i2], 0U);
  EXPECT_GT(stats.qk_bytes_per_bits[i4], 0U);
  EXPECT_GT(stats.qk_bytes_per_bits[i2], 0U);
  EXPECT_EQ(stats.qk_calls_per_bits[3], 0U);  // no 8-bit tiles in the table
}

TEST(SteadyState, ArenaSlabCountIsFlatAfterWarmup) {
  // The arena-level view of the same property: slab mallocs move during
  // step 1 and never again (counted inside the arena, so this holds even
  // under sanitizers).
  TokenGrid grid(5, 5, 5);
  SyntheticHeadSpec spec;
  spec.locality_order = all_axis_orders()[1];
  spec.locality_width = 0.02;
  spec.pattern_gain = 5.0;
  spec.content_gain = 0.5;
  spec.global_fraction = 0.01;
  spec.global_gain = 3.5;
  Rng rng(7);
  HeadQKV head = generate_head(grid, spec, 16, rng);
  const QuantAttentionConfig cfg = config_paro_mp(4.8, 8);
  const HeadCalibration calib = calibrate_head(head.q, head.k, grid, cfg);

  SessionContext session;
  std::uint64_t warm_slabs = 0;
  for (int step = 0; step < 4; ++step) {
    refresh_values(head, 200 + static_cast<std::uint64_t>(step));
    session.begin_step();
    fused_quantized_attention_session(head.q, head.k, head.v, calib, cfg,
                                      session, 0, 0, nullptr);
    const std::uint64_t slabs = session.scratch().slab_mallocs_total();
    if (step == 0) {
      warm_slabs = slabs;
    } else {
      EXPECT_EQ(slabs, warm_slabs) << "step " << step << " grew a slab";
    }
  }
  EXPECT_GT(session.scratch().high_water_total(), 0U);
}

}  // namespace
}  // namespace paro
