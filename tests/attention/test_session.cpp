// The per-session memory subsystem: session-aware attention must be
// BITWISE identical to the allocating path (cold or warm, any executor,
// any thread count), and the workspace validity keys must miss exactly
// when the shape, config, or calibration changes.
#include "attention/session.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "attention/fused_executor.hpp"
#include "attention/pipeline.hpp"
#include "attention/synthetic.hpp"
#include "common/rng.hpp"
#include "common/thread_pool.hpp"
#include "model/dit.hpp"
#include "obs/metrics.hpp"
#include "tensor/random.hpp"

namespace paro {
namespace {

constexpr std::size_t kBlock = 8;

bool same_bits(const MatF& a, const MatF& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  const auto fa = a.flat();
  const auto fb = b.flat();
  return std::memcmp(fa.data(), fb.data(), fa.size() * sizeof(float)) == 0;
}

struct Fixture {
  TokenGrid grid;
  HeadQKV head;

  explicit Fixture(const TokenGrid& g = TokenGrid(6, 6, 6),
                   std::uint64_t seed = 53) : grid(g) {
    SyntheticHeadSpec spec;
    spec.locality_order = all_axis_orders()[3];
    spec.locality_width = 0.01;
    spec.pattern_gain = 5.0;
    spec.content_gain = 0.5;
    spec.global_fraction = 0.01;
    spec.global_gain = 3.5;
    Rng rng(seed);
    head = generate_head(grid, spec, 16, rng);
  }
};

TEST(Session, MatchesAllocatingPathBitwiseOnEveryPreset) {
  const Fixture f;
  SessionContext session;
  const QuantAttentionConfig presets[] = {
      config_fp16(),           config_naive_int(8),
      config_blockwise_int(4, kBlock), config_paro_int(4, kBlock),
      config_paro_mp(4.8, kBlock),     config_paro_mp(2.0, kBlock),
  };
  std::size_t layer = 0;
  for (const auto& cfg : presets) {
    const HeadCalibration calib = calibrate_head(f.head.q, f.head.k, f.grid,
                                                 cfg);
    const auto oracle =
        fused_quantized_attention(f.head.q, f.head.k, f.head.v, calib, cfg);
    // Run the session path twice (cold workspace, then warm) — both must
    // equal the allocating path exactly.
    for (int step = 0; step < 2; ++step) {
      session.begin_step();
      AttnExecStats stats;
      const MatF& out = fused_quantized_attention_session(
          f.head.q, f.head.k, f.head.v, calib, cfg, session, layer, 0,
          &stats);
      EXPECT_TRUE(same_bits(oracle.output, out))
          << "preset " << layer << " step " << step;
      EXPECT_EQ(stats.tiles_total, oracle.exec.tiles_total);
      EXPECT_EQ(stats.tiles_per_bits, oracle.exec.tiles_per_bits);
      EXPECT_EQ(stats.peak_bytes, oracle.exec.peak_bytes);
    }
    ++layer;  // give each preset its own (layer, head) workspace
  }
}

TEST(Session, ObaPathMatchesIncludingPackedPlanes) {
  const Fixture f;
  SessionContext session;
  QuantAttentionConfig cfg = config_paro_mp(4.8, kBlock);
  cfg.output_bitwidth_aware = true;
  const HeadCalibration calib =
      calibrate_head(f.head.q, f.head.k, f.grid, cfg);
  const auto oracle =
      fused_quantized_attention(f.head.q, f.head.k, f.head.v, calib, cfg);
  for (int step = 0; step < 3; ++step) {
    session.begin_step();
    const MatF& out = fused_quantized_attention_session(
        f.head.q, f.head.k, f.head.v, calib, cfg, session, 0, 0, nullptr);
    EXPECT_TRUE(same_bits(oracle.output, out)) << "step " << step;
  }
}

TEST(Session, CacheMissesOnFirstUseThenHits) {
  const Fixture f;
  SessionContext session;
  const QuantAttentionConfig cfg = config_paro_mp(4.8, kBlock);
  const HeadCalibration calib =
      calibrate_head(f.head.q, f.head.k, f.grid, cfg);
  auto run = [&] {
    return fused_quantized_attention_session(f.head.q, f.head.k, f.head.v,
                                             calib, cfg, session, 0, 0,
                                             nullptr);
  };
  run();
  EXPECT_EQ(session.cache_misses(), 1U);
  EXPECT_EQ(session.cache_hits(), 0U);
  run();
  run();
  EXPECT_EQ(session.cache_misses(), 1U);
  EXPECT_EQ(session.cache_hits(), 2U);
  // Distinct heads get distinct workspaces: a second head misses once.
  fused_quantized_attention_session(f.head.q, f.head.k, f.head.v, calib, cfg,
                                    session, 0, 1, nullptr);
  EXPECT_EQ(session.cache_misses(), 2U);
}

TEST(Session, ShapeChangeMissesAndStaysBitwiseCorrect) {
  const Fixture big;                            // 216 tokens
  const Fixture small(TokenGrid(4, 4, 4), 19);  // 64 tokens
  const QuantAttentionConfig cfg = config_paro_mp(4.8, kBlock);
  const HeadCalibration calib_big =
      calibrate_head(big.head.q, big.head.k, big.grid, cfg);
  const HeadCalibration calib_small =
      calibrate_head(small.head.q, small.head.k, small.grid, cfg);

  SessionContext session;
  fused_quantized_attention_session(big.head.q, big.head.k, big.head.v,
                                    calib_big, cfg, session, 0, 0, nullptr);
  EXPECT_EQ(session.cache_misses(), 1U);
  // Same (layer, head), new shape: miss, and the resized workspace must
  // reproduce the cold-path output exactly.
  const auto cold = fused_quantized_attention(small.head.q, small.head.k,
                                              small.head.v, calib_small, cfg);
  const MatF& warm = fused_quantized_attention_session(
      small.head.q, small.head.k, small.head.v, calib_small, cfg, session, 0,
      0, nullptr);
  EXPECT_EQ(session.cache_misses(), 2U);
  EXPECT_TRUE(same_bits(cold.output, warm));
  // Flipping back also misses (the key records only the latest shape).
  fused_quantized_attention_session(big.head.q, big.head.k, big.head.v,
                                    calib_big, cfg, session, 0, 0, nullptr);
  EXPECT_EQ(session.cache_misses(), 3U);
}

TEST(Session, ConfigChangeMissesAndStaysBitwiseCorrect) {
  const Fixture f;
  SessionContext session;
  QuantAttentionConfig a = config_paro_mp(4.8, kBlock);
  QuantAttentionConfig b = a;
  b.output_bitwidth_aware = true;
  const HeadCalibration calib = calibrate_head(f.head.q, f.head.k, f.grid, a);
  ASSERT_NE(config_fingerprint(a), config_fingerprint(b));

  fused_quantized_attention_session(f.head.q, f.head.k, f.head.v, calib, a,
                                    session, 0, 0, nullptr);
  const auto cold_b =
      fused_quantized_attention(f.head.q, f.head.k, f.head.v, calib, b);
  const MatF& warm_b = fused_quantized_attention_session(
      f.head.q, f.head.k, f.head.v, calib, b, session, 0, 0, nullptr);
  EXPECT_EQ(session.cache_misses(), 2U);
  EXPECT_TRUE(same_bits(cold_b.output, warm_b));
}

TEST(Session, CalibrationReloadIsDetectedByFingerprint) {
  const Fixture f;
  SessionContext session;
  const QuantAttentionConfig cfg = config_paro_mp(4.8, kBlock);
  HeadCalibration calib = calibrate_head(f.head.q, f.head.k, f.grid, cfg);
  fused_quantized_attention_session(f.head.q, f.head.k, f.head.v, calib, cfg,
                                    session, 0, 0, nullptr);
  EXPECT_EQ(session.cache_misses(), 1U);

  // A "reloaded" calibration with different tile bits must be noticed even
  // WITHOUT an explicit invalidate() — the fingerprint covers the table.
  HeadCalibration reloaded = calib;
  ASSERT_TRUE(reloaded.bit_table.has_value());
  const int old_bits = reloaded.bit_table->bits_flat(0);
  reloaded.bit_table->set_bits(0, 0, old_bits == 8 ? 4 : 8);
  ASSERT_NE(calib_fingerprint(calib), calib_fingerprint(reloaded));
  const auto cold = fused_quantized_attention(f.head.q, f.head.k, f.head.v,
                                              reloaded, cfg);
  const MatF& warm = fused_quantized_attention_session(
      f.head.q, f.head.k, f.head.v, reloaded, cfg, session, 0, 0, nullptr);
  EXPECT_EQ(session.cache_misses(), 2U);
  EXPECT_TRUE(same_bits(cold.output, warm));
}

TEST(Session, ExplicitInvalidateForcesMisses) {
  const Fixture f;
  SessionContext session;
  const QuantAttentionConfig cfg = config_paro_mp(4.8, kBlock);
  const HeadCalibration calib =
      calibrate_head(f.head.q, f.head.k, f.grid, cfg);
  auto run = [&](std::size_t head) {
    return &fused_quantized_attention_session(f.head.q, f.head.k, f.head.v,
                                              calib, cfg, session, 0, head,
                                              nullptr);
  };
  const auto oracle =
      fused_quantized_attention(f.head.q, f.head.k, f.head.v, calib, cfg);
  run(0);
  run(1);
  run(0);
  EXPECT_EQ(session.cache_misses(), 2U);
  EXPECT_EQ(session.cache_hits(), 1U);
  session.invalidate();  // the calib-reload hook: every key drops
  const MatF* out = run(0);
  run(1);
  EXPECT_EQ(session.cache_misses(), 4U);
  EXPECT_TRUE(same_bits(oracle.output, *out));
}

TEST(Session, BitwiseIdenticalAcrossThreadCounts) {
  const Fixture f;
  QuantAttentionConfig cfg = config_paro_mp(4.8, kBlock);
  cfg.output_bitwidth_aware = true;
  const HeadCalibration calib =
      calibrate_head(f.head.q, f.head.k, f.grid, cfg);

  set_global_threads(1);
  SessionContext serial;
  serial.begin_step();
  const MatF one = fused_quantized_attention_session(
      f.head.q, f.head.k, f.head.v, calib, cfg, serial, 0, 0, nullptr);

  set_global_threads(8);
  SessionContext wide;
  wide.begin_step();
  const MatF& eight = fused_quantized_attention_session(
      f.head.q, f.head.k, f.head.v, calib, cfg, wide, 0, 0, nullptr);
  EXPECT_TRUE(same_bits(one, eight));
  set_global_threads(0);
}

TEST(Session, QuantizedWrapperGuardsAndFallsBackToMaterialized) {
  const Fixture f;
  SessionContext session;
  QuantAttentionConfig cfg = config_paro_mp(4.8, kBlock);
  const HeadCalibration calib =
      calibrate_head(f.head.q, f.head.k, f.grid, cfg);

  // Streamed: the wrapper routes to the session executor.
  const auto oracle =
      quantized_attention(f.head.q, f.head.k, f.head.v, calib, cfg);
  const MatF& streamed = quantized_attention_session(
      f.head.q, f.head.k, f.head.v, calib, cfg, session, 0, 0, nullptr);
  EXPECT_TRUE(same_bits(oracle.output, streamed));

  // Materialized: allocating fallback, same reference contract.
  cfg.executor = AttnExecutor::kMaterialized;
  const auto mat_oracle =
      quantized_attention(f.head.q, f.head.k, f.head.v, calib, cfg);
  const MatF& mat = quantized_attention_session(
      f.head.q, f.head.k, f.head.v, calib, cfg, session, 0, 1, nullptr);
  EXPECT_TRUE(same_bits(mat_oracle.output, mat));

  // The handle writes to the same registry counter the allocating wrapper
  // bumps: two oracle calls + two session calls.
  EXPECT_EQ(session.metrics().quantized_calls->value(), 4.0);
}

TEST(Session, DitForwardWithSessionIsBitwiseIdentical) {
  SyntheticDiT::Config c;
  c.frames = 3;
  c.height = 4;
  c.width = 4;
  c.layers = 2;
  c.hidden = 32;
  c.heads = 2;
  c.channels = 4;
  c.seed = 11;
  const SyntheticDiT dit(c);
  Rng rng(5);
  const MatF x = random_normal(dit.token_grid().num_tokens(), c.channels, rng);

  SyntheticDiT::ExecConfig exec;
  exec.impl = SyntheticDiT::AttnImpl::kQuantized;
  exec.quant = config_paro_mp(4.8, kBlock);
  const auto calib = dit.calibrate(exec.quant, x, 0.9);

  const MatF plain1 = dit.forward(x, 0.5, exec, &calib);
  const MatF plain2 = dit.forward(x, 0.3, exec, &calib);

  SessionContext session;
  exec.session = &session;
  const MatF s1 = dit.forward(x, 0.5, exec, &calib);
  const MatF s2 = dit.forward(x, 0.3, exec, &calib);
  EXPECT_TRUE(same_bits(plain1, s1));
  EXPECT_TRUE(same_bits(plain2, s2));
  EXPECT_EQ(session.steps_begun(), 2U);
  // layers × heads workspaces, all warm after the first pass.
  EXPECT_EQ(session.cache_misses(), c.layers * c.heads);
  EXPECT_EQ(session.cache_hits(), c.layers * c.heads);
}

TEST(Session, BeginStepPublishesArenaGauges) {
  obs::MetricsRegistry::global().reset();
  {
    const Fixture f;
    SessionContext session;
    const QuantAttentionConfig cfg = config_paro_mp(4.8, kBlock);
    const HeadCalibration calib =
        calibrate_head(f.head.q, f.head.k, f.grid, cfg);
    session.begin_step();
    fused_quantized_attention_session(f.head.q, f.head.k, f.head.v, calib,
                                      cfg, session, 0, 0, nullptr);
    session.begin_step();  // publishes the warm-up's arena stats
    auto& reg = obs::MetricsRegistry::global();
    EXPECT_GT(reg.gauge("mem.arena_bytes").value(), 0.0);
    EXPECT_GT(reg.counter("mem.mallocs_per_step").value(), 0.0);
    EXPECT_EQ(reg.counter("mem.cache_misses").value(), 1.0);
  }
  obs::MetricsRegistry::global().reset();
}

}  // namespace
}  // namespace paro
