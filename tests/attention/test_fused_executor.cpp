// The fused block-streaming executor against its oracle: the materialized
// pipeline.  The contract is BITWISE equality of outputs (stronger than
// the usual tolerance — the streaming engine replicates the exact FP
// associations of the N×N path) at a fraction of the working set.
#include "attention/fused_executor.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "attention/pipeline.hpp"
#include "attention/reference.hpp"
#include "attention/synthetic.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "obs/metrics.hpp"
#include "paro/fused_attention_sim.hpp"
#include "quant/bittable.hpp"
#include "sim/resources.hpp"

namespace paro {
namespace {

constexpr std::size_t kBlock = 8;

bool same_bits(const MatF& a, const MatF& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  const auto fa = a.flat();
  const auto fb = b.flat();
  return std::memcmp(fa.data(), fb.data(), fa.size() * sizeof(float)) == 0;
}

struct Fixture {
  TokenGrid grid;
  HeadQKV head;

  explicit Fixture(const TokenGrid& g = TokenGrid(6, 6, 6),
                   std::uint64_t seed = 53) : grid(g) {
    SyntheticHeadSpec spec;
    spec.locality_order = all_axis_orders()[3];
    spec.locality_width = 0.01;
    spec.pattern_gain = 5.0;
    spec.content_gain = 0.5;
    spec.global_fraction = 0.01;
    spec.global_gain = 3.5;
    Rng rng(seed);
    head = generate_head(grid, spec, 16, rng);
  }

  /// Run both executors on the same calibration and compare bitwise.
  void expect_agreement(QuantAttentionConfig cfg,
                        const std::string& label) const {
    const HeadCalibration calib =
        calibrate_head(head.q, head.k, grid, cfg);
    cfg.executor = AttnExecutor::kMaterialized;
    const auto oracle = quantized_attention(head.q, head.k, head.v, calib,
                                            cfg);
    cfg.executor = AttnExecutor::kStreamed;
    const auto streamed = quantized_attention(head.q, head.k, head.v, calib,
                                              cfg);
    EXPECT_TRUE(same_bits(oracle.output, streamed.output)) << label;
    EXPECT_EQ(oracle.avg_map_bits, streamed.avg_map_bits) << label;
    // Both engines walked the same decomposition.
    EXPECT_EQ(oracle.exec.tiles_total, streamed.exec.tiles_total) << label;
    EXPECT_EQ(oracle.exec.tiles_skipped, streamed.exec.tiles_skipped)
        << label;
    EXPECT_EQ(oracle.exec.tiles_per_bits, streamed.exec.tiles_per_bits)
        << label;
    // The streamed engine never built the map.
    EXPECT_EQ(streamed.map_reordered.rows(), 0U) << label;
    EXPECT_GT(oracle.map_reordered.rows(), 0U) << label;
  }
};

TEST(FusedExecutor, MatchesMaterializedOnEveryPreset) {
  const Fixture f;
  f.expect_agreement(config_fp16(), "fp16");
  f.expect_agreement(config_naive_int(4), "naive_int4");
  f.expect_agreement(config_naive_int(8), "naive_int8");
  f.expect_agreement(config_blockwise_int(4, kBlock), "blockwise_int4");
  f.expect_agreement(config_paro_int(4, kBlock), "paro_int4");
  f.expect_agreement(config_paro_int(8, kBlock), "paro_int8");
  f.expect_agreement(config_paro_mp(4.8, kBlock), "paro_mp_4.8");
  f.expect_agreement(config_paro_mp(2.0, kBlock), "paro_mp_2.0");
}

TEST(FusedExecutor, MatchesMaterializedWithOutputBitwidthAware) {
  const Fixture f;
  QuantAttentionConfig cfg = config_paro_mp(4.8, kBlock);
  cfg.output_bitwidth_aware = true;
  f.expect_agreement(cfg, "paro_mp_oba");
  cfg = config_paro_mp(2.0, kBlock);  // many 0-bit tiles → dead-row paths
  cfg.output_bitwidth_aware = true;
  f.expect_agreement(cfg, "paro_mp_2.0_oba");
}

TEST(FusedExecutor, MatchesMaterializedOnRaggedSequences) {
  // 125 tokens against block 8: 15 full tiles + a ragged 5-wide edge.
  const Fixture f(TokenGrid(5, 5, 5), 71);
  f.expect_agreement(config_paro_mp(4.8, kBlock), "ragged_mp");
  QuantAttentionConfig oba = config_paro_mp(3.0, kBlock);
  oba.output_bitwidth_aware = true;
  f.expect_agreement(oba, "ragged_mp_oba");
  f.expect_agreement(config_blockwise_int(4, kBlock), "ragged_blockwise");
  f.expect_agreement(config_fp16(), "ragged_fp16");
}

TEST(FusedExecutor, UnquantizedMapConfigsAreExactVsReference) {
  // With no map quantization and no QKV quantization the pipeline is plain
  // attention: the streamed engine must agree with the direct reference to
  // float tolerance (and with the oracle bitwise, covered above).
  const Fixture f;
  const QuantAttentionConfig cfg = config_fp16();
  const HeadCalibration calib =
      calibrate_head(f.head.q, f.head.k, f.grid, cfg);
  const auto streamed =
      quantized_attention(f.head.q, f.head.k, f.head.v, calib, cfg);
  const MatF ref = attention_reference(f.head.q, f.head.k, f.head.v);
  EXPECT_GT(snr_db(ref.flat(), streamed.output.flat()), 120.0);
}

/// Hand-build a calibration with a known bit layout (no offline pass).
HeadCalibration manual_calibration(std::size_t n, std::size_t block) {
  HeadCalibration calib;
  calib.plan = ReorderPlan::identity(n);
  BitTable table(BlockGrid(n, n, block), 8);
  const std::size_t bcols = table.grid().block_cols();
  for (std::size_t br = 0; br < table.grid().block_rows(); ++br) {
    for (std::size_t bc = 0; bc < bcols; ++bc) {
      const std::size_t d = br > bc ? br - bc : bc - br;
      const int bits = d == 0 ? 8 : d == 1 ? 4 : d == 2 ? 2 : 0;
      table.set_bits(br, bc, bits);
    }
  }
  calib.planned_avg_bits = table.average_bitwidth();
  calib.bit_table = std::move(table);
  return calib;
}

MatF random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  MatF m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (float& x : m.row(r)) {
      x = static_cast<float>(rng.normal());
    }
  }
  return m;
}

TEST(FusedExecutor, SkipsZeroBitTilesWithoutComputingThem) {
  const std::size_t n = 64, block = 8;
  Rng rng(5);
  const MatF q = random_matrix(n, 16, rng);
  const MatF k = random_matrix(n, 16, rng);
  const MatF v = random_matrix(n, 16, rng);
  const HeadCalibration calib = manual_calibration(n, block);
  QuantAttentionConfig cfg = config_paro_mp(4.8, block);
  cfg.output_bitwidth_aware = true;  // dispatcher bypass active
  const auto r = fused_quantized_attention(q, k, v, calib, cfg);
  const std::size_t zero_tiles = calib.bit_table->tiles_at(0);
  ASSERT_GT(zero_tiles, 0U);
  EXPECT_EQ(r.exec.tiles_total, calib.bit_table->grid().num_blocks());
  EXPECT_EQ(r.exec.tiles_skipped, zero_tiles);
  // The skipped tiles never reached QKᵀ: computed + skipped = total.
  EXPECT_EQ(r.exec.qk_tiles_computed, r.exec.tiles_total - zero_tiles);
  EXPECT_EQ(r.exec.tiles_per_bits[0], zero_tiles);
  std::size_t per_bits_sum = 0;
  for (const auto c : r.exec.tiles_per_bits) {
    per_bits_sum += static_cast<std::size_t>(c);
  }
  EXPECT_EQ(per_bits_sum, r.exec.tiles_total);
  EXPECT_EQ(r.exec.stripes, (n + block - 1) / block);
}

TEST(FusedExecutor, ExecStatsFeedTheCycleSimulator) {
  // The online executor's measured tile mix drives the cycle model: a
  // skip-heavy head must simulate strictly faster than an all-8-bit one
  // of the same shape.  The grid is large enough (64×64 tiles, mostly
  // 0-bit off the band) that the dispatcher's makespan follows the mix
  // rather than a single longest job.
  const std::size_t n = 512, block = 8;
  Rng rng(6);
  const MatF q = random_matrix(n, 16, rng);
  const MatF k = random_matrix(n, 16, rng);
  const MatF v = random_matrix(n, 16, rng);
  QuantAttentionConfig cfg = config_paro_mp(4.8, block);
  cfg.output_bitwidth_aware = true;
  const auto r =
      fused_quantized_attention(q, k, v, manual_calibration(n, block), cfg);

  FusedAttentionParams p;
  p.tokens = 4096;
  p.head_dim = 64;
  p.tile_counts = r.exec.tiles_per_bits;
  const HwResources hw = HwResources::paro_asic();
  const FusedAttentionResult mixed = simulate_fused_attention(p, hw);

  FusedAttentionParams uniform = p;
  std::array<std::uint64_t, kNumBitChoices> all8{};
  all8[kNumBitChoices - 1] = r.exec.tiles_total;
  uniform.tile_counts = all8;
  const FusedAttentionResult dense = simulate_fused_attention(uniform, hw);

  // End-to-end cycles can be DRAM-bound at this size; the PE occupancy
  // must reflect the cheaper mix unconditionally.
  EXPECT_LT(mixed.pe_busy_cycles, dense.pe_busy_cycles);
  EXPECT_GT(mixed.pe_busy_cycles, 0U);
  EXPECT_LE(mixed.cycles, dense.cycles);
}

TEST(FusedExecutor, WorkingSetStaysFarBelowMaterializedAtScale) {
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
  GTEST_SKIP() << "N=4096 run is too slow under sanitizers";
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
  GTEST_SKIP() << "N=4096 run is too slow under sanitizers";
#endif
#endif
  // The acceptance shape: N=4096, d=64, block=64.  The streamed engine's
  // peak (row buffers + one stripe) must be under 10% of the N×N path.
  const std::size_t n = 4096, d = 64, block = 64;
  Rng rng(9);
  const MatF q = random_matrix(n, d, rng);
  const MatF k = random_matrix(n, d, rng);
  const MatF v = random_matrix(n, d, rng);
  const HeadCalibration calib = manual_calibration(n, block);
  QuantAttentionConfig cfg = config_paro_mp(4.8, block);
  cfg.output_bitwidth_aware = true;
  cfg.use_reorder = false;

  obs::MetricsRegistry::global().reset();
  cfg.executor = AttnExecutor::kStreamed;
  const auto streamed = quantized_attention(q, k, v, calib, cfg);
  cfg.executor = AttnExecutor::kMaterialized;
  const auto oracle = quantized_attention(q, k, v, calib, cfg);

  ASSERT_GT(streamed.exec.peak_bytes, 0U);
  ASSERT_GT(oracle.exec.peak_bytes, 0U);
  // The materialized path holds at least logits + attn (two N×N floats).
  EXPECT_GE(oracle.exec.peak_bytes, 2 * n * n * sizeof(float));
  const double ratio = static_cast<double>(streamed.exec.peak_bytes) /
                       static_cast<double>(oracle.exec.peak_bytes);
  EXPECT_LT(ratio, 0.10) << "streamed peak " << streamed.exec.peak_bytes
                         << " vs materialized " << oracle.exec.peak_bytes;
  // And the oracle holds at scale too: bitwise-equal outputs.
  EXPECT_TRUE(same_bits(oracle.output, streamed.output));

  // The obs gauge carries the same high-water marks.
  auto& reg = obs::MetricsRegistry::global();
  EXPECT_EQ(reg.gauge("attn.peak_working_set_bytes",
                      {{"executor", "streamed"}})
                .value(),
            static_cast<double>(streamed.exec.peak_bytes));
  EXPECT_EQ(reg.gauge("attn.peak_working_set_bytes",
                      {{"executor", "materialized"}})
                .value(),
            static_cast<double>(oracle.exec.peak_bytes));
  obs::MetricsRegistry::global().reset();
}

}  // namespace
}  // namespace paro
