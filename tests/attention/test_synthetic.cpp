#include "attention/synthetic.hpp"

#include <gtest/gtest.h>

#include "attention/reference.hpp"
#include "quant/blockwise.hpp"
#include "reorder/plan.hpp"

namespace paro {
namespace {

TEST(Synthetic, ShapesAndDeterminism) {
  const TokenGrid grid(4, 4, 4);
  SyntheticHeadSpec spec;
  Rng a(1), b(1);
  const HeadQKV h1 = generate_head(grid, spec, 16, a);
  const HeadQKV h2 = generate_head(grid, spec, 16, b);
  EXPECT_EQ(h1.q.rows(), 64U);
  EXPECT_EQ(h1.q.cols(), 16U);
  EXPECT_EQ(h1.q, h2.q);
  EXPECT_EQ(h1.k, h2.k);
  EXPECT_EQ(h1.v, h2.v);
}

TEST(Synthetic, RejectsBadHeadDim) {
  const TokenGrid grid(2, 2, 2);
  SyntheticHeadSpec spec;
  Rng rng(1);
  EXPECT_THROW(generate_head(grid, spec, 6, rng), Error);
  EXPECT_THROW(generate_head(grid, spec, 4, rng), Error);
}

/// The generated head's attention map concentrates on the block diagonal
/// under its own locality ordering: always far above a uniform map, and
/// strictly better than the canonical order whenever the two orderings
/// induce different tilings (same innermost axis + same block partition →
/// identical diagonality by construction, so those cases only require ≥).
class PatternStructure : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PatternStructure, LocalityOrderingIsBlockDiagonal) {
  const TokenGrid grid(6, 6, 6);
  constexpr std::size_t kBlock = 8;
  SyntheticHeadSpec spec;
  spec.locality_order = all_axis_orders()[GetParam()];
  spec.locality_width = 0.01;
  spec.pattern_gain = 5.0;
  spec.content_gain = 0.5;
  spec.global_fraction = 0.01;
  spec.global_gain = 3.5;
  Rng rng(50 + GetParam());
  const HeadQKV h = generate_head(grid, spec, 16, rng);
  const MatF map = attention_map(h.q, h.k);

  const ReorderPlan own =
      ReorderPlan::for_order(grid, spec.locality_order);
  const double own_diag = block_diagonality(own.apply_map(map), kBlock);
  const double canon_diag = block_diagonality(map, kBlock);
  const double uniform =
      static_cast<double>(kBlock) / static_cast<double>(map.rows());

  EXPECT_GT(own_diag, 4.0 * uniform);
  EXPECT_GE(own_diag, canon_diag - 0.02);
  if (spec.locality_order.axes[2] != Axis::kWidth) {
    // Different innermost axis → genuinely different structure: the own
    // ordering must concentrate clearly more mass on the diagonal.
    EXPECT_GT(own_diag, canon_diag + 0.03);
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, PatternStructure,
                         ::testing::Values(0, 1, 2, 3, 4, 5));

TEST(Synthetic, GlobalSinksCreateHotColumns) {
  const TokenGrid grid(4, 4, 4);
  SyntheticHeadSpec spec;
  spec.global_fraction = 0.05;
  spec.global_gain = 6.0;
  spec.pattern_gain = 2.0;
  Rng rng(9);
  const HeadQKV h = generate_head(grid, spec, 16, rng);
  const MatF map = attention_map(h.q, h.k);
  // Column-mass distribution should be heavy-tailed: max column ≫ mean.
  std::vector<double> col_mass(map.cols(), 0.0);
  for (std::size_t r = 0; r < map.rows(); ++r) {
    for (std::size_t c = 0; c < map.cols(); ++c) {
      col_mass[c] += map(r, c);
    }
  }
  double maxc = 0.0, meanc = 0.0;
  for (const double m : col_mass) {
    maxc = std::max(maxc, m);
    meanc += m;
  }
  meanc /= static_cast<double>(col_mass.size());
  EXPECT_GT(maxc, 5.0 * meanc);
}

TEST(Synthetic, DefaultSpecsCycleAllOrders) {
  Rng rng(1);
  const auto specs = default_head_specs(12, rng);
  ASSERT_EQ(specs.size(), 12U);
  for (std::size_t i = 0; i < 6; ++i) {
    EXPECT_TRUE(specs[i].locality_order == all_axis_orders()[i]);
    EXPECT_TRUE(specs[i + 6].locality_order == all_axis_orders()[i]);
  }
}

TEST(PositionalFeatures, KernelDecaysWithRankDistance) {
  const TokenGrid grid(4, 4, 4);
  Rng rng(3);
  const MatF p = positional_features(grid, canonical_axis_order(), 0.05,
                                     4.0, 32, rng, 32);
  // Dot with self ≈ gain·d^(1/2 of softmax comp); just check monotone decay
  // in rank distance on average.
  auto dot = [&](std::size_t i, std::size_t j) {
    double d = 0.0;
    for (std::size_t c = 0; c < p.cols(); ++c) {
      d += static_cast<double>(p(i, c)) * p(j, c);
    }
    return d;
  };
  double near = 0.0, far = 0.0;
  for (std::size_t i = 0; i < 32; ++i) {
    near += dot(i, i + 1);
    far += dot(i, i + 30);
  }
  EXPECT_GT(near, far);
  EXPECT_GT(dot(5, 5), dot(5, 6));
}

TEST(PositionalFeatures, RejectsOddDim) {
  const TokenGrid grid(2, 2, 2);
  Rng rng(1);
  EXPECT_THROW(
      positional_features(grid, canonical_axis_order(), 0.05, 1.0, 3, rng),
      Error);
}

}  // namespace
}  // namespace paro
