#include "attention/calibration_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "attention/reference.hpp"
#include "attention/synthetic.hpp"
#include "common/rng.hpp"

namespace paro {
namespace {

HeadCalibration make_calibration(std::uint64_t seed, bool mixed) {
  const TokenGrid grid(4, 4, 4);
  SyntheticHeadSpec spec;
  spec.locality_order = all_axis_orders()[seed % 6];
  spec.locality_width = 0.01;
  spec.pattern_gain = 5.0;
  Rng rng(seed);
  const HeadQKV head = generate_head(grid, spec, 16, rng);
  const QuantAttentionConfig cfg =
      mixed ? config_paro_mp(4.8, 8) : config_paro_int(4, 8);
  return calibrate_head(head.q, head.k, grid, cfg);
}

bool plans_equal(const ReorderPlan& a, const ReorderPlan& b) {
  return a.order == b.order && a.perm == b.perm;
}

bool tables_equal(const std::optional<BitTable>& a,
                  const std::optional<BitTable>& b) {
  if (a.has_value() != b.has_value()) return false;
  if (!a.has_value()) return true;
  if (!(a->grid() == b->grid())) return false;
  for (std::size_t i = 0; i < a->grid().num_blocks(); ++i) {
    if (a->bits_flat(i) != b->bits_flat(i)) return false;
  }
  return true;
}

TEST(CalibrationIo, HeadRoundTripMixed) {
  const HeadCalibration original = make_calibration(3, /*mixed=*/true);
  std::stringstream ss;
  write_head_calibration(ss, original);
  const HeadCalibration restored = read_head_calibration(ss);
  EXPECT_TRUE(plans_equal(original.plan, restored.plan));
  EXPECT_TRUE(tables_equal(original.bit_table, restored.bit_table));
  EXPECT_NEAR(original.planned_avg_bits, restored.planned_avg_bits, 1e-9);
}

TEST(CalibrationIo, HeadRoundTripWithoutTable) {
  const HeadCalibration original = make_calibration(5, /*mixed=*/false);
  ASSERT_FALSE(original.bit_table.has_value());
  std::stringstream ss;
  write_head_calibration(ss, original);
  const HeadCalibration restored = read_head_calibration(ss);
  EXPECT_TRUE(plans_equal(original.plan, restored.plan));
  EXPECT_FALSE(restored.bit_table.has_value());
}

TEST(CalibrationIo, TableRoundTrip) {
  std::vector<std::vector<HeadCalibration>> table(2);
  table[0] = {make_calibration(1, true), make_calibration(2, true)};
  table[1] = {make_calibration(3, true), make_calibration(4, false)};
  std::stringstream ss;
  write_calibration_table(ss, table);
  const auto restored = read_calibration_table(ss);
  ASSERT_EQ(restored.size(), 2U);
  ASSERT_EQ(restored[0].size(), 2U);
  for (std::size_t l = 0; l < 2; ++l) {
    for (std::size_t h = 0; h < 2; ++h) {
      EXPECT_TRUE(plans_equal(table[l][h].plan, restored[l][h].plan));
      EXPECT_TRUE(
          tables_equal(table[l][h].bit_table, restored[l][h].bit_table));
    }
  }
}

TEST(CalibrationIo, FileRoundTrip) {
  std::vector<std::vector<HeadCalibration>> table(1);
  table[0] = {make_calibration(7, true)};
  const std::string path = ::testing::TempDir() + "/paro_calib_test.txt";
  save_calibration_file(path, table);
  const auto restored = load_calibration_file(path);
  ASSERT_EQ(restored.size(), 1U);
  EXPECT_TRUE(plans_equal(table[0][0].plan, restored[0][0].plan));
  std::remove(path.c_str());
}

TEST(CalibrationIo, RestoredCalibrationProducesIdenticalOutputs) {
  // The whole point: inference with a loaded calibration must match
  // inference with the freshly computed one exactly.
  const TokenGrid grid(4, 4, 4);
  SyntheticHeadSpec spec;
  spec.locality_order = all_axis_orders()[3];
  spec.locality_width = 0.01;
  spec.pattern_gain = 5.0;
  Rng rng(11);
  const HeadQKV head = generate_head(grid, spec, 16, rng);
  const QuantAttentionConfig cfg = config_paro_mp(4.8, 8);
  const HeadCalibration calib = calibrate_head(head.q, head.k, grid, cfg);

  std::stringstream ss;
  write_head_calibration(ss, calib);
  const HeadCalibration restored = read_head_calibration(ss);

  const auto a = quantized_attention(head.q, head.k, head.v, calib, cfg);
  const auto b = quantized_attention(head.q, head.k, head.v, restored, cfg);
  EXPECT_EQ(a.output, b.output);
}

/// Fuzz-style round trip: random plans and random bit tables of random
/// geometries must survive serialization exactly.
class CalibrationIoFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CalibrationIoFuzz, RandomTablesRoundTrip) {
  Rng rng(GetParam());
  const std::size_t f = 2 + rng.uniform_index(3);
  const std::size_t h = 2 + rng.uniform_index(3);
  const std::size_t w = 2 + rng.uniform_index(3);
  const TokenGrid grid(f, h, w);
  HeadCalibration calib;
  calib.plan = ReorderPlan::for_order(
      grid, all_axis_orders()[rng.uniform_index(6)]);
  const std::size_t n = grid.num_tokens();
  const std::size_t block = 1 + rng.uniform_index(n);
  BitTable table(BlockGrid(n, n, block), 8);
  for (std::size_t i = 0; i < table.grid().num_blocks(); ++i) {
    table.set_bits_flat(i, kBitChoices[rng.uniform_index(4)]);
  }
  calib.bit_table = table;
  calib.planned_avg_bits = table.average_bitwidth();

  std::stringstream ss;
  write_head_calibration(ss, calib);
  const HeadCalibration restored = read_head_calibration(ss);
  EXPECT_TRUE(plans_equal(calib.plan, restored.plan));
  EXPECT_TRUE(tables_equal(calib.bit_table, restored.bit_table));
  EXPECT_NEAR(calib.planned_avg_bits, restored.planned_avg_bits, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CalibrationIoFuzz,
                         ::testing::Range<std::uint64_t>(0, 12));

TEST(CalibrationIo, TruncatedStreamThrows) {
  const HeadCalibration calib = make_calibration(9, true);
  std::stringstream ss;
  write_head_calibration(ss, calib);
  const std::string full = ss.str();
  // Cut the record at several points: every prefix must throw, not crash
  // or return garbage.
  for (const double frac : {0.1, 0.35, 0.6, 0.9}) {
    std::stringstream cut(full.substr(
        0, static_cast<std::size_t>(frac * static_cast<double>(full.size()))));
    EXPECT_THROW(read_head_calibration(cut), Error) << "frac=" << frac;
  }
}

TEST(CalibrationIo, CorruptInputThrows) {
  std::stringstream empty;
  EXPECT_THROW(read_head_calibration(empty), Error);
  std::stringstream bad_keyword("notahead\n");
  EXPECT_THROW(read_head_calibration(bad_keyword), Error);
  std::stringstream bad_order("head\norder XYZ\n");
  EXPECT_THROW(read_head_calibration(bad_order), Error);
  std::stringstream bad_header("paro-calib v2\n");
  EXPECT_THROW(read_calibration_table(bad_header), Error);
  EXPECT_THROW(load_calibration_file("/nonexistent/path/calib.txt"), Error);
}

TEST(CalibrationIo, RejectsEmptyTable) {
  std::stringstream ss;
  EXPECT_THROW(write_calibration_table(ss, {}), Error);
}

}  // namespace
}  // namespace paro
