#include "attention/calibration_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "attention/reference.hpp"
#include "attention/synthetic.hpp"
#include "common/fault.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"

namespace paro {
namespace {

HeadCalibration make_calibration(std::uint64_t seed, bool mixed) {
  const TokenGrid grid(4, 4, 4);
  SyntheticHeadSpec spec;
  spec.locality_order = all_axis_orders()[seed % 6];
  spec.locality_width = 0.01;
  spec.pattern_gain = 5.0;
  Rng rng(seed);
  const HeadQKV head = generate_head(grid, spec, 16, rng);
  const QuantAttentionConfig cfg =
      mixed ? config_paro_mp(4.8, 8) : config_paro_int(4, 8);
  return calibrate_head(head.q, head.k, grid, cfg);
}

bool plans_equal(const ReorderPlan& a, const ReorderPlan& b) {
  return a.order == b.order && a.perm == b.perm;
}

bool tables_equal(const std::optional<BitTable>& a,
                  const std::optional<BitTable>& b) {
  if (a.has_value() != b.has_value()) return false;
  if (!a.has_value()) return true;
  if (!(a->grid() == b->grid())) return false;
  for (std::size_t i = 0; i < a->grid().num_blocks(); ++i) {
    if (a->bits_flat(i) != b->bits_flat(i)) return false;
  }
  return true;
}

TEST(CalibrationIo, HeadRoundTripMixed) {
  const HeadCalibration original = make_calibration(3, /*mixed=*/true);
  std::stringstream ss;
  write_head_calibration(ss, original);
  const HeadCalibration restored = read_head_calibration(ss);
  EXPECT_TRUE(plans_equal(original.plan, restored.plan));
  EXPECT_TRUE(tables_equal(original.bit_table, restored.bit_table));
  EXPECT_NEAR(original.planned_avg_bits, restored.planned_avg_bits, 1e-9);
}

TEST(CalibrationIo, HeadRoundTripWithoutTable) {
  const HeadCalibration original = make_calibration(5, /*mixed=*/false);
  ASSERT_FALSE(original.bit_table.has_value());
  std::stringstream ss;
  write_head_calibration(ss, original);
  const HeadCalibration restored = read_head_calibration(ss);
  EXPECT_TRUE(plans_equal(original.plan, restored.plan));
  EXPECT_FALSE(restored.bit_table.has_value());
}

TEST(CalibrationIo, TableRoundTrip) {
  std::vector<std::vector<HeadCalibration>> table(2);
  table[0] = {make_calibration(1, true), make_calibration(2, true)};
  table[1] = {make_calibration(3, true), make_calibration(4, false)};
  std::stringstream ss;
  write_calibration_table(ss, table);
  const auto restored = read_calibration_table(ss);
  ASSERT_EQ(restored.size(), 2U);
  ASSERT_EQ(restored[0].size(), 2U);
  for (std::size_t l = 0; l < 2; ++l) {
    for (std::size_t h = 0; h < 2; ++h) {
      EXPECT_TRUE(plans_equal(table[l][h].plan, restored[l][h].plan));
      EXPECT_TRUE(
          tables_equal(table[l][h].bit_table, restored[l][h].bit_table));
    }
  }
}

TEST(CalibrationIo, FileRoundTrip) {
  std::vector<std::vector<HeadCalibration>> table(1);
  table[0] = {make_calibration(7, true)};
  const std::string path = ::testing::TempDir() + "/paro_calib_test.txt";
  save_calibration_file(path, table);
  const auto restored = load_calibration_file(path);
  ASSERT_EQ(restored.size(), 1U);
  EXPECT_TRUE(plans_equal(table[0][0].plan, restored[0][0].plan));
  std::remove(path.c_str());
}

TEST(CalibrationIo, RestoredCalibrationProducesIdenticalOutputs) {
  // The whole point: inference with a loaded calibration must match
  // inference with the freshly computed one exactly.
  const TokenGrid grid(4, 4, 4);
  SyntheticHeadSpec spec;
  spec.locality_order = all_axis_orders()[3];
  spec.locality_width = 0.01;
  spec.pattern_gain = 5.0;
  Rng rng(11);
  const HeadQKV head = generate_head(grid, spec, 16, rng);
  const QuantAttentionConfig cfg = config_paro_mp(4.8, 8);
  const HeadCalibration calib = calibrate_head(head.q, head.k, grid, cfg);

  std::stringstream ss;
  write_head_calibration(ss, calib);
  const HeadCalibration restored = read_head_calibration(ss);

  const auto a = quantized_attention(head.q, head.k, head.v, calib, cfg);
  const auto b = quantized_attention(head.q, head.k, head.v, restored, cfg);
  EXPECT_EQ(a.output, b.output);
}

/// Fuzz-style round trip: random plans and random bit tables of random
/// geometries must survive serialization exactly.
class CalibrationIoFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CalibrationIoFuzz, RandomTablesRoundTrip) {
  Rng rng(GetParam());
  const std::size_t f = 2 + rng.uniform_index(3);
  const std::size_t h = 2 + rng.uniform_index(3);
  const std::size_t w = 2 + rng.uniform_index(3);
  const TokenGrid grid(f, h, w);
  HeadCalibration calib;
  calib.plan = ReorderPlan::for_order(
      grid, all_axis_orders()[rng.uniform_index(6)]);
  const std::size_t n = grid.num_tokens();
  const std::size_t block = 1 + rng.uniform_index(n);
  BitTable table(BlockGrid(n, n, block), 8);
  for (std::size_t i = 0; i < table.grid().num_blocks(); ++i) {
    table.set_bits_flat(i, kBitChoices[rng.uniform_index(4)]);
  }
  calib.bit_table = table;
  calib.planned_avg_bits = table.average_bitwidth();

  std::stringstream ss;
  write_head_calibration(ss, calib);
  const HeadCalibration restored = read_head_calibration(ss);
  EXPECT_TRUE(plans_equal(calib.plan, restored.plan));
  EXPECT_TRUE(tables_equal(calib.bit_table, restored.bit_table));
  EXPECT_NEAR(calib.planned_avg_bits, restored.planned_avg_bits, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CalibrationIoFuzz,
                         ::testing::Range<std::uint64_t>(0, 12));

TEST(CalibrationIo, TruncatedStreamThrows) {
  const HeadCalibration calib = make_calibration(9, true);
  std::stringstream ss;
  write_head_calibration(ss, calib);
  const std::string full = ss.str();
  // Cut the record at several points: every prefix must throw, not crash
  // or return garbage.
  for (const double frac : {0.1, 0.35, 0.6, 0.9}) {
    std::stringstream cut(full.substr(
        0, static_cast<std::size_t>(frac * static_cast<double>(full.size()))));
    EXPECT_THROW(read_head_calibration(cut), Error) << "frac=" << frac;
  }
}

TEST(CalibrationIo, CorruptInputThrows) {
  std::stringstream empty;
  EXPECT_THROW(read_head_calibration(empty), Error);
  std::stringstream bad_keyword("notahead\n");
  EXPECT_THROW(read_head_calibration(bad_keyword), Error);
  std::stringstream bad_order("head\norder XYZ\n");
  EXPECT_THROW(read_head_calibration(bad_order), Error);
  std::stringstream bad_header("paro-calib v2\n");
  EXPECT_THROW(read_calibration_table(bad_header), Error);
  EXPECT_THROW(load_calibration_file("/nonexistent/path/calib.txt"), Error);
}

TEST(CalibrationIo, RejectsEmptyTable) {
  std::stringstream ss;
  EXPECT_THROW(write_calibration_table(ss, {}), Error);
}

// ---------------------------------------------------------------------
// v2 artifacts: checksums, validation, quarantine recovery, fault sites.
// ---------------------------------------------------------------------

std::vector<std::vector<HeadCalibration>> make_table_2x2() {
  std::vector<std::vector<HeadCalibration>> table(2);
  table[0] = {make_calibration(1, true), make_calibration(2, true)};
  table[1] = {make_calibration(3, true), make_calibration(4, true)};
  return table;
}

std::string serialize(const std::vector<std::vector<HeadCalibration>>& t,
                      int version = kCalibVersionLatest) {
  std::ostringstream os;
  write_calibration_table(os, t, version);
  return os.str();
}

bool heads_equal(const HeadCalibration& a, const HeadCalibration& b) {
  return plans_equal(a.plan, b.plan) &&
         tables_equal(a.bit_table, b.bit_table) &&
         std::abs(a.planned_avg_bits - b.planned_avg_bits) < 1e-12;
}

TEST(CalibrationIoV2, WriterEmitsChecksumsByDefault) {
  const std::string text = serialize(make_table_2x2());
  EXPECT_NE(text.find("paro-calib v2"), std::string::npos);
  std::size_t crc_lines = 0;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind("crc ", 0) == 0) ++crc_lines;
  }
  EXPECT_EQ(crc_lines, 4U);  // one per head record
}

TEST(CalibrationIoV2, V1FilesRemainReadable) {
  const auto table = make_table_2x2();
  const std::string v1 = serialize(table, 1);
  EXPECT_NE(v1.find("paro-calib v1"), std::string::npos);
  EXPECT_EQ(v1.find("crc "), std::string::npos);
  std::istringstream is(v1);
  CalibLoadReport rep;
  const auto restored = read_calibration_table(is, {}, &rep);
  EXPECT_EQ(rep.version, 1);
  EXPECT_TRUE(rep.all_ok());
  for (std::size_t l = 0; l < 2; ++l) {
    for (std::size_t h = 0; h < 2; ++h) {
      EXPECT_TRUE(heads_equal(table[l][h], restored[l][h]));
    }
  }
}

TEST(CalibrationIoV2, V1ToV2MigrationRoundTrips) {
  const auto table = make_table_2x2();
  std::istringstream v1(serialize(table, 1));
  const auto loaded = read_calibration_table(v1);
  // Re-saving writes v2; the payload must survive the upgrade exactly.
  std::istringstream v2(serialize(loaded));
  CalibLoadReport rep;
  const auto upgraded = read_calibration_table(v2, {}, &rep);
  EXPECT_EQ(rep.version, 2);
  for (std::size_t l = 0; l < 2; ++l) {
    for (std::size_t h = 0; h < 2; ++h) {
      EXPECT_TRUE(heads_equal(table[l][h], upgraded[l][h]));
    }
  }
}

TEST(CalibrationIoV2, ChecksumMismatchIsDetected) {
  std::string text = serialize(make_table_2x2());
  const std::size_t pos = text.find("crc ");
  ASSERT_NE(pos, std::string::npos);
  // Flip one hex digit of the stored checksum: the record still parses,
  // so only the CRC compare can catch it.
  text[pos + 4] = text[pos + 4] == '0' ? '1' : '0';
  std::istringstream strict(text);
  EXPECT_THROW(read_calibration_table(strict), DataError);
  // Quarantine mode demotes exactly that record.
  std::istringstream lenient(text);
  CalibLoadOptions opt;
  opt.recovery = CalibRecovery::kQuarantine;
  CalibLoadReport rep;
  const auto table = read_calibration_table(lenient, opt, &rep);
  EXPECT_EQ(rep.fallback_count, 1U);
  EXPECT_EQ(rep.ok_count, 3U);
  ASSERT_FALSE(rep.head_status[0].ok);
  EXPECT_NE(rep.head_status[0].error.find("checksum"), std::string::npos);
  EXPECT_TRUE(table[0][0].plan.is_identity());
}

TEST(CalibrationIoV2, MissingChecksumInV2IsRejected) {
  std::string text = serialize(make_table_2x2());
  const std::size_t pos = text.find("crc ");
  ASSERT_NE(pos, std::string::npos);
  const std::size_t eol = text.find('\n', pos);
  text.erase(pos, eol - pos + 1);
  std::istringstream is(text);
  EXPECT_THROW(read_calibration_table(is), DataError);
}

TEST(CalibrationIoV2, ValidateRejectsBrokenPermutations) {
  HeadCalibration calib = make_calibration(6, true);
  // Duplicate index (which implies a missing one at equal length).
  HeadCalibration dup = calib;
  dup.plan.perm[1] = dup.plan.perm[0];
  EXPECT_THROW(validate_head_calibration(dup), DataError);
  // Out-of-range index.
  HeadCalibration oob = calib;
  oob.plan.perm[0] = static_cast<std::uint32_t>(oob.plan.perm.size());
  EXPECT_THROW(validate_head_calibration(oob), DataError);
  // Empty permutation.
  HeadCalibration empty;
  EXPECT_THROW(validate_head_calibration(empty), DataError);
  // The original is fine.
  EXPECT_NO_THROW(validate_head_calibration(calib));
}

TEST(CalibrationIoV2, ValidateCrossChecksAvgBitsAndGeometry) {
  HeadCalibration calib = make_calibration(8, true);
  HeadCalibration lying = calib;
  lying.planned_avg_bits = calib.planned_avg_bits + 1.0;
  EXPECT_THROW(validate_head_calibration(lying), DataError);
  HeadCalibration inf_bits = calib;
  inf_bits.planned_avg_bits = -1.0;
  EXPECT_THROW(validate_head_calibration(inf_bits), DataError);
  // Expectation pins: wrong token count / tile side for the model.
  CalibExpectations expect;
  expect.tokens = calib.plan.perm.size() + 1;
  EXPECT_THROW(validate_head_calibration(calib, expect), DataError);
  expect.tokens = calib.plan.perm.size();
  expect.block = calib.bit_table->grid().block() + 1;
  EXPECT_THROW(validate_head_calibration(calib, expect), DataError);
  expect.block = calib.bit_table->grid().block();
  EXPECT_NO_THROW(validate_head_calibration(calib, expect));
}

TEST(CalibrationIoV2, DuplicatePermIndexInFileFailsStrictAsDataError) {
  // Tamper through a v1 serialization (no CRC) so the BIJECTIVITY check —
  // not the checksum — is what catches it.
  auto table = make_table_2x2();
  std::string text = serialize(table, 1);
  const std::size_t perm_pos = text.find("perm ");
  ASSERT_NE(perm_pos, std::string::npos);
  // "perm <n> i0 i1 ..." — overwrite i1 with i0 by position.
  std::istringstream head(text.substr(perm_pos));
  std::string kw, n, i0, i1;
  head >> kw >> n >> i0 >> i1;
  const std::size_t i1_pos =
      perm_pos + kw.size() + 1 + n.size() + 1 + i0.size() + 1;
  ASSERT_EQ(text.substr(i1_pos, i1.size()), i1);
  text.replace(i1_pos, i1.size(), i0);
  std::istringstream strict(text);
  try {
    (void)read_calibration_table(strict);
    FAIL() << "expected DataError";
  } catch (const DataError& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("layer 0, head 0"), std::string::npos);
    EXPECT_NE(msg.find("bijection"), std::string::npos);
  }
}

TEST(CalibrationIoV2, OutOfDomainBitsAreRejectedAtParse) {
  const HeadCalibration calib = make_calibration(2, true);
  std::ostringstream os;
  write_head_calibration(os, calib, 1);
  std::string text = os.str();
  const std::size_t bits_pos = text.find("bits ");
  ASSERT_NE(bits_pos, std::string::npos);
  const std::size_t eol = text.find('\n', bits_pos);
  std::string line = text.substr(bits_pos, eol - bits_pos);
  // Replace the last bit entry with 3 (not in {0,2,4,8}).
  const std::size_t last_sp = line.rfind(' ');
  line = line.substr(0, last_sp) + " 3";
  text.replace(bits_pos, eol - bits_pos, line);
  std::istringstream is(text);
  EXPECT_THROW(read_head_calibration(is), Error);
}

TEST(CalibrationIoV2, TruncatedFileQuarantinesTailRecords) {
  const auto table = make_table_2x2();
  std::string text = serialize(table);
  text.resize(text.size() / 2);  // records 2+ gone, boundary record torn
  std::istringstream strict(text);
  EXPECT_THROW(read_calibration_table(strict), DataError);

  std::istringstream lenient(text);
  CalibLoadOptions opt;
  opt.recovery = CalibRecovery::kQuarantine;
  CalibLoadReport rep;
  const auto restored = read_calibration_table(lenient, opt, &rep);
  ASSERT_EQ(restored.size(), 2U);
  ASSERT_EQ(restored[0].size(), 2U);
  EXPECT_GT(rep.fallback_count, 0U);
  EXPECT_GT(rep.ok_count, 0U);
  EXPECT_EQ(rep.ok_count + rep.fallback_count, 4U);
  // Intact prefix records survive verbatim; quarantined slots carry the
  // documented fallback: identity reorder + uniform INT8 map.
  EXPECT_TRUE(heads_equal(table[0][0], restored[0][0]));
  const HeadCalibration& fb = restored[1][1];
  EXPECT_TRUE(fb.plan.is_identity());
  ASSERT_TRUE(fb.bit_table.has_value());
  EXPECT_DOUBLE_EQ(fb.bit_table->average_bitwidth(), 8.0);
  EXPECT_DOUBLE_EQ(fb.planned_avg_bits, 8.0);
}

TEST(CalibrationIoV2, QuarantineSurfacesObsCounters) {
  auto& reg = obs::MetricsRegistry::global();
  const double ok_before = reg.snapshot().value_of("calib.load.heads_ok");
  const double fb_before =
      reg.snapshot().value_of("calib.load.heads_fallback");
  std::string text = serialize(make_table_2x2());
  const std::size_t pos = text.find("crc ");
  text[pos + 4] = text[pos + 4] == 'f' ? 'e' : 'f';
  std::istringstream is(text);
  CalibLoadOptions opt;
  opt.recovery = CalibRecovery::kQuarantine;
  (void)read_calibration_table(is, opt, nullptr);
  EXPECT_EQ(reg.snapshot().value_of("calib.load.heads_ok"), ok_before + 3);
  EXPECT_EQ(reg.snapshot().value_of("calib.load.heads_fallback"),
            fb_before + 1);
}

TEST(CalibrationIoV2, QuarantineWithNoIntactRecordNeedsExpectations) {
  // Header only — every record missing.  Without geometry the loader
  // cannot even build fallbacks and must say so...
  const std::string text = "paro-calib v2\nlayers 1 heads 2\n";
  CalibLoadOptions opt;
  opt.recovery = CalibRecovery::kQuarantine;
  std::istringstream no_geo(text);
  EXPECT_THROW(read_calibration_table(no_geo, opt, nullptr), IoError);
  // ...while a caller that knows the model shape gets a fully degraded
  // but runnable table.
  opt.expect.tokens = 64;
  opt.expect.block = 8;
  std::istringstream with_geo(text);
  CalibLoadReport rep;
  const auto table = read_calibration_table(with_geo, opt, &rep);
  EXPECT_EQ(rep.fallback_count, 2U);
  EXPECT_EQ(table[0][0].plan.perm.size(), 64U);
}

class CalibFaultTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::Injector::global().clear(); }
};

TEST_F(CalibFaultTest, CorruptBitFaultIsAlwaysCaughtAndQuarantined) {
  // Flip one seed-chosen bit in the first record's bytes.  Whatever the
  // flip hits — a digit, a keyword, the crc line, a newline — the v2
  // combination of parse + domain validation + checksum must catch it;
  // nothing may load as silently-wrong data.
  const std::string text = serialize(make_table_2x2());
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    fault::Injector::global().configure(
        "calib.read.corrupt-bit:0:1:" + std::to_string(seed));
    std::istringstream is(text);
    CalibLoadOptions opt;
    opt.recovery = CalibRecovery::kQuarantine;
    CalibLoadReport rep;
    const auto table = read_calibration_table(is, opt, &rep);
    fault::Injector::global().clear();
    ASSERT_EQ(table.size(), 2U) << "seed=" << seed;
    EXPECT_EQ(rep.fallback_count, 1U) << "seed=" << seed;
    EXPECT_FALSE(rep.head_status[0].ok) << "seed=" << seed;
  }
}

TEST_F(CalibFaultTest, CorruptBitFaultIsDeterministic) {
  const std::string text = serialize(make_table_2x2());
  const auto run = [&] {
    fault::Injector::global().configure("calib.read.corrupt-bit:0:1:7");
    std::istringstream is(text);
    CalibLoadOptions opt;
    opt.recovery = CalibRecovery::kQuarantine;
    CalibLoadReport rep;
    (void)read_calibration_table(is, opt, &rep);
    fault::Injector::global().clear();
    return rep.head_status[0].error;
  };
  EXPECT_EQ(run(), run());
}

TEST_F(CalibFaultTest, TruncateFaultQuarantinesTheRecord) {
  const std::string text = serialize(make_table_2x2());
  fault::Injector::global().configure("calib.read.truncate:1:1");
  std::istringstream is(text);
  CalibLoadOptions opt;
  opt.recovery = CalibRecovery::kQuarantine;
  CalibLoadReport rep;
  const auto table = read_calibration_table(is, opt, &rep);
  EXPECT_EQ(rep.fallback_count, 1U);
  EXPECT_FALSE(rep.head_status[1].ok);
  EXPECT_TRUE(rep.head_status[0].ok);
  EXPECT_TRUE(table[0][1].plan.is_identity());
}

TEST_F(CalibFaultTest, StrictModeStillFailsFastUnderInjection) {
  const std::string text = serialize(make_table_2x2());
  fault::Injector::global().configure("calib.read.truncate:0:1");
  std::istringstream is(text);
  EXPECT_THROW(read_calibration_table(is), DataError);
}

TEST_F(CalibFaultTest, CrashDuringSaveLeavesOriginalArtifactIntact) {
  const std::string path = ::testing::TempDir() + "/paro_atomic_save.txt";
  const auto table = make_table_2x2();
  save_calibration_file(path, table);
  const std::string original = serialize(table);

  // A "crash" mid-write of a replacement must not tear the live artifact.
  std::vector<std::vector<HeadCalibration>> other(1);
  other[0] = {make_calibration(9, true)};
  fault::Injector::global().configure("calib.write.truncate");
  EXPECT_THROW(save_calibration_file(path, other), IoError);
  fault::Injector::global().clear();

  std::ifstream is(path);
  const std::string after((std::istreambuf_iterator<char>(is)),
                          std::istreambuf_iterator<char>());
  EXPECT_EQ(after, original);
  // And the artifact still loads strict-clean.
  EXPECT_NO_THROW(load_calibration_file(path));
  std::remove(path.c_str());
  std::remove((path + ".tmp").c_str());
}

}  // namespace
}  // namespace paro
