#include "attention/integer_path.hpp"

#include <gtest/gtest.h>

#include "attention/reference.hpp"
#include "attention/synthetic.hpp"
#include "common/stats.hpp"

namespace paro {
namespace {

struct IntFixture {
  TokenGrid grid{6, 6, 6};
  HeadQKV head;
  MatF ref;

  explicit IntFixture(std::uint64_t seed = 53) {
    SyntheticHeadSpec spec;
    spec.locality_order = all_axis_orders()[3];
    spec.locality_width = 0.01;
    spec.pattern_gain = 5.0;
    spec.content_gain = 0.5;
    spec.global_fraction = 0.01;
    spec.global_gain = 3.5;
    Rng rng(seed);
    head = generate_head(grid, spec, 16, rng);
    ref = attention_reference(head.q, head.k, head.v);
  }
};

/// The integer dataflow must agree with the fake-quant float pipeline —
/// they are the same arithmetic expressed two ways.
class IntMatchesFloat : public ::testing::TestWithParam<int> {};

TEST_P(IntMatchesFloat, BlockwiseUniform) {
  const IntFixture f;
  const QuantAttentionConfig cfg = config_paro_int(GetParam(), 8);
  const HeadCalibration calib =
      calibrate_head(f.head.q, f.head.k, f.grid, cfg);
  const auto float_result =
      quantized_attention(f.head.q, f.head.k, f.head.v, calib, cfg);
  const auto int_result =
      integer_attention(f.head.q, f.head.k, f.head.v, calib, cfg);
  EXPECT_GT(snr_db(float_result.output.flat(), int_result.output.flat()),
            55.0);
}

INSTANTIATE_TEST_SUITE_P(Bits, IntMatchesFloat, ::testing::Values(2, 4, 8));

TEST(IntegerPath, MatchesFloatPipelineMixed) {
  const IntFixture f;
  const QuantAttentionConfig cfg = config_paro_mp(4.8, 8);
  const HeadCalibration calib =
      calibrate_head(f.head.q, f.head.k, f.grid, cfg);
  const auto float_result =
      quantized_attention(f.head.q, f.head.k, f.head.v, calib, cfg);
  const auto int_result =
      integer_attention(f.head.q, f.head.k, f.head.v, calib, cfg);
  EXPECT_GT(snr_db(float_result.output.flat(), int_result.output.flat()),
            55.0);
  EXPECT_NEAR(int_result.avg_map_bits, float_result.avg_map_bits, 1e-9);
}

TEST(IntegerPath, MatchesFloatPipelineWithOba) {
  const IntFixture f;
  QuantAttentionConfig cfg = config_paro_mp(4.8, 8);
  cfg.output_bitwidth_aware = true;
  const HeadCalibration calib =
      calibrate_head(f.head.q, f.head.k, f.grid, cfg);
  const auto float_result =
      quantized_attention(f.head.q, f.head.k, f.head.v, calib, cfg);
  const auto int_result =
      integer_attention(f.head.q, f.head.k, f.head.v, calib, cfg);
  EXPECT_GT(snr_db(float_result.output.flat(), int_result.output.flat()),
            55.0);
}

TEST(IntegerPath, Fp16ScalesStayAccurate) {
  // Hardware stores every quantization scale in FP16 (paper §IV-A); the
  // extra rounding must cost almost nothing.
  const IntFixture f;
  QuantAttentionConfig cfg = config_paro_mp(4.8, 8);
  QuantAttentionConfig cfg16 = cfg;
  cfg16.fp16_scales = true;
  const HeadCalibration calib =
      calibrate_head(f.head.q, f.head.k, f.grid, cfg);
  const auto full = integer_attention(f.head.q, f.head.k, f.head.v, calib, cfg);
  const auto fp16 =
      integer_attention(f.head.q, f.head.k, f.head.v, calib, cfg16);
  EXPECT_GT(snr_db(full.output.flat(), fp16.output.flat()), 40.0);
  EXPECT_GT(snr_db(f.ref.flat(), fp16.output.flat()), 15.0);
}

TEST(IntegerPath, CodesRespectBitRanges) {
  const IntFixture f;
  const QuantAttentionConfig cfg = config_paro_mp(4.8, 8);
  const HeadCalibration calib =
      calibrate_head(f.head.q, f.head.k, f.grid, cfg);
  const auto result =
      integer_attention(f.head.q, f.head.k, f.head.v, calib, cfg);
  const BitTable& table = *calib.bit_table;
  const BlockGrid& grid = table.grid();
  for (std::size_t br = 0; br < grid.block_rows(); ++br) {
    for (std::size_t bc = 0; bc < grid.block_cols(); ++bc) {
      const int bits = table.bits_at(br, bc);
      const std::int32_t qmax =
          bits == 0 ? 0 : (std::int32_t{1} << bits) - 1;
      const auto e = grid.extent(br, bc);
      for (std::size_t i = e.r0; i < e.r1; ++i) {
        for (std::size_t j = e.c0; j < e.c1; ++j) {
          ASSERT_GE(result.map_codes(i, j), 0);
          ASSERT_LE(result.map_codes(i, j), qmax);
        }
      }
    }
  }
}

TEST(IntegerPath, OutputTracksReference) {
  const IntFixture f;
  const QuantAttentionConfig cfg = config_paro_int(8, 8);
  const HeadCalibration calib =
      calibrate_head(f.head.q, f.head.k, f.grid, cfg);
  const auto result =
      integer_attention(f.head.q, f.head.k, f.head.v, calib, cfg);
  EXPECT_GT(snr_db(f.ref.flat(), result.output.flat()), 20.0);
}

TEST(IntegerPath, RejectsUnsupportedSchemes) {
  const IntFixture f;
  HeadCalibration calib;
  calib.plan = ReorderPlan::identity(f.grid.num_tokens());
  EXPECT_THROW(integer_attention(f.head.q, f.head.k, f.head.v, calib,
                                 config_naive_int(8)),
               Error);
  EXPECT_THROW(integer_attention(f.head.q, f.head.k, f.head.v, calib,
                                 config_fp16()),
               Error);
}

}  // namespace
}  // namespace paro
