#include "attention/streaming.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "attention/reference.hpp"
#include "attention/synthetic.hpp"
#include "common/stats.hpp"
#include "tensor/random.hpp"

namespace paro {
namespace {

/// Chunked online-softmax must equal the materialised reference for any
/// chunk size — the correctness basis of the fused dataflow.
class StreamingChunks : public ::testing::TestWithParam<std::size_t> {};

TEST_P(StreamingChunks, MatchesReference) {
  Rng rng(1);
  const MatF q = random_normal(40, 16, rng, 0.0F, 2.0F);
  const MatF k = random_normal(40, 16, rng, 0.0F, 2.0F);
  const MatF v = random_normal(40, 16, rng);
  const MatF ref = attention_reference(q, k, v);
  const MatF streamed = attention_streaming(q, k, v, GetParam());
  EXPECT_GT(snr_db(ref.flat(), streamed.flat()), 110.0)
      << "chunk=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Chunks, StreamingChunks,
                         ::testing::Values(1, 3, 7, 16, 40, 64));

TEST(Streaming, HandlesExtremeLogits) {
  // Large logits: the running-max rescaling must stay stable.
  Rng rng(2);
  MatF q = random_normal(8, 8, rng, 0.0F, 20.0F);
  MatF k = random_normal(8, 8, rng, 0.0F, 20.0F);
  const MatF v = random_normal(8, 8, rng);
  const MatF ref = attention_reference(q, k, v);
  const MatF streamed = attention_streaming(q, k, v, 2);
  for (const float x : streamed.flat()) {
    ASSERT_TRUE(std::isfinite(x));
  }
  EXPECT_GT(snr_db(ref.flat(), streamed.flat()), 80.0);
}

TEST(Streaming, WorksOnStructuredHeads) {
  const TokenGrid grid(4, 4, 4);
  SyntheticHeadSpec spec;
  spec.locality_width = 0.01;
  spec.pattern_gain = 6.0;
  Rng rng(3);
  const HeadQKV head = generate_head(grid, spec, 16, rng);
  const MatF ref = attention_reference(head.q, head.k, head.v);
  const MatF streamed = attention_streaming(head.q, head.k, head.v, 9);
  EXPECT_GT(snr_db(ref.flat(), streamed.flat()), 100.0);
}

TEST(Streaming, RejectsBadArguments) {
  MatF q(4, 8), k(4, 8), v(4, 8);
  EXPECT_THROW(attention_streaming(q, k, v, 0), Error);
  MatF k_bad(4, 6);
  EXPECT_THROW(attention_streaming(q, k_bad, v, 2), Error);
  MatF v_bad(5, 8);
  EXPECT_THROW(attention_streaming(q, k, v_bad, 2), Error);
}

TEST(Streaming, CustomScale) {
  Rng rng(4);
  const MatF q = random_normal(10, 8, rng);
  const MatF k = random_normal(10, 8, rng);
  const MatF v = random_normal(10, 8, rng);
  const MatF ref = attention_reference(q, k, v, 0.7F);
  const MatF streamed = attention_streaming(q, k, v, 4, 0.7F);
  EXPECT_GT(snr_db(ref.flat(), streamed.flat()), 110.0);
}

}  // namespace
}  // namespace paro
