#include "attention/pipeline.hpp"

#include "attention/integer_path.hpp"

#include <gtest/gtest.h>

#include "attention/reference.hpp"
#include "attention/synthetic.hpp"
#include "common/stats.hpp"

namespace paro {
namespace {

// A sharp strided head (6×6×6 grid, 8-wide map tiles): the regime where
// the paper's claims bite — the diagonal carries large outliers while the
// background still holds meaningful mass.
constexpr std::size_t kBlock = 8;

struct Fixture {
  TokenGrid grid{6, 6, 6};
  HeadQKV head;
  MatF ref;

  explicit Fixture(std::uint64_t seed = 53,
                   std::size_t order_index = 3) {
    SyntheticHeadSpec spec;
    spec.locality_order = all_axis_orders()[order_index];
    spec.locality_width = 0.01;
    spec.pattern_gain = 5.0;
    spec.content_gain = 0.5;
    spec.global_fraction = 0.01;
    spec.global_gain = 3.5;
    Rng rng(seed);
    head = generate_head(grid, spec, 16, rng);
    ref = attention_reference(head.q, head.k, head.v);
  }

  QuantAttentionResult run(const QuantAttentionConfig& cfg) const {
    const HeadCalibration calib = calibrate_head(head.q, head.k, grid, cfg);
    return quantized_attention(head.q, head.k, head.v, calib, cfg);
  }
  double snr(const QuantAttentionConfig& cfg) const {
    return snr_db(ref.flat(), run(cfg).output.flat());
  }
};

/// Mean SNR of a config across several independently generated heads —
/// stabilises comparisons whose single-head margins are ~1 dB.
double mean_snr(const QuantAttentionConfig& cfg) {
  double acc = 0.0;
  for (const std::uint64_t seed : {53ULL, 54ULL, 55ULL}) {
    acc += Fixture(seed).snr(cfg);
  }
  return acc / 3.0;
}

TEST(Pipeline, Fp16ConfigReproducesReferenceExactly) {
  const Fixture f;
  const auto result = f.run(config_fp16());
  EXPECT_GT(snr_db(f.ref.flat(), result.output.flat()), 120.0);
  EXPECT_EQ(result.avg_map_bits, 16.0);
}

TEST(Pipeline, Int8QkvAloneIsNearLossless) {
  const Fixture f;
  QuantAttentionConfig cfg = config_fp16();
  cfg.quantize_qkv = true;
  EXPECT_GT(f.snr(cfg), 30.0);
}

TEST(Pipeline, TableOneOrdering) {
  // The central Table-I ordering at small scale:
  //   Naive INT4  <  Block-wise INT4  <  PARO INT4 (reorder)  and
  //   PARO MP(4.8) approaches PARO INT8 quality.
  const double naive4 = mean_snr(config_naive_int(4));
  const double block4 = mean_snr(config_blockwise_int(4, kBlock));
  const double paro4 = mean_snr(config_paro_int(4, kBlock));
  const double paro8 = mean_snr(config_paro_int(8, kBlock));
  const double mp = mean_snr(config_paro_mp(4.8, kBlock));

  EXPECT_GT(block4, naive4 + 0.3);
  EXPECT_GT(paro4, block4 + 0.5);
  EXPECT_GT(paro8, paro4 + 5.0);
  EXPECT_GT(mp, paro4 + 4.0);        // mixed precision beats uniform INT4
  EXPECT_GT(mp, paro8 - 6.0);        // and approaches INT8
}

TEST(Pipeline, Int8SchemesAllUsable) {
  const Fixture f;
  EXPECT_GT(f.snr(config_naive_int(8)), 15.0);
  EXPECT_GT(f.snr(config_blockwise_int(8, kBlock)), 20.0);
  EXPECT_GT(f.snr(config_paro_int(8, kBlock)), 20.0);
}

TEST(Pipeline, MixedRespectsBudget) {
  const Fixture f;
  for (const double budget : {2.0, 4.0, 4.8, 6.0}) {
    const auto cfg = config_paro_mp(budget, kBlock);
    const HeadCalibration calib =
        calibrate_head(f.head.q, f.head.k, f.grid, cfg);
    ASSERT_TRUE(calib.bit_table.has_value());
    EXPECT_LE(calib.bit_table->average_bitwidth(), budget + 1e-9);
  }
}

TEST(Pipeline, HigherBudgetNeverHurts) {
  const Fixture f;
  const double mp3 = f.snr(config_paro_mp(3.0, kBlock));
  const double mp6 = f.snr(config_paro_mp(6.0, kBlock));
  EXPECT_GT(mp6, mp3);
}

TEST(Pipeline, OutputBitwidthAwareCloseToPlainMixed) {
  // §IV-B: LDZ truncation of K "produced no perceptible differences".
  const Fixture f;
  QuantAttentionConfig plain = config_paro_mp(4.8, kBlock);
  QuantAttentionConfig oba = plain;
  oba.output_bitwidth_aware = true;
  const double snr_plain = f.snr(plain);
  const double snr_oba = f.snr(oba);
  EXPECT_GT(snr_oba, 10.0);
  EXPECT_GT(snr_oba, snr_plain - 8.0);
}

TEST(Pipeline, ZeroBitBlocksProduceZeroMass) {
  const Fixture f;
  auto cfg = config_paro_mp(2.0, kBlock);  // tight budget → many skipped tiles
  // Only the materialized oracle exposes the full reordered map; the
  // streamed executor never builds it.
  cfg.executor = AttnExecutor::kMaterialized;
  const HeadCalibration calib =
      calibrate_head(f.head.q, f.head.k, f.grid, cfg);
  ASSERT_TRUE(calib.bit_table.has_value());
  EXPECT_GT(calib.bit_table->tiles_at(0), 0U);
  const auto result = quantized_attention(f.head.q, f.head.k, f.head.v,
                                          calib, cfg);
  // The executor's own accounting must agree with the table: every 0-bit
  // tile is reported skipped, none of them reaches the PE array.
  EXPECT_EQ(result.exec.tiles_total,
            calib.bit_table->grid().num_blocks());
  EXPECT_GE(result.exec.tiles_skipped, calib.bit_table->tiles_at(0));
  EXPECT_EQ(result.exec.tiles_live + result.exec.tiles_skipped,
            result.exec.tiles_total);
  const BitTable& table = *calib.bit_table;
  const BlockGrid& bg = table.grid();
  for (std::size_t br = 0; br < bg.block_rows(); ++br) {
    for (std::size_t bc = 0; bc < bg.block_cols(); ++bc) {
      if (table.bits_at(br, bc) != 0) continue;
      const auto e = bg.extent(br, bc);
      for (std::size_t r = e.r0; r < e.r1; ++r) {
        for (std::size_t c = e.c0; c < e.c1; ++c) {
          ASSERT_EQ(result.map_reordered(r, c), 0.0F);
        }
      }
    }
  }
}

TEST(Pipeline, ReportedAvgBitsMatchesTable) {
  const Fixture f;
  const auto cfg = config_paro_mp(4.8, kBlock);
  const HeadCalibration calib =
      calibrate_head(f.head.q, f.head.k, f.grid, cfg);
  const auto result =
      quantized_attention(f.head.q, f.head.k, f.head.v, calib, cfg);
  EXPECT_NEAR(result.avg_map_bits, calib.bit_table->average_bitwidth(),
              1e-9);
  EXPECT_NEAR(result.avg_map_bits, calib.planned_avg_bits, 1e-9);
}

TEST(Pipeline, CalibrationShapeMismatchThrows) {
  const Fixture f;
  const TokenGrid wrong(3, 3, 3);
  EXPECT_THROW(calibrate_head(f.head.q, f.head.k, wrong, config_paro_mp()),
               Error);
}

TEST(Pipeline, MixedWithoutTableThrows) {
  const Fixture f;
  HeadCalibration calib;  // no bit table
  calib.plan = ReorderPlan::identity(f.grid.num_tokens());
  EXPECT_THROW(quantized_attention(f.head.q, f.head.k, f.head.v, calib,
                                   config_paro_mp(4.8, kBlock)),
               Error);
}

TEST(Pipeline, PrefixCalibrationQuantizesTextPlusVideo) {
  // CogVideoX layout: text tokens + video grid through the full pipeline.
  const TokenGrid grid(4, 4, 4);
  const std::size_t prefix = 8;
  const std::size_t n = prefix + grid.num_tokens();
  SyntheticHeadSpec spec;
  spec.locality_order = all_axis_orders()[3];
  spec.locality_width = 0.01;
  spec.pattern_gain = 5.0;
  Rng rng(61);
  const HeadQKV video = generate_head(grid, spec, 16, rng);
  // Prepend random "text" tokens to Q/K/V.
  MatF q(n, 16), k(n, 16), v(n, 16);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < 16; ++c) {
      if (i < prefix) {
        q(i, c) = static_cast<float>(rng.normal());
        k(i, c) = static_cast<float>(rng.normal());
        v(i, c) = static_cast<float>(rng.normal());
      } else {
        q(i, c) = video.q(i - prefix, c);
        k(i, c) = video.k(i - prefix, c);
        v(i, c) = video.v(i - prefix, c);
      }
    }
  }
  const QuantAttentionConfig cfg = config_paro_mp(4.8, kBlock);
  const HeadCalibration calib =
      calibrate_head_with_prefix(q, k, grid, prefix, cfg);
  // Prefix stays in place; table covers the full map.
  for (std::size_t i = 0; i < prefix; ++i) {
    EXPECT_EQ(calib.plan.perm[i], i);
  }
  ASSERT_TRUE(calib.bit_table.has_value());
  EXPECT_EQ(calib.bit_table->grid().rows(), n);

  const MatF ref = attention_reference(q, k, v);
  const auto result = quantized_attention(q, k, v, calib, cfg);
  EXPECT_GT(snr_db(ref.flat(), result.output.flat()), 15.0);
}

/// Integer path must track the float path across block sizes.
class IntFloatAgreement : public ::testing::TestWithParam<std::size_t> {};

TEST_P(IntFloatAgreement, AcrossBlockSizes) {
  const Fixture f;
  const QuantAttentionConfig cfg = config_paro_mp(4.8, GetParam());
  const HeadCalibration calib =
      calibrate_head(f.head.q, f.head.k, f.grid, cfg);
  const auto fl = quantized_attention(f.head.q, f.head.k, f.head.v, calib, cfg);
  const auto in = integer_attention(f.head.q, f.head.k, f.head.v, calib, cfg);
  EXPECT_GT(snr_db(fl.output.flat(), in.output.flat()), 50.0)
      << "block=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Blocks, IntFloatAgreement,
                         ::testing::Values(4, 8, 12, 27));

/// Property sweep across heads with different locality orders: reorder
/// never hurts block-wise INT4 quality.
class ReorderAlwaysHelps : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ReorderAlwaysHelps, Int4) {
  const Fixture f(100 + GetParam(), GetParam());
  const double without = f.snr(config_blockwise_int(4, kBlock));
  const double with = f.snr(config_paro_int(4, kBlock));
  EXPECT_GE(with, without - 1.0) << "order " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Orders, ReorderAlwaysHelps,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace paro
