// Fault-injection → recovery tests for the attention executors: the
// attn.input.nonfinite / attn.logits.nonfinite sites, the NonFinitePolicy
// at each stage boundary, and the bitwise-no-op guarantee of the guards on
// clean data.
#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "attention/calibration_io.hpp"
#include "attention/pipeline.hpp"
#include "attention/synthetic.hpp"
#include "common/error.hpp"
#include "common/fault.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"

namespace paro {
namespace {

struct HeadFixture {
  HeadQKV qkv;
  HeadCalibration calib;
  QuantAttentionConfig cfg;
};

HeadFixture make_fixture(AttnExecutor executor) {
  const TokenGrid grid(4, 4, 4);
  SyntheticHeadSpec spec;
  spec.locality_order = all_axis_orders()[2];
  spec.locality_width = 0.01;
  spec.pattern_gain = 5.0;
  Rng rng(17);
  HeadFixture f;
  f.qkv = generate_head(grid, spec, 16, rng);
  f.cfg = config_paro_mp(4.8, 8);
  f.cfg.executor = executor;
  f.calib = calibrate_head(f.qkv.q, f.qkv.k, grid, f.cfg);
  return f;
}

double map_nonfinite_counter() {
  return obs::MetricsRegistry::global().snapshot().value_of(
      "numeric.nonfinite", {{"stage", "map"}});
}

class RobustnessTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::Injector::global().clear(); }
};

TEST_F(RobustnessTest, CleanRunsAreIdenticalUnderEveryPolicy) {
  // The guards' fast path on healthy data is a read-only scan: the policy
  // knob must not perturb a single bit of the result.
  for (const AttnExecutor exec :
       {AttnExecutor::kMaterialized, AttnExecutor::kStreamed}) {
    HeadFixture f = make_fixture(exec);
    f.cfg.nonfinite = NonFinitePolicy::kThrow;
    const auto base =
        quantized_attention(f.qkv.q, f.qkv.k, f.qkv.v, f.calib, f.cfg);
    for (const NonFinitePolicy p :
         {NonFinitePolicy::kSanitize, NonFinitePolicy::kLog}) {
      f.cfg.nonfinite = p;
      const auto out =
          quantized_attention(f.qkv.q, f.qkv.k, f.qkv.v, f.calib, f.cfg);
      EXPECT_EQ(base.output, out.output);
    }
  }
}

TEST_F(RobustnessTest, InputFaultThrowPolicyNamesTheBoundary) {
  for (const AttnExecutor exec :
       {AttnExecutor::kMaterialized, AttnExecutor::kStreamed}) {
    const HeadFixture f = make_fixture(exec);
    fault::Injector::global().configure("attn.input.nonfinite");
    try {
      (void)quantized_attention(f.qkv.q, f.qkv.k, f.qkv.v, f.calib, f.cfg);
      FAIL() << "expected NumericalError";
    } catch (const NumericalError& e) {
      EXPECT_NE(std::string(e.what()).find("attention input q"),
                std::string::npos);
    }
    fault::Injector::global().clear();
  }
}

TEST_F(RobustnessTest, InputFaultSanitizeRecoversWithoutTouchingCaller) {
  for (const AttnExecutor exec :
       {AttnExecutor::kMaterialized, AttnExecutor::kStreamed}) {
    HeadFixture f = make_fixture(exec);
    f.cfg.nonfinite = NonFinitePolicy::kSanitize;
    const MatF q_before = f.qkv.q;
    fault::Injector::global().configure("attn.input.nonfinite");
    const auto out =
        quantized_attention(f.qkv.q, f.qkv.k, f.qkv.v, f.calib, f.cfg);
    fault::Injector::global().clear();
    // Degraded but alive: the result is fully finite...
    EXPECT_EQ(count_nonfinite(out.output.flat()), 0U);
    // ...and the sanitization happened on a private copy, never on the
    // caller's tensor.
    EXPECT_EQ(f.qkv.q, q_before);
  }
}

TEST_F(RobustnessTest, LogitsFaultThrowPolicyNamesTheStage) {
  // Materialized executor: the guard sits behind the full softmax.
  {
    const HeadFixture f = make_fixture(AttnExecutor::kMaterialized);
    fault::Injector::global().configure("attn.logits.nonfinite:0:1");
    try {
      (void)quantized_attention(f.qkv.q, f.qkv.k, f.qkv.v, f.calib, f.cfg);
      FAIL() << "expected NumericalError";
    } catch (const NumericalError& e) {
      EXPECT_NE(std::string(e.what()).find("post-softmax"),
                std::string::npos);
    }
    fault::Injector::global().clear();
  }
  // Streamed executor: the guard names the stripe it caught the value in.
  {
    const HeadFixture f = make_fixture(AttnExecutor::kStreamed);
    fault::Injector::global().configure("attn.logits.nonfinite:0:1");
    try {
      (void)quantized_attention(f.qkv.q, f.qkv.k, f.qkv.v, f.calib, f.cfg);
      FAIL() << "expected NumericalError";
    } catch (const NumericalError& e) {
      EXPECT_NE(std::string(e.what()).find("stripe"), std::string::npos);
    }
    fault::Injector::global().clear();
  }
}

TEST_F(RobustnessTest, LogitsFaultSanitizeRecoversAndCounts) {
  for (const AttnExecutor exec :
       {AttnExecutor::kMaterialized, AttnExecutor::kStreamed}) {
    HeadFixture f = make_fixture(exec);
    f.cfg.nonfinite = NonFinitePolicy::kSanitize;
    const double before = map_nonfinite_counter();
    fault::Injector::global().configure("attn.logits.nonfinite:0:1");
    const auto out =
        quantized_attention(f.qkv.q, f.qkv.k, f.qkv.v, f.calib, f.cfg);
    fault::Injector::global().clear();
    EXPECT_EQ(count_nonfinite(out.output.flat()), 0U);
    // The degradation is observable: the map-stage counter moved.
    EXPECT_GT(map_nonfinite_counter(), before);
  }
}

TEST_F(RobustnessTest, FallbackCalibrationRunsOnBothExecutors) {
  // The quarantine substitute (identity reorder + uniform INT8 map) must
  // be executable end-to-end, and the executors must agree on it exactly
  // — it is what a degraded production run actually computes.
  HeadFixture f = make_fixture(AttnExecutor::kMaterialized);
  const HeadCalibration fallback =
      fallback_head_calibration(f.qkv.q.rows(), f.cfg.block);
  const auto a =
      quantized_attention(f.qkv.q, f.qkv.k, f.qkv.v, fallback, f.cfg);
  f.cfg.executor = AttnExecutor::kStreamed;
  const auto b =
      quantized_attention(f.qkv.q, f.qkv.k, f.qkv.v, fallback, f.cfg);
  EXPECT_EQ(a.output, b.output);
  EXPECT_EQ(count_nonfinite(a.output.flat()), 0U);
  EXPECT_DOUBLE_EQ(a.avg_map_bits, 8.0);
}

}  // namespace
}  // namespace paro
