// End-to-end integration: the full algorithm stack (synthetic DiT → DDIM
// sampling under each quantization method → proxy metrics) must reproduce
// the Table-I quality ordering, and the calibrated bit statistics must
// drive the performance simulator coherently.
#include <gtest/gtest.h>

#include "metrics/video_metrics.hpp"
#include "model/ddim.hpp"
#include "paro/accelerator.hpp"
#include "quant/blockwise.hpp"

namespace paro {
namespace {

class EndToEnd : public ::testing::Test {
 protected:
  static constexpr int kSteps = 6;
  static constexpr std::uint64_t kSeed = 21;

  static SyntheticDiT::Config dit_config() {
    SyntheticDiT::Config c;
    c.frames = 4;
    c.height = 6;
    c.width = 6;  // 144 tokens
    c.layers = 2;
    c.hidden = 48;
    c.heads = 3;
    c.channels = 4;
    c.seed = 77;
    c.pattern_gain = 6.0;
    return c;
  }

  static const SyntheticDiT& dit() {
    static const SyntheticDiT instance(dit_config());
    return instance;
  }

  static const MatF& reference() {
    static const MatF ref = ddim_sample(dit(), {}, nullptr, kSteps, kSeed);
    return ref;
  }

  static GridDims grid() {
    return {dit_config().frames, dit_config().height, dit_config().width};
  }

  static VideoQuality run_quant(const QuantAttentionConfig& quant) {
    SyntheticDiT::ExecConfig exec;
    exec.impl = SyntheticDiT::AttnImpl::kQuantized;
    exec.w8a8_linear = true;
    exec.quant = quant;
    const MatF calib_latent =
        ddim_sample(dit(), {}, nullptr, 1, kSeed + 1);
    const auto calib = dit().calibrate(quant, calib_latent, 1.0);
    const MatF video = ddim_sample(dit(), exec, &calib, kSteps, kSeed);
    return evaluate_video(video, reference(), grid());
  }
};

TEST_F(EndToEnd, TableOneQualityOrdering) {
  const VideoQuality naive4 = run_quant(config_naive_int(4));
  const VideoQuality paro4 = run_quant(config_paro_int(4, 12));
  const VideoQuality mp = run_quant(config_paro_mp(4.8, 12));
  const VideoQuality paro8 = run_quant(config_paro_int(8, 12));

  // FVD (lower better): naive INT4 fails hard; reorder+block-wise INT4
  // recovers; MP 4.8 approaches INT8.
  EXPECT_GT(naive4.fvd, paro4.fvd);
  EXPECT_GT(paro4.fvd, mp.fvd * 0.5);  // mp no worse than ~2× paro4
  EXPECT_LT(mp.fvd, naive4.fvd);
  EXPECT_LT(paro8.fvd, naive4.fvd);

  // CLIPSIM proxy (higher better).
  EXPECT_GT(mp.clipsim, naive4.clipsim);
  EXPECT_GT(paro4.clipsim, naive4.clipsim);
}

TEST_F(EndToEnd, Fp16PathScoresPerfect) {
  SyntheticDiT::ExecConfig exec;  // reference attention, FP linears
  const MatF video = ddim_sample(dit(), exec, nullptr, kSteps, kSeed);
  const VideoQuality q = evaluate_video(video, reference(), grid());
  EXPECT_NEAR(q.fvd, 0.0, 1e-9);
  EXPECT_NEAR(q.clipsim, 1.0, 1e-9);
}

TEST_F(EndToEnd, CalibratedBitStatsDrivePerfSim) {
  // Calibrate one head's BitTable on the real pipeline, extract the
  // distribution, and feed the performance simulator with it — the full
  // software→hardware handoff.
  const auto quant = config_paro_mp(4.8, 12);
  const MatF calib_latent = ddim_sample(dit(), {}, nullptr, 1, 3);
  const auto calib = dit().calibrate(quant, calib_latent, 1.0);
  ASSERT_TRUE(calib.heads[0][0].bit_table.has_value());
  const BitDistribution dist =
      BitDistribution::from_bittable(*calib.heads[0][0].bit_table);
  dist.validate();
  EXPECT_LE(dist.average_bits(), 8.0);

  ParoConfig cfg = ParoConfig::full();
  cfg.map_bits = dist;
  ModelConfig m = ModelConfig::cogvideox_2b();
  const HwResources hw = HwResources::paro_asic();
  const SimStats stats = ParoAccelerator(hw, cfg).simulate_video(m);
  EXPECT_GT(stats.total_cycles, 0.0);
  // More aggressive maps (lower avg bits) must never be slower.
  ParoConfig all8 = cfg;
  all8.map_bits = BitDistribution::uniform(8);
  const SimStats stats8 = ParoAccelerator(hw, all8).simulate_video(m);
  EXPECT_LE(stats.total_cycles, stats8.total_cycles * 1.0001);
}

TEST_F(EndToEnd, MixedBudgetHitsTargetAverage) {
  const auto quant = config_paro_mp(4.8, 12);
  const MatF calib_latent = ddim_sample(dit(), {}, nullptr, 1, 4);
  const auto calib = dit().calibrate(quant, calib_latent, 1.0);
  double total_bits = 0.0;
  std::size_t heads = 0;
  for (const auto& layer : calib.heads) {
    for (const auto& head : layer) {
      ASSERT_TRUE(head.bit_table.has_value());
      total_bits += head.bit_table->average_bitwidth();
      ++heads;
    }
  }
  const double avg = total_bits / static_cast<double>(heads);
  EXPECT_LE(avg, 4.8 + 1e-9);
  EXPECT_GE(avg, 2.5);  // budget is actually used, not collapsed to zero
}

}  // namespace
}  // namespace paro
